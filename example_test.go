package skipper_test

import (
	"fmt"

	"skipper"
)

// ExampleMaxSkipPercent reproduces the paper's Eq. 7 rule of thumb for the
// VGG5 workload of Table I (T=100, C=4, L_n=6).
func ExampleMaxSkipPercent() {
	fmt.Printf("p <= %.0f%%\n", skipper.MaxSkipPercent(100, 4, 6))
	// Output: p <= 76%
}

// ExampleBuildModel shows the topology registry and the stateful-layer
// count L_n that drives the checkpointing constraints.
func ExampleBuildModel() {
	net, err := skipper.BuildModel("vgg5", skipper.ModelOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("L_n =", net.StatefulCount())
	// Output: L_n = 6
}

// ExampleAutoTune picks a strategy for an unlimited budget: plain BPTT,
// since nothing forces an approximation.
func ExampleAutoTune() {
	net, err := skipper.BuildModel("customnet", skipper.ModelOptions{
		Width: 0.5, InShape: []int{3, 16, 16},
	})
	if err != nil {
		panic(err)
	}
	plan, err := skipper.AutoTune(net, []int{3, 16, 16}, skipper.Config{T: 16, Batch: 2}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Strategy.Name())
	// Output: bptt
}

// ExampleNewTrainer is the smallest complete training loop.
func ExampleNewTrainer() {
	data, err := skipper.OpenDataset("cifar10", 1)
	if err != nil {
		panic(err)
	}
	net, err := skipper.BuildModel("customnet", skipper.ModelOptions{
		Width: 0.5, Classes: data.Classes(), InShape: data.InShape(),
	})
	if err != nil {
		panic(err)
	}
	tr, err := skipper.NewTrainer(net, data, skipper.Checkpoint{C: 2}, skipper.Config{
		T: 12, Batch: 2, MaxBatchesPerEpoch: 1,
	})
	if err != nil {
		panic(err)
	}
	defer tr.Close()
	ep, err := tr.TrainEpoch()
	if err != nil {
		panic(err)
	}
	fmt.Println("batches:", ep.Batches)
	// Output: batches: 1
}
