// Command skipper-sweep explores the (C, p, T, B) design space of the
// checkpointing/skipper techniques for one workload, printing a grid of
// memory and time measurements plus the Eq. 7 feasibility bound — the tool
// the paper's Sec. VI-B "rule of thumb" discussion corresponds to.
//
// Example:
//
//	skipper-sweep -model vgg5 -T 48 -sweep c
//	skipper-sweep -model lenet -T 36 -sweep p -C 2
//	skipper-sweep -model vgg5 -sweep t
package main

import (
	"flag"
	"fmt"
	"time"

	"skipper/internal/cli"
	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/mem"
	"skipper/internal/models"
)

func main() {
	var (
		model = flag.String("model", "vgg5", "topology")
		data  = flag.String("data", "cifar10", "dataset")
		T     = flag.Int("T", 48, "timesteps")
		C     = flag.Int("C", 4, "checkpoints (fixed during p/t sweeps)")
		batch = flag.Int("batch", 4, "batch size")
		width = flag.Float64("width", 0.5, "channel-width multiplier")
		sweep = flag.String("sweep", "c", "what to sweep: c | p | t | b")
		seed  = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	src, err := dataset.Open(*data, *seed)
	if err != nil {
		cli.Fatal(err)
	}
	build := func() (*modelsNet, error) {
		net, err := models.Build(*model, models.Options{Width: *width, Classes: src.Classes(), InShape: src.InShape()})
		if err != nil {
			return nil, err
		}
		return &modelsNet{net.StatefulCount()}, nil
	}
	probe, err := build()
	if err != nil {
		cli.Fatal(err)
	}
	ln := probe.ln

	measure := func(strat core.Strategy, T, B int) (time.Duration, int64, error) {
		net, err := models.Build(*model, models.Options{Width: *width, Classes: src.Classes(), InShape: src.InShape()})
		if err != nil {
			return 0, 0, err
		}
		dev := mem.Unlimited()
		tr, err := core.NewTrainer(net, src, strat, core.Config{T: T, Batch: B, Seed: *seed, Device: dev})
		if err != nil {
			return 0, 0, err
		}
		defer tr.Close()
		idx := dataset.Indices(src, dataset.Train, *seed, 0, true)
		bs := dataset.Batches(idx, B)
		if _, err := tr.TrainBatchIndices(dataset.Train, bs[0]); err != nil {
			return 0, 0, err
		}
		dev.ResetPeaks()
		start := time.Now()
		if _, err := tr.TrainBatchIndices(dataset.Train, bs[1]); err != nil {
			return 0, 0, err
		}
		return time.Since(start), dev.PeakReserved(), nil
	}

	fmt.Printf("sweep=%s  model=%s data=%s  T=%d C=%d B=%d  L_n=%d\n", *sweep, *model, *data, *T, *C, *batch, ln)
	switch *sweep {
	case "c":
		fmt.Printf("%6s %10s %14s %14s\n", "C", "max p", "time/batch", "peak memory")
		for c := 1; c <= *T/(ln+1); c++ {
			if core.ValidateCheckpoints(*T, c, ln) != nil {
				continue
			}
			dur, peak, err := measure(core.Checkpoint{C: c}, *T, *batch)
			if err != nil {
				cli.Fatal(err)
			}
			fmt.Printf("%6d %9.0f%% %14s %14s\n", c, core.MaxSkipPercent(*T, c, ln),
				dur.Round(time.Millisecond), mem.FormatBytes(peak))
		}
	case "p":
		maxP := core.MaxSkipPercent(*T, *C, ln)
		fmt.Printf("Eq.7 bound: p <= %.0f%%\n%6s %14s %14s\n", maxP, "p", "time/batch", "peak memory")
		for _, frac := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
			p := float64(int(frac * maxP))
			dur, peak, err := measure(core.Skipper{C: *C, P: p}, *T, *batch)
			if err != nil {
				cli.Fatal(err)
			}
			fmt.Printf("%6.0f %14s %14s\n", p, dur.Round(time.Millisecond), mem.FormatBytes(peak))
		}
	case "t":
		fmt.Printf("%6s %16s %16s %16s\n", "T", "bptt", "ckpt", "skipper")
		for _, mult := range []int{1, 2, 3} {
			tt := *T * mult
			row := fmt.Sprintf("%6d", tt)
			for _, strat := range []core.Strategy{
				core.BPTT{},
				core.Checkpoint{C: *C},
				core.Skipper{C: *C, P: float64(int(0.85 * core.MaxSkipPercent(tt, *C, ln)))},
			} {
				_, peak, err := measure(strat, tt, *batch)
				if err != nil {
					cli.Fatal(err)
				}
				row += fmt.Sprintf(" %16s", mem.FormatBytes(peak))
			}
			fmt.Println(row)
		}
	case "b":
		fmt.Printf("%6s %14s %14s\n", "B", "time/batch", "peak memory")
		for _, b := range []int{1, 2, 4, 8} {
			dur, peak, err := measure(core.Skipper{C: *C, P: float64(int(0.85 * core.MaxSkipPercent(*T, *C, ln)))}, *T, b)
			if err != nil {
				cli.Fatal(err)
			}
			fmt.Printf("%6d %14s %14s\n", b, dur.Round(time.Millisecond), mem.FormatBytes(peak))
		}
	default:
		cli.Fatal(fmt.Errorf("unknown sweep %q (c|p|t|b)", *sweep))
	}
}

type modelsNet struct{ ln int }
