// Command skipper-train trains one SNN with a chosen strategy and reports
// accuracy, timing, and device-memory statistics per epoch.
//
// Examples:
//
//	skipper-train -model vgg5 -data cifar10 -strategy skipper -T 48 -C 4 -p 40 -epochs 3
//	skipper-train -model lenet -data dvsgesture -strategy ckpt -C 2 -T 36
//	skipper-train -model resnet20 -data cifar10 -strategy tbptt -trw 24
//	skipper-train -model vgg5 -strategy auto -budget-mib 8 -save weights.skpw
//	skipper-train -model vgg5 -load weights.skpw -epochs 1
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"skipper/internal/cli"
	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/mem"
	"skipper/internal/models"
	"skipper/internal/serialize"
	"skipper/internal/snn"
)

func main() {
	var (
		model    = flag.String("model", "vgg5", "topology: "+strings.Join(models.Names(), "|"))
		data     = flag.String("data", "cifar10", "dataset: "+strings.Join(dataset.Names(), "|"))
		strategy = flag.String("strategy", "skipper", "training strategy: bptt | ckpt | skipper | adaskipper | tbptt | tbptt-lbp | auto")
		T        = flag.Int("T", 48, "simulation timesteps")
		C        = flag.Int("C", 4, "temporal checkpoints (ckpt/skipper)")
		p        = flag.Float64("p", 0, "skip percentile (skipper; 0 = auto 85% of the Eq.7 bound)")
		trw      = flag.Int("trw", 0, "truncation window (tbptt variants; 0 = T/4)")
		batch    = flag.Int("batch", 8, "mini-batch size")
		epochs   = flag.Int("epochs", 2, "training epochs")
		lr       = flag.Float64("lr", 1e-3, "learning rate")
		width    = flag.Float64("width", 0.5, "channel-width multiplier")
		sam      = flag.String("sam", "spikesum", "SAM metric: spikesum | weighted | membranel2")
		surrName = flag.String("surrogate", "triangle", "surrogate gradient: triangle | fastsigmoid | atan | rectangular")
		seed     = flag.Uint64("seed", 1, "seed")
		budget   = flag.Int64("budget-mib", 0, "device budget in MiB (0 = unlimited)")
		maxB     = flag.Int("max-batches", 0, "cap batches per epoch (0 = full epoch)")
		pretrain = flag.Bool("pretrain", true, "hybrid-style pre-initialisation before the main run")
		savePath = flag.String("save", "", "write trained weights to this file")
		loadPath = flag.String("load", "", "initialise weights from this file (skips pretrain)")
	)
	flag.Parse()

	src, err := dataset.Open(*data, *seed)
	if err != nil {
		cli.Fatal(err)
	}
	surr, err := snn.ByName(*surrName)
	if err != nil {
		cli.Fatal(err)
	}
	net, err := models.Build(*model, models.Options{
		Width:     *width,
		Classes:   src.Classes(),
		InShape:   src.InShape(),
		Surrogate: surr,
	})
	if err != nil {
		cli.Fatal(err)
	}
	ln := net.StatefulCount()
	fmt.Print(net.Summary())

	if *trw == 0 {
		*trw = *T / 4
		if *trw <= ln {
			*trw = ln + 1
		}
	}
	if *p == 0 {
		*p = float64(int(0.85 * core.MaxSkipPercent(*T, *C, ln)))
	}
	metric, err := core.SAMByName(*sam)
	if err != nil {
		cli.Fatal(err)
	}
	var strat core.Strategy
	switch *strategy {
	case "auto":
		plan, err := core.AutoTune(net, src.InShape(), core.Config{T: *T, Batch: *batch}, *budget<<20)
		if err != nil {
			cli.Fatal(err)
		}
		strat = plan.Strategy
		fmt.Printf("autotune: %s — %s (predicted peak %s)\n",
			strat.Name(), plan.Reason, mem.FormatBytes(plan.PredictedPeak))
	case "bptt":
		strat = core.BPTT{}
	case "ckpt":
		strat = core.Checkpoint{C: *C}
	case "skipper":
		strat = core.Skipper{C: *C, P: *p, Metric: metric}
	case "adaskipper":
		strat = &core.AdaptiveSkipper{C: *C, P: *p, Metric: metric}
	case "tbptt":
		strat = core.TBPTT{Window: *trw}
	case "tbptt-lbp":
		mid := len(net.Layers) / 2
		strat = &core.TBPTTLBP{Window: *trw, LocalAt: []int{mid}}
	default:
		cli.Fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	dev := mem.NewDevice(mem.Config{Budget: *budget << 20})
	switch {
	case *loadPath != "":
		fmt.Printf("loading weights from %s\n", *loadPath)
		if err := serialize.LoadFile(*loadPath, net); err != nil {
			cli.Fatal(err)
		}
	case *pretrain:
		fmt.Println("pre-initialising (hybrid protocol)...")
		if err := core.Pretrain(net, src, core.PretrainConfig{Seed: *seed, Batch: *batch}); err != nil {
			cli.Fatal(err)
		}
	}
	tr, err := core.NewTrainer(net, src, strat, core.Config{
		T: *T, Batch: *batch, LR: float32(*lr), Seed: *seed,
		Device: dev, MaxBatchesPerEpoch: *maxB,
	})
	if err != nil {
		cli.Fatal(err)
	}
	defer tr.Close()

	fmt.Printf("training %s on %s with %s  (T=%d B=%d L_n=%d)\n",
		*model, src.Name(), strat.Name(), *T, *batch, ln)
	for e := 1; e <= *epochs; e++ {
		start := time.Now()
		ep, err := tr.TrainEpoch()
		if err != nil {
			cli.Fatal(err)
		}
		_, acc, err := tr.Evaluate(8)
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("epoch %2d  loss %.4f  train-acc %5.2f%%  test-acc %5.2f%%  time %s  skipped %d/%d steps\n",
			e, ep.MeanLoss(), 100*ep.Accuracy(), 100*acc,
			time.Since(start).Round(time.Millisecond),
			ep.SkippedSteps, ep.SkippedSteps+ep.RecomputedSteps)
	}
	st := dev.Snapshot()
	fmt.Printf("peak device memory: %s reserved, %s tensors (%s)\n",
		mem.FormatBytes(st.PeakReserved), mem.FormatBytes(st.PeakAllocated), st.Breakdown())
	if *savePath != "" {
		if err := serialize.SaveFile(*savePath, net); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("weights saved to %s\n", *savePath)
	}
}
