// Command skipper-train trains one SNN with a chosen strategy and reports
// accuracy, timing, and device-memory statistics per epoch.
//
// Examples:
//
//	skipper-train -model vgg5 -data cifar10 -strategy skipper -T 48 -C 4 -p 40 -epochs 3
//	skipper-train -model lenet -data dvsgesture -strategy ckpt -C 2 -T 36
//	skipper-train -model resnet20 -data cifar10 -strategy tbptt -trw 24
//	skipper-train -model vgg5 -strategy auto -budget-mib 8 -save weights.skpw
//	skipper-train -model vgg5 -load weights.skpw -epochs 1
//	skipper-train -model vgg5 -run-dir runs/vgg5 -snapshot-every 50 -epochs 20
//	skipper-train -model vgg5 -run-dir runs/vgg5 -resume
//
// With -run-dir the full run state (weights, optimizer moments, RNG cursor,
// divergence-guard state) is persisted atomically at every snapshot point;
// after a crash or an interrupt, -resume continues the run bit-identically.
// SIGINT/SIGTERM checkpoint at the next snapshot boundary and exit with
// code 3 so wrappers can distinguish "interrupted but resumable" from
// failure.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"skipper/internal/cli"
	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/dist"
	"skipper/internal/mem"
	"skipper/internal/models"
	"skipper/internal/runstate"
	"skipper/internal/serialize"
	"skipper/internal/snn"
	"skipper/internal/trace"
)

// exitInterrupted is the exit code of a run that checkpointed and stopped on
// SIGINT/SIGTERM — resumable, not failed.
const exitInterrupted = 3

// exitCoordinatorLost is the exit code of a distributed worker that
// exhausted its reconnect budget — restartable against the same coordinator,
// not failed.
const exitCoordinatorLost = 4

// errInterrupted aborts the epoch loop right after a durable snapshot.
var errInterrupted = errors.New("interrupted after checkpoint")

func main() {
	var (
		model    = flag.String("model", "vgg5", "topology: "+strings.Join(models.Names(), "|"))
		data     = flag.String("data", "cifar10", "dataset: "+strings.Join(dataset.Names(), "|"))
		strategy = flag.String("strategy", "skipper", "training strategy: bptt | ckpt | skipper | adaskipper | tbptt | tbptt-lbp | auto")
		T        = flag.Int("T", 48, "simulation timesteps")
		C        = flag.Int("C", 4, "temporal checkpoints (ckpt/skipper)")
		p        = flag.Float64("p", 0, "skip percentile (skipper; 0 = auto 85% of the Eq.7 bound)")
		trw      = flag.Int("trw", 0, "truncation window (tbptt variants; 0 = T/4)")
		batch    = flag.Int("batch", 8, "mini-batch size")
		epochs   = flag.Int("epochs", 2, "training epochs")
		lr       = flag.Float64("lr", 1e-3, "learning rate")
		width    = flag.Float64("width", 0.5, "channel-width multiplier")
		sam      = flag.String("sam", "spikesum", "SAM metric: spikesum | weighted | membranel2")
		surrName = flag.String("surrogate", "triangle", "surrogate gradient: triangle | fastsigmoid | atan | rectangular")
		seed     = flag.Uint64("seed", 1, "seed")
		threads  = flag.Int("threads", 0, "compute-pool width for kernels (0 = all cores; results are bit-identical at every width)")
		pack     = flag.Bool("spike-pack", false, "bit-packed spike compute: AND+popcount kernels and packed checkpoint records (bit-identical results)")
		budget   = flag.Int64("budget-mib", 0, "device budget in MiB (0 = unlimited)")
		maxB     = flag.Int("max-batches", 0, "cap batches per epoch (0 = full epoch)")
		pretrain = flag.Bool("pretrain", true, "hybrid-style pre-initialisation before the main run")
		savePath = flag.String("save", "", "write best-so-far weights to this file after each epoch")
		loadPath = flag.String("load", "", "initialise weights from this file (skips pretrain)")

		runDir    = flag.String("run-dir", "", "durable run-state directory (enables crash-safe resume)")
		resume    = flag.Bool("resume", false, "resume from the manifest in -run-dir")
		snapEvery = flag.Int("snapshot-every", 0, "also persist run state every K batches (0 = epoch boundaries only)")
		guardN    = flag.Int("guard-retries", 0, "divergence guard: max rollback+LR-halving retries per run (0 = off)")
		guardGN   = flag.Float64("guard-grad-norm", 0, "divergence guard: gradient-norm explosion threshold (0 = NaN/Inf only)")

		tracePath = flag.String("trace", "", "write a Chrome trace_event JSON profile of the run to this file")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and /debug/spans on this address (e.g. localhost:6060)")

		microBatch     = flag.Int("micro-batch", 0, "gradient micro-batch size (0 = whole batch; 1 matches distributed one-sample-shard accumulation bitwise)")
		distListen     = flag.String("dist-listen", "", "run as distributed coordinator (rank 0): listen for workers on this address")
		distJoin       = flag.String("dist-join", "", "run as distributed worker: join the coordinator at this address")
		distWorkers    = flag.Int("dist-workers", 1, "coordinator: number of worker ranks to wait for (world = workers + 1)")
		distTopology   = flag.String("dist-topology", dist.TopologyStar, "gradient exchange topology: star (workers upload to rank 0) or ring (ranks forward chunks to their successor; bit-identical result)")
		distCompress   = flag.String("dist-compress", dist.CompressNone, "gradient wire encoding: none or delta (bitmap+values frames for near-zero tensors; exact round-trip)")
		distOverlap    = flag.Bool("dist-overlap", false, "stream per-segment gradient buckets into the exchange during backward (deterministic, but regroups the float summation — not bitwise vs serial)")
		distRingListen = flag.String("dist-ring-listen", "", "ring topology: bind the rank's ring-data listener here (default 127.0.0.1:0)")
	)
	flag.Parse()
	if *resume && *runDir == "" {
		cli.Fatal(fmt.Errorf("-resume requires -run-dir"))
	}
	if *distListen != "" && *distJoin != "" {
		cli.Fatal(fmt.Errorf("-dist-listen and -dist-join are mutually exclusive"))
	}
	distMode := *distListen != "" || *distJoin != ""
	if distMode && *runDir != "" {
		cli.Fatal(fmt.Errorf("-run-dir is not supported in distributed mode; workers resync from the coordinator's manifest instead"))
	}
	if distMode && *guardN != 0 {
		cli.Fatal(fmt.Errorf("the divergence guard's rollback is per-process and would desynchronize ranks; use -guard-retries 0 in distributed mode"))
	}
	distOpts := dist.Options{
		Topology: *distTopology, Compress: *distCompress,
		Overlap: *distOverlap, RingListen: *distRingListen,
	}
	if err := distOpts.Validate(); err != nil {
		cli.Fatal(err)
	}

	src, err := dataset.Open(*data, *seed)
	if err != nil {
		cli.Fatal(err)
	}
	surr, err := snn.ByName(*surrName)
	if err != nil {
		cli.Fatal(err)
	}
	net, err := models.Build(*model, models.Options{
		Width:     *width,
		Classes:   src.Classes(),
		InShape:   src.InShape(),
		Surrogate: surr,
	})
	if err != nil {
		cli.Fatal(err)
	}
	ln := net.StatefulCount()
	fmt.Print(net.Summary())

	if *trw == 0 {
		*trw = *T / 4
		if *trw <= ln {
			*trw = ln + 1
		}
	}
	if *p == 0 {
		*p = float64(int(0.85 * core.MaxSkipPercent(*T, *C, ln)))
	}
	metric, err := core.SAMByName(*sam)
	if err != nil {
		cli.Fatal(err)
	}
	var strat core.Strategy
	switch *strategy {
	case "auto":
		plan, err := core.AutoTune(net, src.InShape(), core.Config{T: *T, Batch: *batch}, *budget<<20)
		if err != nil {
			cli.Fatal(err)
		}
		strat = plan.Strategy
		fmt.Printf("autotune: %s — %s (predicted peak %s)\n",
			strat.Name(), plan.Reason, mem.FormatBytes(plan.PredictedPeak))
	case "bptt":
		strat = core.BPTT{}
	case "ckpt":
		strat = core.Checkpoint{C: *C}
	case "skipper":
		strat = core.Skipper{C: *C, P: *p, Metric: metric}
	case "adaskipper":
		strat = &core.AdaptiveSkipper{C: *C, P: *p, Metric: metric}
	case "tbptt":
		strat = core.TBPTT{Window: *trw}
	case "tbptt-lbp":
		mid := len(net.Layers) / 2
		strat = &core.TBPTTLBP{Window: *trw, LocalAt: []int{mid}}
	default:
		cli.Fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	dev := mem.NewDevice(mem.Config{Budget: *budget << 20})
	switch {
	case *resume:
		// The manifest restores the weights; pretrain or -load would be
		// overwritten anyway.
	case *distJoin != "":
		// A worker's weights are overwritten by the coordinator's resync
		// manifest the moment it joins; pretraining them would be wasted.
	case *loadPath != "":
		fmt.Printf("loading weights from %s\n", *loadPath)
		if err := serialize.LoadFile(*loadPath, net); err != nil {
			cli.Fatal(err)
		}
	case *pretrain:
		fmt.Println("pre-initialising (hybrid protocol)...")
		if err := core.Pretrain(net, src, core.PretrainConfig{Seed: *seed, Batch: *batch}); err != nil {
			cli.Fatal(err)
		}
	}
	// Tracing: the span recorder only exists when someone will read it; a
	// nil tracer keeps every hot path at its untraced cost.
	var tracer *trace.Tracer
	if *tracePath != "" || *debugAddr != "" {
		tracer = trace.New(0)
	}
	flushTrace := func() {
		if *tracePath == "" {
			return
		}
		if err := cli.WriteTrace(*tracePath, tracer); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
	}
	var distMetrics *dist.Metrics
	var mounts []cli.Mount
	if *distListen != "" {
		distMetrics = dist.NewMetrics(*distWorkers + 1)
		mounts = append(mounts, cli.Mount{Pattern: "/metrics", Handler: distMetrics.Handler()})
	}
	if dbg, err := cli.StartDebug(*debugAddr, tracer, mounts...); err != nil {
		cli.Fatal(err)
	} else if dbg != "" {
		fmt.Printf("debug server on http://%s/debug/pprof/ and /debug/spans\n", dbg)
	}

	rt := core.NewRuntime(core.WithThreads(*threads), core.WithSeed(*seed), core.WithTracer(tracer))
	defer rt.Close()
	tr, err := core.NewTrainer(net, src, strat, core.Config{
		Runtime: rt,
		T:       *T, Batch: *batch, LR: float32(*lr), Seed: *seed,
		Device: dev, MaxBatchesPerEpoch: *maxB,
		MicroBatch:    *microBatch,
		SnapshotEvery: *snapEvery,
		GuardRetries:  *guardN,
		GuardGradNorm: float32(*guardGN),
		// -spike-pack buys both halves of the packed story: packed compute
		// kernels and packed (compressed) checkpoint boundary records.
		SpikePack:      *pack,
		CompressSpikes: *pack,
	})
	if err != nil {
		cli.Fatal(err)
	}
	defer tr.Close()

	if distMode {
		if *distJoin != "" {
			runDistWorker(tr, *distJoin, distOpts, tracer, *savePath)
		} else {
			runDistCoordinator(tr, *distListen, *distWorkers, *epochs, distOpts, tracer, distMetrics, *savePath)
		}
		flushTrace()
		return
	}

	// Durable run state: every snapshot mark lands atomically in the run
	// directory, and SIGINT/SIGTERM turn the next mark into a clean exit.
	startEpoch, startBatch := 1, 0
	var partial core.EpochStats
	resuming := false
	var interrupted atomic.Bool
	if *runDir != "" {
		store, err := runstate.Open(*runDir, nil, nil)
		if err != nil {
			cli.Fatal(err)
		}
		if *resume {
			if !store.Exists() {
				cli.Fatal(fmt.Errorf("no manifest at %s to resume from", store.Path()))
			}
			cur, part, err := runstate.Resume(tr, store)
			if err != nil {
				cli.Fatal(err)
			}
			startEpoch, startBatch, partial, resuming = cur.NextEpoch, cur.NextBatch, part, true
			fmt.Printf("resuming from %s: epoch %d, batch %d, iteration %d\n",
				store.Path(), cur.NextEpoch, cur.NextBatch, cur.Iteration)
		}
		runstate.Attach(tr, store)
		persist := tr.Cfg.OnSnapshot
		tr.Cfg.OnSnapshot = func(cur core.Cursor, ep core.EpochStats) error {
			if err := persist(cur, ep); err != nil {
				return err
			}
			if interrupted.Load() {
				return errInterrupted
			}
			return nil
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			interrupted.Store(true)
			fmt.Fprintln(os.Stderr, "\ninterrupt: checkpointing at the next snapshot boundary, then exiting")
			signal.Stop(sig) // a second signal kills immediately
		}()
	}

	if startEpoch > *epochs {
		fmt.Printf("nothing to do: manifest is already past epoch %d\n", *epochs)
		return
	}
	fmt.Printf("training %s on %s with %s  (T=%d B=%d L_n=%d threads=%d)\n",
		*model, src.Name(), strat.Name(), *T, *batch, ln, rt.Threads())
	bestAcc := -1.0
	for e := startEpoch; e <= *epochs; e++ {
		start := time.Now()
		var ep core.EpochStats
		if resuming && e == startEpoch {
			ep, err = tr.ResumeEpoch(startBatch, partial)
		} else {
			ep, err = tr.TrainEpoch()
		}
		if errors.Is(err, errInterrupted) {
			fmt.Printf("interrupted during epoch %d; run state saved to %s\n", e, *runDir)
			fmt.Printf("resume with:\n  %s\n", resumeCommand())
			flushTrace()
			os.Exit(exitInterrupted)
		}
		if err != nil {
			cli.Fatal(err)
		}
		_, acc, err := tr.Evaluate(8)
		if err != nil {
			cli.Fatal(err)
		}
		guard := ""
		if ep.Divergences > 0 {
			guard = fmt.Sprintf("  divergences %d (lr ×%g)", ep.Divergences, tr.LRScale())
		}
		fmt.Printf("epoch %2d  loss %.4f  train-acc %5.2f%%  test-acc %5.2f%%  time %s  skipped %d/%d steps%s\n",
			e, ep.MeanLoss(), 100*ep.Accuracy(), 100*acc,
			time.Since(start).Round(time.Millisecond),
			ep.SkippedSteps, ep.SkippedSteps+ep.RecomputedSteps, guard)
		if *savePath != "" && acc > bestAcc {
			bestAcc = acc
			if err := serialize.SaveFile(*savePath, net); err != nil {
				cli.Fatal(err)
			}
			fmt.Printf("          best so far — weights saved to %s\n", *savePath)
		}
	}
	st := dev.Snapshot()
	fmt.Printf("peak device memory: %s reserved, %s tensors (%s)\n",
		mem.FormatBytes(st.PeakReserved), mem.FormatBytes(st.PeakAllocated), st.Breakdown())
	if tracer != nil {
		fmt.Println("\nspan summary:")
		tracer.WriteSummary(os.Stdout)
	}
	flushTrace()
}

// runDistCoordinator trains as rank 0 of a workers+1-rank world, accepting
// worker joins on addr.
func runDistCoordinator(tr *core.Trainer, addr string, workers, epochs int, opts dist.Options, tracer *trace.Tracer, metrics *dist.Metrics, savePath string) {
	coord, err := dist.NewCoordinator(tr, dist.Config{
		World: workers + 1, Options: opts, Tracer: tracer, Metrics: metrics,
	})
	if err != nil {
		cli.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cli.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("coordinator: rank 0 of %d (%s topology), waiting for %d worker(s) on %s\n",
		workers+1, coord.Collective().Name(), workers, ln.Addr())
	go coord.Serve(ln)
	eps, err := coord.Fit(epochs)
	for i, ep := range eps {
		fmt.Printf("epoch %2d  loss %.4f  train-acc %5.2f%%  rounds %d  time %s\n",
			i+1, ep.MeanLoss(), 100*ep.Accuracy(), ep.Batches, ep.Duration.Round(time.Millisecond))
	}
	if err != nil {
		coord.Finish("coordinator failed: " + err.Error())
		cli.Fatal(err)
	}
	coord.Finish("training complete")
	fmt.Printf("coordinator: %d rounds committed, %s exchanged\n",
		coord.Round(), mem.FormatBytes(metrics.ReduceBytes()))
	distSave(tr, savePath)
}

// runDistWorker joins the coordinator at addr and participates until done.
func runDistWorker(tr *core.Trainer, addr string, opts dist.Options, tracer *trace.Tracer, savePath string) {
	fmt.Printf("worker: joining coordinator at %s\n", addr)
	err := dist.RunWorker(tr, dist.WorkerConfig{
		Dial:    func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Options: opts,
		Tracer:  tracer,
	})
	var lost *dist.CoordinatorLostError
	if errors.As(err, &lost) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitCoordinatorLost)
	}
	if err != nil {
		cli.Fatal(err)
	}
	fmt.Println("worker: training complete")
	distSave(tr, savePath)
}

// distSave writes the rank's final weights — every rank of a clean run saves
// byte-identical files, which the smoke script asserts.
func distSave(tr *core.Trainer, path string) {
	if path == "" {
		return
	}
	if err := serialize.SaveFile(path, tr.Net); err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("final weights saved to %s\n", path)
}

// resumeCommand reconstructs the invocation that continues this run.
func resumeCommand() string {
	args := append([]string(nil), os.Args...)
	for _, a := range args[1:] {
		if a == "-resume" || a == "--resume" || strings.HasPrefix(a, "-resume=") || strings.HasPrefix(a, "--resume=") {
			return strings.Join(args, " ")
		}
	}
	return strings.Join(append(args, "-resume"), " ")
}
