// Command skipper-router fronts a fleet of skipper-serve replicas: it
// consistent-hashes session keys onto health-checked backends, sheds load in
// admission tiers before the replicas saturate, tunes the early-exit margin
// per request class against its latency budget, and canaries new checkpoints
// on a fraction of sessions before promoting them fleet-wide.
//
// Endpoints: POST /v1/infer (data plane), GET /v1/fleet, POST /v1/canary,
// POST /v1/promote, POST /v1/rollback (control plane), /metrics, /healthz,
// /readyz.
//
// Backends are listed as URL or URL=FLEETADDR pairs; with a fleet address the
// router prefers the framed-TCP transport and falls back to HTTP:
//
//	skipper-router -addr :8000 \
//	  -backends http://127.0.0.1:8081=127.0.0.1:9081,http://127.0.0.1:8082
//
// Routers run replicated: give each one a -peer-addr (its peer-channel
// listener, also its identity) and the others' peer addresses in -peers.
// The tier gossips backend membership, canary state, and admission config,
// so every router derives the identical hash ring, and replica death becomes
// a quorum decision instead of one router's opinion:
//
//	skipper-router -addr :8000 -peer-addr 127.0.0.1:7000 \
//	  -peers 127.0.0.1:7001,127.0.0.1:7002 -backends ...
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"skipper/internal/cli"
	"skipper/internal/router"
	"skipper/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", ":8000", "listen address")
		backends  = flag.String("backends", "", "comma-separated replica list: URL or URL=FLEETADDR")
		vnodes    = flag.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "health-probe interval")
		deadAfter = flag.Int("dead-after", 3, "consecutive missed heartbeats before a backend leaves the ring")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-backend exchange timeout")
		failover  = flag.Int("failover", 2, "ring successors to try after the primary fails")
		defClass  = flag.String("default-class", "standard", "admission class for unlabeled requests")
		classJSON = flag.String("classes", "", "admission classes as JSON array (empty = built-in interactive/standard/bulk)")
		canaryMin = flag.Int("canary-min-requests", 50, "canary cohort size before auto-promotion is considered")
		peerAddr  = flag.String("peer-addr", "", "peer-channel listen address (router state sync + replica drain announcements); also this router's identity")
		peerList  = flag.String("peers", "", "comma-separated peer-channel addresses of the other routers in the tier")
		syncIvl   = flag.Duration("sync-interval", 0, "gossip period with each peer (0 = heartbeat interval)")
		tracePath = flag.String("trace", "", "write a Chrome trace_event JSON profile on shutdown to this file")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and /debug/spans on this address")
	)
	flag.Parse()

	specs, err := parseBackends(*backends)
	if err != nil {
		cli.Fatal(err)
	}
	var classes []router.ClassConfig
	if *classJSON != "" {
		if err := json.Unmarshal([]byte(*classJSON), &classes); err != nil {
			cli.Fatal(fmt.Errorf("parsing -classes: %w", err))
		}
	}

	var tracer *trace.Tracer
	if *tracePath != "" || *debugAddr != "" {
		tracer = trace.New(0)
	}
	if dbg, err := cli.StartDebug(*debugAddr, tracer); err != nil {
		cli.Fatal(err)
	} else if dbg != "" {
		fmt.Printf("debug server on http://%s/debug/pprof/ and /debug/spans\n", dbg)
	}

	var peerLN net.Listener
	var peers []string
	if *peerAddr != "" {
		peerLN, err = net.Listen("tcp", *peerAddr)
		if err != nil {
			cli.Fatal(fmt.Errorf("peer listener: %w", err))
		}
	}
	for _, p := range strings.Split(*peerList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}

	rt, err := router.New(router.Config{
		Backends:          specs,
		VNodes:            *vnodes,
		HeartbeatInterval: *heartbeat,
		DeadAfter:         *deadAfter,
		RequestTimeout:    *timeout,
		FailoverAttempts:  *failover,
		Classes:           classes,
		DefaultClass:      *defClass,
		CanaryMinRequests: *canaryMin,
		Tracer:            tracer,
		PeerListener:      peerLN,
		PeerID:            *peerAddr,
		Peers:             peers,
		SyncInterval:      *syncIvl,
	})
	if err != nil {
		cli.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("routing %d backends on %s  heartbeat=%s dead-after=%d failover=%d\n",
		len(specs), *addr, *heartbeat, *deadAfter, *failover)
	if peerLN != nil {
		fmt.Printf("peer channel on %s  peers=%d quorum=%d\n", peerLN.Addr(), len(peers), (1+len(peers))/2+1)
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		cli.Fatal(err)
	case sig := <-sigc:
		fmt.Printf("%s received, shutting down...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		shutErr := hs.Shutdown(ctx)
		cancel()
		rt.Close()
		if shutErr != nil {
			cli.Fatal(shutErr)
		}
		if *tracePath != "" {
			if err := cli.WriteTrace(*tracePath, tracer); err != nil {
				cli.Fatal(err)
			}
			fmt.Printf("trace written to %s\n", *tracePath)
		}
		fmt.Println("router stopped")
	}
}

// parseBackends parses "URL[=FLEETADDR],..." into specs.
func parseBackends(s string) ([]router.BackendSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-backends is required (URL or URL=FLEETADDR, comma-separated)")
	}
	var specs []router.BackendSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec := router.BackendSpec{URL: part}
		if i := strings.IndexByte(part, '='); i >= 0 {
			spec.URL = part[:i]
			spec.FleetAddr = part[i+1:]
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
