// Command skipper-serve runs the batched SNN inference server: it builds the
// chosen topology, optionally loads trained weights from a serialize
// checkpoint, and answers JSON classification requests with dynamic
// micro-batching and spike-activity early exit.
//
// Endpoints: POST /v1/infer, POST /v1/reload, GET /v1/config, /metrics,
// /healthz, /readyz. SIGHUP re-reads the current checkpoint; SIGINT/SIGTERM
// drain in-flight requests before exiting.
//
// Examples:
//
//	skipper-serve -model vgg5 -weights weights.skpw -T 48 -early-exit
//	skipper-serve -model lenet -classes 11 -in-shape 2x16x16 -addr :8090
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"skipper/internal/cli"
	"skipper/internal/core"
	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/serve"
	"skipper/internal/snn"
	"skipper/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		fleetAddr = flag.String("fleet-addr", "", "framed-TCP fleet listener for skipper-router (empty = HTTP only)")
		model     = flag.String("model", "vgg5", "topology: "+strings.Join(models.Names(), "|"))
		weights   = flag.String("weights", "", "serialize checkpoint to serve (empty = fresh deterministic init)")
		width     = flag.Float64("width", 0.5, "channel-width multiplier (must match the checkpoint)")
		classes   = flag.Int("classes", 10, "output classes (must match the checkpoint)")
		inShape   = flag.String("in-shape", "3x16x16", "per-sample input shape CxHxW")
		surrName  = flag.String("surrogate", "triangle", "surrogate gradient (affects topology build only)")
		T         = flag.Int("T", 32, "simulation timesteps per request")
		earlyExit = flag.Bool("early-exit", true, "stop stepping once the readout decision is stable")
		exitK     = flag.Int("exit-k", 0, "early-exit stability window (0 = default)")
		exitM     = flag.Float64("exit-margin", 0, "early-exit relative-margin gate (0 = default, <0 disables)")
		maxBatch  = flag.Int("max-batch", 8, "micro-batch size cap")
		window    = flag.Duration("batch-window", 2*time.Millisecond, "batching coalesce window")
		queue     = flag.Int("queue", 64, "pending-request queue depth (full = 429)")
		workers   = flag.Int("workers", 2, "batch workers (each owns a network replica)")
		threads   = flag.Int("threads", 0, "shared compute-pool width for kernels (0 = all cores)")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-request latency budget")
		seed      = flag.Uint64("encode-seed", 1, "Poisson encoding seed")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
		routers   = flag.String("routers", "", "comma-separated router peer-channel addresses to announce a graceful shutdown to before draining")
		advertise = flag.String("advertise-url", "", "this replica's base URL as the routers know it (default: http://127.0.0.1<addr> when -addr is :port)")
		tracePath = flag.String("trace", "", "write a Chrome trace_event JSON profile on shutdown to this file")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and /debug/spans on this address (e.g. localhost:6060)")

		sessionDir  = flag.String("session-dir", "", "directory for durable streaming-session snapshots (empty = sessions are memory-only)")
		sessionTTL  = flag.Duration("session-ttl", 5*time.Minute, "evict a streaming session idle longer than this")
		sessionSnap = flag.Int("session-snapshot-every", 8, "snapshot a durable session every N windows (<0 disables periodic snapshots)")
		streamSkip  = flag.Int("stream-skip-threshold", 0, "skip windows with at most this many events via leak-only decay (0 = only empty windows, lossless; <0 disables)")
	)
	flag.Parse()

	shape, err := parseShape(*inShape)
	if err != nil {
		cli.Fatal(err)
	}
	surr, err := snn.ByName(*surrName)
	if err != nil {
		cli.Fatal(err)
	}
	build := func() (*layers.Network, error) {
		return models.Build(*model, models.Options{
			Width:     *width,
			Classes:   *classes,
			InShape:   shape,
			Surrogate: surr,
		})
	}

	var tracer *trace.Tracer
	if *tracePath != "" || *debugAddr != "" {
		tracer = trace.New(0)
	}
	if dbg, err := cli.StartDebug(*debugAddr, tracer); err != nil {
		cli.Fatal(err)
	} else if dbg != "" {
		fmt.Printf("debug server on http://%s/debug/pprof/ and /debug/spans\n", dbg)
	}

	rt := core.NewRuntime(core.WithThreads(*threads), core.WithTracer(tracer))
	defer rt.Close()
	s, err := serve.NewServer(serve.Config{
		Build:          build,
		Runtime:        rt,
		T:              *T,
		EarlyExit:      *earlyExit,
		ExitK:          *exitK,
		ExitMargin:     *exitM,
		MaxBatch:       *maxBatch,
		BatchWindow:    *window,
		QueueDepth:     *queue,
		Workers:        *workers,
		RequestTimeout: *timeout,
		EncodeSeed:     *seed,

		SessionDir:           *sessionDir,
		SessionTTL:           *sessionTTL,
		SessionSnapshotEvery: *sessionSnap,
		StreamSkipThreshold:  *streamSkip,
	}, *weights)
	if err != nil {
		cli.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	var fleetLN net.Listener
	if *fleetAddr != "" {
		fleetLN, err = net.Listen("tcp", *fleetAddr)
		if err != nil {
			cli.Fatal(err)
		}
		go s.ServeFleet(fleetLN)
		fmt.Printf("fleet transport on %s\n", fleetLN.Addr())
	}

	snap := s.Model().Current()
	src := snap.Path
	if src == "" {
		src = "fresh initialisation"
	}
	fmt.Printf("serving %s (%s) on %s  T=%d early-exit=%v workers=%d max-batch=%d threads=%d\n",
		*model, src, *addr, *T, *earlyExit, *workers, *maxBatch, rt.Threads())

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case err := <-errc:
			cli.Fatal(err)
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				snap, err := s.Reload("")
				if err != nil {
					fmt.Fprintln(os.Stderr, "reload failed:", err)
					continue
				}
				fmt.Printf("reloaded %s (generation %d)\n", snap.Path, snap.Version)
				continue
			}
			fmt.Printf("%s received, draining...\n", sig)
			// Backend-initiated drain handoff: tell the router tier first, so
			// it vacates this replica's ring arcs with zero missed-heartbeat
			// window, then stop accepting and drain what is in flight.
			announced := 0
			if addrs := splitAddrs(*routers); len(addrs) > 0 {
				selfURL := *advertise
				if selfURL == "" && strings.HasPrefix(*addr, ":") {
					selfURL = "http://127.0.0.1" + *addr
				}
				if selfURL == "" {
					fmt.Fprintln(os.Stderr, "skipping drain announcement: -advertise-url required when -addr is not :port")
				} else {
					announced = serve.AnnounceDrain(addrs, selfURL, 2*time.Second)
					fmt.Printf("drain announced to %d/%d routers\n", announced, len(addrs))
				}
			}
			// Migration grace: an announced router pulls this replica's live
			// streaming sessions over the fleet channel, so the listener must
			// stay open until the registry empties (bounded — stragglers are
			// snapshotted to the session dir by Drain instead).
			if n := s.Streams().Count(); n > 0 && announced > 0 {
				grace := *drainWait / 3
				fmt.Printf("waiting for %d streaming sessions to migrate (up to %v)...\n", n, grace)
				mctx, mcancel := context.WithTimeout(context.Background(), grace)
				if s.Streams().WaitEmpty(mctx) {
					fmt.Println("all sessions migrated")
				} else {
					fmt.Printf("%d sessions still here; snapshotting at drain\n", s.Streams().Count())
				}
				mcancel()
			}
			if fleetLN != nil {
				fleetLN.Close()
			}
			ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
			drainErr := s.Drain(ctx)
			shutErr := hs.Shutdown(ctx)
			cancel()
			if drainErr != nil {
				cli.Fatal(drainErr)
			}
			if shutErr != nil {
				cli.Fatal(shutErr)
			}
			if *tracePath != "" {
				if err := cli.WriteTrace(*tracePath, tracer); err != nil {
					cli.Fatal(err)
				}
				fmt.Printf("trace written to %s\n", *tracePath)
			}
			fmt.Println("drained cleanly")
			return
		}
	}
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseShape parses "CxHxW" into [C,H,W].
func parseShape(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return nil, fmt.Errorf("in-shape %q: want CxHxW", s)
	}
	out := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("in-shape %q: bad dimension %q", s, p)
		}
		out[i] = v
	}
	return out, nil
}
