// Command skipper-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	skipper-bench -list
//	skipper-bench -exp fig7 [-scale tiny|small|full] [-seed N]
//	skipper-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"skipper/internal/bench"
	"skipper/internal/cli"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale   = flag.String("scale", "small", "run scale: tiny | small | full")
		seed    = flag.Uint64("seed", 1, "experiment seed")
		threads = flag.Int("threads", 0, "compute-pool width for parallel-runtime experiments (0 = all cores)")
		require = flag.Bool("require-speedup", false, "fail bench_kernels/bench_trace timing gates when not met (enforced only on ≥2 cores)")
		pack    = flag.Bool("spike-pack", false, "run workload measurements with bit-packed spike compute (bit-identical results)")
		list    = flag.Bool("list", false, "list available experiments")
		debug   = flag.String("debug-addr", "", "serve net/http/pprof on this address while experiments run")
	)
	flag.Parse()

	if dbg, err := cli.StartDebug(*debug, nil); err != nil {
		cli.Fatal(err)
	} else if dbg != "" {
		fmt.Printf("debug server on http://%s/debug/pprof/\n", dbg)
	}

	if *list || *exp == "" {
		fmt.Println("Available experiments (paper table/figure ids):")
		for _, id := range bench.IDs() {
			e, _ := bench.Get(id)
			fmt.Printf("  %-18s %s\n", id, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nuse -exp <id> (or -exp all) to run one")
			os.Exit(2)
		}
		return
	}

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		cli.Fatal(err)
	}
	cfg := bench.RunConfig{Scale: sc, Seed: *seed, Threads: *threads, RequireSpeedup: *require, SpikePack: *pack}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	} else if strings.Contains(*exp, ",") {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		e, err := bench.Get(strings.TrimSpace(id))
		if err != nil {
			cli.Fatal(err)
		}
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			cli.Fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("   (%s completed in %s at scale %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond), sc)
	}
}
