// Command skipper-routerctl is the operator CLI for a running skipper-router:
// it inspects the fleet and drives the canary lifecycle over the router's
// HTTP control plane.
//
//	skipper-routerctl -router http://127.0.0.1:8000 fleet
//	skipper-routerctl -router http://127.0.0.1:8000 canary -path ckpt_v2.skpw -fraction 0.05
//	skipper-routerctl -router http://127.0.0.1:8000 promote
//	skipper-routerctl -router http://127.0.0.1:8000 rollback
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"skipper/internal/cli"
)

func main() {
	routerURL := flag.String("router", "http://127.0.0.1:8000", "router base URL")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: skipper-routerctl [-router URL] <fleet|canary|promote|rollback> [args]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	client := &http.Client{Timeout: 30 * time.Second}

	cmd, rest := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "fleet":
		get(client, *routerURL+"/v1/fleet")
	case "canary":
		fs := flag.NewFlagSet("canary", flag.ExitOnError)
		path := fs.String("path", "", "checkpoint to canary (required)")
		fraction := fs.Float64("fraction", 0.05, "fraction of sessions steered to the canary")
		fs.Parse(rest)
		if *path == "" {
			cli.Fatal(fmt.Errorf("canary: -path is required"))
		}
		post(client, *routerURL+"/v1/canary", map[string]any{"path": *path, "fraction": *fraction})
	case "promote":
		post(client, *routerURL+"/v1/promote", nil)
	case "rollback":
		post(client, *routerURL+"/v1/rollback", nil)
	default:
		cli.Fatal(fmt.Errorf("unknown command %q (want fleet|canary|promote|rollback)", cmd))
	}
}

func get(client *http.Client, url string) {
	resp, err := client.Get(url)
	if err != nil {
		cli.Fatal(err)
	}
	emit(resp)
}

func post(client *http.Client, url string, body any) {
	var payload []byte
	if body != nil {
		payload, _ = json.Marshal(body)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		cli.Fatal(err)
	}
	emit(resp)
}

// emit pretty-prints the JSON response and exits non-zero on a non-2xx code.
func emit(resp *http.Response) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		cli.Fatal(err)
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, data, "", "  ") == nil {
		data = pretty.Bytes()
	}
	fmt.Println(string(bytes.TrimSpace(data)))
	if resp.StatusCode/100 != 2 {
		os.Exit(1)
	}
}
