// Command skipper-routerctl is the operator CLI for a running skipper-router:
// it inspects the fleet and drives the canary lifecycle over the router's
// HTTP control plane.
//
// -router accepts a comma-separated list of router base URLs. Connection
// failures fail over to the next router in the list — the tier replicates its
// control state, so any reachable router answers — and the answering peer is
// reported on stderr (stdout stays pure JSON for piping into jq).
//
//	skipper-routerctl -router http://127.0.0.1:8000 fleet
//	skipper-routerctl -router http://127.0.0.1:8000,http://127.0.0.1:8001 fleet
//	skipper-routerctl -router http://127.0.0.1:8000 canary -path ckpt_v2.skpw -fraction 0.05
//	skipper-routerctl -router http://127.0.0.1:8000 promote
//	skipper-routerctl -router http://127.0.0.1:8000 rollback
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"skipper/internal/cli"
)

func main() {
	routerURLs := flag.String("router", "http://127.0.0.1:8000", "comma-separated router base URLs; tried in order until one answers")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: skipper-routerctl [-router URL[,URL...]] <fleet|canary|promote|rollback> [args]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var routers []string
	for _, u := range strings.Split(*routerURLs, ",") {
		if u = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(u), "/")); u != "" {
			routers = append(routers, u)
		}
	}
	if len(routers) == 0 {
		cli.Fatal(fmt.Errorf("-router must name at least one router URL"))
	}
	client := &http.Client{Timeout: 30 * time.Second}

	cmd, rest := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "fleet":
		do(client, routers, "/v1/fleet", http.MethodGet, nil)
	case "canary":
		fs := flag.NewFlagSet("canary", flag.ExitOnError)
		path := fs.String("path", "", "checkpoint to canary (required)")
		fraction := fs.Float64("fraction", 0.05, "fraction of sessions steered to the canary")
		fs.Parse(rest)
		if *path == "" {
			cli.Fatal(fmt.Errorf("canary: -path is required"))
		}
		do(client, routers, "/v1/canary", http.MethodPost, map[string]any{"path": *path, "fraction": *fraction})
	case "promote":
		do(client, routers, "/v1/promote", http.MethodPost, nil)
	case "rollback":
		do(client, routers, "/v1/rollback", http.MethodPost, nil)
	default:
		cli.Fatal(fmt.Errorf("unknown command %q (want fleet|canary|promote|rollback)", cmd))
	}
}

// lastHealthy is the index of the router that answered most recently: the
// next request starts its walk there instead of re-dialing a dead
// head-of-list first, and failing routers are demoted behind it.
var lastHealthy int

// do tries the request against each router starting from the last healthy
// one, failing over on connection errors. An HTTP error status is an answer,
// not a failure — a 409 from a live router must not get retried against its
// peers (a rollback is not idempotent from the operator's point of view).
func do(client *http.Client, routers []string, path, method string, body any) {
	var lastErr error
	for off := 0; off < len(routers); off++ {
		i := (lastHealthy + off) % len(routers)
		base := routers[i]
		var resp *http.Response
		var err error
		switch method {
		case http.MethodGet:
			resp, err = client.Get(base + path)
		default:
			var payload []byte
			if body != nil {
				payload, _ = json.Marshal(body)
			}
			resp, err = client.Post(base+path, "application/json", bytes.NewReader(payload))
		}
		if err != nil {
			lastErr = err
			if off < len(routers)-1 {
				fmt.Fprintf(os.Stderr, "# %s unreachable (%v), trying next router\n", base, err)
			}
			continue
		}
		lastHealthy = i
		if len(routers) > 1 {
			fmt.Fprintf(os.Stderr, "# answered by %s\n", base)
		}
		emit(resp)
		return
	}
	cli.Fatal(fmt.Errorf("no router reachable: %w", lastErr))
}

// emit pretty-prints the JSON response and exits non-zero on a non-2xx code.
func emit(resp *http.Response) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		cli.Fatal(err)
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, data, "", "  ") == nil {
		data = pretty.Bytes()
	}
	fmt.Println(string(bytes.TrimSpace(data)))
	if resp.StatusCode/100 != 2 {
		os.Exit(1)
	}
}
