// Command skipper-loadgen fires synthetic inference traffic at a running
// skipper-serve or skipper-router instance and reports latency percentiles,
// throughput, and early-exit savings as JSON.
//
// Two modes:
//
//   - closed loop (default): -c concurrent requests, each launched as soon
//     as the previous one on its slot completes. Simple, but a struggling
//     server slows the arrival rate down with it (coordinated omission).
//   - open loop (-open): deterministic-seeded exponential arrivals at -qps,
//     for -duration (or until -n arrivals). Arrivals that would exceed
//     -max-inflight are counted as dropped_by_harness, never silently
//     queued. This is the honest tail-latency mode the soak benchmarks use.
//
// Examples:
//
//	skipper-loadgen -url http://localhost:8080 -n 500 -c 16
//	skipper-loadgen -url http://localhost:8090 -open -qps 200 -duration 60s -sessions 512 -class interactive
//
// -url accepts a comma-separated list for replicated router tiers; a
// transport error fails the request over to the next target, and the report's
// client_failovers counts how often that happened:
//
//	skipper-loadgen -url http://localhost:8000,http://localhost:8001 -open -qps 200 -duration 30s
package main

import (
	"encoding/json"
	"flag"
	"os"
	"time"

	"skipper/internal/cli"
	"skipper/internal/serve"
)

func main() {
	var (
		url    = flag.String("url", "http://localhost:8080", "server base URL; comma-separated list fails over to the next target on transport error (replicated router tiers)")
		n      = flag.Int("n", 200, "total requests (open loop: arrival cap, 0 = duration only)")
		c      = flag.Int("c", 8, "concurrent requests (closed loop)")
		seed   = flag.Uint64("seed", 1, "synthetic-input and arrival-schedule seed")
		budget = flag.Int("budget-ms", 0, "per-request latency budget to send (0 = server default)")
		out    = flag.String("out", "", "also write the JSON report to this file")

		open     = flag.Bool("open", false, "open-loop mode: exponential arrivals at -qps")
		qps      = flag.Float64("qps", 0, "open-loop target arrival rate (required with -open)")
		duration = flag.Duration("duration", 0, "open-loop soak length (0 = stop after -n arrivals)")
		maxInfl  = flag.Int("max-inflight", 256, "open-loop in-flight cap; excess arrivals are dropped_by_harness")

		sessions = flag.Int("sessions", 0, "distinct session keys to cycle (0 = send none; the router hashes these)")
		class    = flag.String("class", "", "admission class to send with each request")
		allowErr = flag.Bool("allow-shed", false, "exit 0 even when some requests were shed (expected under open-loop overload)")
	)
	flag.Parse()

	rep, err := serve.RunLoadGen(*url, serve.LoadGenOptions{
		Requests:    *n,
		Concurrency: *c,
		Seed:        *seed,
		BudgetMS:    *budget,
		Timeout:     60 * time.Second,
		OpenLoop:    *open,
		TargetQPS:   *qps,
		Duration:    *duration,
		MaxInFlight: *maxInfl,
		Sessions:    *sessions,
		Class:       *class,
	})
	if err != nil {
		cli.Fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		cli.Fatal(err)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			cli.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			cli.Fatal(err)
		}
	}
	answered := rep.Requests - rep.DroppedByHarness
	if rep.OK < answered && !*allowErr {
		cli.Fatalf("%d of %d requests failed (%v)", answered-rep.OK, answered, rep.StatusCodes)
	}
}
