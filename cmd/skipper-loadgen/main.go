// Command skipper-loadgen fires synthetic inference traffic at a running
// skipper-serve instance and reports latency percentiles, throughput, and
// early-exit savings as JSON.
//
// Example:
//
//	skipper-loadgen -url http://localhost:8080 -n 500 -c 16
package main

import (
	"encoding/json"
	"flag"
	"os"
	"time"

	"skipper/internal/cli"
	"skipper/internal/serve"
)

func main() {
	var (
		url    = flag.String("url", "http://localhost:8080", "server base URL")
		n      = flag.Int("n", 200, "total requests")
		c      = flag.Int("c", 8, "concurrent requests")
		seed   = flag.Uint64("seed", 1, "synthetic-input seed")
		budget = flag.Int("budget-ms", 0, "per-request latency budget to send (0 = server default)")
		out    = flag.String("out", "", "also write the JSON report to this file")
	)
	flag.Parse()

	rep, err := serve.RunLoadGen(*url, serve.LoadGenOptions{
		Requests:    *n,
		Concurrency: *c,
		Seed:        *seed,
		BudgetMS:    *budget,
		Timeout:     60 * time.Second,
	})
	if err != nil {
		cli.Fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		cli.Fatal(err)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			cli.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			cli.Fatal(err)
		}
	}
	if rep.OK < rep.Requests {
		cli.Fatalf("%d of %d requests failed (%v)", rep.Requests-rep.OK, rep.Requests, rep.StatusCodes)
	}
}
