// Command skipper-loadgen fires synthetic inference traffic at a running
// skipper-serve or skipper-router instance and reports latency percentiles,
// throughput, and early-exit savings as JSON.
//
// Two modes:
//
//   - closed loop (default): -c concurrent requests, each launched as soon
//     as the previous one on its slot completes. Simple, but a struggling
//     server slows the arrival rate down with it (coordinated omission).
//   - open loop (-open): deterministic-seeded exponential arrivals at -qps,
//     for -duration (or until -n arrivals). Arrivals that would exceed
//     -max-inflight are counted as dropped_by_harness, never silently
//     queued. This is the honest tail-latency mode the soak benchmarks use.
//
// Examples:
//
//	skipper-loadgen -url http://localhost:8080 -n 500 -c 16
//	skipper-loadgen -url http://localhost:8090 -open -qps 200 -duration 60s -sessions 512 -class interactive
//
// -url accepts a comma-separated list for replicated router tiers; a
// transport error fails the request over to the next target, and the report's
// client_failovers counts how often that happened:
//
//	skipper-loadgen -url http://localhost:8000,http://localhost:8001 -open -qps 200 -duration 30s
package main

import (
	"encoding/json"
	"flag"
	"os"
	"strings"
	"time"

	"skipper/internal/cli"
	"skipper/internal/serve"
	"skipper/internal/stream"
)

func main() {
	var (
		url    = flag.String("url", "http://localhost:8080", "server base URL; comma-separated list fails over to the next target on transport error (replicated router tiers)")
		n      = flag.Int("n", 200, "total requests (open loop: arrival cap, 0 = duration only)")
		c      = flag.Int("c", 8, "concurrent requests (closed loop)")
		seed   = flag.Uint64("seed", 1, "synthetic-input and arrival-schedule seed")
		budget = flag.Int("budget-ms", 0, "per-request latency budget to send (0 = server default)")
		out    = flag.String("out", "", "also write the JSON report to this file")

		open     = flag.Bool("open", false, "open-loop mode: exponential arrivals at -qps")
		qps      = flag.Float64("qps", 0, "open-loop target arrival rate (required with -open)")
		duration = flag.Duration("duration", 0, "open-loop soak length (0 = stop after -n arrivals)")
		maxInfl  = flag.Int("max-inflight", 256, "open-loop in-flight cap; excess arrivals are dropped_by_harness")

		sessions = flag.Int("sessions", 0, "distinct session keys to cycle (0 = send none; the router hashes these)")
		class    = flag.String("class", "", "admission class to send with each request")
		allowErr = flag.Bool("allow-shed", false, "exit 0 even when some requests were shed (expected under open-loop overload)")

		streaming  = flag.Bool("stream", false, "streaming mode: long-lived framed sessions with event windows instead of one-shot inference")
		fleetAddr  = flag.String("fleet-addr", "", "stream directly to this replica fleet address, bypassing router placement")
		windows    = flag.Int("windows", 50, "stream: windows per session")
		winSteps   = flag.Int("window-steps", 8, "stream: timesteps per window")
		quietFrac  = flag.Float64("quiet-frac", 0.5, "stream: fraction of windows generated with zero events")
		eventsPerW = flag.Int("events-per-window", 16, "stream: event count of a busy window")
		winIvl     = flag.Duration("window-interval", 0, "stream: pacing gap between windows per session (0 = as fast as the server answers)")
	)
	flag.Parse()

	if *streaming {
		runStream(*url, *fleetAddr, *sessions, *windows, *winSteps, *quietFrac, *eventsPerW, *winIvl, *seed, *out)
		return
	}

	rep, err := serve.RunLoadGen(*url, serve.LoadGenOptions{
		Requests:    *n,
		Concurrency: *c,
		Seed:        *seed,
		BudgetMS:    *budget,
		Timeout:     60 * time.Second,
		OpenLoop:    *open,
		TargetQPS:   *qps,
		Duration:    *duration,
		MaxInFlight: *maxInfl,
		Sessions:    *sessions,
		Class:       *class,
	})
	if err != nil {
		cli.Fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		cli.Fatal(err)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			cli.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			cli.Fatal(err)
		}
	}
	answered := rep.Requests - rep.DroppedByHarness
	if rep.OK < answered && !*allowErr {
		cli.Fatalf("%d of %d requests failed (%v)", answered-rep.OK, answered, rep.StatusCodes)
	}
}

// runStream drives the streaming-session load generator: sessions place
// through the routers (-url, comma-separated) or pin to one replica
// (-fleet-addr), feed deterministic event windows, and survive replica
// failures by re-placing and resuming. A session that loses membrane state
// (resets) or fails outright exits non-zero — the smoke scripts gate on it.
func runStream(urls, fleetAddr string, sessions, windows, winSteps int, quietFrac float64, eventsPerW int, interval time.Duration, seed uint64, out string) {
	var routers []string
	if fleetAddr == "" {
		for _, u := range strings.Split(urls, ",") {
			if u = strings.TrimSuffix(strings.TrimSpace(u), "/"); u != "" {
				routers = append(routers, u)
			}
		}
	}
	if sessions <= 0 {
		sessions = 4
	}
	rep, err := stream.RunStreamGen(stream.GenOptions{
		Routers:         routers,
		Addr:            fleetAddr,
		Sessions:        sessions,
		Windows:         windows,
		WindowSteps:     winSteps,
		QuietFrac:       quietFrac,
		EventsPerWindow: eventsPerW,
		Interval:        interval,
		Seed:            seed,
		Timeout:         30 * time.Second,
	})

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if eerr := enc.Encode(rep); eerr != nil {
		cli.Fatal(eerr)
	}
	if out != "" {
		data, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			cli.Fatal(merr)
		}
		if werr := os.WriteFile(out, append(data, '\n'), 0o644); werr != nil {
			cli.Fatal(werr)
		}
	}
	if err != nil {
		cli.Fatal(err)
	}
	if rep.Resets > 0 || rep.Failures > 0 {
		cli.Fatalf("stream run lost state: %d resets, %d failures", rep.Resets, rep.Failures)
	}
}
