// Command skipper-inspect visualises what the Spike Activity Monitor sees:
// it unrolls a network over a sample batch, prints the per-timestep activity
// series as a sparkline, previews which timesteps Skipper would skip for a
// given (C, p), and optionally dumps the full trace as CSV.
//
// Example:
//
//	skipper-inspect -model lenet -data dvsgesture -T 48 -C 4 -p 50
//	skipper-inspect -model vgg5 -data cifar10 -T 36 -csv trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"skipper/internal/analysis"
	"skipper/internal/cli"
	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/models"
)

func main() {
	var (
		model = flag.String("model", "lenet", "topology")
		data  = flag.String("data", "dvsgesture", "dataset")
		T     = flag.Int("T", 48, "timesteps")
		C     = flag.Int("C", 4, "checkpoints for the skip preview")
		p     = flag.Float64("p", 50, "skip percentile for the preview")
		batch = flag.Int("batch", 4, "samples to trace")
		width = flag.Float64("width", 0.5, "channel-width multiplier")
		sam   = flag.String("sam", "spikesum", "SAM metric: spikesum | weighted | membranel2")
		csv   = flag.String("csv", "", "write the full trace to this CSV file")
		seed  = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	src, err := dataset.Open(*data, *seed)
	if err != nil {
		cli.Fatal(err)
	}
	net, err := models.Build(*model, models.Options{
		Width: *width, Classes: src.Classes(), InShape: src.InShape(),
	})
	if err != nil {
		cli.Fatal(err)
	}
	metric, err := core.SAMByName(*sam)
	if err != nil {
		cli.Fatal(err)
	}
	idx := make([]int, *batch)
	for i := range idx {
		idx[i] = i
	}
	input, _ := src.SpikeBatch(dataset.Train, idx, *T)
	trace := analysis.Run(net, input, metric)

	min, mean, max := trace.ActivityStats()
	fmt.Printf("%s on %s, T=%d, B=%d, metric=%s\n", *model, src.Name(), *T, *batch, metric.Name())
	fmt.Printf("activity s_t: min %.1f  mean %.1f  max %.1f\n", min, mean, max)
	fmt.Printf("  %s\n", trace.Sparkline())

	pre := trace.PreviewSkips(*C, *p)
	fmt.Printf("skip preview (C=%d, p=%.0f): %d of %d timesteps would be skipped\n",
		*C, *p, pre.SkipCount, pre.TotalSteps)
	strip := make([]byte, *T)
	for t := range strip {
		if pre.Skipped[t] {
			strip[t] = '.'
		} else {
			strip[t] = '#'
		}
	}
	fmt.Printf("  %s   (# = recomputed, . = skipped)\n", strip)
	fmt.Println("per-layer mean firing rates:")
	for l, name := range trace.LayerNames {
		fmt.Printf("  %-18s %6.3f\n", name, trace.MeanRate(l))
	}
	ln := net.StatefulCount()
	fmt.Printf("Eq.7 bound for this net at T=%d, C=%d: p <= %.0f%%\n", *T, *C, core.MaxSkipPercent(*T, *C, ln))
	fmt.Printf("event-driven energy: %s\n", analysis.Energy(net, input, analysis.EnergyModel{}))

	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			cli.Fatal(err)
		}
		if err := trace.WriteCSV(f, &pre); err != nil {
			f.Close()
			cli.Fatal(err)
		}
		if err := f.Close(); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *csv)
	}
}
