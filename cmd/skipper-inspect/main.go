// Command skipper-inspect visualises what the Spike Activity Monitor sees:
// it unrolls a network over a sample batch, prints the per-timestep activity
// series as a sparkline, previews which timesteps Skipper would skip for a
// given (C, p), and optionally dumps the full trace as CSV.
//
// Example:
//
//	skipper-inspect -model lenet -data dvsgesture -T 48 -C 4 -p 50
//	skipper-inspect -model vgg5 -data cifar10 -T 36 -csv trace.csv
//	skipper-inspect -manifest runs/vgg5/manifest.skpm
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"skipper/internal/analysis"
	"skipper/internal/cli"
	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/models"
	"skipper/internal/runstate"
)

func main() {
	var (
		model    = flag.String("model", "lenet", "topology")
		data     = flag.String("data", "dvsgesture", "dataset")
		T        = flag.Int("T", 48, "timesteps")
		C        = flag.Int("C", 4, "checkpoints for the skip preview")
		p        = flag.Float64("p", 50, "skip percentile for the preview")
		batch    = flag.Int("batch", 4, "samples to trace")
		width    = flag.Float64("width", 0.5, "channel-width multiplier")
		sam      = flag.String("sam", "spikesum", "SAM metric: spikesum | weighted | membranel2")
		csv      = flag.String("csv", "", "write the full trace to this CSV file")
		seed     = flag.Uint64("seed", 1, "seed")
		manifest = flag.String("manifest", "", "print a runstate manifest's metadata (a manifest file or a -run-dir) and exit")
	)
	flag.Parse()

	if *manifest != "" {
		inspectManifest(*manifest)
		return
	}

	src, err := dataset.Open(*data, *seed)
	if err != nil {
		cli.Fatal(err)
	}
	net, err := models.Build(*model, models.Options{
		Width: *width, Classes: src.Classes(), InShape: src.InShape(),
	})
	if err != nil {
		cli.Fatal(err)
	}
	metric, err := core.SAMByName(*sam)
	if err != nil {
		cli.Fatal(err)
	}
	idx := make([]int, *batch)
	for i := range idx {
		idx[i] = i
	}
	input, _ := src.SpikeBatch(dataset.Train, idx, *T)
	trace := analysis.Run(net, input, metric)

	min, mean, max := trace.ActivityStats()
	fmt.Printf("%s on %s, T=%d, B=%d, metric=%s\n", *model, src.Name(), *T, *batch, metric.Name())
	fmt.Printf("activity s_t: min %.1f  mean %.1f  max %.1f\n", min, mean, max)
	fmt.Printf("  %s\n", trace.Sparkline())

	pre := trace.PreviewSkips(*C, *p)
	fmt.Printf("skip preview (C=%d, p=%.0f): %d of %d timesteps would be skipped\n",
		*C, *p, pre.SkipCount, pre.TotalSteps)
	strip := make([]byte, *T)
	for t := range strip {
		if pre.Skipped[t] {
			strip[t] = '.'
		} else {
			strip[t] = '#'
		}
	}
	fmt.Printf("  %s   (# = recomputed, . = skipped)\n", strip)
	fmt.Println("per-layer mean firing rates:")
	for l, name := range trace.LayerNames {
		fmt.Printf("  %-18s %6.3f\n", name, trace.MeanRate(l))
	}
	ln := net.StatefulCount()
	fmt.Printf("Eq.7 bound for this net at T=%d, C=%d: p <= %.0f%%\n", *T, *C, core.MaxSkipPercent(*T, *C, ln))
	fmt.Printf("event-driven energy: %s\n", analysis.Energy(net, input, analysis.EnergyModel{}))

	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			cli.Fatal(err)
		}
		if err := trace.WriteCSV(f, &pre); err != nil {
			f.Close()
			cli.Fatal(err)
		}
		if err := f.Close(); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *csv)
	}
}

// inspectManifest prints a runstate manifest's metadata — including, for
// manifests issued by a distributed coordinator, the rank placement a dead
// worker can be diagnosed from.
func inspectManifest(path string) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, runstate.ManifestName)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		cli.Fatal(err)
	}
	m, err := runstate.Decode(raw)
	if err != nil {
		cli.Fatal(err)
	}
	meta := m.Meta
	fmt.Printf("manifest %s\n", path)
	fmt.Printf("  saved at:   %s\n", meta.SavedAt.Format("2006-01-02 15:04:05 MST"))
	fmt.Printf("  strategy:   %s\n", meta.Strategy)
	fmt.Printf("  optimizer:  %s\n", meta.Optimizer)
	fmt.Printf("  seed:       %d\n", meta.Seed)
	fmt.Printf("  opt steps:  %d\n", meta.OptSteps)
	fmt.Printf("  lr scale:   %g\n", meta.LRScale)
	if meta.Threads > 0 {
		fmt.Printf("  threads:    %d\n", meta.Threads)
	}
	fmt.Printf("  cursor:     epoch %d, batch %d, iteration %d\n",
		meta.Cursor.NextEpoch, meta.Cursor.NextBatch, meta.Cursor.Iteration)
	if meta.Partial.Batches > 0 {
		fmt.Printf("  partial:    %d batches, loss %.4f\n", meta.Partial.Batches, meta.Partial.MeanLoss())
	}
	if len(meta.Divergences) > 0 {
		fmt.Printf("  divergences: %d\n", len(meta.Divergences))
	}
	if d := meta.Dist; d != nil {
		topo := d.Topology
		if topo == "" {
			topo = "star" // manifests issued before topology was recorded
		}
		fmt.Printf("  dist:       rank %d of %d, rounds committed %d, %s topology\n", d.Rank, d.World, d.Round, topo)
	} else {
		fmt.Printf("  dist:       none (single-process run)\n")
	}
}
