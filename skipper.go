// Package skipper is a from-scratch Go reproduction of "Skipper: Enabling
// efficient SNN training through activation-checkpointing and time-skipping"
// (Singh et al., MICRO 2022).
//
// It trains deep spiking neural networks with BPTT and surrogate gradients
// and provides the paper's two techniques — temporal activation
// checkpointing and Skipper (checkpointing + spike-activity-guided
// time-skipping) — alongside the baselines they are evaluated against
// (plain BPTT, truncated BPTT, and TBPTT-LBP). Every device-resident tensor
// is tracked by an instrumented memory model, so the paper's memory and
// compute trade-offs are measurable on any machine.
//
// Quick start — a Runtime is the shared execution context (parallel compute
// pool, root seed, metrics sink); everything built on it shares one pool, and
// results are bit-identical at every thread count:
//
//	rt := skipper.NewRuntime(skipper.WithSeed(1))
//	defer rt.Close()
//	net, _ := rt.BuildModel("vgg5", skipper.ModelOptions{})
//	data, _ := rt.OpenDataset("cifar10")
//	tr, _ := rt.NewTrainer(net, data, skipper.Skipper{C: 4, P: 40},
//	    skipper.Config{T: 48, Batch: 8})
//	defer tr.Close()
//	stats, _ := tr.TrainEpoch()
//
// The package-level BuildModel/OpenDataset/NewTrainer still work — they run
// on the process-wide DefaultRuntime (all cores) unless a Config carries an
// explicit Runtime.
//
// The exported names are a facade over the internal packages; see DESIGN.md
// for the system inventory and EXPERIMENTS.md for the paper-vs-measured
// record.
package skipper

import (
	"io"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/layers"
	"skipper/internal/mem"
	"skipper/internal/models"
	"skipper/internal/serialize"
	"skipper/internal/snn"
	"skipper/internal/stats"
	"skipper/internal/trace"
)

// Execution runtime.
type (
	// Runtime is the shared execution context: the parallel compute pool
	// all kernels run on, the default metrics sink, and the root seed.
	// Trainers, data-parallel replicas, and the serving subsystem all draw
	// from one Runtime, so the process never oversubscribes the machine.
	// Thread count never changes results: kernels partition output elements
	// with lane-independent arithmetic, so a run is bit-identical at
	// threads=1 and threads=N.
	Runtime = core.Runtime
	// RuntimeOption is a functional option for NewRuntime.
	RuntimeOption = core.RuntimeOption
)

// NewRuntime builds the shared execution context. With no options it uses
// all cores, no metrics sink, and a zero seed. Close it to release the
// pool's worker goroutines.
func NewRuntime(opts ...RuntimeOption) *Runtime { return core.NewRuntime(opts...) }

// DefaultRuntime returns the lazily-created process-wide runtime that
// package-level constructors and zero Configs resolve to.
func DefaultRuntime() *Runtime { return core.DefaultRuntime() }

// WithThreads sets the compute-pool width (<= 0 = all cores, 1 = serial).
func WithThreads(n int) RuntimeOption { return core.WithThreads(n) }

// WithMetrics sets the epoch-metrics sink trainers inherit when their
// Config leaves Metrics nil.
func WithMetrics(w io.Writer) RuntimeOption { return core.WithMetrics(w) }

// WithSeed sets the root seed trainers and datasets inherit when no
// explicit seed is given.
func WithSeed(seed uint64) RuntimeOption { return core.WithSeed(seed) }

// Tracer is the low-overhead span/event recorder behind -trace: trainer
// phase spans, serve request lifecycles, pool lane counters, and device
// high-water events all record into one. A nil *Tracer is valid everywhere
// and free (allocation-free no-ops), mirroring the nil-pool convention.
type Tracer = trace.Tracer

// NewTracer builds a tracer bounded at maxEvents (<= 0 = the default cap);
// past the cap events are counted as dropped, not stored.
func NewTracer(maxEvents int) *Tracer { return trace.New(maxEvents) }

// WithTracer attaches a span recorder to the runtime; every component built
// on the runtime reports into it. Nil (the default) disables tracing at
// zero cost.
func WithTracer(t *Tracer) RuntimeOption { return core.WithTracer(t) }

// Training engine.
type (
	// Trainer orchestrates strategy-driven training with memory accounting.
	Trainer = core.Trainer
	// Config holds shared training hyper-parameters.
	Config = core.Config
	// Strategy is one training regime (BPTT, Checkpoint, Skipper, ...).
	Strategy = core.Strategy
	// StepStats reports what one batch did.
	StepStats = core.StepStats
	// EpochStats aggregates an epoch.
	EpochStats = core.EpochStats

	// BPTT is the fully-unrolled baseline.
	BPTT = core.BPTT
	// Checkpoint is temporal activation checkpointing (paper Sec. V).
	Checkpoint = core.Checkpoint
	// Skipper is checkpointing with SAM-guided time-skipping (Sec. VI).
	Skipper = core.Skipper
	// TBPTT is truncated backpropagation through time.
	TBPTT = core.TBPTT
	// TBPTTLBP is truncated BPTT with locally-supervised blocks [28].
	TBPTTLBP = core.TBPTTLBP
	// AdaptiveSkipper is Skipper with activity-aware checkpoint placement
	// (an extension beyond the paper's uniform placement).
	AdaptiveSkipper = core.AdaptiveSkipper

	// SAMMetric scores per-timestep activity for the Spike Activity Monitor.
	SAMMetric = core.SAMMetric
	// SpikeSum is the paper's default SAM metric (Eq. 4).
	SpikeSum = core.SpikeSum
	// WeightedSpikeSum normalises per-layer spike counts by neuron count.
	WeightedSpikeSum = core.WeightedSpikeSum
	// MembraneL2 monitors the membrane-potential norm instead of spikes.
	MembraneL2 = core.MembraneL2

	// DataParallel trains lock-step replicas with gradient all-reduce.
	DataParallel = core.DataParallel
	// PretrainConfig tunes hybrid-style pre-initialisation.
	PretrainConfig = core.PretrainConfig
)

// Device memory model.
type (
	// Device is the instrumented memory accountant standing in for a GPU.
	Device = mem.Device
	// DeviceConfig configures budget, context overhead, and swap.
	DeviceConfig = mem.Config
	// MemCategory tags an allocation's purpose.
	MemCategory = mem.Category
)

// Model building.
type (
	// ModelOptions configures a topology build.
	ModelOptions = models.Options
	// Network is a built spiking network.
	Network = layers.Network
	// NeuronParams are the LIF constants (leak λ, threshold θ).
	NeuronParams = snn.Params
)

// Datasets.
type (
	// Dataset produces spike-train mini-batches.
	Dataset = dataset.Source
	// Split selects train or test data.
	Split = dataset.Split
)

// Memory categories (the paper's breakdown legend).
const (
	MemActivations = mem.Activations
	MemInput       = mem.Input
	MemWeights     = mem.Weights
	MemWeightGrads = mem.WeightGrads
	MemOptimizer   = mem.Optimizer
	MemWorkspace   = mem.Workspace
	MemOther       = mem.Other
)

// Dataset splits.
const (
	TrainSplit = dataset.Train
	TestSplit  = dataset.Test
)

// NewTrainer wires a network, dataset, and strategy together. Close the
// returned trainer to release its device memory. When cfg.Runtime is nil the
// trainer runs on DefaultRuntime's pool; prefer rt.NewTrainer to pin one.
func NewTrainer(net *Network, data Dataset, strat Strategy, cfg Config) (*Trainer, error) {
	return core.NewTrainer(net, data, strat, cfg)
}

// BuildModel constructs one of the paper's topologies by name: "vgg5",
// "vgg11", "resnet20", "lenet", "customnet", "alexnet", or "resnet34".
// The network's kernels run on DefaultRuntime's pool; prefer rt.BuildModel
// to pin a specific Runtime.
func BuildModel(name string, opts ModelOptions) (*Network, error) {
	return DefaultRuntime().BuildModel(name, opts)
}

// ModelNames lists the available topologies.
func ModelNames() []string { return models.Names() }

// OpenDataset opens a synthetic dataset by name: "cifar10", "cifar100",
// "dvsgesture", "nmnist", or "imagenet".
func OpenDataset(name string, seed uint64) (Dataset, error) {
	return dataset.Open(name, seed)
}

// DatasetNames lists the available datasets.
func DatasetNames() []string { return dataset.Names() }

// ErrOutOfMemory is returned (wrapped) when an allocation exceeds a
// device's budget; detect it with errors.Is.
var ErrOutOfMemory = mem.ErrOutOfMemory

// NewDevice creates a memory-accounting device. The zero config is an
// unlimited device.
func NewDevice(cfg DeviceConfig) *Device { return mem.NewDevice(cfg) }

// FormatBytes renders a byte count with binary units.
func FormatBytes(n int64) string { return mem.FormatBytes(n) }

// Pretrain brings a network to a non-random initialisation (the hybrid
// training protocol's fast-convergence starting point).
func Pretrain(net *Network, data Dataset, cfg PretrainConfig) error {
	return core.Pretrain(net, data, cfg)
}

// NewDataParallel builds synchronised training replicas.
func NewDataParallel(r int, factory func(replica int) (*Trainer, error)) (*DataParallel, error) {
	return core.NewDataParallel(r, factory)
}

// MaxSkipPercent returns the Eq. 7 bound on Skipper's skip percentile for a
// horizon T, checkpoint count C, and stateful-layer count Ln.
func MaxSkipPercent(T, C, Ln int) float64 { return core.MaxSkipPercent(T, C, Ln) }

// BestCheckpointCount returns the admissible C closest to the Eq. 3
// optimum √T for a horizon T and stateful-layer count Ln.
func BestCheckpointCount(T, Ln int) (int, error) { return core.BestCheckpointCount(T, Ln) }

// FitOptions tunes Trainer.Fit (epochs, early-stopping patience, callbacks).
type FitOptions = core.FitOptions

// FitResult reports a Trainer.Fit run.
type FitResult = core.FitResult

// Plan is AutoTune's strategy recommendation.
type Plan = core.Plan

// Confusion is a class-by-class confusion matrix (see
// Trainer.EvaluateConfusion).
type Confusion = stats.Confusion

// AutoTune picks the least approximate strategy (BPTT → Checkpoint →
// Skipper) predicted to fit the given device budget, applying the paper's
// Sec. V-A constraint and Eq. 7 bound.
func AutoTune(net *Network, inputShape []int, cfg Config, budget int64) (Plan, error) {
	return core.AutoTune(net, inputShape, cfg, budget)
}

// SaveWeights writes the network's parameters to path (atomic, checksummed).
func SaveWeights(path string, net *Network) error { return serialize.SaveFile(path, net) }

// LoadWeights restores parameters saved by SaveWeights into a network of
// the same topology.
func LoadWeights(path string, net *Network) error { return serialize.LoadFile(path, net) }
