package skipper

import (
	"io"
	"testing"

	"skipper/internal/bench"
	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/models"
	"skipper/internal/tensor"
)

// runExperiment executes one registered paper experiment at Tiny scale.
// There is one benchmark below for every table and figure in the paper's
// evaluation section; run a single one with e.g.
//
//	go test -bench BenchmarkFig7 -benchtime 1x
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.RunConfig{Scale: bench.Tiny, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig 3: motivation — accuracy/memory vs T, tensor breakdown, epoch time vs B.
func BenchmarkFig3ab_AccuracyMemoryVsTimesteps(b *testing.B)  { runExperiment(b, "fig3ab") }
func BenchmarkFig3cd_MemoryBreakdownVsTimesteps(b *testing.B) { runExperiment(b, "fig3cd") }
func BenchmarkFig3ef_EpochTimeVsBatch(b *testing.B)           { runExperiment(b, "fig3ef") }

// Fig 4: ResNet34/ImageNet-surrogate memory breakdown and data parallelism.
func BenchmarkFig4a_ResNet34Breakdown(b *testing.B) { runExperiment(b, "fig4a") }
func BenchmarkFig4b_DataParallel(b *testing.B)      { runExperiment(b, "fig4b") }

// Fig 7: peak memory and compute time vs number of checkpoints C.
func BenchmarkFig7_MemoryVsCheckpoints(b *testing.B) { runExperiment(b, "fig7") }

// Table I: accuracy of 5 networks × 4 training techniques.
func BenchmarkTable1_AccuracyGrid(b *testing.B) { runExperiment(b, "table1") }

// Figs 8–9: LeNet/DVS-gesture from-scratch curves and accuracy vs T.
func BenchmarkFig8_FromScratchCurves(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9_AccuracyVsTimesteps(b *testing.B) { runExperiment(b, "fig9") }

// Figs 10–13: the batch sweep (compute overhead, epoch latency, memory,
// tensor/cache/context breakdown).
func BenchmarkFig10_ComputeOverhead(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11_EpochLatency(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFig12_MemoryVsBatch(b *testing.B)   { runExperiment(b, "fig12") }
func BenchmarkFig13_MemoryBreakdown(b *testing.B) { runExperiment(b, "fig13") }

// Fig 14: timestep scaling under a fixed budget.
func BenchmarkFig14_TimestepScaling(b *testing.B) { runExperiment(b, "fig14") }

// Fig 15: edge device with budget + swap.
func BenchmarkFig15_EdgeDevice(b *testing.B) { runExperiment(b, "fig15") }

// Table II / Fig 16: comparison against TBPTT-LBP [28].
func BenchmarkTable2_VsTBPTTLBP(b *testing.B)       { runExperiment(b, "table2") }
func BenchmarkFig16_VsTBPTTLBPHorizon(b *testing.B) { runExperiment(b, "fig16") }

// Ablations beyond the paper's grid (Sec. VI-A / VIII design choices).
func BenchmarkAblationSAMMetric(b *testing.B)      { runExperiment(b, "ablate-sam") }
func BenchmarkAblationSkipPercentile(b *testing.B) { runExperiment(b, "ablate-p") }
func BenchmarkAblationSurrogate(b *testing.B)      { runExperiment(b, "ablate-surrogate") }

// Serving: loadgen against an in-process server, with and without early
// exit (writes BENCH_serve.json).
func BenchmarkServe(b *testing.B) { runExperiment(b, "bench_serve") }

// --- Kernel and strategy micro-benchmarks ---

func BenchmarkKernelConv2DForward(b *testing.B) {
	s := tensor.ConvSpec{InChannels: 8, OutChannels: 16, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1}
	x := tensor.New(4, 8, 16, 16)
	w := tensor.New(16, 8, 3, 3)
	bias := tensor.New(16)
	tensor.NewRNG(1).FillNorm(x, 0, 1)
	tensor.NewRNG(2).FillNorm(w, 0, 0.1)
	out := tensor.New(4, 16, 16, 16)
	sc := tensor.NewScratch()
	b.SetBytes(x.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2D(nil, out, x, w, bias, s, sc)
	}
}

func BenchmarkKernelMatMul(b *testing.B) {
	m, k, n := 64, 256, 64
	x := tensor.New(m, k)
	y := tensor.New(k, n)
	tensor.NewRNG(1).FillNorm(x, 0, 1)
	tensor.NewRNG(2).FillNorm(y, 0, 1)
	out := tensor.New(m, n)
	b.SetBytes(int64(m*k+k*n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(nil, out, x, y)
	}
}

func BenchmarkKernelLIFStep(b *testing.B) {
	net, err := models.Build("vgg5", models.Options{Width: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(4, 3, 16, 16)
	tensor.NewRNG(1).FillUniform(x, 0, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardStep(x, nil)
	}
}

// benchStrategyBatch times one full train batch under a strategy.
func benchStrategyBatch(b *testing.B, strat core.Strategy) {
	b.Helper()
	const T = 18
	net, err := models.Build("customnet", models.Options{Width: 0.5, InShape: []int{3, 16, 16}})
	if err != nil {
		b.Fatal(err)
	}
	data, err := dataset.Open("cifar10", 1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := core.NewTrainer(net, data, strat, core.Config{T: T, Batch: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	input, labels := data.SpikeBatch(dataset.Train, []int{0, 1, 2, 3}, T)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		if _, err := strat.TrainBatch(tr, input, labels); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyBPTT(b *testing.B)       { benchStrategyBatch(b, core.BPTT{}) }
func BenchmarkStrategyCheckpoint(b *testing.B) { benchStrategyBatch(b, core.Checkpoint{C: 3}) }
func BenchmarkStrategySkipper(b *testing.B)    { benchStrategyBatch(b, core.Skipper{C: 3, P: 30}) }
func BenchmarkStrategyTBPTT(b *testing.B)      { benchStrategyBatch(b, core.TBPTT{Window: 6}) }

func BenchmarkAblationPlacement(b *testing.B) { runExperiment(b, "ablate-placement") }

func BenchmarkAblationSpikeCompression(b *testing.B) { runExperiment(b, "ablate-compress") }
