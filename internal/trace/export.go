package trace

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// WriteChromeTrace dumps the buffer in Chrome trace_event JSON object
// format, loadable in chrome://tracing and Perfetto. Nil-safe: a nil tracer
// writes an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	if t != nil {
		for i, e := range t.snapshot() {
			if i > 0 {
				bw.WriteByte(',')
			}
			writeChromeEvent(bw, e)
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// writeChromeEvent renders one trace_event object. Names and keys come from
// call-site literals, but %q keeps arbitrary strings safe anyway.
func writeChromeEvent(w *bufio.Writer, e event) {
	ph := "X"
	switch e.kind {
	case kindInstant:
		ph = "i"
	case kindCounter:
		ph = "C"
	}
	fmt.Fprintf(w, `{"name":%q,"ph":%q,"pid":1,"tid":%d,"ts":%d`, e.name, ph, e.track, e.ts)
	if e.kind == kindSpan {
		fmt.Fprintf(w, `,"dur":%d`, e.dur)
	}
	if e.kind == kindInstant {
		w.WriteString(`,"s":"t"`)
	}
	if e.nattr > 0 {
		w.WriteString(`,"args":{`)
		for i := 0; i < int(e.nattr); i++ {
			if i > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, `%q:%s`, e.attrs[i].Key, strconv.FormatInt(e.attrs[i].Val, 10))
		}
		w.WriteByte('}')
	}
	w.WriteByte('}')
}

// SpanTotal aggregates every recorded span of one name.
type SpanTotal struct {
	Name  string
	Count int64
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (s SpanTotal) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Totals aggregates the recorded spans per name, largest total first —
// the numbers the plain-text summary and the span-sum acceptance checks
// consume. Nil-safe.
func (t *Tracer) Totals() []SpanTotal {
	if t == nil {
		return nil
	}
	agg := map[string]*SpanTotal{}
	for _, e := range t.snapshot() {
		if e.kind != kindSpan {
			continue
		}
		d := time.Duration(e.dur) * time.Microsecond
		st := agg[e.name]
		if st == nil {
			st = &SpanTotal{Name: e.name, Min: d, Max: d}
			agg[e.name] = st
		}
		st.Count++
		st.Total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	out := make([]SpanTotal, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SpanSeconds returns the summed duration of all spans with the given name.
// Nil-safe.
func (t *Tracer) SpanSeconds(name string) float64 {
	for _, st := range t.Totals() {
		if st.Name == name {
			return st.Total.Seconds()
		}
	}
	return 0
}

// WriteSummary renders the aggregated span table as plain text — the
// /debug/spans page and the post-run console report.
func (t *Tracer) WriteSummary(w io.Writer) {
	if t == nil {
		fmt.Fprintln(w, "tracing disabled (nil tracer)")
		return
	}
	totals := t.Totals()
	fmt.Fprintf(w, "%-24s %10s %14s %12s %12s %12s\n", "span", "count", "total", "mean", "min", "max")
	for _, s := range totals {
		fmt.Fprintf(w, "%-24s %10d %14s %12s %12s %12s\n",
			s.Name, s.Count, round(s.Total), round(s.Mean()), round(s.Min), round(s.Max))
	}
	fmt.Fprintf(w, "events recorded %d, dropped %d\n", t.Len(), t.Dropped())
}

func round(d time.Duration) string { return d.Round(time.Microsecond).String() }

// SummaryHandler serves the plain-text span summary — mounted at
// /debug/spans by the -debug-addr server.
func SummaryHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		t.WriteSummary(w)
	})
}
