package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracerZeroCost pins the nil convention: every recording call on a
// nil tracer is a no-op and allocates nothing, so instrumented hot paths are
// free when tracing is off.
func TestNilTracerZeroCost(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Begin(TrackTrain, "phase")
		s.End(Attr{Key: "n", Val: 1})
		tr.Event(TrackTrain, "evt")
		tr.Counter(TrackPool, "lanes", 4)
		tr.SpanAt(TrackTrain, "wait", time.Time{}, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocates %.1f per run, want 0", allocs)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Totals() != nil || tr.SpanSeconds("phase") != 0 {
		t.Fatal("nil tracer accessors not zero")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil || len(out.TraceEvents) != 0 {
		t.Fatalf("nil tracer chrome dump: %v (%d events)", err, len(out.TraceEvents))
	}
}

func TestSpanRecordingAndTotals(t *testing.T) {
	tr := New(0)
	for i := 0; i < 3; i++ {
		s := tr.Begin(TrackTrain, "recompute")
		time.Sleep(time.Millisecond)
		s.End(Attr{Key: "seg", Val: int64(i)})
	}
	s := tr.Begin(TrackTrain, "backward")
	time.Sleep(2 * time.Millisecond)
	s.End()
	tr.Event(TrackTrain, "divergence", Attr{Key: "batch", Val: 7})
	tr.Counter(TrackPool, "lanes", 4)

	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	totals := tr.Totals()
	if len(totals) != 2 {
		t.Fatalf("Totals has %d names, want 2 (spans only)", len(totals))
	}
	byName := map[string]SpanTotal{}
	for _, st := range totals {
		byName[st.Name] = st
	}
	rc := byName["recompute"]
	if rc.Count != 3 || rc.Total < 3*time.Millisecond || rc.Min <= 0 || rc.Max < rc.Min {
		t.Fatalf("recompute total wrong: %+v", rc)
	}
	if rc.Mean() < time.Millisecond {
		t.Fatalf("recompute mean %v", rc.Mean())
	}
	if got := tr.SpanSeconds("backward"); got < 0.002 {
		t.Fatalf("SpanSeconds(backward) = %v", got)
	}
	if got := tr.SpanSeconds("nosuch"); got != 0 {
		t.Fatalf("SpanSeconds(nosuch) = %v", got)
	}
}

// TestChromeTraceFormat checks the dump is valid JSON with the phases,
// tracks, timestamps, and args Perfetto expects.
func TestChromeTraceFormat(t *testing.T) {
	tr := New(0)
	s := tr.Begin(TrackWorker0+1, "batch_execute")
	time.Sleep(time.Millisecond)
	s.End(Attr{Key: "batch", Val: 8}, Attr{Key: "exit_step", Val: 5})
	tr.Event(TrackTrain, `divergence "guard"`) // name escaping
	tr.Counter(TrackDevice, "reserved_bytes", 1<<20)
	tr.SpanAt(TrackRequest0, "queue_wait", time.Now().Add(-3*time.Millisecond), 3*time.Millisecond)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			Pid  int              `json:"pid"`
			Tid  int              `json:"tid"`
			Ts   int64            `json:"ts"`
			Dur  int64            `json:"dur"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 4 {
		t.Fatalf("%d events, want 4", len(out.TraceEvents))
	}
	span := out.TraceEvents[0]
	if span.Ph != "X" || span.Tid != TrackWorker0+1 || span.Dur < 900 ||
		span.Args["batch"] != 8 || span.Args["exit_step"] != 5 {
		t.Fatalf("span event wrong: %+v", span)
	}
	if out.TraceEvents[1].Ph != "i" || out.TraceEvents[1].Name != `divergence "guard"` {
		t.Fatalf("instant event wrong: %+v", out.TraceEvents[1])
	}
	ctr := out.TraceEvents[2]
	if ctr.Ph != "C" || ctr.Args["value"] != 1<<20 {
		t.Fatalf("counter event wrong: %+v", ctr)
	}
	qw := out.TraceEvents[3]
	if qw.Ph != "X" || qw.Dur < 2900 || qw.Dur > 4000 {
		t.Fatalf("retroactive span wrong: %+v", qw)
	}
}

// TestMaxEventsDrops checks the buffer bound degrades to counting, not
// growing.
func TestMaxEventsDrops(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Event(0, "e")
	}
	if tr.Len() != 4 || tr.Dropped() != 6 {
		t.Fatalf("len %d dropped %d, want 4/6", tr.Len(), tr.Dropped())
	}
}

// TestConcurrentRecording exercises the mutex under -race: trainer, serve
// workers, and the pool all record into one tracer.
func TestConcurrentRecording(t *testing.T) {
	tr := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.Begin(TrackWorker0+g, "work")
				s.End(Attr{Key: "i", Val: int64(i)})
				tr.Counter(TrackPool, "lanes", int64(g))
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 8*200*2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), 8*200*2)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent dump is not valid JSON")
	}
}

func TestSummaryHandler(t *testing.T) {
	tr := New(0)
	s := tr.Begin(TrackTrain, "encode")
	s.End()
	rec := httptest.NewRecorder()
	SummaryHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "encode") || !strings.Contains(body, "events recorded 1") {
		t.Fatalf("summary missing content:\n%s", body)
	}
	rec = httptest.NewRecorder()
	SummaryHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	if !strings.Contains(rec.Body.String(), "tracing disabled") {
		t.Fatalf("nil summary: %s", rec.Body.String())
	}
}
