// Package trace is the runtime's low-overhead span/event recorder: the
// instrument that turns the paper's accounting argument — where every
// millisecond and byte of a training or serving run goes, per phase and per
// tensor category — into something a profiler can open.
//
// # The nil convention
//
// A nil *Tracer is valid everywhere and records nothing, mirroring the nil
// *parallel.Pool convention: hot paths call t.Begin/.End unconditionally and
// pay only a nil check when tracing is off. All recording methods are
// nil-safe and allocation-free on the disabled path (pinned by
// TestNilTracerZeroCost), so tracing can be wired through every kernel-hot
// loop without a build tag or a feature flag.
//
// # Model
//
// Three event kinds, matching the Chrome trace_event phases they export as:
//
//   - spans ("X", complete events): a named duration on a track, opened with
//     Begin and closed with End, or recorded retroactively with SpanAt;
//   - instants ("i"): point events such as a divergence-guard trip;
//   - counters ("C"): sampled numeric series such as pool lane utilization
//     or device high-water marks.
//
// Tracks map to Chrome tids: the trainer records on TrackTrain, serve
// workers on TrackWorker0+i, request lifecycles on per-request tracks so
// overlapping requests do not false-nest.
//
// The recorder is a bounded in-memory buffer guarded by a mutex; events past
// MaxEvents are counted in Dropped rather than grown into, so a runaway
// trace degrades to truncation instead of an OOM.
package trace

import (
	"sync"
	"time"
)

// Well-known tracks (Chrome tids). Anything >= TrackRequest0 is a
// round-robin request lane.
const (
	// TrackTrain carries the trainer's phase spans.
	TrackTrain = 0
	// TrackDist carries the distributed coordinator's per-round protocol
	// spans (shard_dispatch, grad_gather, reduce, broadcast).
	TrackDist = 5
	// TrackRouter carries the serving-fleet router's spans (route,
	// backend_rtt, failover) and fleet-membership events.
	TrackRouter = 7
	// TrackStream carries streaming-session lifecycle and window-skip
	// events (open/resume/export/import, window skipped/full).
	TrackStream = 8
	// TrackDevice carries mem.Device high-water counters.
	TrackDevice = 90
	// TrackPool carries parallel.Pool lane-utilization counters.
	TrackPool = 91
	// TrackWorker0 is the first serve batch worker; worker i records on
	// TrackWorker0 + i.
	TrackWorker0 = 10
	// TrackRequest0 is the base of the request-lifecycle lanes; concurrent
	// requests spread over RequestTracks lanes so their spans do not nest.
	TrackRequest0 = 100
	// RequestTracks is the number of request lanes.
	RequestTracks = 16
)

// Attr is one key/value span or event attribute (a Chrome "args" entry).
type Attr struct {
	Key string
	Val int64
}

// maxAttrs bounds per-event attributes; extras are silently dropped. Four
// covers every call site (batch size, steps, segment, bytes).
const maxAttrs = 4

type kind uint8

const (
	kindSpan kind = iota
	kindInstant
	kindCounter
)

// event is one fixed-size record. Keeping it flat (no per-event heap
// allocations beyond the shared slice growth) is what keeps the enabled
// path under the 2% budget the overhead bench enforces.
type event struct {
	name  string
	ts    int64 // microseconds since the tracer epoch
	dur   int64 // microseconds; spans only
	track int32
	kind  kind
	nattr uint8
	attrs [maxAttrs]Attr
}

// DefaultMaxEvents bounds the buffer when New is given maxEvents <= 0:
// about 1M events, ~100 MB worst case, hours of phase-level tracing.
const DefaultMaxEvents = 1 << 20

// Tracer records spans, instants, and counters into a bounded in-memory
// buffer. Safe for concurrent use. The zero value is not useful; construct
// with New. A nil *Tracer is the canonical "tracing off".
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	events  []event
	max     int
	dropped int64
}

// New returns an enabled tracer whose timestamps are relative to now.
// maxEvents <= 0 means DefaultMaxEvents.
func New(maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Tracer{epoch: time.Now(), max: maxEvents, events: make([]event, 0, 4096)}
}

// Enabled reports whether the tracer records anything. Nil-safe; hot paths
// use it to skip attribute preparation, never to guard Begin/End themselves.
func (t *Tracer) Enabled() bool { return t != nil }

// Span is an open span returned by Begin. The zero Span (from a nil tracer)
// is valid and End on it is a no-op.
type Span struct {
	tr    *Tracer
	name  string
	start time.Time
	track int32
}

// Begin opens a span on a track. Nil-safe and allocation-free when disabled.
func (t *Tracer) Begin(track int, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, start: time.Now(), track: int32(track)}
}

// End closes the span, attaching up to maxAttrs attributes.
func (s Span) End(attrs ...Attr) {
	if s.tr == nil {
		return
	}
	s.tr.record(event{
		name:  s.name,
		track: s.track,
		kind:  kindSpan,
		ts:    s.tr.since(s.start),
		dur:   int64(time.Since(s.start) / time.Microsecond),
	}, attrs)
}

// SpanAt records a span retroactively from an observed start and duration —
// the shape queue-wait measurement needs, where the wait is only known when
// a worker picks the job up.
func (t *Tracer) SpanAt(track int, name string, start time.Time, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.record(event{
		name:  name,
		track: int32(track),
		kind:  kindSpan,
		ts:    t.since(start),
		dur:   int64(d / time.Microsecond),
	}, attrs)
}

// Event records an instant event.
func (t *Tracer) Event(track int, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.record(event{name: name, track: int32(track), kind: kindInstant, ts: t.since(time.Now())}, attrs)
}

// Counter records one sample of a numeric series.
func (t *Tracer) Counter(track int, name string, v int64) {
	if t == nil {
		return
	}
	t.record(event{
		name: name, track: int32(track), kind: kindCounter,
		ts: t.since(time.Now()), nattr: 1, attrs: [maxAttrs]Attr{{Key: "value", Val: v}},
	}, nil)
}

// since converts a wall time to microseconds past the tracer epoch,
// clamping times before the epoch (possible for retroactive spans) to 0.
func (t *Tracer) since(at time.Time) int64 {
	us := int64(at.Sub(t.epoch) / time.Microsecond)
	if us < 0 {
		us = 0
	}
	return us
}

func (t *Tracer) record(e event, attrs []Attr) {
	for _, a := range attrs {
		if e.nattr == maxAttrs {
			break
		}
		e.attrs[e.nattr] = a
		e.nattr++
	}
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded after the buffer filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// snapshot copies the event buffer out under the lock so exporters can walk
// it without blocking recorders.
func (t *Tracer) snapshot() []event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]event, len(t.events))
	copy(out, t.events)
	return out
}
