package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunCoversRangeDisjointly checks every index in [0,n) is visited exactly
// once for a spread of pool widths and range sizes.
func TestRunCoversRangeDisjointly(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 4, 7} {
		p := NewPool(threads)
		for _, n := range []int{0, 1, 2, 3, 7, 64, 1000, 1001} {
			hits := make([]int32, n)
			p.Run(n, func(lane, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d visited %d times", threads, n, i, h)
				}
			}
		}
		p.Close()
	}
}

// TestLaneIndicesDense checks the lane numbers a Run hands out are 0..L-1
// with no gaps and no duplicates, so they can key per-lane scratch slots.
func TestLaneIndicesDense(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	seen := make([]int32, p.Lanes())
	p.Run(1000, func(lane, lo, hi int) {
		atomic.AddInt32(&seen[lane], 1)
	})
	used := 0
	for lane, c := range seen {
		if c > 1 {
			t.Fatalf("lane %d used %d times in one Run", lane, c)
		}
		if c == 1 {
			used++
		}
	}
	if used == 0 {
		t.Fatal("no lanes ran")
	}
	// Used lanes must be the prefix 0..used-1.
	for lane := 0; lane < used; lane++ {
		if seen[lane] != 1 {
			t.Fatalf("lane numbering has a gap at %d", lane)
		}
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Lanes() != 1 {
		t.Fatalf("nil pool Lanes() = %d, want 1", p.Lanes())
	}
	ran := false
	p.Run(10, func(lane, lo, hi int) {
		if lane != 0 || lo != 0 || hi != 10 {
			t.Fatalf("nil pool gave lane=%d [%d,%d), want single inline range", lane, lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("nil pool never invoked fn")
	}
	p.Close() // must not panic
}

// TestRunGrainFloorsLaneWork checks small inputs collapse to fewer lanes so
// per-lane work never drops below the grain.
func TestRunGrainFloorsLaneWork(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var lanes int32
	p.RunGrain(100, 64, func(lane, lo, hi int) {
		atomic.AddInt32(&lanes, 1)
		if hi-lo < 64 && lo != 0 {
			t.Errorf("lane %d got %d indices, below grain", lane, hi-lo)
		}
	})
	if lanes != 1 {
		t.Fatalf("n=100 grain=64 used %d lanes, want 1", lanes)
	}
}

// TestRunGrainNeverBelowGrain pins the documented work floor across the
// partition itself: no lane — including the last — may receive fewer than
// grain indices (unless the whole input is smaller than one grain). The
// pre-fix ceil-chunked split violated this (n=10, grain=3 → lanes 4/4/2).
func TestRunGrainNeverBelowGrain(t *testing.T) {
	cases := []struct {
		threads, n, grain int
	}{
		{4, 10, 3}, // the regression: last lane used to get 2 < 3
		{4, 11, 3},
		{8, 10, 3},
		{4, 100, 33},
		{8, 100, 7},
		{3, 9, 3},
		{4, 12, 3},
		{16, 1000, 64},
		{7, 6, 4},  // n > grain but < 2·grain: one lane
		{4, 2, 5},  // n < grain: one lane of n
		{2, 64, 1}, // grain 1: plain Run partition
	}
	for _, tc := range cases {
		p := NewPool(tc.threads)
		type lane struct{ lo, hi int }
		var mu sync.Mutex
		var got []lane
		p.RunGrain(tc.n, tc.grain, func(_, lo, hi int) {
			mu.Lock()
			got = append(got, lane{lo, hi})
			mu.Unlock()
		})
		p.Close()

		covered := make([]int, tc.n)
		for _, l := range got {
			size := l.hi - l.lo
			if len(got) > 1 && size < tc.grain {
				t.Errorf("threads=%d n=%d grain=%d: lane [%d,%d) has %d indices, below grain",
					tc.threads, tc.n, tc.grain, l.lo, l.hi, size)
			}
			for i := l.lo; i < l.hi; i++ {
				covered[i]++
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("threads=%d n=%d grain=%d: index %d covered %d times",
					tc.threads, tc.n, tc.grain, i, c)
			}
		}
		if want := tc.n / tc.grain; want >= 1 && len(got) > want {
			t.Errorf("threads=%d n=%d grain=%d: %d lanes exceeds floor bound %d",
				tc.threads, tc.n, tc.grain, len(got), want)
		}
	}
}

// TestPoolStats checks the lane-utilization counters behind the pool gauges.
func TestPoolStats(t *testing.T) {
	var nilPool *Pool
	nilPool.Run(16, func(_, _, _ int) {})
	if s := nilPool.Stats(); s != (PoolStats{}) {
		t.Fatalf("nil pool stats = %+v", s)
	}
	nilPool.SetTracer(nil) // must not panic

	p := NewPool(4)
	defer p.Close()
	p.Run(1000, func(_, _, _ int) {})
	p.RunGrain(2, 8, func(_, _, _ int) {}) // collapses to one lane
	s := p.Stats()
	if s.Runs != 2 {
		t.Fatalf("Runs = %d, want 2", s.Runs)
	}
	if s.LanesUsed != 4+1 {
		t.Fatalf("LanesUsed = %d, want 5", s.LanesUsed)
	}
	if m := s.MeanLanes(); m < 2.4 || m > 2.6 {
		t.Fatalf("MeanLanes = %v, want 2.5", m)
	}
	if (PoolStats{}).MeanLanes() != 0 {
		t.Fatal("idle MeanLanes must be 0")
	}
}

// TestConcurrentSubmitters proves many goroutines can share one pool: each
// submitter fills a private slice through Run, so disjoint-output kernels on
// different buffers never interfere.
func TestConcurrentSubmitters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const submitters, n = 8, 4096
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(tag int) {
			defer wg.Done()
			buf := make([]int, n)
			for rep := 0; rep < 20; rep++ {
				p.Run(n, func(lane, lo, hi int) {
					for i := lo; i < hi; i++ {
						buf[i] = tag + i
					}
				})
				for i, v := range buf {
					if v != tag+i {
						t.Errorf("submitter %d: buf[%d] = %d, want %d", tag, i, v, tag+i)
						return
					}
				}
			}
		}(s * 1000)
	}
	wg.Wait()
}

func TestNewPoolDefaultsToNumCPU(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Lanes() < 1 {
		t.Fatalf("NewPool(0).Lanes() = %d", p.Lanes())
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	p.Close()
	p.Close()
}
