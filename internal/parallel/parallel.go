// Package parallel is the shared execution runtime the hot tensor kernels
// run on: a pool of long-lived worker goroutines that fan statically
// partitioned index ranges out across CPU cores.
//
// # Determinism contract
//
// Every kernel built on the pool partitions its OUTPUT elements, never a
// shared accumulator: a range [0,n) is split into contiguous lanes, each
// output element is computed entirely inside the lane that owns it, and the
// per-element arithmetic is byte-for-byte the code the serial path runs.
// Because no float is ever combined across lanes, the result is bit-identical
// to the serial kernel for every pool size — the lane boundaries only decide
// WHO computes an element, not HOW it is computed. This is what keeps
// kill/resume replays and the divergence-guard equality checks exact when
// threads > 1, and it is stronger than an ordered reduction: there is no
// reduction at all.
//
// # Scheduling
//
// Run splits [0,n) into at most Lanes() near-equal contiguous chunks. The
// submitting goroutine always executes lane 0 itself (so a pool is never
// idle-blocked on its own submitter) and hands lanes 1..L-1 to the worker
// goroutines. Multiple goroutines may submit to one pool concurrently — the
// serving worker replicas share a single pool this way — because lane
// scratch is owned by the caller (see tensor.Scratch), not the pool.
//
// Kernels are leaves: fn must not call back into Run on the same pool, or a
// busy pool can deadlock waiting on itself.
package parallel

import (
	"runtime"
	"sync"
)

// Pool fans contiguous index ranges out to worker goroutines. The zero of
// the type is not useful; construct with NewPool. A nil *Pool is valid
// everywhere and runs everything inline on the calling goroutine — it is the
// canonical "serial" pool.
type Pool struct {
	lanes     int
	tasks     chan task
	closeOnce sync.Once
}

type task struct {
	fn           func(lane, lo, hi int)
	lane, lo, hi int
	wg           *sync.WaitGroup
}

// NewPool builds a pool with the given number of lanes. threads <= 0 means
// runtime.NumCPU(). A 1-lane pool spawns no goroutines and runs inline.
func NewPool(threads int) *Pool {
	if threads <= 0 {
		threads = runtime.NumCPU()
	}
	p := &Pool{lanes: threads}
	if threads > 1 {
		p.tasks = make(chan task, 4*threads)
		// Lane 0 of every Run executes on the submitting goroutine, so
		// threads-1 workers saturate the requested width.
		for i := 0; i < threads-1; i++ {
			go p.work()
		}
	}
	return p
}

func (p *Pool) work() {
	for t := range p.tasks {
		t.fn(t.lane, t.lo, t.hi)
		t.wg.Done()
	}
}

// Lanes returns the partition width Run uses. A nil pool has one lane.
func (p *Pool) Lanes() int {
	if p == nil || p.lanes < 1 {
		return 1
	}
	return p.lanes
}

// Run partitions [0, n) into Lanes() near-equal contiguous ranges and
// invokes fn once per non-empty range, concurrently. fn receives the lane
// index (0-based, dense — usable as a scratch-buffer key) and its [lo, hi)
// range. Run returns when every lane has finished. Lane writes must be
// disjoint; see the package comment for the determinism contract.
func (p *Pool) Run(n int, fn func(lane, lo, hi int)) {
	p.RunGrain(n, 1, fn)
}

// RunGrain is Run with a floor on per-lane work: the partition never puts
// fewer than grain indices in a lane (except the only lane of a small n), so
// tiny inputs stay on the calling goroutine instead of paying the handoff.
// The floor changes only how many lanes participate — per-element arithmetic
// is lane-independent, so results do not depend on grain.
func (p *Pool) RunGrain(n, grain int, fn func(lane, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	lanes := p.Lanes()
	if max := n / grain; lanes > max {
		lanes = max
	}
	if lanes <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + lanes - 1) / lanes
	var wg sync.WaitGroup
	lane := 1
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.tasks <- task{fn: fn, lane: lane, lo: lo, hi: hi, wg: &wg}
		lane++
	}
	fn(0, 0, chunk)
	wg.Wait()
}

// Close terminates the worker goroutines. Safe to call more than once; Run
// must not be called after Close. Closing a nil or 1-lane pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil {
		return
	}
	p.closeOnce.Do(func() { close(p.tasks) })
}
