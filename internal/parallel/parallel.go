// Package parallel is the shared execution runtime the hot tensor kernels
// run on: a pool of long-lived worker goroutines that fan statically
// partitioned index ranges out across CPU cores.
//
// # Determinism contract
//
// Every kernel built on the pool partitions its OUTPUT elements, never a
// shared accumulator: a range [0,n) is split into contiguous lanes, each
// output element is computed entirely inside the lane that owns it, and the
// per-element arithmetic is byte-for-byte the code the serial path runs.
// Because no float is ever combined across lanes, the result is bit-identical
// to the serial kernel for every pool size — the lane boundaries only decide
// WHO computes an element, not HOW it is computed. This is what keeps
// kill/resume replays and the divergence-guard equality checks exact when
// threads > 1, and it is stronger than an ordered reduction: there is no
// reduction at all.
//
// # Scheduling
//
// Run splits [0,n) into at most Lanes() near-equal contiguous chunks. The
// submitting goroutine always executes lane 0 itself (so a pool is never
// idle-blocked on its own submitter) and hands lanes 1..L-1 to the worker
// goroutines. Multiple goroutines may submit to one pool concurrently — the
// serving worker replicas share a single pool this way — because lane
// scratch is owned by the caller (see tensor.Scratch), not the pool.
//
// Kernels are leaves: fn must not call back into Run on the same pool, or a
// busy pool can deadlock waiting on itself.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"skipper/internal/trace"
)

// Pool fans contiguous index ranges out to worker goroutines. The zero of
// the type is not useful; construct with NewPool. A nil *Pool is valid
// everywhere and runs everything inline on the calling goroutine — it is the
// canonical "serial" pool.
type Pool struct {
	lanes     int
	tasks     chan task
	closeOnce sync.Once

	// Lane-utilization counters: how many Run/RunGrain calls the pool served
	// and how many lanes they actually occupied (after the grain floor), the
	// numbers behind the skipper_pool_* metrics and the sampled "pool_lanes"
	// trace counter.
	runs      atomic.Int64
	lanesUsed atomic.Int64
	tracer    atomic.Pointer[trace.Tracer]
}

type task struct {
	fn           func(lane, lo, hi int)
	lane, lo, hi int
	wg           *sync.WaitGroup
}

// NewPool builds a pool with the given number of lanes. threads <= 0 means
// runtime.NumCPU(). A 1-lane pool spawns no goroutines and runs inline.
func NewPool(threads int) *Pool {
	if threads <= 0 {
		threads = runtime.NumCPU()
	}
	p := &Pool{lanes: threads}
	if threads > 1 {
		p.tasks = make(chan task, 4*threads)
		// Lane 0 of every Run executes on the submitting goroutine, so
		// threads-1 workers saturate the requested width.
		for i := 0; i < threads-1; i++ {
			go p.work()
		}
	}
	return p
}

func (p *Pool) work() {
	for t := range p.tasks {
		t.fn(t.lane, t.lo, t.hi)
		t.wg.Done()
	}
}

// Lanes returns the partition width Run uses. A nil pool has one lane.
func (p *Pool) Lanes() int {
	if p == nil || p.lanes < 1 {
		return 1
	}
	return p.lanes
}

// Run partitions [0, n) into Lanes() near-equal contiguous ranges and
// invokes fn once per non-empty range, concurrently. fn receives the lane
// index (0-based, dense — usable as a scratch-buffer key) and its [lo, hi)
// range. Run returns when every lane has finished. Lane writes must be
// disjoint; see the package comment for the determinism contract.
func (p *Pool) Run(n int, fn func(lane, lo, hi int)) {
	p.RunGrain(n, 1, fn)
}

// RunGrain is Run with a floor on per-lane work: the partition never puts
// fewer than grain indices in a lane (except the only lane of a small n), so
// tiny inputs stay on the calling goroutine instead of paying the handoff.
// The floor changes only how many lanes participate — per-element arithmetic
// is lane-independent, so results do not depend on grain.
func (p *Pool) RunGrain(n, grain int, fn func(lane, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	// Lane count comes from the floor first: with lanes <= n/grain, the
	// balanced partition below gives every lane at least floor(n/lanes) >=
	// grain indices, so the documented work floor holds for every lane —
	// including the last one, which a naive ceil-chunked split can starve
	// (n=10, grain=3 used to produce lanes of 4/4/2).
	lanes := p.Lanes()
	if max := n / grain; lanes > max {
		lanes = max
	}
	if lanes <= 1 {
		p.observe(1)
		fn(0, 0, n)
		return
	}
	p.observe(lanes)
	// Balanced partition: base or base+1 indices per lane, remainder on the
	// leading lanes. Lane 0 runs on the submitting goroutine.
	base, rem := n/lanes, n%lanes
	lane0hi := base
	if rem > 0 {
		lane0hi++
	}
	var wg sync.WaitGroup
	lo := lane0hi
	for lane := 1; lane < lanes; lane++ {
		hi := lo + base
		if lane < rem {
			hi++
		}
		wg.Add(1)
		p.tasks <- task{fn: fn, lane: lane, lo: lo, hi: hi, wg: &wg}
		lo = hi
	}
	fn(0, 0, lane0hi)
	wg.Wait()
}

// observe folds one Run's lane occupancy into the utilization counters and,
// when a tracer is attached, emits a sampled "pool_lanes" counter event
// (every 1024th call — kernels submit thousands of Runs per batch, and the
// sampled series is plenty to see utilization collapse in a trace).
func (p *Pool) observe(lanes int) {
	if p == nil {
		return
	}
	runs := p.runs.Add(1)
	p.lanesUsed.Add(int64(lanes))
	if runs&1023 != 0 {
		return
	}
	if t := p.tracer.Load(); t != nil {
		t.Counter(trace.TrackPool, "pool_lanes", int64(lanes))
	}
}

// SetTracer attaches a tracer for the sampled lane-utilization counter.
// Safe to call at any time; nil detaches.
func (p *Pool) SetTracer(t *trace.Tracer) {
	if p == nil {
		return
	}
	p.tracer.Store(t)
}

// Stats reports the pool's cumulative Run count and the lanes those runs
// occupied; MeanLanes is the utilization a dashboard plots against Lanes().
// Nil-safe.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{Runs: p.runs.Load(), LanesUsed: p.lanesUsed.Load()}
}

// PoolStats is a snapshot of the lane-utilization counters.
type PoolStats struct {
	Runs      int64
	LanesUsed int64
}

// MeanLanes returns the average lanes occupied per Run (0 when idle).
func (s PoolStats) MeanLanes() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.LanesUsed) / float64(s.Runs)
}

// Close terminates the worker goroutines. Safe to call more than once; Run
// must not be called after Close. Closing a nil or 1-lane pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil {
		return
	}
	p.closeOnce.Do(func() { close(p.tasks) })
}
