package models

import (
	"testing"

	"skipper/internal/layers"
	"skipper/internal/tensor"
)

// countLayers tallies conv and linear layers the way the paper's Table I
// "# layers" row does (residual blocks contribute their convolutions).
func countLayers(net *layers.Network) (conv, lin int) {
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *layers.SpikingConv2D:
			conv++
		case *layers.ResidualBlock:
			conv += 2 // main-path convolutions; projection shortcuts not counted
		case *layers.SpikingLinear:
			_ = v
			lin++
		}
	}
	return conv, lin
}

func TestTopologyLayerCountsMatchTableI(t *testing.T) {
	cases := []struct {
		name      string
		conv, lin int
	}{
		{"vgg5", 3, 3},
		{"vgg11", 9, 3},
		{"resnet20", 19, 1}, // stem + 18 block convs, 1 linear readout
		{"lenet", 5, 1},
		{"customnet", 3, 1},
		{"alexnet", 5, 3},
		{"resnet34", 33, 1}, // stem + 32 block convs
	}
	for _, c := range cases {
		net, err := Build(c.name, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		conv, lin := countLayers(net)
		if conv != c.conv || lin != c.lin {
			t.Fatalf("%s: conv(%d)+lin(%d), want conv(%d)+lin(%d)", c.name, conv, lin, c.conv, c.lin)
		}
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := Build("nope", Options{}); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("Names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestAllModelsForwardOneStep(t *testing.T) {
	for _, name := range Names() {
		net, err := Build(name, Options{Classes: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in := net.InShape
		x := tensor.New(2, in[0], in[1], in[2])
		tensor.NewRNG(1).FillUniform(x, 0, 1.5)
		states := net.ForwardStep(x, nil)
		logits := net.Logits(states)
		if logits.Dim(0) != 2 || logits.Dim(1) != 4 {
			t.Fatalf("%s logits shape %v", name, logits.Shape())
		}
		// A second step reusing state exercises the temporal recursion.
		states = net.ForwardStep(x, states)
		if !net.Logits(states).IsFinite() {
			t.Fatalf("%s produced non-finite logits", name)
		}
	}
}

func TestDeterministicInitialisation(t *testing.T) {
	a, err := Build("vgg5", Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("vgg5", Options{})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatal("param count mismatch")
	}
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("weights differ at %s[%d]", pa[i].Name, j)
			}
		}
	}
}

func TestWidthScaling(t *testing.T) {
	small, _ := Build("vgg5", Options{Width: 0.5})
	big, _ := Build("vgg5", Options{Width: 2})
	if small.ParamCount() >= big.ParamCount() {
		t.Fatalf("width scaling broken: %d vs %d", small.ParamCount(), big.ParamCount())
	}
}

func TestDropoutOption(t *testing.T) {
	with, _ := Build("vgg5", Options{DropoutP: 0.3})
	found := false
	for _, l := range with.Layers {
		if _, ok := l.(*layers.Dropout); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("DropoutP should add a dropout layer")
	}
	without, _ := Build("vgg5", Options{})
	for _, l := range without.Layers {
		if _, ok := l.(*layers.Dropout); ok {
			t.Fatal("dropout present without DropoutP")
		}
	}
}

func TestStatefulCounts(t *testing.T) {
	// L_n values drive the T/C > L_n constraint; pin them down.
	cases := map[string]int{
		"vgg5":      6,  // 3 conv + 2 fc + readout
		"vgg11":     12, // 9 conv + 2 fc + readout
		"resnet20":  20, // stem + 9 blocks×2 + readout
		"lenet":     6,  // 5 conv + readout
		"customnet": 4,  // 3 conv + readout
		"alexnet":   8,  // 5 conv + 2 fc + readout
		"resnet34":  34, // stem + 16 blocks×2 + readout
	}
	for name, want := range cases {
		net, err := Build(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := net.StatefulCount(); got != want {
			t.Fatalf("%s L_n = %d, want %d", name, got, want)
		}
	}
}

func TestEventModelsTakeTwoChannels(t *testing.T) {
	for _, name := range []string{"lenet", "customnet"} {
		net, err := Build(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if net.InShape[0] != 2 {
			t.Fatalf("%s default input channels = %d, want 2 (ON/OFF polarity)", name, net.InShape[0])
		}
	}
}

func TestCustomInShape(t *testing.T) {
	net, err := Build("vgg5", Options{InShape: []int{3, 32, 32}})
	if err != nil {
		t.Fatal(err)
	}
	if net.InShape[1] != 32 {
		t.Fatalf("InShape override ignored: %v", net.InShape)
	}
}

func TestBatchNormOption(t *testing.T) {
	net, err := Build("vgg5", Options{BatchNorm: true})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, l := range net.Layers {
		if _, ok := l.(*layers.TemporalBatchNorm); ok {
			found++
		}
	}
	if found != 3 {
		t.Fatalf("BatchNorm option inserted %d layers, want 3", found)
	}
	// BN layers are stateless: L_n unchanged.
	if net.StatefulCount() != 6 {
		t.Fatalf("L_n changed to %d with BN", net.StatefulCount())
	}
	// Forward still works.
	x := tensor.New(2, 3, 16, 16)
	tensor.NewRNG(1).FillUniform(x, 0, 1)
	net.BeginIteration(tensor.NewRNG(2))
	states := net.ForwardStep(x, nil)
	if !net.Logits(states).IsFinite() {
		t.Fatal("non-finite logits with BN")
	}
	net.EndIteration()
}
