// Package models builds the network topologies the paper evaluates: VGG5,
// VGG11, ResNet20, LeNet, custom-Net (Table I), AlexNet (the comparison with
// TBPTT-LBP, Table II / Fig 16), and ResNet34 (the ImageNet memory study,
// Fig 4). Layer counts match the paper's "# layers" row exactly — those
// counts (L_n) drive the T/C > L_n constraint and the Eq. 7 skip bound — and
// only the channel widths are scaled down so the pure-Go substrate can
// execute the full experiment grid.
package models

import (
	"fmt"
	"sort"

	"skipper/internal/layers"
	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// Options configures a topology build.
type Options struct {
	// Classes is the output dimension. Zero means 10.
	Classes int
	// InShape is the per-sample input shape [C,H,W]. Zero value picks the
	// topology's default (3×16×16 frame or 2×16×16 event).
	InShape []int
	// Width scales all channel widths; 0 means 1.0.
	Width float64
	// Neuron overrides the LIF constants; zero value means snn.DefaultParams.
	Neuron snn.Params
	// Surrogate overrides the surrogate gradient; nil means snn.Triangle.
	Surrogate snn.Surrogate
	// DropoutP is the classifier dropout probability; 0 disables. Nets
	// without classifier dropout ignore it.
	DropoutP float32
	// BatchNorm inserts temporal batch normalisation (tdBN) after each
	// convolution in the topologies that support it (VGG5, LeNet).
	BatchNorm bool
}

func (o Options) normalize(defaultIn []int) Options {
	if o.Classes == 0 {
		o.Classes = 10
	}
	if len(o.InShape) == 0 {
		o.InShape = defaultIn
	}
	if o.Width == 0 {
		o.Width = 1
	}
	if (o.Neuron == snn.Params{}) {
		o.Neuron = snn.DefaultParams()
	}
	if o.Surrogate == nil {
		o.Surrogate = snn.Triangle{}
	}
	return o
}

func (o Options) ch(base int) int {
	c := int(float64(base) * o.Width)
	if c < 1 {
		c = 1
	}
	return c
}

// Builder constructs a topology.
type Builder func(Options) (*layers.Network, error)

var registry = map[string]Builder{
	"vgg5":      VGG5,
	"vgg11":     VGG11,
	"resnet20":  ResNet20,
	"lenet":     LeNet,
	"customnet": CustomNet,
	"alexnet":   AlexNet,
	"resnet34":  ResNet34,
}

// Build constructs a registered topology by name.
func Build(name string, opts Options) (*layers.Network, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return b(opts)
}

// Names lists the registered topologies, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var frameIn = []int{3, 16, 16}
var eventIn = []int{2, 16, 16}

// VGG5 is the small frame-data network of Table I: conv(3)+lin(3),
// evaluated on CIFAR10 at T=100 in the paper.
func VGG5(o Options) (*layers.Network, error) {
	o = o.normalize(frameIn)
	n, s := o.Neuron, o.Surrogate
	var ls []layers.Layer
	addConv := func(name string, ch int) {
		ls = append(ls, layers.NewSpikingConv2D(name, ch, 3, 1, 1, n, s))
		if o.BatchNorm {
			ls = append(ls, layers.NewTemporalBatchNorm(name+".bn"))
		}
	}
	addConv("conv1", o.ch(16))
	ls = append(ls, layers.NewAvgPool2D("pool1", 2))
	addConv("conv2", o.ch(32))
	ls = append(ls, layers.NewAvgPool2D("pool2", 2))
	addConv("conv3", o.ch(32))
	ls = append(ls, layers.NewAvgPool2D("pool3", 2))
	if o.DropoutP > 0 {
		ls = append(ls, layers.NewDropout("drop1", o.DropoutP))
	}
	ls = append(ls,
		layers.NewSpikingLinear("fc1", o.ch(64), n, s),
		layers.NewSpikingLinear("fc2", o.ch(64), n, s),
		layers.NewReadout("out", o.Classes, n),
	)
	net := layers.NewNetwork("VGG5", o.InShape, ls...)
	return net, net.Build(buildRNG("vgg5"))
}

// VGG11 is the large frame-data network of Table I: conv(9)+lin(3),
// evaluated on CIFAR100 at T=125 in the paper.
func VGG11(o Options) (*layers.Network, error) {
	o = o.normalize(frameIn)
	n, s := o.Neuron, o.Surrogate
	ls := []layers.Layer{
		layers.NewSpikingConv2D("conv1", o.ch(16), 3, 1, 1, n, s),
		layers.NewAvgPool2D("pool1", 2),
		layers.NewSpikingConv2D("conv2", o.ch(32), 3, 1, 1, n, s),
		layers.NewSpikingConv2D("conv3", o.ch(32), 3, 1, 1, n, s),
		layers.NewAvgPool2D("pool2", 2),
		layers.NewSpikingConv2D("conv4", o.ch(64), 3, 1, 1, n, s),
		layers.NewSpikingConv2D("conv5", o.ch(64), 3, 1, 1, n, s),
		layers.NewAvgPool2D("pool3", 2),
		layers.NewSpikingConv2D("conv6", o.ch(64), 3, 1, 1, n, s),
		layers.NewSpikingConv2D("conv7", o.ch(64), 3, 1, 1, n, s),
		layers.NewSpikingConv2D("conv8", o.ch(64), 3, 1, 1, n, s),
		layers.NewSpikingConv2D("conv9", o.ch(64), 3, 1, 1, n, s),
	}
	if o.DropoutP > 0 {
		ls = append(ls, layers.NewDropout("drop1", o.DropoutP))
	}
	ls = append(ls,
		layers.NewSpikingLinear("fc1", o.ch(128), n, s),
		layers.NewSpikingLinear("fc2", o.ch(64), n, s),
		layers.NewReadout("out", o.Classes, n),
	)
	net := layers.NewNetwork("VGG11", o.InShape, ls...)
	return net, net.Build(buildRNG("vgg11"))
}

// resNet builds a CIFAR-style residual stack: a stem conv, then stages of
// basic blocks with the given per-stage block counts and widths, global
// average pooling, and a readout.
func resNet(name string, o Options, blocks []int, widths []int) (*layers.Network, error) {
	n, s := o.Neuron, o.Surrogate
	ls := []layers.Layer{
		layers.NewSpikingConv2D("stem", o.ch(widths[0]), 3, 1, 1, n, s),
	}
	for stage, nb := range blocks {
		w := o.ch(widths[stage])
		for b := 0; b < nb; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			ls = append(ls, layers.NewResidualBlock(
				fmt.Sprintf("s%db%d", stage+1, b+1), w, stride, n, s))
		}
	}
	ls = append(ls,
		layers.NewGlobalAvgPool("gap"),
		layers.NewReadout("out", o.Classes, n),
	)
	net := layers.NewNetwork(name, o.InShape, ls...)
	return net, net.Build(buildRNG(name))
}

// ResNet20 is the deep frame-data network of Table I: a stem conv plus
// 3 stages × 3 basic blocks (19 convs) and one linear readout, evaluated on
// CIFAR10 at T=250 in the paper.
func ResNet20(o Options) (*layers.Network, error) {
	o = o.normalize(frameIn)
	return resNet("ResNet20", o, []int{3, 3, 3}, []int{8, 16, 32})
}

// ResNet34 is the ImageNet-scale network of the paper's Fig 4 memory study:
// a stem conv plus stages of 3/4/6/3 basic blocks.
func ResNet34(o Options) (*layers.Network, error) {
	o = o.normalize([]int{3, 32, 32})
	return resNet("ResNet34", o, []int{3, 4, 6, 3}, []int{8, 16, 32, 64})
}

// LeNet is the event-data network of Table I: conv(5)+lin(1), evaluated on
// DVS-Gesture at T=400 in the paper.
func LeNet(o Options) (*layers.Network, error) {
	o = o.normalize(eventIn)
	n, s := o.Neuron, o.Surrogate
	ls := []layers.Layer{
		layers.NewSpikingConv2D("conv1", o.ch(8), 3, 1, 1, n, s),
		layers.NewSpikingConv2D("conv2", o.ch(8), 3, 1, 1, n, s),
		layers.NewAvgPool2D("pool1", 2),
		layers.NewSpikingConv2D("conv3", o.ch(16), 3, 1, 1, n, s),
		layers.NewSpikingConv2D("conv4", o.ch(16), 3, 1, 1, n, s),
		layers.NewAvgPool2D("pool2", 2),
		layers.NewSpikingConv2D("conv5", o.ch(32), 3, 1, 1, n, s),
		layers.NewGlobalAvgPool("gap"),
		layers.NewReadout("out", o.Classes, n),
	}
	net := layers.NewNetwork("LeNet", o.InShape, ls...)
	return net, net.Build(buildRNG("lenet"))
}

// CustomNet is the small event-data network of Table I: conv(3)+lin(1),
// evaluated on N-MNIST at T=300 in the paper.
func CustomNet(o Options) (*layers.Network, error) {
	o = o.normalize(eventIn)
	n, s := o.Neuron, o.Surrogate
	ls := []layers.Layer{
		layers.NewSpikingConv2D("conv1", o.ch(8), 3, 1, 1, n, s),
		layers.NewAvgPool2D("pool1", 2),
		layers.NewSpikingConv2D("conv2", o.ch(16), 3, 1, 1, n, s),
		layers.NewAvgPool2D("pool2", 2),
		layers.NewSpikingConv2D("conv3", o.ch(32), 3, 1, 1, n, s),
		layers.NewGlobalAvgPool("gap"),
		layers.NewReadout("out", o.Classes, n),
	}
	net := layers.NewNetwork("custom-Net", o.InShape, ls...)
	return net, net.Build(buildRNG("customnet"))
}

// AlexNet is the topology used for the comparison with TBPTT-LBP [28]
// (Table II, Fig 16): conv(5)+lin(3) on CIFAR10.
func AlexNet(o Options) (*layers.Network, error) {
	o = o.normalize(frameIn)
	n, s := o.Neuron, o.Surrogate
	ls := []layers.Layer{
		layers.NewSpikingConv2D("conv1", o.ch(8), 3, 1, 1, n, s),
		layers.NewSpikingConv2D("conv2", o.ch(16), 3, 1, 1, n, s),
		layers.NewAvgPool2D("pool1", 2),
		layers.NewSpikingConv2D("conv3", o.ch(32), 3, 1, 1, n, s),
		layers.NewSpikingConv2D("conv4", o.ch(32), 3, 1, 1, n, s),
		layers.NewAvgPool2D("pool2", 2),
		layers.NewSpikingConv2D("conv5", o.ch(32), 3, 1, 1, n, s),
		layers.NewAvgPool2D("pool3", 2),
	}
	if o.DropoutP > 0 {
		ls = append(ls, layers.NewDropout("drop1", o.DropoutP))
	}
	ls = append(ls,
		layers.NewSpikingLinear("fc1", o.ch(128), n, s),
		layers.NewSpikingLinear("fc2", o.ch(64), n, s),
		layers.NewReadout("out", o.Classes, n),
	)
	net := layers.NewNetwork("AlexNet", o.InShape, ls...)
	return net, net.Build(buildRNG("alexnet"))
}

// buildRNG derives a deterministic init stream per topology so that two
// builds of the same model start from identical weights — the paper's
// "skipper starts at an equal footing with the baseline" protocol.
func buildRNG(name string) *tensor.RNG {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return tensor.NewRNG(h)
}
