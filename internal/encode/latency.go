package encode

import (
	"fmt"

	"skipper/internal/tensor"
)

// Latency is a time-to-first-spike encoder: each pixel emits exactly one
// spike, earlier for brighter pixels — t = round((1−value)·(T−1)) — and
// pixels below MinIntensity stay silent. Latency coding is the standard
// sparse alternative to Poisson rate coding in the SNN literature; it
// stresses the temporal dimension differently (all information in timing,
// total spike count fixed), which makes it a useful counterpoint for
// activity-driven mechanisms like SAM.
type Latency struct {
	// MinIntensity silences pixels dimmer than this; 0 means 0.05.
	MinIntensity float32
}

// EncodeTrain expands frames [B,C,H,W] with values in [0,1] into a
// T-timestep spike train.
func (l Latency) EncodeTrain(frames *tensor.Tensor, T int) []*tensor.Tensor {
	if T < 1 {
		panic(fmt.Sprintf("encode: latency train needs T >= 1, got %d", T))
	}
	min := l.MinIntensity
	if min == 0 {
		min = 0.05
	}
	train := make([]*tensor.Tensor, T)
	for t := range train {
		train[t] = tensor.New(frames.Shape()...)
	}
	for i, v := range frames.Data {
		if v < min {
			continue
		}
		if v > 1 {
			v = 1
		}
		t := int((1 - v) * float32(T-1) * 0.999999)
		train[t].Data[i] = 1
	}
	return train
}

// SpikeBudget returns the exact number of spikes the encoder will emit for
// the given frames — useful for verifying the fixed-count property.
func (l Latency) SpikeBudget(frames *tensor.Tensor) int {
	min := l.MinIntensity
	if min == 0 {
		min = 0.05
	}
	n := 0
	for _, v := range frames.Data {
		if v >= min {
			n++
		}
	}
	return n
}
