package encode

import (
	"math"
	"testing"

	"skipper/internal/tensor"
)

func TestPoissonDeterministic(t *testing.T) {
	p := Poisson{Seed: 42}
	frames := tensor.New(2, 1, 4, 4)
	tensor.NewRNG(1).FillUniform(frames, 0, 1)
	ids := []uint64{10, 11}
	a := tensor.New(2, 1, 4, 4)
	b := tensor.New(2, 1, 4, 4)
	p.EncodeStep(a, frames, ids, 3)
	p.EncodeStep(b, frames, ids, 3)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("EncodeStep not deterministic")
		}
	}
	// Different timestep must differ (with overwhelming probability).
	c := tensor.New(2, 1, 4, 4)
	p.EncodeStep(c, frames, ids, 4)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different timesteps produced identical spikes")
	}
}

func TestPoissonIndependentOfBatchComposition(t *testing.T) {
	p := Poisson{Seed: 7}
	frame := tensor.New(1, 1, 4, 4)
	tensor.NewRNG(2).FillUniform(frame, 0, 1)
	solo := tensor.New(1, 1, 4, 4)
	p.EncodeStep(solo, frame, []uint64{5}, 0)

	pair := tensor.New(2, 1, 4, 4)
	copy(pair.Data[16:], frame.Data)
	out := tensor.New(2, 1, 4, 4)
	p.EncodeStep(out, pair, []uint64{9, 5}, 0)
	for i := 0; i < 16; i++ {
		if out.Data[16+i] != solo.Data[i] {
			t.Fatal("encoding depends on batch position")
		}
	}
}

func TestPoissonRateMatchesIntensity(t *testing.T) {
	p := Poisson{Seed: 3}
	frames := tensor.New(1, 1, 1, 1)
	frames.Data[0] = 0.4
	hits := 0
	const T = 5000
	dst := tensor.New(1, 1, 1, 1)
	for tt := 0; tt < T; tt++ {
		p.EncodeStep(dst, frames, []uint64{0}, tt)
		if dst.Data[0] == 1 {
			hits++
		}
	}
	rate := float64(hits) / T
	if math.Abs(rate-0.4) > 0.03 {
		t.Fatalf("empirical rate %v, want ~0.4", rate)
	}
}

func TestPoissonMaxRateScales(t *testing.T) {
	p := Poisson{Seed: 3, MaxRate: 0.5}
	frames := tensor.New(1, 1, 1, 1)
	frames.Data[0] = 1.0
	hits := 0
	const T = 4000
	dst := tensor.New(1, 1, 1, 1)
	for tt := 0; tt < T; tt++ {
		p.EncodeStep(dst, frames, []uint64{0}, tt)
		if dst.Data[0] == 1 {
			hits++
		}
	}
	rate := float64(hits) / T
	if math.Abs(rate-0.5) > 0.03 {
		t.Fatalf("empirical rate %v, want ~0.5", rate)
	}
}

// TestPoissonIDHighBitsMatter is the regression test for the sample-id
// truncation bug: the serving path feeds 64-bit content hashes through the
// encoder, and the old []int signature chopped them to 32 bits on 32-bit
// platforms. Encodings must depend on id bits above bit 31 — if they were
// truncated, the two ids below would collide and produce identical spikes.
func TestPoissonIDHighBitsMatter(t *testing.T) {
	p := Poisson{Seed: 42, MaxRate: 0.5}
	frames := tensor.New(1, 1, 8, 8)
	tensor.NewRNG(9).FillUniform(frames, 0, 1)
	lo := tensor.New(1, 1, 8, 8)
	hi := tensor.New(1, 1, 8, 8)
	const base = uint64(5)
	p.EncodeStep(lo, frames, []uint64{base}, 0)
	p.EncodeStep(hi, frames, []uint64{base | 1<<40}, 0)
	same := true
	for i := range lo.Data {
		if lo.Data[i] != hi.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("ids differing only above bit 31 produced identical encodings — high bits are being truncated")
	}
}

func TestEncodeTrain(t *testing.T) {
	p := Poisson{Seed: 1}
	frames := tensor.New(2, 1, 2, 2)
	frames.Fill(1)
	train := p.EncodeTrain(frames, []uint64{0, 1}, 6)
	if len(train) != 6 {
		t.Fatalf("train length %d", len(train))
	}
	for _, st := range train {
		for _, v := range st.Data {
			if v != 1 { // intensity 1 at rate 1 must always spike
				t.Fatal("full-intensity pixel missed a spike at rate 1")
			}
		}
	}
}

func TestTrainBytes(t *testing.T) {
	if got := TrainBytes([]int{2, 4, 4}, 10); got != 10*4*32 {
		t.Fatalf("TrainBytes = %d", got)
	}
}

func TestBinEventsBasic(t *testing.T) {
	events := [][]Event{
		{
			{X: 1, Y: 2, On: true, T: 0},
			{X: 3, Y: 0, On: false, T: 99},
		},
	}
	train := BinEvents(events, []int{100}, 4, 4, 10)
	if len(train) != 10 {
		t.Fatalf("bins = %d", len(train))
	}
	if train[0].At(0, 0, 2, 1) != 1 {
		t.Fatal("ON event missing from first bin")
	}
	if train[9].At(0, 1, 0, 3) != 1 {
		t.Fatal("OFF event missing from last bin")
	}
	var total float32
	for _, st := range train {
		total += tensor.Sum(st)
	}
	if total != 2 {
		t.Fatalf("total spikes = %v, want 2", total)
	}
}

func TestBinEventsClampsAndDedups(t *testing.T) {
	events := [][]Event{
		{
			{X: 0, Y: 0, On: true, T: 5},
			{X: 0, Y: 0, On: true, T: 5},   // duplicate collapses
			{X: -1, Y: 0, On: true, T: 5},  // out of range dropped
			{X: 0, Y: 9, On: true, T: 5},   // out of range dropped
			{X: 1, Y: 1, On: true, T: 500}, // late event clamps to last bin
		},
	}
	train := BinEvents(events, []int{10}, 2, 2, 4)
	var total float32
	for _, st := range train {
		total += tensor.Sum(st)
	}
	if total != 2 {
		t.Fatalf("total spikes = %v, want 2 (dedup + clamp)", total)
	}
	if train[3].At(0, 0, 1, 1) != 1 {
		t.Fatal("late event should clamp to final bin")
	}
}

func TestFrameDiffEvents(t *testing.T) {
	// A pixel ramping up emits ON events; ramping down emits OFF.
	frames := [][]float32{
		{0, 0},
		{0.5, 0},
		{1.0, 0},
		{0.4, 0},
	}
	evs := FrameDiffEvents(frames, 1, 2, 0.25)
	var on, off int
	for _, e := range evs {
		if e.X != 0 || e.Y != 0 {
			t.Fatalf("event at wrong pixel: %+v", e)
		}
		if e.On {
			on++
		} else {
			off++
		}
	}
	// Ramp up by 1.0 over two ticks at threshold 0.25 -> 3 ON events
	// (ref tracks 0 -> 0.25 -> 0.75); drop by 0.35 -> 1 OFF event.
	if on != 3 || off != 1 {
		t.Fatalf("on=%d off=%d, want 3 ON and 1 OFF", on, off)
	}
	// Events must be time ordered.
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatal("events out of order")
		}
	}
}

func TestFrameDiffEventsEmpty(t *testing.T) {
	if evs := FrameDiffEvents(nil, 2, 2, 0.1); len(evs) != 0 {
		t.Fatal("no frames should produce no events")
	}
	static := [][]float32{{0.5}, {0.5}, {0.5}}
	if evs := FrameDiffEvents(static, 1, 1, 0.1); len(evs) != 0 {
		t.Fatal("static scene should produce no events")
	}
}

func TestLatencyEncoderOneSpikePerBrightPixel(t *testing.T) {
	frames := tensor.FromSlice([]float32{1.0, 0.5, 0.01, 0.0}, 1, 1, 2, 2)
	enc := Latency{}
	const T = 10
	train := enc.EncodeTrain(frames, T)
	if len(train) != T {
		t.Fatalf("train length %d", len(train))
	}
	var perPixel [4]int
	for _, st := range train {
		for i, v := range st.Data {
			if v == 1 {
				perPixel[i]++
			} else if v != 0 {
				t.Fatalf("non-binary spike %v", v)
			}
		}
	}
	if perPixel[0] != 1 || perPixel[1] != 1 {
		t.Fatalf("bright pixels must spike exactly once: %v", perPixel)
	}
	if perPixel[2] != 0 || perPixel[3] != 0 {
		t.Fatalf("dim pixels must stay silent: %v", perPixel)
	}
	if got := enc.SpikeBudget(frames); got != 2 {
		t.Fatalf("SpikeBudget = %d, want 2", got)
	}
}

func TestLatencyBrighterSpikesEarlier(t *testing.T) {
	frames := tensor.FromSlice([]float32{1.0, 0.3}, 1, 1, 1, 2)
	train := Latency{}.EncodeTrain(frames, 8)
	timeOf := func(pix int) int {
		for tt, st := range train {
			if st.Data[pix] == 1 {
				return tt
			}
		}
		return -1
	}
	bright, dim := timeOf(0), timeOf(1)
	if bright != 0 {
		t.Fatalf("full intensity must fire at t=0, got %d", bright)
	}
	if dim <= bright {
		t.Fatalf("dimmer pixel must fire later: %d vs %d", dim, bright)
	}
}

func TestLatencyRejectsZeroHorizon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Latency{}.EncodeTrain(tensor.New(1, 1, 1, 1), 0)
}
