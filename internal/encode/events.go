package encode

import (
	"fmt"
	"sort"

	"skipper/internal/tensor"
)

// Event is one address event from a (simulated) neuromorphic sensor:
// spatial address (X, Y), polarity (true = ON / intensity increase), and a
// timestamp in abstract sensor ticks.
type Event struct {
	X, Y int
	On   bool
	T    int
}

// BinEvents rasterises a per-sample event list into a T-timestep spike
// train of shape [B, 2, H, W] per step (channel 0 = ON, channel 1 = OFF).
// Each sample's events are binned uniformly: events with timestamp in
// [t·dur/T, (t+1)·dur/T) land in step t, where dur is the sample duration
// in ticks. Multiple events in one (pixel, bin) collapse to a single spike,
// matching how DVS pre-processing accumulates frames.
func BinEvents(events [][]Event, durations []int, h, w, T int) []*tensor.Tensor {
	b := len(events)
	if len(durations) != b {
		panic(fmt.Sprintf("encode: %d durations for %d samples", len(durations), b))
	}
	train := make([]*tensor.Tensor, T)
	for t := range train {
		train[t] = tensor.New(b, 2, h, w)
	}
	for i, evs := range events {
		dur := durations[i]
		if dur <= 0 {
			dur = 1
		}
		for _, ev := range evs {
			if ev.X < 0 || ev.X >= w || ev.Y < 0 || ev.Y >= h {
				continue
			}
			bin := ev.T * T / dur
			if bin < 0 {
				bin = 0
			}
			if bin >= T {
				bin = T - 1
			}
			ch := 0
			if !ev.On {
				ch = 1
			}
			train[bin].Set(1, i, ch, ev.Y, ev.X)
		}
	}
	return train
}

// FrameDiffEvents converts a sequence of intensity frames (values in [0,1],
// shape [H,W] flattened row-major) into DVS-style events: a pixel whose
// intensity rises by more than threshold since the last event emits an ON
// event, and a fall emits an OFF event — the standard log-intensity change
// model of event cameras, linearised. Frames are indexed by tick = their
// position in the slice. Events are returned in time order.
func FrameDiffEvents(framesSeq [][]float32, h, w int, threshold float32) []Event {
	if threshold <= 0 {
		threshold = 0.1
	}
	var out []Event
	if len(framesSeq) == 0 {
		return out
	}
	ref := make([]float32, h*w)
	copy(ref, framesSeq[0])
	for tick := 1; tick < len(framesSeq); tick++ {
		cur := framesSeq[tick]
		for p := 0; p < h*w; p++ {
			d := cur[p] - ref[p]
			for d > threshold {
				out = append(out, Event{X: p % w, Y: p / w, On: true, T: tick})
				ref[p] += threshold
				d -= threshold
			}
			for d < -threshold {
				out = append(out, Event{X: p % w, Y: p / w, On: false, T: tick})
				ref[p] -= threshold
				d += threshold
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
