// Package encode converts data into spike trains. Frame data (CIFAR-like
// images) passes through Poisson rate encoding — the scheme the paper uses
// for CIFAR10/100 — while event data (DVS-like streams) is binned directly
// into per-timestep spike tensors.
//
// All encoders are deterministic functions of (seed, sample id, timestep),
// so a checkpointed recomputation pass regenerates bit-identical inputs and
// an experiment re-run reproduces exactly.
package encode

import (
	"fmt"

	"skipper/internal/tensor"
)

// Poisson is a rate encoder: each pixel of a [0,1]-valued frame emits a
// spike at each timestep with probability MaxRate·value.
type Poisson struct {
	// MaxRate is the spike probability of a full-intensity pixel per
	// timestep; 0 means 1.0.
	MaxRate float32
	// Seed namespaces the encoder's random stream.
	Seed uint64
}

// EncodeStep fills dst [B, C, H, W] with one timestep of spikes for frames
// [B, C, H, W]. sampleIDs names each batch row globally so encoding is
// independent of batch composition. The ids are full-width uint64 values —
// the serving path derives them from a 64-bit content hash, and narrowing
// them to int would truncate on 32-bit platforms, making the same request
// encode differently across architectures.
func (p Poisson) EncodeStep(dst, frames *tensor.Tensor, sampleIDs []uint64, t int) {
	if !dst.SameShape(frames) {
		panic(fmt.Sprintf("encode: EncodeStep shape mismatch %v vs %v", dst.Shape(), frames.Shape()))
	}
	b := frames.Dim(0)
	if len(sampleIDs) != b {
		panic(fmt.Sprintf("encode: %d sample ids for batch %d", len(sampleIDs), b))
	}
	rate := p.MaxRate
	if rate == 0 {
		rate = 1
	}
	n := frames.Len() / b
	for i := 0; i < b; i++ {
		rng := tensor.NewRNG(tensor.DeriveSeed(p.Seed, sampleIDs[i], uint64(t)))
		src := frames.Data[i*n : (i+1)*n]
		out := dst.Data[i*n : (i+1)*n]
		for j, v := range src {
			if rng.Float32() < rate*v {
				out[j] = 1
			} else {
				out[j] = 0
			}
		}
	}
}

// EncodeTrain expands frames into a full T-timestep spike train, one tensor
// per timestep. This mirrors the reference implementation, which
// materialises the whole input spike tensor on the device (the "input"
// memory category of the paper's breakdown figures).
func (p Poisson) EncodeTrain(frames *tensor.Tensor, sampleIDs []uint64, T int) []*tensor.Tensor {
	train := make([]*tensor.Tensor, T)
	for t := 0; t < T; t++ {
		st := tensor.New(frames.Shape()...)
		p.EncodeStep(st, frames, sampleIDs, t)
		train[t] = st
	}
	return train
}

// TrainBytes returns the device footprint of a T-step spike train for the
// given frame shape.
func TrainBytes(frameShape []int, T int) int64 {
	return int64(T) * 4 * int64(tensor.Volume(frameShape))
}
