// Package analysis provides the spike-activity instrumentation a researcher
// uses to understand what the Spike Activity Monitor sees: per-timestep
// activity traces (the s_t series of paper Eq. 4 and Fig. 6), per-layer
// firing-rate statistics, and skip-decision previews for a given (C, p)
// before committing to a training run.
package analysis

import (
	"fmt"
	"io"
	"strings"

	"skipper/internal/core"
	"skipper/internal/layers"
	"skipper/internal/stats"
	"skipper/internal/tensor"
)

// Trace is the per-timestep activity record of one forward pass.
type Trace struct {
	// Scores is s_t per timestep under the chosen SAM metric.
	Scores []float64
	// LayerRates[t][l] is the firing rate (spikes/neuron) of layer l at t.
	LayerRates [][]float64
	// LayerNames labels the LayerRates columns.
	LayerNames []string
}

// Run unrolls the network over the input spike train (without training) and
// records the activity trace under the given SAM metric (nil = spike sum).
func Run(net *layers.Network, input []*tensor.Tensor, metric core.SAMMetric) *Trace {
	if metric == nil {
		metric = core.SpikeSum{}
	}
	tr := &Trace{
		Scores:     make([]float64, len(input)),
		LayerRates: make([][]float64, len(input)),
	}
	for _, l := range net.Layers {
		tr.LayerNames = append(tr.LayerNames, l.Name())
	}
	var states []*layers.LayerState
	for t, x := range input {
		states = net.ForwardStep(x, states)
		tr.Scores[t] = metric.Score(net, states)
		rates := make([]float64, len(states))
		for i, st := range states {
			if st.O == nil || st.O.Len() == 0 {
				continue
			}
			if lin, ok := net.Layers[i].(*layers.SpikingLinear); ok && lin.Readout {
				continue // membrane, not spikes
			}
			rates[i] = st.SpikeSum() / float64(st.O.Len())
		}
		tr.LayerRates[t] = rates
	}
	return tr
}

// SkipPreview reports which timesteps Skipper would skip for the trace
// under C checkpoints and percentile p — the dry-run of the Fig. 6 logic.
type SkipPreview struct {
	C          int
	P          float64
	SST        []float64 // one threshold per segment
	Skipped    []bool    // per timestep
	SkipCount  int
	TotalSteps int
}

// PreviewSkips applies the segment-wise SST rule to the trace.
func (tr *Trace) PreviewSkips(C int, p float64) SkipPreview {
	T := len(tr.Scores)
	pre := SkipPreview{C: C, P: p, Skipped: make([]bool, T), TotalSteps: T}
	for s := 0; s < C; s++ {
		start, end := core.SegmentBounds(T, C, s)
		if end <= start+1 {
			pre.SST = append(pre.SST, 0)
			continue
		}
		sst := stats.Percentile(tr.Scores[start+1:end], p)
		pre.SST = append(pre.SST, sst)
		for t := start + 1; t < end; t++ {
			if tr.Scores[t] < sst && t != T-1 {
				pre.Skipped[t] = true
				pre.SkipCount++
			}
		}
	}
	return pre
}

// MeanRate returns the average firing rate of layer l over the trace.
func (tr *Trace) MeanRate(l int) float64 {
	var s float64
	for _, row := range tr.LayerRates {
		s += row[l]
	}
	if len(tr.LayerRates) == 0 {
		return 0
	}
	return s / float64(len(tr.LayerRates))
}

// ActivityStats summarises the s_t series.
func (tr *Trace) ActivityStats() (min, mean, max float64) {
	var m stats.Meter
	for _, v := range tr.Scores {
		m.Add(v)
	}
	return m.Min(), m.Mean(), m.Max()
}

// WriteCSV emits the trace as CSV: timestep, score, skipped?, then one
// firing-rate column per layer. preview may be nil.
func (tr *Trace) WriteCSV(w io.Writer, preview *SkipPreview) error {
	cols := []string{"t", "sam_score", "skipped"}
	for _, n := range tr.LayerNames {
		cols = append(cols, "rate_"+n)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for t := range tr.Scores {
		skipped := 0
		if preview != nil && preview.Skipped[t] {
			skipped = 1
		}
		row := fmt.Sprintf("%d,%.6g,%d", t, tr.Scores[t], skipped)
		for l := range tr.LayerNames {
			row += fmt.Sprintf(",%.6g", tr.LayerRates[t][l])
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders the activity series as a coarse unicode strip — handy
// for a terminal look at where the quiet timesteps sit.
func (tr *Trace) Sparkline() string {
	if len(tr.Scores) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	min, _, max := tr.ActivityStats()
	span := max - min
	var b strings.Builder
	for _, v := range tr.Scores {
		idx := 0
		if span > 0 {
			idx = int((v - min) / span * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
