package analysis

import (
	"fmt"

	"skipper/internal/layers"
	"skipper/internal/tensor"
)

// EnergyModel estimates the event-driven inference cost of a trained SNN on
// neuromorphic hardware, where energy is dominated by synaptic operations
// (one per spike per outgoing synapse) rather than by dense MACs — the
// deployment argument of the paper's introduction. Values are joules per
// operation; zeros select the commonly cited 45 nm CMOS estimates
// (Han et al.): 0.9 pJ per synop (32-bit add) and 4.6 pJ per dense MAC.
type EnergyModel struct {
	SynopJ float64
	MacJ   float64
}

func (m EnergyModel) synop() float64 {
	if m.SynopJ == 0 {
		return 0.9e-12
	}
	return m.SynopJ
}

func (m EnergyModel) mac() float64 {
	if m.MacJ == 0 {
		return 4.6e-12
	}
	return m.MacJ
}

// EnergyReport summarises one unrolled run.
type EnergyReport struct {
	// Synops is the total synaptic operations the spike train triggers.
	Synops float64
	// DenseMacs is what a non-spiking network of the same topology would
	// execute over the same horizon (the ANN equivalent).
	DenseMacs float64
	// SNNJoules and ANNJoules apply the energy model to both.
	SNNJoules, ANNJoules float64
	// PerLayerSynops breaks Synops down by layer.
	PerLayerSynops []float64
}

// Ratio returns the SNN's energy advantage factor (ANN/SNN); 0 when the
// SNN consumed nothing.
func (r EnergyReport) Ratio() float64 {
	if r.SNNJoules == 0 {
		return 0
	}
	return r.ANNJoules / r.SNNJoules
}

// fanout returns a layer's outgoing synapses per input spike and its dense
// MACs per timestep (for one sample), or (0,0) for stateless layers.
func fanout(l layers.Layer, batch int) (synPerSpike float64, densePerStep float64) {
	switch v := l.(type) {
	case *layers.SpikingConv2D:
		// Each input spike touches OutChannels·KH·KW synapses (interior).
		k := float64(v.Spec.OutChannels * v.Spec.KernelH * v.Spec.KernelW)
		out := v.OutShape()
		dense := float64(v.Spec.InChannels*v.Spec.KernelH*v.Spec.KernelW) *
			float64(out[0]*out[1]*out[2]) * float64(batch)
		return k, dense
	case *layers.SpikingLinear:
		return float64(v.Out), float64(v.Out) * float64(batch) * float64(inFeatures(v))
	case *layers.RecurrentSpikingLinear:
		return float64(v.Out), float64(v.Out) * float64(batch) * float64(inFeaturesRec(v))
	default:
		return 0, 0
	}
}

// inFeatures reads the built input width of a linear layer via its weight.
func inFeatures(l *layers.SpikingLinear) int {
	ps := l.Params()
	return ps[0].W.Dim(1)
}

func inFeaturesRec(l *layers.RecurrentSpikingLinear) int {
	ps := l.Params()
	return ps[0].W.Dim(1)
}

// Energy unrolls the network over the input spike train and counts
// event-driven synaptic operations: each layer consumes the spikes arriving
// at its input and multiplies by its fanout. The dense-MAC equivalent
// accumulates every layer's full per-step cost.
func Energy(net *layers.Network, input []*tensor.Tensor, model EnergyModel) EnergyReport {
	rep := EnergyReport{PerLayerSynops: make([]float64, len(net.Layers))}
	if len(input) == 0 {
		return rep
	}
	batch := input[0].Dim(0)
	var states []*layers.LayerState
	for _, x := range input {
		inSpikes := float64(tensor.CountNonZero(x))
		prev := states
		states = net.ForwardStep(x, prev)
		for i, l := range net.Layers {
			syn, dense := fanout(l, batch)
			if syn > 0 {
				rep.Synops += inSpikes * syn
				rep.PerLayerSynops[i] += inSpikes * syn
				rep.DenseMacs += dense
			}
			// The next layer consumes this layer's output spikes.
			inSpikes = float64(tensor.CountNonZero(states[i].O))
		}
	}
	rep.SNNJoules = rep.Synops * model.synop()
	rep.ANNJoules = rep.DenseMacs * model.mac()
	return rep
}

// String renders the headline numbers.
func (r EnergyReport) String() string {
	return fmt.Sprintf("synops %.3g (%.3g J) vs dense MACs %.3g (%.3g J) — %.1fx advantage",
		r.Synops, r.SNNJoules, r.DenseMacs, r.ANNJoules, r.Ratio())
}
