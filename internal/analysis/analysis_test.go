package analysis

import (
	"bytes"
	"strings"
	"testing"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/models"
)

func traceFixture(t *testing.T, T int) (*Trace, int) {
	t.Helper()
	data, err := dataset.Open("dvsgesture", 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := models.Build("lenet", models.Options{Width: 0.5, Classes: data.Classes(), InShape: data.InShape()})
	if err != nil {
		t.Fatal(err)
	}
	input, _ := data.SpikeBatch(dataset.Train, []int{0, 1}, T)
	return Run(net, input, nil), len(net.Layers)
}

func TestRunTraceShapes(t *testing.T) {
	const T = 12
	tr, nLayers := traceFixture(t, T)
	if len(tr.Scores) != T || len(tr.LayerRates) != T {
		t.Fatalf("trace length %d/%d, want %d", len(tr.Scores), len(tr.LayerRates), T)
	}
	if len(tr.LayerNames) != nLayers {
		t.Fatalf("layer names %d, want %d", len(tr.LayerNames), nLayers)
	}
	for t2, row := range tr.LayerRates {
		if len(row) != nLayers {
			t.Fatalf("rates row %d has %d cols", t2, len(row))
		}
		for _, r := range row {
			if r < 0 || r > 1 {
				t.Fatalf("firing rate %v outside [0,1]", r)
			}
		}
	}
	for _, s := range tr.Scores {
		if s < 0 {
			t.Fatalf("negative SAM score %v", s)
		}
	}
}

func TestPreviewSkipsMatchesEngine(t *testing.T) {
	// The preview's skip fraction must approximate p and never skip the
	// final timestep.
	const T = 18
	tr, _ := traceFixture(t, T)
	pre := tr.PreviewSkips(2, 40)
	if pre.SkipCount == 0 {
		t.Fatal("preview skipped nothing at p=40")
	}
	if pre.Skipped[T-1] {
		t.Fatal("preview must never skip the final step")
	}
	if pre.Skipped[0] {
		t.Fatal("checkpoint step 0 cannot be skipped")
	}
	frac := float64(pre.SkipCount) / float64(T)
	if frac > 0.5 {
		t.Fatalf("skip fraction %v far exceeds p=40%%", frac)
	}
	if len(pre.SST) != 2 {
		t.Fatalf("SST per segment: %v", pre.SST)
	}
}

func TestMeanRateAndStats(t *testing.T) {
	tr, n := traceFixture(t, 10)
	for l := 0; l < n; l++ {
		r := tr.MeanRate(l)
		if r < 0 || r > 1 {
			t.Fatalf("mean rate %v", r)
		}
	}
	min, mean, max := tr.ActivityStats()
	if min > mean || mean > max {
		t.Fatalf("stats ordering broken: %v %v %v", min, mean, max)
	}
}

func TestWriteCSV(t *testing.T) {
	tr, n := traceFixture(t, 8)
	pre := tr.PreviewSkips(2, 30)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf, &pre); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Fatalf("CSV rows %d, want 9", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t,sam_score,skipped,rate_") {
		t.Fatalf("header %q", lines[0])
	}
	if cols := strings.Count(lines[1], ","); cols != 2+n {
		t.Fatalf("row has %d commas, want %d", cols, 2+n)
	}
}

func TestSparkline(t *testing.T) {
	tr, _ := traceFixture(t, 10)
	s := tr.Sparkline()
	if len([]rune(s)) != 10 {
		t.Fatalf("sparkline length %d, want 10", len([]rune(s)))
	}
	empty := &Trace{}
	if empty.Sparkline() != "" {
		t.Fatal("empty trace should render empty sparkline")
	}
}

func TestRunWithExplicitMetric(t *testing.T) {
	data, err := dataset.Open("nmnist", 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := models.Build("customnet", models.Options{Width: 0.5, Classes: data.Classes(), InShape: data.InShape()})
	if err != nil {
		t.Fatal(err)
	}
	input, _ := data.SpikeBatch(dataset.Train, []int{0}, 6)
	tr := Run(net, input, core.MembraneL2{})
	for _, s := range tr.Scores {
		if s < 0 {
			t.Fatalf("membrane L2 score %v", s)
		}
	}
}

func TestEnergyReport(t *testing.T) {
	data, err := dataset.Open("dvsgesture", 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := models.Build("customnet", models.Options{Width: 0.5, Classes: data.Classes(), InShape: data.InShape()})
	if err != nil {
		t.Fatal(err)
	}
	input, _ := data.SpikeBatch(dataset.Train, []int{0, 1}, 10)
	rep := Energy(net, input, EnergyModel{})
	if rep.Synops <= 0 || rep.DenseMacs <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.Synops >= rep.DenseMacs {
		t.Fatalf("sparse synops (%v) should be far below dense MACs (%v)", rep.Synops, rep.DenseMacs)
	}
	if rep.Ratio() <= 1 {
		t.Fatalf("SNN energy advantage %v should exceed 1x on sparse event data", rep.Ratio())
	}
	var perLayer float64
	for _, v := range rep.PerLayerSynops {
		perLayer += v
	}
	if perLayer != rep.Synops {
		t.Fatalf("per-layer synops %v do not sum to total %v", perLayer, rep.Synops)
	}
	if rep.String() == "" {
		t.Fatal("String empty")
	}
}

func TestEnergyEmptyInput(t *testing.T) {
	data, _ := dataset.Open("cifar10", 1)
	net, err := models.Build("customnet", models.Options{Width: 0.5, Classes: data.Classes(), InShape: data.InShape()})
	if err != nil {
		t.Fatal(err)
	}
	rep := Energy(net, nil, EnergyModel{})
	if rep.Synops != 0 || rep.Ratio() != 0 {
		t.Fatalf("empty input should cost nothing: %+v", rep)
	}
}
