package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/layers"
	"skipper/internal/parallel"
	"skipper/internal/serialize"
)

// Snapshot is one immutable loaded model generation. Its network is never
// mutated after publication, so readers may copy weights from it freely;
// running a forward pass on it directly is NOT safe (layer scratch buffers),
// which is why workers keep private replicas synced by Version.
type Snapshot struct {
	Net *layers.Network
	// Path is the checkpoint file this generation came from ("" for the
	// builder's fresh initialisation).
	Path string
	// Version increments on every successful swap, starting at 1.
	Version uint64
	// LoadedAt is when the generation was published.
	LoadedAt time.Time
}

// Model is the hot-reloadable checkpoint handle: an atomic pointer to the
// current Snapshot. Reload builds a fresh network and loads the checkpoint
// into it before swapping, so a corrupt or mismatched file can never
// replace a serving generation (validation-before-swap with rollback by
// virtue of never having left the old generation).
type Model struct {
	build func() (*layers.Network, error)
	cur   atomic.Pointer[Snapshot]
	mu    sync.Mutex // serialises reloads; readers never take it

	// OnRetry, when non-nil, observes each transient load failure that is
	// about to be retried (the server wires it to the retry counter metric).
	OnRetry func(attempt int, err error)
}

// reloadAttempts bounds how many times one Reload tries a transiently
// failing checkpoint read before giving up.
const reloadAttempts = 3

// loadCheckpoint and reloadSleep are seams so tests can inject load
// failures and observe backoff without real files or wall-clock sleeps.
var (
	loadCheckpoint = serialize.LoadInto
	reloadSleep    = time.Sleep
)

// transientLoadErr reports whether a checkpoint load failure is worth
// retrying: filesystem errors and truncated reads are the signatures of a
// checkpoint mid-replacement by a trainer; a checksum or shape mismatch is
// permanent for this file and retrying cannot help.
func transientLoadErr(err error) bool {
	var pe *fs.PathError
	return errors.Is(err, serialize.ErrTruncated) || errors.As(err, &pe)
}

// reloadBackoff returns the capped pause before the retry that follows the
// n-th failed attempt: 50ms, 200ms, then 500ms flat.
func reloadBackoff(n int) time.Duration {
	d := 50 * time.Millisecond << (2 * (n - 1))
	if d > 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	return d
}

// NewModel constructs the handle, publishing the builder's deterministic
// initialisation as generation 1. When path is non-empty the initial
// generation is loaded from it instead.
func NewModel(build func() (*layers.Network, error), path string) (*Model, error) {
	m := &Model{build: build}
	var net *layers.Network
	var err error
	if path != "" {
		net, err = serialize.LoadInto(path, build)
	} else {
		net, err = build()
	}
	if err != nil {
		return nil, fmt.Errorf("serve: initial model: %w", err)
	}
	m.cur.Store(&Snapshot{Net: net, Path: path, Version: 1, LoadedAt: time.Now()})
	return m, nil
}

// Current returns the serving generation. Never nil.
func (m *Model) Current() *Snapshot { return m.cur.Load() }

// Reload validates the checkpoint at path against a freshly built network
// and atomically publishes it as the next generation. On any error the
// previous generation keeps serving untouched. An empty path re-reads the
// current generation's file (the SIGHUP convention).
//
// Transient read failures — a missing or unreadable file, a truncated read
// of a checkpoint mid-replacement — are retried up to reloadAttempts times
// with capped backoff before the reload is rejected; permanent failures
// (checksum mismatch, wrong topology) are rejected immediately.
func (m *Model) Reload(path string) (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if path == "" {
		path = m.Current().Path
	}
	if path == "" {
		return nil, fmt.Errorf("serve: reload: no checkpoint path (model is serving a fresh initialisation)")
	}
	var net *layers.Network
	var err error
	for attempt := 1; ; attempt++ {
		net, err = loadCheckpoint(path, m.build)
		if err == nil || attempt == reloadAttempts || !transientLoadErr(err) {
			break
		}
		if m.OnRetry != nil {
			m.OnRetry(attempt, err)
		}
		reloadSleep(reloadBackoff(attempt))
	}
	if err != nil {
		return nil, fmt.Errorf("serve: reload rejected, keeping generation %d: %w", m.Current().Version, err)
	}
	next := &Snapshot{Net: net, Path: path, Version: m.Current().Version + 1, LoadedAt: time.Now()}
	m.cur.Store(next)
	return next, nil
}

// replica is a worker-private network kept in sync with the model by
// generation number: before each batch the worker calls sync, which copies
// weights from the current snapshot only when the version moved.
//
// Scratch-ownership invariant: every layer owns per-lane kernel scratch
// (tensor.Scratch), sized for the compute pool it runs on. That makes one
// network safe under ONE forward pass at a time — the pool's lanes get
// disjoint buffers — but never under two concurrent passes, which would race
// on the same lane slots. Workers therefore each build a private network
// here (scratch and all) and share only the compute pool and the immutable
// snapshot they copy weights from; the snapshot's own network runs no
// forward passes at all.
type replica struct {
	net     *layers.Network
	version uint64
}

func newReplica(build func() (*layers.Network, error), pool *parallel.Pool) (*replica, error) {
	net, err := build()
	if err != nil {
		return nil, fmt.Errorf("serve: building worker replica: %w", err)
	}
	// The shared pool fans this replica's kernels across cores; per-replica
	// scratch (see type comment) keeps concurrent workers isolated.
	net.SetPool(pool)
	return &replica{net: net}, nil
}

// sync copies the snapshot's weights into the replica when stale and
// returns the generation it is now serving.
func (r *replica) sync(m *Model) *Snapshot {
	snap := m.Current()
	if snap.Version == r.version {
		return snap
	}
	dst, src := r.net.Params(), snap.Net.Params()
	// Same builder ⇒ same parameter order and shapes.
	for i := range dst {
		copy(dst[i].W.Data, src[i].W.Data)
	}
	r.version = snap.Version
	return snap
}
