package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"skipper/internal/layers"
	"skipper/internal/serialize"
)

// fakeLoader scripts loadCheckpoint: each call pops the next error; a nil
// entry (or running out of entries) builds a fresh network successfully.
type fakeLoader struct {
	mu     sync.Mutex
	errs   []error
	calls  int
	build  func() (*layers.Network, error)
	sleeps []time.Duration
}

func installFakeLoader(t *testing.T, errs ...error) *fakeLoader {
	t.Helper()
	fl := &fakeLoader{errs: errs, build: testBuild}
	prevLoad, prevSleep := loadCheckpoint, reloadSleep
	loadCheckpoint = func(path string, build func() (*layers.Network, error)) (*layers.Network, error) {
		fl.mu.Lock()
		defer fl.mu.Unlock()
		fl.calls++
		if fl.calls <= len(fl.errs) && fl.errs[fl.calls-1] != nil {
			return nil, fl.errs[fl.calls-1]
		}
		return build()
	}
	reloadSleep = func(d time.Duration) {
		fl.mu.Lock()
		defer fl.mu.Unlock()
		fl.sleeps = append(fl.sleeps, d)
	}
	t.Cleanup(func() {
		loadCheckpoint, reloadSleep = prevLoad, prevSleep
	})
	return fl
}

func pathErr(op string) error {
	return &fs.PathError{Op: op, Path: "weights.skpw", Err: errors.New("interrupted system call")}
}

func TestReloadRetriesTransientThenSucceeds(t *testing.T) {
	fl := installFakeLoader(t, pathErr("open"), fmt.Errorf("reading: %w", serialize.ErrTruncated), nil)
	m, err := NewModel(testBuild, "")
	if err != nil {
		t.Fatal(err)
	}
	var retries int
	m.OnRetry = func(attempt int, err error) { retries++ }

	snap, err := m.Reload("weights.skpw")
	if err != nil {
		t.Fatalf("reload should succeed on the third attempt: %v", err)
	}
	if snap.Version != 2 {
		t.Fatalf("version = %d, want 2", snap.Version)
	}
	if fl.calls != 3 || retries != 2 {
		t.Fatalf("calls = %d retries = %d, want 3 and 2", fl.calls, retries)
	}
	// Backoff grows and is capped: 50ms then 200ms between the attempts.
	want := []time.Duration{50 * time.Millisecond, 200 * time.Millisecond}
	if len(fl.sleeps) != len(want) || fl.sleeps[0] != want[0] || fl.sleeps[1] != want[1] {
		t.Fatalf("backoffs = %v, want %v", fl.sleeps, want)
	}
}

func TestReloadPermanentFailureDoesNotRetry(t *testing.T) {
	fl := installFakeLoader(t, errors.New("serialize: checksum mismatch (file corrupt)"))
	m, err := NewModel(testBuild, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reload("weights.skpw"); err == nil {
		t.Fatal("corrupt checkpoint must reject the reload")
	}
	if fl.calls != 1 || len(fl.sleeps) != 0 {
		t.Fatalf("permanent failure retried: %d calls, %v sleeps", fl.calls, fl.sleeps)
	}
	if got := m.Current().Version; got != 1 {
		t.Fatalf("failed reload must keep generation 1, got %d", got)
	}
}

func TestReloadRetriesExhausted(t *testing.T) {
	fl := installFakeLoader(t, pathErr("open"), pathErr("open"), pathErr("open"), pathErr("open"))
	m, err := NewModel(testBuild, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reload("weights.skpw"); err == nil {
		t.Fatal("want failure after exhausting retries")
	}
	if fl.calls != reloadAttempts {
		t.Fatalf("made %d attempts, want %d", fl.calls, reloadAttempts)
	}
	if got := m.Current().Version; got != 1 {
		t.Fatalf("failed reload must keep generation 1, got %d", got)
	}
}

func TestReloadBackoffCap(t *testing.T) {
	if d := reloadBackoff(1); d != 50*time.Millisecond {
		t.Fatalf("backoff(1) = %v", d)
	}
	if d := reloadBackoff(2); d != 200*time.Millisecond {
		t.Fatalf("backoff(2) = %v", d)
	}
	for n := 3; n < 8; n++ {
		if d := reloadBackoff(n); d != 500*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want the 500ms cap", n, d)
		}
	}
}

// End-to-end: a transiently failing reload over HTTP still answers 422 after
// the retries, and the retry counter lands in /metrics.
func TestReloadRetryMetricOverHTTP(t *testing.T) {
	fl := installFakeLoader(t, pathErr("open"), pathErr("read"), pathErr("read"))
	s, hs := newTestServer(t, Config{})
	body := strings.NewReader(`{"path": "weights.skpw"}`)
	resp, err := http.Post(hs.URL+"/v1/reload", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 after exhausted retries", resp.StatusCode)
	}
	if fl.calls != reloadAttempts {
		t.Fatalf("made %d attempts, want %d", fl.calls, reloadAttempts)
	}
	var buf bytes.Buffer
	s.Metrics().Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "skipper_serve_reload_retries_total 2") {
		t.Fatalf("metrics missing retry counter:\n%s", out)
	}
	if !strings.Contains(out, `skipper_serve_reloads_total{result="error"} 1`) {
		t.Fatalf("metrics missing failed reload:\n%s", out)
	}
}
