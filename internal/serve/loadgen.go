package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/stats"
	"skipper/internal/tensor"
)

// LoadGenOptions configures RunLoadGen.
type LoadGenOptions struct {
	// Requests is the total request count (closed loop) or a cap on
	// arrivals (open loop; 0 = unbounded, stop on Duration). Zero in closed
	// loop means 100.
	Requests int
	// Concurrency is the number of in-flight requests in closed-loop mode.
	// Zero means 8.
	Concurrency int
	// Seed drives the deterministic synthetic inputs and, in open-loop
	// mode, the exponential inter-arrival gaps. Distinct request indices
	// get distinct frames, so batches exercise mixed content.
	Seed uint64
	// BudgetMS, when positive, is sent as each request's latency budget.
	BudgetMS int
	// Timeout is the client-side HTTP timeout. Zero means 30s.
	Timeout time.Duration
	// Client overrides the HTTP client (tests pass the in-process one).
	Client *http.Client

	// OpenLoop switches from fixed concurrency to a Poisson arrival
	// process at TargetQPS. A closed loop hides tail latency through
	// coordinated omission — a slow response delays the next request, so
	// the generator politely backs off exactly when the server struggles.
	// Open loop keeps arriving on schedule and accounts explicitly for the
	// arrivals it could not launch.
	OpenLoop bool
	// TargetQPS is the open-loop arrival rate. Required when OpenLoop.
	TargetQPS float64
	// Duration is the open-loop soak length; arrivals stop when it
	// elapses (in-flight requests still complete). Zero with Requests set
	// means stop after Requests arrivals.
	Duration time.Duration
	// MaxInFlight bounds open-loop concurrency; arrivals that would exceed
	// it are counted as DroppedByHarness instead of silently queueing in
	// the client. Zero means 256.
	MaxInFlight int

	// Sessions is the number of distinct session keys cycled across
	// requests (the router's consistent-hash placement key). Zero sends no
	// session field.
	Sessions int
	// Class, when non-empty, is sent as each request's admission class.
	Class string
}

// LoadGenReport summarises one load-generation run.
type LoadGenReport struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency,omitempty"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	MaxInFlight int     `json:"max_in_flight,omitempty"`
	// DroppedByHarness counts open-loop arrivals the generator could not
	// launch because MaxInFlight was reached. They are load the server
	// never saw; reporting them separately keeps the latency percentiles
	// honest instead of silently thinning the arrival process.
	DroppedByHarness int            `json:"dropped_by_harness,omitempty"`
	OK               int            `json:"ok"`
	StatusCodes      map[string]int `json:"status_codes"`
	Duration         float64        `json:"duration_seconds"`
	QPS              float64        `json:"qps"`

	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`

	// ClientFailovers counts requests retried against another target URL
	// after a transport error (multi-router front tiers; zero with a single
	// target).
	ClientFailovers int64 `json:"client_failovers,omitempty"`

	// Early-exit accounting over the OK responses: executed vs configured
	// batch-timesteps and the fraction saved.
	TimestepsRun  int      `json:"timesteps_run"`
	TimestepsFull int      `json:"timesteps_full"`
	SavedFraction float64  `json:"saved_fraction"`
	EarlyExits    int      `json:"early_exits"`
	MeanBatchSize float64  `json:"mean_batch_size"`
	ModelVersions []uint64 `json:"model_versions_seen"`
}

// wireRequest is the loadgen's superset of InferRequest: the router reads
// session and class, a bare skipper-serve ignores them.
type wireRequest struct {
	InferRequest
	Session string `json:"session,omitempty"`
	Class   string `json:"class,omitempty"`
}

// outcome is one completed request's record.
type outcome struct {
	code    int
	latency float64 // seconds
	resp    InferResponse
}

// RunLoadGen fires synthetic inference requests at the server at baseURL and
// reports latency percentiles and early-exit savings. The input frames are
// deterministic in (Seed, request index). Closed loop by default; see
// LoadGenOptions.OpenLoop for the soak/tail-latency mode.
//
// baseURL may be a comma-separated list (a replicated router tier): requests
// go to one target and fail over to the next on a transport error, so one
// router's death costs at most the in-flight requests' retries, not the run.
func RunLoadGen(baseURL string, opts LoadGenOptions) (LoadGenReport, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Timeout}
	}
	pool, err := newTargetPool(baseURL)
	if err != nil {
		return LoadGenReport{}, err
	}
	cfg, err := pool.fetchConfig(client)
	if err != nil {
		return LoadGenReport{}, err
	}

	var rep LoadGenReport
	if opts.OpenLoop {
		rep, err = runOpenLoop(client, pool, cfg, opts)
	} else {
		rep, err = runClosedLoop(client, pool, cfg, opts)
	}
	rep.ClientFailovers = pool.failovers.Load()
	return rep, err
}

// targetPool spreads a loadgen run over one or more target base URLs,
// load-aware on the client side: all goroutines remember the shared
// last-healthy cursor, a transport error demotes the failing target behind
// it for a cooldown (so a dead router is not re-probed on every request),
// and a success on a non-cursor target promotes it to the new cursor.
type targetPool struct {
	urls      []string
	cur       atomic.Int64
	failovers atomic.Int64
	bad       []atomic.Int64 // unix nanos until which each target stays demoted
}

// targetCooldown is how long a demoted target waits before it is tried
// again (matching the streaming generator's router cooldown).
const targetCooldown = 2 * time.Second

func newTargetPool(baseURL string) (*targetPool, error) {
	var urls []string
	for _, u := range strings.Split(baseURL, ",") {
		if u = strings.TrimSuffix(strings.TrimSpace(u), "/"); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs at least one target URL")
	}
	return &targetPool{urls: urls, bad: make([]atomic.Int64, len(urls))}, nil
}

// pick returns the target index to try: the last-healthy cursor, walking
// past targets still in demotion cooldown. When every target is cooling the
// cursor's own target is the final resort.
func (p *targetPool) pick() int {
	n := len(p.urls)
	start := int(p.cur.Load() % int64(n))
	now := time.Now().UnixNano()
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if p.bad[i].Load() <= now {
			return i
		}
	}
	return start
}

// demote pushes a failing target into cooldown and advances the shared
// cursor past it (CAS, so a burst of concurrent failures counts as one
// failover).
func (p *targetPool) demote(i int) {
	p.bad[i].Store(time.Now().Add(targetCooldown).UnixNano())
	cur := p.cur.Load()
	if int(cur%int64(len(p.urls))) == i && p.cur.CompareAndSwap(cur, cur+1) {
		p.failovers.Add(1)
	}
}

// promote clears a target's cooldown and makes it the remembered cursor.
func (p *targetPool) promote(i int) {
	p.bad[i].Store(0)
	cur := p.cur.Load()
	if at := int(cur % int64(len(p.urls))); at != i {
		delta := int64((i - at + len(p.urls)) % len(p.urls))
		p.cur.CompareAndSwap(cur, cur+delta)
	}
}

// postInfer sends one request, trying each target at most once.
func (p *targetPool) postInfer(client *http.Client, req any) (int, InferResponse, error) {
	var lastErr error
	for try := 0; try < len(p.urls); try++ {
		i := p.pick()
		code, out, err := postInfer(client, p.urls[i], req)
		if err == nil {
			p.promote(i)
			return code, out, nil
		}
		lastErr = err
		p.demote(i)
	}
	return 0, InferResponse{}, lastErr
}

// fetchConfig reads /v1/config from the first target that answers.
func (p *targetPool) fetchConfig(client *http.Client) (ConfigResponse, error) {
	var lastErr error
	for try := 0; try < len(p.urls); try++ {
		i := p.pick()
		cfg, err := fetchConfig(client, p.urls[i])
		if err == nil {
			p.promote(i)
			return cfg, nil
		}
		lastErr = err
		p.demote(i)
	}
	return ConfigResponse{}, lastErr
}

// request builds the i-th deterministic wire request.
func (o LoadGenOptions) request(i uint64, inputLen int) wireRequest {
	req := wireRequest{
		InferRequest: InferRequest{
			Input:    syntheticInput(o.Seed, i, inputLen),
			BudgetMS: o.BudgetMS,
		},
		Class: o.Class,
	}
	if o.Sessions > 0 {
		req.Session = fmt.Sprintf("session-%d", i%uint64(o.Sessions))
	}
	return req
}

func runClosedLoop(client *http.Client, pool *targetPool, cfg ConfigResponse, opts LoadGenOptions) (LoadGenReport, error) {
	if opts.Requests <= 0 {
		opts.Requests = 100
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	outcomes := make([]outcome, opts.Requests)
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Concurrency)
	start := time.Now()
	for i := 0; i < opts.Requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			code, resp, err := pool.postInfer(client, opts.request(uint64(i), cfg.InputLen))
			if err != nil {
				code = -1
			}
			outcomes[i] = outcome{code: code, latency: time.Since(t0).Seconds(), resp: resp}
		}(i)
	}
	wg.Wait()
	rep := LoadGenReport{Mode: "closed", Requests: opts.Requests, Concurrency: opts.Concurrency}
	summarize(&rep, outcomes, time.Since(start).Seconds())
	return rep, nil
}

// loadgenArrivalNS namespaces the open-loop inter-arrival RNG stream.
const loadgenArrivalNS = 0x61727276 // "arrv"

// runOpenLoop launches arrivals on a deterministic-seeded exponential
// schedule at TargetQPS, bounded by MaxInFlight, until Duration elapses or
// Requests arrivals have been offered.
func runOpenLoop(client *http.Client, pool *targetPool, cfg ConfigResponse, opts LoadGenOptions) (LoadGenReport, error) {
	if opts.TargetQPS <= 0 {
		return LoadGenReport{}, fmt.Errorf("serve: open-loop loadgen needs TargetQPS > 0")
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 256
	}
	if opts.Duration <= 0 && opts.Requests <= 0 {
		return LoadGenReport{}, fmt.Errorf("serve: open-loop loadgen needs Duration or Requests")
	}

	rng := tensor.NewRNG(tensor.DeriveSeed(opts.Seed, loadgenArrivalNS))
	var (
		mu       sync.Mutex
		outcomes []outcome
		wg       sync.WaitGroup
		inflight atomic.Int64
		dropped  int
		offered  int
	)
	start := time.Now()
	next := 0.0 // seconds since start of the next arrival
	for {
		if opts.Requests > 0 && offered >= opts.Requests {
			break
		}
		if opts.Duration > 0 && next > opts.Duration.Seconds() {
			break
		}
		// Exponential gap with mean 1/QPS; 1-u is in (0,1] so the log is
		// finite.
		u := rng.Float64()
		next += -math.Log(1-u) / opts.TargetQPS
		if opts.Duration > 0 && next > opts.Duration.Seconds() {
			break
		}
		if d := time.Duration(next*float64(time.Second)) - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		i := offered
		offered++
		if inflight.Load() >= int64(opts.MaxInFlight) {
			dropped++
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer inflight.Add(-1)
			t0 := time.Now()
			code, resp, err := pool.postInfer(client, opts.request(uint64(i), cfg.InputLen))
			if err != nil {
				code = -1
			}
			o := outcome{code: code, latency: time.Since(t0).Seconds(), resp: resp}
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	rep := LoadGenReport{
		Mode:             "open",
		Requests:         offered,
		TargetQPS:        opts.TargetQPS,
		MaxInFlight:      opts.MaxInFlight,
		DroppedByHarness: dropped,
	}
	summarize(&rep, outcomes, time.Since(start).Seconds())
	return rep, nil
}

// summarize folds outcomes into the report's aggregate fields.
func summarize(rep *LoadGenReport, outcomes []outcome, elapsed float64) {
	rep.StatusCodes = map[string]int{}
	rep.Duration = elapsed
	var latencies []float64
	var batchSum int
	versions := map[uint64]bool{}
	for _, o := range outcomes {
		key := fmt.Sprintf("%d", o.code)
		if o.code == -1 {
			key = "transport_error"
		}
		rep.StatusCodes[key]++
		latencies = append(latencies, o.latency*1000)
		if o.code != http.StatusOK {
			continue
		}
		rep.OK++
		rep.TimestepsRun += o.resp.StepsRun
		rep.TimestepsFull += o.resp.T
		if o.resp.ExitStep < o.resp.T-1 {
			rep.EarlyExits++
		}
		batchSum += o.resp.BatchSize
		versions[o.resp.ModelVersion] = true
	}
	if elapsed > 0 {
		rep.QPS = float64(len(outcomes)) / elapsed
	}
	if len(latencies) > 0 {
		rep.LatencyP50MS = stats.Percentile(latencies, 50)
		rep.LatencyP99MS = stats.Percentile(latencies, 99)
	}
	if rep.TimestepsFull > 0 {
		rep.SavedFraction = 1 - float64(rep.TimestepsRun)/float64(rep.TimestepsFull)
	}
	if rep.OK > 0 {
		rep.MeanBatchSize = float64(batchSum) / float64(rep.OK)
	}
	for v := range versions {
		rep.ModelVersions = append(rep.ModelVersions, v)
	}
	sort.Slice(rep.ModelVersions, func(i, j int) bool { return rep.ModelVersions[i] < rep.ModelVersions[j] })
}

// loadgenNS namespaces loadgen input seeds away from other DeriveSeed users.
const loadgenNS = 0x6c6f6164 // "load"

// syntheticInput generates one deterministic [0,1] frame.
func syntheticInput(seed, idx uint64, n int) []float32 {
	rng := tensor.NewRNG(tensor.DeriveSeed(seed, idx, loadgenNS))
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()
	}
	return out
}

func fetchConfig(client *http.Client, baseURL string) (ConfigResponse, error) {
	var cfg ConfigResponse
	resp, err := client.Get(baseURL + "/v1/config")
	if err != nil {
		return cfg, fmt.Errorf("serve: fetching config: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cfg, fmt.Errorf("serve: /v1/config returned %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("serve: decoding config: %w", err)
	}
	return cfg, nil
}

func postInfer(client *http.Client, baseURL string, req any) (int, InferResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, InferResponse{}, err
	}
	resp, err := client.Post(baseURL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, InferResponse{}, err
	}
	defer resp.Body.Close()
	var out InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, out, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, out, nil
}
