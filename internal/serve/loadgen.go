package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"skipper/internal/stats"
	"skipper/internal/tensor"
)

// LoadGenOptions configures RunLoadGen.
type LoadGenOptions struct {
	// Requests is the total request count. Zero means 100.
	Requests int
	// Concurrency is the number of in-flight requests. Zero means 8.
	Concurrency int
	// Seed drives the deterministic synthetic inputs. Distinct request
	// indices get distinct frames, so batches exercise mixed content.
	Seed uint64
	// BudgetMS, when positive, is sent as each request's latency budget.
	BudgetMS int
	// Timeout is the client-side HTTP timeout. Zero means 30s.
	Timeout time.Duration
	// Client overrides the HTTP client (tests pass the in-process one).
	Client *http.Client
}

// LoadGenReport summarises one load-generation run.
type LoadGenReport struct {
	Requests    int           `json:"requests"`
	Concurrency int           `json:"concurrency"`
	OK          int           `json:"ok"`
	StatusCodes map[string]int `json:"status_codes"`
	Duration    float64       `json:"duration_seconds"`
	QPS         float64       `json:"qps"`

	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`

	// Early-exit accounting over the OK responses: executed vs configured
	// batch-timesteps and the fraction saved.
	TimestepsRun   int     `json:"timesteps_run"`
	TimestepsFull  int     `json:"timesteps_full"`
	SavedFraction  float64 `json:"saved_fraction"`
	EarlyExits     int     `json:"early_exits"`
	MeanBatchSize  float64 `json:"mean_batch_size"`
	ModelVersions  []uint64 `json:"model_versions_seen"`
}

// RunLoadGen fires opts.Requests synthetic inference requests at the server
// at baseURL and reports latency percentiles and early-exit savings. The
// input frames are deterministic in (Seed, request index).
func RunLoadGen(baseURL string, opts LoadGenOptions) (LoadGenReport, error) {
	if opts.Requests <= 0 {
		opts.Requests = 100
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Timeout}
	}

	cfg, err := fetchConfig(client, baseURL)
	if err != nil {
		return LoadGenReport{}, err
	}

	type outcome struct {
		code     int
		latency  float64 // seconds
		resp     InferResponse
	}
	outcomes := make([]outcome, opts.Requests)
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Concurrency)
	start := time.Now()
	for i := 0; i < opts.Requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			input := syntheticInput(opts.Seed, uint64(i), cfg.InputLen)
			t0 := time.Now()
			code, resp, err := postInfer(client, baseURL, InferRequest{Input: input, BudgetMS: opts.BudgetMS})
			if err != nil {
				code = -1
			}
			outcomes[i] = outcome{code: code, latency: time.Since(t0).Seconds(), resp: resp}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := LoadGenReport{
		Requests:    opts.Requests,
		Concurrency: opts.Concurrency,
		StatusCodes: map[string]int{},
		Duration:    elapsed,
		QPS:         float64(opts.Requests) / elapsed,
	}
	var latencies []float64
	var batchSum int
	versions := map[uint64]bool{}
	for _, o := range outcomes {
		key := fmt.Sprintf("%d", o.code)
		if o.code == -1 {
			key = "transport_error"
		}
		rep.StatusCodes[key]++
		latencies = append(latencies, o.latency*1000)
		if o.code != http.StatusOK {
			continue
		}
		rep.OK++
		rep.TimestepsRun += o.resp.StepsRun
		rep.TimestepsFull += o.resp.T
		if o.resp.ExitStep < o.resp.T-1 {
			rep.EarlyExits++
		}
		batchSum += o.resp.BatchSize
		versions[o.resp.ModelVersion] = true
	}
	if len(latencies) > 0 {
		rep.LatencyP50MS = stats.Percentile(latencies, 50)
		rep.LatencyP99MS = stats.Percentile(latencies, 99)
	}
	if rep.TimestepsFull > 0 {
		rep.SavedFraction = 1 - float64(rep.TimestepsRun)/float64(rep.TimestepsFull)
	}
	if rep.OK > 0 {
		rep.MeanBatchSize = float64(batchSum) / float64(rep.OK)
	}
	for v := range versions {
		rep.ModelVersions = append(rep.ModelVersions, v)
	}
	sort.Slice(rep.ModelVersions, func(i, j int) bool { return rep.ModelVersions[i] < rep.ModelVersions[j] })
	return rep, nil
}

// loadgenNS namespaces loadgen input seeds away from other DeriveSeed users.
const loadgenNS = 0x6c6f6164 // "load"

// syntheticInput generates one deterministic [0,1] frame.
func syntheticInput(seed, idx uint64, n int) []float32 {
	rng := tensor.NewRNG(tensor.DeriveSeed(seed, idx, loadgenNS))
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()
	}
	return out
}

func fetchConfig(client *http.Client, baseURL string) (ConfigResponse, error) {
	var cfg ConfigResponse
	resp, err := client.Get(baseURL + "/v1/config")
	if err != nil {
		return cfg, fmt.Errorf("serve: fetching config: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cfg, fmt.Errorf("serve: /v1/config returned %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("serve: decoding config: %w", err)
	}
	return cfg, nil
}

func postInfer(client *http.Client, baseURL string, req InferRequest) (int, InferResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, InferResponse{}, err
	}
	resp, err := client.Post(baseURL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, InferResponse{}, err
	}
	defer resp.Body.Close()
	var out InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, out, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, out, nil
}
