package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"skipper/internal/frame"
	"testing"
	"time"
)

// dialFleet connects to a fleet listener and returns the conn plus helpers.
func dialFleet(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dialing fleet listener: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func fleetPing(t *testing.T, conn net.Conn) FleetStatus {
	t.Helper()
	if err := frame.Write(conn, FleetPing, nil); err != nil {
		t.Fatalf("writing ping: %v", err)
	}
	typ, payload, err := frame.Read(conn)
	if err != nil || typ != FleetPong {
		t.Fatalf("pong: typ=%d err=%v", typ, err)
	}
	var st FleetStatus
	if err := json.Unmarshal(payload, &st); err != nil {
		t.Fatalf("decoding pong: %v", err)
	}
	return st
}

func fleetInfer(t *testing.T, conn net.Conn, req InferRequest) FleetResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	if err := frame.Write(conn, FleetInfer, body); err != nil {
		t.Fatalf("writing infer frame: %v", err)
	}
	typ, payload, err := frame.Read(conn)
	if err != nil || typ != FleetResult {
		t.Fatalf("result: typ=%d err=%v", typ, err)
	}
	var out FleetResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	return out
}

// TestFleetTransport drives the framed data path end to end: ping reports
// the serving state, infer over frames matches infer over HTTP bit for bit,
// per-request exit overrides reach the batcher, and a draining server both
// says so in its pong and sheds framed requests with a Retry-After hint.
func TestFleetTransport(t *testing.T) {
	s, hs := newTestServer(t, Config{T: 6, EarlyExit: true, QueueDepth: 16, Workers: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go s.ServeFleet(ln)

	conn := dialFleet(t, ln.Addr().String())
	st := fleetPing(t, conn)
	if st.Draining || st.ModelVersion != 1 || st.QueueCap != 16 || st.Workers != 1 {
		t.Fatalf("unexpected fleet status: %+v", st)
	}

	input := syntheticInput(7, 0, 2*8*8)

	// Framed infer == HTTP infer, same request, same model, same bytes.
	httpCode, httpResp := inferOnce(t, hs.Client(), hs.URL, InferRequest{Input: input})
	if httpCode != http.StatusOK {
		t.Fatalf("HTTP infer: %d", httpCode)
	}
	out := fleetInfer(t, conn, InferRequest{Input: input})
	if out.Code != http.StatusOK {
		t.Fatalf("framed infer: %+v", out)
	}
	var fresp InferResponse
	if err := json.Unmarshal(out.Body, &fresp); err != nil {
		t.Fatal(err)
	}
	if fresp.Pred != httpResp.Pred || fresp.ExitStep != httpResp.ExitStep {
		t.Fatalf("framed infer diverged from HTTP: %+v vs %+v", fresp, httpResp)
	}
	for i, l := range fresp.Logits {
		if l != httpResp.Logits[i] {
			t.Fatalf("logit %d: framed %v != http %v", i, l, httpResp.Logits[i])
		}
	}

	// Per-request override: forcing the full horizon runs every timestep.
	off := false
	out = fleetInfer(t, conn, InferRequest{Input: input, EarlyExit: &off})
	if err := json.Unmarshal(out.Body, &fresp); err != nil {
		t.Fatal(err)
	}
	if fresp.StepsRun != fresp.T {
		t.Fatalf("full-horizon override ran %d of %d steps", fresp.StepsRun, fresp.T)
	}

	// Validation errors surface as non-200 codes over the frames too.
	if out := fleetInfer(t, conn, InferRequest{Input: input[:3]}); out.Code != http.StatusBadRequest {
		t.Fatalf("short input answered %d, want 400", out.Code)
	}

	// Drain: the pong flips to draining and framed infers are shed with a
	// retry hint. Draining with no in-flight jobs completes immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	conn2 := dialFleet(t, ln.Addr().String())
	if st := fleetPing(t, conn2); !st.Draining {
		t.Fatalf("pong after drain: %+v, want draining", st)
	}
	if out := fleetInfer(t, conn2, InferRequest{Input: input}); out.Code != http.StatusServiceUnavailable || out.RetryAfter < 1 {
		t.Fatalf("drained server answered %+v, want 503 with retry hint", out)
	}
	if got := s.Metrics().ShedCount("draining"); got != 1 {
		t.Fatalf("draining shed count = %d, want 1", got)
	}
}
