package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/layers"
	"skipper/internal/parallel"
	"skipper/internal/runstate"
	"skipper/internal/stream"
	"skipper/internal/tensor"
	"skipper/internal/trace"
)

// Server is the inference serving subsystem: a hot-reloadable model, a
// bounded batching queue, a worker pool, and the HTTP surface over them.
// Construct with NewServer, attach Handler to an http.Server, and call
// Drain on shutdown.
type Server struct {
	cfg     Config
	model   *Model
	metrics *Metrics
	tracer  *trace.Tracer

	queue chan *job
	stop  chan struct{}

	mu       sync.RWMutex // guards draining against enqueues
	draining bool

	jobWG    sync.WaitGroup // in-flight jobs (enqueued, not yet answered)
	workerWG sync.WaitGroup

	// fleet tracks framed-transport connections (ServeFleet) so Drain can
	// unblock their reads once the drain completes.
	fleet fleetConns

	// streams is the streaming-session registry; stream frames on the
	// fleet listener dispatch into it.
	streams *stream.Manager

	// reqSeq round-robins traced requests across the request track lanes so
	// overlapping request spans land on different trace rows instead of
	// falsely nesting.
	reqSeq atomic.Uint64

	inVolume int
	classes  int
	started  time.Time
}

// errDraining answers jobs the shutdown path drops before a worker could run
// them; handlers translate it to a prompt 503.
var errDraining = errors.New("server shut down before the request was executed")

// InferRequest is the body of POST /v1/infer.
type InferRequest struct {
	// Input is the flattened per-sample frame, values in [0,1], length
	// C·H·W of the serving topology's input shape.
	Input []float32 `json:"input"`
	// BudgetMS optionally tightens the server's request timeout for this
	// request. It can never extend it.
	BudgetMS int `json:"budget_ms,omitempty"`
	// EarlyExit, when present, overrides the server's early-exit setting
	// for this request. The router's admission tiers use it to force the
	// full horizon on bulk traffic while interactive classes keep exiting
	// early.
	EarlyExit *bool `json:"early_exit,omitempty"`
	// ExitMargin, when non-zero, overrides the early-exit confidence gate
	// for this request (>0 overrides, <0 disables the gate). The router's
	// SLO controller tunes this per request class against a latency budget
	// instead of the server's fixed constant.
	ExitMargin float64 `json:"exit_margin,omitempty"`
}

// InferResponse is the body of a 200 from POST /v1/infer.
type InferResponse struct {
	Pred         int       `json:"pred"`
	Logits       []float32 `json:"logits"`
	ExitStep     int       `json:"exit_step"`
	StepsRun     int       `json:"steps_run"`
	T            int       `json:"t"`
	BatchSize    int       `json:"batch_size"`
	ModelVersion uint64    `json:"model_version"`
}

// ReloadRequest is the body of POST /v1/reload. An empty path re-reads the
// checkpoint the server is currently serving.
type ReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// ReloadResponse reports the generation now serving.
type ReloadResponse struct {
	Version  uint64 `json:"version"`
	Path     string `json:"path"`
	LoadedAt string `json:"loaded_at"`
}

// ConfigResponse is the body of GET /v1/config, enough for a client to size
// its inputs.
type ConfigResponse struct {
	Model        string `json:"model"`
	InShape      []int  `json:"in_shape"`
	InputLen     int    `json:"input_len"`
	Classes      int    `json:"classes"`
	T            int    `json:"t"`
	EarlyExit    bool   `json:"early_exit"`
	MaxBatch     int    `json:"max_batch"`
	ModelVersion uint64 `json:"model_version"`
	ModelPath    string `json:"model_path,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewServer builds the server, loads the initial model generation (from
// cfg's checkpoint path if modelPath is non-empty, else the builder's fresh
// initialisation), and starts the worker pool.
func NewServer(cfg Config, modelPath string) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	model, err := NewModel(cfg.Build, modelPath)
	if err != nil {
		return nil, err
	}
	snap := model.Current()
	out := snap.Net.OutShape()
	s := &Server{
		cfg:      cfg,
		model:    model,
		tracer:   cfg.Runtime.Tracer(),
		queue:    make(chan *job, cfg.QueueDepth),
		stop:     make(chan struct{}),
		inVolume: tensor.Volume(snap.Net.InShape),
		classes:  tensor.Volume(out),
		started:  time.Now(),
	}
	s.metrics = newMetrics(cfg.MaxBatch, cfg.Runtime.Threads(),
		func() int { return len(s.queue) },
		func() uint64 { return s.model.Current().Version },
		func() parallel.PoolStats { return cfg.Runtime.Pool().Stats() })
	model.OnRetry = func(int, error) { s.metrics.observeReloadRetry() }
	var store *runstate.SessionStore
	if cfg.SessionDir != "" {
		store, err = runstate.OpenSessions(cfg.SessionDir, nil, nil)
		if err != nil {
			close(s.stop)
			return nil, err
		}
	}
	s.streams, err = stream.NewManager(stream.Config{
		Build: cfg.Build,
		Source: func() (*layers.Network, uint64) {
			snap := s.model.Current()
			return snap.Net, snap.Version
		},
		Pool:          cfg.Runtime.Pool(),
		Store:         store,
		TTL:           cfg.SessionTTL,
		SnapshotEvery: cfg.SessionSnapshotEvery,
		SkipThreshold: cfg.StreamSkipThreshold,
		Tracer:        s.tracer,
	})
	if err != nil {
		close(s.stop)
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		r, err := newReplica(cfg.Build, cfg.Runtime.Pool())
		if err != nil {
			close(s.stop)
			return nil, err
		}
		s.workerWG.Add(1)
		go s.runWorker(i, r)
	}
	return s, nil
}

// Model returns the hot-reload handle (for SIGHUP wiring and tests).
func (s *Server) Model() *Model { return s.model }

// Streams returns the streaming-session registry.
func (s *Server) Streams() *stream.Manager { return s.streams }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Reload validates and swaps in the checkpoint at path (empty = re-read the
// current file), recording the attempt in the metrics.
func (s *Server) Reload(path string) (*Snapshot, error) {
	snap, err := s.model.Reload(path)
	s.metrics.observeReload(err == nil)
	return snap, err
}

// Drain stops accepting new requests, waits for every enqueued job to be
// answered (bounded by ctx), and shuts the workers down. If the budget
// expires first, the residual queue is drained here: each dropped job is
// answered with errDraining (its handler returns a prompt 503) and its
// wait-group count released. Without that, jobs still queued at expiry
// leaked a jobWG count forever and their handlers hung until their own
// request timeouts.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
	close(s.stop)
	if err != nil {
		// Workers are exiting (runWorker and coalesce both watch s.stop), so
		// nothing else is guaranteed to empty the queue. The draining flag
		// stops new enqueues, and workers only remove, so once the queue reads
		// empty here it stays empty. A worker racing us for a job is fine:
		// whoever receives it answers it, exactly once.
		dropped := 0
		for {
			select {
			case j := <-s.queue:
				j.resp <- jobResult{Err: errDraining}
				s.jobWG.Done()
				dropped++
			default:
				s.metrics.observeDrainDropped(dropped)
				s.tracer.Event(trace.TrackTrain, "drain_dropped",
					trace.Attr{Key: "jobs", Val: int64(dropped)})
				s.streams.Shutdown()
				s.fleet.closeAll()
				return err
			}
		}
	}
	s.workerWG.Wait()
	// Snapshot any streaming sessions that did not migrate before the
	// drain, then unblock the fleet conns they were served on.
	s.streams.Shutdown()
	s.fleet.closeAll()
	return err
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/reload", s.handleReload)
	mux.HandleFunc("/v1/config", s.handleConfig)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		s.metrics.observeRequest(http.StatusMethodNotAllowed, time.Since(start).Seconds())
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.metrics.observeRequest(http.StatusBadRequest, time.Since(start).Seconds())
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("decoding request: %v", err)})
		return
	}
	code, body, retryAfter := s.execute(r.Context(), req)
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	s.metrics.observeRequest(code, time.Since(start).Seconds())
	writeJSON(w, code, body)
}

// execute runs one parsed request through validate → enqueue → await. It is
// the shared core of the HTTP handler and the fleet transport. The third
// return is a Retry-After hint in seconds, non-zero only on shed responses
// (429/503) so clients and the router know when the replica is worth another
// attempt.
func (s *Server) execute(parent context.Context, req InferRequest) (int, any, int) {
	if len(req.Input) != s.inVolume {
		return http.StatusBadRequest, errorResponse{fmt.Sprintf(
			"input length %d, want %d (flattened %v)", len(req.Input), s.inVolume, s.model.Current().Net.InShape)}, 0
	}
	for i, v := range req.Input {
		if v != v || v < 0 || v > 1 {
			return http.StatusBadRequest, errorResponse{fmt.Sprintf("input[%d] = %v outside [0,1]", i, v)}, 0
		}
	}

	timeout := s.cfg.RequestTimeout
	if req.BudgetMS > 0 {
		if b := time.Duration(req.BudgetMS) * time.Millisecond; b < timeout {
			timeout = b
		}
	}
	ctx, cancel := context.WithTimeout(parent, timeout)
	defer cancel()

	exit := exitParams{early: s.cfg.EarlyExit, margin: s.cfg.ExitMargin}
	if req.EarlyExit != nil {
		exit.early = *req.EarlyExit
	}
	if req.ExitMargin != 0 {
		exit.margin = req.ExitMargin
	}
	j := &job{
		frames: req.Input,
		id:     sampleID(req.Input),
		exit:   exit,
		enq:    time.Now(),
		ctx:    ctx,
		resp:   make(chan jobResult, 1),
	}
	if s.tracer.Enabled() {
		j.track = trace.TrackRequest0 + int(s.reqSeq.Add(1)-1)%trace.RequestTracks
	}

	// The read lock pairs with Drain's write lock so that once draining
	// flips, no new job can slip into the wait group.
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		s.metrics.observeShed(shedDraining)
		return http.StatusServiceUnavailable, errorResponse{"server is draining"}, s.retryAfterSeconds(true)
	}
	s.jobWG.Add(1)
	select {
	case s.queue <- j:
		s.mu.RUnlock()
	default:
		s.jobWG.Done()
		s.mu.RUnlock()
		s.metrics.observeShed(shedQueueFull)
		return http.StatusTooManyRequests, errorResponse{"queue full"}, s.retryAfterSeconds(false)
	}

	select {
	case out := <-j.resp:
		if out.Err != nil {
			return http.StatusServiceUnavailable, errorResponse{out.Err.Error()}, s.retryAfterSeconds(true)
		}
		s.tracer.SpanAt(j.track, "request", j.enq, time.Since(j.enq),
			trace.Attr{Key: "batch", Val: int64(out.BatchSize)},
			trace.Attr{Key: "exit_step", Val: int64(out.ExitStep)})
		return http.StatusOK, InferResponse{
			Pred:         out.Pred,
			Logits:       out.Logits,
			ExitStep:     out.ExitStep,
			StepsRun:     out.StepsRun,
			T:            out.T,
			BatchSize:    out.BatchSize,
			ModelVersion: out.Version,
		}, 0
	case <-ctx.Done():
		s.tracer.Event(j.track, "deadline_missed")
		return http.StatusGatewayTimeout, errorResponse{"latency budget exceeded"}, 0
	}
}

// retryAfterSeconds derives the Retry-After hint for a shed response. While
// draining the answer is a flat second: this process is leaving the fleet, so
// the client's next attempt should go elsewhere (through the router) almost
// immediately. On a full queue the estimate is the time to work off the
// backlog ahead of the retry — queued batches times the recent mean batch
// execute time, spread over the workers — floored at one second so the header
// is always a positive integer.
func (s *Server) retryAfterSeconds(draining bool) int {
	if draining {
		return 1
	}
	exec := s.metrics.meanExecuteSeconds()
	if exec <= 0 {
		exec = 0.05 // no batches measured yet; assume a cheap one
	}
	batches := float64(len(s.queue))/float64(s.cfg.MaxBatch) + 1
	sec := int(math.Ceil(batches * exec / float64(s.cfg.Workers)))
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var req ReloadRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("decoding request: %v", err)})
			return
		}
	}
	snap, err := s.Reload(req.Path)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{
		Version:  snap.Version,
		Path:     snap.Path,
		LoadedAt: snap.LoadedAt.UTC().Format(time.RFC3339Nano),
	})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	snap := s.model.Current()
	writeJSON(w, http.StatusOK, ConfigResponse{
		Model:        snap.Net.Name,
		InShape:      snap.Net.InShape,
		InputLen:     s.inVolume,
		Classes:      s.classes,
		T:            s.cfg.T,
		EarlyExit:    s.cfg.EarlyExit,
		MaxBatch:     s.cfg.MaxBatch,
		ModelVersion: snap.Version,
		ModelPath:    snap.Path,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.Render(w)
	s.streams.RenderMetrics(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}
