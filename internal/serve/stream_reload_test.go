package serve

import (
	"math"
	"path/filepath"
	"testing"

	"skipper/internal/serialize"
	"skipper/internal/stream"
	"skipper/internal/tensor"
)

// streamGen is the deterministic event stream shared by the reload tests.
var streamGen = stream.GenOptions{
	Seed:            7,
	WindowSteps:     6,
	EventsPerWindow: 12,
	QuietFrac:       0.3,
}

func feedStream(t *testing.T, m *stream.Manager, id string, from, to int) [][]float32 {
	t.Helper()
	var out [][]float32
	for w := from; w < to; w++ {
		rep, serr := m.Window(stream.WindowRequest{
			Session: id,
			Seq:     w,
			Steps:   streamGen.WindowSteps,
			Events:  stream.GenWindow(streamGen, 0, w, 2*8*8),
		})
		if serr != nil {
			t.Fatalf("window %d: %v", w, serr)
		}
		out = append(out, rep.Logits)
	}
	return out
}

// TestStreamSessionSurvivesHotReload is the regression test for the
// reload-vs-session hazard: a checkpoint hot-swap mid-session must not
// rewrite a live session's membrane semantics. Sessions pin their weights at
// open time (each owns a private replica copied from the published
// snapshot), so the stream stays bitwise identical to an undisturbed run;
// before that fix, the reload perturbed in-flight predictions.
func TestStreamSessionSurvivesHotReload(t *testing.T) {
	const cut, total = 5, 12

	// A same-topology checkpoint with visibly perturbed weights.
	ckpt := filepath.Join(t.TempDir(), "next.skpw")
	{
		net, err := testBuild()
		if err != nil {
			t.Fatal(err)
		}
		rng := tensor.NewRNG(99)
		for _, p := range net.Params() {
			for i := range p.W.Data {
				p.W.Data[i] += 0.3 * (rng.Float32() - 0.5)
			}
		}
		if err := serialize.SaveFile(ckpt, net); err != nil {
			t.Fatal(err)
		}
	}

	// Reference: the same stream on a server that never reloads.
	ref, _ := newTestServer(t, Config{})
	if _, serr := ref.Streams().Open(stream.OpenRequest{Session: "s"}); serr != nil {
		t.Fatalf("open ref: %v", serr)
	}
	want := feedStream(t, ref.Streams(), "s", 0, total)

	// Under test: identical stream, checkpoint hot-swap mid-session.
	srv, _ := newTestServer(t, Config{})
	if _, serr := srv.Streams().Open(stream.OpenRequest{Session: "s"}); serr != nil {
		t.Fatalf("open: %v", serr)
	}
	got := feedStream(t, srv.Streams(), "s", 0, cut)
	snap, err := srv.Reload(ckpt)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if snap.Version < 2 {
		t.Fatalf("reload did not advance the model generation: %d", snap.Version)
	}
	got = append(got, feedStream(t, srv.Streams(), "s", cut, total)...)

	for w := range want {
		for i := range want[w] {
			if math.Float32bits(got[w][i]) != math.Float32bits(want[w][i]) {
				t.Fatalf("window %d logit %d changed across the reload: %v vs %v (session weights not pinned)",
					w, i, got[w][i], want[w][i])
			}
		}
	}

	// A session opened after the swap must serve the new generation.
	fresh, serr := srv.Streams().Open(stream.OpenRequest{Session: "post"})
	if serr != nil {
		t.Fatalf("open post-reload: %v", serr)
	}
	if fresh.ModelVersion != snap.Version {
		t.Fatalf("post-reload session pinned generation %d, want %d", fresh.ModelVersion, snap.Version)
	}
	post := feedStream(t, srv.Streams(), "post", 0, total)
	same := true
	for w := range want {
		for i := range want[w] {
			if math.Float32bits(post[w][i]) != math.Float32bits(want[w][i]) {
				same = false
			}
		}
	}
	if same {
		t.Fatalf("post-reload session produced the old generation's logits — new weights not picked up")
	}
}
