package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/serialize"
	"skipper/internal/tensor"
)

// testBuild is the serving topology used throughout: a small customnet so
// the race-enabled test stays fast.
func testBuild() (*layers.Network, error) {
	return models.Build("customnet", models.Options{
		InShape: []int{2, 8, 8},
		Classes: 4,
		Width:   0.25,
	})
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Build == nil {
		cfg.Build = testBuild
	}
	if cfg.T == 0 {
		cfg.T = 6
	}
	s, err := NewServer(cfg, "")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, hs
}

func inferOnce(t *testing.T, client *http.Client, url string, req InferRequest) (int, InferResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := client.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/infer: %v", err)
	}
	defer resp.Body.Close()
	var out InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode, out
}

// TestServeConcurrentWithReloadAndBackpressure is the subsystem acceptance
// test: ≥100 concurrent requests through the batching path, a hot reload
// mid-traffic, a deterministic 429 from a full queue, and /metrics counters
// consistent with the responses received.
func TestServeConcurrentWithReloadAndBackpressure(t *testing.T) {
	const total = 120
	var batched int64
	var batchMu sync.Mutex
	maxBatch := 0
	_, hs := newTestServer(t, Config{
		T:           6,
		EarlyExit:   true,
		MaxBatch:    8,
		BatchWindow: 3 * time.Millisecond,
		QueueDepth:  256,
		Workers:     3,
		OnBatch: func(size int) {
			batchMu.Lock()
			batched += int64(size)
			if size > maxBatch {
				maxBatch = size
			}
			batchMu.Unlock()
		},
	})
	client := hs.Client()

	// A checkpoint with perturbed weights of the same topology, for the
	// mid-traffic reload.
	ckpt := filepath.Join(t.TempDir(), "next.skpw")
	{
		net, err := testBuild()
		if err != nil {
			t.Fatal(err)
		}
		rng := tensor.NewRNG(99)
		for _, p := range net.Params() {
			for i := range p.W.Data {
				p.W.Data[i] += 0.05 * (rng.Float32() - 0.5)
			}
		}
		if err := serialize.SaveFile(ckpt, net); err != nil {
			t.Fatal(err)
		}
	}

	type result struct {
		code int
		resp InferResponse
	}
	results := make([]result, total)
	var done int64
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			input := syntheticInput(7, uint64(i), 2*8*8)
			code, resp := inferOnce(t, client, hs.URL, InferRequest{Input: input})
			results[i] = result{code, resp}
			atomic.AddInt64(&done, 1)
		}(i)
		// Hot reload mid-traffic, from a separate goroutine's perspective:
		// the swap must not disturb in-flight batches.
		if i == total/2 {
			// Let some requests finish on generation 1 first, so both
			// generations see traffic regardless of goroutine scheduling.
			for atomic.LoadInt64(&done) < 8 {
				time.Sleep(time.Millisecond)
			}
			body, _ := json.Marshal(ReloadRequest{Path: ckpt})
			resp, err := client.Post(hs.URL+"/v1/reload", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("reload: %v", err)
			}
			var rr ReloadResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Fatalf("decoding reload response: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || rr.Version != 2 {
				t.Fatalf("reload: status %d version %d", resp.StatusCode, rr.Version)
			}
		}
	}
	wg.Wait()

	ok := 0
	sawV1, sawV2 := false, false
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.code)
		}
		ok++
		if r.resp.T != 6 || r.resp.StepsRun < 1 || r.resp.StepsRun > 6 {
			t.Fatalf("request %d: T=%d StepsRun=%d", i, r.resp.T, r.resp.StepsRun)
		}
		if len(r.resp.Logits) != 4 {
			t.Fatalf("request %d: %d logits", i, len(r.resp.Logits))
		}
		switch r.resp.ModelVersion {
		case 1:
			sawV1 = true
		case 2:
			sawV2 = true
		default:
			t.Fatalf("request %d: model version %d", i, r.resp.ModelVersion)
		}
	}
	if !sawV1 || !sawV2 {
		t.Fatalf("expected traffic on both generations: v1=%v v2=%v", sawV1, sawV2)
	}
	batchMu.Lock()
	if batched != int64(total) {
		t.Fatalf("OnBatch saw %d samples, want %d", batched, total)
	}
	if maxBatch < 2 {
		t.Fatalf("no coalescing observed (max batch %d)", maxBatch)
	}
	batchMu.Unlock()

	// Deterministic 429: park the only worker inside OnBatch, fill the
	// 1-deep queue, and watch the next request bounce.
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	s2, hs2 := newTestServer(t, Config{
		T:           4,
		MaxBatch:    1,
		QueueDepth:  1,
		Workers:     1,
		BatchWindow: time.Millisecond,
		OnBatch: func(int) {
			entered <- struct{}{}
			<-release
		},
	})
	client2 := hs2.Client()
	input := syntheticInput(3, 0, 2*8*8)
	blockedDone := make(chan int, 1)
	go func() {
		code, _ := inferOnce(t, client2, hs2.URL, InferRequest{Input: input})
		blockedDone <- code
	}()
	<-entered // worker is parked; the queue is now empty
	queuedDone := make(chan int, 1)
	go func() {
		code, _ := inferOnce(t, client2, hs2.URL, InferRequest{Input: input})
		queuedDone <- code
	}()
	// Wait until the second request occupies the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(s2.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Raw POST so the 429's headers are visible: a shed response must carry
	// a positive integer Retry-After derived from the queue state.
	body429, _ := json.Marshal(InferRequest{Input: input})
	resp429, err := client2.Post(hs2.URL+"/v1/infer", "application/json", bytes.NewReader(body429))
	if err != nil {
		t.Fatalf("POST /v1/infer: %v", err)
	}
	resp429.Body.Close()
	if resp429.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429", resp429.StatusCode)
	}
	if ra, err := strconv.Atoi(resp429.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want a positive integer", resp429.Header.Get("Retry-After"))
	}
	close(release)
	if code := <-blockedDone; code != http.StatusOK {
		t.Fatalf("parked request answered %d", code)
	}
	if code := <-queuedDone; code != http.StatusOK {
		t.Fatalf("queued request answered %d", code)
	}

	// Metrics consistency, main server: counters must match the responses
	// this test received.
	metrics := fetchMetrics(t, client, hs.URL)
	assertMetric(t, metrics, `skipper_serve_requests_total{code="200"}`, float64(ok))
	assertMetric(t, metrics, "skipper_serve_samples_total", float64(total))
	earlyExits := 0.0
	for _, r := range results {
		if r.resp.ExitStep < r.resp.T-1 {
			earlyExits++
		}
	}
	assertMetric(t, metrics, "skipper_serve_early_exits_total", earlyExits)
	assertMetric(t, metrics, `skipper_serve_reloads_total{result="ok"}`, 1)
	assertMetric(t, metrics, `skipper_serve_reloads_total{result="error"}`, 0)
	assertMetric(t, metrics, "skipper_serve_model_version", 2)
	assertMetric(t, metrics, "skipper_serve_request_latency_seconds_count", float64(ok))
	if v, ok := metricValue(metrics, "skipper_serve_batch_timesteps_saved_total"); !ok || v < 0 {
		t.Fatalf("batch_timesteps_saved_total = %v (present %v)", v, ok)
	}

	// Metrics consistency, backpressure server: exactly one 429.
	m2 := fetchMetrics(t, client2, hs2.URL)
	assertMetric(t, m2, `skipper_serve_requests_total{code="429"}`, 1)
	assertMetric(t, m2, `skipper_serve_queue_rejected_total{reason="queue_full"}`, 1)
	assertMetric(t, m2, `skipper_serve_queue_rejected_total{reason="draining"}`, 0)
	assertMetric(t, m2, `skipper_serve_requests_total{code="200"}`, 2)
}

func fetchMetrics(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

func metricValue(text, name string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}

func assertMetric(t *testing.T, text, name string, want float64) {
	t.Helper()
	got, ok := metricValue(text, name)
	if !ok {
		t.Fatalf("metric %s missing", name)
	}
	if got != want {
		t.Fatalf("metric %s = %v, want %v", name, got, want)
	}
}

// TestReloadRejectsCorruptCheckpoint drives the rollback path over HTTP: a
// corrupt file must leave the serving generation untouched and count as a
// failed reload.
func TestReloadRejectsCorruptCheckpoint(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	client := hs.Client()

	ckpt := filepath.Join(t.TempDir(), "bad.skpw")
	net, err := testBuild()
	if err != nil {
		t.Fatal(err)
	}
	if err := serialize.SaveFile(ckpt, net); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, ckpt)

	body, _ := json.Marshal(ReloadRequest{Path: ckpt})
	resp, err := client.Post(hs.URL+"/v1/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt reload answered %d, want 422", resp.StatusCode)
	}
	if v := s.Model().Current().Version; v != 1 {
		t.Fatalf("serving generation moved to %d after failed reload", v)
	}
	m := fetchMetrics(t, client, hs.URL)
	assertMetric(t, m, `skipper_serve_reloads_total{result="error"}`, 1)
	assertMetric(t, m, "skipper_serve_model_version", 1)

	// The server must still answer inference after the failed reload.
	code, _ := inferOnce(t, client, hs.URL, InferRequest{Input: syntheticInput(1, 1, 2*8*8)})
	if code != http.StatusOK {
		t.Fatalf("inference after failed reload: %d", code)
	}
}

// TestInferValidation covers the request 400 paths.
func TestInferValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	client := hs.Client()

	if code, _ := inferOnce(t, client, hs.URL, InferRequest{Input: []float32{1, 2}}); code != http.StatusBadRequest {
		t.Fatalf("short input answered %d", code)
	}
	bad := syntheticInput(1, 1, 2*8*8)
	bad[3] = 1.5
	if code, _ := inferOnce(t, client, hs.URL, InferRequest{Input: bad}); code != http.StatusBadRequest {
		t.Fatalf("out-of-range input answered %d", code)
	}
	resp, err := client.Post(hs.URL+"/v1/infer", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON answered %d", resp.StatusCode)
	}
	resp, err = client.Get(hs.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET answered %d", resp.StatusCode)
	}
}

// TestDrainRefusesNewWork verifies graceful shutdown: draining answers 503
// on /v1/infer and /readyz while /healthz stays 200.
func TestDrainRefusesNewWork(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	client := hs.Client()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if code, _ := inferOnce(t, client, hs.URL, InferRequest{Input: syntheticInput(1, 1, 2*8*8)}); code != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d, want 503", code)
	}
	resp, err := client.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d", resp.StatusCode)
	}
	resp, err = client.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: %d", resp.StatusCode)
	}
}

// TestDeterministicAcrossBatchComposition checks the content-hash sample id:
// the same input must produce the same prediction and logits whether it
// rides alone or inside a coalesced batch.
func TestDeterministicAcrossBatchComposition(t *testing.T) {
	_, hsSolo := newTestServer(t, Config{MaxBatch: 1, Workers: 1})
	_, hsBatch := newTestServer(t, Config{MaxBatch: 8, Workers: 1, BatchWindow: 5 * time.Millisecond})

	input := syntheticInput(42, 7, 2*8*8)
	_, solo := mustOK(t, hsSolo, input)

	// Fire the probe input alongside seven others so it coalesces.
	var wg sync.WaitGroup
	var probe InferResponse
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				_, probe = mustOK(t, hsBatch, input)
			} else {
				mustOK(t, hsBatch, syntheticInput(42, uint64(100+i), 2*8*8))
			}
		}(i)
	}
	wg.Wait()

	if solo.Pred != probe.Pred {
		t.Fatalf("prediction depends on batch composition: solo %d vs batched %d", solo.Pred, probe.Pred)
	}
	for c := range solo.Logits {
		if solo.Logits[c] != probe.Logits[c] {
			t.Fatalf("logit %d differs: solo %v vs batched %v", c, solo.Logits[c], probe.Logits[c])
		}
	}
}

func mustOK(t *testing.T, hs *httptest.Server, input []float32) (int, InferResponse) {
	t.Helper()
	code, resp := inferOnce(t, hs.Client(), hs.URL, InferRequest{Input: input})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	return code, resp
}

// TestRequestBudgetTimeout verifies the per-request latency budget: a
// 1ms budget against a parked worker answers 504.
func TestRequestBudgetTimeout(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	_, hs := newTestServer(t, Config{
		MaxBatch:   1,
		Workers:    1,
		QueueDepth: 4,
		OnBatch: func(int) {
			entered <- struct{}{}
			<-release
		},
	})
	defer close(release)
	client := hs.Client()
	input := syntheticInput(5, 1, 2*8*8)
	go func() { // parks the worker; outcome checked via the entered channel
		body, _ := json.Marshal(InferRequest{Input: input})
		resp, err := client.Post(hs.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	code, _ := inferOnce(t, client, hs.URL, InferRequest{Input: input, BudgetMS: 1})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("budget-exceeded request answered %d, want 504", code)
	}
}

// TestDrainDropsResidualQueue is the regression test for the shutdown leak:
// when the drain budget expires with jobs still queued, those jobs used to be
// abandoned with their jobWG counts never released and their handlers hanging
// until their own request timeouts. Post-fix, Drain answers the residual
// queue promptly (503) and counts the drops in /metrics.
func TestDrainDropsResidualQueue(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	s, hs := newTestServer(t, Config{
		T:              4,
		MaxBatch:       1,
		QueueDepth:     4,
		Workers:        1,
		RequestTimeout: 30 * time.Second, // pre-fix, dropped handlers hung this long
		OnBatch: func(int) {
			entered <- struct{}{}
			<-release
		},
	})
	client := hs.Client()
	input := syntheticInput(11, 3, 2*8*8)

	post := func(ch chan<- int) {
		body, _ := json.Marshal(InferRequest{Input: input})
		resp, err := client.Post(hs.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			ch <- -1
			return
		}
		resp.Body.Close()
		ch <- resp.StatusCode
	}

	parked := make(chan int, 1)
	go post(parked)
	<-entered // the only worker is parked inside its batch

	const queued = 3
	queuedCodes := make(chan int, queued)
	for i := 0; i < queued; i++ {
		go post(queuedCodes)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) < queued {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests queued", len(s.queue), queued)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain with a parked worker must report the interrupted drain")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("Drain took %v, want ~the 100ms budget", took)
	}

	// The dropped jobs must be answered promptly — not at RequestTimeout.
	for i := 0; i < queued; i++ {
		select {
		case code := <-queuedCodes:
			if code != http.StatusServiceUnavailable {
				t.Fatalf("dropped job answered %d, want 503", code)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("dropped job's handler still hanging after drain")
		}
	}

	// The parked batch finishes once released; its job was never dropped.
	close(release)
	if code := <-parked; code != http.StatusOK {
		t.Fatalf("parked request answered %d, want 200", code)
	}

	// With every job accounted for, the wait group must reach zero — the
	// pre-fix leak left it short forever.
	waited := make(chan struct{})
	go func() { s.jobWG.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(2 * time.Second):
		t.Fatal("jobWG never drained: dropped jobs leaked wait-group counts")
	}

	m := fetchMetrics(t, client, hs.URL)
	assertMetric(t, m, "skipper_serve_drain_dropped_total", queued)
}

// TestCoalesceStopsOnShutdown is the regression test for the shutdown stall:
// a worker waiting out a long BatchWindow in coalesce used to ignore Drain
// entirely, holding its partial batch (and the worker goroutine) hostage for
// the full window. Post-fix, coalesce returns on the stop signal, the partial
// batch is flushed and answered, and the workers exit promptly.
func TestCoalesceStopsOnShutdown(t *testing.T) {
	const window = 30 * time.Second
	s, hs := newTestServer(t, Config{
		T:              4,
		MaxBatch:       8,
		QueueDepth:     8,
		Workers:        1,
		BatchWindow:    window,
		RequestTimeout: window,
	})
	client := hs.Client()

	got := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(InferRequest{Input: syntheticInput(21, 9, 2*8*8)})
		resp, err := client.Post(hs.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			got <- -1
			return
		}
		resp.Body.Close()
		got <- resp.StatusCode
	}()
	// Give the worker time to pull the job into coalesce. The request cannot
	// complete on its own — an 8-wide batch with one job waits out the full
	// 30s window — so an unanswered request here means the worker is parked
	// exactly where the pre-fix bug lived.
	time.Sleep(200 * time.Millisecond)
	select {
	case code := <-got:
		t.Fatalf("request answered early with %d; worker never entered coalesce", code)
	default:
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	s.Drain(ctx) // expires: the job is parked in coalesce, not yet answered

	// Post-fix the flushed partial batch answers the request far sooner than
	// the 30s window.
	select {
	case code := <-got:
		if code != http.StatusOK {
			t.Fatalf("flushed request answered %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request still unanswered: coalesce ignored shutdown")
	}
	exited := make(chan struct{})
	go func() { s.workerWG.Wait(); close(exited) }()
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		t.Fatal("worker still inside coalesce after Drain")
	}
}

// TestDrainUnderLoad races Drain against a burst of concurrent requests:
// every request must receive a definitive answer, and the job wait group must
// reach zero no matter where shutdown slices the stream. Run under -race this
// also exercises the enqueue/drain mutual exclusion.
func TestDrainUnderLoad(t *testing.T) {
	s, hs := newTestServer(t, Config{
		T:              4,
		MaxBatch:       4,
		QueueDepth:     16,
		Workers:        2,
		BatchWindow:    time.Millisecond,
		RequestTimeout: 10 * time.Second,
	})
	client := hs.Client()

	const total = 40
	codes := make(chan int, total)
	var started int64
	for i := 0; i < total; i++ {
		go func(i int) {
			atomic.AddInt64(&started, 1)
			body, _ := json.Marshal(InferRequest{Input: syntheticInput(31, uint64(i), 2*8*8)})
			resp, err := client.Post(hs.URL+"/v1/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}(i)
	}
	for atomic.LoadInt64(&started) < total/2 {
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s.Drain(ctx)

	for i := 0; i < total; i++ {
		select {
		case code := <-codes:
			switch code {
			case http.StatusOK, http.StatusServiceUnavailable,
				http.StatusTooManyRequests, http.StatusGatewayTimeout:
			default:
				t.Fatalf("request answered %d", code)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("request %d of %d never answered", i+1, total)
		}
	}
	waited := make(chan struct{})
	go func() { s.jobWG.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("jobWG leaked under racing drain")
	}
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
