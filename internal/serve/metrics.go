package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"skipper/internal/parallel"
	"skipper/internal/stats"
)

// Metrics is the server's hand-rolled metrics registry, rendered in
// Prometheus text exposition format. All mutators are safe for concurrent
// use.
type Metrics struct {
	mu sync.Mutex

	requests map[string]int64 // by HTTP status code label
	latency  *stats.Histogram // end-to-end request seconds
	queueing *stats.Histogram // queue-wait seconds
	batches  *stats.Histogram // micro-batch sizes
	execute  *stats.Histogram // batch-execute (inference) seconds

	samples        int64 // samples that completed inference
	batchSteps     int64 // batch-timesteps executed
	batchStepsMax  int64 // batch-timesteps that would run without early exit
	earlyExits     int64 // samples frozen before the final timestep
	reloadOK       int64
	reloadFailed   int64
	reloadRetries  int64            // transient load failures retried with backoff
	shed           map[string]int64 // requests shed before execution, by reason
	deadlineMissed int64            // requests abandoned on their latency budget
	drainDropped   int64            // queued jobs dropped unexecuted at shutdown

	// gauges, read at render time
	queueDepth   func() int
	modelVersion func() uint64
	poolStats    func() parallel.PoolStats
	threads      int // compute-pool width, fixed at construction
}

func newMetrics(maxBatch, threads int, queueDepth func() int, modelVersion func() uint64, poolStats func() parallel.PoolStats) *Metrics {
	return &Metrics{
		requests: map[string]int64{},
		shed:     map[string]int64{},
		// 0.5ms .. ~16s
		latency:  stats.NewHistogram(stats.ExponentialBounds(0.0005, 2, 15)...),
		queueing: stats.NewHistogram(stats.ExponentialBounds(0.0001, 2, 15)...),
		batches:  stats.NewHistogram(stats.LinearBounds(1, 1, maxBatch)...),
		execute:  stats.NewHistogram(stats.ExponentialBounds(0.0005, 2, 15)...),

		queueDepth:   queueDepth,
		modelVersion: modelVersion,
		poolStats:    poolStats,
		threads:      threads,
	}
}

// Shed reasons for skipper_serve_queue_rejected_total. The counter carries a
// reason label (the labels-by-suffix convention reloads_total uses for
// result) so dashboards can tell a full queue from a drain in progress.
const (
	shedQueueFull = "queue_full"
	shedDraining  = "draining"
)

func (m *Metrics) observeRequest(code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[fmt.Sprintf("%d", code)]++
	m.latency.Observe(seconds)
	if code == 504 {
		m.deadlineMissed++
	}
}

// observeShed counts one request shed before execution under its reason.
func (m *Metrics) observeShed(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed[reason]++
}

// ShedCount returns the shed counter for one reason (tests).
func (m *Metrics) ShedCount(reason string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shed[reason]
}

// meanExecuteSeconds returns the mean batch-execute time observed so far, 0
// before any batch ran. The Retry-After estimate is built on it.
func (m *Metrics) meanExecuteSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.execute.N() == 0 {
		return 0
	}
	return m.execute.Sum() / float64(m.execute.N())
}

func (m *Metrics) observeBatch(size, stepsRun, t, exits int, execSeconds float64, queueWait []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches.Observe(float64(size))
	m.execute.Observe(execSeconds)
	m.samples += int64(size)
	m.batchSteps += int64(stepsRun)
	m.batchStepsMax += int64(t)
	m.earlyExits += int64(exits)
	for _, w := range queueWait {
		m.queueing.Observe(w)
	}
}

func (m *Metrics) observeDrainDropped(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drainDropped += int64(n)
}

func (m *Metrics) observeReloadRetry() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reloadRetries++
}

func (m *Metrics) observeReload(ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.reloadOK++
	} else {
		m.reloadFailed++
	}
}

// RequestCount returns the counted requests for one status code label.
func (m *Metrics) RequestCount(code int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[fmt.Sprintf("%d", code)]
}

// Render writes the registry in Prometheus text exposition format.
func (m *Metrics) Render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP skipper_serve_requests_total Requests answered, by HTTP status code.")
	fmt.Fprintln(w, "# TYPE skipper_serve_requests_total counter")
	codes := make([]string, 0, len(m.requests))
	for c := range m.requests {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "skipper_serve_requests_total{code=%q} %d\n", c, m.requests[c])
	}

	renderHist(w, "skipper_serve_request_latency_seconds", "End-to-end request latency.", m.latency)
	renderHist(w, "skipper_serve_queue_wait_seconds", "Time spent waiting in the batching queue.", m.queueing)
	renderHist(w, "skipper_serve_batch_size", "Coalesced micro-batch sizes.", m.batches)
	renderHist(w, "skipper_serve_batch_execute_seconds", "Inference time per coalesced micro-batch.", m.execute)

	counter(w, "skipper_serve_samples_total", "Samples that completed inference.", m.samples)
	counter(w, "skipper_serve_batch_timesteps_total", "Batch-timesteps executed.", m.batchSteps)
	counter(w, "skipper_serve_batch_timesteps_saved_total",
		"Batch-timesteps avoided by early exit (configured horizon minus executed).",
		m.batchStepsMax-m.batchSteps)
	counter(w, "skipper_serve_early_exits_total", "Samples whose decision froze before the final timestep.", m.earlyExits)
	fmt.Fprintln(w, "# HELP skipper_serve_queue_rejected_total Requests shed before execution, by reason.")
	fmt.Fprintln(w, "# TYPE skipper_serve_queue_rejected_total counter")
	for _, reason := range []string{shedQueueFull, shedDraining} {
		fmt.Fprintf(w, "skipper_serve_queue_rejected_total{reason=%q} %d\n", reason, m.shed[reason])
	}
	counter(w, "skipper_serve_deadline_missed_total", "Requests abandoned on their latency budget.", m.deadlineMissed)
	counter(w, "skipper_serve_drain_dropped_total", "Queued jobs dropped unexecuted when shutdown exceeded its drain budget.", m.drainDropped)

	fmt.Fprintln(w, "# HELP skipper_serve_reloads_total Checkpoint reload attempts, by result.")
	fmt.Fprintln(w, "# TYPE skipper_serve_reloads_total counter")
	fmt.Fprintf(w, "skipper_serve_reloads_total{result=\"ok\"} %d\n", m.reloadOK)
	fmt.Fprintf(w, "skipper_serve_reloads_total{result=\"error\"} %d\n", m.reloadFailed)
	counter(w, "skipper_serve_reload_retries_total",
		"Transient checkpoint-read failures retried with backoff during reloads.", m.reloadRetries)

	gauge(w, "skipper_serve_queue_depth", "Requests currently waiting in the batching queue.", float64(m.queueDepth()))
	gauge(w, "skipper_serve_model_version", "Generation number of the serving checkpoint.", float64(m.modelVersion()))
	gauge(w, "skipper_runtime_threads", "Width of the shared parallel compute pool.", float64(m.threads))

	ps := m.poolStats()
	counter(w, "skipper_pool_runs_total", "Kernel fan-outs submitted to the shared compute pool.", ps.Runs)
	gauge(w, "skipper_pool_mean_lanes", "Average lanes occupied per pool run (utilization against skipper_runtime_threads).", ps.MeanLanes())
}

func counter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func gauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func renderHist(w io.Writer, name, help string, h *stats.Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := h.Cumulative()
	for i, b := range h.Bounds() {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.N())
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.N())
}

func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }
