// Package serve is the inference serving subsystem: a stdlib-only HTTP
// server that loads a trained network from a serialize checkpoint and
// answers classification requests.
//
// Requests are coalesced by a dynamic micro-batching queue — a worker picks
// up the first waiting request and gathers more until either MaxBatch is
// reached or BatchWindow elapses — and executed with core.InferStream, the
// inference-only forward path. With early exit enabled, the batch stops
// stepping as soon as every sample's rate-based readout decision has been
// stable for K timesteps: the serving-time counterpart of the paper's
// spike-activity time-skipping, where activity statistics decide which
// timesteps are worth computing.
//
// Robustness: the queue is bounded (full queue ⇒ 429), every request
// carries a context deadline (server default, tightened per request by
// budget_ms), checkpoints hot-reload behind an atomic pointer with
// validation before swap, and shutdown drains in-flight work before the
// workers exit. Observability: /metrics renders Prometheus text format,
// /healthz and /readyz report liveness and readiness.
package serve

import (
	"fmt"
	"time"

	"skipper/internal/core"
	"skipper/internal/layers"
)

// Config parameterises a Server.
type Config struct {
	// Build constructs the serving topology. It is called once per worker
	// (each worker owns a private replica, because layer forward passes
	// share per-layer scratch buffers and are not concurrency-safe) and
	// once per checkpoint load for validation.
	Build func() (*layers.Network, error)

	// Runtime is the execution context whose compute pool the worker
	// replicas' kernels run on. Nil means core.DefaultRuntime. All workers
	// share the one pool (per-worker scratch keeps them isolated; see
	// model.go), so the server saturates the machine without
	// oversubscribing it.
	Runtime *core.Runtime

	// T is the simulation horizon per request.
	T int
	// EarlyExit enables the spike-activity early exit.
	EarlyExit bool
	// ExitK is the stability window (0 = core.DefaultExitK).
	ExitK int
	// ExitMargin is the relative-margin confidence gate
	// (0 = core.DefaultExitMargin, negative disables).
	ExitMargin float64
	// ExitMinSteps is the warm-up floor (0 = 3·L_n).
	ExitMinSteps int

	// MaxBatch caps a coalesced micro-batch. Zero means 8.
	MaxBatch int
	// BatchWindow is how long a worker waits to coalesce more requests
	// after the first. Zero means 2ms.
	BatchWindow time.Duration
	// QueueDepth bounds the pending-request queue; a full queue answers
	// 429. Zero means 64.
	QueueDepth int
	// Workers is the number of batch workers. Zero means 2.
	Workers int
	// RequestTimeout is the per-request latency budget; requests may
	// tighten it with budget_ms but never extend it. Zero means 2s.
	RequestTimeout time.Duration

	// EncodeSeed namespaces the deterministic Poisson encoding of request
	// frames into spike trains.
	EncodeSeed uint64
	// MaxRate is the Poisson encoder's full-intensity spike probability
	// (0 = 1.0).
	MaxRate float32

	// OnBatch, when set, is called by a worker with the micro-batch size
	// just before the batch runs. Used by tests and available as a
	// lightweight observability hook.
	OnBatch func(size int)

	// SessionDir, when non-empty, makes streaming sessions durable: the
	// stream manager snapshots them here (one atomic .skps file per
	// session) and resumes them across a restart bit-identically.
	SessionDir string
	// SessionTTL evicts a streaming session idle longer than this
	// (snapshotting it first when durable). Zero means 5 minutes.
	SessionTTL time.Duration
	// SessionSnapshotEvery snapshots a durable session every N completed
	// windows. Zero means 8; negative disables periodic snapshots.
	SessionSnapshotEvery int
	// StreamSkipThreshold is the default activity gate for streaming
	// sessions: a window with at most this many events advances by
	// leak-only decay instead of the full forward. 0 (the default) skips
	// only empty windows — lossless; negative disables skipping.
	StreamSkipThreshold int
}

func (c Config) withDefaults() Config {
	if c.Runtime == nil {
		c.Runtime = core.DefaultRuntime()
	}
	if c.T <= 0 {
		c.T = 32
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	return c
}

func (c Config) validate() error {
	if c.Build == nil {
		return fmt.Errorf("serve: Config.Build is required")
	}
	return nil
}
