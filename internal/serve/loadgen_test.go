package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a stub /v1/config + /v1/infer server so loadgen mechanics
// can be tested without spinning up real inference.
func fakeBackend(t *testing.T, delay time.Duration, record func(wireRequest)) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/config":
			writeJSON(w, http.StatusOK, ConfigResponse{InputLen: 4, Classes: 2, T: 8})
		case "/v1/infer":
			var req wireRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
				return
			}
			if record != nil {
				mu.Lock()
				record(req)
				mu.Unlock()
			}
			time.Sleep(delay)
			writeJSON(w, http.StatusOK, InferResponse{Pred: 1, ExitStep: 3, StepsRun: 4, T: 8, BatchSize: 1, ModelVersion: 1})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(hs.Close)
	return hs
}

// TestOpenLoopLoadGen exercises the soak mode: the arrival count is
// deterministic in the seed, session/class fields reach the wire, and the
// in-flight cap converts excess arrivals into dropped_by_harness instead of
// hidden queueing.
func TestOpenLoopLoadGen(t *testing.T) {
	var classes sync.Map
	var sessions sync.Map
	var served atomic.Int64
	hs := fakeBackend(t, 0, func(req wireRequest) {
		served.Add(1)
		classes.Store(req.Class, true)
		sessions.Store(req.Session, true)
	})

	rep, err := RunLoadGen(hs.URL, LoadGenOptions{
		OpenLoop:    true,
		TargetQPS:   2000,
		Requests:    60,
		MaxInFlight: 64,
		Seed:        7,
		Sessions:    4,
		Class:       "interactive",
		Client:      hs.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.Requests != 60 {
		t.Fatalf("report: mode=%q requests=%d, want open/60", rep.Mode, rep.Requests)
	}
	if rep.OK+rep.DroppedByHarness != 60 {
		t.Fatalf("OK %d + dropped %d != 60 offered", rep.OK, rep.DroppedByHarness)
	}
	if _, ok := classes.Load("interactive"); !ok {
		t.Fatal("class never reached the wire")
	}
	nSessions := 0
	sessions.Range(func(any, any) bool { nSessions++; return true })
	if nSessions != 4 {
		t.Fatalf("saw %d distinct sessions, want 4", nSessions)
	}

	// Same seed, same arrival schedule: a second run offers the same count.
	rep2, err := RunLoadGen(hs.URL, LoadGenOptions{
		OpenLoop: true, TargetQPS: 2000, Requests: 60, MaxInFlight: 64,
		Seed: 7, Sessions: 4, Client: hs.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Requests != rep.Requests {
		t.Fatalf("non-deterministic arrival count: %d vs %d", rep2.Requests, rep.Requests)
	}
}

// TestOpenLoopDropsAtInFlightCap pins the dropped-by-harness accounting: a
// slow backend plus MaxInFlight 1 must shed most of a fast arrival schedule
// at the harness, and the sum of outcomes must still equal the offered load.
func TestOpenLoopDropsAtInFlightCap(t *testing.T) {
	hs := fakeBackend(t, 50*time.Millisecond, nil)
	rep, err := RunLoadGen(hs.URL, LoadGenOptions{
		OpenLoop:    true,
		TargetQPS:   1000,
		Requests:    40,
		MaxInFlight: 1,
		Seed:        3,
		Client:      hs.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedByHarness == 0 {
		t.Fatalf("expected harness drops with a 50ms backend at 1000 qps and cap 1, got report %+v", rep)
	}
	if rep.OK+rep.DroppedByHarness != rep.Requests {
		t.Fatalf("accounting leak: OK %d + dropped %d != offered %d", rep.OK, rep.DroppedByHarness, rep.Requests)
	}
}

// TestClosedLoopStillWorks guards the default path after the open-loop
// refactor.
func TestClosedLoopStillWorks(t *testing.T) {
	hs := fakeBackend(t, 0, nil)
	rep, err := RunLoadGen(hs.URL, LoadGenOptions{Requests: 20, Concurrency: 4, Client: hs.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" || rep.OK != 20 {
		t.Fatalf("closed loop: %+v", rep)
	}
}
