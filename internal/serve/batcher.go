package serve

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"time"

	"skipper/internal/core"
	"skipper/internal/encode"
	"skipper/internal/tensor"
	"skipper/internal/trace"
)

// exitParams is a job's resolved early-exit configuration: the server
// defaults overlaid with any per-request override. Jobs in one micro-batch
// must share it, because core.InferOptions applies to the whole batch —
// runBatch groups a coalesced batch by this key and runs one inference per
// group.
type exitParams struct {
	early  bool
	margin float64
}

// job is one enqueued inference request.
type job struct {
	frames []float32  // flattened [C,H,W] input, values in [0,1]
	id     uint64     // content hash; the deterministic encoding sample id
	exit   exitParams // resolved early-exit configuration
	enq    time.Time
	track  int // trace track for this request's spans (0 when tracing is off)
	ctx    context.Context
	resp   chan jobResult // buffered 1; the worker's send never blocks
}

// jobResult is what the worker hands back for one sample. A non-nil Err
// means the job was dropped (e.g. the server shut down before a worker could
// run it) and the other fields are zero.
type jobResult struct {
	Pred      int
	Logits    []float32
	ExitStep  int
	StepsRun  int
	T         int
	BatchSize int
	Version   uint64
	Err       error
}

// sampleID hashes the request content so the Poisson encoding of a frame is
// a pure function of (EncodeSeed, content, t) — identical inputs produce
// identical spike trains regardless of batch composition or arrival order.
func sampleID(frames []float32) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range frames {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// runWorker is one batch worker: it owns a private network replica and loops
// pulling micro-batches off the queue until the stop channel closes. idx
// names the worker's trace track.
func (s *Server) runWorker(idx int, r *replica) {
	defer s.workerWG.Done()
	track := trace.TrackWorker0 + idx
	for {
		select {
		case <-s.stop:
			return
		case first := <-s.queue:
			cs := s.tracer.Begin(track, "coalesce")
			jobs := s.coalesce(first)
			cs.End(trace.Attr{Key: "batch", Val: int64(len(jobs))})
			s.runBatch(track, r, jobs)
		}
	}
}

// coalesce gathers more requests after the first until the batch is full,
// the batching window elapses, or the server begins shutting down. The stop
// case matters: without it a quiet worker sits out the full BatchWindow
// before noticing Drain, stalling shutdown by up to the window (which can be
// configured far larger than any drain budget). On stop the partial batch is
// flushed to runBatch so the jobs already pulled off the queue get answered.
func (s *Server) coalesce(first *job) []*job {
	jobs := []*job{first}
	if s.cfg.MaxBatch == 1 {
		return jobs
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(jobs) < s.cfg.MaxBatch {
		select {
		case j := <-s.queue:
			jobs = append(jobs, j)
		case <-timer.C:
			return jobs
		case <-s.stop:
			return jobs
		}
	}
	return jobs
}

// runBatch executes one coalesced micro-batch on the worker's replica.
// Because core.InferOptions binds the exit rule to the whole batch, jobs
// whose requests overrode the rule (the router's per-class plumbing) are
// partitioned into per-exitParams groups, preserving arrival order, and each
// group runs as its own inference. In the common case — no overrides — this
// is one group and one pass, exactly the old behaviour.
func (s *Server) runBatch(track int, r *replica, jobs []*job) {
	// Requests whose deadline already passed are dropped here: their handler
	// has answered 504 and gone, so computing them would be pure waste.
	live := jobs[:0]
	for _, j := range jobs {
		if j.ctx.Err() != nil {
			s.jobWG.Done()
			continue
		}
		live = append(live, j)
	}
	jobs = live
	if len(jobs) == 0 {
		return
	}

	var order []exitParams
	groups := map[exitParams][]*job{}
	for _, j := range jobs {
		if _, seen := groups[j.exit]; !seen {
			order = append(order, j.exit)
		}
		groups[j.exit] = append(groups[j.exit], j)
	}
	for _, key := range order {
		s.runGroup(track, r, groups[key], key)
	}
}

// runGroup executes one exit-homogeneous group of jobs as a single batch.
func (s *Server) runGroup(track int, r *replica, jobs []*job, exit exitParams) {
	if s.cfg.OnBatch != nil {
		s.cfg.OnBatch(len(jobs))
	}
	snap := r.sync(s.model)

	b := len(jobs)
	shape := append([]int{b}, r.net.InShape...)
	frames := tensor.New(shape...)
	// The ids stay full-width uint64: j.id is a 64-bit content hash, and
	// narrowing it through int silently truncated the top 32 bits on 32-bit
	// platforms, so the same request encoded differently across architectures.
	ids := make([]uint64, b)
	waits := make([]float64, b)
	now := time.Now()
	per := frames.Len() / b
	for i, j := range jobs {
		copy(frames.Data[i*per:(i+1)*per], j.frames)
		ids[i] = j.id
		waits[i] = now.Sub(j.enq).Seconds()
		// The queue wait is over by the time the batch assembles, so it is
		// recorded retroactively on the request's own track.
		s.tracer.SpanAt(j.track, "queue_wait", j.enq, now.Sub(j.enq))
	}

	enc := encode.Poisson{MaxRate: s.cfg.MaxRate, Seed: s.cfg.EncodeSeed}
	spikes := tensor.New(shape...)
	exec := s.tracer.Begin(track, "batch_execute")
	res := core.InferStream(r.net, s.cfg.T, func(t int) *tensor.Tensor {
		enc.EncodeStep(spikes, frames, ids, t)
		return spikes
	}, core.InferOptions{
		EarlyExit: exit.early,
		K:         s.cfg.ExitK,
		MinMargin: exit.margin,
		MinSteps:  s.cfg.ExitMinSteps,
	})
	exec.End(trace.Attr{Key: "batch", Val: int64(b)},
		trace.Attr{Key: "steps_run", Val: int64(res.StepsRun)})

	s.metrics.observeBatch(b, res.StepsRun, res.T, res.EarlyExits(), time.Since(now).Seconds(), waits)

	classes := res.Logits.Dim(1)
	for i, j := range jobs {
		logits := make([]float32, classes)
		copy(logits, res.Logits.Data[i*classes:(i+1)*classes])
		j.resp <- jobResult{
			Pred:      res.Preds[i],
			Logits:    logits,
			ExitStep:  res.ExitSteps[i],
			StepsRun:  res.StepsRun,
			T:         res.T,
			BatchSize: b,
			Version:   snap.Version,
		}
		s.jobWG.Done()
	}
}
