package serve

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"time"

	"skipper/internal/core"
	"skipper/internal/encode"
	"skipper/internal/tensor"
)

// job is one enqueued inference request.
type job struct {
	frames []float32 // flattened [C,H,W] input, values in [0,1]
	id     uint64    // content hash; the deterministic encoding sample id
	enq    time.Time
	ctx    context.Context
	resp   chan jobResult // buffered 1; the worker's send never blocks
}

// jobResult is what the worker hands back for one sample.
type jobResult struct {
	Pred      int
	Logits    []float32
	ExitStep  int
	StepsRun  int
	T         int
	BatchSize int
	Version   uint64
}

// sampleID hashes the request content so the Poisson encoding of a frame is
// a pure function of (EncodeSeed, content, t) — identical inputs produce
// identical spike trains regardless of batch composition or arrival order.
func sampleID(frames []float32) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range frames {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// runWorker is one batch worker: it owns a private network replica and loops
// pulling micro-batches off the queue until the stop channel closes.
func (s *Server) runWorker(r *replica) {
	defer s.workerWG.Done()
	for {
		select {
		case <-s.stop:
			return
		case first := <-s.queue:
			s.runBatch(r, s.coalesce(first))
		}
	}
}

// coalesce gathers more requests after the first until the batch is full or
// the batching window elapses.
func (s *Server) coalesce(first *job) []*job {
	jobs := []*job{first}
	if s.cfg.MaxBatch == 1 {
		return jobs
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(jobs) < s.cfg.MaxBatch {
		select {
		case j := <-s.queue:
			jobs = append(jobs, j)
		case <-timer.C:
			return jobs
		}
	}
	return jobs
}

// runBatch executes one coalesced micro-batch on the worker's replica.
func (s *Server) runBatch(r *replica, jobs []*job) {
	// Requests whose deadline already passed are dropped here: their handler
	// has answered 504 and gone, so computing them would be pure waste.
	live := jobs[:0]
	for _, j := range jobs {
		if j.ctx.Err() != nil {
			s.jobWG.Done()
			continue
		}
		live = append(live, j)
	}
	jobs = live
	if len(jobs) == 0 {
		return
	}

	if s.cfg.OnBatch != nil {
		s.cfg.OnBatch(len(jobs))
	}
	snap := r.sync(s.model)

	b := len(jobs)
	shape := append([]int{b}, r.net.InShape...)
	frames := tensor.New(shape...)
	ids := make([]int, b)
	waits := make([]float64, b)
	now := time.Now()
	per := frames.Len() / b
	for i, j := range jobs {
		copy(frames.Data[i*per:(i+1)*per], j.frames)
		ids[i] = int(j.id)
		waits[i] = now.Sub(j.enq).Seconds()
	}

	enc := encode.Poisson{MaxRate: s.cfg.MaxRate, Seed: s.cfg.EncodeSeed}
	spikes := tensor.New(shape...)
	res := core.InferStream(r.net, s.cfg.T, func(t int) *tensor.Tensor {
		enc.EncodeStep(spikes, frames, ids, t)
		return spikes
	}, core.InferOptions{
		EarlyExit: s.cfg.EarlyExit,
		K:         s.cfg.ExitK,
		MinMargin: s.cfg.ExitMargin,
		MinSteps:  s.cfg.ExitMinSteps,
	})

	s.metrics.observeBatch(b, res.StepsRun, res.T, res.EarlyExits(), waits)

	classes := res.Logits.Dim(1)
	for i, j := range jobs {
		logits := make([]float32, classes)
		copy(logits, res.Logits.Data[i*classes:(i+1)*classes])
		j.resp <- jobResult{
			Pred:      res.Preds[i],
			Logits:    logits,
			ExitStep:  res.ExitSteps[i],
			StepsRun:  res.StepsRun,
			T:         res.T,
			BatchSize: b,
			Version:   snap.Version,
		}
		s.jobWG.Done()
	}
}
