package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/frame"
	"skipper/internal/stream"
)

// The fleet data path: the router speaks to replicas over persistent TCP
// connections carrying the same CRC-framed envelope internal/dist hardened
// for gradient exchange (frame.Write/frame.Read), with JSON payloads that
// mirror the HTTP bodies. A connection either processes one request at a
// time (the bare frame types below) or multiplexes concurrent exchanges
// under FleetMux correlation envelopes — the router's transport uses the
// latter so a single connection per backend carries every in-flight infer
// and stream-migration exchange.
//
// Message types (the envelope's typ byte). The type byte namespace is private
// to this protocol; dist's own messages never share a connection with it.
const (
	// FleetPing asks for a FleetPong status frame; the payload is empty.
	// The router's heartbeat loop uses it as combined liveness probe,
	// drain signal, and model-generation report.
	FleetPing byte = iota + 1
	// FleetPong answers a ping with a FleetStatus JSON payload.
	FleetPong
	// FleetInfer carries an InferRequest JSON payload.
	FleetInfer
	// FleetResult answers an infer with a FleetResponse JSON payload.
	FleetResult
	// FleetDrainAnnounce is sent by a replica TO a router's peer listener
	// when the replica begins a graceful shutdown: a DrainAnnouncement JSON
	// payload naming the replica, pushed before the drain starts so the
	// router vacates its ring arcs with zero missed-heartbeat window. This
	// constant lives here (not in internal/router) because the replica is
	// the sender and router already imports serve.
	FleetDrainAnnounce
	// FleetDrainAck acknowledges a drain announcement; empty payload.
	FleetDrainAck
	// FleetMux multiplexes several in-flight exchanges over one connection:
	// the payload is a frame.EncodeCorr envelope (corr id | inner type |
	// inner payload) and the reply comes back as another FleetMux frame
	// with the same correlation id. Streaming made this mandatory (a
	// session's windows and a migration pull share the replica's conns);
	// batch infer benefits too.
	FleetMux
)

// DrainAnnouncement is the FleetDrainAnnounce payload. URL is the replica's
// HTTP base URL — its identity in the router's backend table.
type DrainAnnouncement struct {
	URL string `json:"url"`
}

// AnnounceDrain tells every router in routerAddrs (their peer-listener
// addresses) that the replica at selfURL is beginning a graceful shutdown.
// Routers stop placing new sessions on it immediately instead of discovering
// the drain on the next heartbeat. Announcements fan out in parallel and
// best-effort: an unreachable router is skipped (its peers relay the drain
// through gossip, and the heartbeat remains the backstop). Returns how many
// routers acknowledged.
func AnnounceDrain(routerAddrs []string, selfURL string, timeout time.Duration) int {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	payload, _ := json.Marshal(DrainAnnouncement{URL: selfURL})
	var wg sync.WaitGroup
	var acked atomic.Int64
	for _, addr := range routerAddrs {
		if addr == "" {
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(timeout))
			if err := frame.Write(conn, FleetDrainAnnounce, payload); err != nil {
				return
			}
			if typ, _, err := frame.Read(conn); err == nil && typ == FleetDrainAck {
				acked.Add(1)
			}
		}(addr)
	}
	wg.Wait()
	return int(acked.Load())
}

// FleetStatus is the pong payload: everything the router needs to place
// traffic — liveness is implied by the reply, drain state gates ring
// membership, the queue numbers feed admission control, and the model
// generation drives the canary registry.
type FleetStatus struct {
	Draining     bool   `json:"draining"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	Workers      int    `json:"workers"`
	MaxBatch     int    `json:"max_batch"`
	ModelVersion uint64 `json:"model_version"`
	ModelPath    string `json:"model_path"`
}

// FleetResponse is the result payload: the HTTP status code the request
// would have received, the shed Retry-After hint when applicable, and the
// JSON body (InferResponse on 200, errorResponse otherwise).
type FleetResponse struct {
	Code       int             `json:"code"`
	RetryAfter int             `json:"retry_after,omitempty"`
	Body       json.RawMessage `json:"body"`
}

// fleetConns tracks the live fleet connections so Drain can unblock their
// reads; lazily initialised because most servers never serve a fleet.
type fleetConns struct {
	mu    sync.Mutex
	conns map[net.Conn]bool
}

func (f *fleetConns) add(c net.Conn) {
	f.mu.Lock()
	if f.conns == nil {
		f.conns = map[net.Conn]bool{}
	}
	f.conns[c] = true
	f.mu.Unlock()
}

func (f *fleetConns) remove(c net.Conn) {
	f.mu.Lock()
	delete(f.conns, c)
	f.mu.Unlock()
}

func (f *fleetConns) closeAll() {
	f.mu.Lock()
	for c := range f.conns {
		c.Close()
	}
	f.conns = nil
	f.mu.Unlock()
}

// ServeFleet accepts framed-transport connections until the listener closes.
// Each connection is served by its own goroutine; in-flight fleet requests
// are ordinary jobs, so Drain waits for them like any HTTP request. Run it in
// a goroutine next to the HTTP server:
//
//	ln, _ := net.Listen("tcp", fleetAddr)
//	go s.ServeFleet(ln)
func (s *Server) ServeFleet(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
			}
			return fmt.Errorf("serve: fleet accept: %w", err)
		}
		s.fleet.add(conn)
		go s.serveFleetConn(conn)
	}
}

// serveFleetConn answers one connection's frames until it closes or a frame
// is malformed (ErrBadFrame is unrecoverable by construction — the stream
// cannot be re-synchronized, so the connection is dropped and the router
// re-dials).
func (s *Server) serveFleetConn(conn net.Conn) {
	defer func() {
		s.fleet.remove(conn)
		conn.Close()
	}()
	// wmu serialises reply writes: multiplexed requests answer from their
	// own goroutines and must never interleave frame bytes.
	var wmu sync.Mutex
	for {
		typ, payload, err := frame.Read(conn)
		if err != nil {
			return // EOF, torn connection, or bad frame: the dialer owns retry
		}
		if typ == FleetMux {
			corr, ityp, inner, err := frame.DecodeCorr(payload)
			if err != nil {
				return // unsynchronizable, like any bad frame
			}
			// Copy: the inner payload aliases the read buffer, which the
			// next frame.Read would clobber under the handler goroutine.
			body := append([]byte(nil), inner...)
			go func() {
				rtyp, resp, ok := s.handleFleetFrame(ityp, body)
				if !ok {
					conn.Close() // protocol violation inside the envelope
					return
				}
				wmu.Lock()
				werr := frame.Write(conn, FleetMux, frame.EncodeCorr(corr, rtyp, resp))
				wmu.Unlock()
				if werr != nil {
					conn.Close()
				}
			}()
			continue
		}
		rtyp, resp, ok := s.handleFleetFrame(typ, payload)
		if !ok {
			return // unknown type: protocol violation, drop the connection
		}
		wmu.Lock()
		err = frame.Write(conn, rtyp, resp)
		wmu.Unlock()
		if err != nil {
			return
		}
	}
}

// handleFleetFrame executes one framed request and returns its reply frame.
// Shared by the sequential loop and the FleetMux fan-out.
func (s *Server) handleFleetFrame(typ byte, payload []byte) (byte, []byte, bool) {
	switch {
	case typ == FleetPing:
		return FleetPong, s.fleetStatusPayload(), true
	case typ == FleetInfer:
		start := time.Now()
		var req InferRequest
		var out FleetResponse
		if err := json.Unmarshal(payload, &req); err != nil {
			out.Code = 400
			out.Body, _ = json.Marshal(errorResponse{fmt.Sprintf("decoding request: %v", err)})
		} else {
			code, body, retryAfter := s.execute(context.Background(), req)
			out.Code = code
			out.RetryAfter = retryAfter
			out.Body, _ = json.Marshal(body)
		}
		s.metrics.observeRequest(out.Code, time.Since(start).Seconds())
		buf, _ := json.Marshal(out)
		return FleetResult, buf, true
	case stream.IsStreamType(typ):
		rtyp, resp := s.streams.HandleFrame(typ, payload)
		return rtyp, resp, true
	default:
		return 0, nil, false
	}
}

func (s *Server) fleetStatusPayload() []byte {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	snap := s.model.Current()
	buf, _ := json.Marshal(FleetStatus{
		Draining:     draining,
		QueueDepth:   len(s.queue),
		QueueCap:     s.cfg.QueueDepth,
		Workers:      s.cfg.Workers,
		MaxBatch:     s.cfg.MaxBatch,
		ModelVersion: snap.Version,
		ModelPath:    snap.Path,
	})
	return buf
}
