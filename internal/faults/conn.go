package faults

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn with the same programmable byte-budget fault plan
// the Injector applies to files: writes past a budget perform the in-budget
// prefix first (exactly what a peer observes when the writer dies mid-frame),
// reads past a budget fail after the in-budget prefix, and a fixed delay can
// be charged per operation to make a peer look slow. It is the network seam
// the dist protocol's torture tests are written against — killing a worker at
// byte N of a gradient upload is FailWritesAfter(N) here, no real process
// death needed. All knobs are safe for concurrent use.
type Conn struct {
	base net.Conn

	mu          sync.Mutex
	writeBudget int64 // bytes writable before writes fail (-1 = unlimited)
	readBudget  int64 // bytes readable before reads fail (-1 = unlimited)
	writes      int64
	reads       int64
	delay       time.Duration
	closeOnFail bool
}

// NewConn returns a fault-free wrapper around base.
func NewConn(base net.Conn) *Conn {
	return &Conn{base: base, writeBudget: -1, readBudget: -1}
}

// FailWritesAfter makes every write past the first n cumulative bytes fail
// with ErrInjected, after performing the in-budget partial write — the wire
// image of a sender killed mid-frame.
func (c *Conn) FailWritesAfter(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writeBudget, c.writes = n, 0
}

// FailReadsAfter makes every read past the first n cumulative bytes fail
// with ErrInjected after the in-budget prefix — a receiver watching its peer
// vanish.
func (c *Conn) FailReadsAfter(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readBudget, c.reads = n, 0
}

// SetDelay charges d of latency to every subsequent Read and Write — the
// straggler knob.
func (c *Conn) SetDelay(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delay = d
}

// CloseOnFault makes the first injected fault also close the underlying
// connection, so the peer sees EOF/reset rather than a stall — a process
// death instead of a hang.
func (c *Conn) CloseOnFault(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closeOnFail = on
}

// BytesWritten reports cumulative bytes written since the last budget reset
// (byte-boundary sweeps size their loop with it).
func (c *Conn) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// faulted finishes an injected fault: optionally tearing the connection down
// so the peer unblocks.
func (c *Conn) faulted(op string) error {
	c.mu.Lock()
	kill := c.closeOnFail
	c.mu.Unlock()
	if kill {
		c.base.Close()
	}
	return fmt.Errorf("%s %s: %w", op, c.base.RemoteAddr(), ErrInjected)
}

func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	allow, fault := allowance(c.writeBudget, c.writes, int64(len(p)))
	d := c.delay
	c.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	// A spent budget must not touch the pipe at all: a zero-length write on
	// net.Pipe still wakes the peer with (0, nil), which no dead sender does.
	if fault && allow == 0 {
		return 0, c.faulted("write")
	}
	n, err := c.base.Write(p[:allow])
	c.mu.Lock()
	c.writes += int64(n)
	c.mu.Unlock()
	if fault {
		return n, c.faulted("write")
	}
	return n, err
}

func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	allow, fault := allowance(c.readBudget, c.reads, int64(len(p)))
	d := c.delay
	c.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	if fault && allow == 0 {
		return 0, c.faulted("read")
	}
	n, err := c.base.Read(p[:allow])
	c.mu.Lock()
	c.reads += int64(n)
	c.mu.Unlock()
	if fault {
		return n, c.faulted("read")
	}
	return n, err
}

func (c *Conn) Close() error                       { return c.base.Close() }
func (c *Conn) LocalAddr() net.Addr                { return c.base.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.base.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.base.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.base.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.base.SetWriteDeadline(t) }
