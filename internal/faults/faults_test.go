package faults

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "f.txt")
	if err := OS.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := OS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	moved := filepath.Join(dir, "sub", "g.txt")
	if err := OS.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(filepath.Dir(moved)); err != nil {
		t.Fatal(err)
	}
	r, err := OS.Open(moved)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	r.Close()
	if err != nil || string(got) != "hello" {
		t.Fatalf("read %q, %v", got, err)
	}
	if _, err := OS.Stat(moved); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(moved); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(moved); !os.IsNotExist(err) {
		t.Fatal("file should be gone")
	}
}

func TestInjectorWriteBudget(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil)
	inj.FailWritesAfter(3)
	f, err := inj.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 3 {
		t.Fatalf("partial write of %d bytes, want 3 (the crash leaves a prefix)", n)
	}
	f.Close()
	got, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil || string(got) != "abc" {
		t.Fatalf("on-disk prefix %q, %v", got, err)
	}
	if inj.BytesWritten() != 3 {
		t.Fatalf("BytesWritten = %d", inj.BytesWritten())
	}
	// Budget is cumulative: the next write fails immediately.
	f2, err := inj.Create(filepath.Join(dir, "g"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected on exhausted budget, got %v", err)
	}
	f2.Close()
	// Reset clears the plan.
	inj.Reset()
	f3, err := inj.Create(filepath.Join(dir, "h"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f3.Write([]byte("unbounded again")); err != nil {
		t.Fatal(err)
	}
	f3.Close()
}

func TestInjectorShortRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(nil)
	inj.ShortReadsAfter(4)
	f, err := inj.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 10)
	n, err := f.Read(buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 4 || string(buf[:n]) != "0123" {
		t.Fatalf("short read gave %q", buf[:n])
	}
}

func TestInjectorRenameSyncCreate(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil)

	inj.FailRename(true)
	if err := inj.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want rename fault, got %v", err)
	}
	inj.FailRename(false)

	inj.FailSync(true)
	f, err := inj.Create(filepath.Join(dir, "c"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want sync fault, got %v", err)
	}
	f.Close()
	if err := inj.SyncDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("want syncdir fault, got %v", err)
	}
	inj.FailSync(false)

	inj.FailCreate(true)
	if _, err := inj.Create(filepath.Join(dir, "d")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want create fault, got %v", err)
	}
}

func TestClocks(t *testing.T) {
	if d := time.Since(Wall.Now()); d < -time.Minute || d > time.Minute {
		t.Fatalf("wall clock is off by %v", d)
	}
	ref := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if got := Fixed(ref).Now(); !got.Equal(ref) {
		t.Fatalf("fixed clock = %v", got)
	}
}
