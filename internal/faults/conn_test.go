package faults

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestConnFailWritesAfterPartialPrefix(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := NewConn(a)
	fc.FailWritesAfter(3)

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 8)
		n, _ := io.ReadFull(b, buf[:3])
		got <- buf[:n]
	}()

	n, err := fc.Write([]byte("hello"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 3 {
		t.Fatalf("partial write of %d bytes, want the 3-byte budget prefix", n)
	}
	if string(<-got) != "hel" {
		t.Fatal("peer must observe exactly the in-budget prefix")
	}
	fc.Close()
}

func TestConnFailReadsAfter(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := NewConn(a)
	fc.FailReadsAfter(2)

	go b.Write([]byte("wxyz"))

	buf := make([]byte, 4)
	n, err := fc.Read(buf)
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("read %d, %v; want the 2-byte prefix then ErrInjected", n, err)
	}
	// The budget is spent: the next read fails immediately, no bytes moved.
	if n, err := fc.Read(buf); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("read after spent budget: %d, %v", n, err)
	}
	fc.Close()
}

func TestConnCloseOnFaultUnblocksPeer(t *testing.T) {
	a, b := net.Pipe()
	fc := NewConn(a)
	fc.FailWritesAfter(0)
	fc.CloseOnFault(true)

	peerErr := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 1))
		peerErr <- err
	}()

	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	select {
	case err := <-peerErr:
		if err == nil {
			t.Fatal("peer read must fail once the faulted side closes")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer still blocked: CloseOnFault did not close the connection")
	}
	b.Close()
}

func TestConnDelayCharged(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := NewConn(a)
	fc.SetDelay(30 * time.Millisecond)

	go io.ReadFull(b, make([]byte, 1))
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("write returned in %v, want >= the injected 30ms", d)
	}
	fc.Close()
}

func TestConnPassthroughWhenFaultFree(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := NewConn(a)
	go b.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(fc, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("passthrough read: %q, %v", buf, err)
	}
	if fc.LocalAddr() == nil || fc.RemoteAddr() == nil {
		t.Fatal("address methods must delegate")
	}
	fc.Close()
}
