// Package faults provides the injectable filesystem and clock seams the
// durability layer (internal/runstate) is written against, plus
// fault-injecting implementations used to prove crash safety without real
// crashes: an error-after-N-bytes writer, rename failure, sync failure, and
// short reads. A snapshot path that survives the Injector at every byte
// boundary survives a SIGKILL at the matching instant, because the visible
// on-disk states are the same.
package faults

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
	"time"
)

// File is the subset of *os.File the durability layer needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's bytes to stable storage.
	Sync() error
}

// FS abstracts the filesystem operations a durable snapshot performs, in
// the order the crash-safety argument depends on: create temp, write, sync,
// close, rename over the target, sync the directory.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory so a completed rename survives power loss.
	SyncDir(dir string) error
}

// Clock abstracts time for snapshot stamps and backoff, so tests can run
// fault scenarios without wall-clock sleeps.
type Clock interface {
	Now() time.Time
}

// OS is the passthrough FS used outside tests.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Rename(o, n string) error         { return os.Rename(o, n) }
func (osFS) Remove(name string) error         { return os.Remove(name) }
func (osFS) MkdirAll(p string, m fs.FileMode) error {
	return os.MkdirAll(p, m)
}
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Advisory on some filesystems; the rename is already visible.
	_ = d.Sync()
	return d.Close()
}

// Wall is the real clock.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Fixed returns a clock frozen at t.
func Fixed(t time.Time) Clock { return fixedClock{t} }

type fixedClock struct{ t time.Time }

func (c fixedClock) Now() time.Time { return c.t }

// ErrInjected is the error every injected fault surfaces as, so tests can
// tell deliberate faults from real bugs.
var ErrInjected = fmt.Errorf("faults: injected fault")

// Injector wraps a base FS with a programmable fault plan. All knobs are
// safe for concurrent use. The zero budget values mean "no fault".
type Injector struct {
	Base FS

	mu          sync.Mutex
	writeBudget int64 // bytes writable before writes fail (-1 = unlimited)
	readBudget  int64 // bytes readable before reads fail (-1 = unlimited)
	failRename  bool
	failSync    bool
	failCreate  bool
	writes      int64
	reads       int64
}

// NewInjector returns a fault-free injector over base (OS when nil).
func NewInjector(base FS) *Injector {
	if base == nil {
		base = OS
	}
	return &Injector{Base: base, writeBudget: -1, readBudget: -1}
}

// FailWritesAfter makes every write past the first n bytes (cumulative
// across files) fail with ErrInjected — the moment the process "died".
// A partial write up to the budget is performed first, exactly like a
// crash mid-write leaves a prefix on disk.
func (i *Injector) FailWritesAfter(n int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.writeBudget, i.writes = n, 0
}

// ShortReadsAfter makes reads past the first n cumulative bytes fail with
// ErrInjected, modelling a torn read of a file being replaced.
func (i *Injector) ShortReadsAfter(n int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.readBudget, i.reads = n, 0
}

// FailRename toggles rename failure.
func (i *Injector) FailRename(on bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.failRename = on
}

// FailSync toggles file-sync and directory-sync failure.
func (i *Injector) FailSync(on bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.failSync = on
}

// FailCreate toggles creation failure (disk full at open time).
func (i *Injector) FailCreate(on bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.failCreate = on
}

// Reset clears the fault plan and counters.
func (i *Injector) Reset() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.writeBudget, i.readBudget = -1, -1
	i.failRename, i.failSync, i.failCreate = false, false, false
	i.writes, i.reads = 0, 0
}

// BytesWritten reports the cumulative bytes written since the last budget
// reset (used by byte-boundary sweeps to size their loop).
func (i *Injector) BytesWritten() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.writes
}

// Create implements FS.
func (i *Injector) Create(name string) (File, error) {
	i.mu.Lock()
	fail := i.failCreate
	i.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("create %s: %w", name, ErrInjected)
	}
	f, err := i.Base.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f, name: name}, nil
}

// Open implements FS.
func (i *Injector) Open(name string) (File, error) {
	f, err := i.Base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f, name: name}, nil
}

// Rename implements FS.
func (i *Injector) Rename(o, n string) error {
	i.mu.Lock()
	fail := i.failRename
	i.mu.Unlock()
	if fail {
		return fmt.Errorf("rename %s: %w", o, ErrInjected)
	}
	return i.Base.Rename(o, n)
}

// Remove implements FS.
func (i *Injector) Remove(name string) error { return i.Base.Remove(name) }

// MkdirAll implements FS.
func (i *Injector) MkdirAll(p string, m fs.FileMode) error { return i.Base.MkdirAll(p, m) }

// Stat implements FS.
func (i *Injector) Stat(name string) (fs.FileInfo, error) { return i.Base.Stat(name) }

// SyncDir implements FS.
func (i *Injector) SyncDir(dir string) error {
	i.mu.Lock()
	fail := i.failSync
	i.mu.Unlock()
	if fail {
		return fmt.Errorf("syncdir %s: %w", dir, ErrInjected)
	}
	return i.Base.SyncDir(dir)
}

// injFile applies the injector's byte budgets to one open file.
type injFile struct {
	inj  *Injector
	f    File
	name string
}

// allowance reserves up to len bytes against a budget and reports how many
// may proceed; faulted is true when the budget cuts the operation short.
func allowance(budget, used, length int64) (allow int64, faulted bool) {
	if budget < 0 || used+length <= budget {
		return length, false
	}
	allow = budget - used
	if allow < 0 {
		allow = 0
	}
	return allow, true
}

func (w *injFile) Write(p []byte) (int, error) {
	w.inj.mu.Lock()
	allow, faulted := allowance(w.inj.writeBudget, w.inj.writes, int64(len(p)))
	w.inj.mu.Unlock()
	// A crash mid-write leaves a prefix on disk: perform the partial write,
	// then surface the fault.
	n, err := w.f.Write(p[:allow])
	w.inj.mu.Lock()
	w.inj.writes += int64(n)
	w.inj.mu.Unlock()
	if faulted {
		return n, fmt.Errorf("write %s: %w", w.name, ErrInjected)
	}
	return n, err
}

func (w *injFile) Read(p []byte) (int, error) {
	w.inj.mu.Lock()
	allow, faulted := allowance(w.inj.readBudget, w.inj.reads, int64(len(p)))
	w.inj.mu.Unlock()
	n, err := w.f.Read(p[:allow])
	w.inj.mu.Lock()
	w.inj.reads += int64(n)
	w.inj.mu.Unlock()
	if faulted {
		return n, fmt.Errorf("read %s: %w", w.name, ErrInjected)
	}
	return n, err
}

func (w *injFile) Sync() error {
	w.inj.mu.Lock()
	fail := w.inj.failSync
	w.inj.mu.Unlock()
	if fail {
		return fmt.Errorf("sync %s: %w", w.name, ErrInjected)
	}
	return w.f.Sync()
}

func (w *injFile) Close() error { return w.f.Close() }
