// Package tensor implements the dense float32 tensor substrate used by the
// SNN training framework. Tensors are contiguous, row-major, and carry an
// explicit shape; the package provides the elementwise, matrix, convolution,
// and pooling kernels that the spiking layers build their forward and
// backward passes from.
//
// The package is deliberately free of any dependency on the device memory
// model: accounting happens at the layer/engine level, where the lifecycle of
// each tensor (weight, activation record, workspace) is known.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, contiguous, row-major float32 array with a shape.
// The zero value is an empty tensor.
type Tensor struct {
	shape []int
	Data  []float32
}

// New returns a zero-filled tensor with the given shape. It panics on
// negative dimensions (a programming error, not a runtime condition).
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape, without copying.
// It panics if len(data) does not match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: data}
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Bytes returns the payload size in bytes (4 bytes per element).
func (t *Tensor) Bytes() int64 { return int64(len(t.Data)) * 4 }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the tensor with a new shape of the same volume.
// The underlying data is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.Data), shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: t.Data}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// String renders a compact description (shape plus a few leading values),
// suitable for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.Data[i])
	}
	if n < len(t.Data) {
		b.WriteString(" ...")
	}
	b.WriteString("]")
	return b.String()
}

// Volume returns the product of the dimensions in shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// IsFinite reports whether every element is a finite number. Useful as a
// training-loop invariant check.
func (t *Tensor) IsFinite() bool {
	for _, v := range t.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}
