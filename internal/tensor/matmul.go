package tensor

import "fmt"

// MatMul computes dst = a × b for 2-D tensors a [M,K] and b [K,N].
// dst must have shape [M,N] and must not alias a or b. The kernel is a
// cache-blocked ikj loop; it is the hot path under im2col convolution.
func MatMul(dst, a, b *Tensor) {
	as, bs, ds := a.Shape(), b.Shape(), dst.Shape()
	if len(as) != 2 || len(bs) != 2 || len(ds) != 2 {
		panic(fmt.Sprintf("tensor: MatMul expects rank-2 operands, got %v x %v -> %v", as, bs, ds))
	}
	m, k, n := as[0], as[1], bs[1]
	if bs[0] != k || ds[0] != m || ds[1] != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v -> %v", as, bs, ds))
	}
	dst.Zero()
	matmulAcc(dst.Data, a.Data, b.Data, m, k, n)
}

// MatMulAcc computes dst += a × b without zeroing dst first.
func MatMulAcc(dst, a, b *Tensor) {
	as, bs, ds := a.Shape(), b.Shape(), dst.Shape()
	m, k, n := as[0], as[1], bs[1]
	if len(as) != 2 || len(bs) != 2 || len(ds) != 2 || bs[0] != k || ds[0] != m || ds[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAcc shape mismatch %v x %v -> %v", as, bs, ds))
	}
	matmulAcc(dst.Data, a.Data, b.Data, m, k, n)
}

// matmulAcc performs dst += a*b on flat row-major buffers with loop order
// i-k-j, which streams b and dst rows sequentially and lets the compiler
// vectorise the inner loop.
func matmulAcc(dst, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				// Spike matrices are mostly zeros; skipping zero rows of the
				// accumulation is a large win for SNN workloads.
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j := range brow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransA computes dst = aᵀ × b for a [K,M], b [K,N] -> dst [M,N].
// Used for weight gradients: dW = deltaᵀ · input.
func MatMulTransA(dst, a, b *Tensor) {
	as, bs, ds := a.Shape(), b.Shape(), dst.Shape()
	if len(as) != 2 || len(bs) != 2 || len(ds) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA expects rank-2 operands, got %v x %v -> %v", as, bs, ds))
	}
	k, m, n := as[0], as[1], bs[1]
	if bs[0] != k || ds[0] != m || ds[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %v^T x %v -> %v", as, bs, ds))
	}
	dst.Zero()
	MatMulTransAAcc(dst, a, b)
}

// MatMulTransAAcc computes dst += aᵀ × b without zeroing dst.
func MatMulTransAAcc(dst, a, b *Tensor) {
	as, bs := a.Shape(), b.Shape()
	k, m, n := as[0], as[1], bs[1]
	for kk := 0; kk < k; kk++ {
		arow := a.Data[kk*m : (kk+1)*m]
		brow := b.Data[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst.Data[i*n : (i+1)*n]
			for j := range brow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransB computes dst = a × bᵀ for a [M,K], b [N,K] -> dst [M,N].
// Used for input gradients: dX = delta · W with W stored [N,K].
func MatMulTransB(dst, a, b *Tensor) {
	as, bs, ds := a.Shape(), b.Shape(), dst.Shape()
	if len(as) != 2 || len(bs) != 2 || len(ds) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB expects rank-2 operands, got %v x %v^T -> %v", as, bs, ds))
	}
	m, k, n := as[0], as[1], bs[0]
	if bs[1] != k || ds[0] != m || ds[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %v x %v^T -> %v", as, bs, ds))
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for kk := range arow {
				s += arow[kk] * brow[kk]
			}
			drow[j] = s
		}
	}
}
