package tensor

import (
	"fmt"

	"skipper/internal/parallel"
)

// minLaneWork is the floor on per-lane inner-loop operations before a kernel
// fans out: below it the goroutine handoff costs more than the arithmetic.
// It only gates how many lanes run, never what each output element computes,
// so results are independent of its value.
const minLaneWork = 1 << 14

// grainFor converts per-row work into a RunGrain row floor.
func grainFor(perRow int) int {
	if perRow <= 0 {
		return 1
	}
	if g := minLaneWork / perRow; g > 1 {
		return g
	}
	return 1
}

// MatMul computes dst = a × b for 2-D tensors a [M,K] and b [K,N].
// dst must have shape [M,N] and must not alias a or b. The kernel is a
// cache-blocked ikj loop parallelised over rows of dst; it is the hot path
// under im2col convolution. A nil pool runs serially; results are
// bit-identical for every pool size because each output row is produced by
// exactly the serial per-row code.
func MatMul(p *parallel.Pool, dst, a, b *Tensor) {
	as, bs, ds := a.Shape(), b.Shape(), dst.Shape()
	if len(as) != 2 || len(bs) != 2 || len(ds) != 2 {
		panic(fmt.Sprintf("tensor: MatMul expects rank-2 operands, got %v x %v -> %v", as, bs, ds))
	}
	m, k, n := as[0], as[1], bs[1]
	if bs[0] != k || ds[0] != m || ds[1] != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v -> %v", as, bs, ds))
	}
	dst.Zero()
	matmulAccPar(p, dst.Data, a.Data, b.Data, m, k, n)
}

// MatMulAcc computes dst += a × b without zeroing dst first.
func MatMulAcc(p *parallel.Pool, dst, a, b *Tensor) {
	as, bs, ds := a.Shape(), b.Shape(), dst.Shape()
	m, k, n := as[0], as[1], bs[1]
	if len(as) != 2 || len(bs) != 2 || len(ds) != 2 || bs[0] != k || ds[0] != m || ds[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAcc shape mismatch %v x %v -> %v", as, bs, ds))
	}
	matmulAccPar(p, dst.Data, a.Data, b.Data, m, k, n)
}

// matmulAccPar partitions the M rows of dst across pool lanes; each lane
// runs the serial matmulAcc on its contiguous row block, so no float ever
// crosses a lane boundary.
func matmulAccPar(p *parallel.Pool, dst, a, b []float32, m, k, n int) {
	p.RunGrain(m, grainFor(k*n), func(_, lo, hi int) {
		matmulAcc(dst[lo*n:hi*n], a[lo*k:hi*k], b, hi-lo, k, n)
	})
}

// matmulAcc performs dst += a*b on flat row-major buffers with loop order
// i-k-j, which streams b and dst rows sequentially and lets the compiler
// vectorise the inner loop.
func matmulAcc(dst, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				// Spike matrices are mostly zeros; skipping zero rows of the
				// accumulation is a large win for SNN workloads.
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j := range brow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransA computes dst = aᵀ × b for a [K,M], b [K,N] -> dst [M,N].
// Used for weight gradients: dW = deltaᵀ · input.
func MatMulTransA(p *parallel.Pool, dst, a, b *Tensor) {
	as, bs, ds := a.Shape(), b.Shape(), dst.Shape()
	if len(as) != 2 || len(bs) != 2 || len(ds) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA expects rank-2 operands, got %v x %v -> %v", as, bs, ds))
	}
	k, m, n := as[0], as[1], bs[1]
	if bs[0] != k || ds[0] != m || ds[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %v^T x %v -> %v", as, bs, ds))
	}
	dst.Zero()
	MatMulTransAAcc(p, dst, a, b)
}

// MatMulTransAAcc computes dst += aᵀ × b without zeroing dst. The loop is
// i-outer so the M output rows partition across lanes; each element (i,j)
// still accumulates its kk terms in ascending order, the same per-element
// sequence the kk-outer serial kernel produced, so sums are bit-identical
// for every pool size.
func MatMulTransAAcc(p *parallel.Pool, dst, a, b *Tensor) {
	as, bs := a.Shape(), b.Shape()
	k, m, n := as[0], as[1], bs[1]
	ad, bd, dd := a.Data, b.Data, dst.Data
	p.RunGrain(m, grainFor(k*n), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n : (i+1)*n]
			for kk := 0; kk < k; kk++ {
				av := ad[kk*m+i]
				if av == 0 {
					continue
				}
				brow := bd[kk*n : (kk+1)*n]
				for j := range brow {
					drow[j] += av * brow[j]
				}
			}
		}
	})
}

// MatMulTransB computes dst = a × bᵀ for a [M,K], b [N,K] -> dst [M,N].
// Used for input gradients: dX = delta · W with W stored [N,K].
func MatMulTransB(p *parallel.Pool, dst, a, b *Tensor) {
	as, bs, ds := a.Shape(), b.Shape(), dst.Shape()
	if len(as) != 2 || len(bs) != 2 || len(ds) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB expects rank-2 operands, got %v x %v^T -> %v", as, bs, ds))
	}
	m, k, n := as[0], as[1], bs[0]
	if bs[1] != k || ds[0] != m || ds[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %v x %v^T -> %v", as, bs, ds))
	}
	ad, bd, dd := a.Data, b.Data, dst.Data
	p.RunGrain(m, grainFor(n*k), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			drow := dd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s float32
				for kk := range arow {
					s += arow[kk] * brow[kk]
				}
				drow[j] = s
			}
		}
	})
}
