package tensor

import (
	"math/bits"
	"testing"
)

// Reference implementations the pack hot path used before the packed-compute
// refactor, kept here so the benchmarks document the delta: a hand-rolled
// Kernighan popcount loop and a per-element div/mod Unpack.

func kernighanPopcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func (p *PackedSpikes) unpackPerElement() *Tensor {
	t := New(p.shape...)
	for i := 0; i < p.n; i++ {
		if p.bits[i/64]&(1<<(i%64)) != 0 {
			t.Data[i] = 1
		}
	}
	return t
}

func benchPacked(b *testing.B, density float64) *PackedSpikes {
	b.Helper()
	x := New(1 << 20)
	fillSpikes(x.Data, 1, density)
	p, ok := PackSpikes(x)
	if !ok {
		b.Fatal("must pack")
	}
	return p
}

func BenchmarkCountOnesCount64(b *testing.B) {
	p := benchPacked(b, 0.5)
	b.SetBytes(p.Bytes())
	for i := 0; i < b.N; i++ {
		if p.Count() == -1 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkCountKernighan(b *testing.B) {
	p := benchPacked(b, 0.5)
	b.SetBytes(p.Bytes())
	for i := 0; i < b.N; i++ {
		c := 0
		for _, w := range p.bits {
			c += kernighanPopcount(w)
		}
		if c == -1 {
			b.Fatal("impossible")
		}
	}
}

func benchmarkUnpack(b *testing.B, density float64, perElement bool) {
	p := benchPacked(b, density)
	dst := New(p.shape...)
	b.SetBytes(int64(p.Len()) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if perElement {
			_ = p.unpackPerElement()
		} else {
			p.UnpackInto(dst)
		}
	}
}

func BenchmarkUnpackWordAtATimeSparse(b *testing.B) { benchmarkUnpack(b, 0.02, false) }
func BenchmarkUnpackWordAtATimeDense(b *testing.B)  { benchmarkUnpack(b, 0.5, false) }
func BenchmarkUnpackPerElementSparse(b *testing.B)  { benchmarkUnpack(b, 0.02, true) }
func BenchmarkUnpackPerElementDense(b *testing.B)   { benchmarkUnpack(b, 0.5, true) }

func BenchmarkPackSpikes(b *testing.B) {
	x := New(1 << 20)
	fillSpikes(x.Data, 1, 0.1)
	b.SetBytes(x.Bytes())
	for i := 0; i < b.N; i++ {
		if _, ok := PackSpikes(x); !ok {
			b.Fatal("must pack")
		}
	}
}

// Guard: the test-local Kernighan reference must agree with the stdlib
// popcount the hot path now uses.
func TestKernighanReferenceAgrees(t *testing.T) {
	for _, w := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0x8000000000000001, 0xDEADBEEF} {
		if kernighanPopcount(w) != bits.OnesCount64(w) {
			t.Fatalf("popcount mismatch on %#x", w)
		}
	}
}
