package tensor

import (
	"fmt"
	"math"
)

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape(), b.Shape()))
	}
}

// Add computes dst = a + b elementwise. dst may alias a or b.
func Add(dst, a, b *Tensor) {
	assertSameShape("Add", a, b)
	assertSameShape("Add", a, dst)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a - b elementwise. dst may alias a or b.
func Sub(dst, a, b *Tensor) {
	assertSameShape("Sub", a, b)
	assertSameShape("Sub", a, dst)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Mul computes dst = a * b elementwise (Hadamard product).
func Mul(dst, a, b *Tensor) {
	assertSameShape("Mul", a, b)
	assertSameShape("Mul", a, dst)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Scale computes dst = s * a elementwise. dst may alias a.
func Scale(dst, a *Tensor, s float32) {
	assertSameShape("Scale", a, dst)
	for i := range dst.Data {
		dst.Data[i] = s * a.Data[i]
	}
}

// AXPY computes dst += alpha * x elementwise.
func AXPY(dst *Tensor, alpha float32, x *Tensor) {
	assertSameShape("AXPY", x, dst)
	for i := range dst.Data {
		dst.Data[i] += alpha * x.Data[i]
	}
}

// Sum returns the sum of all elements.
func Sum(t *Tensor) float32 {
	var s float32
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float32 {
	assertSameShape("Dot", a, b)
	var s float32
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the tensor viewed as a flat vector.
func Norm2(t *Tensor) float32 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// MaxAbs returns the largest absolute element value.
func MaxAbs(t *Tensor) float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// CountNonZero returns the number of elements that are not exactly zero.
// For spike tensors this is the spike count.
func CountNonZero(t *Tensor) int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Clamp limits every element of t to the range [lo, hi] in place.
func Clamp(t *Tensor, lo, hi float32) {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
}

// Apply replaces every element with f(element), in place.
func Apply(t *Tensor, f func(float32) float32) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Copy copies src into dst elementwise.
func Copy(dst, src *Tensor) {
	assertSameShape("Copy", src, dst)
	copy(dst.Data, src.Data)
}

// Mean returns the arithmetic mean of all elements, or 0 for an empty tensor.
func Mean(t *Tensor) float32 {
	if len(t.Data) == 0 {
		return 0
	}
	return Sum(t) / float32(len(t.Data))
}

// AddBias adds a per-channel bias to an NCHW activation tensor:
// dst[n,c,h,w] += bias[c]. dst has shape [N,C,H,W] and bias shape [C].
func AddBias(dst *Tensor, bias *Tensor) {
	sh := dst.Shape()
	if len(sh) != 4 {
		panic(fmt.Sprintf("tensor: AddBias expects rank-4 NCHW, got %v", sh))
	}
	n, c, h, w := sh[0], sh[1], sh[2], sh[3]
	if bias.Len() != c {
		panic(fmt.Sprintf("tensor: AddBias bias length %d != channels %d", bias.Len(), c))
	}
	hw := h * w
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			b := bias.Data[j]
			base := (i*c + j) * hw
			for k := 0; k < hw; k++ {
				dst.Data[base+k] += b
			}
		}
	}
}

// AddRowBias adds bias[j] to every row of a [N,M] matrix: dst[i,j] += bias[j].
func AddRowBias(dst *Tensor, bias *Tensor) {
	sh := dst.Shape()
	if len(sh) != 2 {
		panic(fmt.Sprintf("tensor: AddRowBias expects rank-2, got %v", sh))
	}
	n, m := sh[0], sh[1]
	if bias.Len() != m {
		panic(fmt.Sprintf("tensor: AddRowBias bias length %d != cols %d", bias.Len(), m))
	}
	for i := 0; i < n; i++ {
		base := i * m
		for j := 0; j < m; j++ {
			dst.Data[base+j] += bias.Data[j]
		}
	}
}

// SumPerChannel accumulates an NCHW tensor over N, H, W into dst[c] += sums.
// Used for conv bias gradients.
func SumPerChannel(dst *Tensor, src *Tensor) {
	sh := src.Shape()
	if len(sh) != 4 {
		panic(fmt.Sprintf("tensor: SumPerChannel expects rank-4 NCHW, got %v", sh))
	}
	n, c, h, w := sh[0], sh[1], sh[2], sh[3]
	if dst.Len() != c {
		panic(fmt.Sprintf("tensor: SumPerChannel dst length %d != channels %d", dst.Len(), c))
	}
	hw := h * w
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			base := (i*c + j) * hw
			var s float32
			for k := 0; k < hw; k++ {
				s += src.Data[base+k]
			}
			dst.Data[j] += s
		}
	}
}

// SumPerColumn accumulates a [N,M] matrix over rows into dst[j] += sums.
// Used for linear bias gradients.
func SumPerColumn(dst *Tensor, src *Tensor) {
	sh := src.Shape()
	if len(sh) != 2 {
		panic(fmt.Sprintf("tensor: SumPerColumn expects rank-2, got %v", sh))
	}
	n, m := sh[0], sh[1]
	if dst.Len() != m {
		panic(fmt.Sprintf("tensor: SumPerColumn dst length %d != cols %d", dst.Len(), m))
	}
	for i := 0; i < n; i++ {
		base := i * m
		for j := 0; j < m; j++ {
			dst.Data[j] += src.Data[base+j]
		}
	}
}
