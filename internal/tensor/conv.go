package tensor

import (
	"fmt"

	"skipper/internal/parallel"
)

// ConvSpec describes a 2-D convolution: kernel size, stride, and symmetric
// zero padding. Dilation is fixed at 1, which covers every topology in the
// paper (VGG/ResNet/LeNet/AlexNet families).
type ConvSpec struct {
	InChannels  int
	OutChannels int
	KernelH     int
	KernelW     int
	Stride      int
	Pad         int
}

// OutSize returns the spatial output size for an input of size h×w.
func (s ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*s.Pad-s.KernelH)/s.Stride + 1
	ow = (w+2*s.Pad-s.KernelW)/s.Stride + 1
	return oh, ow
}

// ColBufLen returns the length of the im2col buffer needed for an input of
// spatial size h×w, in float32 elements.
func (s ConvSpec) ColBufLen(h, w int) int {
	oh, ow := s.OutSize(h, w)
	return s.InChannels * s.KernelH * s.KernelW * oh * ow
}

// Im2Col unpacks one image x [C,H,W] into col laid out
// [C*KH*KW, OH*OW] (row-major), honoring stride and padding. col must have
// at least ColBufLen elements; contents are fully overwritten.
func Im2Col(col []float32, x []float32, c, h, w int, s ConvSpec) {
	oh, ow := s.OutSize(h, w)
	ohw := oh * ow
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for kh := 0; kh < s.KernelH; kh++ {
			for kw := 0; kw < s.KernelW; kw++ {
				dst := col[row*ohw : (row+1)*ohw]
				row++
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.Stride + kh - s.Pad
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[i] = 0
							i++
						}
						continue
					}
					rowBase := chBase + iy*w
					ix := kw - s.Pad
					for ox := 0; ox < ow; ox++ {
						if ix >= 0 && ix < w {
							dst[i] = x[rowBase+ix]
						} else {
							dst[i] = 0
						}
						i++
						ix += s.Stride
					}
				}
			}
		}
	}
}

// Col2Im scatters col [C*KH*KW, OH*OW] back into the image gradient
// dx [C,H,W], accumulating overlapping contributions. dx is not zeroed;
// callers zero it when starting a fresh accumulation.
func Col2Im(dx []float32, col []float32, c, h, w int, s ConvSpec) {
	oh, ow := s.OutSize(h, w)
	ohw := oh * ow
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for kh := 0; kh < s.KernelH; kh++ {
			for kw := 0; kw < s.KernelW; kw++ {
				src := col[row*ohw : (row+1)*ohw]
				row++
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.Stride + kh - s.Pad
					if iy < 0 || iy >= h {
						i += ow
						continue
					}
					rowBase := chBase + iy*w
					ix := kw - s.Pad
					for ox := 0; ox < ow; ox++ {
						if ix >= 0 && ix < w {
							dx[rowBase+ix] += src[i]
						}
						i++
						ix += s.Stride
					}
				}
			}
		}
	}
}

// Conv2D computes out = conv(x, weight) + bias for x [N,Cin,H,W],
// weight [Cout,Cin,KH,KW], bias [Cout] (bias may be nil). out must have shape
// [N,Cout,OH,OW]. The batch dimension partitions across pool lanes, each with
// a private im2col column from sc (nil sc allocates a throwaway workspace).
// Every image is processed by exactly the serial per-image code, so the
// output is bit-identical for every pool size.
func Conv2D(p *parallel.Pool, out, x, weight, bias *Tensor, s ConvSpec, sc *Scratch) {
	xs := x.Shape()
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	oh, ow := s.OutSize(h, w)
	checkConvShapes("Conv2D", out, x, weight, s, n, oh, ow)
	k := s.InChannels * s.KernelH * s.KernelW
	ohw := oh * ow
	if sc == nil {
		sc = NewScratch()
	}
	sc.reserve(p.Lanes())
	wMat := weight.Data // [Cout, k] row-major view
	p.Run(n, func(lane, lo, hi int) {
		col := sc.lane(lane, k*ohw)
		for img := lo; img < hi; img++ {
			Im2Col(col, x.Data[img*c*h*w:(img+1)*c*h*w], c, h, w, s)
			dst := out.Data[img*s.OutChannels*ohw : (img+1)*s.OutChannels*ohw]
			for i := range dst {
				dst[i] = 0
			}
			matmulAcc(dst, wMat, col, s.OutChannels, k, ohw)
		}
	})
	if bias != nil {
		AddBias(out, bias)
	}
}

// Conv2DGradInput computes dx = convBackwardInput(dout, weight) for
// dout [N,Cout,OH,OW] and weight [Cout,Cin,KH,KW]. dx must have the input
// shape [N,Cin,H,W] and is fully overwritten. Images partition across lanes
// with per-lane columns, as in Conv2D.
func Conv2DGradInput(p *parallel.Pool, dx, dout, weight *Tensor, s ConvSpec, sc *Scratch) {
	xs := dx.Shape()
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	oh, ow := s.OutSize(h, w)
	checkConvShapes("Conv2DGradInput", dout, dx, weight, s, n, oh, ow)
	k := s.InChannels * s.KernelH * s.KernelW
	ohw := oh * ow
	if sc == nil {
		sc = NewScratch()
	}
	sc.reserve(p.Lanes())
	dx.Zero()
	p.Run(n, func(lane, lo, hi int) {
		col := sc.lane(lane, k*ohw)
		for img := lo; img < hi; img++ {
			// col = Wᵀ · dout[img]  with W [Cout,k], dout[img] [Cout,ohw].
			for i := range col[:k*ohw] {
				col[i] = 0
			}
			dslice := dout.Data[img*s.OutChannels*ohw : (img+1)*s.OutChannels*ohw]
			for co := 0; co < s.OutChannels; co++ {
				wrow := weight.Data[co*k : (co+1)*k]
				drow := dslice[co*ohw : (co+1)*ohw]
				for kk := 0; kk < k; kk++ {
					wv := wrow[kk]
					if wv == 0 {
						continue
					}
					crow := col[kk*ohw : (kk+1)*ohw]
					for j := range drow {
						crow[j] += wv * drow[j]
					}
				}
			}
			Col2Im(dx.Data[img*c*h*w:(img+1)*c*h*w], col, c, h, w, s)
		}
	})
}

// Conv2DGradWeight accumulates dW += convBackwardWeight(dout, x) and, when
// dbias is non-nil, dbias += per-channel sums of dout. x is the forward input
// [N,Cin,H,W]; dout [N,Cout,OH,OW]; dw [Cout,Cin,KH,KW].
//
// Parallelism is over OUTPUT channels, not images: each lane owns a disjoint
// block of dW rows and walks the whole batch in ascending image order with a
// private im2col column, so every dW element accumulates its per-image terms
// in exactly the serial order — no cross-lane partial accumulators, no
// reduction, bit-identical results for every pool size.
func Conv2DGradWeight(p *parallel.Pool, dw, dbias, dout, x *Tensor, s ConvSpec, sc *Scratch) {
	xs := x.Shape()
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	oh, ow := s.OutSize(h, w)
	checkConvShapes("Conv2DGradWeight", dout, x, dw, s, n, oh, ow)
	k := s.InChannels * s.KernelH * s.KernelW
	ohw := oh * ow
	if sc == nil {
		sc = NewScratch()
	}
	sc.reserve(p.Lanes())
	p.Run(s.OutChannels, func(lane, lo, hi int) {
		col := sc.lane(lane, k*ohw)
		for img := 0; img < n; img++ {
			Im2Col(col, x.Data[img*c*h*w:(img+1)*c*h*w], c, h, w, s)
			dslice := dout.Data[img*s.OutChannels*ohw : (img+1)*s.OutChannels*ohw]
			// dW[co,kk] += Σ_j dout[co,j] * col[kk,j]
			for co := lo; co < hi; co++ {
				drow := dslice[co*ohw : (co+1)*ohw]
				wrow := dw.Data[co*k : (co+1)*k]
				for kk := 0; kk < k; kk++ {
					crow := col[kk*ohw : (kk+1)*ohw]
					var sum float32
					for j := range drow {
						sum += drow[j] * crow[j]
					}
					wrow[kk] += sum
				}
			}
		}
	})
	if dbias != nil {
		SumPerChannel(dbias, dout)
	}
}

func checkConvShapes(op string, out, x, weight *Tensor, s ConvSpec, n, oh, ow int) {
	os := out.Shape()
	ws := weight.Shape()
	if len(os) != 4 || os[0] != n || os[1] != s.OutChannels || os[2] != oh || os[3] != ow {
		panic(fmt.Sprintf("tensor: %s output shape %v, want [%d %d %d %d]", op, os, n, s.OutChannels, oh, ow))
	}
	if len(ws) != 4 || ws[0] != s.OutChannels || ws[1] != s.InChannels || ws[2] != s.KernelH || ws[3] != s.KernelW {
		panic(fmt.Sprintf("tensor: %s weight shape %v, want [%d %d %d %d]", op, ws, s.OutChannels, s.InChannels, s.KernelH, s.KernelW))
	}
	if x.Dim(1) != s.InChannels {
		panic(fmt.Sprintf("tensor: %s input channels %d, spec wants %d", op, x.Dim(1), s.InChannels))
	}
}
