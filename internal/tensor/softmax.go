package tensor

import (
	"fmt"
	"math"
)

// Softmax computes row-wise softmax of logits [N,K] into out [N,K].
// out may alias logits.
func Softmax(out, logits *Tensor) {
	ls := logits.Shape()
	if len(ls) != 2 {
		panic(fmt.Sprintf("tensor: Softmax expects rank-2 logits, got %v", ls))
	}
	assertSameShape("Softmax", logits, out)
	n, k := ls[0], ls[1]
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		dst := out.Data[i*k : (i+1)*k]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
}

// CrossEntropy computes the mean cross-entropy loss of logits [N,K] against
// integer labels, and writes dlogits = ∂loss/∂logits = (softmax - onehot)/N
// when dlogits is non-nil. It returns (loss, #correct-argmax-predictions).
func CrossEntropy(logits *Tensor, labels []int, dlogits *Tensor) (loss float64, correct int) {
	return CrossEntropyDenom(logits, labels, dlogits, 0)
}

// CrossEntropyDenom is CrossEntropy with an explicit mean denominator: the
// loss and dlogits are divided by denom instead of the local batch size
// (denom <= 0 keeps the local batch size). Data-parallel shards use the
// global batch size here so that summing shard gradients across replicas
// reproduces the serial full-batch gradient — bitwise, when each shard holds
// a single sample, because every per-sample term then goes through exactly
// the same multiply by the same reciprocal as the serial run.
func CrossEntropyDenom(logits *Tensor, labels []int, dlogits *Tensor, denom int) (loss float64, correct int) {
	ls := logits.Shape()
	if len(ls) != 2 {
		panic(fmt.Sprintf("tensor: CrossEntropy expects rank-2 logits, got %v", ls))
	}
	n, k := ls[0], ls[1]
	if len(labels) != n {
		panic(fmt.Sprintf("tensor: CrossEntropy labels length %d, batch %d", len(labels), n))
	}
	if denom <= 0 {
		denom = n
	}
	probs := New(n, k)
	Softmax(probs, logits)
	invN := 1 / float32(denom)
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("tensor: CrossEntropy label %d out of range [0,%d)", y, k))
		}
		p := probs.Data[i*k+y]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(float64(p))
		// argmax
		best, bestv := 0, logits.Data[i*k]
		for j := 1; j < k; j++ {
			if v := logits.Data[i*k+j]; v > bestv {
				best, bestv = j, v
			}
		}
		if best == y {
			correct++
		}
		if dlogits != nil {
			drow := dlogits.Data[i*k : (i+1)*k]
			prow := probs.Data[i*k : (i+1)*k]
			for j := 0; j < k; j++ {
				g := prow[j]
				if j == y {
					g -= 1
				}
				drow[j] = g * invN
			}
		}
	}
	return loss / float64(denom), correct
}

// Argmax returns the index of the maximum element in each row of a [N,K]
// tensor.
func Argmax(t *Tensor) []int {
	ts := t.Shape()
	if len(ts) != 2 {
		panic(fmt.Sprintf("tensor: Argmax expects rank-2, got %v", ts))
	}
	n, k := ts[0], ts[1]
	out := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestv := 0, t.Data[i*k]
		for j := 1; j < k; j++ {
			if v := t.Data[i*k+j]; v > bestv {
				best, bestv = j, v
			}
		}
		out[i] = best
	}
	return out
}
