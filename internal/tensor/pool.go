package tensor

import "fmt"

// AvgPool2D computes non-overlapping average pooling with window k and
// stride k over x [N,C,H,W] into out [N,C,H/k,W/k]. The paper's evaluated
// topologies use average pooling (standard for SNNs, where max pooling over
// binary spikes loses rate information).
func AvgPool2D(out, x *Tensor, k int) {
	xs := x.Shape()
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	oh, ow := h/k, w/k
	os := out.Shape()
	if len(os) != 4 || os[0] != n || os[1] != c || os[2] != oh || os[3] != ow {
		panic(fmt.Sprintf("tensor: AvgPool2D output shape %v, want [%d %d %d %d]", os, n, c, oh, ow))
	}
	inv := 1 / float32(k*k)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			src := x.Data[(img*c+ch)*h*w:]
			dst := out.Data[(img*c+ch)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					for ky := 0; ky < k; ky++ {
						base := (oy*k+ky)*w + ox*k
						for kx := 0; kx < k; kx++ {
							s += src[base+kx]
						}
					}
					dst[oy*ow+ox] = s * inv
				}
			}
		}
	}
}

// AvgPool2DGrad computes the input gradient of AvgPool2D: each output
// gradient is spread uniformly over its k×k window. dx is fully overwritten.
func AvgPool2DGrad(dx, dout *Tensor, k int) {
	xs := dx.Shape()
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	oh, ow := h/k, w/k
	os := dout.Shape()
	if len(os) != 4 || os[0] != n || os[1] != c || os[2] != oh || os[3] != ow {
		panic(fmt.Sprintf("tensor: AvgPool2DGrad dout shape %v, want [%d %d %d %d]", os, n, c, oh, ow))
	}
	dx.Zero()
	inv := 1 / float32(k*k)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			dst := dx.Data[(img*c+ch)*h*w:]
			src := dout.Data[(img*c+ch)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := src[oy*ow+ox] * inv
					for ky := 0; ky < k; ky++ {
						base := (oy*k+ky)*w + ox*k
						for kx := 0; kx < k; kx++ {
							dst[base+kx] += g
						}
					}
				}
			}
		}
	}
}

// GlobalAvgPool2D averages each channel plane of x [N,C,H,W] into out [N,C].
func GlobalAvgPool2D(out, x *Tensor) {
	xs := x.Shape()
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	os := out.Shape()
	if len(os) != 2 || os[0] != n || os[1] != c {
		panic(fmt.Sprintf("tensor: GlobalAvgPool2D output shape %v, want [%d %d]", os, n, c))
	}
	hw := h * w
	inv := 1 / float32(hw)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			src := x.Data[(img*c+ch)*hw : (img*c+ch+1)*hw]
			var s float32
			for _, v := range src {
				s += v
			}
			out.Data[img*c+ch] = s * inv
		}
	}
}

// GlobalAvgPool2DGrad spreads dout [N,C] uniformly over dx [N,C,H,W].
func GlobalAvgPool2DGrad(dx, dout *Tensor) {
	xs := dx.Shape()
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	hw := h * w
	inv := 1 / float32(hw)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			g := dout.Data[img*c+ch] * inv
			dst := dx.Data[(img*c+ch)*hw : (img*c+ch+1)*hw]
			for i := range dst {
				dst[i] = g
			}
		}
	}
}

// MaxPool2D computes non-overlapping max pooling with window k and stride k
// over x [N,C,H,W] into out [N,C,H/k,W/k], recording the argmax flat index
// of each window into idx (same shape as out) for the backward pass.
// Provided for ANN-style stacks; spiking stacks usually prefer AvgPool2D.
func MaxPool2D(out, x *Tensor, idx []int32, k int) {
	xs := x.Shape()
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	oh, ow := h/k, w/k
	os := out.Shape()
	if len(os) != 4 || os[0] != n || os[1] != c || os[2] != oh || os[3] != ow {
		panic(fmt.Sprintf("tensor: MaxPool2D output shape %v, want [%d %d %d %d]", os, n, c, oh, ow))
	}
	if len(idx) != out.Len() {
		panic(fmt.Sprintf("tensor: MaxPool2D index buffer %d, want %d", len(idx), out.Len()))
	}
	o := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := base + (oy*k)*w + ox*k
					bv := x.Data[best]
					for ky := 0; ky < k; ky++ {
						row := base + (oy*k+ky)*w + ox*k
						for kx := 0; kx < k; kx++ {
							if v := x.Data[row+kx]; v > bv {
								bv, best = v, row+kx
							}
						}
					}
					out.Data[o] = bv
					idx[o] = int32(best)
					o++
				}
			}
		}
	}
}

// MaxPool2DGrad routes each output gradient to its recorded argmax
// position. dx is fully overwritten.
func MaxPool2DGrad(dx, dout *Tensor, idx []int32) {
	if len(idx) != dout.Len() {
		panic(fmt.Sprintf("tensor: MaxPool2DGrad index buffer %d, want %d", len(idx), dout.Len()))
	}
	dx.Zero()
	for o, src := range idx {
		dx.Data[src] += dout.Data[o]
	}
}
