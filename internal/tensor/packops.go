package tensor

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"skipper/internal/parallel"
)

// Packed spike-side matmul kernels. Spike operands are exactly 0/1, so a
// float product a·s degenerates: s = 1 contributes the float unchanged and
// s = 0 contributes a signed zero, which IEEE-754 addition absorbs without
// changing the accumulator (the accumulators here start at +0, and
// +0 + ±0 = +0). The kernels therefore visit only the SET bits, in the same
// ascending index order the dense loops use, which makes every output
// element the bit-identical float sequence of the float kernel — exact, not
// approximate. That is also what makes the event-driven part free: an
// all-zero 64-spike word contributes nothing, so it is skipped after a
// single integer compare, and the skip can never change a result.
//
// All kernels partition OUTPUT rows across pool lanes exactly like their
// float counterparts (see internal/parallel's determinism contract); the
// packed words are read-only and safe to share between lanes.

// Word-occupancy counters for the event-driven skip: how many packed words
// the kernels inspected and how many they skipped as all-zero. They
// accumulate process-wide (one atomic add per kernel lane, not per word)
// and feed the words_skipped trace counter and the bench_spikepack report.
var packWordsScanned, packWordsSkipped atomic.Int64

// PackedKernelStats returns the cumulative packed-kernel word-occupancy
// counters: words inspected and words skipped as all-zero (the event-driven
// fast path). The ratio is the fraction of spike-side inner-loop work the
// sparsity eliminated.
func PackedKernelStats() (scanned, skipped int64) {
	return packWordsScanned.Load(), packWordsSkipped.Load()
}

// ResetPackedKernelStats zeroes the word-occupancy counters.
func ResetPackedKernelStats() {
	packWordsScanned.Store(0)
	packWordsSkipped.Store(0)
}

// addPackStats folds one lane's occupancy tally into the global counters.
func addPackStats(scanned, skipped int) {
	if scanned != 0 {
		packWordsScanned.Add(int64(scanned))
	}
	if skipped != 0 {
		packWordsSkipped.Add(int64(skipped))
	}
}

// appendSetBits appends to buf the positions — relative to bit offset lo —
// of every set bit in the packed range [lo, lo+n), walking whole 64-bit
// words and skipping empty ones. It returns the extended buffer and the
// number of words inspected/skipped. Rows of a packed matrix are bit ranges
// of the flat packed tensor, so lo is not word-aligned in general.
func appendSetBits(buf []int32, words []uint64, lo, n int) ([]int32, int, int) {
	if n <= 0 {
		return buf, 0, 0
	}
	hi := lo + n
	scanned, skipped := 0, 0
	for wi, we := lo>>6, (hi-1)>>6; wi <= we; wi++ {
		w := words[wi]
		base := wi << 6
		if s := lo - base; s > 0 {
			w &= ^uint64(0) << uint(s) // clip the row's leading partial word
		}
		if e := base + 64 - hi; e > 0 {
			w &= ^uint64(0) >> uint(e) // clip the trailing partial word
		}
		scanned++
		if w == 0 {
			skipped++
			continue
		}
		for w != 0 {
			buf = append(buf, int32(base+bits.TrailingZeros64(w)-lo))
			w &= w - 1
		}
	}
	return buf, scanned, skipped
}

// packedDims validates that p holds m×k elements (any original shape).
func packedDims(op string, p *PackedSpikes, m, k int) {
	if p.Len() != m*k {
		panic(fmt.Sprintf("tensor: %s packed operand holds %d elements, want %d×%d", op, p.Len(), m, k))
	}
}

// MatMulPacked computes dst = a × b for a packed spike matrix a [M,K] and a
// float b [K,N]. It is the packed twin of MatMul with a on the spike side:
// per output row, the set bits of a's row select which rows of b are
// gather-accumulated (spike value 1 ⇒ the product is b's row unchanged).
// Bit-identical to MatMul on the unpacked operand at every pool width.
func MatMulPacked(p *parallel.Pool, dst *Tensor, a *PackedSpikes, b *Tensor) {
	bs, ds := b.Shape(), dst.Shape()
	if len(bs) != 2 || len(ds) != 2 {
		panic(fmt.Sprintf("tensor: MatMulPacked expects rank-2 operands, got %v -> %v", bs, ds))
	}
	m, n := ds[0], ds[1]
	k := bs[0]
	if bs[1] != n {
		panic(fmt.Sprintf("tensor: MatMulPacked shape mismatch %v -> %v", bs, ds))
	}
	packedDims("MatMulPacked", a, m, k)
	bd, dd := b.Data, dst.Data
	p.RunGrain(m, grainFor(k*n), func(_, lo, hi int) {
		idx := make([]int32, 0, k)
		scanned, skipped := 0, 0
		for i := lo; i < hi; i++ {
			drow := dd[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
			var ws, wk int
			idx, ws, wk = appendSetBits(idx[:0], a.bits, i*k, k)
			scanned += ws
			skipped += wk
			for _, kk := range idx {
				brow := bd[int(kk)*n : (int(kk)+1)*n]
				for j := range brow {
					drow[j] += brow[j]
				}
			}
		}
		addPackStats(scanned, skipped)
	})
}

// MatMulTransBPacked computes dst = a × bᵀ for a packed spike matrix
// a [M,K] and float b [N,K] — the forward fully-connected path
// u = spikes · Wᵀ with W stored [Out,In]. Each output element (i,j) is the
// gather-accumulate of weight row j at the set-bit positions of spike row i,
// in ascending k order: the bit-identical nonzero subsequence of
// MatMulTransB's dense dot product.
func MatMulTransBPacked(p *parallel.Pool, dst *Tensor, a *PackedSpikes, b *Tensor) {
	bs, ds := b.Shape(), dst.Shape()
	if len(bs) != 2 || len(ds) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransBPacked expects rank-2 operands, got %v^T -> %v", bs, ds))
	}
	m, n := ds[0], ds[1]
	k := bs[1]
	if bs[0] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBPacked shape mismatch %v^T -> %v", bs, ds))
	}
	packedDims("MatMulTransBPacked", a, m, k)
	bd, dd := b.Data, dst.Data
	p.RunGrain(m, grainFor(n*k), func(_, lo, hi int) {
		idx := make([]int32, 0, k)
		scanned, skipped := 0, 0
		for i := lo; i < hi; i++ {
			var ws, wk int
			idx, ws, wk = appendSetBits(idx[:0], a.bits, i*k, k)
			scanned += ws
			skipped += wk
			drow := dd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s float32
				for _, kk := range idx {
					s += brow[kk]
				}
				drow[j] = s
			}
		}
		addPackStats(scanned, skipped)
	})
}

// MatMulTransAPackedAcc computes dst += aᵀ × b for a float a [K,M] and a
// packed spike matrix b [K,N] — the weight-gradient path dW += δᵀ · spikes.
// The loop is i-outer like MatMulTransAAcc, so the M output rows partition
// across lanes; per (i,kk) the set bits of spike row kk receive δ's scalar,
// in ascending j order, reproducing the dense kernel's float sequence
// exactly (its zero-spike terms add signed zeros, which never change an
// accumulator that holds +0 or any nonzero).
func MatMulTransAPackedAcc(p *parallel.Pool, dst, a *Tensor, b *PackedSpikes) {
	as, ds := a.Shape(), dst.Shape()
	if len(as) != 2 || len(ds) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransAPackedAcc expects rank-2 operands, got %v^T -> %v", as, ds))
	}
	k, m := as[0], as[1]
	n := ds[1]
	if ds[0] != m {
		panic(fmt.Sprintf("tensor: MatMulTransAPackedAcc shape mismatch %v^T -> %v", as, ds))
	}
	packedDims("MatMulTransAPackedAcc", b, k, n)
	// The set-bit positions of each spike row are reused by every output
	// row, so gather them once up front instead of M times: offs[kk] ..
	// offs[kk+1] indexes row kk's columns inside idx. Pure integer work —
	// deterministic regardless of how it is scheduled.
	offs := make([]int32, k+1)
	idx := make([]int32, 0, b.Count())
	scanned, skipped := 0, 0
	for kk := 0; kk < k; kk++ {
		var ws, wk int
		idx, ws, wk = appendSetBits(idx, b.bits, kk*n, n)
		scanned += ws
		skipped += wk
		offs[kk+1] = int32(len(idx))
	}
	addPackStats(scanned, skipped)
	ad, dd := a.Data, dst.Data
	p.RunGrain(m, grainFor(k*n), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n : (i+1)*n]
			for kk := 0; kk < k; kk++ {
				av := ad[kk*m+i]
				if av == 0 {
					continue
				}
				for _, j := range idx[offs[kk]:offs[kk+1]] {
					drow[j] += av
				}
			}
		}
	})
}

// MatMulTransAPacked is MatMulTransAPackedAcc into a zeroed dst.
func MatMulTransAPacked(p *parallel.Pool, dst, a *Tensor, b *PackedSpikes) {
	dst.Zero()
	MatMulTransAPackedAcc(p, dst, a, b)
}
