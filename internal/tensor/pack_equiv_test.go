package tensor

import (
	"testing"

	"skipper/internal/parallel"
)

// fillSpikes fills d with a deterministic 0/1 pattern at roughly the given
// spike density (xorshift, no time or math/rand dependency).
func fillSpikes(d []float32, seed uint64, density float64) {
	s := seed*0x9E3779B97F4A7C15 + 1
	thr := uint64(density * float64(1<<32))
	for i := range d {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if s&0xFFFFFFFF < thr {
			d[i] = 1
		} else {
			d[i] = 0
		}
	}
}

func fillFloats(d []float32, seed uint64) {
	s := seed*0x9E3779B97F4A7C15 + 1
	for i := range d {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		d[i] = float32(s%2048)/1024 - 1
	}
}

func mustPack(t *testing.T, x *Tensor) *PackedSpikes {
	t.Helper()
	p, ok := PackSpikes(x)
	if !ok {
		t.Fatal("binary tensor must pack")
	}
	return p
}

// densities covers the regimes the event-driven skip must be exact in:
// empty, sparse late-timestep, mid, dense, and all-one tensors.
var densities = []float64{0, 0.02, 0.1, 0.5, 1}

// withPools runs fn under serial and 2/4-lane pools; combined with -race in
// verify.sh this is the packed kernels' determinism property test.
func withPools(t *testing.T, fn func(t *testing.T, p *parallel.Pool)) {
	t.Helper()
	fn(t, nil)
	for _, lanes := range []int{2, 4} {
		p := parallel.NewPool(lanes)
		fn(t, p)
		p.Close()
	}
}

func TestMatMulPackedBitIdentical(t *testing.T) {
	const m, k, n = 17, 131, 23
	for di, density := range densities {
		a := New(m, k)
		b := New(k, n)
		fillSpikes(a.Data, uint64(di+1), density)
		fillFloats(b.Data, uint64(di+100))
		ap := mustPack(t, a)
		want := New(m, n)
		MatMul(nil, want, a, b)
		withPools(t, func(t *testing.T, p *parallel.Pool) {
			got := New(m, n)
			got.Fill(42) // packed kernel must fully overwrite
			MatMulPacked(p, got, ap, b)
			requireBitEqual(t, "MatMulPacked", want, got)
		})
	}
}

func TestMatMulTransBPackedBitIdentical(t *testing.T) {
	const m, k, n = 9, 187, 31
	for di, density := range densities {
		a := New(m, k)
		b := New(n, k)
		fillSpikes(a.Data, uint64(di+3), density)
		fillFloats(b.Data, uint64(di+200))
		ap := mustPack(t, a)
		want := New(m, n)
		MatMulTransB(nil, want, a, b)
		withPools(t, func(t *testing.T, p *parallel.Pool) {
			got := New(m, n)
			got.Fill(-7)
			MatMulTransBPacked(p, got, ap, b)
			requireBitEqual(t, "MatMulTransBPacked", want, got)
		})
	}
}

func TestMatMulTransAPackedBitIdentical(t *testing.T) {
	const k, m, n = 13, 21, 149
	for di, density := range densities {
		a := New(k, m)
		b := New(k, n)
		fillFloats(a.Data, uint64(di+300))
		fillSpikes(b.Data, uint64(di+7), density)
		bp := mustPack(t, b)
		// Accumulate on top of a shared nonzero base, as the gradient path
		// does across micro-batches.
		base := New(m, n)
		fillFloats(base.Data, uint64(di+400))
		want := base.Clone()
		MatMulTransAAcc(nil, want, a, b)
		withPools(t, func(t *testing.T, p *parallel.Pool) {
			got := base.Clone()
			MatMulTransAPackedAcc(p, got, a, bp)
			requireBitEqual(t, "MatMulTransAPackedAcc", want, got)
		})
	}
}

func TestConv2DPackedBitIdentical(t *testing.T) {
	const nImg, c, h, w = 5, 3, 11, 9
	spec := ConvSpec{InChannels: c, OutChannels: 7, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1}
	oh, ow := spec.OutSize(h, w)
	for di, density := range densities {
		x := New(nImg, c, h, w)
		fillSpikes(x.Data, uint64(di+11), density)
		xp := mustPack(t, x)
		weight := New(spec.OutChannels, c, 3, 3)
		bias := New(spec.OutChannels)
		fillFloats(weight.Data, uint64(di+500))
		fillFloats(bias.Data, uint64(di+600))
		want := New(nImg, spec.OutChannels, oh, ow)
		Conv2D(nil, want, x, weight, bias, spec, nil)
		withPools(t, func(t *testing.T, p *parallel.Pool) {
			got := New(nImg, spec.OutChannels, oh, ow)
			got.Fill(3)
			Conv2DPacked(p, got, xp, weight, bias, spec, NewScratch())
			requireBitEqual(t, "Conv2DPacked", want, got)
		})
	}
}

func TestConv2DPackedStride2NoPad(t *testing.T) {
	const nImg, c, h, w = 3, 2, 12, 10
	spec := ConvSpec{InChannels: c, OutChannels: 4, KernelH: 3, KernelW: 3, Stride: 2, Pad: 0}
	oh, ow := spec.OutSize(h, w)
	x := New(nImg, c, h, w)
	fillSpikes(x.Data, 77, 0.3)
	xp := mustPack(t, x)
	weight := New(spec.OutChannels, c, 3, 3)
	fillFloats(weight.Data, 88)
	want := New(nImg, spec.OutChannels, oh, ow)
	Conv2D(nil, want, x, weight, nil, spec, nil)
	withPools(t, func(t *testing.T, p *parallel.Pool) {
		got := New(nImg, spec.OutChannels, oh, ow)
		Conv2DPacked(p, got, xp, weight, nil, spec, NewScratch())
		requireBitEqual(t, "Conv2DPacked/stride2", want, got)
	})
}

func TestConv2DGradWeightPackedBitIdentical(t *testing.T) {
	const nImg, c, h, w = 4, 3, 8, 8
	spec := ConvSpec{InChannels: c, OutChannels: 6, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1}
	oh, ow := spec.OutSize(h, w)
	for di, density := range densities {
		x := New(nImg, c, h, w)
		fillSpikes(x.Data, uint64(di+13), density)
		xp := mustPack(t, x)
		dout := New(nImg, spec.OutChannels, oh, ow)
		fillFloats(dout.Data, uint64(di+700))
		baseW := New(spec.OutChannels, c, 3, 3)
		baseB := New(spec.OutChannels)
		fillFloats(baseW.Data, uint64(di+800))
		fillFloats(baseB.Data, uint64(di+900))
		wantW, wantB := baseW.Clone(), baseB.Clone()
		Conv2DGradWeight(nil, wantW, wantB, dout, x, spec, nil)
		withPools(t, func(t *testing.T, p *parallel.Pool) {
			gotW, gotB := baseW.Clone(), baseB.Clone()
			Conv2DGradWeightPacked(p, gotW, gotB, dout, xp, spec, NewScratch())
			requireBitEqual(t, "Conv2DGradWeightPacked/dw", wantW, gotW)
			requireBitEqual(t, "Conv2DGradWeightPacked/dbias", wantB, gotB)
		})
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for di, density := range densities {
		x := New(3, 67) // 201 elements: exercises the partial trailing word
		fillSpikes(x.Data, uint64(di+17), density)
		p := mustPack(t, x)
		back := p.Unpack()
		requireBitEqual(t, "Unpack", x, back)
		count := 0
		for i, v := range x.Data {
			if p.Bit(i) != (v == 1) {
				t.Fatalf("Bit(%d) = %v, element is %v", i, p.Bit(i), v)
			}
			if v == 1 {
				count++
			}
		}
		if p.Count() != count {
			t.Fatalf("Count = %d, want %d", p.Count(), count)
		}
		if want := int64((x.Len() + 63) / 64 * 8); p.Bytes() != want {
			t.Fatalf("Bytes = %d, want %d", p.Bytes(), want)
		}
	}
}

// The binarity probe runs on every checkpoint record's membrane tensors; a
// rejected tensor must not cost an allocation (it used to allocate the full
// bit buffer before scanning).
func TestPackSpikesRejectionAllocFree(t *testing.T) {
	x := New(4096)
	fillFloats(x.Data, 9)
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := PackSpikes(x); ok {
			t.Fatal("unexpected pack")
		}
	})
	if allocs != 0 {
		t.Fatalf("rejecting PackSpikes allocated %.1f times per op, want 0", allocs)
	}
}

func TestPackedKernelStatsCountSkips(t *testing.T) {
	ResetPackedKernelStats()
	const m, k, n = 4, 256, 8
	a := New(m, k) // all zero: every word skipped
	ap := mustPack(t, a)
	b := New(k, n)
	fillFloats(b.Data, 3)
	dst := New(m, n)
	MatMulPacked(nil, dst, ap, b)
	scanned, skipped := PackedKernelStats()
	if want := int64(m * k / 64); scanned != want || skipped != want {
		t.Fatalf("stats = (%d scanned, %d skipped), want (%d, %d)", scanned, skipped, want, want)
	}
	for _, v := range dst.Data {
		if v != 0 {
			t.Fatal("all-zero spikes must produce a zero product")
		}
	}
}
