package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64).
// Every stochastic component in the framework (weight init, Poisson
// encoding, dropout masks, dataset synthesis) draws from an RNG derived from
// a named seed, which makes checkpoint recomputation bit-identical and every
// experiment reproducible.
type RNG struct {
	state uint64
	// cached spare normal deviate for Box-Muller
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Derive returns a new independent generator keyed by (r's seed, stream...).
// It does not perturb r's own sequence.
func (r *RNG) Derive(stream ...uint64) *RNG {
	s := r.state
	for _, v := range stream {
		s = splitmix(s ^ (v * 0x9E3779B97F4A7C15))
	}
	return &RNG{state: s}
}

// DeriveSeed mixes a base seed with a stream of identifiers into a new seed.
func DeriveSeed(base uint64, stream ...uint64) uint64 {
	s := base
	for _, v := range stream {
		s = splitmix(s ^ (v * 0x9E3779B97F4A7C15))
	}
	return s
}

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal deviate (Box-Muller with caching).
func (r *RNG) Norm() float32 {
	if r.hasSpare {
		r.hasSpare = false
		return float32(r.spare)
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return float32(u * f)
}

// Bernoulli returns 1 with probability p and 0 otherwise.
func (r *RNG) Bernoulli(p float32) float32 {
	if r.Float32() < p {
		return 1
	}
	return 0
}

// FillUniform fills t with uniform values in [lo, hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float32) {
	d := hi - lo
	for i := range t.Data {
		t.Data[i] = lo + d*r.Float32()
	}
}

// FillNorm fills t with N(mean, std²) deviates.
func (r *RNG) FillNorm(t *Tensor, mean, std float32) {
	for i := range t.Data {
		t.Data[i] = mean + std*r.Norm()
	}
}

// KaimingConv initialises a conv weight tensor [Cout,Cin,KH,KW] with the
// Kaiming-uniform fan-in rule used by the reference PyTorch implementation.
func (r *RNG) KaimingConv(w *Tensor) {
	s := w.Shape()
	fanIn := s[1] * s[2] * s[3]
	bound := float32(math.Sqrt(6.0 / float64(fanIn)))
	r.FillUniform(w, -bound, bound)
}

// KaimingLinear initialises a linear weight tensor [Out,In] with the
// Kaiming-uniform fan-in rule.
func (r *RNG) KaimingLinear(w *Tensor) {
	fanIn := w.Dim(1)
	bound := float32(math.Sqrt(6.0 / float64(fanIn)))
	r.FillUniform(w, -bound, bound)
}
