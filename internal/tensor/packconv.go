package tensor

import (
	"fmt"
	"math/bits"

	"skipper/internal/parallel"
)

// Packed im2col convolution. The spike input stays in its bit-packed form:
// Im2ColPacked lowers one image into a bit-packed column matrix (one bit
// per column element, rows padded to word boundaries), and the matmul
// against the float weights walks only the set bits of each column row —
// skipping all-zero 64-pixel words outright. Per output element the float
// terms visited are the ascending-order nonzero subsequence of the dense
// im2col matmul, so results are bit-identical to Conv2D / Conv2DGradWeight
// on the unpacked input (spike values are exactly 0/1; see packops.go).

// colWords returns the 64-bit words per packed column row for a spatial
// output of ohw pixels.
func colWords(ohw int) int { return (ohw + 63) / 64 }

// Im2ColPacked lowers image img of the packed input x [N,C,H,W] into the
// bit-packed column matrix col: k = C·KH·KW rows of colWords(OH·OW) words
// each, fully overwritten. Padding regions are zero bits, exactly like the
// zeros dense Im2Col writes.
func Im2ColPacked(col []uint64, x *PackedSpikes, img, c, h, w int, s ConvSpec) {
	oh, ow := s.OutSize(h, w)
	wpr := colWords(oh * ow)
	for i := range col {
		col[i] = 0
	}
	imgBase := img * c * h * w
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := imgBase + ch*h*w
		for kh := 0; kh < s.KernelH; kh++ {
			for kw := 0; kw < s.KernelW; kw++ {
				dst := col[row*wpr : (row+1)*wpr]
				row++
				j := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.Stride + kh - s.Pad
					if iy < 0 || iy >= h {
						j += ow
						continue
					}
					rowBase := chBase + iy*w
					ix := kw - s.Pad
					for ox := 0; ox < ow; ox++ {
						if ix >= 0 && ix < w && x.Bit(rowBase+ix) {
							dst[j>>6] |= 1 << uint(j&63)
						}
						j++
						ix += s.Stride
					}
				}
			}
		}
	}
}

// checkPackedConvShapes validates the packed input against the spec and the
// float operands (out/dout and weight shapes are checked by the dense
// helper's logic, replicated here for the packed x).
func checkPackedConvShapes(op string, x *PackedSpikes, s ConvSpec) (n, c, h, w int) {
	xs := x.Shape()
	if len(xs) != 4 {
		panic(fmt.Sprintf("tensor: %s packed input shape %v, want [N,C,H,W]", op, xs))
	}
	n, c, h, w = xs[0], xs[1], xs[2], xs[3]
	if c != s.InChannels {
		panic(fmt.Sprintf("tensor: %s input channels %d, spec wants %d", op, c, s.InChannels))
	}
	return n, c, h, w
}

// Conv2DPacked computes out = conv(x, weight) + bias for a packed spike
// input x [N,Cin,H,W] — the packed twin of Conv2D. The batch dimension
// partitions across pool lanes, each with a private packed column from sc
// (nil sc allocates a throwaway workspace); results are bit-identical to
// Conv2D on the unpacked input at every pool width.
func Conv2DPacked(p *parallel.Pool, out *Tensor, x *PackedSpikes, weight, bias *Tensor, s ConvSpec, sc *Scratch) {
	n, c, h, w := checkPackedConvShapes("Conv2DPacked", x, s)
	oh, ow := s.OutSize(h, w)
	os := out.Shape()
	if len(os) != 4 || os[0] != n || os[1] != s.OutChannels || os[2] != oh || os[3] != ow {
		panic(fmt.Sprintf("tensor: Conv2DPacked output shape %v, want [%d %d %d %d]", os, n, s.OutChannels, oh, ow))
	}
	k := s.InChannels * s.KernelH * s.KernelW
	ohw := oh * ow
	wpr := colWords(ohw)
	if sc == nil {
		sc = NewScratch()
	}
	sc.reserve(p.Lanes())
	wMat := weight.Data // [Cout, k] row-major view
	p.Run(n, func(lane, lo, hi int) {
		col := sc.laneWords(lane, k*wpr)
		scanned, skipped := 0, 0
		for img := lo; img < hi; img++ {
			Im2ColPacked(col, x, img, c, h, w, s)
			dst := out.Data[img*s.OutChannels*ohw : (img+1)*s.OutChannels*ohw]
			for i := range dst {
				dst[i] = 0
			}
			for co := 0; co < s.OutChannels; co++ {
				wrow := wMat[co*k : (co+1)*k]
				drow := dst[co*ohw : (co+1)*ohw]
				for kk := 0; kk < k; kk++ {
					wv := wrow[kk]
					if wv == 0 {
						// The dense kernel skips zero weights too, so the
						// occupancy counters must not see these rows.
						continue
					}
					crow := col[kk*wpr : (kk+1)*wpr]
					scanned += wpr
					for wi, cw := range crow {
						if cw == 0 {
							skipped++
							continue
						}
						base := wi << 6
						for cw != 0 {
							drow[base+bits.TrailingZeros64(cw)] += wv
							cw &= cw - 1
						}
					}
				}
			}
		}
		addPackStats(scanned, skipped)
	})
	if bias != nil {
		AddBias(out, bias)
	}
}

// Conv2DGradWeightPacked accumulates dW += convBackwardWeight(dout, x) and,
// when dbias is non-nil, dbias += per-channel sums of dout, with the
// forward input x in packed form — the packed twin of Conv2DGradWeight.
// Parallelism is over output channels with a private packed column per
// lane, preserving the dense kernel's per-element accumulation order.
func Conv2DGradWeightPacked(p *parallel.Pool, dw, dbias, dout *Tensor, x *PackedSpikes, s ConvSpec, sc *Scratch) {
	n, c, h, w := checkPackedConvShapes("Conv2DGradWeightPacked", x, s)
	oh, ow := s.OutSize(h, w)
	ds := dout.Shape()
	if len(ds) != 4 || ds[0] != n || ds[1] != s.OutChannels || ds[2] != oh || ds[3] != ow {
		panic(fmt.Sprintf("tensor: Conv2DGradWeightPacked dout shape %v, want [%d %d %d %d]", ds, n, s.OutChannels, oh, ow))
	}
	k := s.InChannels * s.KernelH * s.KernelW
	ohw := oh * ow
	wpr := colWords(ohw)
	if sc == nil {
		sc = NewScratch()
	}
	sc.reserve(p.Lanes())
	p.Run(s.OutChannels, func(lane, lo, hi int) {
		col := sc.laneWords(lane, k*wpr)
		scanned, skipped := 0, 0
		for img := 0; img < n; img++ {
			Im2ColPacked(col, x, img, c, h, w, s)
			dslice := dout.Data[img*s.OutChannels*ohw : (img+1)*s.OutChannels*ohw]
			// dW[co,kk] += Σ_{j∈spikes(col row kk)} dout[co,j]
			for co := lo; co < hi; co++ {
				drow := dslice[co*ohw : (co+1)*ohw]
				wrow := dw.Data[co*k : (co+1)*k]
				for kk := 0; kk < k; kk++ {
					crow := col[kk*wpr : (kk+1)*wpr]
					scanned += wpr
					var sum float32
					for wi, cw := range crow {
						if cw == 0 {
							skipped++
							continue
						}
						base := wi << 6
						for cw != 0 {
							sum += drow[base+bits.TrailingZeros64(cw)]
							cw &= cw - 1
						}
					}
					wrow[kk] += sum
				}
			}
		}
		addPackStats(scanned, skipped)
	})
	if dbias != nil {
		SumPerChannel(dbias, dout)
	}
}
