package tensor

import (
	"math"
	"testing"
)

// convNaive is an independent direct-convolution reference.
func convNaive(x, w, bias *Tensor, s ConvSpec) *Tensor {
	xs := x.Shape()
	n, _, h, wd := xs[0], xs[1], xs[2], xs[3]
	oh, ow := s.OutSize(h, wd)
	out := New(n, s.OutChannels, oh, ow)
	for img := 0; img < n; img++ {
		for co := 0; co < s.OutChannels; co++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					for ci := 0; ci < s.InChannels; ci++ {
						for ky := 0; ky < s.KernelH; ky++ {
							for kx := 0; kx < s.KernelW; kx++ {
								iy := oy*s.Stride + ky - s.Pad
								ix := ox*s.Stride + kx - s.Pad
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								acc += x.At(img, ci, iy, ix) * w.At(co, ci, ky, kx)
							}
						}
					}
					if bias != nil {
						acc += bias.Data[co]
					}
					out.Set(acc, img, co, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	r := NewRNG(31)
	cases := []ConvSpec{
		{InChannels: 1, OutChannels: 1, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1},
		{InChannels: 3, OutChannels: 4, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1},
		{InChannels: 2, OutChannels: 3, KernelH: 3, KernelW: 3, Stride: 2, Pad: 1},
		{InChannels: 2, OutChannels: 2, KernelH: 1, KernelW: 1, Stride: 1, Pad: 0},
		{InChannels: 1, OutChannels: 2, KernelH: 5, KernelW: 5, Stride: 1, Pad: 2},
	}
	for ci, s := range cases {
		h, w := 6, 7
		x := New(2, s.InChannels, h, w)
		wt := New(s.OutChannels, s.InChannels, s.KernelH, s.KernelW)
		bias := New(s.OutChannels)
		r.FillNorm(x, 0, 1)
		r.FillNorm(wt, 0, 1)
		r.FillNorm(bias, 0, 1)
		oh, ow := s.OutSize(h, w)
		got := New(2, s.OutChannels, oh, ow)
		Conv2D(nil, got, x, wt, bias, s, nil)
		want := convNaive(x, wt, bias, s)
		for i := range got.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-3 {
				t.Fatalf("case %d: Conv2D[%d] = %v, want %v", ci, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// Col2Im must be the exact adjoint of Im2Col:
	// <Im2Col(x), c> == <x, Col2Im(c)> for all x, c.
	r := NewRNG(37)
	s := ConvSpec{InChannels: 2, OutChannels: 1, KernelH: 3, KernelW: 3, Stride: 2, Pad: 1}
	c, h, w := 2, 5, 6
	x := New(c, h, w)
	r.FillNorm(x, 0, 1)
	n := s.ColBufLen(h, w)
	colX := make([]float32, n)
	Im2Col(colX, x.Data, c, h, w, s)
	cvec := New(n)
	r.FillNorm(cvec, 0, 1)
	var lhs float64
	for i := range colX {
		lhs += float64(colX[i]) * float64(cvec.Data[i])
	}
	back := New(c, h, w)
	Col2Im(back.Data, cvec.Data, c, h, w, s)
	var rhs float64
	for i := range x.Data {
		rhs += float64(x.Data[i]) * float64(back.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

// convLoss is a scalar function of conv output for gradient checking.
func convLoss(x, wt, bias *Tensor, s ConvSpec, probe *Tensor) float64 {
	xs := x.Shape()
	oh, ow := s.OutSize(xs[2], xs[3])
	out := New(xs[0], s.OutChannels, oh, ow)
	Conv2D(nil, out, x, wt, bias, s, nil)
	var l float64
	for i := range out.Data {
		l += float64(out.Data[i]) * float64(probe.Data[i])
	}
	return l
}

func TestConv2DGradInputFiniteDiff(t *testing.T) {
	r := NewRNG(41)
	s := ConvSpec{InChannels: 2, OutChannels: 3, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1}
	x := New(1, 2, 4, 4)
	wt := New(3, 2, 3, 3)
	bias := New(3)
	r.FillNorm(x, 0, 1)
	r.FillNorm(wt, 0, 0.5)
	oh, ow := s.OutSize(4, 4)
	probe := New(1, 3, oh, ow)
	r.FillNorm(probe, 0, 1)

	dx := New(1, 2, 4, 4)
	Conv2DGradInput(nil, dx, probe, wt, s, nil)

	eps := float32(1e-2)
	for i := 0; i < x.Len(); i += 3 { // sample every third element
		old := x.Data[i]
		x.Data[i] = old + eps
		lp := convLoss(x, wt, bias, s, probe)
		x.Data[i] = old - eps
		lm := convLoss(x, wt, bias, s, probe)
		x.Data[i] = old
		fd := (lp - lm) / (2 * float64(eps))
		if math.Abs(fd-float64(dx.Data[i])) > 2e-2 {
			t.Fatalf("grad-input[%d] = %v, finite-diff %v", i, dx.Data[i], fd)
		}
	}
}

func TestConv2DGradWeightFiniteDiff(t *testing.T) {
	r := NewRNG(43)
	s := ConvSpec{InChannels: 2, OutChannels: 2, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1}
	x := New(2, 2, 4, 4)
	wt := New(2, 2, 3, 3)
	bias := New(2)
	r.FillNorm(x, 0, 1)
	r.FillNorm(wt, 0, 0.5)
	oh, ow := s.OutSize(4, 4)
	probe := New(2, 2, oh, ow)
	r.FillNorm(probe, 0, 1)

	dw := New(2, 2, 3, 3)
	db := New(2)
	Conv2DGradWeight(nil, dw, db, probe, x, s, nil)

	eps := float32(1e-2)
	for i := 0; i < wt.Len(); i++ {
		old := wt.Data[i]
		wt.Data[i] = old + eps
		lp := convLoss(x, wt, bias, s, probe)
		wt.Data[i] = old - eps
		lm := convLoss(x, wt, bias, s, probe)
		wt.Data[i] = old
		fd := (lp - lm) / (2 * float64(eps))
		if math.Abs(fd-float64(dw.Data[i])) > 3e-2 {
			t.Fatalf("grad-weight[%d] = %v, finite-diff %v", i, dw.Data[i], fd)
		}
	}
	// bias gradient: d(loss)/d(bias_c) = sum of probe over channel c
	for cch := 0; cch < 2; cch++ {
		var want float32
		for img := 0; img < 2; img++ {
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					want += probe.At(img, cch, y, xx)
				}
			}
		}
		if math.Abs(float64(db.Data[cch]-want)) > 1e-3 {
			t.Fatalf("grad-bias[%d] = %v, want %v", cch, db.Data[cch], want)
		}
	}
}

func TestConv2DGradWeightAccumulates(t *testing.T) {
	s := ConvSpec{InChannels: 1, OutChannels: 1, KernelH: 1, KernelW: 1, Stride: 1, Pad: 0}
	x := FromSlice([]float32{2}, 1, 1, 1, 1)
	dout := FromSlice([]float32{3}, 1, 1, 1, 1)
	dw := FromSlice([]float32{10}, 1, 1, 1, 1)
	Conv2DGradWeight(nil, dw, nil, dout, x, s, nil)
	if dw.Data[0] != 16 {
		t.Fatalf("grad-weight should accumulate: got %v, want 16", dw.Data[0])
	}
}

func TestConvOutSize(t *testing.T) {
	s := ConvSpec{KernelH: 3, KernelW: 3, Stride: 2, Pad: 1}
	oh, ow := s.OutSize(8, 8)
	if oh != 4 || ow != 4 {
		t.Fatalf("OutSize = %d,%d, want 4,4", oh, ow)
	}
	s2 := ConvSpec{KernelH: 3, KernelW: 3, Stride: 1, Pad: 1}
	oh, ow = s2.OutSize(8, 8)
	if oh != 8 || ow != 8 {
		t.Fatalf("same-pad OutSize = %d,%d, want 8,8", oh, ow)
	}
}

func TestAvgPool2DAndGrad(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := New(1, 1, 2, 2)
	AvgPool2D(out, x, 2)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("AvgPool2D = %v, want %v", out.Data, want)
		}
	}
	dout := FromSlice([]float32{4, 8, 12, 16}, 1, 1, 2, 2)
	dx := New(1, 1, 4, 4)
	AvgPool2DGrad(dx, dout, 2)
	if dx.At(0, 0, 0, 0) != 1 || dx.At(0, 0, 1, 1) != 1 {
		t.Fatalf("AvgPool2DGrad top-left window = %v", dx.Data[:8])
	}
	if dx.At(0, 0, 3, 3) != 4 {
		t.Fatalf("AvgPool2DGrad bottom-right = %v", dx.At(0, 0, 3, 3))
	}
}

func TestAvgPoolGradIsAdjoint(t *testing.T) {
	// <AvgPool(x), g> == <x, AvgPoolGrad(g)>
	r := NewRNG(47)
	x := New(2, 3, 6, 6)
	r.FillNorm(x, 0, 1)
	out := New(2, 3, 3, 3)
	AvgPool2D(out, x, 2)
	g := New(2, 3, 3, 3)
	r.FillNorm(g, 0, 1)
	lhs := float64(Dot(out, g))
	dx := New(2, 3, 6, 6)
	AvgPool2DGrad(dx, g, 2)
	rhs := float64(Dot(x, dx))
	if math.Abs(lhs-rhs) > 1e-3 {
		t.Fatalf("avgpool adjoint violated: %v vs %v", lhs, rhs)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := New(1, 2, 2, 2)
	x.Fill(2)
	for i := 4; i < 8; i++ {
		x.Data[i] = 4
	}
	out := New(1, 2)
	GlobalAvgPool2D(out, x)
	if out.Data[0] != 2 || out.Data[1] != 4 {
		t.Fatalf("GlobalAvgPool2D = %v", out.Data)
	}
	dout := FromSlice([]float32{8, 16}, 1, 2)
	dx := New(1, 2, 2, 2)
	GlobalAvgPool2DGrad(dx, dout)
	if dx.Data[0] != 2 || dx.Data[7] != 4 {
		t.Fatalf("GlobalAvgPool2DGrad = %v", dx.Data)
	}
}

func TestMaxPool2DAndGrad(t *testing.T) {
	x := FromSlice([]float32{
		1, 5, 2, 0,
		3, 4, 1, 7,
		0, 0, 9, 1,
		2, 8, 3, 4,
	}, 1, 1, 4, 4)
	out := New(1, 1, 2, 2)
	idx := make([]int32, 4)
	MaxPool2D(out, x, idx, 2)
	want := []float32{5, 7, 8, 9}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("MaxPool2D = %v, want %v", out.Data, want)
		}
	}
	dout := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := New(1, 1, 4, 4)
	MaxPool2DGrad(dx, dout, idx)
	// Gradients land exactly at the argmax positions.
	if dx.At(0, 0, 0, 1) != 1 || dx.At(0, 0, 1, 3) != 2 || dx.At(0, 0, 3, 1) != 3 || dx.At(0, 0, 2, 2) != 4 {
		t.Fatalf("MaxPool2DGrad = %v", dx.Data)
	}
	if got := Sum(dx); got != 10 {
		t.Fatalf("gradient mass %v, want 10", got)
	}
}

func TestMaxPoolGradIsAdjoint(t *testing.T) {
	// <MaxPool(x+εd) - MaxPool(x), g>/ε ≈ <d, MaxPoolGrad(g)> away from ties;
	// verify the exact adjoint identity through the recorded indices.
	r := NewRNG(53)
	x := New(2, 3, 6, 6)
	r.FillNorm(x, 0, 1)
	out := New(2, 3, 3, 3)
	idx := make([]int32, out.Len())
	MaxPool2D(out, x, idx, 2)
	g := New(2, 3, 3, 3)
	r.FillNorm(g, 0, 1)
	dx := New(2, 3, 6, 6)
	MaxPool2DGrad(dx, g, idx)
	// The adjoint of a selection operator satisfies <S(x), g> == <x, Sᵀ(g)>
	// when S is treated as linear at the recorded selection.
	lhs := float64(Dot(out, g))
	var rhs float64
	for o, src := range idx {
		rhs += float64(x.Data[src]) * float64(g.Data[o])
	}
	_ = dx
	if math.Abs(lhs-rhs) > 1e-4 {
		t.Fatalf("selection adjoint violated: %v vs %v", lhs, rhs)
	}
}
