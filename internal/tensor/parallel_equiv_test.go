package tensor

import (
	"fmt"
	"testing"

	"skipper/internal/parallel"
)

// The parallel runtime's central contract: every kernel partitions output
// elements with lane-independent arithmetic, so a pooled run is bit-identical
// to the serial one for every pool size and every shape — including shapes
// smaller than the lane count, shapes below the work-floor grain, and inputs
// dense with the zeros the matmul kernels skip.

// equivFill writes a deterministic pseudo-random pattern with a sprinkling
// of exact zeros, exercising the zero-skip fast paths identically in both
// runs.
func equivFill(d []float32, seed uint64) {
	s := seed*0x9E3779B97F4A7C15 + 1
	for i := range d {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if s%5 == 0 {
			d[i] = 0
			continue
		}
		d[i] = float32(s%2048)/1024 - 1
	}
}

func requireBitEqual(t *testing.T, name string, serial, pooled *Tensor) {
	t.Helper()
	for i, v := range serial.Data {
		if v != pooled.Data[i] {
			t.Fatalf("%s: element %d differs: serial %v, pooled %v", name, i, v, pooled.Data[i])
		}
	}
}

// matmulShapes spans tiny (fewer rows than lanes), odd, and grain-crossing
// sizes.
var matmulShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{2, 3, 5},
	{3, 1, 7},
	{7, 16, 9},
	{16, 16, 16},
	{33, 17, 29},
	{64, 128, 48}, // crosses the minLaneWork grain on multi-lane pools
}

func TestMatMulFamilyBitIdenticalAcrossPoolSizes(t *testing.T) {
	for _, lanes := range []int{2, 3, 4, 7} {
		pool := parallel.NewPool(lanes)
		defer pool.Close()
		for _, sh := range matmulShapes {
			kernels := []struct {
				name string
				run  func(p *parallel.Pool, dst *Tensor, a, b *Tensor)
				a, b *Tensor
				acc  bool
			}{
				{"MatMul", MatMul, New(sh.m, sh.k), New(sh.k, sh.n), false},
				{"MatMulAcc", MatMulAcc, New(sh.m, sh.k), New(sh.k, sh.n), true},
				{"MatMulTransA", MatMulTransA, New(sh.k, sh.m), New(sh.k, sh.n), false},
				{"MatMulTransAAcc", MatMulTransAAcc, New(sh.k, sh.m), New(sh.k, sh.n), true},
				{"MatMulTransB", MatMulTransB, New(sh.m, sh.k), New(sh.n, sh.k), false},
			}
			for _, kr := range kernels {
				equivFill(kr.a.Data, uint64(sh.m*31+sh.k))
				equivFill(kr.b.Data, uint64(sh.n*17+sh.k))
				outS, outP := New(sh.m, sh.n), New(sh.m, sh.n)
				if kr.acc {
					equivFill(outS.Data, 99)
					copy(outP.Data, outS.Data)
				}
				kr.run(nil, outS, kr.a, kr.b)
				kr.run(pool, outP, kr.a, kr.b)
				requireBitEqual(t, fmt.Sprintf("%s[%dx%dx%d]@%d lanes", kr.name, sh.m, sh.k, sh.n, lanes), outS, outP)
			}
		}
	}
}

var convShapes = []struct {
	n, c, h, w     int
	out, kh, s, pd int
}{
	{1, 1, 4, 4, 1, 3, 1, 1}, // single image: fewer images than lanes
	{2, 3, 8, 8, 4, 3, 1, 1}, // padding
	{5, 2, 9, 7, 3, 3, 2, 0}, // odd spatial, stride 2, no pad
	{8, 4, 6, 6, 6, 5, 1, 2}, // 5x5 kernel, wide pad
	{3, 2, 5, 5, 2, 1, 1, 0}, // 1x1 kernel
}

func TestConvKernelsBitIdenticalAcrossPoolSizes(t *testing.T) {
	for _, lanes := range []int{2, 4, 5} {
		pool := parallel.NewPool(lanes)
		defer pool.Close()
		for _, sh := range convShapes {
			spec := ConvSpec{
				InChannels: sh.c, OutChannels: sh.out,
				KernelH: sh.kh, KernelW: sh.kh, Stride: sh.s, Pad: sh.pd,
			}
			oh, ow := spec.OutSize(sh.h, sh.w)
			if oh <= 0 || ow <= 0 {
				t.Fatalf("bad conv shape %+v", sh)
			}
			x := New(sh.n, sh.c, sh.h, sh.w)
			weight := New(sh.out, sh.c, sh.kh, sh.kh)
			bias := New(sh.out)
			equivFill(x.Data, 3)
			equivFill(weight.Data, 5)
			equivFill(bias.Data, 7)
			label := fmt.Sprintf("[N%d C%d->%d %dx%d k%d s%d p%d]@%d lanes",
				sh.n, sh.c, sh.out, sh.h, sh.w, sh.kh, sh.s, sh.pd, lanes)

			outS := New(sh.n, sh.out, oh, ow)
			outP := New(sh.n, sh.out, oh, ow)
			Conv2D(nil, outS, x, weight, bias, spec, NewScratch())
			Conv2D(pool, outP, x, weight, bias, spec, NewScratch())
			requireBitEqual(t, "Conv2D"+label, outS, outP)

			dout := New(sh.n, sh.out, oh, ow)
			equivFill(dout.Data, 11)
			dxS, dxP := New(sh.n, sh.c, sh.h, sh.w), New(sh.n, sh.c, sh.h, sh.w)
			Conv2DGradInput(nil, dxS, dout, weight, spec, NewScratch())
			Conv2DGradInput(pool, dxP, dout, weight, spec, NewScratch())
			requireBitEqual(t, "Conv2DGradInput"+label, dxS, dxP)

			dwS, dwP := New(sh.out, sh.c, sh.kh, sh.kh), New(sh.out, sh.c, sh.kh, sh.kh)
			dbS, dbP := New(sh.out), New(sh.out)
			// Gradient kernels accumulate; seed both sides identically.
			equivFill(dwS.Data, 13)
			copy(dwP.Data, dwS.Data)
			equivFill(dbS.Data, 19)
			copy(dbP.Data, dbS.Data)
			Conv2DGradWeight(nil, dwS, dbS, dout, x, spec, NewScratch())
			Conv2DGradWeight(pool, dwP, dbP, dout, x, spec, NewScratch())
			requireBitEqual(t, "Conv2DGradWeight"+label, dwS, dwP)
			requireBitEqual(t, "Conv2DGradWeight(bias)"+label, dbS, dbP)
		}
	}
}

// A scratch shared by one layer's sequential calls must still give each lane
// a stable private buffer when the pool shrinks and grows between calls.
func TestScratchReuseAcrossPoolWidths(t *testing.T) {
	sh := convShapes[1]
	spec := ConvSpec{InChannels: sh.c, OutChannels: sh.out, KernelH: sh.kh, KernelW: sh.kh, Stride: sh.s, Pad: sh.pd}
	oh, ow := spec.OutSize(sh.h, sh.w)
	x := New(sh.n, sh.c, sh.h, sh.w)
	weight := New(sh.out, sh.c, sh.kh, sh.kh)
	equivFill(x.Data, 23)
	equivFill(weight.Data, 29)
	ref := New(sh.n, sh.out, oh, ow)
	Conv2D(nil, ref, x, weight, nil, spec, NewScratch())

	sc := NewScratch()
	for _, lanes := range []int{4, 1, 3, 2, 4} {
		pool := parallel.NewPool(lanes)
		out := New(sh.n, sh.out, oh, ow)
		Conv2D(pool, out, x, weight, nil, spec, sc)
		pool.Close()
		requireBitEqual(t, fmt.Sprintf("Conv2D shared scratch @%d lanes", lanes), ref, out)
	}
}
