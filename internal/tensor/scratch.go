package tensor

// Scratch holds per-lane kernel workspace (im2col columns today). Each layer
// owns one Scratch; the parallel kernels grow one buffer per pool lane on
// first use, so concurrent lanes of one kernel call never share a column
// buffer. A Scratch must not be shared between layer instances that can run
// concurrently — the serving worker replicas each build a private network
// (and therefore private Scratches) for exactly this reason.
//
// The zero value is ready to use; nil is accepted by every kernel and makes
// the call allocate a throwaway workspace.
type Scratch struct {
	lanes [][]float32
	words [][]uint64
}

// NewScratch returns an empty per-lane workspace.
func NewScratch() *Scratch { return &Scratch{} }

// reserve grows the lane tables to at least n slots. It must run on the
// submitting goroutine before lanes are dispatched: the tables themselves
// are only ever resized here, so concurrent lane() calls touch disjoint
// elements.
func (s *Scratch) reserve(n int) {
	for len(s.lanes) < n {
		s.lanes = append(s.lanes, nil)
	}
	for len(s.words) < n {
		s.words = append(s.words, nil)
	}
}

// lane returns lane's buffer with at least n elements, growing only that
// lane's slot. Contents are unspecified; kernels overwrite before reading.
func (s *Scratch) lane(lane, n int) []float32 {
	buf := s.lanes[lane]
	if len(buf) < n {
		buf = make([]float32, n)
		s.lanes[lane] = buf
	}
	return buf[:n]
}

// laneWords is lane for uint64 workspace — the packed im2col columns of the
// bit-packed convolution kernels.
func (s *Scratch) laneWords(lane, n int) []uint64 {
	buf := s.words[lane]
	if len(buf) < n {
		buf = make([]uint64, n)
		s.words[lane] = buf
	}
	return buf[:n]
}
