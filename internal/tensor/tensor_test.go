package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	if x.Bytes() != 96 {
		t.Fatalf("Bytes = %d, want 96", x.Bytes())
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3)
	x.Set(7.5, 1, 2)
	if got := x.At(1, 2); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := x.Data[1*3+2]; got != 7.5 {
		t.Fatalf("flat index = %v, want 7.5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	x := New(3)
	x.Fill(1)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	x.Data[5] = 3
	y := x.Reshape(3, 4)
	if y.Data[5] != 3 {
		t.Fatal("Reshape must share data")
	}
	y.Data[0] = 1
	if x.Data[0] != 1 {
		t.Fatal("Reshape view write not visible in original")
	}
}

func TestReshapeWrongVolumePanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	if x.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", x.At(1, 0))
	}
	x.Data[0] = 9
	if d[0] != 9 {
		t.Fatal("FromSlice must wrap, not copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	dst := New(3)
	Add(dst, a, b)
	if dst.Data[2] != 9 {
		t.Fatalf("Add = %v", dst.Data)
	}
	Sub(dst, b, a)
	if dst.Data[0] != 3 {
		t.Fatalf("Sub = %v", dst.Data)
	}
	Mul(dst, a, b)
	if dst.Data[1] != 10 {
		t.Fatalf("Mul = %v", dst.Data)
	}
	Scale(dst, a, 2)
	if dst.Data[2] != 6 {
		t.Fatalf("Scale = %v", dst.Data)
	}
	AXPY(dst, 10, a) // dst = 2a + 10a = 12a
	if dst.Data[0] != 12 {
		t.Fatalf("AXPY = %v", dst.Data)
	}
	if got := Sum(a); got != 6 {
		t.Fatalf("Sum = %v", got)
	}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Mean(a); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(3), New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Add(a, a, b)
}

func TestNorm2AndMaxAbs(t *testing.T) {
	x := FromSlice([]float32{3, -4}, 2)
	if got := Norm2(x); math.Abs(float64(got)-5) > 1e-6 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := MaxAbs(x); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
}

func TestCountNonZero(t *testing.T) {
	x := FromSlice([]float32{0, 1, 0, 2, 0}, 5)
	if got := CountNonZero(x); got != 2 {
		t.Fatalf("CountNonZero = %d, want 2", got)
	}
}

func TestClampApply(t *testing.T) {
	x := FromSlice([]float32{-2, 0.5, 3}, 3)
	Clamp(x, 0, 1)
	if x.Data[0] != 0 || x.Data[1] != 0.5 || x.Data[2] != 1 {
		t.Fatalf("Clamp = %v", x.Data)
	}
	Apply(x, func(v float32) float32 { return v * 2 })
	if x.Data[2] != 2 {
		t.Fatalf("Apply = %v", x.Data)
	}
}

func TestIsFinite(t *testing.T) {
	x := New(2)
	if !x.IsFinite() {
		t.Fatal("zero tensor should be finite")
	}
	x.Data[1] = float32(math.NaN())
	if x.IsFinite() {
		t.Fatal("NaN tensor reported finite")
	}
}

func TestAddBiasAndSumPerChannel(t *testing.T) {
	x := New(2, 3, 2, 2)
	bias := FromSlice([]float32{1, 2, 3}, 3)
	AddBias(x, bias)
	if x.At(0, 1, 0, 0) != 2 || x.At(1, 2, 1, 1) != 3 {
		t.Fatalf("AddBias wrong: %v", x.Data)
	}
	db := New(3)
	SumPerChannel(db, x)
	// each channel c has value (c+1) at 2 images × 4 positions = 8(c+1)
	for c := 0; c < 3; c++ {
		if db.Data[c] != float32(8*(c+1)) {
			t.Fatalf("SumPerChannel[%d] = %v, want %d", c, db.Data[c], 8*(c+1))
		}
	}
}

func TestAddRowBiasAndSumPerColumn(t *testing.T) {
	x := New(3, 2)
	bias := FromSlice([]float32{10, 20}, 2)
	AddRowBias(x, bias)
	if x.At(2, 1) != 20 {
		t.Fatalf("AddRowBias = %v", x.Data)
	}
	dc := New(2)
	SumPerColumn(dc, x)
	if dc.Data[0] != 30 || dc.Data[1] != 60 {
		t.Fatalf("SumPerColumn = %v", dc.Data)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	dst := New(2, 2)
	MatMul(nil, dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", dst.Data, want)
		}
	}
}

// matmulNaive is an independent reference implementation for cross-checking.
func matmulNaive(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.At(i, kk) * b.At(kk, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := NewRNG(42)
	for trial := 0; trial < 5; trial++ {
		m, k, n := 1+r.Intn(9), 1+r.Intn(9), 1+r.Intn(9)
		a, b := New(m, k), New(k, n)
		r.FillNorm(a, 0, 1)
		r.FillNorm(b, 0, 1)
		got := New(m, n)
		MatMul(nil, got, a, b)
		want := matmulNaive(a, b)
		for i := range got.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
				t.Fatalf("trial %d: MatMul[%d] = %v, want %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulTransA(t *testing.T) {
	r := NewRNG(7)
	k, m, n := 4, 3, 5
	a, b := New(k, m), New(k, n)
	r.FillNorm(a, 0, 1)
	r.FillNorm(b, 0, 1)
	got := New(m, n)
	MatMulTransA(nil, got, a, b)
	// reference: transpose a then naive
	at := New(m, k)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	want := matmulNaive(at, b)
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("MatMulTransA mismatch at %d", i)
		}
	}
}

func TestMatMulTransB(t *testing.T) {
	r := NewRNG(8)
	m, k, n := 3, 4, 5
	a, b := New(m, k), New(n, k)
	r.FillNorm(a, 0, 1)
	r.FillNorm(b, 0, 1)
	got := New(m, n)
	MatMulTransB(nil, got, a, b)
	bt := New(k, n)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	want := matmulNaive(a, bt)
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("MatMulTransB mismatch at %d", i)
		}
	}
}

func TestMatMulAccAccumulates(t *testing.T) {
	a := FromSlice([]float32{1}, 1, 1)
	b := FromSlice([]float32{2}, 1, 1)
	dst := FromSlice([]float32{10}, 1, 1)
	MatMulAcc(nil, dst, a, b)
	if dst.Data[0] != 12 {
		t.Fatalf("MatMulAcc = %v, want 12", dst.Data[0])
	}
}

// Property: matmul distributes over addition, (a1+a2)b = a1 b + a2 b.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a1, a2, b := New(m, k), New(m, k), New(k, n)
		r.FillNorm(a1, 0, 1)
		r.FillNorm(a2, 0, 1)
		r.FillNorm(b, 0, 1)
		sum := New(m, k)
		Add(sum, a1, a2)
		lhs := New(m, n)
		MatMul(nil, lhs, sum, b)
		r1, r2 := New(m, n), New(m, n)
		MatMul(nil, r1, a1, b)
		MatMul(nil, r2, a2, b)
		rhs := New(m, n)
		Add(rhs, r1, r2)
		for i := range lhs.Data {
			if math.Abs(float64(lhs.Data[i]-rhs.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(124)
	if NewRNG(123).Uint64() == c.Uint64() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestRNGDeriveIndependent(t *testing.T) {
	r := NewRNG(5)
	d1 := r.Derive(1)
	d2 := r.Derive(2)
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("derived streams should differ")
	}
	// Deriving must not perturb the parent sequence.
	r2 := NewRNG(5)
	if r.Uint64() != r2.Uint64() {
		t.Fatal("Derive perturbed parent stream")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	n := 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := float64(r.Norm())
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGBernoulliRate(t *testing.T) {
	r := NewRNG(13)
	n, hits := 10000, 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) == 1 {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.3) > 0.03 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestKaimingInitBounds(t *testing.T) {
	r := NewRNG(17)
	w := New(8, 4, 3, 3)
	r.KaimingConv(w)
	bound := float32(math.Sqrt(6.0 / float64(4*3*3)))
	for _, v := range w.Data {
		if v < -bound || v > bound {
			t.Fatalf("KaimingConv value %v outside ±%v", v, bound)
		}
	}
	lw := New(10, 20)
	r.KaimingLinear(lw)
	lb := float32(math.Sqrt(6.0 / 20.0))
	for _, v := range lw.Data {
		if v < -lb || v > lb {
			t.Fatalf("KaimingLinear value %v outside ±%v", v, lb)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := NewRNG(19)
	x := New(4, 7)
	r.FillNorm(x, 0, 3)
	p := New(4, 7)
	Softmax(p, x)
	for i := 0; i < 4; i++ {
		var s float32
		for j := 0; j < 7; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of [0,1]: %v", v)
			}
			s += v
		}
		if math.Abs(float64(s)-1) > 1e-4 {
			t.Fatalf("softmax row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 1, 3)
	y := FromSlice([]float32{101, 102, 103}, 1, 3)
	px, py := New(1, 3), New(1, 3)
	Softmax(px, x)
	Softmax(py, y)
	for i := range px.Data {
		if math.Abs(float64(px.Data[i]-py.Data[i])) > 1e-5 {
			t.Fatal("softmax not shift invariant")
		}
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	// Finite-difference check of dlogits.
	r := NewRNG(23)
	n, k := 3, 5
	logits := New(n, k)
	r.FillNorm(logits, 0, 1)
	labels := []int{1, 4, 0}
	grad := New(n, k)
	loss0, _ := CrossEntropy(logits, labels, grad)
	eps := float32(1e-3)
	for i := 0; i < n*k; i++ {
		old := logits.Data[i]
		logits.Data[i] = old + eps
		lp, _ := CrossEntropy(logits, labels, nil)
		logits.Data[i] = old - eps
		lm, _ := CrossEntropy(logits, labels, nil)
		logits.Data[i] = old
		fd := (lp - lm) / (2 * float64(eps))
		if math.Abs(fd-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("CE grad[%d] = %v, finite-diff %v (loss %v)", i, grad.Data[i], fd, loss0)
		}
	}
}

func TestCrossEntropyAccuracyCount(t *testing.T) {
	logits := FromSlice([]float32{
		10, 0, 0,
		0, 10, 0,
		0, 10, 0,
	}, 3, 3)
	_, correct := CrossEntropy(logits, []int{0, 1, 2}, nil)
	if correct != 2 {
		t.Fatalf("correct = %d, want 2", correct)
	}
}

func TestArgmax(t *testing.T) {
	x := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := Argmax(x)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Argmax = %v", got)
	}
}

func TestVolume(t *testing.T) {
	if Volume([]int{2, 3, 4}) != 24 {
		t.Fatal("Volume wrong")
	}
	if Volume(nil) != 1 {
		t.Fatal("Volume(nil) should be 1")
	}
}

func TestPackSpikesRoundTrip(t *testing.T) {
	r := NewRNG(61)
	x := New(3, 5, 7)
	for i := range x.Data {
		x.Data[i] = r.Bernoulli(0.3)
	}
	p, ok := PackSpikes(x)
	if !ok {
		t.Fatal("binary tensor must pack")
	}
	if p.Bytes() >= x.Bytes() {
		t.Fatalf("packed %d >= raw %d bytes", p.Bytes(), x.Bytes())
	}
	if p.Count() != CountNonZero(x) {
		t.Fatalf("Count = %d, want %d", p.Count(), CountNonZero(x))
	}
	y := p.Unpack()
	if !y.SameShape(x) {
		t.Fatalf("unpacked shape %v", y.Shape())
	}
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatalf("round trip lost bit %d", i)
		}
	}
	if p.Len() != x.Len() || len(p.Shape()) != 3 {
		t.Fatal("metadata wrong")
	}
	if p.String() == "" {
		t.Fatal("String empty")
	}
}

func TestPackSpikesRejectsNonBinary(t *testing.T) {
	x := FromSlice([]float32{0, 1, 0.5}, 3)
	if _, ok := PackSpikes(x); ok {
		t.Fatal("non-binary tensor must not pack")
	}
}

// Property: pack/unpack is the identity on binary tensors of any length
// (including lengths that straddle 64-bit word boundaries).
func TestPackSpikesRoundTripProperty(t *testing.T) {
	f := func(seed uint64, lenRaw uint16) bool {
		n := int(lenRaw%200) + 1
		r := NewRNG(seed)
		x := New(n)
		for i := range x.Data {
			x.Data[i] = r.Bernoulli(0.5)
		}
		p, ok := PackSpikes(x)
		if !ok {
			return false
		}
		y := p.Unpack()
		for i := range x.Data {
			if x.Data[i] != y.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
