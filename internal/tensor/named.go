package tensor

// Named pairs a tensor with a stable identifier, the unit of generic state
// serialization: optimizer moment buffers, batch-norm running statistics,
// and any other persistent float32 state that must survive a
// checkpoint/resume cycle travels as a []Named.
type Named struct {
	Name string
	T    *Tensor
}

// CopyNamed copies src values into dst by name, requiring an exact match of
// the two sets (same names, same shapes, no extras on either side). It is
// the strict restore primitive: a partial or mismatched state snapshot is an
// error, never a silent partial restore.
func CopyNamed(dst, src []Named) error {
	if len(dst) != len(src) {
		return &NamedMismatchError{Want: len(dst), Got: len(src)}
	}
	byName := make(map[string]*Tensor, len(src))
	for _, s := range src {
		byName[s.Name] = s.T
	}
	for _, d := range dst {
		s, ok := byName[d.Name]
		if !ok {
			return &NamedMismatchError{Missing: d.Name}
		}
		delete(byName, d.Name)
		if !sameShape(d.T, s) {
			return &NamedMismatchError{Missing: d.Name, ShapeMismatch: true}
		}
		copy(d.T.Data, s.Data)
	}
	return nil
}

func sameShape(a, b *Tensor) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := 0; i < a.Rank(); i++ {
		if a.Dim(i) != b.Dim(i) {
			return false
		}
	}
	return true
}

// NamedMismatchError reports a failed strict name/shape match in CopyNamed.
type NamedMismatchError struct {
	Want, Got     int
	Missing       string
	ShapeMismatch bool
}

func (e *NamedMismatchError) Error() string {
	switch {
	case e.ShapeMismatch:
		return "tensor: named state " + e.Missing + ": shape mismatch"
	case e.Missing != "":
		return "tensor: named state " + e.Missing + ": missing from snapshot"
	default:
		return "tensor: named state count mismatch"
	}
}
