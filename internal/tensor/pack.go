package tensor

import "fmt"

// PackedSpikes is a bit-packed binary tensor: exactly-0/1 float32 data
// stored one bit per element. Spike tensors dominate a stored SNN timestep
// record, and packing them shrinks that share 32×, which makes long-lived
// checkpoint records far cheaper to hold (an optimisation beyond the paper;
// see core.Config.CompressSpikes).
type PackedSpikes struct {
	shape []int
	n     int
	bits  []uint64
}

// PackSpikes bit-packs t when every element is exactly 0 or 1; ok reports
// whether packing applied (non-binary tensors — membranes, pooled rates —
// are left to their float representation).
func PackSpikes(t *Tensor) (*PackedSpikes, bool) {
	n := t.Len()
	bits := make([]uint64, (n+63)/64)
	for i, v := range t.Data {
		switch v {
		case 0:
		case 1:
			bits[i/64] |= 1 << (i % 64)
		default:
			return nil, false
		}
	}
	return &PackedSpikes{shape: append([]int(nil), t.Shape()...), n: n, bits: bits}, true
}

// Unpack reconstructs the original float32 tensor.
func (p *PackedSpikes) Unpack() *Tensor {
	t := New(p.shape...)
	for i := 0; i < p.n; i++ {
		if p.bits[i/64]&(1<<(i%64)) != 0 {
			t.Data[i] = 1
		}
	}
	return t
}

// Bytes returns the packed payload size.
func (p *PackedSpikes) Bytes() int64 { return int64(len(p.bits)) * 8 }

// Len returns the element count of the original tensor.
func (p *PackedSpikes) Len() int { return p.n }

// Shape returns the original shape. The returned slice must not be mutated.
func (p *PackedSpikes) Shape() []int { return p.shape }

// Count returns the number of set bits (spikes).
func (p *PackedSpikes) Count() int {
	c := 0
	for _, w := range p.bits {
		c += popcount(w)
	}
	return c
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// String renders a compact description.
func (p *PackedSpikes) String() string {
	return fmt.Sprintf("PackedSpikes%v[%d spikes]", p.shape, p.Count())
}
