package tensor

import (
	"fmt"
	"math/bits"
)

// PackedSpikes is a bit-packed binary tensor: exactly-0/1 float32 data
// stored one bit per element. Spike tensors dominate a stored SNN timestep
// record, and packing them shrinks that share 32×, which makes long-lived
// checkpoint records far cheaper to hold (an optimisation beyond the paper;
// see core.Config.CompressSpikes).
//
// Packed tensors are also a first-class compute dtype: the spike-side
// matmul and convolution kernels in this package (MatMulPacked,
// MatMulTransBPacked, MatMulTransAPackedAcc, Conv2DPacked,
// Conv2DGradWeightPacked) consume the packed words directly — spikes are
// exactly 0/1, so a weight·spike product is a gather of weight values at
// set-bit positions, and whole all-zero 64-spike words are skipped without
// touching a float. A PackedSpikes is immutable after construction, so it
// may be read concurrently from any number of pool lanes.
type PackedSpikes struct {
	shape []int
	n     int
	bits  []uint64
}

// PackSpikes bit-packs t when every element is exactly 0 or 1; ok reports
// whether packing applied (non-binary tensors — membranes, pooled rates —
// are left to their float representation). The binarity scan runs before
// any allocation, so rejected tensors cost no garbage: every checkpoint
// record probes its membrane tensors through here, and those probes must
// stay allocation-free.
func PackSpikes(t *Tensor) (*PackedSpikes, bool) {
	for _, v := range t.Data {
		if v != 0 && v != 1 {
			return nil, false
		}
	}
	n := t.Len()
	bits := make([]uint64, (n+63)/64)
	// Word-at-a-time build: each output word gathers its 64 source floats,
	// so the per-element work is one compare and one shift-or.
	for wi := range bits {
		base := wi * 64
		end := base + 64
		if end > n {
			end = n
		}
		var w uint64
		for i, v := range t.Data[base:end] {
			if v != 0 {
				w |= 1 << uint(i)
			}
		}
		bits[wi] = w
	}
	return &PackedSpikes{shape: append([]int(nil), t.Shape()...), n: n, bits: bits}, true
}

// Unpack reconstructs the original float32 tensor.
func (p *PackedSpikes) Unpack() *Tensor {
	t := New(p.shape...)
	p.UnpackInto(t)
	return t
}

// UnpackInto expands the packed bits into dst, which must have p.Len()
// elements (its shape is not checked). dst is fully overwritten. The
// expansion walks whole words and skips empty ones — in the sparse
// late-timestep regime most words are zero, so the common cost is one
// word-compare per 64 elements on an already-zeroed tensor.
func (p *PackedSpikes) UnpackInto(dst *Tensor) {
	if dst.Len() != p.n {
		panic(fmt.Sprintf("tensor: UnpackInto length %d, packed holds %d", dst.Len(), p.n))
	}
	d := dst.Data
	for i := range d {
		d[i] = 0
	}
	for wi, w := range p.bits {
		if w == 0 {
			continue
		}
		base := wi * 64
		for w != 0 {
			d[base+bits.TrailingZeros64(w)] = 1
			w &= w - 1
		}
	}
}

// Bytes returns the packed payload size.
func (p *PackedSpikes) Bytes() int64 { return int64(len(p.bits)) * 8 }

// Len returns the element count of the original tensor.
func (p *PackedSpikes) Len() int { return p.n }

// Shape returns the original shape. The returned slice must not be mutated.
func (p *PackedSpikes) Shape() []int { return p.shape }

// Bit reports whether element i of the original tensor was 1.
func (p *PackedSpikes) Bit(i int) bool {
	return p.bits[i>>6]&(1<<uint(i&63)) != 0
}

// Words exposes the backing bit words (element i lives at bit i&63 of word
// i>>6; trailing bits of the last word are zero). The slice is the live
// storage and must be treated as read-only — it exists so packed-aware
// kernels outside this package (the LIF step) can walk words and skip empty
// ones without copying.
func (p *PackedSpikes) Words() []uint64 { return p.bits }

// Count returns the number of set bits (spikes). For a binary tensor this
// equals the float spike-sum exactly (integer counts are exact in float64
// far beyond any tensor size we hold).
func (p *PackedSpikes) Count() int {
	c := 0
	for _, w := range p.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// String renders a compact description.
func (p *PackedSpikes) String() string {
	return fmt.Sprintf("PackedSpikes%v[%d spikes]", p.shape, p.Count())
}
