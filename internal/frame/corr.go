package frame

import (
	"encoding/binary"
	"fmt"
)

// Correlation envelope for multiplexing several in-flight request/response
// exchanges over one framed connection: the outer frame's payload is
//
//	corr u64 (little-endian) | inner type byte | inner payload
//
// so a reader goroutine can match replies to waiters by correlation id
// while writers interleave requests behind a single write lock.

// EncodeCorr wraps an inner frame in the multiplexing envelope.
func EncodeCorr(corr uint64, typ byte, payload []byte) []byte {
	buf := make([]byte, 9+len(payload))
	binary.LittleEndian.PutUint64(buf[:8], corr)
	buf[8] = typ
	copy(buf[9:], payload)
	return buf
}

// DecodeCorr unwraps the multiplexing envelope. The inner payload aliases
// buf. A malformed envelope is ErrBad (permanent, like a framing error).
func DecodeCorr(buf []byte) (corr uint64, typ byte, payload []byte, err error) {
	if len(buf) < 9 {
		return 0, 0, nil, fmt.Errorf("%w: mux envelope of %d bytes", ErrBad, len(buf))
	}
	return binary.LittleEndian.Uint64(buf[:8]), buf[8], buf[9:], nil
}
