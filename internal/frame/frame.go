// Package frame is the CRC-framed wire envelope shared by every skipper
// subsystem that speaks a framed byte stream: the distributed-training
// protocol (internal/dist), the serving fleet's router↔replica data path
// (internal/serve), and the router peer-gossip channel (internal/router).
// Callers own their type-byte namespace; the envelope never interprets typ.
//
// The layout is
//
//	magic "SKPF" | type u8 | payload len u32 | payload | crc32 (IEEE)
//
// with the checksum covering everything before it.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	magic = "SKPF"
	// MaxPayload caps any length header read off the wire before it sizes an
	// allocation — the same hostile-header rule serialize enforces.
	MaxPayload = 1 << 28
)

// ErrBad reports a malformed envelope: wrong magic, an implausible length,
// or a checksum mismatch. It is permanent — the stream cannot be
// re-synchronized after it.
var ErrBad = errors.New("frame: bad frame")

// Write sends one message as a single envelope. The frame is assembled in
// one buffer and written with a single Write so byte-budget fault injection
// cuts it at deterministic offsets.
func Write(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d exceeds %d", ErrBad, len(payload), MaxPayload)
	}
	buf := make([]byte, 0, len(magic)+5+len(payload)+4)
	buf = append(buf, magic...)
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("frame: writing: %w", err)
	}
	return nil
}

// Read reads and verifies one message envelope.
func Read(r io.Reader) (byte, []byte, error) {
	head := make([]byte, len(magic)+5)
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, nil, fmt.Errorf("frame: reading header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return 0, nil, fmt.Errorf("%w: magic %q", ErrBad, head[:len(magic)])
	}
	typ := head[len(magic)]
	n := binary.LittleEndian.Uint32(head[len(magic)+1:])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: payload length %d", ErrBad, n)
	}
	rest := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return 0, nil, fmt.Errorf("frame: reading payload: %w", err)
	}
	payload, tail := rest[:n], rest[n:]
	sum := crc32.ChecksumIEEE(head)
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if sum != binary.LittleEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrBad)
	}
	return typ, payload, nil
}
