package frame

import (
	"bytes"
	"net"
	"testing"

	"skipper/internal/faults"
)

// TestTruncationEveryBoundary cuts a valid frame at every byte offset and
// flips every byte: Read must reject all of them and accept only the intact
// frame.
func TestTruncationEveryBoundary(t *testing.T) {
	payload := []byte(`{"round":3,"reason":"x"}`)
	var buf bytes.Buffer
	if err := Write(&buf, 7, payload); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("accepted frame truncated to %d of %d bytes", cut, len(full))
		}
	}
	for i := range full {
		corrupt := append([]byte(nil), full...)
		corrupt[i] ^= 0x01
		if _, _, err := Read(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("accepted frame with byte %d flipped", i)
		}
	}
	typ, p, err := Read(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if typ != 7 || !bytes.Equal(p, payload) {
		t.Fatalf("round-trip mismatch: type %d payload %q", typ, p)
	}
}

// TestFaultConnCutEveryBoundary repeats the truncation sweep over a live
// pipe with the faults.Conn write-budget seam — the reader end must see a
// clean error for every possible cut point, exactly as it would if the peer
// process died mid-write.
func TestFaultConnCutEveryBoundary(t *testing.T) {
	payload := []byte(`{"round":1}`)
	var ref bytes.Buffer
	if err := Write(&ref, 7, payload); err != nil {
		t.Fatal(err)
	}
	n := ref.Len()
	for cut := 0; cut < n; cut++ {
		a, b := net.Pipe()
		fc := faults.NewConn(a)
		fc.FailWritesAfter(int64(cut))
		fc.CloseOnFault(true)
		werr := make(chan error, 1)
		go func() { werr <- Write(fc, 7, payload) }()
		if _, _, err := Read(b); err == nil {
			t.Fatalf("reader accepted frame cut at byte %d of %d", cut, n)
		}
		if err := <-werr; err == nil {
			t.Fatalf("writer did not observe the injected fault at cut %d", cut)
		}
		a.Close()
		b.Close()
	}
}

// TestEmptyPayload round-trips a zero-length payload (ping-style frames).
func TestEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, 1, nil); err != nil {
		t.Fatal(err)
	}
	typ, p, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != 1 || len(p) != 0 {
		t.Fatalf("round-trip mismatch: type %d payload %q", typ, p)
	}
}
