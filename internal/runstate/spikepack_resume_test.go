package runstate

import (
	"errors"
	"testing"

	"skipper/internal/core"
)

// Spike-pack mode composes with crash-safe resume: a run killed mid-epoch
// and resumed from the manifest matches the uninterrupted sequence exactly —
// and because the packed kernels are bit-identical to the dense float path,
// the reference run here trains with SpikePack OFF while the victim and
// survivor train with it ON. Same weights at the end is the strongest form
// of both contracts at once.
func TestSpikePackResumeMatchesDenseUninterrupted(t *testing.T) {
	// Checkpoint segments need T/C > L_n (= 4 for customnet+BN), and packed
	// boundary records only exist under CompressSpikes.
	cfg := testCfg()
	cfg.T = 12
	cfg.SnapshotEvery = 1
	cfg.CompressSpikes = true
	mk := func() core.Strategy { return core.Checkpoint{C: 2} }

	dense := cfg
	ref := testTrainer(t, mk(), dense)
	var refStats []core.EpochStats
	for e := 1; e <= 2; e++ {
		ep, err := ref.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		refStats = append(refStats, ep)
	}

	packed := cfg
	packed.SpikePack = true
	store, err := Open(t.TempDir(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	victim := testTrainer(t, crashStrategy{inner: mk(), calls: &calls, at: 6}, packed)
	Attach(victim, store)
	ep1, err := victim.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if normalize(ep1) != normalize(refStats[0]) {
		t.Fatalf("packed pre-crash epoch 1 differs from dense:\n  packed: %+v\n  dense:  %+v",
			normalize(ep1), normalize(refStats[0]))
	}
	if _, err := victim.TrainEpoch(); !errors.Is(err, errCrash) {
		t.Fatalf("victim should have crashed, got: %v", err)
	}

	survivor := testTrainer(t, mk(), packed)
	cur, partial, err := Resume(survivor, store)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := survivor.ResumeEpoch(cur.NextBatch, partial)
	if err != nil {
		t.Fatal(err)
	}
	if normalize(ep2) != normalize(refStats[1]) {
		t.Fatalf("packed resumed epoch 2 differs from dense:\n  packed: %+v\n  dense:  %+v",
			normalize(ep2), normalize(refStats[1]))
	}
	requireSameWeights(t, ref, survivor, "packed resume vs dense uninterrupted")
}
