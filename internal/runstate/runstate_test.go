package runstate

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/faults"
	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/serialize"
	"skipper/internal/tensor"
)

// testTrainer builds a small deterministic run: customnet with batch norm
// (so the manifest carries running-stat buffers), the synthetic cifar10
// source, and the given strategy.
func testTrainer(t *testing.T, strat core.Strategy, cfg core.Config) *core.Trainer {
	t.Helper()
	net, err := models.Build("customnet", models.Options{
		Width: 0.5, InShape: []int{3, 16, 16}, Classes: 10, BatchNorm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := dataset.Open("cifar10", 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.NewTrainer(net, data, strat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

func testCfg() core.Config {
	return core.Config{T: 6, Batch: 2, MaxBatchesPerEpoch: 4, Seed: 11, SnapshotEvery: 2}
}

// normalize strips the wall-clock fields so epoch aggregates can be compared
// across runs.
func normalize(ep core.EpochStats) core.EpochStats {
	ep.Duration = 0
	ep.ForwardTime, ep.RecomputeTime, ep.BackwardTime = 0, 0, 0
	return ep
}

func requireSameWeights(t *testing.T, a, b *core.Trainer, context string) {
	t.Helper()
	pa, pb := a.Net.Params(), b.Net.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("%s: weight %s[%d]: %v != %v", context, pa[i].Name, j, pa[i].W.Data[j], pb[i].W.Data[j])
			}
		}
	}
	oa, ob := a.Opt.StateTensors(), b.Opt.StateTensors()
	for i := range oa {
		for j := range oa[i].T.Data {
			if oa[i].T.Data[j] != ob[i].T.Data[j] {
				t.Fatalf("%s: optimizer state %s[%d]: %v != %v", context, oa[i].Name, j, oa[i].T.Data[j], ob[i].T.Data[j])
			}
		}
	}
	ba, bb := a.Net.Buffers(), b.Net.Buffers()
	for i := range ba {
		for j := range ba[i].T.Data {
			if ba[i].T.Data[j] != bb[i].T.Data[j] {
				t.Fatalf("%s: buffer %s[%d]: %v != %v", context, ba[i].Name, j, ba[i].T.Data[j], bb[i].T.Data[j])
			}
		}
	}
}

// crashStrategy aborts the run at the n-th TrainBatch call (1-based),
// simulating the process dying mid-epoch; the batches before it train
// normally.
type crashStrategy struct {
	inner core.Strategy
	calls *int
	at    int
}

var errCrash = errors.New("simulated crash")

func (c crashStrategy) Name() string { return c.inner.Name() }
func (c crashStrategy) Validate(cfg core.Config, net *layers.Network) error {
	return c.inner.Validate(cfg, net)
}
func (c crashStrategy) TrainBatch(tr *core.Trainer, in []*tensor.Tensor, lbl []int) (core.StepStats, error) {
	*c.calls++
	if *c.calls == c.at {
		return core.StepStats{}, errCrash
	}
	return c.inner.TrainBatch(tr, in, lbl)
}

func sampleManifest() *Manifest {
	return &Manifest{
		Meta: Meta{
			Strategy:  "bptt",
			Optimizer: "adam",
			Seed:      9,
			OptSteps:  17,
			LRScale:   0.25,
			Cursor:    core.Cursor{NextEpoch: 3, NextBatch: 2, Iteration: 10},
			Partial:   core.EpochStats{Batches: 2},
			Divergences: []core.DivergenceEvent{
				{Epoch: 2, Batch: 1, Loss: 3.5, GradNorm: 99, LRScale: 0.25, Reason: "non-finite loss"},
			},
		},
		weights: []byte("weights-blob"),
		opt:     []byte("optimizer-blob"),
		buffers: []byte("buffers"),
	}
}

func TestManifestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleManifest()
	m.Meta.SavedAt = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	raw, err := m.encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Strategy != m.Meta.Strategy || got.Meta.Cursor != m.Meta.Cursor ||
		got.Meta.OptSteps != m.Meta.OptSteps || got.Meta.LRScale != m.Meta.LRScale ||
		got.Meta.Seed != m.Meta.Seed || !got.Meta.SavedAt.Equal(m.Meta.SavedAt) {
		t.Fatalf("meta mismatch: %+v vs %+v", got.Meta, m.Meta)
	}
	if len(got.Meta.Divergences) != 1 || got.Meta.Divergences[0] != m.Meta.Divergences[0] {
		t.Fatalf("divergence log mismatch: %+v", got.Meta.Divergences)
	}
	if !bytes.Equal(got.weights, m.weights) || !bytes.Equal(got.opt, m.opt) || !bytes.Equal(got.buffers, m.buffers) {
		t.Fatal("blob mismatch")
	}

	// Every strict prefix must be rejected, the very short ones as
	// ErrTruncated.
	for n := 0; n < len(raw); n++ {
		if _, err := decode(raw[:n]); err == nil {
			t.Fatalf("truncation at byte %d/%d must fail", n, len(raw))
		}
	}
	if _, err := decode(raw[:10]); !errors.Is(err, serialize.ErrTruncated) {
		t.Fatalf("short prefix should be ErrTruncated, got: %v", err)
	}
	// Corruption fails the checksum; extra bytes fail too.
	flip := append([]byte(nil), raw...)
	flip[len(flip)/3] ^= 0x40
	if _, err := decode(flip); err == nil {
		t.Fatal("corruption must fail the checksum")
	}
	if _, err := decode(append(append([]byte(nil), raw...), 0)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
}

// The crash-safety acceptance sweep: with a good manifest on disk, kill a
// replacement save at EVERY byte boundary (plus the rename, sync, and create
// instants) and assert the store still loads a complete manifest — the old
// one — afterwards. The Injector's visible on-disk states are exactly those
// a SIGKILL at the same instant would leave.
func TestManifestSurvivesKillAtEveryByte(t *testing.T) {
	inj := faults.NewInjector(nil)
	store, err := Open(t.TempDir(), inj, faults.Fixed(time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)))
	if err != nil {
		t.Fatal(err)
	}
	old := sampleManifest()
	if err := store.Save(old); err != nil {
		t.Fatal(err)
	}
	replacement := sampleManifest()
	replacement.Meta.OptSteps = 99
	full, err := replacement.encode()
	if err != nil {
		t.Fatal(err)
	}

	checkOldSurvives := func(instant string) {
		t.Helper()
		got, err := store.Load()
		if err != nil {
			t.Fatalf("kill %s: manifest no longer loads: %v", instant, err)
		}
		if got.Meta.OptSteps != old.Meta.OptSteps {
			t.Fatalf("kill %s: loaded a torn manifest (opt steps %d)", instant, got.Meta.OptSteps)
		}
	}

	for b := 0; b < len(full); b++ {
		inj.FailWritesAfter(int64(b))
		if err := store.Save(replacement); !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("kill at byte %d: want injected fault, got %v", b, err)
		}
		inj.Reset()
		checkOldSurvives(fmt.Sprintf("at byte %d", b))
	}

	inj.FailCreate(true)
	if err := store.Save(replacement); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want create fault, got %v", err)
	}
	inj.Reset()
	checkOldSurvives("at create")

	inj.FailSync(true)
	if err := store.Save(replacement); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want sync fault, got %v", err)
	}
	inj.Reset()
	checkOldSurvives("at sync")

	inj.FailRename(true)
	if err := store.Save(replacement); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want rename fault, got %v", err)
	}
	inj.Reset()
	checkOldSurvives("at rename")

	// With the faults cleared the replacement lands completely.
	if err := store.Save(replacement); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil || got.Meta.OptSteps != 99 {
		t.Fatalf("replacement did not land: %+v, %v", got, err)
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	cfg := testCfg()
	a := testTrainer(t, core.BPTT{}, cfg)
	if _, err := a.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	m, err := Capture(a, a.CursorAt(), core.EpochStats{})
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(t.TempDir(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(m); err != nil {
		t.Fatal(err)
	}
	if !store.Exists() {
		t.Fatal("Exists must see the saved manifest")
	}

	loaded, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	b := testTrainer(t, core.BPTT{}, cfg)
	if err := loaded.Restore(b); err != nil {
		t.Fatal(err)
	}
	requireSameWeights(t, a, b, "after restore")
	if b.Epoch() != a.Epoch() || b.Iteration() != a.Iteration() {
		t.Fatalf("cursor not restored: epoch %d/%d iteration %d/%d",
			b.Epoch(), a.Epoch(), b.Iteration(), a.Iteration())
	}

	// Both trainers continue identically: the restored run is the run.
	epA, err := a.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	epB, err := b.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if normalize(epA) != normalize(epB) {
		t.Fatalf("post-restore epochs differ:\n  original: %+v\n  restored: %+v", normalize(epA), normalize(epB))
	}
	requireSameWeights(t, a, b, "one epoch after restore")
}

func TestRestoreRejectsMismatchedRun(t *testing.T) {
	cfg := testCfg()
	a := testTrainer(t, core.BPTT{}, cfg)
	m, err := Capture(a, a.CursorAt(), core.EpochStats{})
	if err != nil {
		t.Fatal(err)
	}

	wrongStrat := testTrainer(t, core.TBPTT{Window: 5}, cfg)
	if err := m.Restore(wrongStrat); err == nil || !strings.Contains(err.Error(), "strategy") {
		t.Fatalf("want strategy mismatch, got: %v", err)
	}
	wrongSeedCfg := cfg
	wrongSeedCfg.Seed = 12
	wrongSeed := testTrainer(t, core.BPTT{}, wrongSeedCfg)
	if err := m.Restore(wrongSeed); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("want seed mismatch, got: %v", err)
	}
}

// The end-to-end acceptance property: a run killed mid-epoch and resumed
// from its last durable manifest finishes with bit-identical weights,
// optimizer state, and buffers to the run that was never interrupted.
func TestKillResumeBitIdentical(t *testing.T) {
	cfg := testCfg()
	const epochs = 3

	// Reference: uninterrupted.
	ref := testTrainer(t, core.BPTT{}, cfg)
	refStats := make([]core.EpochStats, 0, epochs)
	for e := 1; e <= epochs; e++ {
		ep, err := ref.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		refStats = append(refStats, ep)
	}

	// Victim: snapshots every 2 batches, dies at epoch 2 batch 3 (call 8).
	dir := t.TempDir()
	store, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	victim := testTrainer(t, crashStrategy{inner: core.BPTT{}, calls: &calls, at: 8}, cfg)
	Attach(victim, store)
	if _, err := victim.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.TrainEpoch(); !errors.Is(err, errCrash) {
		t.Fatalf("victim should have crashed, got: %v", err)
	}

	// Survivor: a fresh process — new network, new optimizer — resumed from
	// the manifest the victim left behind.
	survivor := testTrainer(t, core.BPTT{}, cfg)
	Attach(survivor, store)
	cur, partial, err := Resume(survivor, store)
	if err != nil {
		t.Fatal(err)
	}
	if cur.NextEpoch != 2 || cur.NextBatch != 2 {
		t.Fatalf("resume cursor = %+v, want epoch 2 batch 2 (the last snapshot before the crash)", cur)
	}
	ep2, err := survivor.ResumeEpoch(cur.NextBatch, partial)
	if err != nil {
		t.Fatal(err)
	}
	if normalize(ep2) != normalize(refStats[1]) {
		t.Fatalf("resumed epoch 2 differs:\n  resumed:  %+v\n  straight: %+v", normalize(ep2), normalize(refStats[1]))
	}
	for e := 3; e <= epochs; e++ {
		ep, err := survivor.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if normalize(ep) != normalize(refStats[e-1]) {
			t.Fatalf("epoch %d after resume differs:\n  resumed:  %+v\n  straight: %+v", e, normalize(ep), normalize(refStats[e-1]))
		}
	}
	requireSameWeights(t, ref, survivor, "end of resumed run")

	// The survivor's own snapshots kept the manifest moving: it now points
	// past the final epoch.
	final, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if final.Meta.Cursor.NextEpoch != epochs+1 || final.Meta.Cursor.NextBatch != 0 {
		t.Fatalf("final manifest cursor = %+v, want {%d 0 _}", final.Meta.Cursor, epochs+1)
	}
}

// The resume property holds for every training strategy, not just BPTT: the
// per-epoch aggregates of a killed-and-resumed run match the uninterrupted
// sequence exactly.
func TestResumeMatchesUninterruptedAllStrategies(t *testing.T) {
	strategies := map[string]func() core.Strategy{
		"bptt":    func() core.Strategy { return core.BPTT{} },
		"skipper": func() core.Strategy { return core.Skipper{C: 1, P: 20} },
		"tbptt":   func() core.Strategy { return core.TBPTT{Window: 5} },
	}
	for name, mk := range strategies {
		t.Run(name, func(t *testing.T) {
			cfg := testCfg()
			cfg.SnapshotEvery = 1

			ref := testTrainer(t, mk(), cfg)
			var refStats []core.EpochStats
			for e := 1; e <= 2; e++ {
				ep, err := ref.TrainEpoch()
				if err != nil {
					t.Fatal(err)
				}
				refStats = append(refStats, ep)
			}

			store, err := Open(t.TempDir(), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			calls := 0
			victim := testTrainer(t, crashStrategy{inner: mk(), calls: &calls, at: 6}, cfg)
			Attach(victim, store)
			ep1, err := victim.TrainEpoch()
			if err != nil {
				t.Fatal(err)
			}
			if normalize(ep1) != normalize(refStats[0]) {
				t.Fatalf("pre-crash epoch 1 differs")
			}
			if _, err := victim.TrainEpoch(); !errors.Is(err, errCrash) {
				t.Fatalf("victim should have crashed, got: %v", err)
			}

			survivor := testTrainer(t, mk(), cfg)
			cur, partial, err := Resume(survivor, store)
			if err != nil {
				t.Fatal(err)
			}
			ep2, err := survivor.ResumeEpoch(cur.NextBatch, partial)
			if err != nil {
				t.Fatal(err)
			}
			if normalize(ep2) != normalize(refStats[1]) {
				t.Fatalf("resumed epoch 2 differs:\n  resumed:  %+v\n  straight: %+v", normalize(ep2), normalize(refStats[1]))
			}
			requireSameWeights(t, ref, survivor, "end of resumed "+name+" run")
		})
	}
}

// A second manifest generation must atomically replace the first even when
// the previous process left a stale temp file behind (a real crash does not
// run the error-path cleanup).
func TestSaveIgnoresStaleTemp(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path()+".tmp", []byte("stale garbage from a dead process"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := sampleManifest()
	if err := store.Save(m); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil || got.Meta.OptSteps != m.Meta.OptSteps {
		t.Fatalf("save over stale temp failed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}
}
