// Package runstate makes a training run durable: a single-file manifest
// captures everything needed to resume mid-run bit-identically — network
// weights, optimizer moments and step counter, batch-norm running buffers,
// the epoch/batch cursor, the divergence guard's learning-rate scale and
// event log, and the run identity (strategy, optimizer, seed).
//
// Bit-identical resume is possible because the trainer draws every random
// stream from pure functions of (seed, purpose, iteration) — there is no
// mutable generator state outside the manifest. Restoring the captured
// tensors and the cursor therefore replays the exact computation the
// uninterrupted run would have performed.
//
// The manifest is one self-describing little-endian file:
//
//	magic "SKPM" | version u32 |
//	meta len u32 | meta JSON |
//	weights len u32 | weights ("SKPW" container) |
//	opt len u32 | optimizer state ("SKPT" container) |
//	buffers len u32 | buffers ("SKPT" container) |
//	crc32 (IEEE) of everything before it
//
// and is replaced atomically (write temp → fsync → rename → fsync dir)
// through the faults.FS seam, so a crash at any byte boundary leaves either
// the previous complete manifest or the new complete manifest on disk.
package runstate

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"time"

	"skipper/internal/core"
	"skipper/internal/faults"
	"skipper/internal/serialize"
	"skipper/internal/tensor"
)

const (
	manifestMagic   = "SKPM"
	manifestVersion = 1

	// ManifestName is the manifest's filename inside a run directory.
	ManifestName = "manifest.skpm"
)

// Meta is the JSON head of a manifest: the run identity and resume
// coordinates that are cheap to inspect without decoding the tensor blobs.
type Meta struct {
	SavedAt   time.Time `json:"saved_at"`
	Strategy  string    `json:"strategy"`
	Optimizer string    `json:"optimizer"`
	Seed      uint64    `json:"seed"`
	OptSteps  int       `json:"opt_steps"`
	LRScale   float32   `json:"lr_scale"`
	// Threads records the compute-pool width the run executed with — for
	// forensics only. Restore deliberately does not match on it: kernels
	// are bit-identical across pool sizes, so a run saved at threads=8
	// resumes exactly on a 2-core box.
	Threads int `json:"threads,omitempty"`

	Cursor  core.Cursor     `json:"cursor"`
	Partial core.EpochStats `json:"partial"`

	Divergences []core.DivergenceEvent `json:"divergences,omitempty"`

	// Dist records the distributed-training placement the manifest was
	// captured under (nil for single-process runs) — forensics for a dead
	// worker set, and the resync payload a rejoining worker reads its rank
	// and last committed round from.
	Dist *DistMeta `json:"dist,omitempty"`
}

// DistMeta is the data-parallel placement block of a manifest.
type DistMeta struct {
	// World is the total rank count, coordinator included.
	World int `json:"world"`
	// Rank is the rank this manifest was issued to (0 = coordinator).
	Rank int `json:"rank"`
	// Round is the last globally committed training round.
	Round int `json:"round"`
	// Topology is the gradient-exchange wiring ("star" or "ring").
	Topology string `json:"topology,omitempty"`
}

// Manifest is one durable snapshot of a training run.
type Manifest struct {
	Meta Meta

	weights []byte // "SKPW" weight container
	opt     []byte // "SKPT" optimizer-state container
	buffers []byte // "SKPT" layer-buffer container
}

// Capture snapshots a trainer's full resumable state at the given cursor.
// With cur.NextBatch == 0 the next unit of work is a fresh epoch, so the
// stored partial aggregate is forced to zero regardless of what the
// snapshot hook observed (the epoch-done hook reports the finished epoch's
// stats, which must not seed the next one).
func Capture(tr *core.Trainer, cur core.Cursor, partial core.EpochStats) (*Manifest, error) {
	if cur.NextBatch == 0 {
		partial = core.EpochStats{}
	}
	m := &Manifest{Meta: Meta{
		Strategy:    tr.Strat.Name(),
		Optimizer:   tr.Opt.Name(),
		Seed:        tr.Cfg.Seed,
		OptSteps:    tr.Opt.StepCount(),
		LRScale:     tr.LRScale(),
		Threads:     tr.Cfg.Runtime.Threads(),
		Cursor:      cur,
		Partial:     partial,
		Divergences: tr.DivergenceLog(),
	}}
	var w, o, b bytes.Buffer
	if err := serialize.Save(&w, tr.Net); err != nil {
		return nil, fmt.Errorf("runstate: capturing weights: %w", err)
	}
	if err := serialize.SaveTensors(&o, tr.Opt.StateTensors()); err != nil {
		return nil, fmt.Errorf("runstate: capturing optimizer state: %w", err)
	}
	if err := serialize.SaveTensors(&b, tr.Net.Buffers()); err != nil {
		return nil, fmt.Errorf("runstate: capturing buffers: %w", err)
	}
	m.weights, m.opt, m.buffers = w.Bytes(), o.Bytes(), b.Bytes()
	return m, nil
}

// Restore copies the manifest's state into a freshly constructed trainer,
// which must have been built with the same model, strategy, optimizer, and
// seed as the run that wrote the manifest. On return the trainer is
// positioned at the manifest's cursor: continue with
// ResumeEpoch(m.Meta.Cursor.NextBatch, m.Meta.Partial) or FitFrom.
func (m *Manifest) Restore(tr *core.Trainer) error {
	if got := tr.Strat.Name(); got != m.Meta.Strategy {
		return fmt.Errorf("runstate: manifest is for strategy %q, trainer runs %q", m.Meta.Strategy, got)
	}
	if got := tr.Opt.Name(); got != m.Meta.Optimizer {
		return fmt.Errorf("runstate: manifest is for optimizer %q, trainer runs %q", m.Meta.Optimizer, got)
	}
	if got := tr.Cfg.Seed; got != m.Meta.Seed {
		return fmt.Errorf("runstate: manifest is for seed %d, trainer runs %d (resume would not replay the same run)", m.Meta.Seed, got)
	}
	if err := serialize.Load(bytes.NewReader(m.weights), tr.Net); err != nil {
		return fmt.Errorf("runstate: restoring weights: %w", err)
	}
	optState, err := serialize.LoadTensors(bytes.NewReader(m.opt))
	if err != nil {
		return fmt.Errorf("runstate: restoring optimizer state: %w", err)
	}
	if err := tensor.CopyNamed(tr.Opt.StateTensors(), optState); err != nil {
		return fmt.Errorf("runstate: restoring optimizer state: %w", err)
	}
	bufState, err := serialize.LoadTensors(bytes.NewReader(m.buffers))
	if err != nil {
		return fmt.Errorf("runstate: restoring buffers: %w", err)
	}
	if err := tensor.CopyNamed(tr.Net.Buffers(), bufState); err != nil {
		return fmt.Errorf("runstate: restoring buffers: %w", err)
	}
	tr.Opt.SetStepCount(m.Meta.OptSteps)
	tr.SetCursor(m.Meta.Cursor)
	tr.SetLRScale(m.Meta.LRScale)
	tr.SetDivergenceLog(m.Meta.Divergences)
	return nil
}

// Encode serialises the manifest with its trailing checksum — the byte
// image Store.Save writes to disk, also shipped over the wire when a dist
// coordinator resyncs a rejoining worker.
func (m *Manifest) Encode() ([]byte, error) { return m.encode() }

// Decode parses and verifies an encoded manifest (the inverse of Encode).
func Decode(raw []byte) (*Manifest, error) { return decode(raw) }

// encode serialises the manifest with its trailing checksum.
func (m *Manifest) encode() ([]byte, error) {
	meta, err := json.Marshal(m.Meta)
	if err != nil {
		return nil, fmt.Errorf("runstate: encoding meta: %w", err)
	}
	var body bytes.Buffer
	body.WriteString(manifestMagic)
	writeU32(&body, manifestVersion)
	for _, section := range [][]byte{meta, m.weights, m.opt, m.buffers} {
		writeU32(&body, uint32(len(section)))
		body.Write(section)
	}
	sum := crc32.ChecksumIEEE(body.Bytes())
	writeU32(&body, sum)
	return body.Bytes(), nil
}

// decode parses and verifies an encoded manifest. Truncation is reported as
// serialize.ErrTruncated so callers can classify it as a crash signature.
func decode(raw []byte) (*Manifest, error) {
	if len(raw) < len(manifestMagic)+4+4*4+4 {
		return nil, fmt.Errorf("%w (manifest, %d bytes)", serialize.ErrTruncated, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("runstate: manifest checksum mismatch (file corrupt)")
	}
	br := bytes.NewReader(body)
	head := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("runstate: reading magic: %w", err)
	}
	if string(head) != manifestMagic {
		return nil, fmt.Errorf("runstate: bad magic %q (not a run-state manifest)", head)
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if ver != manifestVersion {
		return nil, fmt.Errorf("runstate: unsupported manifest version %d", ver)
	}
	sections := make([][]byte, 4)
	for i := range sections {
		n, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if int(n) > br.Len() {
			return nil, fmt.Errorf("%w (section %d of %d bytes exceeds remaining %d)",
				serialize.ErrTruncated, i, n, br.Len())
		}
		sections[i] = make([]byte, n)
		if _, err := io.ReadFull(br, sections[i]); err != nil {
			return nil, fmt.Errorf("runstate: reading section %d: %w", i, err)
		}
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("runstate: %d trailing bytes after last section", br.Len())
	}
	m := &Manifest{weights: sections[1], opt: sections[2], buffers: sections[3]}
	if err := json.Unmarshal(sections[0], &m.Meta); err != nil {
		return nil, fmt.Errorf("runstate: decoding meta: %w", err)
	}
	return m, nil
}

// Store durably persists manifests in a run directory, one atomic file.
type Store struct {
	Dir   string
	FS    faults.FS
	Clock faults.Clock
}

// Open creates (if needed) a run directory and returns its store. A nil fs
// or clock selects the real filesystem and wall clock.
func Open(dir string, fsys faults.FS, clock faults.Clock) (*Store, error) {
	if fsys == nil {
		fsys = faults.OS
	}
	if clock == nil {
		clock = faults.Wall
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstate: creating run dir: %w", err)
	}
	return &Store{Dir: dir, FS: fsys, Clock: clock}, nil
}

// Path returns the manifest's location.
func (s *Store) Path() string { return filepath.Join(s.Dir, ManifestName) }

// Exists reports whether a manifest is present (i.e. the run can resume).
func (s *Store) Exists() bool {
	_, err := s.FS.Stat(s.Path())
	return err == nil
}

// Save stamps and atomically persists a manifest, replacing any previous
// one. A crash at any point leaves the previous complete manifest intact.
func (s *Store) Save(m *Manifest) error {
	m.Meta.SavedAt = s.Clock.Now().UTC()
	data, err := m.encode()
	if err != nil {
		return err
	}
	return writeAtomic(s.FS, s.Path(), data)
}

// Load reads and verifies the current manifest.
func (s *Store) Load() (*Manifest, error) {
	f, err := s.FS.Open(s.Path())
	if err != nil {
		return nil, fmt.Errorf("runstate: opening manifest: %w", err)
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("runstate: reading manifest: %w", err)
	}
	return decode(raw)
}

// writeAtomic is serialize.WriteFileAtomic routed through the FS seam:
// write temp → fsync → close → rename over target → fsync dir. The temp
// file is removed on error, best-effort (a real crash would leave it, which
// is harmless — Load never looks at it).
func writeAtomic(fsys faults.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("runstate: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("runstate: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("runstate: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("runstate: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("runstate: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("runstate: %w", err)
	}
	return nil
}

// Attach installs durable snapshotting on a trainer: every good-state mark
// (epoch boundaries, plus every Cfg.SnapshotEvery batches) is captured and
// atomically persisted to the store before training continues.
func Attach(tr *core.Trainer, s *Store) {
	tr.Cfg.OnSnapshot = func(cur core.Cursor, partial core.EpochStats) error {
		m, err := Capture(tr, cur, partial)
		if err != nil {
			return err
		}
		return s.Save(m)
	}
}

// Resume restores the store's manifest into a freshly built trainer and
// returns the cursor and partial aggregate to continue from:
//
//	cur, partial, err := runstate.Resume(tr, store)
//	ep, err := tr.ResumeEpoch(cur.NextBatch, partial) // first epoch back
func Resume(tr *core.Trainer, s *Store) (core.Cursor, core.EpochStats, error) {
	m, err := s.Load()
	if err != nil {
		return core.Cursor{}, core.EpochStats{}, err
	}
	if err := m.Restore(tr); err != nil {
		return core.Cursor{}, core.EpochStats{}, err
	}
	return m.Meta.Cursor, m.Meta.Partial, nil
}

func writeU32(w *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Write(buf[:])
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("runstate: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}
