package runstate

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"skipper/internal/faults"
	"skipper/internal/serialize"
	"skipper/internal/tensor"
)

const (
	sessionMagic   = "SKPS"
	sessionVersion = 1

	// SessionSuffix is the filename suffix of a durable session record.
	SessionSuffix = ".skps"
)

// SessionMeta is the JSON head of a streaming-session record: the resume
// coordinates that are cheap to inspect without decoding the membrane blob.
type SessionMeta struct {
	SavedAt time.Time `json:"saved_at"`
	ID      string    `json:"id"`
	// Window is the next window sequence number the session expects.
	Window int `json:"window"`
	// Steps is the timestep cursor (total timesteps advanced since t = 0).
	Steps int `json:"steps"`
	Batch int `json:"batch"`
	// Seed is the session's RNG identity, echoed back so a client can
	// verify it resumed the stream it opened.
	Seed uint64 `json:"seed"`
	// SkipThreshold is the session's activity gate at capture time.
	SkipThreshold int `json:"skip_threshold"`
	// ModelVersion records which serve-side checkpoint generation the
	// session's weights were pinned at — forensics; restore re-pins to the
	// restoring server's current weights.
	ModelVersion uint64 `json:"model_version,omitempty"`
	// WindowsSkipped / WindowsTotal carry the session's skip accounting
	// across a migration so fleet-wide counters stay truthful.
	WindowsSkipped int64 `json:"windows_skipped,omitempty"`
	WindowsTotal   int64 `json:"windows_total,omitempty"`
}

// SessionRecord is one durable snapshot of a streaming session:
//
//	magic "SKPS" | version u32 |
//	meta len u32 | meta JSON |
//	states len u32 | membrane tensors ("SKPT" container) |
//	crc32 (IEEE) of everything before it
//
// It is both the on-disk format (SessionStore) and the wire payload of the
// SessionExport/SessionImport frames, so a record written by a snapshot,
// read back after a restart, or shipped to another replica restores the
// identical membrane bits everywhere.
type SessionRecord struct {
	Meta   SessionMeta
	states []byte // "SKPT" membrane-state container
}

// NewSessionRecord packages a session's membrane state.
func NewSessionRecord(meta SessionMeta, states []tensor.Named) (*SessionRecord, error) {
	var buf bytes.Buffer
	if err := serialize.SaveTensors(&buf, states); err != nil {
		return nil, fmt.Errorf("runstate: capturing session state: %w", err)
	}
	return &SessionRecord{Meta: meta, states: buf.Bytes()}, nil
}

// States decodes the membrane tensors.
func (r *SessionRecord) States() ([]tensor.Named, error) {
	ts, err := serialize.LoadTensors(bytes.NewReader(r.states))
	if err != nil {
		return nil, fmt.Errorf("runstate: restoring session state: %w", err)
	}
	return ts, nil
}

// Encode serialises the record with its trailing checksum — the byte image
// SessionStore writes and SessionExport ships.
func (r *SessionRecord) Encode() ([]byte, error) {
	meta, err := json.Marshal(r.Meta)
	if err != nil {
		return nil, fmt.Errorf("runstate: encoding session meta: %w", err)
	}
	var body bytes.Buffer
	body.WriteString(sessionMagic)
	writeU32(&body, sessionVersion)
	for _, section := range [][]byte{meta, r.states} {
		writeU32(&body, uint32(len(section)))
		body.Write(section)
	}
	writeU32(&body, crc32.ChecksumIEEE(body.Bytes()))
	return body.Bytes(), nil
}

// DecodeSession parses and verifies an encoded session record. Truncation is
// reported as serialize.ErrTruncated so callers can classify a torn write.
func DecodeSession(raw []byte) (*SessionRecord, error) {
	if len(raw) < len(sessionMagic)+4+2*4+4 {
		return nil, fmt.Errorf("%w (session record, %d bytes)", serialize.ErrTruncated, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("runstate: session record checksum mismatch (corrupt)")
	}
	br := bytes.NewReader(body)
	head := make([]byte, len(sessionMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("runstate: reading session magic: %w", err)
	}
	if string(head) != sessionMagic {
		return nil, fmt.Errorf("runstate: bad magic %q (not a session record)", head)
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if ver != sessionVersion {
		return nil, fmt.Errorf("runstate: unsupported session record version %d", ver)
	}
	sections := make([][]byte, 2)
	for i := range sections {
		n, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if int(n) > br.Len() {
			return nil, fmt.Errorf("%w (session section %d of %d bytes exceeds remaining %d)",
				serialize.ErrTruncated, i, n, br.Len())
		}
		sections[i] = make([]byte, n)
		if _, err := io.ReadFull(br, sections[i]); err != nil {
			return nil, fmt.Errorf("runstate: reading session section %d: %w", i, err)
		}
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("runstate: %d trailing bytes after session record", br.Len())
	}
	r := &SessionRecord{states: sections[1]}
	if err := json.Unmarshal(sections[0], &r.Meta); err != nil {
		return nil, fmt.Errorf("runstate: decoding session meta: %w", err)
	}
	return r, nil
}

// ValidSessionID reports whether an id is safe to use as a filename stem:
// non-empty, no separators, no dot-prefix, printable ASCII subset.
func ValidSessionID(id string) bool {
	if id == "" || len(id) > 128 || strings.HasPrefix(id, ".") {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// SessionStore durably persists session records, one atomic file per
// session, in a directory. Same crash contract as the training manifest: a
// crash at any byte boundary leaves the previous complete record.
type SessionStore struct {
	Dir   string
	FS    faults.FS
	Clock faults.Clock
}

// OpenSessions creates (if needed) the session directory and returns its
// store. A nil fs or clock selects the real filesystem and wall clock.
func OpenSessions(dir string, fsys faults.FS, clock faults.Clock) (*SessionStore, error) {
	if fsys == nil {
		fsys = faults.OS
	}
	if clock == nil {
		clock = faults.Wall
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstate: creating session dir: %w", err)
	}
	return &SessionStore{Dir: dir, FS: fsys, Clock: clock}, nil
}

// Path returns a session record's location.
func (s *SessionStore) Path(id string) string {
	return filepath.Join(s.Dir, id+SessionSuffix)
}

// Exists reports whether a record for id is present.
func (s *SessionStore) Exists(id string) bool {
	if !ValidSessionID(id) {
		return false
	}
	_, err := s.FS.Stat(s.Path(id))
	return err == nil
}

// Save stamps and atomically persists a record, replacing any previous one.
func (s *SessionStore) Save(r *SessionRecord) error {
	if !ValidSessionID(r.Meta.ID) {
		return fmt.Errorf("runstate: invalid session id %q", r.Meta.ID)
	}
	r.Meta.SavedAt = s.Clock.Now().UTC()
	data, err := r.Encode()
	if err != nil {
		return err
	}
	return writeAtomic(s.FS, s.Path(r.Meta.ID), data)
}

// Load reads and verifies the record for id.
func (s *SessionStore) Load(id string) (*SessionRecord, error) {
	if !ValidSessionID(id) {
		return nil, fmt.Errorf("runstate: invalid session id %q", id)
	}
	f, err := s.FS.Open(s.Path(id))
	if err != nil {
		return nil, fmt.Errorf("runstate: opening session record: %w", err)
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("runstate: reading session record: %w", err)
	}
	return DecodeSession(raw)
}

// Remove deletes the record for id (no error if absent).
func (s *SessionStore) Remove(id string) error {
	if !ValidSessionID(id) {
		return fmt.Errorf("runstate: invalid session id %q", id)
	}
	if err := s.FS.Remove(s.Path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("runstate: removing session record: %w", err)
	}
	return nil
}

// List returns the ids of all stored sessions, in directory order. It reads
// the real directory (the FS seam has no ReadDir); the store is only ever
// pointed at real directories, fault injection covers the write path.
func (s *SessionStore) List() ([]string, error) {
	ents, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, fmt.Errorf("runstate: listing session dir: %w", err)
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, SessionSuffix) {
			ids = append(ids, strings.TrimSuffix(name, SessionSuffix))
		}
	}
	return ids, nil
}
