package runstate

import (
	"errors"
	"testing"
	"time"

	"skipper/internal/core"
	"skipper/internal/faults"
)

// The parallel runtime must not weaken PR 2's crash-safety story: a run on a
// 4-lane pool that is killed mid-epoch resumes bit-identically — and matches
// a serial run of the same seed, because kernels are bit-identical at every
// pool width. The store runs on the fault injector so a torn post-crash
// write is exercised on the way.
func TestParallelKillResumeBitIdenticalToSerial(t *testing.T) {
	cfg := testCfg()
	const epochs = 2

	// Serial reference, uninterrupted.
	serialCfg := cfg
	serialCfg.Runtime = core.NewRuntime(core.WithThreads(1))
	ref := testTrainer(t, core.BPTT{}, serialCfg)
	refStats := make([]core.EpochStats, 0, epochs)
	for e := 1; e <= epochs; e++ {
		ep, err := ref.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		refStats = append(refStats, ep)
	}

	// Victim: 4-lane pool, snapshots every 2 batches, dies at epoch 2
	// batch 2 (call 6).
	rt4 := core.NewRuntime(core.WithThreads(4))
	defer rt4.Close()
	parCfg := cfg
	parCfg.Runtime = rt4
	inj := faults.NewInjector(nil)
	store, err := Open(t.TempDir(), inj, faults.Fixed(time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	victim := testTrainer(t, crashStrategy{inner: core.BPTT{}, calls: &calls, at: 6}, parCfg)
	Attach(victim, store)
	if _, err := victim.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.TrainEpoch(); !errors.Is(err, errCrash) {
		t.Fatalf("victim should have crashed, got: %v", err)
	}

	// The manifest records the pool width it ran at — forensics, not a
	// restore precondition.
	m, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if m.Meta.Threads != 4 {
		t.Fatalf("manifest threads = %d, want 4", m.Meta.Threads)
	}
	cursorBefore := m.Meta.Cursor

	// A torn write after the crash must leave the last good manifest intact.
	inj.FailWritesAfter(32)
	if err := store.Save(m); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("torn save should fail with ErrInjected, got: %v", err)
	}
	inj.Reset()
	m2, err := store.Load()
	if err != nil {
		t.Fatalf("manifest unreadable after torn write: %v", err)
	}
	if m2.Meta.Cursor != cursorBefore {
		t.Fatalf("torn write moved the cursor: %+v -> %+v", cursorBefore, m2.Meta.Cursor)
	}

	// Survivor: a fresh 4-lane process resumed from the manifest. Its epochs
	// must match the serial uninterrupted reference exactly.
	survivor := testTrainer(t, core.BPTT{}, parCfg)
	Attach(survivor, store)
	cur, partial, err := Resume(survivor, store)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := survivor.ResumeEpoch(cur.NextBatch, partial)
	if err != nil {
		t.Fatal(err)
	}
	if normalize(ep2) != normalize(refStats[1]) {
		t.Fatalf("resumed threads=4 epoch 2 differs from serial reference:\n  resumed: %+v\n  serial:  %+v",
			normalize(ep2), normalize(refStats[1]))
	}
	requireSameWeights(t, ref, survivor, "threads=4 resume vs serial reference")
}
