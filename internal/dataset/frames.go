package dataset

import (
	"math"

	"skipper/internal/encode"
	"skipper/internal/tensor"
)

// frameSource is the shared machinery of the synthetic frame datasets: it
// renders class-conditional images (oriented gratings plus a class-coloured
// blob, with per-sample phase, position jitter, and pixel noise) and rate-
// encodes them into spikes with a Poisson encoder.
type frameSource struct {
	name          string
	classes       int
	c, h, w       int
	trainN, testN int
	seed          uint64
	enc           encode.Poisson
	// latency switches from Poisson rate coding to time-to-first-spike
	// coding (the "-latency" dataset variants).
	latency bool
}

// NewSynthCIFAR10 is the substitute for CIFAR-10: 3×16×16 frames,
// 10 classes.
func NewSynthCIFAR10(seed uint64) Source {
	return &frameSource{name: "SynthCIFAR10", classes: 10, c: 3, h: 16, w: 16,
		trainN: 2048, testN: 512, seed: seed, enc: encode.Poisson{Seed: tensor.DeriveSeed(seed, 0xC1FA)}}
}

// NewSynthCIFAR100 is the substitute for CIFAR-100. The class count is
// scaled to 20 to match the scaled network widths (documented in DESIGN.md);
// the point it preserves is "a harder frame task than CIFAR-10 for the same
// input size".
func NewSynthCIFAR100(seed uint64) Source {
	return &frameSource{name: "SynthCIFAR100", classes: 20, c: 3, h: 16, w: 16,
		trainN: 2048, testN: 512, seed: seed, enc: encode.Poisson{Seed: tensor.DeriveSeed(seed, 0xC1FB)}}
}

// NewSynthImageNet is the substitute used only by the Fig 4 memory-breakdown
// study: larger frames and more classes; accuracy is never reported on it.
func NewSynthImageNet(seed uint64) Source {
	return &frameSource{name: "SynthImageNet", classes: 50, c: 3, h: 32, w: 32,
		trainN: 4096, testN: 512, seed: seed, enc: encode.Poisson{Seed: tensor.DeriveSeed(seed, 0x1346)}}
}

// Name implements Source.
func (s *frameSource) Name() string { return s.name }

// InShape implements Source.
func (s *frameSource) InShape() []int { return []int{s.c, s.h, s.w} }

// Classes implements Source.
func (s *frameSource) Classes() int { return s.classes }

// Len implements Source.
func (s *frameSource) Len(split Split) int {
	if split == Train {
		return s.trainN
	}
	return s.testN
}

// label assigns a deterministic, balanced label to a sample.
func (s *frameSource) label(split Split, idx int) int {
	return idx % s.classes
}

// globalID names a sample across splits for the Poisson encoder streams.
func (s *frameSource) globalID(split Split, idx int) int {
	return int(split)*1_000_000 + idx
}

// render draws the class-conditional frame for one sample into dst
// (length c·h·w, values in [0,1]).
func (s *frameSource) render(dst []float32, split Split, idx int) {
	k := s.label(split, idx)
	rng := tensor.NewRNG(tensor.DeriveSeed(s.seed, uint64(split), uint64(idx), 0xF7A3E))
	theta := math.Pi * float64(k) / float64(s.classes)
	freq := 1.5 + float64(k%4)*0.75
	phase := 2 * math.Pi * rng.Float64()
	// Class-coloured blob with jittered position.
	bx := float64(s.w)*(0.25+0.5*float64(k%3)/2) + 1.5*float64(rng.Norm())
	by := float64(s.h)*(0.25+0.5*float64((k/3)%3)/2) + 1.5*float64(rng.Norm())
	sigma := float64(s.h) / 6
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	for c := 0; c < s.c; c++ {
		gain := 0.5 + 0.5*math.Cos(2*math.Pi*float64(k*(c+1))/float64(s.classes))
		for y := 0; y < s.h; y++ {
			for x := 0; x < s.w; x++ {
				u := (float64(x)*cosT + float64(y)*sinT) / float64(s.w)
				g := math.Sin(2*math.Pi*freq*u + phase)
				dx, dy := float64(x)-bx, float64(y)-by
				blob := math.Exp(-(dx*dx + dy*dy) / (2 * sigma * sigma))
				v := 0.3 + 0.25*g*gain + 0.35*blob*gain + 0.08*float64(rng.Norm())
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				dst[(c*s.h+y)*s.w+x] = float32(v)
			}
		}
	}
}

// Frames materialises raw [0,1] frames for the given indices; exported via
// the concrete type for ANN pre-training, which consumes intensities rather
// than spikes.
func (s *frameSource) Frames(split Split, indices []int) (*tensor.Tensor, []int) {
	b := len(indices)
	frames := tensor.New(b, s.c, s.h, s.w)
	labels := make([]int, b)
	n := s.c * s.h * s.w
	for i, idx := range indices {
		s.render(frames.Data[i*n:(i+1)*n], split, idx)
		labels[i] = s.label(split, idx)
	}
	return frames, labels
}

// SpikeBatch implements Source.
func (s *frameSource) SpikeBatch(split Split, indices []int, T int) ([]*tensor.Tensor, []int) {
	frames, labels := s.Frames(split, indices)
	if s.latency {
		return encode.Latency{}.EncodeTrain(frames, T), labels
	}
	// Dataset ids are small non-negative ints, so widening to uint64 keeps
	// every historical encoding bit-identical.
	ids := make([]uint64, len(indices))
	for i, idx := range indices {
		ids[i] = uint64(s.globalID(split, idx))
	}
	return s.enc.EncodeTrain(frames, ids, T), labels
}

// NewSynthCIFAR10Latency is SynthCIFAR10 under time-to-first-spike coding.
func NewSynthCIFAR10Latency(seed uint64) Source {
	s := NewSynthCIFAR10(seed).(*frameSource)
	s.name = "SynthCIFAR10/latency"
	s.latency = true
	return s
}

// FrameProvider is implemented by frame datasets that can expose raw
// intensities (for ANN pre-training in the hybrid protocol).
type FrameProvider interface {
	Frames(split Split, indices []int) (*tensor.Tensor, []int)
}

var _ FrameProvider = (*frameSource)(nil)
