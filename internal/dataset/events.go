package dataset

import (
	"math"

	"skipper/internal/encode"
	"skipper/internal/tensor"
)

// eventSource synthesises neuromorphic-sensor data: per sample it animates a
// scene over `dur` sensor ticks, converts the intensity sequence to DVS
// events with the frame-difference model, and bins the events into the
// requested number of timesteps. The scene animation is class-conditional,
// so the event stream carries learnable structure, and its motion is
// non-uniform in time, giving the SAM monitor genuine activity variation to
// exploit.
type eventSource struct {
	name          string
	classes       int
	h, w          int
	dur           int
	trainN, testN int
	seed          uint64
	animate       func(s *eventSource, rng *tensor.RNG, class, tick int, frame []float32)
}

// Name implements Source.
func (s *eventSource) Name() string { return s.name }

// InShape implements Source: two polarity channels.
func (s *eventSource) InShape() []int { return []int{2, s.h, s.w} }

// Classes implements Source.
func (s *eventSource) Classes() int { return s.classes }

// Len implements Source.
func (s *eventSource) Len(split Split) int {
	if split == Train {
		return s.trainN
	}
	return s.testN
}

func (s *eventSource) label(idx int) int { return idx % s.classes }

// events synthesises the event list of one sample.
func (s *eventSource) events(split Split, idx int) []encode.Event {
	class := s.label(idx)
	rng := tensor.NewRNG(tensor.DeriveSeed(s.seed, uint64(split), uint64(idx), 0xE7E27))
	frames := make([][]float32, s.dur)
	for tick := 0; tick < s.dur; tick++ {
		f := make([]float32, s.h*s.w)
		// Per-sample jitter comes from a derived stream so every tick sees
		// the same jitter parameters.
		s.animate(s, rng.Derive(1), class, tick, f)
		frames[tick] = f
	}
	return encode.FrameDiffEvents(frames, s.h, s.w, 0.18)
}

// SpikeBatch implements Source.
func (s *eventSource) SpikeBatch(split Split, indices []int, T int) ([]*tensor.Tensor, []int) {
	evs := make([][]encode.Event, len(indices))
	durs := make([]int, len(indices))
	labels := make([]int, len(indices))
	for i, idx := range indices {
		evs[i] = s.events(split, idx)
		durs[i] = s.dur
		labels[i] = s.label(idx)
	}
	return encode.BinEvents(evs, durs, s.h, s.w, T), labels
}

// drawBlob adds a Gaussian blob of the given amplitude at (cx, cy).
func drawBlob(frame []float32, h, w int, cx, cy, sigma, amp float64) {
	r := int(3*sigma) + 1
	x0, x1 := int(cx)-r, int(cx)+r
	y0, y1 := int(cy)-r, int(cy)+r
	for y := y0; y <= y1; y++ {
		if y < 0 || y >= h {
			continue
		}
		for x := x0; x <= x1; x++ {
			if x < 0 || x >= w {
				continue
			}
			dx, dy := float64(x)-cx, float64(y)-cy
			v := amp * math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
			frame[y*w+x] += float32(v)
		}
	}
}

// NewSynthDVSGesture is the substitute for the DVS-Gesture dataset: 11
// motion classes (translations, rotations, oscillations, expansion /
// contraction) of a three-dot cloud, recorded as ON/OFF events.
func NewSynthDVSGesture(seed uint64) Source {
	return &eventSource{
		name: "SynthDVSGesture", classes: 11, h: 16, w: 16, dur: 48,
		trainN: 1408, testN: 352, seed: seed,
		animate: animateGesture,
	}
}

// animateGesture renders the dot cloud of a gesture class at one tick.
func animateGesture(s *eventSource, rng *tensor.RNG, class, tick int, frame []float32) {
	h, w := float64(s.h), float64(s.w)
	cx, cy := w/2+float64(rng.Norm()), h/2+float64(rng.Norm())
	speed := 0.9 + 0.2*rng.Float64()
	p := float64(tick) / float64(s.dur) // progress 0..1
	var ox, oy, rot, scale float64
	scale = 1
	switch class {
	case 0: // wave right
		ox = speed * (p - 0.5) * w * 0.7
	case 1: // wave left
		ox = -speed * (p - 0.5) * w * 0.7
	case 2: // raise up
		oy = -speed * (p - 0.5) * h * 0.7
	case 3: // lower down
		oy = speed * (p - 0.5) * h * 0.7
	case 4: // clockwise rotation
		rot = 2 * math.Pi * p * speed
	case 5: // counter-clockwise rotation
		rot = -2 * math.Pi * p * speed
	case 6: // horizontal oscillation (clapping)
		ox = math.Sin(4*math.Pi*p) * w * 0.25 * speed
	case 7: // vertical oscillation (drumming)
		oy = math.Sin(4*math.Pi*p) * h * 0.25 * speed
	case 8: // expansion
		scale = 0.5 + p*speed
	case 9: // contraction
		scale = 1.5 - p*speed
	default: // diagonal sweep
		ox = speed * (p - 0.5) * w * 0.5
		oy = speed * (p - 0.5) * h * 0.5
	}
	base := []struct{ dx, dy float64 }{{-2.5, 0}, {2.5, 0}, {0, 2.5}}
	for _, d := range base {
		dx := (d.dx*math.Cos(rot) - d.dy*math.Sin(rot)) * scale
		dy := (d.dx*math.Sin(rot) + d.dy*math.Cos(rot)) * scale
		drawBlob(frame, s.h, s.w, cx+ox+dx, cy+oy+dy, 1.2, 0.9)
	}
}

// NewSynthNMNIST is the substitute for N-MNIST: ten procedurally drawn
// digit-like glyphs swept along the sensor's three saccade legs, emitting
// ON/OFF events at the moving edges.
func NewSynthNMNIST(seed uint64) Source {
	return &eventSource{
		name: "SynthNMNIST", classes: 10, h: 16, w: 16, dur: 48,
		trainN: 1280, testN: 320, seed: seed,
		animate: animateSaccade,
	}
}

// glyphStrokes defines each digit class as blob-stroke anchor points on a
// nominal 10×10 canvas (coarse seven-segment-like shapes).
var glyphStrokes = [10][][2]float64{
	{{2, 2}, {7, 2}, {2, 7}, {7, 7}, {2, 4.5}, {7, 4.5}}, // 0: ring
	{{4.5, 1.5}, {4.5, 4}, {4.5, 6.5}},                   // 1: bar
	{{2, 2}, {7, 2}, {7, 4.5}, {2, 7}, {7, 7}},           // 2
	{{2, 2}, {7, 2}, {5, 4.5}, {7, 7}, {2, 7}},           // 3
	{{2, 2}, {2, 4.5}, {7, 4.5}, {7, 2}, {7, 7}},         // 4
	{{7, 2}, {2, 2}, {2, 4.5}, {7, 4.5}, {2, 7}},         // 5
	{{7, 2}, {2, 4.5}, {2, 7}, {7, 7}, {7, 4.5}},         // 6
	{{2, 2}, {7, 2}, {5.5, 4.5}, {4, 7}},                 // 7
	{{2, 2}, {7, 2}, {4.5, 4.5}, {2, 7}, {7, 7}},         // 8
	{{2, 2}, {7, 2}, {7, 4.5}, {2, 4.5}, {7, 7}},         // 9
}

// animateSaccade renders the class glyph translated along the three-leg
// saccade path used by the N-MNIST recording rig.
func animateSaccade(s *eventSource, rng *tensor.RNG, class, tick int, frame []float32) {
	p := float64(tick) / float64(s.dur)
	amp := 2.2 + 0.6*rng.Float64()
	var ox, oy float64
	switch {
	case p < 1.0/3: // leg 1: sweep right-down
		q := p * 3
		ox, oy = amp*q, amp*q*0.5
	case p < 2.0/3: // leg 2: sweep left-down
		q := p*3 - 1
		ox, oy = amp*(1-q)-amp*q*0.2, amp*0.5+amp*q*0.5
	default: // leg 3: sweep back up
		q := p*3 - 2
		ox, oy = amp*(-0.2)*(1-q), amp*(1-q)
	}
	jx, jy := 1.5*float64(rng.Norm()), 1.5*float64(rng.Norm())
	for _, st := range glyphStrokes[class] {
		drawBlob(frame, s.h, s.w, st[0]+3+ox+jx, st[1]+3+oy+jy, 1.0, 0.85)
	}
}
