// Package dataset provides the synthetic stand-ins for the paper's four
// evaluation datasets (CIFAR10, CIFAR100, DVS-Gesture, N-MNIST) plus the
// ImageNet surrogate used by the Fig 4 memory study. The real datasets are
// unavailable in this offline environment; each substitute preserves the
// property the paper's experiments depend on — learnable class structure,
// the frame-vs-event input modality, and (for event data) temporally varying
// spike activity for the SAM monitor to exploit. See DESIGN.md §1.
//
// Every sample is a deterministic function of (dataset seed, split, index),
// so shuffling, recomputation, and re-runs are exactly reproducible.
package dataset

import (
	"fmt"
	"sort"

	"skipper/internal/tensor"
)

// Split selects the train or test partition.
type Split int

const (
	// Train is the training partition.
	Train Split = iota
	// Test is the held-out partition.
	Test
)

// String renders the split name.
func (s Split) String() string {
	if s == Train {
		return "train"
	}
	return "test"
}

// Source produces spike trains for mini-batches. Frame datasets encode via
// Poisson rate coding; event datasets bin synthesised sensor events.
type Source interface {
	// Name identifies the dataset.
	Name() string
	// InShape is the per-sample spike-tensor shape [C,H,W].
	InShape() []int
	// Classes is the number of labels.
	Classes() int
	// Len returns the number of samples in a split.
	Len(split Split) int
	// SpikeBatch materialises a T-timestep spike train (one [B,C,H,W]
	// tensor per step) and labels for the given sample indices.
	SpikeBatch(split Split, indices []int, T int) ([]*tensor.Tensor, []int)
}

// Builder constructs a Source with the given seed.
type Builder func(seed uint64) Source

var registry = map[string]Builder{
	"cifar10":         func(seed uint64) Source { return NewSynthCIFAR10(seed) },
	"cifar100":        func(seed uint64) Source { return NewSynthCIFAR100(seed) },
	"dvsgesture":      func(seed uint64) Source { return NewSynthDVSGesture(seed) },
	"nmnist":          func(seed uint64) Source { return NewSynthNMNIST(seed) },
	"imagenet":        func(seed uint64) Source { return NewSynthImageNet(seed) },
	"cifar10-latency": func(seed uint64) Source { return NewSynthCIFAR10Latency(seed) },
}

// Open constructs a registered dataset by name.
func Open(name string, seed uint64) (Source, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
	}
	return b(seed), nil
}

// Names lists the registered datasets, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Indices returns sample indices [0, n) of a split, optionally shuffled with
// a deterministic permutation derived from (seed, epoch).
func Indices(src Source, split Split, seed uint64, epoch int, shuffle bool) []int {
	n := src.Len(split)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if shuffle {
		rng := tensor.NewRNG(tensor.DeriveSeed(seed, uint64(split), uint64(epoch), 0xB47C4))
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			idx[i], idx[j] = idx[j], idx[i]
		}
	}
	return idx
}

// Batches cuts indices into consecutive batches of size b (the final batch
// may be short).
func Batches(indices []int, b int) [][]int {
	if b <= 0 {
		panic("dataset: non-positive batch size")
	}
	var out [][]int
	for start := 0; start < len(indices); start += b {
		end := start + b
		if end > len(indices) {
			end = len(indices)
		}
		out = append(out, indices[start:end])
	}
	return out
}
