package dataset

import (
	"testing"

	"skipper/internal/tensor"
)

func TestOpenAllRegistered(t *testing.T) {
	for _, name := range Names() {
		src, err := Open(name, 1)
		if err != nil {
			t.Fatalf("Open(%q): %v", name, err)
		}
		if src.Classes() < 2 || src.Len(Train) == 0 || src.Len(Test) == 0 {
			t.Fatalf("%s: degenerate dataset", name)
		}
		if len(src.InShape()) != 3 {
			t.Fatalf("%s: InShape %v", name, src.InShape())
		}
	}
	if _, err := Open("nope", 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestSpikeBatchShapesAndBinary(t *testing.T) {
	for _, name := range Names() {
		src, _ := Open(name, 1)
		const T, B = 6, 3
		train, labels := src.SpikeBatch(Train, []int{0, 1, 2}, T)
		if len(train) != T {
			t.Fatalf("%s: train length %d", name, len(train))
		}
		sh := src.InShape()
		for _, st := range train {
			if st.Dim(0) != B || st.Dim(1) != sh[0] || st.Dim(2) != sh[1] || st.Dim(3) != sh[2] {
				t.Fatalf("%s: step shape %v", name, st.Shape())
			}
			for _, v := range st.Data {
				if v != 0 && v != 1 {
					t.Fatalf("%s: non-binary spike %v", name, v)
				}
			}
		}
		if len(labels) != B {
			t.Fatalf("%s: labels %v", name, labels)
		}
		for _, l := range labels {
			if l < 0 || l >= src.Classes() {
				t.Fatalf("%s: label %d out of range", name, l)
			}
		}
	}
}

func TestSpikeBatchDeterministic(t *testing.T) {
	for _, name := range []string{"cifar10", "dvsgesture"} {
		src, _ := Open(name, 9)
		a, la := src.SpikeBatch(Train, []int{4, 5}, 5)
		b, lb := src.SpikeBatch(Train, []int{4, 5}, 5)
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%s: labels unstable", name)
			}
		}
		for tt := range a {
			for i := range a[tt].Data {
				if a[tt].Data[i] != b[tt].Data[i] {
					t.Fatalf("%s: spikes unstable at t=%d", name, tt)
				}
			}
		}
	}
}

func TestSpikesNonEmpty(t *testing.T) {
	// Every dataset must actually produce spikes (a silent dataset trains
	// nothing and would silently break the accuracy experiments).
	for _, name := range Names() {
		src, _ := Open(name, 3)
		train, _ := src.SpikeBatch(Train, []int{0, 1, 2, 3}, 8)
		var total float32
		for _, st := range train {
			total += tensor.Sum(st)
		}
		if total == 0 {
			t.Fatalf("%s produced zero spikes", name)
		}
	}
}

func TestEventActivityVariesOverTime(t *testing.T) {
	// The SAM mechanism depends on per-timestep activity variation; the
	// event datasets must not have a flat activity profile.
	for _, name := range []string{"dvsgesture", "nmnist"} {
		src, _ := Open(name, 5)
		const T = 16
		train, _ := src.SpikeBatch(Train, []int{0, 1, 2, 3, 4, 5, 6, 7}, T)
		min, max := float32(1e30), float32(-1e30)
		for _, st := range train {
			s := tensor.Sum(st)
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max <= min {
			t.Fatalf("%s: flat activity profile (%v..%v)", name, min, max)
		}
	}
}

func TestLabelsBalanced(t *testing.T) {
	src, _ := Open("cifar10", 1)
	counts := make([]int, src.Classes())
	n := src.Len(Train)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	_, labels := (src.(*frameSource)).Frames(Train, idx)
	for _, l := range labels {
		counts[l]++
	}
	for k, c := range counts {
		if c < n/src.Classes()-1 || c > n/src.Classes()+1 {
			t.Fatalf("class %d count %d not balanced", k, c)
		}
	}
}

func TestFramesInUnitRange(t *testing.T) {
	for _, name := range []string{"cifar10", "cifar100", "imagenet"} {
		src, _ := Open(name, 2)
		frames, _ := src.(FrameProvider).Frames(Train, []int{0, 1, 2, 3})
		for _, v := range frames.Data {
			if v < 0 || v > 1 {
				t.Fatalf("%s: frame value %v outside [0,1]", name, v)
			}
		}
	}
}

func TestClassesDistinguishable(t *testing.T) {
	// Mean frames of different classes must differ substantially — the
	// minimum requirement for learnability.
	raw, _ := Open("cifar10", 1)
	src := raw.(FrameProvider)
	meanOf := func(class int) *tensor.Tensor {
		var idxs []int
		for i := 0; i < 200; i++ {
			if i%10 == class {
				idxs = append(idxs, i)
			}
		}
		frames, _ := src.Frames(Train, idxs)
		n := frames.Len() / frames.Dim(0)
		mean := tensor.New(n)
		for i := 0; i < frames.Dim(0); i++ {
			for j := 0; j < n; j++ {
				mean.Data[j] += frames.Data[i*n+j]
			}
		}
		tensor.Scale(mean, mean, 1/float32(frames.Dim(0)))
		return mean
	}
	m0, m1 := meanOf(0), meanOf(5)
	diff := tensor.New(m0.Len())
	tensor.Sub(diff, m0, m1)
	if tensor.Norm2(diff) < 0.5 {
		t.Fatalf("class means nearly identical (|Δ| = %v)", tensor.Norm2(diff))
	}
}

func TestIndicesShuffleDeterministic(t *testing.T) {
	src, _ := Open("cifar10", 1)
	a := Indices(src, Train, 7, 3, true)
	b := Indices(src, Train, 7, 3, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
	c := Indices(src, Train, 7, 4, true)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different epochs produced the same permutation")
	}
	// Unshuffled must be identity.
	d := Indices(src, Train, 7, 0, false)
	for i := range d {
		if d[i] != i {
			t.Fatal("unshuffled indices not identity")
		}
	}
	// Permutation property: sorted(a) == identity.
	seen := make([]bool, len(a))
	for _, v := range a {
		if v < 0 || v >= len(a) || seen[v] {
			t.Fatal("shuffle is not a permutation")
		}
		seen[v] = true
	}
}

func TestBatches(t *testing.T) {
	idx := []int{0, 1, 2, 3, 4}
	bs := Batches(idx, 2)
	if len(bs) != 3 || len(bs[0]) != 2 || len(bs[2]) != 1 {
		t.Fatalf("Batches = %v", bs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on batch size 0")
		}
	}()
	Batches(idx, 0)
}

func TestSplitString(t *testing.T) {
	if Train.String() != "train" || Test.String() != "test" {
		t.Fatal("Split.String wrong")
	}
}

func TestLatencyVariantFixedSpikeCount(t *testing.T) {
	src, err := Open("cifar10-latency", 1)
	if err != nil {
		t.Fatal(err)
	}
	const T = 12
	train, labels := src.SpikeBatch(Train, []int{0, 1}, T)
	if len(labels) != 2 {
		t.Fatal("labels")
	}
	// Time-to-first-spike coding: every pixel fires at most once.
	perPixel := make([]float32, train[0].Len())
	for _, st := range train {
		for i, v := range st.Data {
			perPixel[i] += v
		}
	}
	for i, c := range perPixel {
		if c > 1 {
			t.Fatalf("pixel %d fired %v times under latency coding", i, c)
		}
	}
	// And the overall train must be sparse relative to Poisson coding.
	poisson, _ := Open("cifar10", 1)
	ptrain, _ := poisson.SpikeBatch(Train, []int{0, 1}, T)
	var latN, poiN float32
	for tt := 0; tt < T; tt++ {
		latN += tensor.Sum(train[tt])
		poiN += tensor.Sum(ptrain[tt])
	}
	if latN >= poiN {
		t.Fatalf("latency coding (%v spikes) should be sparser than rate coding (%v)", latN, poiN)
	}
}

func TestLatencyVariantSameLabels(t *testing.T) {
	a, _ := Open("cifar10", 1)
	b, _ := Open("cifar10-latency", 1)
	_, la := a.SpikeBatch(Train, []int{5, 6, 7}, 4)
	_, lb := b.SpikeBatch(Train, []int{5, 6, 7}, 4)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("latency variant must relabel nothing")
		}
	}
}
