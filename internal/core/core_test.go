package core

import (
	"errors"
	"math"
	"testing"

	"skipper/internal/dataset"
	"skipper/internal/layers"
	"skipper/internal/mem"
	"skipper/internal/models"
	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// tinySetup builds a deterministic small network + dataset batch for
// strategy-equivalence tests.
func tinySetup(t *testing.T, T int) (*layers.Network, dataset.Source, []*tensor.Tensor, []int) {
	t.Helper()
	net, err := models.Build("customnet", models.Options{Width: 0.5, InShape: []int{3, 16, 16}, Classes: 10})
	if err != nil {
		t.Fatal(err)
	}
	data, err := dataset.Open("cifar10", 1)
	if err != nil {
		t.Fatal(err)
	}
	input, labels := data.SpikeBatch(dataset.Train, []int{0, 1}, T)
	return net, data, input, labels
}

func newTestTrainer(t *testing.T, net *layers.Network, data dataset.Source, strat Strategy, cfg Config) *Trainer {
	t.Helper()
	tr, err := NewTrainer(net, data, strat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

func gradsOf(net *layers.Network) []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, p := range net.Params() {
		gs = append(gs, p.G.Clone())
	}
	return gs
}

func maxGradDiff(a, b []*tensor.Tensor) float64 {
	var m float64
	for i := range a {
		for j := range a[i].Data {
			d := math.Abs(float64(a[i].Data[j] - b[i].Data[j]))
			if d > m {
				m = d
			}
		}
	}
	return m
}

// The paper's central exactness property: activation checkpointing replays
// the identical forward, so its gradients match baseline BPTT bit-for-bit.
func TestCheckpointGradientsExactlyMatchBPTT(t *testing.T) {
	const T = 12
	netA, data, input, labels := tinySetup(t, T)
	netB, _, _, _ := tinySetup(t, T)

	cfg := Config{T: T, Batch: 2}
	trA := newTestTrainer(t, netA, data, BPTT{}, cfg)
	trB := newTestTrainer(t, netB, data, Checkpoint{C: 2}, cfg)

	netA.ZeroGrads()
	stA, err := BPTT{}.TrainBatch(trA, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	netB.ZeroGrads()
	stB, err := (Checkpoint{C: 2}).TrainBatch(trB, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	if stA.Loss != stB.Loss {
		t.Fatalf("loss differs: %v vs %v", stA.Loss, stB.Loss)
	}
	if d := maxGradDiff(gradsOf(netA), gradsOf(netB)); d != 0 {
		t.Fatalf("checkpointing must be gradient-exact; max |Δgrad| = %v", d)
	}
	if stB.RecomputedSteps != T-2 {
		// T=12, C=2 → segments [0,6) and [6,12); interiors 5+5 = 10 = T-2.
		t.Fatalf("RecomputedSteps = %d, want %d", stB.RecomputedSteps, T-2)
	}
	if stA.BackwardSteps != T || stB.BackwardSteps != T {
		t.Fatalf("backward steps %d / %d, want %d", stA.BackwardSteps, stB.BackwardSteps, T)
	}
}

// Skipper at p=0 skips nothing, so it too must reproduce BPTT exactly.
func TestSkipperP0MatchesBPTT(t *testing.T) {
	const T = 12
	netA, data, input, labels := tinySetup(t, T)
	netB, _, _, _ := tinySetup(t, T)
	cfg := Config{T: T, Batch: 2}
	trA := newTestTrainer(t, netA, data, BPTT{}, cfg)
	trB := newTestTrainer(t, netB, data, Skipper{C: 2, P: 0}, cfg)

	netA.ZeroGrads()
	if _, err := (BPTT{}).TrainBatch(trA, input, labels); err != nil {
		t.Fatal(err)
	}
	netB.ZeroGrads()
	stB, err := (Skipper{C: 2, P: 0}).TrainBatch(trB, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	if stB.SkippedSteps != 0 {
		t.Fatalf("p=0 skipped %d steps", stB.SkippedSteps)
	}
	if d := maxGradDiff(gradsOf(netA), gradsOf(netB)); d != 0 {
		t.Fatalf("skipper(p=0) must equal BPTT; max |Δgrad| = %v", d)
	}
}

// TBPTT with a single window spanning all of T is exactly BPTT.
func TestTBPTTFullWindowMatchesBPTT(t *testing.T) {
	const T = 12
	netA, data, input, labels := tinySetup(t, T)
	netB, _, _, _ := tinySetup(t, T)
	cfg := Config{T: T, Batch: 2}
	trA := newTestTrainer(t, netA, data, BPTT{}, cfg)
	trB := newTestTrainer(t, netB, data, TBPTT{Window: T}, cfg)

	netA.ZeroGrads()
	if _, err := (BPTT{}).TrainBatch(trA, input, labels); err != nil {
		t.Fatal(err)
	}
	netB.ZeroGrads()
	if _, err := (TBPTT{Window: T}).TrainBatch(trB, input, labels); err != nil {
		t.Fatal(err)
	}
	if d := maxGradDiff(gradsOf(netA), gradsOf(netB)); d != 0 {
		t.Fatalf("tbptt(trW=T) must equal BPTT; max |Δgrad| = %v", d)
	}
}

func TestSkipperActuallySkips(t *testing.T) {
	const T = 18
	net, data, input, labels := tinySetup(t, T)
	cfg := Config{T: T, Batch: 2}
	strat := Skipper{C: 2, P: 30}
	tr := newTestTrainer(t, net, data, strat, cfg)
	net.ZeroGrads()
	st, err := strat.TrainBatch(tr, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedSteps == 0 {
		t.Fatal("skipper(p=30) skipped nothing")
	}
	if st.RecomputedSteps+st.SkippedSteps != T-2 {
		t.Fatalf("recomputed %d + skipped %d != %d interior steps", st.RecomputedSteps, st.SkippedSteps, T-2)
	}
	// Roughly p% of interior steps skipped (percentile property).
	frac := float64(st.SkippedSteps) / float64(T-2)
	if frac > 0.45 {
		t.Fatalf("skip fraction %v far exceeds p=30%%", frac)
	}
	// Gradients still flow.
	var norm float64
	for _, p := range net.Params() {
		norm += float64(tensor.Norm2(p.G))
	}
	if norm == 0 {
		t.Fatal("skipper produced zero gradients")
	}
}

// Peak activation memory: checkpointing must beat baseline, and skipper must
// beat plain checkpointing (paper Figs. 7 and 12).
func TestActivationMemoryOrdering(t *testing.T) {
	const T = 18
	measure := func(strat Strategy) int64 {
		net, data, input, labels := tinySetup(t, T)
		dev := mem.Unlimited()
		cfg := Config{T: T, Batch: 2, Device: dev}
		tr := newTestTrainer(t, net, data, strat, cfg)
		net.ZeroGrads()
		if _, err := tr.Strat.TrainBatch(tr, input, labels); err != nil {
			t.Fatal(err)
		}
		return dev.PeakBy(mem.Activations)
	}
	base := measure(BPTT{})
	ckpt := measure(Checkpoint{C: 3})
	skip := measure(Skipper{C: 3, P: 30})
	if ckpt >= base {
		t.Fatalf("checkpoint peak %d >= baseline %d", ckpt, base)
	}
	if skip >= ckpt {
		t.Fatalf("skipper peak %d >= checkpoint %d", skip, ckpt)
	}
}

func TestTBPTTMemoryBelowBaseline(t *testing.T) {
	const T = 18
	measure := func(strat Strategy) int64 {
		net, data, input, labels := tinySetup(t, T)
		dev := mem.Unlimited()
		cfg := Config{T: T, Batch: 2, Device: dev}
		tr := newTestTrainer(t, net, data, strat, cfg)
		net.ZeroGrads()
		if _, err := tr.Strat.TrainBatch(tr, input, labels); err != nil {
			t.Fatal(err)
		}
		return dev.PeakBy(mem.Activations)
	}
	base := measure(BPTT{})
	trunc := measure(TBPTT{Window: 6})
	if trunc >= base {
		t.Fatalf("tbptt peak %d >= baseline %d", trunc, base)
	}
}

// Under a tight budget the baseline OOMs while checkpointing fits — the
// microcosm of paper Fig. 14.
func TestBudgetBaselineOOMsCheckpointFits(t *testing.T) {
	const T = 18
	run := func(strat Strategy, budget int64) error {
		net, data, input, labels := tinySetup(t, T)
		dev := mem.NewDevice(mem.Config{Budget: budget})
		cfg := Config{T: T, Batch: 2, Device: dev}
		tr, err := NewTrainer(net, data, strat, cfg)
		if err != nil {
			return err
		}
		defer tr.Close()
		net.ZeroGrads()
		_, err = strat.TrainBatch(tr, input, labels)
		return err
	}
	// Measure both peaks on unlimited devices and pick a budget between
	// them: checkpointing fits, the baseline cannot.
	peakOf := func(strat Strategy) int64 {
		net, data, input, labels := tinySetup(t, T)
		dev := mem.Unlimited()
		tr := newTestTrainer(t, net, data, strat, Config{T: T, Batch: 2, Device: dev})
		net.ZeroGrads()
		if _, err := strat.TrainBatch(tr, input, labels); err != nil {
			t.Fatal(err)
		}
		return dev.PeakReserved()
	}
	ckptPeak, basePeak := peakOf(Checkpoint{C: 3}), peakOf(BPTT{})
	if ckptPeak >= basePeak {
		t.Fatalf("precondition: checkpoint peak %d >= baseline %d", ckptPeak, basePeak)
	}
	budget := (ckptPeak + basePeak) / 2

	if err := run(Checkpoint{C: 3}, budget); err != nil {
		t.Fatalf("checkpoint should fit in %d: %v", budget, err)
	}
	err := run(BPTT{}, budget)
	if !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("baseline should OOM in %d, got %v", budget, err)
	}
}

func TestDeviceBalancedAfterTraining(t *testing.T) {
	const T = 12
	net, data, _, _ := tinySetup(t, T)
	dev := mem.Unlimited()
	cfg := Config{T: T, Batch: 2, Device: dev, MaxBatchesPerEpoch: 2}
	tr, err := NewTrainer(net, data, Skipper{C: 2, P: 20}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if got := dev.Allocated(); got != 0 {
		t.Fatalf("device leaks %d bytes after Close", got)
	}
	tr.Close() // double close is safe
}

func TestTrainEpochAndEvaluate(t *testing.T) {
	const T = 10
	net, data, _, _ := tinySetup(t, T)
	cfg := Config{T: T, Batch: 4, MaxBatchesPerEpoch: 3}
	tr := newTestTrainer(t, net, data, BPTT{}, cfg)
	ep, err := tr.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if ep.Batches != 3 || ep.N != 12 {
		t.Fatalf("epoch batches=%d n=%d", ep.Batches, ep.N)
	}
	if ep.MeanLoss() <= 0 || math.IsNaN(ep.MeanLoss()) {
		t.Fatalf("mean loss %v", ep.MeanLoss())
	}
	if ep.Accuracy() < 0 || ep.Accuracy() > 1 {
		t.Fatalf("accuracy %v", ep.Accuracy())
	}
	loss, acc, err := tr.Evaluate(2)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || acc < 0 || acc > 1 {
		t.Fatalf("eval loss=%v acc=%v", loss, acc)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	const T = 10
	net, data, _, _ := tinySetup(t, T)
	cfg := Config{T: T, Batch: 8, LR: 2e-3, MaxBatchesPerEpoch: 8}
	tr := newTestTrainer(t, net, data, Skipper{C: 2, P: 15}, cfg)
	first, err := tr.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	var last EpochStats
	for e := 0; e < 4; e++ {
		last, err = tr.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.MeanLoss() >= first.MeanLoss() {
		t.Fatalf("loss did not decrease: %v -> %v", first.MeanLoss(), last.MeanLoss())
	}
}

func TestDeterministicTraining(t *testing.T) {
	const T = 10
	run := func() float64 {
		net, data, _, _ := tinySetup(t, T)
		cfg := Config{T: T, Batch: 4, Seed: 99, MaxBatchesPerEpoch: 2}
		tr := newTestTrainer(t, net, data, Checkpoint{C: 2}, cfg)
		ep, err := tr.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		return ep.Loss
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("training not deterministic: %v vs %v", a, b)
	}
}

func TestStrategyValidation(t *testing.T) {
	net, data, _, _ := tinySetup(t, 12) // customnet L_n = 4
	cases := []struct {
		strat Strategy
		cfg   Config
		ok    bool
	}{
		{BPTT{}, Config{T: 12, Batch: 1}, true},
		{BPTT{}, Config{T: 3, Batch: 1}, false},            // T <= L_n
		{Checkpoint{C: 2}, Config{T: 12, Batch: 1}, true},  // seg 6 > 4
		{Checkpoint{C: 3}, Config{T: 12, Batch: 1}, false}, // seg 4 == L_n
		{Checkpoint{C: 0}, Config{T: 12, Batch: 1}, false},
		{Checkpoint{C: 13}, Config{T: 12, Batch: 1}, false},
		{Skipper{C: 2, P: 30}, Config{T: 12, Batch: 1}, true},  // bound 33.3
		{Skipper{C: 2, P: 50}, Config{T: 12, Batch: 1}, false}, // above Eq.7
		{Skipper{C: 2, P: -1}, Config{T: 12, Batch: 1}, false},
		{TBPTT{Window: 6}, Config{T: 12, Batch: 1}, true},
		{TBPTT{Window: 4}, Config{T: 12, Batch: 1}, false}, // <= L_n
		{TBPTT{Window: 0}, Config{T: 12, Batch: 1}, false},
		{TBPTT{Window: 13}, Config{T: 12, Batch: 1}, false},
		{&TBPTTLBP{Window: 6, LocalAt: []int{1}}, Config{T: 12, Batch: 1}, true},
		{&TBPTTLBP{Window: 6, LocalAt: []int{99}}, Config{T: 12, Batch: 1}, false},
	}
	for i, c := range cases {
		tr, err := NewTrainer(net, data, c.strat, c.cfg)
		if c.ok && err != nil {
			t.Fatalf("case %d (%s): unexpected error %v", i, c.strat.Name(), err)
		}
		if !c.ok && err == nil {
			tr.Close()
			t.Fatalf("case %d (%s): expected validation error", i, c.strat.Name())
		}
		if tr != nil && err == nil {
			tr.Close()
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if (Config{T: 0, Batch: 1}).Validate() == nil {
		t.Fatal("T=0 must fail")
	}
	if (Config{T: 5, Batch: 0}).Validate() == nil {
		t.Fatal("batch=0 must fail")
	}
}

func TestCheckpointMath(t *testing.T) {
	ts := CheckpointTimes(20, 2)
	if len(ts) != 2 || ts[0] != 0 || ts[1] != 10 {
		t.Fatalf("CheckpointTimes = %v (paper example: t=0 and t=10)", ts)
	}
	s0, e0 := SegmentBounds(20, 2, 0)
	s1, e1 := SegmentBounds(20, 2, 1)
	if s0 != 0 || e0 != 10 || s1 != 10 || e1 != 20 {
		t.Fatalf("segments [%d,%d) [%d,%d)", s0, e0, s1, e1)
	}
	// Remainder goes to the last segment.
	_, eLast := SegmentBounds(23, 2, 1)
	if eLast != 23 {
		t.Fatalf("last segment end %d, want 23", eLast)
	}
}

func TestMaxSkipPercentEq7(t *testing.T) {
	// Eq. 7: p <= (1 - Ln/(T/C))·100. VGG5 at T=100, C=4, Ln=6 -> 76%.
	if got := MaxSkipPercent(100, 4, 6); math.Abs(got-76) > 1e-9 {
		t.Fatalf("MaxSkipPercent = %v, want 76", got)
	}
	if got := MaxSkipPercent(10, 5, 6); got != 0 {
		t.Fatalf("infeasible config should clamp to 0, got %v", got)
	}
	if got := MaxSkipPercent(0, 1, 1); got != 0 {
		t.Fatalf("T=0 should give 0, got %v", got)
	}
}

func TestSAMMetrics(t *testing.T) {
	net, _, input, _ := tinySetup(t, 6)
	states := net.ForwardStep(input[0], nil)
	for _, m := range []SAMMetric{SpikeSum{}, WeightedSpikeSum{}, MembraneL2{}} {
		s := m.Score(net, states)
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("%s score %v", m.Name(), s)
		}
	}
	// SpikeSum must equal the network's own spike count.
	if got, want := (SpikeSum{}).Score(net, states), net.SpikeSum(states); got != want {
		t.Fatalf("SpikeSum %v != net.SpikeSum %v", got, want)
	}
	for _, name := range []string{"", "spikesum", "weighted", "membranel2"} {
		if _, err := SAMByName(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := SAMByName("bogus"); err == nil {
		t.Fatal("unknown SAM metric must error")
	}
}

func TestSkipperAlternativeMetrics(t *testing.T) {
	const T = 18
	for _, m := range []SAMMetric{WeightedSpikeSum{}, MembraneL2{}} {
		net, data, input, labels := tinySetup(t, T)
		strat := Skipper{C: 2, P: 25, Metric: m}
		tr := newTestTrainer(t, net, data, strat, Config{T: T, Batch: 2})
		net.ZeroGrads()
		st, err := strat.TrainBatch(tr, input, labels)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if st.SkippedSteps == 0 {
			t.Fatalf("%s: no steps skipped", m.Name())
		}
	}
}

func TestTBPTTLBPTrains(t *testing.T) {
	const T = 12
	net, data, input, labels := tinySetup(t, T)
	strat := &TBPTTLBP{Window: 6, LocalAt: []int{1}}
	tr := newTestTrainer(t, net, data, strat, Config{T: T, Batch: 2})
	t.Cleanup(strat.Close)
	net.ZeroGrads()
	st, err := strat.TrainBatch(tr, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(st.Loss) || st.Loss <= 0 {
		t.Fatalf("loss = %v", st.Loss)
	}
	if len(strat.aux) != 1 || strat.aux[1] == nil {
		t.Fatal("aux classifier not built")
	}
	var norm float64
	for _, p := range net.Params() {
		norm += float64(tensor.Norm2(p.G))
	}
	if norm == 0 {
		t.Fatal("no gradients")
	}
}

// Gradient blocking: with only a top-loss injection and a boundary at layer
// k, every parameter at or below layer k must receive zero gradient.
func TestLBPGradientBlocking(t *testing.T) {
	nrn := snn.Params{Leak: 0.9, Threshold: 0.4} // low threshold: plenty of spikes
	net := layers.NewNetwork("blocky", []int{2, 8, 8},
		layers.NewSpikingConv2D("low", 4, 3, 1, 1, nrn, snn.Triangle{}),
		layers.NewSpikingConv2D("high", 4, 3, 1, 1, nrn, snn.Triangle{}),
		layers.NewReadout("out", 3, nrn),
	)
	if err := net.Build(tensor.NewRNG(5)); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 2, 8, 8)
	tensor.NewRNG(6).FillUniform(x, 0, 2)
	states := net.ForwardStep(x, nil)
	dl := tensor.New(2, 3)
	dl.Fill(0.3)

	lb := &TBPTTLBP{Window: 4, LocalAt: []int{0}}
	net.ZeroGrads()
	lb.backwardStepBlocked(net, x, states, map[int]*tensor.Tensor{2: dl}, nil, map[int]bool{0: true})
	ps := net.Params()
	// Layer "low" (params 0,1) must have zero grads; "high" and "out" not.
	if tensor.Norm2(ps[0].G) != 0 || tensor.Norm2(ps[1].G) != 0 {
		t.Fatal("gradient crossed the local boundary")
	}
	if tensor.Norm2(ps[2].G) == 0 {
		t.Fatal("block above the boundary received no gradient")
	}
}

func TestStrategyNames(t *testing.T) {
	if (BPTT{}).Name() != "bptt" {
		t.Fatal("bptt name")
	}
	if (Checkpoint{C: 4}).Name() != "ckpt(C=4)" {
		t.Fatal("ckpt name")
	}
	if (Skipper{C: 4, P: 70}).Name() != "skipper(C=4,p=70)" {
		t.Fatal("skipper name")
	}
	if (TBPTT{Window: 25}).Name() != "tbptt(trW=25)" {
		t.Fatal("tbptt name")
	}
}

// Recompute counts must reflect skipping: skipper recomputes fewer steps
// than plain checkpointing at the same C (the source of its speedup).
func TestSkipperRecomputesLessThanCheckpoint(t *testing.T) {
	const T = 18
	netA, data, input, labels := tinySetup(t, T)
	trA := newTestTrainer(t, netA, data, Checkpoint{C: 2}, Config{T: T, Batch: 2})
	netA.ZeroGrads()
	stA, err := (Checkpoint{C: 2}).TrainBatch(trA, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	netB, _, _, _ := tinySetup(t, T)
	trB := newTestTrainer(t, netB, data, Skipper{C: 2, P: 30}, Config{T: T, Batch: 2})
	netB.ZeroGrads()
	stB, err := (Skipper{C: 2, P: 30}).TrainBatch(trB, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	if stB.RecomputedSteps >= stA.RecomputedSteps {
		t.Fatalf("skipper recomputed %d >= checkpoint %d", stB.RecomputedSteps, stA.RecomputedSteps)
	}
	if stB.BackwardSteps >= stA.BackwardSteps {
		t.Fatalf("skipper backward %d >= checkpoint %d", stB.BackwardSteps, stA.BackwardSteps)
	}
}
