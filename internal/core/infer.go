package core

import (
	"fmt"

	"skipper/internal/layers"
	"skipper/internal/tensor"
)

// InferOptions configures an inference-only forward pass.
type InferOptions struct {
	// EarlyExit enables the spike-activity exit rule: a sample stops
	// contributing to the horizon once its output-layer argmax has been
	// stable for K consecutive timesteps. This is the inference-time
	// counterpart of the paper's spike-activity skip proxy (Eq. 4/5): where
	// training drops timesteps whose activity says they carry little
	// gradient, inference stops stepping once the readout's decision has
	// demonstrably settled.
	EarlyExit bool
	// K is the stability window: the number of consecutive timesteps the
	// readout argmax must agree before a sample's prediction freezes.
	// Zero means DefaultExitK.
	K int
	// MinMargin is the confidence gate: a streak step counts only while
	// the accumulated leader's relative margin over the runner-up,
	// (top1 − top2) / (|top1| + |top2|), is at least this value. Ambiguous
	// samples whose leadership is churning never clear it and simply run
	// the full horizon. Zero means DefaultExitMargin; negative disables.
	MinMargin float64
	// MinSteps is the warm-up floor: no stability is counted before this
	// many timesteps have run. Input activity needs L_n steps to traverse
	// the stateful layers, and for a few multiples of L_n after that the
	// readout is dominated by the bias-driven transient rather than the
	// signal, so earlier argmax streaks freeze spuriously. Zero means
	// 3·StatefulCount, the observed settling horizon; at the paper's
	// horizons (T = 100–400, L_n ≈ 4–10) that still leaves most of the
	// timesteps skippable.
	MinSteps int
}

// DefaultExitK is the stability window used when InferOptions.K is zero.
const DefaultExitK = 5

// DefaultExitMargin is the relative-margin gate used when
// InferOptions.MinMargin is zero.
const DefaultExitMargin = 0.1

func (o InferOptions) k() int {
	if o.K <= 0 {
		return DefaultExitK
	}
	return o.K
}

func (o InferOptions) minMargin() float64 {
	if o.MinMargin == 0 {
		return DefaultExitMargin
	}
	if o.MinMargin < 0 {
		return 0
	}
	return o.MinMargin
}

// InferResult reports one inference batch. The decision rule is rate-based:
// a sample's class is the argmax of its time-averaged readout output, the
// quantity the exit rule watches for stability. (This differs from the
// trainer's Evaluate, which reads the final-step membrane only; the running
// average is the natural serving-time readout because it is meaningful at
// any prefix of the horizon.)
type InferResult struct {
	// Preds holds the per-sample predicted class, frozen at the sample's
	// exit step (the final step when no exit triggered).
	Preds []int
	// ExitSteps holds the 0-based timestep at which each sample's
	// prediction froze; T-1 for samples that ran the full horizon.
	ExitSteps []int
	// Logits is [B, classes]: each row is the time-averaged readout output
	// over the sample's executed steps, captured at its exit step.
	Logits *tensor.Tensor
	// T is the configured horizon, StepsRun the timesteps actually
	// executed for the batch (the whole batch steps until every sample has
	// frozen, so StepsRun = max(ExitSteps)+1).
	T, StepsRun int
}

// StepsSaved returns the batch-level timesteps the early exit avoided
// executing: T − StepsRun. This is the honest compute saving — samples that
// freeze early still ride along until the slowest sample in the batch exits.
func (r InferResult) StepsSaved() int { return r.T - r.StepsRun }

// EarlyExits counts the samples whose prediction froze before the final
// timestep.
func (r InferResult) EarlyExits() int {
	n := 0
	for _, e := range r.ExitSteps {
		if e < r.T-1 {
			n++
		}
	}
	return n
}

// Infer runs an inference-only forward pass over a pre-materialised T-step
// spike train. See InferStream.
func Infer(net *layers.Network, input []*tensor.Tensor, opts InferOptions) InferResult {
	return InferStream(net, len(input), func(t int) *tensor.Tensor { return input[t] }, opts)
}

// InferStream runs an inference-only forward pass, pulling each timestep's
// input spikes from step (called with t = 0..T−1 in order, at most once
// each). Unlike the training strategies it stores no activation records:
// only the rolling per-layer state survives between timesteps, so the
// footprint is O(1) in T. With opts.EarlyExit the pass stops as soon as
// every sample's readout argmax has been stable for K consecutive steps,
// which also skips the spike generation for the remaining timesteps.
//
// The pass mutates only per-layer scratch buffers, never parameters, so it
// is safe to interleave with other read-only uses of net — but NOT with
// concurrent forward passes on the same network.
func InferStream(net *layers.Network, T int, step func(t int) *tensor.Tensor, opts InferOptions) InferResult {
	if T <= 0 {
		panic(fmt.Sprintf("core: InferStream with T=%d", T))
	}
	k := opts.k()
	minMargin := opts.minMargin()
	minSteps := opts.MinSteps
	if minSteps <= 0 {
		minSteps = 3 * net.StatefulCount()
	}
	var (
		states  []*layers.LayerState
		res     InferResult
		acc     *tensor.Tensor // running sum of readout outputs
		lastArg []int
		streak  []int
		frozen  []bool
		nFrozen int
	)
	res.T = T
	for t := 0; t < T; t++ {
		states = net.ForwardStep(step(t), states)
		logits := net.Logits(states)
		res.StepsRun = t + 1
		b := logits.Dim(0)
		classes := logits.Dim(1)
		if res.Preds == nil {
			res.Preds = make([]int, b)
			res.ExitSteps = make([]int, b)
			res.Logits = tensor.New(logits.Shape()...)
			acc = tensor.New(logits.Shape()...)
			lastArg = make([]int, b)
			streak = make([]int, b)
			frozen = make([]bool, b)
			for i := range lastArg {
				lastArg[i] = -1
			}
		}
		tensor.AXPY(acc, 1, logits)
		args := tensor.Argmax(acc)
		inst := tensor.Argmax(logits)
		for i := 0; i < b; i++ {
			if frozen[i] {
				continue
			}
			// A step extends the streak only when the instantaneous readout
			// confirms the standing accumulated leader (a challenger class
			// winning individual timesteps means the decision has not
			// settled, even while the old leader still tops the running
			// sum) AND the leader's accumulated margin clears the
			// confidence gate (churning leadership keeps margins thin).
			confirm := args[i] == inst[i] && args[i] == lastArg[i] &&
				relMargin(acc.Data[i*classes:(i+1)*classes]) >= minMargin
			switch {
			case t < minSteps:
				// Warm-up: track the leader but accrue no stability.
				lastArg[i] = args[i]
				streak[i] = 0
			case confirm:
				streak[i]++
			default:
				lastArg[i] = args[i]
				streak[i] = 0
			}
			final := t == T-1
			if final || (opts.EarlyExit && streak[i] >= k) {
				frozen[i] = true
				nFrozen++
				res.Preds[i] = args[i]
				res.ExitSteps[i] = t
				scale := 1 / float32(t+1)
				for c := 0; c < classes; c++ {
					res.Logits.Data[i*classes+c] = acc.Data[i*classes+c] * scale
				}
			}
		}
		if opts.EarlyExit && nFrozen == b {
			break
		}
	}
	return res
}

// relMargin returns the accumulated leader's relative margin over the
// runner-up for one sample's class row: (top1 − top2) / (|top1| + |top2|).
func relMargin(row []float32) float64 {
	if len(row) < 2 {
		return 1
	}
	top1, top2 := float32(mathInf), float32(mathInf)
	for _, v := range row {
		if v > top1 {
			top2, top1 = top1, v
		} else if v > top2 {
			top2 = v
		}
	}
	den := float64(abs32(top1)) + float64(abs32(top2))
	if den == 0 {
		return 0
	}
	return float64(top1-top2) / den
}

const mathInf = float32(-3.4e38)

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
