package core

import (
	"math"
	"strings"
	"testing"

	"skipper/internal/layers"
	"skipper/internal/tensor"
)

// poisonStrategy wraps an inner strategy and corrupts one weight gradient
// after the calls the hit predicate selects (1-based call numbering) — a
// deterministic stand-in for a numerically diverging step.
type poisonStrategy struct {
	inner Strategy
	calls *int
	hit   func(call int) bool
	value float32
}

func (p poisonStrategy) Name() string { return p.inner.Name() }
func (p poisonStrategy) Validate(cfg Config, net *layers.Network) error {
	return p.inner.Validate(cfg, net)
}
func (p poisonStrategy) TrainBatch(tr *Trainer, input []*tensor.Tensor, labels []int) (StepStats, error) {
	st, err := p.inner.TrainBatch(tr, input, labels)
	*p.calls++
	if err == nil && p.hit(*p.calls) {
		tr.Net.Params()[0].G.Data[0] = p.value
	}
	return st, err
}

func guardCfg() Config {
	return Config{T: 6, Batch: 2, MaxBatchesPerEpoch: 4, Seed: 7, GuardRetries: 3}
}

// requireFinite fails if any weight is NaN/Inf.
func requireFinite(t *testing.T, net *layers.Network) {
	t.Helper()
	for _, p := range net.Params() {
		for j, w := range p.W.Data {
			if math.IsNaN(float64(w)) || math.IsInf(float64(w), 0) {
				t.Fatalf("non-finite weight %s[%d] = %v after rollback", p.Name, j, w)
			}
		}
	}
}

// The guard's central property: a run that diverges once must roll back,
// halve the rate, replay, and finish with exactly the state of a run that
// used the halved rate from the start — because the rollback restores the
// iteration counter, every RNG stream replays identically.
func TestDivergenceGuardRollbackMatchesCleanHalvedRun(t *testing.T) {
	cfg := guardCfg()

	netA, data, _, _ := tinySetup(t, cfg.T)
	calls := 0
	nan := float32(math.NaN())
	strat := poisonStrategy{inner: BPTT{}, calls: &calls, hit: func(c int) bool { return c == 3 }, value: nan}
	trA := newTestTrainer(t, netA, data, strat, cfg)
	epA, err := trA.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if epA.Divergences != 1 {
		t.Fatalf("Divergences = %d, want 1", epA.Divergences)
	}
	log := trA.DivergenceLog()
	if len(log) != 1 {
		t.Fatalf("divergence log has %d events, want 1", len(log))
	}
	if !strings.Contains(log[0].Reason, "non-finite") {
		t.Fatalf("reason = %q, want a non-finite trip", log[0].Reason)
	}
	if log[0].Epoch != 1 || log[0].Batch != 2 {
		t.Fatalf("event at epoch %d batch %d, want epoch 1 batch 2", log[0].Epoch, log[0].Batch)
	}
	if trA.LRScale() != 0.5 {
		t.Fatalf("LRScale = %v, want 0.5 after one halving", trA.LRScale())
	}
	requireFinite(t, netA)

	// Control: the same run with the halved rate in force from the start.
	netB, _, _, _ := tinySetup(t, cfg.T)
	trB := newTestTrainer(t, netB, data, BPTT{}, cfg)
	trB.SetLRScale(0.5)
	epB, err := trB.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if epB.Divergences != 0 {
		t.Fatalf("control run diverged %d times", epB.Divergences)
	}
	if epA.Loss != epB.Loss || epA.Correct != epB.Correct || epA.N != epB.N ||
		epA.Batches != epB.Batches || epA.GradNorm != epB.GradNorm ||
		epA.ForwardSteps != epB.ForwardSteps || epA.BackwardSteps != epB.BackwardSteps {
		t.Fatalf("replayed epoch diverged from clean halved run:\n  rolled back: %+v\n  clean:       %+v", epA.StepStats, epB.StepStats)
	}
	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("weight %s[%d]: rolled-back %v != clean %v", pa[i].Name, j, pa[i].W.Data[j], pb[i].W.Data[j])
			}
		}
	}
}

func TestDivergenceGuardGradNormThreshold(t *testing.T) {
	cfg := guardCfg()
	// Well above the healthy norms of this setup (~20) so only the
	// poisoned step trips.
	cfg.GuardGradNorm = 1e4

	net, data, _, _ := tinySetup(t, cfg.T)
	calls := 0
	strat := poisonStrategy{inner: BPTT{}, calls: &calls, hit: func(c int) bool { return c == 2 }, value: 1e9}
	tr := newTestTrainer(t, net, data, strat, cfg)
	ep, err := tr.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if ep.Divergences != 1 {
		t.Fatalf("Divergences = %d, want 1", ep.Divergences)
	}
	log := tr.DivergenceLog()
	if len(log) != 1 || !strings.Contains(log[0].Reason, "exceeds") {
		t.Fatalf("want one explosion event, got %+v", log)
	}
	requireFinite(t, net)
}

func TestDivergenceGuardExhaustsRetries(t *testing.T) {
	cfg := guardCfg()
	cfg.GuardRetries = 2

	net, data, _, _ := tinySetup(t, cfg.T)
	calls := 0
	nan := float32(math.NaN())
	strat := poisonStrategy{inner: BPTT{}, calls: &calls, hit: func(int) bool { return true }, value: nan}
	tr := newTestTrainer(t, net, data, strat, cfg)
	_, err := tr.TrainEpoch()
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("want retry-exhaustion error, got: %v", err)
	}
	if got := len(tr.DivergenceLog()); got != 2 {
		t.Fatalf("consumed %d retries, want 2", got)
	}
}

// With the guard disabled the seed behaviour is untouched: the poisoned step
// flows through without rollback or error.
func TestDivergenceGuardDisabled(t *testing.T) {
	cfg := guardCfg()
	cfg.GuardRetries = 0

	net, data, _, _ := tinySetup(t, cfg.T)
	calls := 0
	nan := float32(math.NaN())
	strat := poisonStrategy{inner: BPTT{}, calls: &calls, hit: func(c int) bool { return c == 1 }, value: nan}
	tr := newTestTrainer(t, net, data, strat, cfg)
	ep, err := tr.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if ep.Divergences != 0 || len(tr.DivergenceLog()) != 0 {
		t.Fatal("disabled guard must not record events")
	}
}

// OnSnapshot fires on the configured cadence with cursors that name the next
// unit of work, ending with the next-epoch cursor.
func TestSnapshotCursorCadence(t *testing.T) {
	cfg := guardCfg()
	cfg.SnapshotEvery = 2
	var cursors []Cursor
	cfg.OnSnapshot = func(cur Cursor, partial EpochStats) error {
		cursors = append(cursors, cur)
		return nil
	}

	net, data, _, _ := tinySetup(t, cfg.T)
	tr := newTestTrainer(t, net, data, BPTT{}, cfg)
	if _, err := tr.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	want := []Cursor{
		{NextEpoch: 1, NextBatch: 0, Iteration: 0},
		{NextEpoch: 1, NextBatch: 2, Iteration: 2},
		{NextEpoch: 2, NextBatch: 0, Iteration: 4},
	}
	if len(cursors) != len(want) {
		t.Fatalf("got %d snapshots %+v, want %d", len(cursors), cursors, len(want))
	}
	for i := range want {
		if cursors[i] != want[i] {
			t.Fatalf("snapshot %d cursor = %+v, want %+v", i, cursors[i], want[i])
		}
	}
}
