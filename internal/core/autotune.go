package core

import (
	"fmt"
	"math"

	"skipper/internal/layers"
)

// Plan is AutoTune's recommendation: the cheapest-approximation strategy
// whose predicted footprint fits the budget, along with the model's
// prediction for transparency.
type Plan struct {
	// Strategy is ready to hand to NewTrainer.
	Strategy Strategy
	// C and P echo the chosen knobs (0 for plain BPTT).
	C int
	P float64
	// PredictedPeak is the analytic footprint estimate in bytes.
	PredictedPeak int64
	// Reason explains the choice in one line.
	Reason string
}

// AutoTune operationalises the paper's design rules (Sec. V-A and Eq. 7):
// given a time horizon, batch size, and device budget it returns the least
// approximate strategy predicted to fit:
//
//  1. plain BPTT if the full unroll fits (gradient-exact, no overhead),
//  2. otherwise checkpointing at the admissible C nearest √T (still
//     gradient-exact; Eq. 3 is minimised there), growing C if needed,
//  3. otherwise Skipper at the smallest skip percentile that fits, bounded
//     by Eq. 7.
//
// budget <= 0 means unlimited, which always yields plain BPTT.
func AutoTune(net *layers.Network, inputShape []int, cfg Config, budget int64) (Plan, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Plan{}, err
	}
	ln := net.StatefulCount()
	if cfg.T <= ln {
		return Plan{}, fmt.Errorf("core: autotune: T=%d must exceed L_n=%d", cfg.T, ln)
	}
	est := newEstimator(net, inputShape, cfg)

	if budget <= 0 || est.bpttPeak() <= budget {
		return Plan{
			Strategy:      BPTT{},
			PredictedPeak: est.bpttPeak(),
			Reason:        "full unroll fits the budget; baseline BPTT is exact with no recompute overhead",
		}, nil
	}

	// Admissible checkpoint counts, nearest-to-√T first.
	sqrtT := math.Sqrt(float64(cfg.T))
	var cs []int
	for c := 2; c <= cfg.T/(ln+1); c++ {
		if ValidateCheckpoints(cfg.T, c, ln) == nil {
			cs = append(cs, c)
		}
	}
	if len(cs) == 0 {
		return Plan{}, fmt.Errorf("core: autotune: no admissible checkpoint count for T=%d, L_n=%d", cfg.T, ln)
	}
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && math.Abs(float64(cs[j])-sqrtT) < math.Abs(float64(cs[j-1])-sqrtT); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	for _, c := range cs {
		if peak := est.ckptPeak(c, 0); peak <= budget {
			return Plan{
				Strategy:      Checkpoint{C: c},
				C:             c,
				PredictedPeak: peak,
				Reason:        fmt.Sprintf("plain checkpointing at C=%d (√T rule) fits; gradients stay exact", c),
			}, nil
		}
	}

	// Skipping: for each C (best segment economics first = largest C),
	// find the smallest p that fits.
	bestC := cs[len(cs)-1]
	for _, c := range cs {
		maxP := MaxSkipPercent(cfg.T, c, ln)
		for p := 5.0; p <= maxP; p += 5 {
			if peak := est.ckptPeak(c, p); peak <= budget {
				return Plan{
					Strategy:      Skipper{C: c, P: p},
					C:             c,
					P:             p,
					PredictedPeak: peak,
					Reason: fmt.Sprintf("checkpointing alone exceeds the budget; skipping p=%.0f%% of timesteps (Eq.7 bound %.0f%%) fits",
						p, maxP),
				}, nil
			}
		}
	}
	return Plan{}, fmt.Errorf("core: autotune: even skipper at C=%d, p=%.0f%% needs %s; budget %d bytes is too small",
		bestC, MaxSkipPercent(cfg.T, bestC, ln), fmtBytes(est.ckptPeak(bestC, MaxSkipPercent(cfg.T, bestC, ln))), budget)
}

// estimator predicts peak footprints from the same quantities the engine
// charges: per-timestep record bytes, parameter bytes, input train bytes,
// and workspace. A safety factor absorbs allocator-bin rounding.
type estimator struct {
	cfg    Config
	rec    int64
	fixed  int64
	safety float64
}

func newEstimator(net *layers.Network, inputShape []int, cfg Config) *estimator {
	rec := net.RecordBytes(cfg.Batch)
	pb := net.ParamBytes()
	inVol := int64(4 * cfg.Batch)
	for _, d := range inputShape {
		inVol *= int64(d)
	}
	fixed := pb /*weights*/ + pb /*grads*/ + 2*pb /*adam moments*/ +
		int64(cfg.T)*inVol /*input train*/ +
		net.WorkspaceBytes(cfg.Batch) + rec/2 /*delta scratch*/
	return &estimator{cfg: cfg, rec: rec, fixed: fixed, safety: 1.15}
}

func (e *estimator) bpttPeak() int64 {
	return int64(float64(int64(e.cfg.T)*e.rec+e.fixed) * e.safety)
}

// ckptPeak follows Eq. 3 / Eq. 6: C boundary records plus the (possibly
// skip-thinned) live segment, plus one transient record for the rolling
// forward state.
func (e *estimator) ckptPeak(c int, p float64) int64 {
	seg := (e.cfg.T + c - 1) / c
	live := int64(math.Ceil((1 - p/100) * float64(seg)))
	act := (int64(c) + live + 1) * e.rec
	return int64(float64(act+e.fixed) * e.safety)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
