package core

import (
	"fmt"
	"time"

	"skipper/internal/layers"
	"skipper/internal/tensor"
	"skipper/internal/trace"
)

// Skipper is activation checkpointing with time-skipping (paper Sec. VI).
//
// The first forward pass stores only the C checkpoint records and, in
// addition, the Spike Activity Monitor (SAM) records the per-timestep
// activity score s_t (Eq. 4 for the default spike-sum metric). Before each
// segment's recomputation, the Spike-Sum-Threshold SST_c is taken as the
// p-th percentile of the segment's scores (Eq. 5); timesteps whose activity
// falls below SST_c are skipped in both the second forward pass and the
// backward pass — the recomputed graph is shallower, which simultaneously
// recovers the recomputation overhead and cuts the live activation memory
// (Eq. 6). The functional outcome approximates BPTT; the admissible p is
// bounded by Eq. 7 so that information still propagates through all L_n
// layers within each segment.
type Skipper struct {
	// C is the number of temporal checkpoints.
	C int
	// P is the skip percentile (0..100): the fraction of timesteps dropped
	// from recomputation, bounded by Eq. 7.
	P float64
	// Metric is the SAM activity metric; nil means the paper's spike sum.
	Metric SAMMetric
}

// Name implements Strategy.
func (s Skipper) Name() string { return fmt.Sprintf("skipper(C=%d,p=%.0f)", s.C, s.P) }

// Segments implements Segmenter: the backward pass flushes once per
// checkpoint segment.
func (s Skipper) Segments() int { return s.C }

// Validate implements Strategy.
func (s Skipper) Validate(cfg Config, net *layers.Network) error {
	if err := ValidateCheckpoints(cfg.T, s.C, net.StatefulCount()); err != nil {
		return err
	}
	return ValidateSkip(cfg.T, s.C, net.StatefulCount(), s.P)
}

func (s Skipper) metric() SAMMetric {
	if s.Metric == nil {
		return SpikeSum{}
	}
	return s.Metric
}

// TrainBatch implements Strategy.
func (s Skipper) TrainBatch(tr *Trainer, input []*tensor.Tensor, labels []int) (StepStats, error) {
	T := tr.Cfg.T
	st := StepStats{N: len(labels)}
	rs := tr.newRecordStore()
	defer rs.dropAll()

	// Step 1: checkpointed forward with SAM tracing.
	la := newLossAccumulator(tr.Cfg, tr.lossDenom, labels)
	sam := &samTrace{metric: s.metric(), scores: make([]float64, T)}
	if err := checkpointForward(tr, input, la, CheckpointTimes(T, s.C), rs, &st, sam); err != nil {
		return st, err
	}
	st.Loss, st.Correct = la.Loss, la.Correct

	// Everything from here on is replay: freeze first-pass-only side
	// effects (batch-norm running statistics).
	tr.Net.BeginRecompute()
	defer tr.Net.EndRecompute()

	scratch, err := tr.deltaScratch(len(labels))
	if err != nil {
		return st, fmt.Errorf("core: skipper backward scratch: %w", err)
	}
	defer scratch.Release()

	outIdx := len(tr.Net.Layers) - 1
	var deltas []*layers.Delta
	lossInjected := false
	for seg := s.C - 1; seg >= 0; seg-- {
		start, end := SegmentBounds(T, s.C, seg)

		// Step 2: SST_c from the segment's SAM scores, then select the
		// surviving (recomputed) timesteps. The checkpoint step itself is
		// stored, and every loss-carrying step (the last LossWindow ones,
		// including the global final step) is always kept.
		sel := time.Now()
		survivors := s.selectSurvivors(sam.scores, start, end, la, &st)
		tr.tracer().SpanAt(trace.TrackTrain, "sam_select", sel, time.Since(sel),
			trace.Attr{Key: "seg", Val: int64(seg)},
			trace.Attr{Key: "survivors", Val: int64(len(survivors))})

		// Step 3/4: shallow recompute over survivors only. State hops
		// directly between surviving timesteps.
		rec := time.Now()
		states := rs.get(start)
		for _, t := range survivors {
			states = tr.Net.ForwardStep(input[t], states)
			if err := rs.put(t, states); err != nil {
				return st, fmt.Errorf("core: skipper recompute t=%d: %w", t, err)
			}
			st.RecomputedSteps++
		}
		tr.phaseDone(&st.RecomputeTime, "recompute", rec,
			trace.Attr{Key: "seg", Val: int64(seg)},
			trace.Attr{Key: "survivors", Val: int64(len(survivors))})

		// Step 5: backward over the shallow graph (survivors in reverse,
		// then the checkpoint step).
		bwd := time.Now()
		for i := len(survivors) - 1; i >= -1; i-- {
			t := start
			if i >= 0 {
				t = survivors[i]
			}
			var inject map[int]*tensor.Tensor
			if dl := la.at(t); dl != nil {
				inject = map[int]*tensor.Tensor{outIdx: dl}
				if t == T-1 {
					lossInjected = true
				}
			}
			deltas = tr.Net.BackwardStep(input[t], rs.get(t), inject, deltas)
			rs.drop(t)
			st.BackwardSteps++
		}
		tr.phaseDone(&st.BackwardTime, "backward", bwd, trace.Attr{Key: "seg", Val: int64(seg)})
		tr.segmentFlushed(s.C-seg, s.C)
	}
	if !lossInjected {
		return st, fmt.Errorf("core: skipper never injected the loss gradient (T-1 not visited)")
	}
	return st, nil
}

// selectSurvivors returns the recompute timesteps of segment [start, end):
// interior steps whose SAM score clears SST_c, always including every
// loss-carrying timestep. The checkpoint step `start` is excluded (it is
// stored, not recomputed).
func (s Skipper) selectSurvivors(scores []float64, start, end int, la *lossAccumulator, st *StepStats) []int {
	if end <= start+1 {
		return nil
	}
	segScores := scores[start+1 : end]
	sst := SpikeSumThreshold(segScores, s.P)
	var out []int
	for t := start + 1; t < end; t++ {
		if scores[t] >= sst || la.covers(t) {
			out = append(out, t)
		} else {
			st.SkippedSteps++
		}
	}
	return out
}
