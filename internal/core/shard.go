package core

import (
	"fmt"
	"time"

	"skipper/internal/dataset"
	"skipper/internal/mem"
	"skipper/internal/opt"
	"skipper/internal/tensor"
	"skipper/internal/trace"
)

// Shard splits a global batch across r ranks round-robin: sample i goes to
// rank i%r. Both DataParallel and the dist coordinator use this one function
// so the two layouts are identical by construction.
func Shard(indices []int, r int) [][]int {
	shards := make([][]int, r)
	for i, idx := range indices {
		shards[i%r] = append(shards[i%r], idx)
	}
	return shards
}

// ShardGrads computes gradients for one shard of a global batch of globalN
// samples, without applying the optimizer step. The caller assigns the
// iteration number explicitly so every rank derives the same RNG streams
// whether or not its shard is empty, and so a replayed round recomputes
// bit-identical gradients.
//
// The shard's loss mean is taken over globalN (not the local shard size):
// every rank multiplies its per-sample gradient terms by the same rounded
// reciprocal 1/globalN, so summing shard gradients in rank order reproduces
// the serial full-batch mean — exactly in math, and bitwise when each shard
// holds at most one sample (the per-element accumulation order then matches
// the serial loop's).
//
// An empty shard zeroes gradients and returns immediately; callers must skip
// empty ranks in the reduction (see ReduceGrads) so the zeroed tensors never
// perturb signed zeros in the sum.
func (tr *Trainer) ShardGrads(split dataset.Split, indices []int, iteration, globalN int) (StepStats, time.Duration, error) {
	tr.iteration = iteration
	tr.Net.ZeroGrads()
	if len(indices) == 0 {
		return StepStats{}, 0, nil
	}
	tr.Net.BeginIteration(tr.rngFor(0xD0))
	defer tr.Net.EndIteration()
	tr.lossDenom = globalN
	defer func() { tr.lossDenom = 0 }()

	encStart := time.Now()
	input, labels := tr.Data.SpikeBatch(split, indices, tr.Cfg.T)
	tr.tracer().SpanAt(trace.TrackTrain, "encode", encStart, time.Since(encStart),
		trace.Attr{Key: "n", Val: int64(len(indices))})
	inBlock, err := tr.Dev.Alloc(mem.Input, tr.inputBytes(input, labels))
	if err != nil {
		return StepStats{}, 0, fmt.Errorf("core: charging shard input: %w", err)
	}
	start := time.Now()
	st, err := tr.Strat.TrainBatch(tr, input, labels)
	elapsed := time.Since(start)
	inBlock.Release()
	if err != nil {
		return st, elapsed, fmt.Errorf("core: shard batch: %w", err)
	}
	return st, elapsed, nil
}

// GradTensors exposes the network's gradient tensors by parameter name, in
// the network's canonical parameter order — the payload of a gradient
// exchange.
func (tr *Trainer) GradTensors() []tensor.Named {
	ps := tr.Net.Params()
	out := make([]tensor.Named, len(ps))
	for i, p := range ps {
		out[i] = tensor.Named{Name: p.Name, T: p.G}
	}
	return out
}

// SetGradTensors overwrites the network's gradients with the named set (the
// receive side of a gradient exchange), requiring an exact name/shape match.
func (tr *Trainer) SetGradTensors(grads []tensor.Named) error {
	return tensor.CopyNamed(tr.GradTensors(), grads)
}

// ApplyReduced finishes a data-parallel step after the reduced gradient has
// been installed: clip exactly as the serial path would, apply the optimizer
// step, and return the pre-clip gradient norm. Every rank calls this with
// identical gradients, so every rank takes the identical step.
func (tr *Trainer) ApplyReduced() float64 {
	stepStart := time.Now()
	norm := float64(opt.GradClip(tr.Net.Params(), tr.Cfg.GradClip))
	tr.Opt.Step()
	tr.tracer().SpanAt(trace.TrackTrain, "opt_step", stepStart, time.Since(stepStart))
	return norm
}

// Iteration0 returns the trainer's current iteration counter, which a
// data-parallel driver advances explicitly via ShardGrads.
func (tr *Trainer) Iteration0() int { return tr.iteration }

// BeginEpoch positions the trainer at a 1-based epoch and applies the
// epoch's learning-rate schedule — the data-parallel driver's replacement
// for TrainEpoch's internal epoch advance, called on every rank so the
// scheduled rate stays identical across the world.
func (tr *Trainer) BeginEpoch(epoch int) error {
	tr.epoch = epoch
	return tr.applyEpochLR()
}

// ReduceGrads sums gradient sets in ascending rank order into sets[0] and
// returns the number of gradient bytes a real exchange would move per rank.
// counts[i] is rank i's shard size; empty ranks are skipped entirely — their
// zeroed tensors must not touch the sum, because IEEE-754 addition of +0.0
// turns a -0.0 partial into +0.0 and would break bitwise comparisons.
//
// The fixed ascending order is what makes the reduction deterministic: float
// addition does not commute in rounding, so any concurrent or rank-varying
// order would produce a different (still correct, not identical) result.
func ReduceGrads(sets [][]*tensor.Tensor, counts []int) (int64, error) {
	if len(sets) == 0 {
		return 0, fmt.Errorf("core: reduce of zero gradient sets")
	}
	if len(counts) != len(sets) {
		return 0, fmt.Errorf("core: reduce counts %d != sets %d", len(counts), len(sets))
	}
	for i := 1; i < len(sets); i++ {
		// A rank that sat the round out (empty shard) may ship no tensors at
		// all — it is skipped below either way.
		if counts[i] == 0 && len(sets[i]) == 0 {
			continue
		}
		if len(sets[i]) != len(sets[0]) {
			return 0, fmt.Errorf("core: rank %d has %d gradient tensors, rank 0 has %d", i, len(sets[i]), len(sets[0]))
		}
	}
	var paramBytes int64
	for j := range sets[0] {
		acc := sets[0][j]
		paramBytes += acc.Bytes()
		first := counts[0] > 0
		for i := 1; i < len(sets); i++ {
			if counts[i] == 0 {
				continue
			}
			g := sets[i][j]
			if g.Len() != acc.Len() {
				return 0, fmt.Errorf("core: rank %d tensor %d length %d != %d", i, j, g.Len(), acc.Len())
			}
			if !first {
				// Rank 0 sat out this step: adopt the first contributing
				// rank's gradient bitwise instead of summing onto zeros.
				tensor.Copy(acc, g)
				first = true
				continue
			}
			tensor.AXPY(acc, 1, g)
		}
	}
	return paramBytes, nil
}
