package core

import (
	"fmt"
	"math"

	"skipper/internal/layers"
	"skipper/internal/stats"
)

// SAMMetric scores a timestep's network activity for the Spike Activity
// Monitor. The paper's default is the raw spike sum (Eq. 4); the
// alternatives it sketches in Sec. VI-A ("Choice of Spike Activity
// Monitor") are provided as ablation options.
type SAMMetric interface {
	// Score reduces one timestep's per-layer states to a scalar activity.
	Score(net *layers.Network, states []*layers.LayerState) float64
	// Name identifies the metric for configs and reports.
	Name() string
}

// SpikeSum is s_t = Σ_l sum(o_t^l), the paper's low-overhead default.
type SpikeSum struct{}

// Score implements SAMMetric.
func (SpikeSum) Score(net *layers.Network, states []*layers.LayerState) float64 {
	return net.SpikeSum(states)
}

// Name implements SAMMetric.
func (SpikeSum) Name() string { return "spikesum" }

// WeightedSpikeSum normalises each layer's spike count by its neuron count,
// so small deep layers are not drowned out by large early ones — the
// "sum of spike counts weighted by the neuron count in each layer" variant.
type WeightedSpikeSum struct{}

// Score implements SAMMetric.
func (WeightedSpikeSum) Score(net *layers.Network, states []*layers.LayerState) float64 {
	var s float64
	for i, st := range states {
		if lin, ok := net.Layers[i].(*layers.SpikingLinear); ok && lin.Readout {
			continue
		}
		if st.O == nil || st.O.Len() == 0 {
			continue
		}
		s += st.SpikeSum() / float64(st.O.Len())
	}
	return s
}

// Name implements SAMMetric.
func (WeightedSpikeSum) Name() string { return "weighted" }

// MembraneL2 is the ℓ2-norm of the membrane trace per timestep — the
// finer-granularity monitor the paper suggests as future work.
type MembraneL2 struct{}

// Score implements SAMMetric.
func (MembraneL2) Score(net *layers.Network, states []*layers.LayerState) float64 {
	var s float64
	for i, st := range states {
		if lin, ok := net.Layers[i].(*layers.SpikingLinear); ok && lin.Readout {
			continue
		}
		s += membraneNorm(st)
	}
	return s
}

func membraneNorm(st *layers.LayerState) float64 {
	if st == nil {
		return 0
	}
	var sq float64
	if st.U != nil {
		for _, v := range st.U.Data {
			sq += float64(v) * float64(v)
		}
	}
	s := math.Sqrt(sq)
	for _, sub := range st.Sub {
		s += membraneNorm(sub)
	}
	return s
}

// Name implements SAMMetric.
func (MembraneL2) Name() string { return "membranel2" }

// SAMByName returns a metric for a config string.
func SAMByName(name string) (SAMMetric, error) {
	switch name {
	case "", "spikesum":
		return SpikeSum{}, nil
	case "weighted":
		return WeightedSpikeSum{}, nil
	case "membranel2":
		return MembraneL2{}, nil
	default:
		return nil, fmt.Errorf("core: unknown SAM metric %q", name)
	}
}

// SpikeSumThreshold computes SST_c = percentile({s_t}, p) over one
// checkpoint segment's activity scores (paper Eq. 5).
func SpikeSumThreshold(scores []float64, p float64) float64 {
	return stats.Percentile(scores, p)
}
