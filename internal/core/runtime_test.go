package core

import (
	"bytes"
	goruntime "runtime"
	"testing"

	"skipper/internal/models"
)

func TestNewRuntimeDefaultsToNumCPU(t *testing.T) {
	rt := NewRuntime()
	defer rt.Close()
	if rt.Threads() != goruntime.NumCPU() {
		t.Fatalf("Threads() = %d, want NumCPU = %d", rt.Threads(), goruntime.NumCPU())
	}
	if rt.Threads() > 1 && rt.Pool() == nil {
		t.Fatal("multi-thread runtime has no pool")
	}
}

func TestNilRuntimeIsSerial(t *testing.T) {
	var rt *Runtime
	if rt.Threads() != 1 || rt.Pool() != nil || rt.Seed() != 0 || rt.Metrics() != nil {
		t.Fatal("nil runtime must read as serial with zero defaults")
	}
	rt.Close() // must not panic
}

func TestRuntimeOptions(t *testing.T) {
	var sink bytes.Buffer
	rt := NewRuntime(WithThreads(3), WithSeed(42), WithMetrics(&sink))
	defer rt.Close()
	if rt.Threads() != 3 {
		t.Fatalf("Threads() = %d, want 3", rt.Threads())
	}
	if rt.Pool() == nil || rt.Pool().Lanes() != 3 {
		t.Fatal("pool not sized to WithThreads")
	}
	if rt.Seed() != 42 {
		t.Fatalf("Seed() = %d, want 42", rt.Seed())
	}
	if rt.Metrics() != &sink {
		t.Fatal("Metrics() did not round-trip")
	}
}

func TestDefaultRuntimeIsSingleton(t *testing.T) {
	if DefaultRuntime() != DefaultRuntime() {
		t.Fatal("DefaultRuntime must return one shared instance")
	}
}

// Deprecated Config fields keep working: an explicit Seed or Metrics on the
// Config wins over the Runtime's defaults, and a nil Runtime resolves to
// DefaultRuntime.
func TestConfigRuntimeDefaulting(t *testing.T) {
	var rtSink, cfgSink bytes.Buffer
	rt := NewRuntime(WithThreads(1), WithSeed(7), WithMetrics(&rtSink))

	cfg := (Config{T: 4, Batch: 1, Runtime: rt}).withDefaults()
	if cfg.Seed != 7 {
		t.Fatalf("Seed = %d, want the runtime's 7", cfg.Seed)
	}
	if cfg.Metrics != &rtSink {
		t.Fatal("Metrics should inherit the runtime's sink")
	}

	cfg = (Config{T: 4, Batch: 1, Runtime: rt, Seed: 99, Metrics: &cfgSink}).withDefaults()
	if cfg.Seed != 99 || cfg.Metrics != &cfgSink {
		t.Fatal("explicit Config fields must win over the runtime's defaults")
	}

	cfg = (Config{T: 4, Batch: 1}).withDefaults()
	if cfg.Runtime != DefaultRuntime() {
		t.Fatal("nil Runtime must resolve to DefaultRuntime")
	}
}

func TestRuntimeFacadeBuildsPinnedTrainer(t *testing.T) {
	rt := NewRuntime(WithThreads(2), WithSeed(5))
	defer rt.Close()
	net, err := rt.BuildModel("customnet", models.Options{Width: 0.5, InShape: []int{3, 16, 16}, Classes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if net.Pool() != rt.Pool() {
		t.Fatal("BuildModel must attach the runtime's pool")
	}
	data, err := rt.OpenDataset("cifar10")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rt.NewTrainer(net, data, BPTT{}, Config{T: 6, Batch: 1, MaxBatchesPerEpoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Cfg.Runtime != rt {
		t.Fatal("NewTrainer must pin the runtime into the config")
	}
	if tr.Cfg.Seed != 5 {
		t.Fatalf("trainer seed = %d, want the runtime's 5", tr.Cfg.Seed)
	}
	if _, err := tr.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
}

// The headline determinism property: the same training run at threads=1 and
// threads=4 produces bit-identical weights, optimizer state, and epoch
// aggregates, so pool width can never perturb a result.
func TestTrainingBitIdenticalAcrossThreadCounts(t *testing.T) {
	train := func(threads int) (*Trainer, []EpochStats) {
		rt := NewRuntime(WithThreads(threads), WithSeed(9))
		t.Cleanup(rt.Close)
		net, err := rt.BuildModel("customnet", models.Options{
			Width: 0.5, InShape: []int{3, 16, 16}, Classes: 10, BatchNorm: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := rt.OpenDataset("cifar10")
		if err != nil {
			t.Fatal(err)
		}
		tr, err := rt.NewTrainer(net, data, Skipper{C: 2, P: 15}, Config{
			T: 12, Batch: 2, MaxBatchesPerEpoch: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		var eps []EpochStats
		for e := 0; e < 2; e++ {
			ep, err := tr.TrainEpoch()
			if err != nil {
				t.Fatal(err)
			}
			ep.Duration = 0
			ep.ForwardTime, ep.RecomputeTime, ep.BackwardTime = 0, 0, 0
			eps = append(eps, ep)
		}
		return tr, eps
	}

	serialTr, serialEps := train(1)
	pooledTr, pooledEps := train(4)

	for e := range serialEps {
		if serialEps[e] != pooledEps[e] {
			t.Fatalf("epoch %d aggregates differ:\n  threads=1: %+v\n  threads=4: %+v", e+1, serialEps[e], pooledEps[e])
		}
	}
	pa, pb := serialTr.Net.Params(), pooledTr.Net.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("weight %s[%d]: threads=1 %v != threads=4 %v",
					pa[i].Name, j, pa[i].W.Data[j], pb[i].W.Data[j])
			}
		}
	}
	oa, ob := serialTr.Opt.StateTensors(), pooledTr.Opt.StateTensors()
	for i := range oa {
		for j := range oa[i].T.Data {
			if oa[i].T.Data[j] != ob[i].T.Data[j] {
				t.Fatalf("optimizer state %s[%d] differs across thread counts", oa[i].Name, j)
			}
		}
	}
}
