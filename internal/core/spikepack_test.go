package core

import (
	"fmt"
	"testing"

	"skipper/internal/dataset"
	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// spikePackSetup builds a named model plus one deterministic batch. The
// "tinyres" pseudo-model is a hand-assembled stack exercising both residual
// shortcut variants (identity and strided projection) with an L_n small
// enough for short unrolls.
func spikePackSetup(t *testing.T, model string, T int) (*layers.Network, dataset.Source, []*tensor.Tensor, []int) {
	t.Helper()
	var net *layers.Network
	if model == "tinyres" {
		n, s := snn.DefaultParams(), snn.Triangle{}
		net = layers.NewNetwork("tinyres", []int{3, 16, 16},
			layers.NewSpikingConv2D("conv1", 8, 3, 1, 1, n, s),
			layers.NewResidualBlock("res1", 8, 1, n, s),
			layers.NewResidualBlock("res2", 16, 2, n, s),
			layers.NewGlobalAvgPool("gap"),
			layers.NewReadout("out", 10, n),
		)
		if err := net.Build(tensor.NewRNG(11)); err != nil {
			t.Fatal(err)
		}
	} else {
		var err error
		net, err = models.Build(model, models.Options{Width: 0.5, InShape: []int{3, 16, 16}, Classes: 10})
		if err != nil {
			t.Fatal(err)
		}
	}
	data, err := dataset.Open("cifar10", 1)
	if err != nil {
		t.Fatal(err)
	}
	input, labels := data.SpikeBatch(dataset.Train, []int{0, 1}, T)
	return net, data, input, labels
}

// The spike-pack contract: routing spike activations through the bit-packed
// AND+popcount kernels reproduces the dense float gradients bit-for-bit —
// for every strategy, including lazy packed checkpoint boundary records
// (SpikePack + CompressSpikes). tinyres covers the residual block's packed
// shortcut and two-stage paths; customnet covers conv/pool/linear stacks.
func TestSpikePackGradientsExactlyMatchDense(t *testing.T) {
	strategies := []struct {
		name  string
		strat Strategy
		cfg   Config
	}{
		{"bptt", BPTT{}, Config{Batch: 2}},
		{"checkpoint", Checkpoint{C: 2}, Config{Batch: 2}},
		{"checkpoint-compressed", Checkpoint{C: 2}, Config{Batch: 2, CompressSpikes: true}},
		{"skipper-compressed", Skipper{C: 2, P: 25}, Config{Batch: 2, CompressSpikes: true}},
	}
	for _, model := range []string{"customnet", "tinyres"} {
		// tinyres has L_n = 6, so segments of T/C = 8 satisfy the paper's
		// T/C > L_n constraint.
		T := 12
		if model == "tinyres" {
			T = 16
		}
		for _, tc := range strategies {
			t.Run(fmt.Sprintf("%s/%s", model, tc.name), func(t *testing.T) {
				grads := func(pack bool) []*tensor.Tensor {
					net, data, input, labels := spikePackSetup(t, model, T)
					cfg := tc.cfg
					cfg.T = T
					cfg.SpikePack = pack
					tr := newTestTrainer(t, net, data, tc.strat, cfg)
					net.ZeroGrads()
					if _, err := tc.strat.TrainBatch(tr, input, labels); err != nil {
						t.Fatal(err)
					}
					return gradsOf(net)
				}
				dense := grads(false)
				tensor.ResetPackedKernelStats()
				packed := grads(true)
				if scanned, _ := tensor.PackedKernelStats(); scanned == 0 {
					t.Fatal("packed kernels never engaged with SpikePack on")
				}
				if d := maxGradDiff(dense, packed); d != 0 {
					t.Fatalf("spike-pack gradients diverge from dense: max |Δ| = %v", d)
				}
			})
		}
	}
}

// Event-driven skip is observable: sparse spike planes leave all-zero words,
// and the kernels must actually skip them (the counters feed the trace).
func TestSpikePackSkipsZeroWords(t *testing.T) {
	const T = 12
	net, data, input, labels := spikePackSetup(t, "customnet", T)
	tr := newTestTrainer(t, net, data, Checkpoint{C: 2},
		Config{T: T, Batch: 2, CompressSpikes: true, SpikePack: true})
	net.ZeroGrads()
	tensor.ResetPackedKernelStats()
	if _, err := (Checkpoint{C: 2}).TrainBatch(tr, input, labels); err != nil {
		t.Fatal(err)
	}
	scanned, skipped := tensor.PackedKernelStats()
	if scanned == 0 || skipped == 0 {
		t.Fatalf("expected zero-word skips on sparse spikes: scanned=%d skipped=%d", scanned, skipped)
	}
	if skipped > scanned {
		t.Fatalf("skipped %d exceeds scanned %d", skipped, scanned)
	}
}

// Full training-step determinism: identical loss and post-step weights with
// spike-pack on vs off (the optimizer consumes bit-identical gradients).
func TestSpikePackTrainingStepBitIdentical(t *testing.T) {
	const T = 12
	run := func(pack bool) (float64, []*tensor.Tensor) {
		net, data, _, _ := spikePackSetup(t, "customnet", T)
		strat := Skipper{C: 2, P: 25}
		tr := newTestTrainer(t, net, data, strat,
			Config{T: T, Batch: 2, Seed: 7, CompressSpikes: true, SpikePack: pack})
		res, err := tr.TrainBatchIndices(dataset.Train, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		var ws []*tensor.Tensor
		for _, p := range net.Params() {
			ws = append(ws, p.W.Clone())
		}
		return res.Loss, ws
	}
	lossA, wsA := run(false)
	lossB, wsB := run(true)
	if lossA != lossB {
		t.Fatalf("loss differs: dense %v vs packed %v", lossA, lossB)
	}
	if d := maxGradDiff(wsA, wsB); d != 0 {
		t.Fatalf("post-step weights diverge: max |Δ| = %v", d)
	}
}
