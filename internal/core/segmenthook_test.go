package core

import (
	"fmt"
	"testing"
)

// The segment hook must fire exactly Segments() times per batch, in the
// deterministic backward flush order (done = 1..total), for every segmented
// strategy — this ordering is what distributed bucketed overlap builds on.
func TestSegmentHookFiresPerSegmentInFlushOrder(t *testing.T) {
	const T = 18
	strategies := []Strategy{
		Checkpoint{C: 3},
		Skipper{C: 3, P: 0},
		&AdaptiveSkipper{C: 3, P: 0},
	}
	for _, strat := range strategies {
		t.Run(strat.Name(), func(t *testing.T) {
			net, data, input, labels := tinySetup(t, T)
			tr := newTestTrainer(t, net, data, strat, Config{T: T, Batch: 2})

			want := SegmentCount(strat)
			if want != 3 {
				t.Fatalf("SegmentCount = %d, want 3", want)
			}
			var calls []string
			tr.SetSegmentHook(func(done, total int) {
				calls = append(calls, fmt.Sprintf("%d/%d", done, total))
			})
			net.ZeroGrads()
			if _, err := strat.TrainBatch(tr, input, labels); err != nil {
				t.Fatal(err)
			}
			if len(calls) != want {
				t.Fatalf("hook fired %d times (%v), want %d", len(calls), calls, want)
			}
			for i, c := range calls {
				if exp := fmt.Sprintf("%d/%d", i+1, want); c != exp {
					t.Fatalf("call %d = %q, want %q (all: %v)", i, c, exp, calls)
				}
			}

			// Clearing the hook stops the callbacks.
			tr.SetSegmentHook(nil)
			calls = nil
			net.ZeroGrads()
			if _, err := strat.TrainBatch(tr, input, labels); err != nil {
				t.Fatal(err)
			}
			if len(calls) != 0 {
				t.Fatalf("cleared hook still fired %d times", len(calls))
			}
		})
	}
}

// Unsegmented strategies never invoke the hook and count as one segment.
func TestSegmentHookUnsegmentedBPTT(t *testing.T) {
	const T = 8
	net, data, input, labels := tinySetup(t, T)
	tr := newTestTrainer(t, net, data, BPTT{}, Config{T: T, Batch: 2})
	if n := SegmentCount(BPTT{}); n != 1 {
		t.Fatalf("SegmentCount(BPTT) = %d, want 1", n)
	}
	fired := 0
	tr.SetSegmentHook(func(done, total int) { fired++ })
	net.ZeroGrads()
	if _, err := (BPTT{}).TrainBatch(tr, input, labels); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("BPTT fired the segment hook %d times", fired)
	}
}
