package core

import (
	"io"
	goruntime "runtime"
	"sync"

	"skipper/internal/dataset"
	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/parallel"
	"skipper/internal/trace"
)

// Runtime is the process-wide execution context every training and serving
// component draws from: the shared parallel compute pool, the metrics sink,
// and the root RNG seed. Construct one with NewRuntime and hand it to
// trainers (Config.Runtime), data-parallel replicas, and the serving
// subsystem — they all share its pool, so the process never oversubscribes
// the machine no matter how many trainers or serve workers run.
//
// Thread count never changes results: every kernel on the pool partitions
// output elements with lane-independent arithmetic, so a run is bit-identical
// at threads=1 and threads=N (see internal/parallel).
type Runtime struct {
	threads int
	pool    *parallel.Pool
	metrics io.Writer
	seed    uint64
	tracer  *trace.Tracer
}

// RuntimeOption configures NewRuntime.
type RuntimeOption func(*Runtime)

// WithThreads sets the compute pool width. n <= 0 (the default) means
// runtime.NumCPU(); 1 disables the pool entirely (serial kernels).
func WithThreads(n int) RuntimeOption {
	return func(r *Runtime) { r.threads = n }
}

// WithMetrics sets the default epoch-metrics sink trainers inherit when
// their Config leaves Metrics nil.
func WithMetrics(w io.Writer) RuntimeOption {
	return func(r *Runtime) { r.metrics = w }
}

// WithSeed sets the default root seed trainers and datasets inherit when no
// explicit seed is given.
func WithSeed(seed uint64) RuntimeOption {
	return func(r *Runtime) { r.seed = seed }
}

// WithTracer attaches a span/event recorder every component on this runtime
// reports into: trainer phase spans, serve request lifecycles, pool
// lane-utilization counters, and device high-water events. Nil (the default)
// disables tracing at zero cost — every recording call on a nil tracer is an
// allocation-free no-op, mirroring the nil-*parallel.Pool convention.
func WithTracer(t *trace.Tracer) RuntimeOption {
	return func(r *Runtime) { r.tracer = t }
}

// NewRuntime builds a runtime from functional options and starts its pool.
// Close releases the pool's goroutines (a leaked runtime is harmless — idle
// workers block on a channel — but Close keeps tests tidy).
func NewRuntime(opts ...RuntimeOption) *Runtime {
	r := &Runtime{}
	for _, o := range opts {
		o(r)
	}
	if r.threads <= 0 {
		r.threads = goruntime.NumCPU()
	}
	if r.threads > 1 {
		r.pool = parallel.NewPool(r.threads)
	}
	r.pool.SetTracer(r.tracer)
	return r
}

var (
	defaultRuntimeOnce sync.Once
	defaultRuntime     *Runtime
)

// DefaultRuntime returns the lazily-created process-wide runtime
// (threads = NumCPU, no metrics sink, zero seed). Configs without an
// explicit Runtime resolve to it, which is what makes independent trainers
// and serve workers share one pool by default.
func DefaultRuntime() *Runtime {
	defaultRuntimeOnce.Do(func() { defaultRuntime = NewRuntime() })
	return defaultRuntime
}

// Threads returns the resolved pool width. Nil-safe: a nil runtime reports 1
// (serial).
func (r *Runtime) Threads() int {
	if r == nil {
		return 1
	}
	return r.threads
}

// Pool returns the shared compute pool (nil when threads = 1: the kernels'
// nil-pool path is the serial one). Nil-safe.
func (r *Runtime) Pool() *parallel.Pool {
	if r == nil {
		return nil
	}
	return r.pool
}

// Seed returns the runtime's root seed (0 when unset). Nil-safe.
func (r *Runtime) Seed() uint64 {
	if r == nil {
		return 0
	}
	return r.seed
}

// Tracer returns the runtime's span recorder (nil when tracing is off; a nil
// tracer is valid and free to record into). Nil-safe.
func (r *Runtime) Tracer() *trace.Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Metrics returns the runtime's default metrics sink (nil when unset).
// Nil-safe.
func (r *Runtime) Metrics() io.Writer {
	if r == nil {
		return nil
	}
	return r.metrics
}

// Close stops the pool's worker goroutines. The runtime must not be used
// for new work afterwards. Nil-safe and idempotent.
func (r *Runtime) Close() {
	if r == nil {
		return
	}
	r.pool.Close()
}

// NewTrainer is the runtime-scoped trainer constructor: cfg runs on this
// runtime's pool and inherits its seed and metrics sink where cfg leaves
// them unset.
func (r *Runtime) NewTrainer(net *layers.Network, data dataset.Source, strat Strategy, cfg Config) (*Trainer, error) {
	cfg.Runtime = r
	return NewTrainer(net, data, strat, cfg)
}

// BuildModel constructs one of the paper's topologies by name on this
// runtime.
func (r *Runtime) BuildModel(name string, opts models.Options) (*layers.Network, error) {
	net, err := models.Build(name, opts)
	if err != nil {
		return nil, err
	}
	net.SetPool(r.Pool())
	return net, nil
}

// OpenDataset opens a dataset by name, seeded by the runtime's root seed.
func (r *Runtime) OpenDataset(name string) (dataset.Source, error) {
	return dataset.Open(name, r.Seed())
}
