package core

import (
	"testing"
	"testing/quick"
)

func TestEqualActivityBoundsUniformProfile(t *testing.T) {
	profile := make([]float64, 20)
	for i := range profile {
		profile[i] = 1
	}
	bounds := EqualActivityBounds(profile, 2, 4)
	if len(bounds) != 2 || bounds[0] != 0 {
		t.Fatalf("bounds = %v", bounds)
	}
	// A flat profile should split roughly in half.
	if bounds[1] < 8 || bounds[1] > 12 {
		t.Fatalf("flat-profile split at %d, want ~10", bounds[1])
	}
}

func TestEqualActivityBoundsSkewedProfile(t *testing.T) {
	// All activity in the first quarter: the first segment should end early.
	profile := make([]float64, 40)
	for i := 0; i < 10; i++ {
		profile[i] = 10
	}
	for i := 10; i < 40; i++ {
		profile[i] = 0.1
	}
	bounds := EqualActivityBounds(profile, 2, 4)
	if bounds[1] >= 20 {
		t.Fatalf("skewed profile should pull the boundary early, got %v", bounds)
	}
	if bounds[1]-bounds[0] <= 4 {
		t.Fatalf("min segment length violated: %v", bounds)
	}
}

func TestEqualActivityBoundsZeroProfile(t *testing.T) {
	bounds := EqualActivityBounds(make([]float64, 12), 3, 2)
	want := CheckpointTimes(12, 3)
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("zero profile should fall back to uniform: %v vs %v", bounds, want)
		}
	}
}

// Property: bounds are strictly increasing, start at 0, respect the minimum
// segment length against both neighbours and the horizon end.
func TestEqualActivityBoundsProperty(t *testing.T) {
	f := func(raw []uint8, cRaw, minRaw uint8) bool {
		T := len(raw)
		minLen := int(minRaw%4) + 1
		C := int(cRaw%4) + 1
		if T < C*(minLen+2) || T == 0 {
			return true
		}
		profile := make([]float64, T)
		for i, v := range raw {
			profile[i] = float64(v)
		}
		bounds := EqualActivityBounds(profile, C, minLen)
		if len(bounds) != C || bounds[0] != 0 {
			return false
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i]-bounds[i-1] <= minLen {
				return false
			}
		}
		return bounds[len(bounds)-1] < T
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveSkipperTrains(t *testing.T) {
	const T = 24
	net, data, _, _ := tinySetup(t, T)
	strat := &AdaptiveSkipper{C: 2, P: 25}
	tr := newTestTrainer(t, net, data, strat, Config{T: T, Batch: 2, MaxBatchesPerEpoch: 3})
	ep, err := tr.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if ep.SkippedSteps == 0 {
		t.Fatal("adaptive skipper skipped nothing")
	}
	if strat.profile == nil || len(strat.profile) != T {
		t.Fatal("activity profile not learned")
	}
	// After the first batch the placement may differ from uniform; it must
	// still satisfy the constraints.
	bounds := strat.placements(T)
	if len(bounds) != 2 || bounds[0] != 0 || bounds[1] <= net.StatefulCount() {
		t.Fatalf("placement %v violates constraints", bounds)
	}
}

func TestAdaptiveSkipperFirstBatchUniform(t *testing.T) {
	strat := &AdaptiveSkipper{C: 3, P: 10}
	bounds := strat.placements(30)
	want := CheckpointTimes(30, 3)
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("first batch should place uniformly: %v", bounds)
		}
	}
}

func TestAdaptiveSkipperValidation(t *testing.T) {
	net, data, _, _ := tinySetup(t, 12)
	if _, err := NewTrainer(net, data, &AdaptiveSkipper{C: 3, P: 10}, Config{T: 12, Batch: 1}); err == nil {
		t.Fatal("segment length constraint must apply to the adaptive variant")
	}
	if _, err := NewTrainer(net, data, &AdaptiveSkipper{C: 2, P: 150}, Config{T: 12, Batch: 1}); err == nil {
		t.Fatal("percentile out of range must be rejected")
	}
}

// With a flat synthetic profile the adaptive variant matches plain Skipper's
// accounting (same number of interior steps covered).
func TestAdaptiveCoversAllInteriorSteps(t *testing.T) {
	const T = 24
	net, data, input, labels := tinySetup(t, T)
	strat := &AdaptiveSkipper{C: 2, P: 20}
	tr := newTestTrainer(t, net, data, strat, Config{T: T, Batch: 2})
	net.ZeroGrads()
	st, err := strat.TrainBatch(tr, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	if st.RecomputedSteps+st.SkippedSteps != T-2 {
		t.Fatalf("interior coverage broken: %d + %d != %d", st.RecomputedSteps, st.SkippedSteps, T-2)
	}
	if st.BackwardSteps != st.RecomputedSteps+2 {
		t.Fatalf("backward steps %d, want survivors + checkpoints = %d", st.BackwardSteps, st.RecomputedSteps+2)
	}
}
