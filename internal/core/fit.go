package core

import (
	"fmt"
	"math"
)

// BestCheckpointCount returns the admissible checkpoint count closest to
// the Eq. 3 optimum √T under the Sec. V-A constraint T/C > Ln, or an error
// when no C ≥ 1 is admissible.
func BestCheckpointCount(T, Ln int) (int, error) {
	if T < 1 {
		return 0, fmt.Errorf("core: T = %d must be >= 1", T)
	}
	best, bestDist := 0, math.MaxFloat64
	sqrtT := math.Sqrt(float64(T))
	for c := 1; c <= T; c++ {
		if ValidateCheckpoints(T, c, Ln) != nil {
			continue
		}
		if d := math.Abs(float64(c) - sqrtT); d < bestDist {
			best, bestDist = c, d
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("core: no admissible checkpoint count for T=%d, L_n=%d", T, Ln)
	}
	return best, nil
}

// FitResult reports a Fit run.
type FitResult struct {
	// Epochs is how many epochs actually ran.
	Epochs int
	// BestEpoch is the epoch with the best validation accuracy.
	BestEpoch int
	// BestAccuracy is that epoch's validation accuracy.
	BestAccuracy float64
	// FinalLoss is the last epoch's mean training loss.
	FinalLoss float64
	// Stopped reports whether early stopping fired before maxEpochs.
	Stopped bool
}

// FitOptions tunes Fit.
type FitOptions struct {
	// MaxEpochs caps the run (default 10).
	MaxEpochs int
	// Patience stops after this many epochs without validation improvement;
	// 0 disables early stopping.
	Patience int
	// EvalBatches caps each validation pass (0 = full test split).
	EvalBatches int
	// OnEpoch, when non-nil, observes each epoch (for logging/plotting).
	OnEpoch func(epoch int, train EpochStats, valAcc float64)
}

// Fit trains until MaxEpochs or until validation accuracy stops improving
// for Patience epochs — the convenience loop around TrainEpoch/Evaluate
// that most callers write by hand.
func (tr *Trainer) Fit(opts FitOptions) (FitResult, error) {
	return tr.fitLoop(opts, Cursor{NextEpoch: 1}, EpochStats{}, false)
}

// FitFrom continues an interrupted Fit run from a restored cursor: it
// positions the trainer at cur, finishes the partially-complete epoch via
// ResumeEpoch with the partial aggregate, then runs the remaining epochs as
// Fit would. Weights, optimizer state, and buffers must already be restored
// (the run-state layer does all three before calling this).
func (tr *Trainer) FitFrom(opts FitOptions, cur Cursor, partial EpochStats) (FitResult, error) {
	tr.SetCursor(cur)
	return tr.fitLoop(opts, cur, partial, true)
}

func (tr *Trainer) fitLoop(opts FitOptions, cur Cursor, partial EpochStats, resume bool) (FitResult, error) {
	maxEpochs := opts.MaxEpochs
	if maxEpochs <= 0 {
		maxEpochs = 10
	}
	var res FitResult
	sinceBest := 0
	for e := cur.NextEpoch; e <= maxEpochs; e++ {
		var ep EpochStats
		var err error
		if resume && e == cur.NextEpoch {
			ep, err = tr.ResumeEpoch(cur.NextBatch, partial)
		} else {
			ep, err = tr.TrainEpoch()
		}
		if err != nil {
			return res, err
		}
		_, acc, err := tr.Evaluate(opts.EvalBatches)
		if err != nil {
			return res, err
		}
		res.Epochs = e
		res.FinalLoss = ep.MeanLoss()
		if opts.OnEpoch != nil {
			opts.OnEpoch(e, ep, acc)
		}
		if acc > res.BestAccuracy || res.BestEpoch == 0 {
			res.BestAccuracy = acc
			res.BestEpoch = e
			sinceBest = 0
		} else {
			sinceBest++
			if opts.Patience > 0 && sinceBest >= opts.Patience {
				res.Stopped = true
				return res, nil
			}
		}
	}
	return res, nil
}
