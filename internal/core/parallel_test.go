package core

import (
	"testing"

	"skipper/internal/dataset"
	"skipper/internal/mem"
	"skipper/internal/models"
)

func dpFactory(t *testing.T, T int) func(int) (*Trainer, error) {
	t.Helper()
	data, err := dataset.Open("cifar10", 1)
	if err != nil {
		t.Fatal(err)
	}
	return func(i int) (*Trainer, error) {
		net, err := models.Build("customnet", models.Options{Width: 0.5, InShape: []int{3, 16, 16}})
		if err != nil {
			return nil, err
		}
		return NewTrainer(net, data, Checkpoint{C: 2}, Config{
			T: T, Batch: 2, Seed: 7, Device: mem.Unlimited(),
		})
	}
}

func TestDataParallelLockStep(t *testing.T) {
	const T = 10
	dp, err := NewDataParallel(2, dpFactory(t, T))
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	if !dp.InSync() {
		t.Fatal("replicas differ before training (non-deterministic init)")
	}
	st, err := dp.TrainBatchIndices(dataset.Train, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !dp.InSync() {
		t.Fatal("replicas diverged after a synchronized step")
	}
	if st.N != 4 {
		t.Fatalf("global batch N = %d, want 4", st.N)
	}
	if st.Wall < st.SlowestReplica {
		t.Fatal("wall time must include the slowest replica")
	}
	if st.AllReduce <= 0 {
		t.Fatal("2 replicas must pay an all-reduce cost")
	}
}

func TestDataParallelPerReplicaMemoryIndependent(t *testing.T) {
	const T = 10
	dp, err := NewDataParallel(2, dpFactory(t, T))
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	if _, err := dp.TrainBatchIndices(dataset.Train, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for i, tr := range dp.Replicas {
		if tr.Dev.PeakAllocated() == 0 {
			t.Fatalf("replica %d device saw no traffic", i)
		}
	}
	// Devices are distinct objects.
	if dp.Replicas[0].Dev == dp.Replicas[1].Dev {
		t.Fatal("replicas must own separate devices")
	}
}

func TestDataParallelSingleReplicaNoAllReduce(t *testing.T) {
	const T = 10
	dp, err := NewDataParallel(1, dpFactory(t, T))
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	st, err := dp.TrainBatchIndices(dataset.Train, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.AllReduce != 0 {
		t.Fatal("single replica should have zero all-reduce time")
	}
}

func TestDataParallelRejectsZeroReplicas(t *testing.T) {
	if _, err := NewDataParallel(0, dpFactory(t, 10)); err == nil {
		t.Fatal("0 replicas must error")
	}
}

func TestPretrainImprovesInit(t *testing.T) {
	data, err := dataset.Open("cifar10", 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := models.Build("customnet", models.Options{Width: 0.5, InShape: []int{3, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	// Loss before pre-training.
	evalLoss := func() float64 {
		tr, err := NewTrainer(net, data, BPTT{}, Config{T: 8, Batch: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		loss, _, err := tr.Evaluate(2)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	before := evalLoss()
	if err := Pretrain(net, data, PretrainConfig{Epochs: 2, BatchesPerEpoch: 10, Batch: 8, T: 8}); err != nil {
		t.Fatal(err)
	}
	after := evalLoss()
	if after >= before {
		t.Fatalf("pretrain did not reduce eval loss: %v -> %v", before, after)
	}
}
