package core

import (
	"fmt"
	"time"

	"skipper/internal/layers"
	"skipper/internal/tensor"
)

// BPTT is the baseline: the network is fully unrolled in time, every
// timestep's activations (U_t, o_t of every layer) stay resident until the
// backward pass consumes them (paper Sec. III-B). Activation memory grows
// linearly with T — the problem the other strategies attack.
type BPTT struct{}

// Name implements Strategy.
func (BPTT) Name() string { return "bptt" }

// Validate implements Strategy.
func (BPTT) Validate(cfg Config, net *layers.Network) error {
	if cfg.T <= net.StatefulCount() {
		return fmt.Errorf("core: bptt needs T > L_n (%d <= %d) for spikes to reach the readout", cfg.T, net.StatefulCount())
	}
	return nil
}

// TrainBatch implements Strategy.
func (BPTT) TrainBatch(tr *Trainer, input []*tensor.Tensor, labels []int) (StepStats, error) {
	T := tr.Cfg.T
	st := StepStats{N: len(labels)}
	rs := tr.newRecordStore()
	defer rs.dropAll()

	la := newLossAccumulator(tr.Cfg, tr.lossDenom, labels)
	fwd := time.Now()
	var states []*layers.LayerState
	for t := 0; t < T; t++ {
		states = tr.Net.ForwardStep(input[t], states)
		if err := rs.put(t, states); err != nil {
			return st, fmt.Errorf("core: bptt forward t=%d: %w", t, err)
		}
		la.observe(t, tr.Net.Logits(states))
		st.ForwardSteps++
	}
	tr.phaseDone(&st.ForwardTime, "forward", fwd)
	st.Loss, st.Correct = la.Loss, la.Correct

	bwd := time.Now()
	scratch, err := tr.deltaScratch(len(labels))
	if err != nil {
		return st, fmt.Errorf("core: bptt backward scratch: %w", err)
	}
	defer scratch.Release()
	outIdx := len(tr.Net.Layers) - 1
	var deltas []*layers.Delta
	for t := T - 1; t >= 0; t-- {
		var inject map[int]*tensor.Tensor
		if dl := la.at(t); dl != nil {
			inject = map[int]*tensor.Tensor{outIdx: dl}
		}
		deltas = tr.Net.BackwardStep(input[t], rs.get(t), inject, deltas)
		rs.drop(t)
		st.BackwardSteps++
	}
	tr.phaseDone(&st.BackwardTime, "backward", bwd)
	return st, nil
}
