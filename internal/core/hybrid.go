package core

import (
	"fmt"

	"skipper/internal/dataset"
	"skipper/internal/layers"
)

// Pretrain implements the spirit of the paper's hybrid training protocol
// (Rathi et al. [37]): instead of training the SNN from scratch for hundreds
// of epochs, the network is brought to a non-random initialisation first and
// then fine-tuned with the strategy under study, so that every strategy
// "starts at an equal footing" after a handful of epochs.
//
// The original protocol copies weights from a pre-trained ANN. Without an
// ANN substrate, the equivalent short-cut is a brief, short-horizon
// (reduced-T) SNN-BPTT run: it is cheap, deterministic, and leaves the
// network in a trained-enough state that the Table I fine-tuning runs
// converge in few epochs (the substitution is recorded in DESIGN.md).
func Pretrain(net *layers.Network, data dataset.Source, cfg PretrainConfig) error {
	c := cfg.withDefaults()
	tcfg := Config{
		T:                  c.T,
		Batch:              c.Batch,
		LR:                 c.LR,
		Seed:               c.Seed,
		MaxBatchesPerEpoch: c.BatchesPerEpoch,
	}
	tr, err := NewTrainer(net, data, BPTT{}, tcfg)
	if err != nil {
		return fmt.Errorf("core: pretrain: %w", err)
	}
	defer tr.Close()
	for e := 0; e < c.Epochs; e++ {
		if _, err := tr.TrainEpoch(); err != nil {
			return fmt.Errorf("core: pretrain epoch %d: %w", e, err)
		}
	}
	return nil
}

// PretrainConfig tunes the pre-initialisation run.
type PretrainConfig struct {
	// T is the reduced time horizon (default 8).
	T int
	// Batch is the pre-training batch size (default 16).
	Batch int
	// LR is the pre-training learning rate (default 2e-3).
	LR float32
	// Epochs is the number of passes (default 1).
	Epochs int
	// BatchesPerEpoch caps each pass (default 16).
	BatchesPerEpoch int
	// Seed drives the run (default the trainer default).
	Seed uint64
}

func (c PretrainConfig) withDefaults() PretrainConfig {
	if c.T == 0 {
		c.T = 8
	}
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.LR == 0 {
		c.LR = 2e-3
	}
	if c.Epochs == 0 {
		c.Epochs = 1
	}
	if c.BatchesPerEpoch == 0 {
		c.BatchesPerEpoch = 16
	}
	return c
}
