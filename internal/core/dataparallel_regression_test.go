package core

import (
	"math"
	"testing"

	"skipper/internal/dataset"
	"skipper/internal/mem"
	"skipper/internal/models"
)

// bitwiseSameWeights reports whether two trainers hold bit-identical weights.
func bitwiseSameWeights(a, b *Trainer) bool {
	ap, bp := a.Net.Params(), b.Net.Params()
	for j := range ap {
		for k := range ap[j].W.Data {
			if ap[j].W.Data[k] != bp[j].W.Data[k] {
				return false
			}
		}
	}
	return true
}

// serialMicro1 builds a serial trainer identical to the dpFactory replicas
// except that it accumulates gradients one sample at a time (MicroBatch 1) —
// the serial configuration whose per-element addition order matches a
// one-sample-per-shard data-parallel reduction exactly.
func serialMicro1(t *testing.T, T int) *Trainer {
	t.Helper()
	data, err := dataset.Open("cifar10", 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := models.Build("customnet", models.Options{Width: 0.5, InShape: []int{3, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, data, Checkpoint{C: 2}, Config{
		T: T, Batch: 2, Seed: 7, MicroBatch: 1, Device: mem.Unlimited(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestDataParallelEmptyShardBitIdentical is the regression test for the
// stale-gradient defect: a replica whose shard is empty (short final batch)
// used to skip ZeroGrads, so its previous step's gradients were folded into
// the all-reduce. With one-sample shards the data-parallel step must now be
// bit-identical to serial training with MicroBatch 1 (the order-matched
// serial configuration), including across the short batch.
func TestDataParallelEmptyShardBitIdentical(t *testing.T) {
	const T = 10
	factory := dpFactory(t, T)
	serial := serialMicro1(t, T)
	defer serial.Close()
	dp, err := NewDataParallel(2, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()

	// Step 1: full batch, one sample per shard. Step 2: short batch leaves
	// replica 1's shard empty — the defect's trigger.
	for _, batch := range [][]int{{0, 1}, {2}} {
		if _, err := serial.TrainBatchIndices(dataset.Train, batch); err != nil {
			t.Fatal(err)
		}
		if _, err := dp.TrainBatchIndices(dataset.Train, batch); err != nil {
			t.Fatal(err)
		}
	}
	if !dp.InSync() {
		t.Fatal("replicas diverged across an empty-shard step")
	}
	if !bitwiseSameWeights(serial, dp.Replicas[0]) {
		t.Fatal("data-parallel weights differ from serial after an empty-shard step (stale gradients reduced in)")
	}
}

// TestDataParallelUnequalShardsExactMean is the regression test for the
// shard-weighting defect: averaging per-replica local means weighted 1/R
// does not equal the global-batch mean when shards are unequal (round-robin
// remainder). The reduced gradient must match the serial full-batch gradient
// to float rounding, not to a 10%-level weighting error.
func TestDataParallelUnequalShardsExactMean(t *testing.T) {
	const T = 10
	factory := dpFactory(t, T)
	serial, err := factory(0)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	dp, err := NewDataParallel(2, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()

	// 3 samples over 2 replicas: shards {0,2} and {1}.
	batch := []int{0, 1, 2}
	if _, err := serial.TrainBatchIndices(dataset.Train, batch); err != nil {
		t.Fatal(err)
	}
	if _, err := dp.TrainBatchIndices(dataset.Train, batch); err != nil {
		t.Fatal(err)
	}

	// Gradients survive the optimizer step (zeroed at the next step's
	// start), so compare the reduced gradient against the serial one. The
	// two accumulate per-sample terms in different orders, so allow float
	// rounding but nothing near the old weighting error.
	sp, rp := serial.Net.Params(), dp.Replicas[0].Net.Params()
	for j := range sp {
		for k := range sp[j].G.Data {
			a, b := float64(sp[j].G.Data[k]), float64(rp[j].G.Data[k])
			if diff := math.Abs(a - b); diff > 1e-4*(math.Abs(a)+math.Abs(b))+1e-9 {
				t.Fatalf("param %q grad[%d]: serial %v vs data-parallel %v (unequal shards mis-weighted)", sp[j].Name, k, a, b)
			}
		}
	}
}
