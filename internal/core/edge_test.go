package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"skipper/internal/dataset"
	"skipper/internal/layers"
	"skipper/internal/mem"
	"skipper/internal/models"
	"skipper/internal/opt"
	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// Checkpoint exactness must also hold when T is not divisible by C (the
// remainder lands in the last segment).
func TestCheckpointExactWithRaggedSegments(t *testing.T) {
	const T = 13 // C=2 -> segments [0,6) and [6,13)
	netA, data, input, labels := tinySetup(t, T)
	netB, _, _, _ := tinySetup(t, T)
	trA := newTestTrainer(t, netA, data, BPTT{}, Config{T: T, Batch: 2})
	trB := newTestTrainer(t, netB, data, Checkpoint{C: 2}, Config{T: T, Batch: 2})
	netA.ZeroGrads()
	if _, err := (BPTT{}).TrainBatch(trA, input, labels); err != nil {
		t.Fatal(err)
	}
	netB.ZeroGrads()
	st, err := (Checkpoint{C: 2}).TrainBatch(trB, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	if st.BackwardSteps != T {
		t.Fatalf("backward steps %d, want %d", st.BackwardSteps, T)
	}
	if d := maxGradDiff(gradsOf(netA), gradsOf(netB)); d != 0 {
		t.Fatalf("ragged-segment checkpointing not exact: %v", d)
	}
}

// Exactness through residual blocks: the per-block sub-deltas must carry
// across segment boundaries correctly.
func TestCheckpointExactThroughResNet(t *testing.T) {
	const T = 44 // resnet20 L_n=20 -> C=2 gives segments of 22 > 20
	build := func() *Trainer {
		net, err := models.Build("resnet20", models.Options{Width: 0.25, InShape: []int{3, 16, 16}})
		if err != nil {
			t.Fatal(err)
		}
		data, err := dataset.Open("cifar10", 1)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrainer(net, data, BPTT{}, Config{T: T, Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		return tr
	}
	trA := build()
	trB := build()
	data := trA.Data
	input, labels := data.SpikeBatch(dataset.Train, []int{0}, T)

	trA.Net.ZeroGrads()
	if _, err := (BPTT{}).TrainBatch(trA, input, labels); err != nil {
		t.Fatal(err)
	}
	trB.Net.ZeroGrads()
	if _, err := (Checkpoint{C: 2}).TrainBatch(trB, input, labels); err != nil {
		t.Fatal(err)
	}
	if d := maxGradDiff(gradsOf(trA.Net), gradsOf(trB.Net)); d != 0 {
		t.Fatalf("resnet checkpointing not exact: max |Δgrad| = %v", d)
	}
}

// Exactness with dropout: the per-iteration mask must be frozen across
// recomputation, otherwise the replay diverges from the first pass.
func TestCheckpointExactWithDropout(t *testing.T) {
	const T = 16
	build := func() *Trainer {
		net, err := models.Build("vgg5", models.Options{Width: 0.25, InShape: []int{3, 16, 16}, DropoutP: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		data, err := dataset.Open("cifar10", 1)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrainer(net, data, BPTT{}, Config{T: T, Batch: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		return tr
	}
	trA := build()
	trB := build()
	input, labels := trA.Data.SpikeBatch(dataset.Train, []int{0, 1}, T)

	// Identical masks on both networks for this iteration.
	trA.Net.BeginIteration(tensor.NewRNG(42))
	trB.Net.BeginIteration(tensor.NewRNG(42))
	defer trA.Net.EndIteration()
	defer trB.Net.EndIteration()

	trA.Net.ZeroGrads()
	if _, err := (BPTT{}).TrainBatch(trA, input, labels); err != nil {
		t.Fatal(err)
	}
	trB.Net.ZeroGrads()
	if _, err := (Checkpoint{C: 2}).TrainBatch(trB, input, labels); err != nil {
		t.Fatal(err)
	}
	if d := maxGradDiff(gradsOf(trA.Net), gradsOf(trB.Net)); d != 0 {
		t.Fatalf("checkpointing with dropout not exact: %v (mask not frozen?)", d)
	}
}

func TestSkipperSingleSegment(t *testing.T) {
	const T = 16
	net, data, input, labels := tinySetup(t, T)
	strat := Skipper{C: 1, P: 30}
	tr := newTestTrainer(t, net, data, strat, Config{T: T, Batch: 2})
	net.ZeroGrads()
	st, err := strat.TrainBatch(tr, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedSteps == 0 {
		t.Fatal("single-segment skipper skipped nothing")
	}
}

func TestTBPTTRaggedWindows(t *testing.T) {
	const T = 14 // trW=6 -> windows 6,6,2
	net, data, input, labels := tinySetup(t, T)
	strat := TBPTT{Window: 6}
	tr := newTestTrainer(t, net, data, strat, Config{T: T, Batch: 2})
	net.ZeroGrads()
	st, err := strat.TrainBatch(tr, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	if st.ForwardSteps != T || st.BackwardSteps != T {
		t.Fatalf("steps fwd=%d bwd=%d, want %d", st.ForwardSteps, st.BackwardSteps, T)
	}
}

// Failure injection: a budget that admits the persistent state but not the
// unrolled graph must surface ErrOutOfMemory from the strategy, and after
// Close the device must be fully drained (no leaked blocks on error paths).
func TestOOMErrorPathLeaksNothing(t *testing.T) {
	const T = 18
	for _, strat := range []Strategy{BPTT{}, Checkpoint{C: 3}, Skipper{C: 3, P: 20}, TBPTT{Window: 6}} {
		// Calibrate: measure the strategy's true peak, then offer 80% of it.
		netProbe, data, _, _ := tinySetup(t, T)
		devProbe := mem.Unlimited()
		trProbe := newTestTrainer(t, netProbe, data, strat,
			Config{T: T, Batch: 4, Device: devProbe, MaxBatchesPerEpoch: 1})
		if _, err := trProbe.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
		budget := devProbe.PeakReserved() * 8 / 10

		net, _, _, _ := tinySetup(t, T)
		dev := mem.NewDevice(mem.Config{Budget: budget})
		tr, err := NewTrainer(net, data, strat, Config{T: T, Batch: 4, Device: dev, MaxBatchesPerEpoch: 1})
		if err != nil {
			// Even the persistent state did not fit — acceptable, nothing to leak.
			continue
		}
		_, err = tr.TrainEpoch()
		if err == nil {
			t.Fatalf("%s: expected OOM at 80%% of its measured peak", strat.Name())
		}
		if !errors.Is(err, mem.ErrOutOfMemory) {
			t.Fatalf("%s: error %v is not an OOM", strat.Name(), err)
		}
		tr.Close()
		if got := dev.Allocated(); got != 0 {
			t.Fatalf("%s: leaked %d bytes on the OOM path", strat.Name(), got)
		}
	}
}

func TestEvaluateOOMPropagates(t *testing.T) {
	const T = 18
	net, data, _, _ := tinySetup(t, T)
	dev := mem.NewDevice(mem.Config{Budget: 900 << 10})
	tr, err := NewTrainer(net, data, Checkpoint{C: 3}, Config{T: T, Batch: 64, Device: dev})
	if err != nil {
		t.Skip("persistent state already over budget")
	}
	defer tr.Close()
	if _, _, err := tr.Evaluate(1); err == nil {
		t.Fatal("expected eval OOM at batch 64 under 900 KiB")
	}
}

func TestGradClipLimitsUpdate(t *testing.T) {
	const T = 12
	run := func(clip float32) float32 {
		net, data, _, _ := tinySetup(t, T)
		w0 := net.Params()[0].W.Clone()
		cfg := Config{T: T, Batch: 2, GradClip: clip, LR: 0.1, MaxBatchesPerEpoch: 1}
		tr := newTestTrainer(t, net, data, BPTT{}, cfg)
		if _, err := tr.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
		diff := tensor.New(w0.Shape()...)
		tensor.Sub(diff, net.Params()[0].W, w0)
		return tensor.Norm2(diff)
	}
	// Adam normalises step size, so compare against an absurdly small clip
	// which starves the update entirely.
	free := run(0)
	starved := run(1e-12)
	if starved >= free {
		t.Fatalf("grad clip had no effect: %v vs %v", starved, free)
	}
}

// The readout always receives the loss exactly once per batch in skipper,
// even when the final segment is heavily skipped.
func TestSkipperLossInjectionSurvivesHeavySkipping(t *testing.T) {
	const T = 24
	net, data, input, labels := tinySetup(t, T) // customnet L_n = 4
	maxP := MaxSkipPercent(T, 2, net.StatefulCount())
	strat := Skipper{C: 2, P: float64(int(maxP))}
	tr := newTestTrainer(t, net, data, strat, Config{T: T, Batch: 2})
	net.ZeroGrads()
	st, err := strat.TrainBatch(tr, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	// The readout weight gradient must be non-zero: the loss reached it.
	var readoutGrad float32
	ps := net.Params()
	readoutGrad = tensor.Norm2(ps[len(ps)-2].G) + tensor.Norm2(ps[len(ps)-1].G)
	if readoutGrad == 0 {
		t.Fatalf("loss gradient lost under p=%v skipping", strat.P)
	}
	if st.SkippedSteps == 0 {
		t.Fatal("expected heavy skipping")
	}
}

// Two successive batches must not interfere: records from batch 1 are gone
// before batch 2 runs (peak activations for 2 sequential batches equals the
// single-batch peak).
func TestSequentialBatchesSameActivationPeak(t *testing.T) {
	const T = 12
	peakAfter := func(nBatches int) int64 {
		net, data, _, _ := tinySetup(t, T)
		dev := mem.Unlimited()
		tr := newTestTrainer(t, net, data, Checkpoint{C: 2},
			Config{T: T, Batch: 2, Device: dev, MaxBatchesPerEpoch: nBatches})
		if _, err := tr.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
		return dev.PeakBy(mem.Activations)
	}
	if a, b := peakAfter(1), peakAfter(3); a != b {
		t.Fatalf("activation peak grew across batches: %d -> %d (leak)", a, b)
	}
}

func TestEvaluateConfusion(t *testing.T) {
	const T = 10
	net, data, _, _ := tinySetup(t, T)
	tr := newTestTrainer(t, net, data, BPTT{}, Config{T: T, Batch: 4})
	conf, err := tr.EvaluateConfusion(3)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Total() != 12 {
		t.Fatalf("confusion total = %d, want 12", conf.Total())
	}
	if conf.K != 10 {
		t.Fatalf("confusion classes = %d", conf.K)
	}
	// Consistency with Evaluate's accuracy on the same batches.
	_, acc, err := tr.Evaluate(3)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Accuracy() != acc {
		t.Fatalf("confusion accuracy %v != Evaluate %v", conf.Accuracy(), acc)
	}
}

func TestLRScheduleAppliedPerEpoch(t *testing.T) {
	const T = 10
	net, data, _, _ := tinySetup(t, T)
	sched := opt.StepDecay{Base: 0.01, Gamma: 0.1, Every: 1}
	tr := newTestTrainer(t, net, data, BPTT{}, Config{
		T: T, Batch: 2, MaxBatchesPerEpoch: 1, Schedule: sched,
	})
	for e := 1; e <= 3; e++ {
		if _, err := tr.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
		adam, ok := tr.Opt.(*opt.Adam)
		if !ok {
			t.Fatal("default optimizer should be Adam")
		}
		want := sched.LR(e)
		if adam.LR != want {
			t.Fatalf("epoch %d LR = %v, want %v", e, adam.LR, want)
		}
	}
}

// Windowed loss: checkpointing must remain gradient-exact when the loss
// covers the last K timesteps instead of only the final one.
func TestCheckpointExactWithLossWindow(t *testing.T) {
	const T, K = 14, 4
	netA, data, input, labels := tinySetup(t, T)
	netB, _, _, _ := tinySetup(t, T)
	cfg := Config{T: T, Batch: 2, LossWindow: K}
	trA := newTestTrainer(t, netA, data, BPTT{}, cfg)
	trB := newTestTrainer(t, netB, data, Checkpoint{C: 2}, cfg)
	netA.ZeroGrads()
	stA, err := (BPTT{}).TrainBatch(trA, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	netB.ZeroGrads()
	stB, err := (Checkpoint{C: 2}).TrainBatch(trB, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	if stA.Loss != stB.Loss {
		t.Fatalf("windowed loss differs: %v vs %v", stA.Loss, stB.Loss)
	}
	if d := maxGradDiff(gradsOf(netA), gradsOf(netB)); d != 0 {
		t.Fatalf("windowed checkpointing not exact: %v", d)
	}
}

// Skipper must keep every loss-carrying timestep alive in the replay graph.
func TestSkipperKeepsLossWindowSteps(t *testing.T) {
	const T, K = 24, 6
	net, data, input, labels := tinySetup(t, T)
	strat := Skipper{C: 2, P: 30}
	tr := newTestTrainer(t, net, data, strat, Config{T: T, Batch: 2, LossWindow: K})
	net.ZeroGrads()
	st, err := strat.TrainBatch(tr, input, labels)
	if err != nil {
		t.Fatal(err)
	}
	// The K loss steps are unskippable, so at most T-2-(K-1) interior steps
	// can be skipped (T-1 is in the window anyway).
	if st.SkippedSteps > T-2-(K-1) {
		t.Fatalf("skipped %d steps; loss window must be kept", st.SkippedSteps)
	}
	if st.Loss <= 0 {
		t.Fatalf("loss %v", st.Loss)
	}
}

func TestLossWindowValidation(t *testing.T) {
	net, data, _, _ := tinySetup(t, 12)
	if _, err := NewTrainer(net, data, BPTT{}, Config{T: 12, Batch: 1, LossWindow: 13}); err == nil {
		t.Fatal("loss window > T must be rejected")
	}
	if _, err := NewTrainer(net, data, TBPTT{Window: 6}, Config{T: 12, Batch: 1, LossWindow: 2}); err == nil {
		t.Fatal("tbptt with LossWindow > 1 must be rejected")
	}
}

// Checkpoint exactness must hold through explicitly recurrent layers: the
// lateral credit path crosses segment boundaries via the carried deltas.
func TestCheckpointExactThroughRecurrence(t *testing.T) {
	const T = 12
	build := func() *Trainer {
		nrn := snn.Params{Leak: 0.9, Threshold: 0.8}
		net := layers.NewNetwork("recnet", []int{3, 16, 16},
			layers.NewRecurrentSpikingLinear("rec1", 12, nrn, snn.FastSigmoid{}),
			layers.NewReadout("out", 10, nrn),
		)
		if err := net.Build(tensor.NewRNG(77)); err != nil {
			t.Fatal(err)
		}
		data, err := dataset.Open("cifar10", 1)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrainer(net, data, BPTT{}, Config{T: T, Batch: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		return tr
	}
	trA := build()
	trB := build()
	input, labels := trA.Data.SpikeBatch(dataset.Train, []int{0, 1}, T)
	trA.Net.ZeroGrads()
	if _, err := (BPTT{}).TrainBatch(trA, input, labels); err != nil {
		t.Fatal(err)
	}
	trB.Net.ZeroGrads()
	if _, err := (Checkpoint{C: 3}).TrainBatch(trB, input, labels); err != nil {
		t.Fatal(err)
	}
	if d := maxGradDiff(gradsOf(trA.Net), gradsOf(trB.Net)); d != 0 {
		t.Fatalf("recurrent checkpointing not exact: %v", d)
	}
}

// Gradient accumulation: micro-batching must cut the live activation peak
// while producing (near-)identical gradients to the full-batch pass.
func TestMicroBatchReducesActivationPeak(t *testing.T) {
	const T = 12
	peakOf := func(micro int) int64 {
		net, data, _, _ := tinySetup(t, T)
		dev := mem.Unlimited()
		tr := newTestTrainer(t, net, data, BPTT{},
			Config{T: T, Batch: 8, MicroBatch: micro, Device: dev, MaxBatchesPerEpoch: 1})
		if _, err := tr.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
		return dev.PeakBy(mem.Activations)
	}
	full, quarter := peakOf(0), peakOf(2)
	if quarter >= full {
		t.Fatalf("micro-batch peak %d >= full-batch peak %d", quarter, full)
	}
}

func TestMicroBatchGradientsMatchFullBatch(t *testing.T) {
	const T = 12
	grads := func(micro int) []*tensor.Tensor {
		// Gradients are read after the optimizer step; the step does not
		// modify p.G, so the accumulated values are intact.
		net, data, _, _ := tinySetup(t, T)
		tr := newTestTrainer(t, net, data, BPTT{},
			Config{T: T, Batch: 4, MicroBatch: micro, Seed: 5})
		if _, err := tr.TrainBatchIndices(dataset.Train, []int{0, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		return gradsOf(net)
	}
	full := grads(0)
	half := grads(2)
	if d := maxGradDiff(full, half); d > 2e-5 {
		t.Fatalf("micro-batched gradients diverge from full batch: max |Δ| = %v", d)
	}
}

func TestMicroBatchValidation(t *testing.T) {
	net, data, _, _ := tinySetup(t, 12)
	if _, err := NewTrainer(net, data, BPTT{}, Config{T: 12, Batch: 4, MicroBatch: 8}); err == nil {
		t.Fatal("micro-batch > batch must be rejected")
	}
}

// Spike compression is lossless: checkpointing with CompressSpikes must
// still reproduce baseline BPTT gradients bit-for-bit.
func TestCompressedCheckpointStillExact(t *testing.T) {
	const T = 12
	netA, data, input, labels := tinySetup(t, T)
	netB, _, _, _ := tinySetup(t, T)
	trA := newTestTrainer(t, netA, data, BPTT{}, Config{T: T, Batch: 2})
	trB := newTestTrainer(t, netB, data, Checkpoint{C: 2}, Config{T: T, Batch: 2, CompressSpikes: true})
	netA.ZeroGrads()
	if _, err := (BPTT{}).TrainBatch(trA, input, labels); err != nil {
		t.Fatal(err)
	}
	netB.ZeroGrads()
	if _, err := (Checkpoint{C: 2}).TrainBatch(trB, input, labels); err != nil {
		t.Fatal(err)
	}
	if d := maxGradDiff(gradsOf(netA), gradsOf(netB)); d != 0 {
		t.Fatalf("compressed checkpointing not exact: %v", d)
	}
}

// Compression shrinks the charged checkpoint footprint.
func TestCompressSpikesReducesActivationPeak(t *testing.T) {
	const T = 24
	peakOf := func(compress bool) int64 {
		net, data, input, labels := tinySetup(t, T)
		dev := mem.Unlimited()
		strat := Skipper{C: 2, P: 25}
		tr := newTestTrainer(t, net, data, strat,
			Config{T: T, Batch: 4, Device: dev, CompressSpikes: compress})
		net.ZeroGrads()
		if _, err := strat.TrainBatch(tr, input, labels); err != nil {
			t.Fatal(err)
		}
		return dev.PeakBy(mem.Activations)
	}
	raw, packed := peakOf(false), peakOf(true)
	if packed >= raw {
		t.Fatalf("compression did not reduce peak: %d vs %d", packed, raw)
	}
}

// Compression applies to the adaptive variant too.
func TestCompressWithAdaptiveSkipper(t *testing.T) {
	const T = 24
	net, data, _, _ := tinySetup(t, T)
	strat := &AdaptiveSkipper{C: 2, P: 20}
	tr := newTestTrainer(t, net, data, strat,
		Config{T: T, Batch: 2, CompressSpikes: true, MaxBatchesPerEpoch: 2})
	ep, err := tr.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if ep.N == 0 {
		t.Fatal("no samples trained")
	}
}

func TestMetricsJSONL(t *testing.T) {
	const T = 12
	var buf bytes.Buffer
	net, data, _, _ := tinySetup(t, T)
	tr := newTestTrainer(t, net, data, Skipper{C: 2, P: 20},
		Config{T: T, Batch: 2, MaxBatchesPerEpoch: 2, Metrics: &buf})
	if _, err := tr.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("metrics lines = %d, want 2", len(lines))
	}
	var m map[string]any
	if err := json.Unmarshal(lines[1], &m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if m["epoch"].(float64) != 2 || m["strategy"] != "skipper(C=2,p=20)" {
		t.Fatalf("metrics content: %v", m)
	}
	for _, key := range []string{"loss", "train_accuracy", "skipped_steps", "peak_reserved_bytes", "duration_ms"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics missing %q", key)
		}
	}
}

// Batch norm + checkpointing: gradients stay bit-exact, and the running
// statistics must be updated exactly once per batch (the replay is frozen).
func TestCheckpointExactThroughBatchNorm(t *testing.T) {
	const T = 14
	build := func() (*Trainer, *layers.TemporalBatchNorm) {
		nrn := snn.Params{Leak: 0.9, Threshold: 0.8}
		bn := layers.NewTemporalBatchNorm("bn1")
		net := layers.NewNetwork("bn-net", []int{3, 16, 16},
			layers.NewSpikingConv2D("c1", 4, 3, 1, 1, nrn, snn.Triangle{}),
			bn,
			layers.NewAvgPool2D("p1", 2),
			layers.NewReadout("out", 10, nrn),
		)
		if err := net.Build(tensor.NewRNG(31)); err != nil {
			t.Fatal(err)
		}
		data, err := dataset.Open("cifar10", 1)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrainer(net, data, BPTT{}, Config{T: T, Batch: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		return tr, bn
	}
	trA, bnA := build()
	trB, bnB := build()
	if _, err := trA.TrainBatchIndices(dataset.Train, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	trB.Strat = Checkpoint{C: 2}
	if _, err := trB.TrainBatchIndices(dataset.Train, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	// Weights after one identical optimizer step must match exactly.
	pa, pb := trA.Net.Params(), trB.Net.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("weights diverged at %s[%d]", pa[i].Name, j)
			}
		}
	}
	// Running statistics must be identical: the checkpointed replay did not
	// double-count any timestep.
	statsA := bnA.RunningMean()
	statsB := bnB.RunningMean()
	for i := range statsA {
		if statsA[i] != statsB[i] {
			t.Fatalf("running stats diverged: %v vs %v (replay double-counted)", statsA, statsB)
		}
	}
}
