package core

import (
	"testing"
	"testing/quick"
)

// Property: SegmentBounds partitions [0, T) exactly — no gaps, no overlap —
// for every valid (T, C), and CheckpointTimes are the segment starts.
func TestSegmentPartitionProperty(t *testing.T) {
	f := func(tRaw, cRaw uint8) bool {
		T := int(tRaw%200) + 1
		C := int(cRaw%uint8(T)) + 1
		covered := 0
		prevEnd := 0
		cps := CheckpointTimes(T, C)
		for s := 0; s < C; s++ {
			start, end := SegmentBounds(T, C, s)
			if start != prevEnd {
				return false // gap or overlap
			}
			if end < start {
				return false
			}
			if cps[s] != start {
				return false // checkpoint must sit at the segment start
			}
			covered += end - start
			prevEnd = end
		}
		return covered == T && prevEnd == T
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: selectSurvivors always covers the segment interior exactly
// (survivors + skipped = interior steps), always keeps the global final
// step, and returns survivors in ascending order.
func TestSelectSurvivorsProperty(t *testing.T) {
	f := func(scoresRaw []uint16, pRaw uint8, splitRaw uint8) bool {
		T := len(scoresRaw)
		if T < 3 {
			return true
		}
		scores := make([]float64, T)
		for i, v := range scoresRaw {
			scores[i] = float64(v)
		}
		start := int(splitRaw) % (T - 1)
		end := T
		s := Skipper{P: float64(pRaw % 101)}
		var st StepStats
		la := newLossAccumulator(Config{T: T, Batch: 1}, 0, nil)
		survivors := s.selectSurvivors(scores, start, end, la, &st)

		if st.SkippedSteps+len(survivors) != end-start-1 {
			return false
		}
		last := start
		keptFinal := false
		for _, x := range survivors {
			if x <= last || x <= start || x >= end {
				return false // must be ascending, interior only
			}
			last = x
			if x == T-1 {
				keptFinal = true
			}
		}
		// The final step belongs to this segment, so it must survive.
		return keptFinal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxSkipPercent is monotone — more layers or more checkpoints
// never increase the admissible skip fraction; more timesteps never
// decrease it.
func TestMaxSkipPercentMonotoneProperty(t *testing.T) {
	f := func(tRaw, cRaw, lnRaw uint8) bool {
		T := int(tRaw%200) + 2
		C := int(cRaw%16) + 1
		Ln := int(lnRaw%32) + 1
		p := MaxSkipPercent(T, C, Ln)
		if p < 0 || p > 100 {
			return false
		}
		if MaxSkipPercent(T, C, Ln+1) > p {
			return false
		}
		if MaxSkipPercent(T, C+1, Ln) > p {
			return false
		}
		if MaxSkipPercent(T+10, C, Ln) < p {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a config admitted by ValidateSkip is also admitted by
// ValidateCheckpoints (Eq. 7 presupposes the Sec. V-A constraint).
func TestValidationConsistencyProperty(t *testing.T) {
	f := func(tRaw, cRaw, lnRaw, pRaw uint8) bool {
		T := int(tRaw%200) + 1
		C := int(cRaw%16) + 1
		Ln := int(lnRaw % 32)
		p := float64(pRaw % 101)
		if ValidateCheckpoints(T, C, Ln) != nil {
			return true // not admitted anyway
		}
		if err := ValidateSkip(T, C, Ln, p); err == nil {
			// Admitted: the segment must genuinely leave room for Ln layers
			// among the surviving steps.
			perSeg := float64(T) / float64(C)
			return (1-p/100)*perSeg >= float64(Ln)-1e-9
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
