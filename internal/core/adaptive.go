package core

import (
	"fmt"
	"time"

	"skipper/internal/layers"
	"skipper/internal/tensor"
	"skipper/internal/trace"
)

// AdaptiveSkipper extends Skipper with activity-aware checkpoint placement —
// one of the refinements the paper leaves open (Sec. VI-A discusses richer
// activity monitors; placement is the natural next knob). Instead of
// spacing the C checkpoints uniformly in time, each training batch places
// them so that every segment carries roughly equal *cumulative spike
// activity*, using an exponential moving average of the previous batches'
// SAM traces (activity profiles are stable across batches, so last batch's
// profile is a good predictor for this one). Quiet stretches then share a
// segment — where skipping is cheap — while busy stretches get shorter
// segments, trimming the worst-case live-segment memory.
//
// The first batch (no profile yet) falls back to uniform placement, so the
// strategy is never worse-configured than plain Skipper. Every segment is
// still forced to be longer than L_n (Sec. V-A).
type AdaptiveSkipper struct {
	// C is the number of temporal checkpoints.
	C int
	// P is the skip percentile within each segment (Eq. 7-bounded against
	// the largest segment the placement can produce).
	P float64
	// Metric is the SAM metric; nil means spike sum.
	Metric SAMMetric
	// Momentum is the EMA factor for the activity profile; 0 means 0.7.
	Momentum float64

	profile []float64
	ln      int
}

// Name implements Strategy.
func (a *AdaptiveSkipper) Name() string {
	return fmt.Sprintf("adaskipper(C=%d,p=%.0f)", a.C, a.P)
}

// Segments implements Segmenter: the backward pass flushes once per placed
// checkpoint segment (placements always pads to exactly C bounds).
func (a *AdaptiveSkipper) Segments() int { return a.C }

// Validate implements Strategy.
func (a *AdaptiveSkipper) Validate(cfg Config, net *layers.Network) error {
	if err := ValidateCheckpoints(cfg.T, a.C, net.StatefulCount()); err != nil {
		return err
	}
	a.ln = net.StatefulCount()
	if a.P < 0 || a.P > 100 {
		return fmt.Errorf("core: adaptive skipper percentile %v outside [0,100]", a.P)
	}
	return nil
}

func (a *AdaptiveSkipper) metric() SAMMetric {
	if a.Metric == nil {
		return SpikeSum{}
	}
	return a.Metric
}

func (a *AdaptiveSkipper) momentum() float64 {
	if a.Momentum == 0 {
		return 0.7
	}
	return a.Momentum
}

// placements returns this batch's checkpoint timesteps.
func (a *AdaptiveSkipper) placements(T int) []int {
	if a.profile == nil || len(a.profile) != T {
		return CheckpointTimes(T, a.C)
	}
	return EqualActivityBounds(a.profile, a.C, a.ln)
}

// EqualActivityBounds places C checkpoint starts so each segment holds
// roughly 1/C of the total activity mass, while keeping every segment
// strictly longer than minLen (the L_n constraint). The first bound is
// always 0.
func EqualActivityBounds(profile []float64, C, minLen int) []int {
	T := len(profile)
	bounds := make([]int, 1, C)
	bounds[0] = 0
	if C == 1 {
		return bounds
	}
	var total float64
	for _, v := range profile {
		total += v
	}
	if total <= 0 {
		return CheckpointTimes(T, C)
	}
	target := total / float64(C)
	var acc float64
	for t := 0; t < T && len(bounds) < C; t++ {
		acc += profile[t]
		if acc >= target*float64(len(bounds)) {
			next := t + 1
			// Enforce the minimum segment length on both sides.
			if next-bounds[len(bounds)-1] <= minLen {
				next = bounds[len(bounds)-1] + minLen + 1
			}
			remainingSegs := C - len(bounds)
			if next > T-remainingSegs*(minLen+1) {
				next = T - remainingSegs*(minLen+1)
			}
			if next <= bounds[len(bounds)-1] {
				continue
			}
			bounds = append(bounds, next)
		}
	}
	for len(bounds) < C {
		bounds = append(bounds, bounds[len(bounds)-1]+minLen+1)
	}
	return bounds
}

// TrainBatch implements Strategy; the structure mirrors Skipper.TrainBatch
// with per-batch boundary placement and an EMA profile update.
func (a *AdaptiveSkipper) TrainBatch(tr *Trainer, input []*tensor.Tensor, labels []int) (StepStats, error) {
	T := tr.Cfg.T
	st := StepStats{N: len(labels)}
	rs := tr.newRecordStore()
	defer rs.dropAll()

	bounds := a.placements(T)
	la := newLossAccumulator(tr.Cfg, tr.lossDenom, labels)
	sam := &samTrace{metric: a.metric(), scores: make([]float64, T)}
	if err := checkpointForward(tr, input, la, bounds, rs, &st, sam); err != nil {
		return st, err
	}
	st.Loss, st.Correct = la.Loss, la.Correct

	// Update the activity profile for the next batch's placement.
	if a.profile == nil || len(a.profile) != T {
		a.profile = append([]float64(nil), sam.scores...)
	} else {
		m := a.momentum()
		for t := range a.profile {
			a.profile[t] = m*a.profile[t] + (1-m)*sam.scores[t]
		}
	}

	// Everything from here on is replay: freeze first-pass-only side
	// effects (batch-norm running statistics).
	tr.Net.BeginRecompute()
	defer tr.Net.EndRecompute()

	scratch, err := tr.deltaScratch(len(labels))
	if err != nil {
		return st, fmt.Errorf("core: adaptive skipper scratch: %w", err)
	}
	defer scratch.Release()

	outIdx := len(tr.Net.Layers) - 1
	inner := Skipper{C: a.C, P: a.P, Metric: a.Metric}
	var deltas []*layers.Delta
	lossInjected := false
	for seg := len(bounds) - 1; seg >= 0; seg-- {
		start := bounds[seg]
		end := T
		if seg+1 < len(bounds) {
			end = bounds[seg+1]
		}
		survivors := inner.selectSurvivors(sam.scores, start, end, la, &st)

		rec := time.Now()
		states := rs.get(start)
		for _, t := range survivors {
			states = tr.Net.ForwardStep(input[t], states)
			if err := rs.put(t, states); err != nil {
				return st, fmt.Errorf("core: adaptive skipper recompute t=%d: %w", t, err)
			}
			st.RecomputedSteps++
		}
		tr.phaseDone(&st.RecomputeTime, "recompute", rec,
			trace.Attr{Key: "seg", Val: int64(seg)},
			trace.Attr{Key: "survivors", Val: int64(len(survivors))})

		bwd := time.Now()
		for i := len(survivors) - 1; i >= -1; i-- {
			t := start
			if i >= 0 {
				t = survivors[i]
			}
			var inject map[int]*tensor.Tensor
			if dl := la.at(t); dl != nil {
				inject = map[int]*tensor.Tensor{outIdx: dl}
				if t == T-1 {
					lossInjected = true
				}
			}
			deltas = tr.Net.BackwardStep(input[t], rs.get(t), inject, deltas)
			rs.drop(t)
			st.BackwardSteps++
		}
		tr.phaseDone(&st.BackwardTime, "backward", bwd, trace.Attr{Key: "seg", Val: int64(seg)})
		tr.segmentFlushed(len(bounds)-seg, len(bounds))
	}
	if !lossInjected {
		return st, fmt.Errorf("core: adaptive skipper never injected the loss gradient")
	}
	return st, nil
}
