package core

import (
	"testing"
)

func TestBestCheckpointCount(t *testing.T) {
	// T=100, Ln=6: √T = 10, admissible (segment > 6 needs C <= 14) -> 10.
	c, err := BestCheckpointCount(100, 6)
	if err != nil || c != 10 {
		t.Fatalf("BestCheckpointCount(100,6) = %d, %v; want 10", c, err)
	}
	// T=36, Ln=20: only C=1 admissible (36/2=18 <= 20).
	c, err = BestCheckpointCount(36, 20)
	if err != nil || c != 1 {
		t.Fatalf("BestCheckpointCount(36,20) = %d, %v; want 1", c, err)
	}
	// T <= Ln: C=1 still requires T/1 > Ln.
	if _, err := BestCheckpointCount(10, 20); err == nil {
		t.Fatal("inadmissible horizon must error")
	}
	if _, err := BestCheckpointCount(0, 1); err == nil {
		t.Fatal("T=0 must error")
	}
}

func TestFitRunsAndReports(t *testing.T) {
	const T = 10
	net, data, _, _ := tinySetup(t, T)
	tr := newTestTrainer(t, net, data, Checkpoint{C: 2},
		Config{T: T, Batch: 8, LR: 2e-3, MaxBatchesPerEpoch: 6})
	var seen int
	res, err := tr.Fit(FitOptions{
		MaxEpochs:   3,
		EvalBatches: 2,
		OnEpoch: func(epoch int, train EpochStats, valAcc float64) {
			seen++
			if train.Batches != 6 {
				t.Fatalf("epoch %d batches %d", epoch, train.Batches)
			}
			if valAcc < 0 || valAcc > 1 {
				t.Fatalf("valAcc %v", valAcc)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 3 || seen != 3 {
		t.Fatalf("epochs %d seen %d, want 3", res.Epochs, seen)
	}
	if res.BestEpoch < 1 || res.BestEpoch > 3 {
		t.Fatalf("best epoch %d", res.BestEpoch)
	}
	if res.Stopped {
		t.Fatal("should not early-stop without patience")
	}
}

func TestFitEarlyStops(t *testing.T) {
	const T = 10
	net, data, _, _ := tinySetup(t, T)
	// LR=0 defaults to 1e-3; use an effectively frozen optimizer by clipping
	// gradients to nothing, so validation accuracy cannot improve.
	tr := newTestTrainer(t, net, data, BPTT{},
		Config{T: T, Batch: 4, GradClip: 1e-12, MaxBatchesPerEpoch: 2})
	res, err := tr.Fit(FitOptions{MaxEpochs: 10, Patience: 2, EvalBatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("expected early stop, ran %d epochs", res.Epochs)
	}
	if res.Epochs >= 10 {
		t.Fatal("patience did not shorten the run")
	}
}
