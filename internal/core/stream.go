package core

import (
	"fmt"
	"strings"

	"skipper/internal/layers"
	"skipper/internal/tensor"
)

// StreamState is a resumable inference stream: the rolling per-layer state
// that InferStream keeps internally, extracted so a serving session can hold
// it across requests, snapshot it to a durable record, ship it to another
// replica, and resume bit-identically. Timesteps advance one of two ways:
// StepInput runs the full forward on an event tensor, StepQuiet advances the
// membranes by the leak-only fast path (layers.QuietState), falling back to
// a full zero-input forward when the stack is outside the quiet model.
type StreamState struct {
	net    *layers.Network
	batch  int
	states []*layers.LayerState
	steps  int

	quiet  *layers.QuietState
	zeroIn *tensor.Tensor

	// QuietSteps / FullSteps / QuietFallbacks count how timesteps were
	// advanced, for trace counters and the bench's skip accounting.
	QuietSteps     int64
	FullSteps      int64
	QuietFallbacks int64
}

// NewStreamState starts an empty stream (no timesteps seen) over net at a
// fixed batch size. The network's weights are read on every step; the
// caller owns keeping them stable for the stream's lifetime.
func NewStreamState(net *layers.Network, batch int) *StreamState {
	s := &StreamState{net: net, batch: batch}
	if q := layers.NewQuietState(net, batch); q.Supported() {
		s.quiet = q
	}
	return s
}

// Steps returns how many timesteps the stream has advanced since t = 0.
func (s *StreamState) Steps() int { return s.steps }

// Batch returns the stream's fixed batch size.
func (s *StreamState) Batch() int { return s.batch }

// QuietSupported reports whether the leak-only fast path covers this
// network (false falls back to full zero-input forwards, still correct).
func (s *StreamState) QuietSupported() bool { return s.quiet != nil }

// StepInput advances one timestep on input x [batch, InShape...].
func (s *StreamState) StepInput(x *tensor.Tensor) {
	s.states = s.net.ForwardStep(x, s.states)
	s.steps++
	s.FullSteps++
}

// StepQuiet advances one timestep under an all-zero input, via the
// leak-only fast path when supported and a full zero-input forward
// otherwise. Both are bitwise identical to StepInput on a zero tensor.
func (s *StreamState) StepQuiet() {
	if s.quiet != nil {
		if st, ok := s.quiet.Step(s.states); ok {
			s.states = st
			s.steps++
			s.QuietSteps++
			return
		}
		s.QuietFallbacks++
	}
	if s.zeroIn == nil {
		s.zeroIn = tensor.New(append([]int{s.batch}, s.net.InShape...)...)
	}
	s.StepInput(s.zeroIn)
}

// Logits returns the readout output at the current timestep (nil before the
// first step). The returned tensor aliases live state; clone to keep it.
func (s *StreamState) Logits() *tensor.Tensor {
	if s.states == nil {
		return nil
	}
	return s.net.Logits(s.states)
}

// InvalidateQuietCache rebuilds the cached zero-input currents on next use;
// call after the network's weights are rewritten in place.
func (s *StreamState) InvalidateQuietCache() {
	if s.quiet != nil {
		s.quiet.Invalidate()
	}
}

// Capture snapshots the stream's membrane state as named tensors, cloned so
// the record stays stable while the stream keeps advancing. Stateful layers
// contribute "layerNN.u" and "layerNN.o" (both sides of the LIF recurrence
// — the reset term needs o_{t−1} too); composite layers recurse into
// "layerNN.subK.*". Stateless layers contribute nothing and are rebuilt as
// nil states on restore.
func (s *StreamState) Capture() []tensor.Named {
	var out []tensor.Named
	for i, st := range s.states {
		if !s.net.Layers[i].Stateful() {
			continue
		}
		captureState(fmt.Sprintf("layer%02d", i), st, &out)
	}
	return out
}

func captureState(prefix string, st *layers.LayerState, out *[]tensor.Named) {
	if st == nil {
		return
	}
	if st.U != nil {
		*out = append(*out, tensor.Named{Name: prefix + ".u", T: st.U.Clone()})
	}
	if o := st.DenseO(); o != nil {
		*out = append(*out, tensor.Named{Name: prefix + ".o", T: o.Clone()})
	}
	for k, sub := range st.Sub {
		captureState(fmt.Sprintf("%s.sub%d", prefix, k), sub, out)
	}
}

// Restore rebuilds the stream's per-layer state from a Capture record,
// validating every tensor against the network's layer shapes — the guard
// that refuses to graft a snapshot onto a architecturally different (or
// differently sized) model. steps restores the timestep cursor.
func (s *StreamState) Restore(named []tensor.Named, steps int) error {
	byName := make(map[string]*tensor.Tensor, len(named))
	for _, n := range named {
		if _, dup := byName[n.Name]; dup {
			return fmt.Errorf("core: stream restore: duplicate state tensor %q", n.Name)
		}
		byName[n.Name] = n.T
	}
	used := 0
	outShapes := s.net.OutShapes()
	states := make([]*layers.LayerState, len(s.net.Layers))
	for i, l := range s.net.Layers {
		prefix := fmt.Sprintf("layer%02d", i)
		st, n, err := restoreState(prefix, byName)
		if err != nil {
			return err
		}
		used += n
		if !l.Stateful() {
			if st != nil {
				return fmt.Errorf("core: stream restore: state %q for stateless layer %s", prefix, l.Name())
			}
			continue
		}
		if st == nil {
			return fmt.Errorf("core: stream restore: missing state for stateful layer %s (%s)", l.Name(), prefix)
		}
		want := append([]int{s.batch}, outShapes[i]...)
		for _, tt := range []*tensor.Tensor{st.U, st.O} {
			if tt == nil {
				return fmt.Errorf("core: stream restore: %s needs both .u and .o", prefix)
			}
			if !shapeEq(tt.Shape(), want) {
				return fmt.Errorf("core: stream restore: %s shape %v does not fit layer %s (want %v)",
					prefix, tt.Shape(), l.Name(), want)
			}
		}
		states[i] = st
	}
	if used != len(named) {
		return fmt.Errorf("core: stream restore: %d of %d state tensors did not match any layer (model mismatch)",
			len(named)-used, len(named))
	}
	s.states = states
	s.steps = steps
	return nil
}

// restoreState assembles one layer's state (or nil) from the name map and
// reports how many record entries it consumed.
func restoreState(prefix string, byName map[string]*tensor.Tensor) (*layers.LayerState, int, error) {
	u, okU := byName[prefix+".u"]
	o, okO := byName[prefix+".o"]
	// Base case: nothing in the record under this prefix. Without this the
	// sub recursion below would descend ".sub0.sub0..." forever.
	if !okU && !okO && !hasSub(prefix, byName) {
		return nil, 0, nil
	}
	used := 0
	if okU {
		used++
	}
	if okO {
		used++
	}
	var sub []*layers.LayerState
	for k := 0; ; k++ {
		s, n, err := restoreState(fmt.Sprintf("%s.sub%d", prefix, k), byName)
		if err != nil {
			return nil, used, err
		}
		if s == nil {
			break
		}
		used += n
		sub = append(sub, s)
	}
	st := &layers.LayerState{Sub: sub}
	if okU {
		st.U = u.Clone()
	}
	if okO {
		st.O = o.Clone()
	}
	return st, used, nil
}

// hasSub reports whether any record entry lives under prefix's sub tree.
func hasSub(prefix string, byName map[string]*tensor.Tensor) bool {
	p := prefix + ".sub"
	for name := range byName {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
