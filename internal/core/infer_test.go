package core

import (
	"testing"

	"skipper/internal/dataset"
	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/tensor"
)

// TestInferMatchesEvaluatePath checks the inference path against a manual
// rolling-state forward: full-horizon predictions are the argmax of the
// time-accumulated readout output.
func TestInferMatchesEvaluatePath(t *testing.T) {
	src, err := dataset.Open("nmnist", 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := models.Build("customnet", models.Options{Width: 0.5, Classes: src.Classes(), InShape: src.InShape()})
	if err != nil {
		t.Fatal(err)
	}
	const T, B = 12, 4
	input, _ := src.SpikeBatch(dataset.Test, []int{0, 1, 2, 3}, T)

	res := Infer(net, input, InferOptions{})
	if res.StepsRun != T || res.StepsSaved() != 0 || res.EarlyExits() != 0 {
		t.Fatalf("full run must execute all steps: %+v", res)
	}

	// Reference: step manually, argmax at the last step.
	net2, err := models.Build("customnet", models.Options{Width: 0.5, Classes: src.Classes(), InShape: src.InShape()})
	if err != nil {
		t.Fatal(err)
	}
	var st []*layers.LayerState
	var acc *tensor.Tensor
	for tt := 0; tt < T; tt++ {
		st = net2.ForwardStep(input[tt], st)
		if acc == nil {
			acc = tensor.New(net2.Logits(st).Shape()...)
		}
		tensor.AXPY(acc, 1, net2.Logits(st))
	}
	want := tensor.Argmax(acc)
	for i := range want {
		if res.Preds[i] != want[i] {
			t.Fatalf("sample %d: Infer pred %d, reference %d", i, res.Preds[i], want[i])
		}
		if res.ExitSteps[i] != T-1 {
			t.Fatalf("sample %d: exit step %d without early exit", i, res.ExitSteps[i])
		}
	}
}

// trainedInferNet builds a model and trains it for a few BPTT batches on the
// synthetic dataset, the regime the early-exit rule targets (an untrained
// readout drifts over the whole horizon, so "stable for K steps" carries no
// information there).
func trainedInferNet(t *testing.T, model, data string, T int) (*layers.Network, dataset.Source) {
	t.Helper()
	src, err := dataset.Open(data, 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := models.Build(model, models.Options{Width: 0.5, Classes: src.Classes(), InShape: src.InShape()})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, src, BPTT{}, Config{T: T, Batch: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	idx := dataset.Indices(src, dataset.Train, 7, 1, true)
	for _, b := range dataset.Batches(idx, 8)[:12] {
		if _, err := tr.TrainBatchIndices(dataset.Train, b); err != nil {
			t.Fatal(err)
		}
	}
	return net, src
}

// TestEarlyExitMatchesFullHorizon is the property test for the exit rule:
// whenever a sample exits early with a stability window K >= 3, its frozen
// prediction must equal the full-horizon prediction. The whole pipeline is
// deterministic (synthetic datasets, seeded init, seeded training), so this
// is reproducible.
func TestEarlyExitMatchesFullHorizon(t *testing.T) {
	cases := []struct {
		model, data string
		T           int
	}{
		{"customnet", "nmnist", 28},
		{"lenet", "dvsgesture", 36},
	}
	triggered := 0
	for _, tc := range cases {
		net, src := trainedInferNet(t, tc.model, tc.data, 16)
		for _, K := range []int{3, 4, 6} {
			idx := []int{0, 1, 2, 3, 4, 5}
			input, _ := src.SpikeBatch(dataset.Test, idx, tc.T)
			full := Infer(net, input, InferOptions{})
			// A conservative confidence gate: event-stream inputs carry
			// time-varying evidence, so thin-margin leaders can still be
			// overturned late in the horizon. The gate keeps such samples
			// running; the property below is over the ones that do exit.
			early := Infer(net, input, InferOptions{EarlyExit: true, K: K, MinMargin: 0.2})
			if early.StepsRun > full.StepsRun {
				t.Fatalf("%s K=%d: early exit ran %d > %d steps", tc.model, K, early.StepsRun, full.StepsRun)
			}
			for i := range early.Preds {
				if early.ExitSteps[i] >= tc.T-1 {
					continue // no exit for this sample: nothing to check
				}
				triggered++
				if early.Preds[i] != full.Preds[i] {
					t.Errorf("%s K=%d sample %d: early pred %d (exit t=%d) != full pred %d",
						tc.model, K, i, early.Preds[i], early.ExitSteps[i], full.Preds[i])
				}
			}
			if saved := early.StepsSaved(); saved != tc.T-early.StepsRun {
				t.Fatalf("StepsSaved %d inconsistent with StepsRun %d", saved, early.StepsRun)
			}
		}
	}
	if triggered == 0 {
		t.Fatal("early exit never triggered; property test is vacuous — lower K or raise T")
	}
	t.Logf("early exit triggered for %d (model,K,sample) combinations", triggered)
}

// TestInferStreamLazyEncoding checks that early exit stops pulling input
// timesteps (the generation saving the serving path relies on).
func TestInferStreamLazyEncoding(t *testing.T) {
	src, err := dataset.Open("nmnist", 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := models.Build("customnet", models.Options{Width: 0.5, Classes: src.Classes(), InShape: src.InShape()})
	if err != nil {
		t.Fatal(err)
	}
	const T = 24
	input, _ := src.SpikeBatch(dataset.Test, []int{0, 1}, T)
	pulled := 0
	res := InferStream(net, T, func(tt int) *tensor.Tensor {
		if tt != pulled {
			t.Fatalf("out-of-order pull: got t=%d, want %d", tt, pulled)
		}
		pulled++
		return input[tt]
	}, InferOptions{EarlyExit: true, K: 3})
	if pulled != res.StepsRun {
		t.Fatalf("pulled %d steps, StepsRun %d", pulled, res.StepsRun)
	}
	// The batch steps until its slowest sample freezes.
	maxExit := 0
	for _, e := range res.ExitSteps {
		if e > maxExit {
			maxExit = e
		}
	}
	if res.StepsRun != maxExit+1 {
		t.Fatalf("StepsRun %d, max exit step %d: %+v", res.StepsRun, maxExit, res)
	}
}
