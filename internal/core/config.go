// Package core implements the paper's contribution: BPTT training of
// spiking networks with temporal activation checkpointing (Sec. V) and
// Skipper — checkpointing plus spike-activity-guided time-skipping (Sec. VI)
// — alongside the baselines it is evaluated against: full BPTT, truncated
// BPTT (Sec. III-C), and temporally-truncated local backpropagation
// (TBPTT-LBP, Guo et al. [28]).
//
// The engine runs a real forward/backward computation (so compute overheads
// are measured, not modelled) and charges every device-resident tensor to a
// mem.Device (so the paper's memory figures are measured from the same
// tensor lifecycle the reference PyTorch implementation has).
package core

import (
	"fmt"
	"io"

	"skipper/internal/mem"
	"skipper/internal/opt"
)

// Config holds the training hyper-parameters shared by all strategies.
type Config struct {
	// Runtime is the execution context: compute pool, default metrics sink,
	// and default seed. Nil means the process-wide DefaultRuntime
	// (threads = NumCPU). Thread count never changes results — kernels are
	// bit-identical across pool sizes — so Runtime is a pure performance
	// knob.
	Runtime *Runtime
	// T is the number of simulation timesteps per sample.
	T int
	// Batch is the mini-batch size.
	Batch int
	// LR is the learning rate. Zero means 1e-3.
	LR float32
	// Optimizer is "adam" (default) or "sgd".
	Optimizer string
	// Seed drives all stochasticity (shuffling, dropout, encoding).
	//
	// Deprecated alias: prefer NewRuntime(WithSeed(...)) and leave Seed
	// zero — it then inherits the runtime's seed. A non-zero Seed still
	// wins, preserving the old per-config behaviour.
	Seed uint64
	// GradClip caps the global gradient norm; 0 disables.
	GradClip float32
	// Device is the memory accountant; nil means an unlimited device.
	Device *mem.Device
	// MaxBatchesPerEpoch caps an epoch for timing runs; 0 means the full
	// split (the paper measures on 40–100% of the training set).
	MaxBatchesPerEpoch int
	// Schedule optionally varies the learning rate per epoch; nil keeps LR
	// constant.
	Schedule opt.Schedule
	// LossWindow applies the cross-entropy loss to the readout at each of
	// the last LossWindow timesteps (averaged) instead of only the final
	// one — the rate-readout variant common in SNN training. 0 or 1 means
	// final-step-only, the paper's setting.
	LossWindow int
	// MicroBatch enables gradient accumulation: each optimisation step
	// processes the Batch samples in micro-batches of this size, so the
	// live activation footprint scales with MicroBatch while the gradient
	// quality matches the full batch — the batch-axis counterpart of the
	// paper's time-axis techniques. 0 disables (one pass per step).
	MicroBatch int
	// CompressSpikes bit-packs the binary spike tensors of checkpoint
	// boundary records (32× smaller), shrinking the O(C) term of Eq. 3.
	// Lossless — gradient exactness is preserved. Applies to the
	// Checkpoint, Skipper, and AdaptiveSkipper strategies.
	CompressSpikes bool
	// SpikePack routes spike activations through the bit-packed compute
	// kernels (AND+popcount gathers in internal/tensor): spiking layers
	// publish packed activation views, the forward/backward steps consume
	// them directly, and checkpoint boundary records stay packed until a
	// consumer actually needs floats. Bit-identical to the dense float path
	// at any pool width, so it composes with checkpoint/skip determinism.
	// Combine with CompressSpikes to also store boundary records packed.
	SpikePack bool
	// Metrics, when non-nil, receives one JSON line per epoch (loss,
	// accuracy, step counts, durations, peak memory) — machine-readable
	// training telemetry for dashboards and regression tracking.
	//
	// Deprecated alias: prefer NewRuntime(WithMetrics(...)) and leave
	// Metrics nil — it then inherits the runtime's sink. A non-nil Metrics
	// still wins, preserving the old per-config behaviour.
	Metrics io.Writer
	// SnapshotEvery marks a restorable good state every K optimizer steps
	// within an epoch, in addition to the mark at every epoch boundary.
	// Good states feed the divergence guard's rollback and the OnSnapshot
	// durability hook. 0 means epoch boundaries only.
	SnapshotEvery int
	// OnSnapshot, when non-nil, is invoked at every good-state mark with
	// the resume cursor and the partial epoch aggregate so far. The
	// run-state layer uses it to persist a durable manifest; an error
	// aborts training (a run that cannot checkpoint is not durable).
	OnSnapshot func(cur Cursor, partial EpochStats) error
	// GuardRetries enables the divergence guard: on a NaN/Inf loss, a
	// NaN/Inf gradient norm, or a gradient-norm explosion past
	// GuardGradNorm, the trainer rolls back to the last good state, halves
	// the learning rate, and replays — at most GuardRetries times per run.
	// 0 disables the guard (the seed behaviour).
	GuardRetries int
	// GuardGradNorm is the pre-clip global gradient-norm explosion
	// threshold for the guard; 0 trips on NaN/Inf only.
	GuardGradNorm float32
}

func (c Config) withDefaults() Config {
	if c.Runtime == nil {
		c.Runtime = DefaultRuntime()
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Optimizer == "" {
		c.Optimizer = "adam"
	}
	if c.Device == nil {
		c.Device = mem.Unlimited()
	}
	if c.Seed == 0 {
		c.Seed = c.Runtime.Seed()
	}
	if c.Seed == 0 {
		c.Seed = 0x5EED
	}
	if c.Metrics == nil {
		c.Metrics = c.Runtime.Metrics()
	}
	return c
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.T < 1 {
		return fmt.Errorf("core: T = %d must be >= 1", c.T)
	}
	if c.Batch < 1 {
		return fmt.Errorf("core: batch = %d must be >= 1", c.Batch)
	}
	if c.LossWindow < 0 || c.LossWindow > c.T {
		return fmt.Errorf("core: loss window %d outside [0, T=%d]", c.LossWindow, c.T)
	}
	if c.MicroBatch < 0 || c.MicroBatch > c.Batch {
		return fmt.Errorf("core: micro-batch %d outside [0, batch=%d]", c.MicroBatch, c.Batch)
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("core: snapshot interval %d must be >= 0", c.SnapshotEvery)
	}
	if c.GuardRetries < 0 {
		return fmt.Errorf("core: guard retries %d must be >= 0", c.GuardRetries)
	}
	if c.GuardGradNorm < 0 {
		return fmt.Errorf("core: guard grad-norm threshold %v must be >= 0", c.GuardGradNorm)
	}
	return nil
}

// lossWindow returns the effective window length (>= 1).
func (c Config) lossWindow() int {
	if c.LossWindow < 1 {
		return 1
	}
	return c.LossWindow
}

// CheckpointTimes returns the checkpoint timesteps {0, T/C, 2T/C, ...} for C
// uniform temporal checkpoints over T steps (paper Sec. V). The remainder
// lands in the final segment.
func CheckpointTimes(T, C int) []int {
	ts := make([]int, C)
	seg := T / C
	for s := 0; s < C; s++ {
		ts[s] = s * seg
	}
	return ts
}

// SegmentBounds returns the [start, end) timestep range of checkpoint
// segment s out of C over T steps.
func SegmentBounds(T, C, s int) (start, end int) {
	seg := T / C
	start = s * seg
	end = start + seg
	if s == C-1 {
		end = T
	}
	return start, end
}

// ValidateCheckpoints enforces the paper's boundary conditions (Sec. V-A):
// 1 <= C <= T, and each time segment must be longer than the number of
// stateful layers so spikes can propagate through the whole stack within a
// segment: T/C > L_n, i.e. C < T/L_n.
func ValidateCheckpoints(T, C, Ln int) error {
	if C < 1 {
		return fmt.Errorf("core: checkpoints C = %d must be >= 1", C)
	}
	if C > T {
		return fmt.Errorf("core: checkpoints C = %d exceed timesteps T = %d", C, T)
	}
	if Ln > 0 && T/C <= Ln {
		return fmt.Errorf("core: segment length T/C = %d must exceed L_n = %d (choose C < T/L_n = %d)",
			T/C, Ln, T/Ln)
	}
	return nil
}

// MaxSkipPercent returns the paper's Eq. 7 upper bound on the skip
// percentile p for a network with Ln stateful layers checkpointed C times
// over T steps: p/100 <= 1 − Ln/(T/C). The result is clamped to [0, 100].
func MaxSkipPercent(T, C, Ln int) float64 {
	if T <= 0 || C <= 0 {
		return 0
	}
	seg := float64(T) / float64(C)
	p := 100 * (1 - float64(Ln)/seg)
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	return p
}

// ValidateSkip enforces Eq. 7 for a requested skip percentile.
func ValidateSkip(T, C, Ln int, p float64) error {
	if p < 0 || p > 100 {
		return fmt.Errorf("core: skip percentile %v outside [0,100]", p)
	}
	// A tiny tolerance absorbs the floating-point error of the bound
	// itself, so a p sitting exactly on it (e.g. 20 vs 100*(1-4/5)) passes.
	const eps = 1e-6
	if maxP := MaxSkipPercent(T, C, Ln); p > maxP+eps {
		return fmt.Errorf("core: skip percentile %v exceeds Eq.7 bound %.1f for T=%d C=%d L_n=%d",
			p, maxP, T, C, Ln)
	}
	return nil
}
