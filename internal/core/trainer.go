package core

import (
	"encoding/json"
	"fmt"
	"time"

	"skipper/internal/dataset"
	"skipper/internal/layers"
	"skipper/internal/mem"
	"skipper/internal/opt"
	"skipper/internal/stats"
	"skipper/internal/tensor"
	"skipper/internal/trace"
)

// StepStats reports what one training batch did.
type StepStats struct {
	Loss    float64
	Correct int
	N       int

	// ForwardSteps counts first-pass timesteps, RecomputedSteps the
	// second-pass (checkpoint replay) timesteps, SkippedSteps the timesteps
	// Skipper dropped, and BackwardSteps the timesteps the δ recursion
	// visited.
	ForwardSteps    int
	RecomputedSteps int
	SkippedSteps    int
	BackwardSteps   int

	ForwardTime   time.Duration
	RecomputeTime time.Duration
	BackwardTime  time.Duration

	// GradNorm is the pre-clip global gradient L2 norm of the optimizer
	// step (the divergence guard's explosion signal). Aggregation keeps
	// the maximum.
	GradNorm float64
}

// Add folds another batch's stats in.
func (s *StepStats) Add(o StepStats) {
	s.Loss += o.Loss
	s.Correct += o.Correct
	s.N += o.N
	s.ForwardSteps += o.ForwardSteps
	s.RecomputedSteps += o.RecomputedSteps
	s.SkippedSteps += o.SkippedSteps
	s.BackwardSteps += o.BackwardSteps
	s.ForwardTime += o.ForwardTime
	s.RecomputeTime += o.RecomputeTime
	s.BackwardTime += o.BackwardTime
	if o.GradNorm > s.GradNorm {
		s.GradNorm = o.GradNorm
	}
}

// EpochStats aggregates one epoch (or a capped batch run).
type EpochStats struct {
	StepStats
	Batches  int
	Duration time.Duration
	// Divergences counts the guard events (NaN/Inf loss or gradient
	// explosion followed by rollback + LR halving) observed this epoch.
	Divergences int
}

// Accuracy returns the epoch's training accuracy in [0,1].
func (e EpochStats) Accuracy() float64 {
	if e.N == 0 {
		return 0
	}
	return float64(e.Correct) / float64(e.N)
}

// MeanLoss returns the mean per-batch loss.
func (e EpochStats) MeanLoss() float64 {
	if e.Batches == 0 {
		return 0
	}
	return e.Loss / float64(e.Batches)
}

// Strategy is one training regime: how the forward graph is stored,
// recomputed, and walked backward for a single batch. Implementations leave
// parameter gradients accumulated on the network.
type Strategy interface {
	// Name identifies the strategy for reports ("bptt", "ckpt", ...).
	Name() string
	// Validate rejects configurations that violate the strategy's boundary
	// conditions for the given network.
	Validate(cfg Config, net *layers.Network) error
	// TrainBatch consumes a T-step input spike train and labels.
	TrainBatch(tr *Trainer, input []*tensor.Tensor, labels []int) (StepStats, error)
}

// Trainer orchestrates epochs of strategy-driven training with full device
// memory accounting.
type Trainer struct {
	Net   *layers.Network
	Data  dataset.Source
	Strat Strategy
	Cfg   Config
	Opt   opt.Optimizer
	Dev   *mem.Device

	persistent []*mem.Block
	iteration  int
	epoch      int
	closed     bool

	// lossDenom, when > 0, replaces the local batch size as the loss-mean
	// denominator — a data-parallel shard divides by the global batch size
	// so plain rank-ordered summation of shard gradients reproduces the
	// serial full-batch mean (see ShardGrads). 0 outside shard computation.
	lossDenom int

	// segmentHook, when set, is called by segmented strategies after each
	// checkpoint segment's backward pass completes (see SetSegmentHook).
	segmentHook func(done, total int)

	// packScanned/packSkipped are the last-seen packed-kernel word counters
	// (process-global), used to emit per-batch deltas into the trace.
	packScanned, packSkipped int64

	// lrScale is the divergence guard's cumulative learning-rate reduction
	// (1 = untouched); it survives checkpoint/resume via the manifest.
	lrScale float32
	// divLog records every divergence-guard event for telemetry and the
	// run-state manifest.
	divLog []DivergenceEvent
	// lastGood is the in-memory rollback point the guard restores to.
	lastGood *goodState
}

// NewTrainer wires a network, dataset, and strategy together, charging the
// persistent tensors (weights, gradients, optimizer state, kernel
// workspace) to the device.
func NewTrainer(net *layers.Network, data dataset.Source, strat Strategy, cfg Config) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := strat.Validate(cfg, net); err != nil {
		return nil, err
	}
	optimizer, err := opt.New(cfg.Optimizer, net.Params(), cfg.LR)
	if err != nil {
		return nil, err
	}
	tr := &Trainer{Net: net, Data: data, Strat: strat, Cfg: cfg, Opt: optimizer, Dev: cfg.Device, lrScale: 1}
	// Every layer kernel runs on the runtime's shared pool from here on.
	// Pool size never changes results (see internal/parallel), so this does
	// not interact with seeding or resume determinism.
	net.SetPool(cfg.Runtime.Pool())
	// Bit-packed spike compute is bit-identical to the dense path, so this
	// flag also never interacts with seeding or resume determinism.
	net.SetSpikePack(cfg.SpikePack)
	// The device reports reserved-memory high-water marks into the runtime's
	// tracer (a no-op when tracing is off).
	tr.Dev.SetTracer(cfg.Runtime.Tracer())

	charge := func(cat mem.Category, n int64) error {
		if n <= 0 {
			return nil
		}
		b, err := tr.Dev.Alloc(cat, n)
		if err != nil {
			return err
		}
		tr.persistent = append(tr.persistent, b)
		return nil
	}
	pb := net.ParamBytes()
	if err := charge(mem.Weights, pb); err != nil {
		return nil, fmt.Errorf("core: charging weights: %w", err)
	}
	if err := charge(mem.WeightGrads, pb); err != nil {
		return nil, fmt.Errorf("core: charging weight gradients: %w", err)
	}
	// Optimizer state plus the non-trainable neuron constants.
	if err := charge(mem.Optimizer, optimizer.StateBytes()+256); err != nil {
		return nil, fmt.Errorf("core: charging optimizer state: %w", err)
	}
	if err := charge(mem.Workspace, net.WorkspaceBytes(cfg.Batch)); err != nil {
		return nil, fmt.Errorf("core: charging workspace: %w", err)
	}
	return tr, nil
}

// Close releases the trainer's persistent device memory. Safe to call more
// than once.
func (tr *Trainer) Close() {
	if tr.closed {
		return
	}
	tr.closed = true
	for _, b := range tr.persistent {
		b.Release()
	}
	tr.persistent = nil
}

// tracer returns the runtime's span recorder; nil (tracing off) is valid and
// free to record into.
func (tr *Trainer) tracer() *trace.Tracer { return tr.Cfg.Runtime.Tracer() }

// phaseDone closes one timed training phase: the elapsed time folds into the
// StepStats duration field AND is recorded as a trace span with the exact
// same boundaries, which is what lets per-phase span sums reconcile with the
// EpochStats wall-clock timings.
func (tr *Trainer) phaseDone(dst *time.Duration, name string, start time.Time, attrs ...trace.Attr) {
	d := time.Since(start)
	*dst += d
	tr.tracer().SpanAt(trace.TrackTrain, name, start, d, attrs...)
}

// SetSegmentHook registers fn to be invoked by segmented strategies
// (Checkpoint, Skipper, AdaptiveSkipper) after each segment's backward pass
// finishes, with done the number of segments completed so far (1-based) and
// total the batch's segment count. Segments complete in the deterministic
// backward order (last segment first) on every run, which is what lets a
// distributed caller flush per-segment gradient buckets into an in-flight
// exchange reproducibly. The hook runs on the training goroutine; parameter
// gradients accumulated so far may be read but not mutated. Unsegmented
// strategies (plain BPTT) never call it — callers should treat the whole
// batch as one segment (see SegmentCount). A nil fn clears the hook.
func (tr *Trainer) SetSegmentHook(fn func(done, total int)) { tr.segmentHook = fn }

// segmentFlushed fires the segment hook, if any, after segment `done` of
// `total` finished its backward pass.
func (tr *Trainer) segmentFlushed(done, total int) {
	if tr.segmentHook != nil {
		tr.segmentHook(done, total)
	}
}

// Segmenter is implemented by strategies whose backward pass completes in a
// fixed number of checkpoint segments with a deterministic flush order.
type Segmenter interface {
	// Segments returns the per-batch backward segment count.
	Segments() int
}

// SegmentCount returns how many times the segment hook fires per batch for
// the strategy: its segment count when it is a Segmenter, else 1 (the whole
// batch is one flush at the end).
func SegmentCount(s Strategy) int {
	if sg, ok := s.(Segmenter); ok && sg.Segments() > 0 {
		return sg.Segments()
	}
	return 1
}

// rngFor derives the deterministic stream for a purpose and the current
// iteration.
func (tr *Trainer) rngFor(purpose uint64) *tensor.RNG {
	return tensor.NewRNG(tensor.DeriveSeed(tr.Cfg.Seed, purpose, uint64(tr.iteration)))
}

// inputBytes is the device footprint of a T-step input train plus labels.
func (tr *Trainer) inputBytes(input []*tensor.Tensor, labels []int) int64 {
	var n int64
	for _, st := range input {
		n += st.Bytes()
	}
	return n + int64(len(labels))*8
}

// TrainBatchIndices runs one optimization step on the given sample indices.
// With Cfg.MicroBatch set, the batch is processed in micro-batches whose
// gradients accumulate before the single optimizer step (gradient
// accumulation), bounding the live activation footprint by the micro-batch
// size.
//
// Every micro-batch takes its loss mean over the full batch (lossDenom), so
// the accumulated gradient is the exact full-batch mean even when the last
// micro-batch is short — the old trailing 1/k rescale over-weighted a ragged
// remainder. Each micro-batch after the first computes into freshly zeroed
// gradients that are then folded into an accumulator with a single add per
// tensor: the same copy-first-then-add order ReduceGrads uses, which is what
// makes a MicroBatch=1 serial run bit-identical to a data-parallel run with
// one-sample shards (see ShardGrads).
func (tr *Trainer) TrainBatchIndices(split dataset.Split, indices []int) (StepStats, error) {
	tr.iteration++
	tr.Net.BeginIteration(tr.rngFor(0xD0))
	defer tr.Net.EndIteration()
	tr.Net.ZeroGrads()

	micro := tr.Cfg.MicroBatch
	if micro <= 0 || micro >= len(indices) {
		micro = len(indices)
	}
	tr.lossDenom = len(indices)
	defer func() { tr.lossDenom = 0 }()

	multi := micro < len(indices)
	var acc []*tensor.Tensor
	if multi {
		accBlock, err := tr.Dev.Alloc(mem.WeightGrads, tr.Net.ParamBytes())
		if err != nil {
			return StepStats{}, fmt.Errorf("core: charging gradient accumulator: %w", err)
		}
		defer accBlock.Release()
	}
	var total StepStats
	for start := 0; start < len(indices); start += micro {
		end := start + micro
		if end > len(indices) {
			end = len(indices)
		}
		if start > 0 {
			tr.Net.ZeroGrads()
		}
		encStart := time.Now()
		input, labels := tr.Data.SpikeBatch(split, indices[start:end], tr.Cfg.T)
		tr.tracer().SpanAt(trace.TrackTrain, "encode", encStart, time.Since(encStart),
			trace.Attr{Key: "n", Val: int64(end - start)})
		inBlock, err := tr.Dev.Alloc(mem.Input, tr.inputBytes(input, labels))
		if err != nil {
			return total, fmt.Errorf("core: charging input: %w", err)
		}
		st, err := tr.Strat.TrainBatch(tr, input, labels)
		inBlock.Release()
		if err != nil {
			return total, err
		}
		total.Add(st)
		if multi {
			if start == 0 {
				for _, p := range tr.Net.Params() {
					acc = append(acc, p.G.Clone())
				}
			} else {
				for j, p := range tr.Net.Params() {
					tensor.AXPY(acc[j], 1, p.G)
				}
			}
		}
	}
	if multi {
		for j, p := range tr.Net.Params() {
			tensor.Copy(p.G, acc[j])
		}
	}
	stepStart := time.Now()
	total.GradNorm = float64(opt.GradClip(tr.Net.Params(), tr.Cfg.GradClip))
	tr.Opt.Step()
	tr.tracer().SpanAt(trace.TrackTrain, "opt_step", stepStart, time.Since(stepStart))
	if tr.Cfg.SpikePack {
		// Event-driven skip visibility: per-batch deltas of the packed
		// kernels' word-occupancy counters, next to the pool-lane series.
		scanned, skipped := tensor.PackedKernelStats()
		tr.tracer().Counter(trace.TrackPool, "spike_words_scanned", scanned-tr.packScanned)
		tr.tracer().Counter(trace.TrackPool, "spike_words_skipped", skipped-tr.packSkipped)
		tr.packScanned, tr.packSkipped = scanned, skipped
	}
	return total, nil
}

// TrainEpoch runs one shuffled pass over the training split (optionally
// capped at Cfg.MaxBatchesPerEpoch batches) and returns the aggregate stats.
func (tr *Trainer) TrainEpoch() (EpochStats, error) {
	tr.epoch++
	return tr.trainEpochFrom(0, EpochStats{})
}

// ResumeEpoch continues an interrupted epoch from a batch cursor with the
// partial aggregate restored — the crash-resume entry point. The trainer
// must be positioned with SetCursor first; ResumeEpoch advances into the
// epoch the cursor names, exactly as TrainEpoch would have.
func (tr *Trainer) ResumeEpoch(startBatch int, partial EpochStats) (EpochStats, error) {
	tr.epoch++
	return tr.trainEpochFrom(startBatch, partial)
}

// trainEpochFrom is the guarded epoch loop shared by TrainEpoch and
// ResumeEpoch: it walks the deterministic batch sequence from startBatch,
// marks restorable good states on the snapshot cadence, and rolls back on
// divergence.
func (tr *Trainer) trainEpochFrom(startBatch int, partial EpochStats) (EpochStats, error) {
	if err := tr.applyEpochLR(); err != nil {
		return EpochStats{}, err
	}
	idx := dataset.Indices(tr.Data, dataset.Train, tr.Cfg.Seed, tr.epoch, true)
	batches := dataset.Batches(idx, tr.Cfg.Batch)
	if tr.Cfg.MaxBatchesPerEpoch > 0 && len(batches) > tr.Cfg.MaxBatchesPerEpoch {
		batches = batches[:tr.Cfg.MaxBatchesPerEpoch]
	}
	if startBatch < 0 || startBatch > len(batches) {
		return EpochStats{}, fmt.Errorf("core: resume batch %d outside epoch of %d batches", startBatch, len(batches))
	}
	ep := partial
	start := time.Now()
	if err := tr.markGood(startBatch, ep); err != nil {
		return ep, err
	}
	for i := startBatch; i < len(batches); {
		st, err := tr.TrainBatchIndices(dataset.Train, batches[i])
		if err != nil {
			return ep, err
		}
		if reason := tr.guardTrip(st); reason != "" {
			back, restored, rerr := tr.divergenceRollback(i, st, reason)
			if rerr != nil {
				return ep, rerr
			}
			// The rollback resets the aggregate to the good state's, but
			// the event itself must stay visible in the epoch's stats.
			restored.Divergences = ep.Divergences + 1
			i, ep = back, restored
			continue
		}
		ep.StepStats.Add(st)
		ep.Batches++
		i++
		if k := tr.Cfg.SnapshotEvery; k > 0 && i < len(batches) && i%k == 0 {
			if err := tr.markGood(i, ep); err != nil {
				return ep, err
			}
		}
	}
	ep.Duration += time.Since(start)
	// The epoch-boundary mark: a resumed run restarts at the next epoch.
	if err := tr.markEpochDone(ep); err != nil {
		return ep, err
	}
	if tr.Cfg.Metrics != nil {
		if err := tr.emitMetrics(ep); err != nil {
			return ep, err
		}
	}
	return ep, nil
}

// epochMetrics is the JSON schema of one telemetry line.
type epochMetrics struct {
	Epoch           int     `json:"epoch"`
	Strategy        string  `json:"strategy"`
	Loss            float64 `json:"loss"`
	TrainAccuracy   float64 `json:"train_accuracy"`
	Batches         int     `json:"batches"`
	Samples         int     `json:"samples"`
	SkippedSteps    int     `json:"skipped_steps"`
	RecomputedSteps int     `json:"recomputed_steps"`
	ForwardMs       int64   `json:"forward_ms"`
	RecomputeMs     int64   `json:"recompute_ms"`
	BackwardMs      int64   `json:"backward_ms"`
	DurationMs      int64   `json:"duration_ms"`
	PeakReserved    int64   `json:"peak_reserved_bytes"`
	PeakActivations int64   `json:"peak_activation_bytes"`
	Divergences     int     `json:"divergences"`
	LRScale         float64 `json:"lr_scale"`
	Threads         int     `json:"threads"`
}

// emitMetrics writes one JSON line describing the epoch to Cfg.Metrics.
func (tr *Trainer) emitMetrics(ep EpochStats) error {
	m := epochMetrics{
		Epoch:           tr.epoch,
		Strategy:        tr.Strat.Name(),
		Loss:            ep.MeanLoss(),
		TrainAccuracy:   ep.Accuracy(),
		Batches:         ep.Batches,
		Samples:         ep.N,
		SkippedSteps:    ep.SkippedSteps,
		RecomputedSteps: ep.RecomputedSteps,
		ForwardMs:       ep.ForwardTime.Milliseconds(),
		RecomputeMs:     ep.RecomputeTime.Milliseconds(),
		BackwardMs:      ep.BackwardTime.Milliseconds(),
		DurationMs:      ep.Duration.Milliseconds(),
		PeakReserved:    tr.Dev.PeakReserved(),
		PeakActivations: tr.Dev.PeakBy(mem.Activations),
		Divergences:     ep.Divergences,
		LRScale:         float64(tr.lrScale),
		Threads:         tr.Cfg.Runtime.Threads(),
	}
	enc := json.NewEncoder(tr.Cfg.Metrics)
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("core: writing metrics: %w", err)
	}
	return nil
}

// Evaluate runs a forward-only pass over the test split (capped at
// maxBatches when > 0) and returns mean loss and accuracy.
func (tr *Trainer) Evaluate(maxBatches int) (loss float64, acc float64, err error) {
	idx := dataset.Indices(tr.Data, dataset.Test, tr.Cfg.Seed, 0, false)
	batches := dataset.Batches(idx, tr.Cfg.Batch)
	if maxBatches > 0 && len(batches) > maxBatches {
		batches = batches[:maxBatches]
	}
	var lossSum float64
	var correct, total int
	for _, b := range batches {
		input, labels := tr.Data.SpikeBatch(dataset.Test, b, tr.Cfg.T)
		inBlock, aerr := tr.Dev.Alloc(mem.Input, tr.inputBytes(input, labels))
		if aerr != nil {
			return 0, 0, fmt.Errorf("core: charging eval input: %w", aerr)
		}
		logits, ferr := tr.forwardOnly(input)
		if ferr != nil {
			inBlock.Release()
			return 0, 0, ferr
		}
		l, c := tensor.CrossEntropy(logits, labels, nil)
		lossSum += l
		correct += c
		total += len(labels)
		inBlock.Release()
	}
	if len(batches) == 0 {
		return 0, 0, nil
	}
	return lossSum / float64(len(batches)), float64(correct) / float64(total), nil
}

// EvaluateConfusion runs a forward-only pass over the test split (capped at
// maxBatches when > 0) and returns the full confusion matrix.
func (tr *Trainer) EvaluateConfusion(maxBatches int) (*stats.Confusion, error) {
	classes := tr.Net.OutShape()[0]
	conf := stats.NewConfusion(classes)
	idx := dataset.Indices(tr.Data, dataset.Test, tr.Cfg.Seed, 0, false)
	batches := dataset.Batches(idx, tr.Cfg.Batch)
	if maxBatches > 0 && len(batches) > maxBatches {
		batches = batches[:maxBatches]
	}
	for _, b := range batches {
		input, labels := tr.Data.SpikeBatch(dataset.Test, b, tr.Cfg.T)
		inBlock, err := tr.Dev.Alloc(mem.Input, tr.inputBytes(input, labels))
		if err != nil {
			return nil, fmt.Errorf("core: charging eval input: %w", err)
		}
		logits, err := tr.forwardOnly(input)
		inBlock.Release()
		if err != nil {
			return nil, err
		}
		preds := tensor.Argmax(logits)
		for i, y := range labels {
			conf.Add(y, preds[i])
		}
	}
	return conf, nil
}

// forwardOnly runs inference keeping only the rolling state (two records
// live at once), charging the transient footprint to the device.
func (tr *Trainer) forwardOnly(input []*tensor.Tensor) (*tensor.Tensor, error) {
	var states []*layers.LayerState
	var prevBlock *mem.Block
	for t := 0; t < len(input); t++ {
		states = tr.Net.ForwardStep(input[t], states)
		b, err := tr.Dev.Alloc(mem.Activations, stateBytes(states))
		if err != nil {
			prevBlock.Release()
			return nil, fmt.Errorf("core: eval forward t=%d: %w", t, err)
		}
		prevBlock.Release()
		prevBlock = b
	}
	logits := tr.Net.Logits(states).Clone()
	prevBlock.Release()
	return logits, nil
}

// stateBytes sums one timestep's record footprint.
func stateBytes(states []*layers.LayerState) int64 {
	var n int64
	for _, st := range states {
		n += st.Bytes()
	}
	return n
}

// recordStore charges and tracks stored timestep records. Records stored
// with putPacked hold bit-packed spike tensors and materialise lazily on
// the first get.
type recordStore struct {
	dev    *mem.Device
	states map[int][]*layers.LayerState
	packed map[int][]*packedState
	blocks map[int]*mem.Block
	// lazy keeps packed records' spike planes bit-packed on get: the
	// materialised LayerStates carry OPacked instead of dense O, and the
	// packed-aware layer kernels recompute/backprop straight from the bits
	// (DenseO expands on demand for anything else). Set in spike-pack mode.
	lazy bool
}

func newRecordStore(dev *mem.Device) *recordStore {
	return &recordStore{
		dev:    dev,
		states: map[int][]*layers.LayerState{},
		packed: map[int][]*packedState{},
		blocks: map[int]*mem.Block{},
	}
}

// newRecordStore returns the trainer's record store, lazy when spike-pack
// mode is on so checkpoint boundary records skip the unpack-to-dense round
// trip.
func (tr *Trainer) newRecordStore() *recordStore {
	rs := newRecordStore(tr.Dev)
	rs.lazy = tr.Cfg.SpikePack
	return rs
}

// put charges and retains the record for timestep t.
func (rs *recordStore) put(t int, states []*layers.LayerState) error {
	b, err := rs.dev.Alloc(mem.Activations, stateBytes(states))
	if err != nil {
		return err
	}
	rs.states[t] = states
	rs.blocks[t] = b
	return nil
}

// putPacked charges and retains a spike-compressed copy of the record.
func (rs *recordStore) putPacked(t int, states []*layers.LayerState) error {
	ps, bytes := packStates(states)
	b, err := rs.dev.Alloc(mem.Activations, bytes)
	if err != nil {
		return err
	}
	rs.packed[t] = ps
	rs.blocks[t] = b
	return nil
}

// get returns the record for timestep t (nil if absent), materialising a
// packed record on first access.
func (rs *recordStore) get(t int) []*layers.LayerState {
	if st := rs.states[t]; st != nil {
		return st
	}
	if ps := rs.packed[t]; ps != nil {
		var st []*layers.LayerState
		if rs.lazy {
			st = unpackStatesLazy(ps)
		} else {
			st = unpackStates(ps)
		}
		rs.states[t] = st
		return st
	}
	return nil
}

// has reports whether timestep t is stored.
func (rs *recordStore) has(t int) bool {
	return rs.states[t] != nil || rs.packed[t] != nil
}

// drop releases the record for timestep t.
func (rs *recordStore) drop(t int) {
	if b := rs.blocks[t]; b != nil {
		b.Release()
	}
	delete(rs.blocks, t)
	delete(rs.states, t)
	delete(rs.packed, t)
}

// dropAll releases every stored record.
func (rs *recordStore) dropAll() {
	for t := range rs.blocks {
		rs.drop(t)
	}
}

// lossGrad computes cross-entropy loss, correct count, and ∂L/∂logits. A
// denom > 0 overrides the mean denominator (data-parallel shards pass the
// global batch size); 0 means the local batch size.
func lossGrad(logits *tensor.Tensor, labels []int, denom int) (float64, int, *tensor.Tensor) {
	dlogits := tensor.New(logits.Shape()...)
	loss, correct := tensor.CrossEntropyDenom(logits, labels, dlogits, denom)
	return loss, correct, dlogits
}

// lossAccumulator applies the (possibly windowed) readout loss during the
// first forward pass: cross-entropy at each of the last K timesteps,
// averaged, with the per-timestep gradients retained for injection during
// the backward walk. Accuracy is always judged at the final step.
type lossAccumulator struct {
	T, K    int
	denom   int
	labels  []int
	inject  map[int]*tensor.Tensor
	Loss    float64
	Correct int
}

func newLossAccumulator(cfg Config, denom int, labels []int) *lossAccumulator {
	return &lossAccumulator{T: cfg.T, K: cfg.lossWindow(), denom: denom, labels: labels, inject: map[int]*tensor.Tensor{}}
}

// covers reports whether timestep t carries a loss term.
func (la *lossAccumulator) covers(t int) bool { return t >= la.T-la.K }

// observe consumes the readout logits at timestep t.
func (la *lossAccumulator) observe(t int, logits *tensor.Tensor) {
	if !la.covers(t) {
		return
	}
	loss, correct, dl := lossGrad(logits, la.labels, la.denom)
	scale := 1 / float32(la.K)
	tensor.Scale(dl, dl, scale)
	la.inject[t] = dl
	la.Loss += loss / float64(la.K)
	if t == la.T-1 {
		la.Correct = correct
	}
}

// at returns the loss gradient to inject at timestep t (nil if none).
func (la *lossAccumulator) at(t int) *tensor.Tensor { return la.inject[t] }

// deltaScratch charges the transient backward-pass footprint (one record's
// worth of δ tensors) for the duration of a backward walk.
func (tr *Trainer) deltaScratch(batch int) (*mem.Block, error) {
	return tr.Dev.Alloc(mem.Workspace, tr.Net.RecordBytes(batch)/2)
}
