package core

import (
	"fmt"
	"time"

	"skipper/internal/layers"
	"skipper/internal/mem"
	"skipper/internal/tensor"
)

// TBPTTLBP reproduces the comparison system of Guo et al. [28]:
// temporally-truncated BPTT combined with locally-supervised blocks. Local
// linear classifiers are attached at the layer indices in LocalAt; each
// integrates its layer's spikes over a truncation window and contributes a
// local cross-entropy loss. Gradients are local: error from a block's
// classifier (or, for the top block, the network loss) does not propagate
// below the block's attachment boundary. Memory is O(trW) plus the small
// auxiliary classifier weights; like TBPTT, temporal credit is limited to
// the window, which is why its accuracy does not improve with more
// timesteps (paper Sec. VII-I).
type TBPTTLBP struct {
	// Window is the truncation window trW.
	Window int
	// LocalAt are indices into net.Layers where local classifiers attach
	// (the paper's best configuration attaches them at layers 4 and 8 of
	// AlexNet).
	LocalAt []int
	// AuxLR is the SGD rate for the auxiliary classifiers; 0 means 0.01.
	AuxLR float32

	aux      map[int]*auxClassifier
	auxBlock *mem.Block
}

type auxClassifier struct {
	w, g *tensor.Tensor
}

// Name implements Strategy.
func (lb *TBPTTLBP) Name() string {
	return fmt.Sprintf("tbptt-lbp(trW=%d,local=%v)", lb.Window, lb.LocalAt)
}

// Validate implements Strategy.
func (lb *TBPTTLBP) Validate(cfg Config, net *layers.Network) error {
	if cfg.LossWindow > 1 {
		return fmt.Errorf("core: tbptt-lbp already applies per-window losses; LossWindow is not supported")
	}
	if lb.Window < 1 || lb.Window > cfg.T {
		return fmt.Errorf("core: tbptt-lbp window %d outside [1, T=%d]", lb.Window, cfg.T)
	}
	for _, i := range lb.LocalAt {
		if i < 0 || i >= len(net.Layers)-1 {
			return fmt.Errorf("core: tbptt-lbp local classifier index %d out of range (%d layers)", i, len(net.Layers))
		}
	}
	return nil
}

func (lb *TBPTTLBP) auxLR() float32 {
	if lb.AuxLR == 0 {
		return 0.01
	}
	return lb.AuxLR
}

// ensureAux lazily builds the auxiliary classifiers once the feature shapes
// are known, charging their weights to the device.
func (lb *TBPTTLBP) ensureAux(tr *Trainer, states []*layers.LayerState, classes int) error {
	if lb.aux != nil {
		return nil
	}
	lb.aux = map[int]*auxClassifier{}
	rng := tensor.NewRNG(tensor.DeriveSeed(tr.Cfg.Seed, 0xA0C))
	var bytes int64
	for _, site := range lb.LocalAt {
		b := states[site].O.Dim(0)
		features := states[site].O.Len() / b
		w := tensor.New(classes, features)
		rng.KaimingLinear(w)
		lb.aux[site] = &auxClassifier{w: w, g: tensor.New(classes, features)}
		bytes += 2 * w.Bytes()
	}
	blk, err := tr.Dev.Alloc(mem.Weights, bytes)
	if err != nil {
		return fmt.Errorf("core: tbptt-lbp aux weights: %w", err)
	}
	lb.auxBlock = blk
	return nil
}

// Close releases the auxiliary classifier memory.
func (lb *TBPTTLBP) Close() {
	lb.auxBlock.Release()
	lb.auxBlock = nil
}

// TrainBatch implements Strategy.
func (lb *TBPTTLBP) TrainBatch(tr *Trainer, input []*tensor.Tensor, labels []int) (StepStats, error) {
	T := tr.Cfg.T
	st := StepStats{N: len(labels)}
	rs := tr.newRecordStore()
	defer rs.dropAll()

	scratch, err := tr.deltaScratch(len(labels))
	if err != nil {
		return st, fmt.Errorf("core: tbptt-lbp scratch: %w", err)
	}
	defer scratch.Release()

	classes := tr.Net.OutShape()[0]
	outIdx := len(tr.Net.Layers) - 1
	boundary := map[int]bool{}
	for _, i := range lb.LocalAt {
		boundary[i] = true
	}

	numWindows := (T + lb.Window - 1) / lb.Window
	var carry []*layers.LayerState
	var lastLogits *tensor.Tensor
	for w0 := 0; w0 < T; w0 += lb.Window {
		w1 := w0 + lb.Window
		if w1 > T {
			w1 = T
		}
		// Forward through the window, integrating the aux potentials.
		fwd := time.Now()
		states := carry
		var auxU map[int]*tensor.Tensor
		for t := w0; t < w1; t++ {
			states = tr.Net.ForwardStep(input[t], states)
			if err := rs.put(t, states); err != nil {
				return st, fmt.Errorf("core: tbptt-lbp forward t=%d: %w", t, err)
			}
			st.ForwardSteps++
			if lb.aux == nil {
				if err := lb.ensureAux(tr, states, classes); err != nil {
					return st, err
				}
			}
			if auxU == nil {
				auxU = map[int]*tensor.Tensor{}
				for site := range lb.aux {
					auxU[site] = tensor.New(len(labels), classes)
				}
			}
			for site, ac := range lb.aux {
				o := states[site].O
				flat := o.Reshape(o.Dim(0), o.Len()/o.Dim(0))
				tmp := tensor.New(len(labels), classes)
				tensor.MatMulTransB(tr.Net.Pool(), tmp, flat, ac.w)
				tensor.AXPY(auxU[site], 1, tmp)
			}
		}
		tr.phaseDone(&st.ForwardTime, "forward", fwd)

		// Window losses: the network loss at the top plus one local loss per
		// classifier.
		logits := tr.Net.Logits(states)
		loss, _, dlogits := lossGrad(logits, labels, tr.lossDenom)
		lastLogits = logits
		injections := map[int]*tensor.Tensor{}
		for site, ac := range lb.aux {
			auxLoss, _, daux := lossGrad(auxU[site], labels, tr.lossDenom)
			loss += auxLoss
			// ∂L/∂o_t at the site is dauxW for every t in the window.
			o := rs.get(w1 - 1)[site].O
			inj := tensor.New(len(labels), o.Len()/o.Dim(0))
			tensor.MatMul(tr.Net.Pool(), inj, daux, ac.w)
			injections[site] = inj.Reshape(o.Shape()...)
			// ∂W_aux += Σ_t dauxᵀ·o_t.
			for t := w0; t < w1; t++ {
				ot := rs.get(t)[site].O
				flat := ot.Reshape(ot.Dim(0), ot.Len()/ot.Dim(0))
				tensor.MatMulTransAAcc(tr.Net.Pool(), ac.g, daux, flat)
			}
		}
		st.Loss += loss / float64(numWindows)

		// Backward within the window, with gradient flow BLOCKED at block
		// boundaries (local supervision).
		bwd := time.Now()
		var deltas []*layers.Delta
		for t := w1 - 1; t >= w0; t-- {
			inject := map[int]*tensor.Tensor{}
			for site, inj := range injections {
				inject[site] = inj
			}
			if t == w1-1 {
				inject[outIdx] = dlogits
			}
			deltas = lb.backwardStepBlocked(tr.Net, input[t], rs.get(t), inject, deltas, boundary)
			if t != w1-1 {
				rs.drop(t)
			}
			st.BackwardSteps++
		}
		carry = rs.get(w1 - 1)
		if w0 > 0 {
			rs.drop(w0 - 1)
		}
		tr.phaseDone(&st.BackwardTime, "backward", bwd)
	}

	// Auxiliary classifiers update locally with plain SGD.
	for _, ac := range lb.aux {
		tensor.AXPY(ac.w, -lb.auxLR(), ac.g)
		ac.g.Zero()
	}
	_, correct := tensor.CrossEntropy(lastLogits, labels, nil)
	st.Correct = correct
	return st, nil
}

// backwardStepBlocked is Network.BackwardStep with gradient stops: after an
// attachment-boundary layer consumes its gradient, the flow to the layer
// below is severed, so each block learns only from its own local loss.
func (lb *TBPTTLBP) backwardStepBlocked(net *layers.Network, x *tensor.Tensor, states []*layers.LayerState, gradsAt map[int]*tensor.Tensor, deltas []*layers.Delta, boundary map[int]bool) []*layers.Delta {
	newDeltas := make([]*layers.Delta, len(net.Layers))
	var gradFlow *tensor.Tensor
	for i := len(net.Layers) - 1; i >= 0; i-- {
		l := net.Layers[i]
		if boundary[i] {
			// Local supervision: the flow from the block above is severed at
			// the attachment boundary, so this layer — and everything below
			// it — is driven purely by its block's own classifier injection.
			gradFlow = nil
		}
		gradOut := gradFlow
		if inj := gradsAt[i]; inj != nil {
			if gradOut == nil {
				gradOut = inj.Clone()
			} else {
				tensor.AXPY(gradOut, 1, inj)
			}
		}
		if gradOut == nil {
			gradOut = tensor.New(states[i].O.Shape()...)
		}
		inputT := x
		if i > 0 {
			inputT = states[i-1].O
		}
		var din *layers.Delta
		if deltas != nil {
			din = deltas[i]
		}
		gradIn, dout := l.Backward(inputT, states[i], gradOut, din)
		newDeltas[i] = dout
		gradFlow = gradIn
	}
	return newDeltas
}
