package core

import (
	"fmt"
	"time"

	"skipper/internal/layers"
	"skipper/internal/tensor"
)

// TBPTT is truncated backpropagation through time (paper Sec. III-C), the
// standard RNN memory-reduction baseline the paper compares against: the
// unroll is cut into windows of trW steps; a loss is computed at the end of
// each window and back-propagated only within it; membrane state carries
// across windows but gradients do not; the window's graph is then freed.
// Memory is O(trW); temporal credit assignment is limited to the window,
// which is where its accuracy loss on deep networks comes from.
type TBPTT struct {
	// Window is trW, the truncation window length.
	Window int
}

// Name implements Strategy.
func (tb TBPTT) Name() string { return fmt.Sprintf("tbptt(trW=%d)", tb.Window) }

// Validate implements Strategy.
func (tb TBPTT) Validate(cfg Config, net *layers.Network) error {
	if cfg.LossWindow > 1 {
		return fmt.Errorf("core: tbptt already applies a loss per truncation window; LossWindow is not supported")
	}
	if tb.Window < 1 || tb.Window > cfg.T {
		return fmt.Errorf("core: tbptt window %d outside [1, T=%d]", tb.Window, cfg.T)
	}
	if tb.Window <= net.StatefulCount() {
		return fmt.Errorf("core: tbptt window %d must exceed L_n = %d", tb.Window, net.StatefulCount())
	}
	return nil
}

// TrainBatch implements Strategy.
func (tb TBPTT) TrainBatch(tr *Trainer, input []*tensor.Tensor, labels []int) (StepStats, error) {
	T := tr.Cfg.T
	st := StepStats{N: len(labels)}
	rs := tr.newRecordStore()
	defer rs.dropAll()

	scratch, err := tr.deltaScratch(len(labels))
	if err != nil {
		return st, fmt.Errorf("core: tbptt scratch: %w", err)
	}
	defer scratch.Release()

	outIdx := len(tr.Net.Layers) - 1
	numWindows := 0
	var carry []*layers.LayerState
	var lastLogits *tensor.Tensor
	for w0 := 0; w0 < T; w0 += tb.Window {
		w1 := w0 + tb.Window
		if w1 > T {
			w1 = T
		}
		numWindows++

		// Forward through the window, storing its records.
		fwd := time.Now()
		states := carry
		for t := w0; t < w1; t++ {
			states = tr.Net.ForwardStep(input[t], states)
			if err := rs.put(t, states); err != nil {
				return st, fmt.Errorf("core: tbptt forward t=%d: %w", t, err)
			}
			st.ForwardSteps++
		}
		tr.phaseDone(&st.ForwardTime, "forward", fwd)

		// Loss at the window boundary; gradients summed over windows.
		logits := tr.Net.Logits(states)
		loss, _, dlogits := lossGrad(logits, labels, tr.lossDenom)
		st.Loss += loss / float64((T+tb.Window-1)/tb.Window)
		lastLogits = logits

		// Backward within the window only; the computation graph (records)
		// is discarded afterwards and δ is NOT carried across the boundary.
		bwd := time.Now()
		var deltas []*layers.Delta
		for t := w1 - 1; t >= w0; t-- {
			var inject map[int]*tensor.Tensor
			if t == w1-1 {
				inject = map[int]*tensor.Tensor{outIdx: dlogits}
			}
			deltas = tr.Net.BackwardStep(input[t], rs.get(t), inject, deltas)
			if t != w1-1 {
				rs.drop(t)
			}
			st.BackwardSteps++
		}
		// The boundary record stays alive only long enough to seed the next
		// window's state carry; detached (no gradient flows back into it).
		carry = rs.get(w1 - 1)
		if w0 > 0 {
			rs.drop(w0 - 1)
		}
		_ = deltas
		tr.phaseDone(&st.BackwardTime, "backward", bwd)
	}
	// Accuracy is judged on the final window's logits, the network's output
	// after the full T steps.
	_, correct := tensor.CrossEntropy(lastLogits, labels, nil)
	st.Correct = correct
	return st, nil
}
