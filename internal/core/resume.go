package core

import (
	"fmt"
	"math"

	"skipper/internal/opt"
	"skipper/internal/tensor"
	"skipper/internal/trace"
)

// Cursor names the next unit of work a training run would perform, the
// coordinate a durable manifest stores: after restoring state and calling
// SetCursor, ResumeEpoch(NextBatch, partial) continues the run exactly where
// the snapshot left it.
type Cursor struct {
	// NextEpoch is the 1-based epoch the next batch belongs to.
	NextEpoch int `json:"next_epoch"`
	// NextBatch is the index of the next batch within that epoch's
	// deterministic shuffled batch sequence (0 = epoch start).
	NextBatch int `json:"next_batch"`
	// Iteration is the trainer's optimizer-step counter at the snapshot,
	// the sole input (besides Seed) to every per-step RNG stream.
	Iteration int `json:"iteration"`
}

// DivergenceEvent records one divergence-guard trip: what blew up, where,
// and the LR scale in force after the halving.
type DivergenceEvent struct {
	Epoch    int     `json:"epoch"`
	Batch    int     `json:"batch"`
	Loss     float64 `json:"loss"`
	GradNorm float64 `json:"grad_norm"`
	LRScale  float32 `json:"lr_scale"`
	Reason   string  `json:"reason"`
}

// goodState is the in-memory rollback point: a deep copy of everything a
// poisoned optimizer step mutates, plus the loop coordinates to replay from.
type goodState struct {
	weights   []tensor.Named
	buffers   []tensor.Named
	optState  []tensor.Named
	optStep   int
	iteration int
	batch     int
	ep        EpochStats
}

// namedParams exposes the network weights as aliased named tensors.
func (tr *Trainer) namedParams() []tensor.Named {
	ps := tr.Net.Params()
	out := make([]tensor.Named, len(ps))
	for i, p := range ps {
		out[i] = tensor.Named{Name: p.Name, T: p.W}
	}
	return out
}

// cloneNamed deep-copies a named tensor set.
func cloneNamed(src []tensor.Named) []tensor.Named {
	out := make([]tensor.Named, len(src))
	for i, s := range src {
		out[i] = tensor.Named{Name: s.Name, T: s.T.Clone()}
	}
	return out
}

// captureGood snapshots the mutable training state at a batch boundary.
func (tr *Trainer) captureGood(batch int, ep EpochStats) *goodState {
	return &goodState{
		weights:   cloneNamed(tr.namedParams()),
		buffers:   cloneNamed(tr.Net.Buffers()),
		optState:  cloneNamed(tr.Opt.StateTensors()),
		optStep:   tr.Opt.StepCount(),
		iteration: tr.iteration,
		batch:     batch,
		ep:        ep,
	}
}

// restoreGood copies a good state back into the live network and optimizer.
func (tr *Trainer) restoreGood(g *goodState) error {
	if err := tensor.CopyNamed(tr.namedParams(), g.weights); err != nil {
		return fmt.Errorf("core: rollback weights: %w", err)
	}
	if err := tensor.CopyNamed(tr.Net.Buffers(), g.buffers); err != nil {
		return fmt.Errorf("core: rollback buffers: %w", err)
	}
	if err := tensor.CopyNamed(tr.Opt.StateTensors(), g.optState); err != nil {
		return fmt.Errorf("core: rollback optimizer state: %w", err)
	}
	tr.Opt.SetStepCount(g.optStep)
	tr.iteration = g.iteration
	return nil
}

// markGood records a restorable good state at a batch boundary and fires the
// durability hook. The in-memory copy is only kept when the guard is armed.
func (tr *Trainer) markGood(batch int, ep EpochStats) error {
	if tr.Cfg.GuardRetries > 0 {
		tr.lastGood = tr.captureGood(batch, ep)
	}
	return tr.notifySnapshot(Cursor{NextEpoch: tr.epoch, NextBatch: batch, Iteration: tr.iteration}, ep)
}

// markEpochDone fires the durability hook with the cursor pointing at the
// next epoch's start. No in-memory capture is needed: the next epoch's loop
// marks its own good state before any batch runs.
func (tr *Trainer) markEpochDone(ep EpochStats) error {
	return tr.notifySnapshot(Cursor{NextEpoch: tr.epoch + 1, NextBatch: 0, Iteration: tr.iteration}, ep)
}

func (tr *Trainer) notifySnapshot(cur Cursor, ep EpochStats) error {
	if tr.Cfg.OnSnapshot == nil {
		return nil
	}
	if err := tr.Cfg.OnSnapshot(cur, ep); err != nil {
		return fmt.Errorf("core: snapshot at epoch %d batch %d: %w", cur.NextEpoch, cur.NextBatch, err)
	}
	return nil
}

// guardTrip reports why the last step diverged, or "" if it is healthy.
func (tr *Trainer) guardTrip(st StepStats) string {
	if tr.Cfg.GuardRetries <= 0 {
		return ""
	}
	if math.IsNaN(st.Loss) || math.IsInf(st.Loss, 0) {
		return "non-finite loss"
	}
	if math.IsNaN(st.GradNorm) || math.IsInf(st.GradNorm, 0) {
		return "non-finite gradient norm"
	}
	if th := tr.Cfg.GuardGradNorm; th > 0 && st.GradNorm > float64(th) {
		return fmt.Sprintf("gradient norm %.3g exceeds %.3g", st.GradNorm, th)
	}
	return ""
}

// divergenceRollback undoes the poisoned step by restoring the last good
// state, halves the effective learning rate, and returns the batch index and
// partial aggregate to replay from. The retry budget is per-run.
func (tr *Trainer) divergenceRollback(batch int, st StepStats, reason string) (int, EpochStats, error) {
	if len(tr.divLog) >= tr.Cfg.GuardRetries {
		return 0, EpochStats{}, fmt.Errorf("core: divergence guard exhausted %d retries (%s at epoch %d batch %d)",
			tr.Cfg.GuardRetries, reason, tr.epoch, batch)
	}
	g := tr.lastGood
	if g == nil {
		return 0, EpochStats{}, fmt.Errorf("core: divergence at epoch %d batch %d with no good state to roll back to",
			tr.epoch, batch)
	}
	if err := tr.restoreGood(g); err != nil {
		return 0, EpochStats{}, err
	}
	tr.lrScale /= 2
	if err := tr.applyEpochLR(); err != nil {
		return 0, EpochStats{}, err
	}
	tr.divLog = append(tr.divLog, DivergenceEvent{
		Epoch: tr.epoch, Batch: batch,
		Loss: st.Loss, GradNorm: st.GradNorm,
		LRScale: tr.lrScale, Reason: reason,
	})
	tr.tracer().Event(trace.TrackTrain, "divergence_rollback",
		trace.Attr{Key: "epoch", Val: int64(tr.epoch)},
		trace.Attr{Key: "batch", Val: int64(batch)},
		trace.Attr{Key: "replay_from", Val: int64(g.batch)})
	return g.batch, g.ep, nil
}

// applyEpochLR installs the effective learning rate — the scheduled (or
// configured) base times the guard's cumulative scale. It deliberately never
// touches the optimizer when there is nothing to change, preserving the seed
// behaviour of schedule-free runs.
func (tr *Trainer) applyEpochLR() error {
	if tr.Cfg.Schedule == nil && tr.lrScale == 1 {
		return nil
	}
	base := tr.Cfg.LR
	if tr.Cfg.Schedule != nil {
		base = tr.Cfg.Schedule.LR(tr.epoch)
	}
	rs, ok := tr.Opt.(opt.RateSetter)
	if !ok {
		return fmt.Errorf("core: optimizer %s does not support learning-rate changes", tr.Opt.Name())
	}
	rs.SetLR(base * tr.lrScale)
	return nil
}

// CursorAt returns the cursor a resumed run should continue from if it were
// restored right now, assuming the current epoch completed (the epoch-done
// cursor). Mid-epoch cursors are delivered through Cfg.OnSnapshot instead,
// because only the epoch loop knows the batch index.
func (tr *Trainer) CursorAt() Cursor {
	return Cursor{NextEpoch: tr.epoch + 1, NextBatch: 0, Iteration: tr.iteration}
}

// SetCursor positions the trainer so the next TrainEpoch or ResumeEpoch call
// continues exactly where cur points: the epoch counter is rewound by one
// because both entry points pre-increment it.
func (tr *Trainer) SetCursor(cur Cursor) {
	tr.epoch = cur.NextEpoch - 1
	tr.iteration = cur.Iteration
}

// Epoch reports the 1-based index of the last epoch entered (0 before any).
func (tr *Trainer) Epoch() int { return tr.epoch }

// Iteration reports the optimizer-step counter.
func (tr *Trainer) Iteration() int { return tr.iteration }

// LRScale reports the divergence guard's cumulative learning-rate scale.
func (tr *Trainer) LRScale() float32 { return tr.lrScale }

// SetLRScale restores the guard's learning-rate scale on resume.
func (tr *Trainer) SetLRScale(s float32) {
	if s <= 0 {
		s = 1
	}
	tr.lrScale = s
}

// DivergenceLog returns a copy of the guard's event log.
func (tr *Trainer) DivergenceLog() []DivergenceEvent {
	out := make([]DivergenceEvent, len(tr.divLog))
	copy(out, tr.divLog)
	return out
}

// SetDivergenceLog restores the guard's event log (and thereby its consumed
// retry budget) on resume.
func (tr *Trainer) SetDivergenceLog(events []DivergenceEvent) {
	tr.divLog = append([]DivergenceEvent(nil), events...)
}
