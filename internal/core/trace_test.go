package core

import (
	"math"
	"testing"

	"skipper/internal/models"
	"skipper/internal/trace"
)

// traceRun trains a capped Skipper epoch on a runtime carrying the given
// tracer and returns the epoch aggregate plus the trained weights' checksum.
func traceRun(t *testing.T, tr *trace.Tracer) (EpochStats, float64) {
	t.Helper()
	opts := []RuntimeOption{WithThreads(2), WithSeed(9)}
	if tr != nil {
		opts = append(opts, WithTracer(tr))
	}
	rt := NewRuntime(opts...)
	t.Cleanup(rt.Close)
	net, err := rt.BuildModel("customnet", models.Options{
		Width: 0.5, InShape: []int{3, 16, 16}, Classes: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rt.OpenDataset("cifar10")
	if err != nil {
		t.Fatal(err)
	}
	trn, err := rt.NewTrainer(net, data, Skipper{C: 2, P: 15}, Config{
		T: 12, Batch: 2, MaxBatchesPerEpoch: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(trn.Close)
	ep, err := trn.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range net.Params() {
		for _, v := range p.W.Data {
			sum += float64(v)
		}
	}
	return ep, sum
}

// The acceptance check for the tracing tentpole: the per-segment recompute
// and backward spans the tracer records must sum to the same wall-clock time
// EpochStats reports. phaseDone measures each phase once and feeds both
// consumers the same duration, so the agreement should be essentially exact;
// 5% covers only the float64 µs rounding in the span store.
func TestTraceSpansMatchEpochStats(t *testing.T) {
	tc := trace.New(0)
	ep, _ := traceRun(t, tc)

	within := func(name string, got, want float64) {
		t.Helper()
		if want == 0 {
			t.Fatalf("%s: epoch stats recorded zero seconds, cannot compare", name)
		}
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("%s spans sum to %.6fs, epoch stats say %.6fs (%.1f%% apart)",
				name, got, want, 100*rel)
		}
	}
	within("forward", tc.SpanSeconds("forward"), ep.ForwardTime.Seconds())
	within("recompute", tc.SpanSeconds("recompute"), ep.RecomputeTime.Seconds())
	within("backward", tc.SpanSeconds("backward"), ep.BackwardTime.Seconds())

	// The per-batch phases must be present too: every batch encodes input
	// and steps the optimizer.
	for _, name := range []string{"encode", "opt_step", "sam_select"} {
		if tc.SpanSeconds(name) <= 0 {
			t.Errorf("no %q spans recorded", name)
		}
	}
	if tc.Dropped() != 0 {
		t.Errorf("tracer dropped %d events with the default cap", tc.Dropped())
	}
}

// Attaching a tracer observes training; it must never perturb it. The same
// seeded run with and without a tracer produces identical losses, step
// counts, and weights.
func TestTracingDoesNotChangeResults(t *testing.T) {
	plain, wPlain := traceRun(t, nil)
	traced, wTraced := traceRun(t, trace.New(0))

	plain.Duration, traced.Duration = 0, 0
	plain.ForwardTime, traced.ForwardTime = 0, 0
	plain.RecomputeTime, traced.RecomputeTime = 0, 0
	plain.BackwardTime, traced.BackwardTime = 0, 0
	if plain != traced {
		t.Errorf("epoch stats diverge with tracing on:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
	if wPlain != wTraced {
		t.Errorf("weight checksum diverges with tracing on: %g vs %g", wPlain, wTraced)
	}
}
