package core

import (
	"fmt"
	"time"

	"skipper/internal/dataset"
	"skipper/internal/mem"
	"skipper/internal/tensor"
)

// DataParallel reproduces the paper's multi-GPU regime (Fig. 4b): R replicas
// of the same network, each with its own device, each processing a shard of
// the global batch; gradients are averaged across replicas (all-reduce) and
// every replica applies the same optimizer step, keeping the replicas in
// lock-step exactly as synchronous data parallelism does.
//
// The replicas execute sequentially on this host, so the simulated wall
// time of a step is the slowest replica's compute time plus a bandwidth
// model of the all-reduce. All replicas run their kernels on one shared
// compute pool (each trainer's Config.Runtime, the process default unless
// overridden), so adding replicas parallelises each replica's kernels in
// turn rather than oversubscribing the host with R pools.
type DataParallel struct {
	Replicas []*Trainer
	// AllReduceGBps models interconnect bandwidth for the gradient
	// all-reduce (ring: 2·(R−1)/R of the parameter bytes per replica).
	// Zero means 50 GB/s (NVLink-class).
	AllReduceGBps float64
}

// NewDataParallel builds R lock-step replicas from a factory. The factory
// must produce identically initialised trainers (deterministic model build
// plus identical seeds).
func NewDataParallel(r int, factory func(replica int) (*Trainer, error)) (*DataParallel, error) {
	if r < 1 {
		return nil, fmt.Errorf("core: data parallel needs >= 1 replica, got %d", r)
	}
	dp := &DataParallel{}
	for i := 0; i < r; i++ {
		tr, err := factory(i)
		if err != nil {
			dp.Close()
			return nil, fmt.Errorf("core: building replica %d: %w", i, err)
		}
		dp.Replicas = append(dp.Replicas, tr)
	}
	return dp, nil
}

// Close releases all replicas.
func (dp *DataParallel) Close() {
	for _, tr := range dp.Replicas {
		tr.Close()
	}
}

// DPStepStats extends StepStats with the data-parallel timing model.
type DPStepStats struct {
	StepStats
	// SlowestReplica is the longest single-replica compute time.
	SlowestReplica time.Duration
	// AllReduce is the modelled gradient-exchange time.
	AllReduce time.Duration
	// Wall is SlowestReplica + AllReduce — the simulated step latency.
	Wall time.Duration
}

// TrainBatchIndices runs one synchronous data-parallel step over the given
// global batch, sharding it across replicas.
func (dp *DataParallel) TrainBatchIndices(split dataset.Split, indices []int) (DPStepStats, error) {
	r := len(dp.Replicas)
	var out DPStepStats
	shards := make([][]int, r)
	for i, idx := range indices {
		shards[i%r] = append(shards[i%r], idx)
	}

	// Each replica computes gradients on its shard.
	for i, tr := range dp.Replicas {
		if len(shards[i]) == 0 {
			continue
		}
		input, labels := tr.Data.SpikeBatch(split, shards[i], tr.Cfg.T)
		inBlock, err := tr.Dev.Alloc(mem.Input, tr.inputBytes(input, labels))
		if err != nil {
			return out, fmt.Errorf("core: replica %d input: %w", i, err)
		}
		tr.iteration++
		tr.Net.ZeroGrads()
		start := time.Now()
		st, err := tr.Strat.TrainBatch(tr, input, labels)
		elapsed := time.Since(start)
		inBlock.Release()
		if err != nil {
			return out, fmt.Errorf("core: replica %d: %w", i, err)
		}
		out.StepStats.Add(st)
		if elapsed > out.SlowestReplica {
			out.SlowestReplica = elapsed
		}
	}

	// All-reduce: average gradients across replicas and give every replica
	// the same averaged gradient.
	params := make([][]tensorParam, r)
	for i, tr := range dp.Replicas {
		ps := tr.Net.Params()
		params[i] = make([]tensorParam, len(ps))
		for j, p := range ps {
			params[i][j] = tensorParam{p.G}
		}
	}
	var paramBytes int64
	inv := float32(1) / float32(r)
	for j := range params[0] {
		acc := params[0][j].g
		paramBytes += acc.Bytes()
		for i := 1; i < r; i++ {
			tensor.AXPY(acc, 1, params[i][j].g)
		}
		tensor.Scale(acc, acc, inv)
		for i := 1; i < r; i++ {
			tensor.Copy(params[i][j].g, acc)
		}
	}
	out.AllReduce = dp.allReduceTime(paramBytes)

	// Identical update on every replica keeps them in lock-step.
	for _, tr := range dp.Replicas {
		tr.Opt.Step()
	}
	out.Wall = out.SlowestReplica + out.AllReduce
	return out, nil
}

type tensorParam struct{ g *tensor.Tensor }

func (dp *DataParallel) allReduceTime(paramBytes int64) time.Duration {
	gbps := dp.AllReduceGBps
	if gbps == 0 {
		gbps = 50
	}
	r := float64(len(dp.Replicas))
	if r < 2 {
		return 0
	}
	// Ring all-reduce moves 2·(R−1)/R of the buffer per replica.
	bytes := 2 * (r - 1) / r * float64(paramBytes)
	return time.Duration(bytes / (gbps * 1e9) * float64(time.Second))
}

// InSync reports whether all replica weights are bit-identical — the
// invariant synchronous data parallelism maintains.
func (dp *DataParallel) InSync() bool {
	if len(dp.Replicas) < 2 {
		return true
	}
	ref := dp.Replicas[0].Net.Params()
	for _, tr := range dp.Replicas[1:] {
		ps := tr.Net.Params()
		for j := range ref {
			for k := range ref[j].W.Data {
				if ps[j].W.Data[k] != ref[j].W.Data[k] {
					return false
				}
			}
		}
	}
	return true
}
