package core

import (
	"fmt"
	"time"

	"skipper/internal/dataset"
	"skipper/internal/tensor"
)

// DataParallel reproduces the paper's multi-GPU regime (Fig. 4b): R replicas
// of the same network, each with its own device, each processing a shard of
// the global batch; gradients are averaged across replicas (all-reduce) and
// every replica applies the same optimizer step, keeping the replicas in
// lock-step exactly as synchronous data parallelism does.
//
// The replicas execute sequentially on this host, so the simulated wall
// time of a step is the slowest replica's compute time plus a bandwidth
// model of the all-reduce. All replicas run their kernels on one shared
// compute pool (each trainer's Config.Runtime, the process default unless
// overridden), so adding replicas parallelises each replica's kernels in
// turn rather than oversubscribing the host with R pools.
type DataParallel struct {
	Replicas []*Trainer
	// AllReduceGBps models interconnect bandwidth for the gradient
	// all-reduce (ring: 2·(R−1)/R of the parameter bytes per replica).
	// Zero means 50 GB/s (NVLink-class).
	AllReduceGBps float64
}

// NewDataParallel builds R lock-step replicas from a factory. The factory
// must produce identically initialised trainers (deterministic model build
// plus identical seeds).
func NewDataParallel(r int, factory func(replica int) (*Trainer, error)) (*DataParallel, error) {
	if r < 1 {
		return nil, fmt.Errorf("core: data parallel needs >= 1 replica, got %d", r)
	}
	dp := &DataParallel{}
	for i := 0; i < r; i++ {
		tr, err := factory(i)
		if err != nil {
			dp.Close()
			return nil, fmt.Errorf("core: building replica %d: %w", i, err)
		}
		dp.Replicas = append(dp.Replicas, tr)
	}
	return dp, nil
}

// Close releases all replicas.
func (dp *DataParallel) Close() {
	for _, tr := range dp.Replicas {
		tr.Close()
	}
}

// DPStepStats extends StepStats with the data-parallel timing model.
type DPStepStats struct {
	StepStats
	// SlowestReplica is the longest single-replica compute time.
	SlowestReplica time.Duration
	// AllReduce is the modelled gradient-exchange time.
	AllReduce time.Duration
	// Wall is SlowestReplica + AllReduce — the simulated step latency.
	Wall time.Duration
	// ExchangeBusy is the total time the gradient exchange was doing work
	// (real transports fill this; the in-process model leaves it 0).
	ExchangeBusy time.Duration
	// OverlapFrac is the fraction of ExchangeBusy hidden under backward
	// recomputation: 1 − visible/busy, clamped to [0,1]. 0 when the
	// exchange runs strictly after compute (no overlap).
	OverlapFrac float64
}

// TrainBatchIndices runs one synchronous data-parallel step over the given
// global batch, sharding it across replicas round-robin.
//
// Every replica — including one whose shard came up empty on a short final
// batch — zeroes its gradients and advances to the same iteration number, so
// no stale gradient from the previous step can leak into the reduction and
// all RNG streams stay aligned. Because each shard scales its loss by the
// global batch size (see Trainer.ShardGrads), the rank-ordered sum in
// ReduceGrads reproduces the exact global-batch mean for unequal shards too;
// no trailing 1/R rescale is applied.
func (dp *DataParallel) TrainBatchIndices(split dataset.Split, indices []int) (DPStepStats, error) {
	r := len(dp.Replicas)
	var out DPStepStats
	shards := Shard(indices, r)
	iter := dp.Replicas[0].iteration + 1

	// Each replica computes gradients on its shard.
	for i, tr := range dp.Replicas {
		st, elapsed, err := tr.ShardGrads(split, shards[i], iter, len(indices))
		if err != nil {
			return out, fmt.Errorf("core: replica %d: %w", i, err)
		}
		out.StepStats.Add(st)
		if elapsed > out.SlowestReplica {
			out.SlowestReplica = elapsed
		}
	}

	// All-reduce: deterministic rank-ordered sum, then every replica gets a
	// bitwise copy of the reduced gradient.
	sets := make([][]*tensor.Tensor, r)
	counts := make([]int, r)
	for i, tr := range dp.Replicas {
		ps := tr.Net.Params()
		sets[i] = make([]*tensor.Tensor, len(ps))
		for j, p := range ps {
			sets[i][j] = p.G
		}
		counts[i] = len(shards[i])
	}
	paramBytes, err := ReduceGrads(sets, counts)
	if err != nil {
		return out, err
	}
	for i := 1; i < r; i++ {
		for j := range sets[i] {
			tensor.Copy(sets[i][j], sets[0][j])
		}
	}
	out.AllReduce = dp.allReduceTime(paramBytes)

	// Identical update on every replica keeps them in lock-step.
	for _, tr := range dp.Replicas {
		norm := tr.ApplyReduced()
		if norm > out.GradNorm {
			out.GradNorm = norm
		}
	}
	out.Wall = out.SlowestReplica + out.AllReduce
	return out, nil
}

func (dp *DataParallel) allReduceTime(paramBytes int64) time.Duration {
	return AllReduceModel(paramBytes, len(dp.Replicas), dp.AllReduceGBps)
}

// AllReduceModel predicts the ring all-reduce time for paramBytes of
// gradients across r replicas at gbps GB/s of interconnect bandwidth
// (0 = 50, NVLink-class) — the exchange-cost model bench_dist compares its
// measured multi-process exchange against.
func AllReduceModel(paramBytes int64, r int, gbps float64) time.Duration {
	if gbps == 0 {
		gbps = 50
	}
	if r < 2 {
		return 0
	}
	// Ring all-reduce moves 2·(R−1)/R of the buffer per replica.
	bytes := 2 * float64(r-1) / float64(r) * float64(paramBytes)
	return time.Duration(bytes / (gbps * 1e9) * float64(time.Second))
}

// InSync reports whether all replica weights are bit-identical — the
// invariant synchronous data parallelism maintains.
func (dp *DataParallel) InSync() bool {
	if len(dp.Replicas) < 2 {
		return true
	}
	ref := dp.Replicas[0].Net.Params()
	for _, tr := range dp.Replicas[1:] {
		ps := tr.Net.Params()
		for j := range ref {
			for k := range ref[j].W.Data {
				if ps[j].W.Data[k] != ref[j].W.Data[k] {
					return false
				}
			}
		}
	}
	return true
}
