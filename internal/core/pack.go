package core

import (
	"skipper/internal/layers"
	"skipper/internal/tensor"
)

// packedState is a storage-optimised timestep record: membrane potentials
// stay as float32 (they are dense reals), while binary spike tensors are
// bit-packed 32×. Enabled by Config.CompressSpikes for the long-lived
// checkpoint boundary records — an optimisation beyond the paper that
// shrinks the O(C) term of Eq. 3. Packing is lossless for binary tensors,
// so gradient exactness is unaffected (a tested invariant).
type packedState struct {
	u       *tensor.Tensor
	oPacked *tensor.PackedSpikes
	oRaw    *tensor.Tensor
	sub     []*packedState
}

// packState converts a record, packing every exactly-binary output tensor.
func packState(st *layers.LayerState) *packedState {
	if st == nil {
		return nil
	}
	ps := &packedState{u: st.U}
	switch {
	case st.OPacked != nil:
		// Spike-pack mode already carries the packed view — reuse it and
		// skip the binary scan and re-pack entirely.
		ps.oPacked = st.OPacked
	case st.O != nil:
		if p, ok := tensor.PackSpikes(st.O); ok {
			ps.oPacked = p
		} else {
			ps.oRaw = st.O
		}
	}
	for _, sub := range st.Sub {
		ps.sub = append(ps.sub, packState(sub))
	}
	return ps
}

// unpack reconstructs the original record exactly.
func (ps *packedState) unpack() *layers.LayerState {
	if ps == nil {
		return nil
	}
	st := &layers.LayerState{U: ps.u}
	if ps.oPacked != nil {
		st.O = ps.oPacked.Unpack()
	} else {
		st.O = ps.oRaw
	}
	for _, sub := range ps.sub {
		st.Sub = append(st.Sub, sub.unpack())
	}
	return st
}

// bytes is the storage footprint charged to the device.
func (ps *packedState) bytes() int64 {
	if ps == nil {
		return 0
	}
	var n int64
	if ps.u != nil {
		n += ps.u.Bytes()
	}
	if ps.oPacked != nil {
		n += ps.oPacked.Bytes()
	} else if ps.oRaw != nil {
		n += ps.oRaw.Bytes()
	}
	for _, sub := range ps.sub {
		n += sub.bytes()
	}
	return n
}

// packStates converts a whole timestep record set.
func packStates(states []*layers.LayerState) ([]*packedState, int64) {
	out := make([]*packedState, len(states))
	var bytes int64
	for i, st := range states {
		out[i] = packState(st)
		bytes += out[i].bytes()
	}
	return out, bytes
}

// unpackStates reconstructs the record set.
func unpackStates(ps []*packedState) []*layers.LayerState {
	out := make([]*layers.LayerState, len(ps))
	for i, p := range ps {
		out[i] = p.unpack()
	}
	return out
}

// unpackLazy rebuilds the record without expanding spike bits: packed spike
// planes travel as LayerState.OPacked and the packed-aware layer kernels
// consume them directly. Non-binary outputs (readout membranes) were never
// packed and come back dense. LayerState.DenseO materialises on demand for
// any consumer that still needs floats.
func (ps *packedState) unpackLazy() *layers.LayerState {
	if ps == nil {
		return nil
	}
	st := &layers.LayerState{U: ps.u}
	if ps.oPacked != nil {
		st.OPacked = ps.oPacked
	} else {
		st.O = ps.oRaw
	}
	for _, sub := range ps.sub {
		st.Sub = append(st.Sub, sub.unpackLazy())
	}
	return st
}

// unpackStatesLazy reconstructs the record set keeping spikes packed.
func unpackStatesLazy(ps []*packedState) []*layers.LayerState {
	out := make([]*layers.LayerState, len(ps))
	for i, p := range ps {
		out[i] = p.unpackLazy()
	}
	return out
}
