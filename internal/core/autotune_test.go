package core

import (
	"strings"
	"testing"

	"skipper/internal/dataset"
	"skipper/internal/mem"
)

func TestAutoTuneUnlimitedPicksBPTT(t *testing.T) {
	net, _, _, _ := tinySetup(t, 18)
	plan, err := AutoTune(net, []int{3, 16, 16}, Config{T: 18, Batch: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.Strategy.(BPTT); !ok {
		t.Fatalf("unlimited budget should pick BPTT, got %s", plan.Strategy.Name())
	}
}

func TestAutoTuneDegradesGracefully(t *testing.T) {
	const T = 24
	net, _, _, _ := tinySetup(t, T)
	cfg := Config{T: T, Batch: 4}
	full, err := AutoTune(net, []int{3, 16, 16}, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Just below the full-unroll prediction: must fall back to checkpointing.
	planCkpt, err := AutoTune(net, []int{3, 16, 16}, cfg, full.PredictedPeak-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := planCkpt.Strategy.(Checkpoint); !ok {
		t.Fatalf("tight budget should pick checkpointing, got %s (%s)", planCkpt.Strategy.Name(), planCkpt.Reason)
	}
	if planCkpt.PredictedPeak >= full.PredictedPeak {
		t.Fatal("checkpoint plan should predict less memory than BPTT")
	}
	// Just below the checkpoint prediction: must pick skipper.
	planSkip, err := AutoTune(net, []int{3, 16, 16}, cfg, planCkpt.PredictedPeak-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := planSkip.Strategy.(Skipper); !ok {
		t.Fatalf("tighter budget should pick skipper, got %s (%s)", planSkip.Strategy.Name(), planSkip.Reason)
	}
	if planSkip.P <= 0 {
		t.Fatal("skipper plan should have a positive skip percentile")
	}
	if !strings.Contains(planSkip.Reason, "Eq.7") {
		t.Fatalf("reason should cite the Eq.7 bound: %q", planSkip.Reason)
	}
}

func TestAutoTuneImpossibleBudget(t *testing.T) {
	net, _, _, _ := tinySetup(t, 18)
	if _, err := AutoTune(net, []int{3, 16, 16}, Config{T: 18, Batch: 2}, 1024); err == nil {
		t.Fatal("1 KiB budget must be rejected")
	}
}

func TestAutoTuneRejectsShortHorizon(t *testing.T) {
	net, _, _, _ := tinySetup(t, 18) // L_n = 4
	if _, err := AutoTune(net, []int{3, 16, 16}, Config{T: 3, Batch: 2}, 0); err == nil {
		t.Fatal("T <= L_n must be rejected")
	}
}

// The tuned plan must actually run within the budget it was tuned for.
func TestAutoTunePlanActuallyFits(t *testing.T) {
	const T = 24
	net, data, _, _ := tinySetup(t, T)
	cfg := Config{T: T, Batch: 4, MaxBatchesPerEpoch: 1}
	full, err := AutoTune(net, []int{3, 16, 16}, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Force a budget that excludes BPTT but admits the tuned fallback.
	budget := full.PredictedPeak * 6 / 10
	plan, err := AutoTune(net, []int{3, 16, 16}, cfg, budget)
	if err != nil {
		t.Skipf("no plan fits %d: %v", budget, err)
	}
	dev := mem.NewDevice(mem.Config{Budget: budget})
	runCfg := cfg
	runCfg.Device = dev
	tr, err := NewTrainer(net, data, plan.Strategy, runCfg)
	if err != nil {
		t.Fatalf("tuned plan %s failed to construct: %v", plan.Strategy.Name(), err)
	}
	defer tr.Close()
	if _, err := tr.TrainEpoch(); err != nil {
		t.Fatalf("tuned plan %s (%s, predicted %d) OOMed within budget %d: %v",
			plan.Strategy.Name(), plan.Reason, plan.PredictedPeak, budget, err)
	}
	_ = dataset.Train
}
