package core

import (
	"fmt"
	"time"

	"skipper/internal/layers"
	"skipper/internal/mem"
	"skipper/internal/tensor"
	"skipper/internal/trace"
)

// Checkpoint is temporal activation checkpointing (paper Sec. V): the first
// forward pass stores records only at C uniformly spaced checkpoint
// timesteps; the backward pass walks the segments last-to-first, re-running
// the forward within a segment to restore its records, back-propagating
// through it, and releasing the segment's memory before moving on.
// Activation memory follows Eq. 3: O(T/C) + O(C), minimised at C = √T.
//
// The result is bit-identical to baseline BPTT — the recomputation replays
// exactly the same deterministic forward — at the cost of one extra forward
// pass (≈33% more compute).
type Checkpoint struct {
	// C is the number of temporal checkpoints (1 <= C, T/C > L_n).
	C int
}

// Name implements Strategy.
func (c Checkpoint) Name() string { return fmt.Sprintf("ckpt(C=%d)", c.C) }

// Segments implements Segmenter: the backward pass flushes once per
// checkpoint segment.
func (c Checkpoint) Segments() int { return c.C }

// Validate implements Strategy.
func (c Checkpoint) Validate(cfg Config, net *layers.Network) error {
	return ValidateCheckpoints(cfg.T, c.C, net.StatefulCount())
}

// TrainBatch implements Strategy.
func (c Checkpoint) TrainBatch(tr *Trainer, input []*tensor.Tensor, labels []int) (StepStats, error) {
	st := StepStats{N: len(labels)}
	rs := tr.newRecordStore()
	defer rs.dropAll()

	// Step 1: forward in time, storing records only at checkpoint times.
	// The rolling (transient) record is charged while it is live so the
	// device sees the true instantaneous footprint.
	la := newLossAccumulator(tr.Cfg, tr.lossDenom, labels)
	if err := checkpointForward(tr, input, la, CheckpointTimes(tr.Cfg.T, c.C), rs, &st, nil); err != nil {
		return st, err
	}
	st.Loss, st.Correct = la.Loss, la.Correct

	// Everything from here on is replay: freeze first-pass-only side
	// effects (batch-norm running statistics).
	tr.Net.BeginRecompute()
	defer tr.Net.EndRecompute()

	// Steps 2..5: per segment, last to first — recompute, then backprop.
	scratch, err := tr.deltaScratch(len(labels))
	if err != nil {
		return st, fmt.Errorf("core: ckpt backward scratch: %w", err)
	}
	defer scratch.Release()

	T := tr.Cfg.T
	outIdx := len(tr.Net.Layers) - 1
	var deltas []*layers.Delta
	for s := c.C - 1; s >= 0; s-- {
		start, end := SegmentBounds(T, c.C, s)
		// Recompute the segment's interior from the stored boundary record.
		rec := time.Now()
		states := rs.get(start)
		for t := start + 1; t < end; t++ {
			states = tr.Net.ForwardStep(input[t], states)
			if err := rs.put(t, states); err != nil {
				return st, fmt.Errorf("core: ckpt recompute t=%d: %w", t, err)
			}
			st.RecomputedSteps++
		}
		tr.phaseDone(&st.RecomputeTime, "recompute", rec, trace.Attr{Key: "seg", Val: int64(s)})

		// Backward through the segment, consuming and freeing its records.
		bwd := time.Now()
		for t := end - 1; t >= start; t-- {
			var inject map[int]*tensor.Tensor
			if dl := la.at(t); dl != nil {
				inject = map[int]*tensor.Tensor{outIdx: dl}
			}
			deltas = tr.Net.BackwardStep(input[t], rs.get(t), inject, deltas)
			rs.drop(t)
			st.BackwardSteps++
		}
		tr.phaseDone(&st.BackwardTime, "backward", bwd, trace.Attr{Key: "seg", Val: int64(s)})
		tr.segmentFlushed(c.C-s, c.C)
	}
	return st, nil
}

// checkpointForward performs the storing-only-checkpoints first forward
// pass shared by Checkpoint, Skipper, and AdaptiveSkipper: records are kept
// only at the given checkpoint timesteps. The loss accumulator observes the
// readout at every covered timestep; when sam is non-nil it also records
// the per-timestep activity score s_t (paper Eq. 4).
func checkpointForward(tr *Trainer, input []*tensor.Tensor, la *lossAccumulator, cps []int, rs *recordStore, st *StepStats, sam *samTrace) error {
	T := tr.Cfg.T
	cpTimes := map[int]bool{}
	for _, t := range cps {
		cpTimes[t] = true
	}
	fwd := time.Now()
	var states []*layers.LayerState
	var rolling *memBlockHolder
	for t := 0; t < T; t++ {
		states = tr.Net.ForwardStep(input[t], states)
		st.ForwardSteps++
		if sam != nil {
			sam.scores[t] = sam.metric.Score(tr.Net, states)
		}
		la.observe(t, tr.Net.Logits(states))
		if cpTimes[t] {
			var err error
			if tr.Cfg.CompressSpikes {
				err = rs.putPacked(t, states)
			} else {
				err = rs.put(t, states)
			}
			if err != nil {
				rolling.release()
				return fmt.Errorf("core: ckpt forward t=%d: %w", t, err)
			}
			rolling.release()
			rolling = nil
			continue
		}
		// Transient: charge the rolling record, release the previous one.
		b, err := tr.Dev.Alloc(mem.Activations, stateBytes(states))
		if err != nil {
			rolling.release()
			return fmt.Errorf("core: ckpt forward t=%d: %w", t, err)
		}
		rolling.release()
		rolling = &memBlockHolder{b}
	}
	rolling.release()
	tr.phaseDone(&st.ForwardTime, "forward", fwd)
	return nil
}

// samTrace carries the SAM scores of the first forward pass.
type samTrace struct {
	metric SAMMetric
	scores []float64
}

// memBlockHolder makes releasing an optional rolling block nil-safe.
type memBlockHolder struct{ b *mem.Block }

func (h *memBlockHolder) release() {
	if h != nil {
		h.b.Release()
	}
}
