package dist

import (
	"errors"
	"fmt"
	"net"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/runstate"
	"skipper/internal/tensor"
	"skipper/internal/trace"
)

// WorkerConfig parameterizes RunWorker.
type WorkerConfig struct {
	// Dial opens a connection to the coordinator. Seam for tests (net.Pipe)
	// and fault injection (faults.Conn); production passes net.Dial.
	Dial func() (net.Conn, error)
	// MaxReconnects bounds consecutive failed connection attempts/sessions
	// before the worker gives up with a CoordinatorLostError. Any completed
	// handshake resets the count. Default 5.
	MaxReconnects int
	// ReconnectWait is the backoff base between attempts, doubled per
	// consecutive failure and capped at 5s. Default 200ms.
	ReconnectWait time.Duration
	// IOTimeout bounds each read/write while a round is in flight.
	// Default 60s.
	IOTimeout time.Duration
	// IdleTimeout bounds the wait for the next assignment between rounds
	// (the coordinator may legitimately pause while refilling ranks).
	// Default 10min.
	IdleTimeout time.Duration

	Tracer *trace.Tracer
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.MaxReconnects <= 0 {
		c.MaxReconnects = 5
	}
	if c.ReconnectWait <= 0 {
		c.ReconnectWait = 200 * time.Millisecond
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 60 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Minute
	}
	return c
}

// CoordinatorLostError reports that the worker exhausted its reconnect
// budget. The worker's trainer state is whatever the last committed round
// left it with; restarting the worker against the same coordinator resyncs
// it from the coordinator's manifest automatically.
type CoordinatorLostError struct {
	// Round is the first round this worker did not commit.
	Round int
	Err   error
}

func (e *CoordinatorLostError) Error() string {
	return fmt.Sprintf("dist: coordinator unreachable at round %d: %v (restart this worker with the same join address once the coordinator is back; it resyncs from the coordinator's manifest)",
		e.Round, e.Err)
}

func (e *CoordinatorLostError) Unwrap() error { return e.Err }

// permanentError marks failures reconnecting cannot fix (handshake
// rejection, local compute failure, corrupted trainer state).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// RunWorker joins tr to a coordinator and participates in rounds until the
// coordinator sends done (returns nil), a permanent error occurs, or the
// reconnect budget runs out (returns *CoordinatorLostError).
//
// Every (re)join resyncs tr bitwise from the coordinator's manifest, so a
// worker that missed rounds — or is joining fresh — starts from the exact
// committed state.
func RunWorker(tr *core.Trainer, cfg WorkerConfig) error {
	if cfg.Dial == nil {
		return fmt.Errorf("dist: worker needs a Dial function")
	}
	cfg = cfg.withDefaults()
	fails := 0
	round := 0
	for {
		conn, err := cfg.Dial()
		if err == nil {
			var r int
			var progressed bool
			r, progressed, err = workerSession(tr, conn, cfg)
			conn.Close()
			if r > round {
				round = r
			}
			if err == nil {
				return nil
			}
			var pe *permanentError
			if errors.As(err, &pe) {
				return pe.err
			}
			if progressed {
				fails = 0
			}
		}
		fails++
		if fails > cfg.MaxReconnects {
			return &CoordinatorLostError{Round: round, Err: err}
		}
		wait := cfg.ReconnectWait << (fails - 1)
		if wait > 5*time.Second || wait <= 0 {
			wait = 5 * time.Second
		}
		time.Sleep(wait)
	}
}

// workerSession runs one connection's lifetime: handshake, resync, then the
// assign/upload/commit loop. It reports the first uncommitted round and
// whether the session made progress (completed the handshake), which resets
// the caller's reconnect budget.
func workerSession(tr *core.Trainer, conn net.Conn, cfg WorkerConfig) (round int, progressed bool, err error) {
	conn.SetDeadline(time.Now().Add(cfg.IOTimeout))
	hb, err := encodeJSON(helloMsg{
		Proto:     protoVersion,
		Strategy:  tr.Strat.Name(),
		Optimizer: tr.Opt.Name(),
		Seed:      tr.Cfg.Seed,
		T:         tr.Cfg.T,
		LR:        float64(tr.Cfg.LR),
		GradClip:  float64(tr.Cfg.GradClip),
	})
	if err != nil {
		return 0, false, &permanentError{err}
	}
	if err := writeFrame(conn, msgHello, hb); err != nil {
		return 0, false, err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return 0, false, err
	}
	if typ == msgError {
		return 0, false, decodeWorkerError(payload)
	}
	if typ != msgWelcome {
		return 0, false, fmt.Errorf("dist: expected welcome, got message type %d", typ)
	}
	var welcome welcomeMsg
	if err := decodeJSON(payload, &welcome); err != nil {
		return 0, false, err
	}
	typ, payload, err = readFrame(conn)
	if err != nil {
		return welcome.Round, false, err
	}
	if typ != msgState {
		return welcome.Round, false, fmt.Errorf("dist: expected state manifest, got message type %d", typ)
	}
	m, err := runstate.Decode(payload)
	if err != nil {
		return welcome.Round, false, &permanentError{fmt.Errorf("dist: decoding resync manifest: %w", err)}
	}
	if err := m.Restore(tr); err != nil {
		return welcome.Round, false, &permanentError{fmt.Errorf("dist: restoring resync manifest: %w", err)}
	}
	cfg.Tracer.Event(trace.TrackDist, "joined",
		trace.Attr{Key: "rank", Val: int64(welcome.Rank)},
		trace.Attr{Key: "round", Val: int64(welcome.Round)})

	round = welcome.Round
	rank := welcome.Rank
	lastEpoch := -1
	for {
		conn.SetDeadline(time.Now().Add(cfg.IdleTimeout))
		typ, payload, err := readFrame(conn)
		if err != nil {
			return round, true, err
		}
		conn.SetDeadline(time.Now().Add(cfg.IOTimeout))
		switch typ {
		case msgAssign:
			var a assignMsg
			if err := decodeJSON(payload, &a); err != nil {
				return round, true, err
			}
			if a.Epoch != lastEpoch {
				if err := tr.BeginEpoch(a.Epoch); err != nil {
					return round, true, &permanentError{err}
				}
				lastEpoch = a.Epoch
			}
			computeStart := time.Now()
			st, elapsed, err := tr.ShardGrads(dataset.Split(a.Split), a.Indices, a.Iteration, a.GlobalN)
			_ = computeStart
			if err != nil {
				// Local compute failure: tell the coordinator (so the round
				// aborts promptly instead of timing out) and stop.
				if eb, encErr := encodeJSON(errorMsg{Message: err.Error()}); encErr == nil {
					writeFrame(conn, msgError, eb)
				}
				return round, true, &permanentError{err}
			}
			var ts []tensor.Named
			if len(a.Indices) > 0 {
				ts = tr.GradTensors()
			}
			gb, err := encodeTensors(gradsMeta{
				Round: a.Round, Attempt: a.Attempt, Rank: rank, Count: len(a.Indices),
				Loss: st.Loss, Correct: st.Correct, N: st.N,
				ComputeSeconds: elapsed.Seconds(),
			}, ts)
			if err != nil {
				return round, true, &permanentError{err}
			}
			if err := writeFrame(conn, msgGrads, gb); err != nil {
				return round, true, err
			}
			round = a.Round
		case msgReduced:
			var meta reducedMeta
			ts, err := decodeTensors(payload, &meta)
			if err != nil {
				return round, true, err
			}
			if meta.Round != round {
				return round, true, fmt.Errorf("dist: reduced gradients for round %d, expected %d", meta.Round, round)
			}
			if err := tr.SetGradTensors(ts); err != nil {
				return round, true, &permanentError{err}
			}
			tr.ApplyReduced()
			round = meta.Round + 1
			cfg.Tracer.Event(trace.TrackDist, "round_committed", trace.Attr{Key: "round", Val: int64(meta.Round)})
		case msgAbort:
			var ab abortMsg
			if err := decodeJSON(payload, &ab); err != nil {
				return round, true, err
			}
			cfg.Tracer.Event(trace.TrackDist, "round_aborted", trace.Attr{Key: "round", Val: int64(ab.Round)})
			// Nothing to undo: the round's gradients were never applied.
		case msgDone:
			return round, true, nil
		case msgError:
			return round, true, decodeWorkerError(payload)
		default:
			return round, true, fmt.Errorf("dist: unexpected message type %d", typ)
		}
	}
}

// decodeWorkerError turns a coordinator errorMsg into a worker-side error,
// permanent when the coordinator marked it so.
func decodeWorkerError(payload []byte) error {
	var em errorMsg
	if err := decodeJSON(payload, &em); err != nil {
		return err
	}
	err := fmt.Errorf("dist: coordinator: %s", em.Message)
	if em.Permanent {
		return &permanentError{err}
	}
	return err
}
