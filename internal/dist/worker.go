package dist

import (
	"errors"
	"fmt"
	"net"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/frame"
	"skipper/internal/runstate"
	"skipper/internal/trace"
)

// WorkerConfig parameterizes RunWorker.
type WorkerConfig struct {
	// Dial opens a connection to the coordinator. Seam for tests (net.Pipe)
	// and fault injection (faults.Conn); production passes net.Dial.
	Dial func() (net.Conn, error)
	// Options must match the coordinator's exchange options; the handshake
	// rejects mismatches permanently.
	Options Options
	// RingDial opens a ring-data connection to a successor's listener
	// (TopologyRing only). Seam for fault injection; default is a plain
	// net.Dial with IOTimeout.
	RingDial func(addr string) (net.Conn, error)
	// MaxReconnects bounds consecutive failed connection attempts/sessions
	// before the worker gives up with a CoordinatorLostError. Any completed
	// handshake resets the count. Default 5.
	MaxReconnects int
	// ReconnectWait is the backoff base between attempts, doubled per
	// consecutive failure and capped at 5s. Default 200ms.
	ReconnectWait time.Duration
	// IOTimeout bounds each read/write while a round is in flight.
	// Default 60s.
	IOTimeout time.Duration
	// IdleTimeout bounds the wait for the next assignment between rounds
	// (the coordinator may legitimately pause while refilling ranks).
	// Default 10min.
	IdleTimeout time.Duration

	Tracer *trace.Tracer
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.MaxReconnects <= 0 {
		c.MaxReconnects = 5
	}
	if c.ReconnectWait <= 0 {
		c.ReconnectWait = 200 * time.Millisecond
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 60 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Minute
	}
	c.Options = c.Options.withDefaults()
	if c.RingDial == nil {
		timeout := c.IOTimeout
		c.RingDial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return c
}

// CoordinatorLostError reports that the worker exhausted its reconnect
// budget. The worker's trainer state is whatever the last committed round
// left it with; restarting the worker against the same coordinator resyncs
// it from the coordinator's manifest automatically.
type CoordinatorLostError struct {
	// Round is the first round this worker did not commit.
	Round int
	Err   error
}

func (e *CoordinatorLostError) Error() string {
	return fmt.Sprintf("dist: coordinator unreachable at round %d: %v (restart this worker with the same join address once the coordinator is back; it resyncs from the coordinator's manifest)",
		e.Round, e.Err)
}

func (e *CoordinatorLostError) Unwrap() error { return e.Err }

// permanentError marks failures reconnecting cannot fix (handshake
// rejection, local compute failure, corrupted trainer state).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// workerState is the per-process state shared across a worker's sessions:
// the flat gradient view and, for ring topology, the ring-data endpoint and
// the latest announced membership.
type workerState struct {
	flat *flatGrads
	sig  string
	ring *ringEnd
	// Latest ring membership announcement.
	ringAddrs   []string
	ringVersion int
}

// RunWorker joins tr to a coordinator and participates in rounds until the
// coordinator sends done (returns nil), a permanent error occurs, or the
// reconnect budget runs out (returns *CoordinatorLostError).
//
// Every (re)join resyncs tr bitwise from the coordinator's manifest, so a
// worker that missed rounds — or is joining fresh — starts from the exact
// committed state.
func RunWorker(tr *core.Trainer, cfg WorkerConfig) error {
	if cfg.Dial == nil {
		return fmt.Errorf("dist: worker needs a Dial function")
	}
	if err := cfg.Options.Validate(); err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	grads := tr.GradTensors()
	ws := &workerState{flat: newFlatGrads(grads), sig: paramSig(grads)}
	if cfg.Options.Topology == TopologyRing {
		end, err := newRingEnd(cfg.Options.RingListen, cfg.RingDial, cfg.IOTimeout)
		if err != nil {
			return err
		}
		ws.ring = end
		defer end.close()
	}
	fails := 0
	round := 0
	for {
		conn, err := cfg.Dial()
		if err == nil {
			var r int
			var progressed bool
			r, progressed, err = workerSession(tr, conn, ws, cfg)
			conn.Close()
			if r > round {
				round = r
			}
			if err == nil {
				return nil
			}
			var pe *permanentError
			if errors.As(err, &pe) {
				return pe.err
			}
			if progressed {
				fails = 0
			}
		}
		fails++
		if fails > cfg.MaxReconnects {
			return &CoordinatorLostError{Round: round, Err: err}
		}
		wait := cfg.ReconnectWait << (fails - 1)
		if wait > 5*time.Second || wait <= 0 {
			wait = 5 * time.Second
		}
		time.Sleep(wait)
	}
}

// workerSession runs one connection's lifetime: handshake, resync, then the
// assign/upload/commit loop. It reports the first uncommitted round and
// whether the session made progress (completed the handshake), which resets
// the caller's reconnect budget.
func workerSession(tr *core.Trainer, conn net.Conn, ws *workerState, cfg WorkerConfig) (round int, progressed bool, err error) {
	conn.SetDeadline(time.Now().Add(cfg.IOTimeout))
	hello := helloMsg{
		Proto:     protoVersion,
		Strategy:  tr.Strat.Name(),
		Optimizer: tr.Opt.Name(),
		Seed:      tr.Cfg.Seed,
		T:         tr.Cfg.T,
		LR:        float64(tr.Cfg.LR),
		GradClip:  float64(tr.Cfg.GradClip),
		ParamSig:  ws.sig,
		Topology:  cfg.Options.Topology,
		Compress:  cfg.Options.Compress,
		Overlap:   cfg.Options.Overlap,
	}
	if ws.ring != nil {
		hello.RingAddr = ws.ring.addr()
	}
	hb, err := encodeJSON(hello)
	if err != nil {
		return 0, false, &permanentError{err}
	}
	if err := frame.Write(conn, msgHello, hb); err != nil {
		return 0, false, err
	}
	typ, payload, err := frame.Read(conn)
	if err != nil {
		return 0, false, err
	}
	if typ == msgError {
		return 0, false, decodeWorkerError(payload)
	}
	if typ != msgWelcome {
		return 0, false, fmt.Errorf("dist: expected welcome, got message type %d", typ)
	}
	var welcome welcomeMsg
	if err := decodeJSON(payload, &welcome); err != nil {
		return 0, false, err
	}
	typ, payload, err = frame.Read(conn)
	if err != nil {
		return welcome.Round, false, err
	}
	if typ != msgState {
		return welcome.Round, false, fmt.Errorf("dist: expected state manifest, got message type %d", typ)
	}
	m, err := runstate.Decode(payload)
	if err != nil {
		return welcome.Round, false, &permanentError{fmt.Errorf("dist: decoding resync manifest: %w", err)}
	}
	if err := m.Restore(tr); err != nil {
		return welcome.Round, false, &permanentError{fmt.Errorf("dist: restoring resync manifest: %w", err)}
	}
	cfg.Tracer.Event(trace.TrackDist, "joined",
		trace.Attr{Key: "rank", Val: int64(welcome.Rank)},
		trace.Attr{Key: "round", Val: int64(welcome.Round)})

	round = welcome.Round
	rank := welcome.Rank
	lastEpoch := -1
	for {
		conn.SetDeadline(time.Now().Add(cfg.IdleTimeout))
		typ, payload, err := frame.Read(conn)
		if err != nil {
			return round, true, err
		}
		conn.SetDeadline(time.Now().Add(cfg.IOTimeout))
		switch typ {
		case msgRing:
			var rm ringMsg
			if err := decodeJSON(payload, &rm); err != nil {
				return round, true, err
			}
			ws.ringAddrs = rm.Addrs
			ws.ringVersion = rm.Version
		case msgAssign:
			var a assignMsg
			if err := decodeJSON(payload, &a); err != nil {
				return round, true, err
			}
			if a.Epoch != lastEpoch {
				if err := tr.BeginEpoch(a.Epoch); err != nil {
					return round, true, &permanentError{err}
				}
				lastEpoch = a.Epoch
			}
			if cfg.Options.Topology == TopologyRing {
				err = workerRingRound(tr, conn, a, rank, welcome.World, ws, cfg)
			} else {
				err = workerStarRound(tr, conn, a, rank, ws, cfg)
			}
			if err != nil {
				return round, true, err
			}
			round = a.Round
		case msgReduced:
			var meta reducedMeta
			fb, err := decodeFlat(payload, &meta)
			if err != nil {
				return round, true, err
			}
			if meta.Round != round {
				return round, true, fmt.Errorf("dist: reduced gradients for round %d, expected %d", meta.Round, round)
			}
			vals := make([]float32, ws.flat.size())
			if err := decodeFloats(fb, vals); err != nil {
				return round, true, err
			}
			ws.flat.copyIn(0, ws.flat.size(), vals)
			tr.ApplyReduced()
			round = meta.Round + 1
			cfg.Tracer.Event(trace.TrackDist, "round_committed", trace.Attr{Key: "round", Val: int64(meta.Round)})
		case msgCommit:
			// Ring topology: the distribution trip already installed the
			// reduced gradient locally, so commit is the go-ahead to step.
			var cm commitMsg
			if err := decodeJSON(payload, &cm); err != nil {
				return round, true, err
			}
			if cm.Round != round {
				return round, true, fmt.Errorf("dist: commit for round %d, expected %d", cm.Round, round)
			}
			tr.ApplyReduced()
			round = cm.Round + 1
			cfg.Tracer.Event(trace.TrackDist, "round_committed", trace.Attr{Key: "round", Val: int64(cm.Round)})
		case msgAbort:
			var ab abortMsg
			if err := decodeJSON(payload, &ab); err != nil {
				return round, true, err
			}
			cfg.Tracer.Event(trace.TrackDist, "round_aborted", trace.Attr{Key: "round", Val: int64(ab.Round)})
			// Nothing to undo: the round's gradients were never applied.
		case msgDone:
			return round, true, nil
		case msgError:
			return round, true, decodeWorkerError(payload)
		default:
			return round, true, fmt.Errorf("dist: unexpected message type %d", typ)
		}
	}
}

// workerStarRound computes the assigned shard and uploads its gradient
// buckets to the coordinator. Buckets stream from the segment hook while
// later segments still recompute, so upload wire time hides under compute;
// the final bucket (carrying the stats) flushes when the batch completes.
func workerStarRound(tr *core.Trainer, conn net.Conn, a assignMsg, rank int, ws *workerState, cfg WorkerConfig) error {
	nb := a.NBuckets
	if nb <= 0 {
		nb = 1
	}
	contrib := len(a.Indices) > 0
	var stats gradsMeta // final-bucket stats; written before feed.finish

	feed := newBucketFeed(ws.flat, nb)
	upErr := make(chan error, 1)
	go func() {
		for ob := range feed.ch {
			meta := gradsMeta{
				Round: a.Round, Attempt: a.Attempt, Rank: rank, Count: len(a.Indices),
				Bucket: ob.b, NBucket: nb,
			}
			if ob.b == nb-1 {
				meta.Loss, meta.Correct, meta.N = stats.Loss, stats.Correct, stats.N
				meta.ComputeSeconds = stats.ComputeSeconds
			}
			pb, err := encodeFlat(meta, ob.vals, cfg.Options.sparseWire())
			if err != nil {
				upErr <- err
				return
			}
			conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
			if err := frame.Write(conn, msgGrads, pb); err != nil {
				upErr <- err
				return
			}
		}
		upErr <- nil
	}()

	if contrib && nb > 1 {
		tr.SetSegmentHook(feed.hook)
	}
	st, elapsed, err := tr.ShardGrads(dataset.Split(a.Split), a.Indices, a.Iteration, a.GlobalN)
	if contrib && nb > 1 {
		tr.SetSegmentHook(nil)
	}
	if err != nil {
		feed.close()
		<-upErr
		// Local compute failure: tell the coordinator (so the round aborts
		// promptly instead of timing out) and stop.
		if eb, encErr := encodeJSON(errorMsg{Message: err.Error()}); encErr == nil {
			conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
			frame.Write(conn, msgError, eb)
		}
		return &permanentError{err}
	}
	stats = gradsMeta{Loss: st.Loss, Correct: st.Correct, N: st.N, ComputeSeconds: elapsed.Seconds()}
	feed.finish(contrib)
	if err := <-upErr; err != nil {
		return err
	}
	if !contrib {
		// Sat the round out: a single meta-only frame reports the (empty)
		// stats so the coordinator's gather completes.
		meta := gradsMeta{
			Round: a.Round, Attempt: a.Attempt, Rank: rank, Count: 0,
			Bucket: 0, NBucket: nb,
			ComputeSeconds: elapsed.Seconds(),
		}
		pb, err := encodeFlat(meta, nil, false)
		if err != nil {
			return &permanentError{err}
		}
		conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
		if err := frame.Write(conn, msgGrads, pb); err != nil {
			return err
		}
	}
	return nil
}

// decodeWorkerError turns a coordinator errorMsg into a worker-side error,
// permanent when the coordinator marked it so.
func decodeWorkerError(payload []byte) error {
	var em errorMsg
	if err := decodeJSON(payload, &em); err != nil {
		return err
	}
	err := fmt.Errorf("dist: coordinator: %s", em.Message)
	if em.Permanent {
		return &permanentError{err}
	}
	return err
}
