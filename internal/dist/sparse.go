package dist

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"skipper/internal/tensor"
)

// flatGrads is a flat float vector view over a gradient set in canonical
// parameter order — the data plane every collective (star, ring, bucketed
// overlap) moves. The view aliases the underlying tensors: copyIn/addIn
// mutate the network's gradients directly, copyOut snapshots them. Bucket
// boundaries are pure index arithmetic over the flat range, so every rank
// slices the identical buckets from the identical parameter order, and the
// per-element accumulation order inside a bucket is exactly the order
// core.ReduceGrads walks — which is what keeps the wire paths bit-identical
// to the in-process reduction.
type flatGrads struct {
	tensors []*tensor.Tensor
	offs    []int // offs[i] = flat start of tensor i; offs[len] = total
}

// newFlatGrads builds the view over named gradients in their given
// (canonical) order.
func newFlatGrads(grads []tensor.Named) *flatGrads {
	f := &flatGrads{offs: make([]int, len(grads)+1)}
	for i, g := range grads {
		f.tensors = append(f.tensors, g.T)
		f.offs[i+1] = f.offs[i] + g.T.Len()
	}
	return f
}

// size returns the total float count of the view.
func (f *flatGrads) size() int { return f.offs[len(f.offs)-1] }

// bucketRange returns the [lo, hi) flat range of bucket b of nb: a balanced
// contiguous split with the first size%nb buckets one element longer. Every
// rank computes the same ranges from the same (size, nb).
func (f *flatGrads) bucketRange(b, nb int) (int, int) {
	n := f.size()
	base, rem := n/nb, n%nb
	lo := b*base + min(b, rem)
	hi := lo + base
	if b < rem {
		hi++
	}
	return lo, hi
}

// forRange walks the tensor sub-slices covering flat range [lo, hi).
func (f *flatGrads) forRange(lo, hi int, fn func(data []float32, flat int)) {
	for i, t := range f.tensors {
		s, e := f.offs[i], f.offs[i+1]
		if e <= lo {
			continue
		}
		if s >= hi {
			break
		}
		cs, ce := max(s, lo), min(e, hi)
		fn(t.Data[cs-s:ce-s], cs)
	}
}

// copyOut snapshots flat range [lo, hi) into dst (len hi-lo).
func (f *flatGrads) copyOut(lo, hi int, dst []float32) {
	f.forRange(lo, hi, func(data []float32, flat int) {
		copy(dst[flat-lo:], data)
	})
}

// copyIn overwrites flat range [lo, hi) from src (len hi-lo).
func (f *flatGrads) copyIn(lo, hi int, src []float32) {
	f.forRange(lo, hi, func(data []float32, flat int) {
		copy(data, src[flat-lo:flat-lo+len(data)])
	})
}

// addIn accumulates src into flat range [lo, hi): data[i] += src[i], the
// same per-element fadd core.ReduceGrads' AXPY performs.
func (f *flatGrads) addIn(lo, hi int, src []float32) {
	f.forRange(lo, hi, func(data []float32, flat int) {
		s := src[flat-lo:]
		for i := range data {
			data[i] += s[i]
		}
	})
}

// paramSig fingerprints a parameter set's names, shapes, and order. Ranks
// compare signatures once at handshake instead of shipping per-round name
// tables; any mismatch is a permanent config error.
func paramSig(grads []tensor.Named) string {
	h := fnv.New64a()
	for _, g := range grads {
		fmt.Fprintf(h, "%s:%v;", g.Name, g.T.Shape())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Float codec: every gradient payload on the wire is one contiguous float
// range in one of two self-describing layouts.
//
//	dense:  u8 0 | u32 n | n × f32 (raw little-endian bits)
//	sparse: u8 1 | u32 n | bitmap ⌈n/8⌉ | u32 nnz | nnz × f32
//
// "Zero" is judged on the raw bit pattern (math.Float32bits(v) == 0), so
// −0.0, denormals, and NaNs all count as nonzero and round-trip exactly —
// the codec can never change a training result, only the byte count.
// encodeFloats picks whichever layout is smaller when sparse mode is
// allowed, so a dense gradient never pays more than 1 byte of overhead.
const (
	wireDense  byte = 0
	wireSparse byte = 1
)

// encodeFloats serializes vals, using the bitmap layout when allowed and
// smaller.
func encodeFloats(vals []float32, sparse bool) []byte {
	n := len(vals)
	nnz := 0
	if sparse {
		for _, v := range vals {
			if math.Float32bits(v) != 0 {
				nnz++
			}
		}
	}
	denseSize := 5 + 4*n
	sparseSize := 5 + (n+7)/8 + 4 + 4*nnz
	if !sparse || sparseSize >= denseSize {
		buf := make([]byte, 0, denseSize)
		buf = append(buf, wireDense)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
		for _, v := range vals {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		return buf
	}
	buf := make([]byte, 0, sparseSize)
	buf = append(buf, wireSparse)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	bitmap := make([]byte, (n+7)/8)
	for i, v := range vals {
		if math.Float32bits(v) != 0 {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	buf = append(buf, bitmap...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nnz))
	for _, v := range vals {
		if math.Float32bits(v) != 0 {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return buf
}

// decodeFloats parses either layout into dst, which must already have the
// expected length — the caller always knows its bucket size, so a length
// disagreement is a protocol error, not an allocation hint.
func decodeFloats(buf []byte, dst []float32) error {
	if len(buf) < 5 {
		return fmt.Errorf("dist: float payload %d bytes, want >= 5", len(buf))
	}
	mode := buf[0]
	n := int(binary.LittleEndian.Uint32(buf[1:]))
	if n != len(dst) {
		return fmt.Errorf("dist: float payload holds %d values, want %d", n, len(dst))
	}
	body := buf[5:]
	switch mode {
	case wireDense:
		if len(body) != 4*n {
			return fmt.Errorf("dist: dense payload %d bytes, want %d", len(body), 4*n)
		}
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
		}
		return nil
	case wireSparse:
		bm := (n + 7) / 8
		if len(body) < bm+4 {
			return fmt.Errorf("dist: sparse payload %d bytes, want >= %d", len(body), bm+4)
		}
		bitmap, rest := body[:bm], body[bm:]
		nnz := int(binary.LittleEndian.Uint32(rest))
		vals := rest[4:]
		if len(vals) != 4*nnz {
			return fmt.Errorf("dist: sparse payload holds %d value bytes, want %d", len(vals), 4*nnz)
		}
		k := 0
		for i := range dst {
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				if k >= nnz {
					return fmt.Errorf("dist: sparse bitmap population exceeds nnz %d", nnz)
				}
				dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(vals[4*k:]))
				k++
			} else {
				dst[i] = 0
			}
		}
		if k != nnz {
			return fmt.Errorf("dist: sparse bitmap population %d != nnz %d", k, nnz)
		}
		return nil
	default:
		return fmt.Errorf("dist: unknown float payload mode %d", mode)
	}
}
