package dist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/frame"
	"skipper/internal/trace"
)

// Ring topology: rank r dials rank (r+1) mod W's ring-data listener, so the
// ring carries two directed trips per round:
//
//	reduce trip   edges 0→1, 1→2, …, W−2→W−1: each rank adds its own
//	              contribution to the incoming partial sum. Accumulation
//	              happens in ascending rank order with empty shards skipped
//	              — exactly core.ReduceGrads' walk — so the result is
//	              bit-identical to the star topology and the serial baseline.
//	final trip    edges W−1→0, 0→1, …, W−3→W−2: the completed sum travels
//	              once more around, each rank installing it as it forwards.
//
// Chunks pipeline: a bucket is cut into fixed deterministic chunks so a
// rank forwards chunk k while chunk k+1 is still in flight behind it, and
// with overlap each bucket enters the ring as soon as its segment's
// backward finishes. Every rank's engine is a single sequential loop
// (all reduce chunks, then all final chunks), which makes the per-edge
// frame order deterministic and the ring deadlock-free: a rank's sends only
// wait on its successor's reads, and the successor's engine always reads
// the reduce trip before the final trip.

// ringChunks is the pipelining factor per bucket; tiny gradients stay whole.
func ringChunks(n int) int {
	if n >= 8192 {
		return 4
	}
	return 1
}

// acceptedRing is a ring-data connection whose opening hello has been read.
type acceptedRing struct {
	conn  net.Conn
	hello ringHelloMsg
}

// ringEnd is one rank's ring-data endpoint: a listener accepting the
// predecessor's connection and a dialed connection to the successor,
// rebuilt whenever the membership version changes (every join, vacancy, or
// abort bumps it, so chunks buffered in a poisoned connection can never
// leak into a new ring).
type ringEnd struct {
	ln        net.Listener
	dial      func(addr string) (net.Conn, error)
	ioTimeout time.Duration
	acceptCh  chan acceptedRing
	closeOnce sync.Once
	closed    chan struct{}

	version int // membership version the current conns serve; -1 = none
	succ    net.Conn
	pred    net.Conn
}

func newRingEnd(listen string, dial func(addr string) (net.Conn, error), ioTimeout time.Duration) (*ringEnd, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("dist: binding ring listener: %w", err)
	}
	e := &ringEnd{
		ln: ln, dial: dial, ioTimeout: ioTimeout,
		acceptCh: make(chan acceptedRing, 8),
		closed:   make(chan struct{}),
		version:  -1,
	}
	go e.acceptLoop()
	return e, nil
}

func (e *ringEnd) addr() string { return e.ln.Addr().String() }

func (e *ringEnd) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			conn.SetReadDeadline(time.Now().Add(e.ioTimeout))
			typ, payload, err := frame.Read(conn)
			if err != nil || typ != msgRingHello {
				conn.Close()
				return
			}
			var h ringHelloMsg
			if decodeJSON(payload, &h) != nil {
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			select {
			case e.acceptCh <- acceptedRing{conn: conn, hello: h}:
			case <-e.closed:
				conn.Close()
			}
		}(conn)
	}
}

// ensure (re)builds the rank's ring connections for membership version v:
// dial the successor, announce ourselves, and wait for the predecessor's
// matching hello. Connections from other versions are discarded.
func (e *ringEnd) ensure(v int, addrs []string, rank, world int) error {
	if e.version == v && e.succ != nil && e.pred != nil {
		return nil
	}
	e.reset()
	succAddr := addrs[(rank+1)%world]
	if succAddr == "" {
		return fmt.Errorf("dist: no ring address for rank %d", (rank+1)%world)
	}
	conn, err := e.dial(succAddr)
	if err != nil {
		return fmt.Errorf("dist: dialing ring successor %s: %w", succAddr, err)
	}
	hb, err := encodeJSON(ringHelloMsg{Version: v, From: rank})
	if err != nil {
		conn.Close()
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(e.ioTimeout))
	if err := frame.Write(conn, msgRingHello, hb); err != nil {
		conn.Close()
		return fmt.Errorf("dist: ring hello to successor: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})
	e.succ = conn
	pred := (rank - 1 + world) % world
	timeout := time.After(e.ioTimeout)
	for {
		select {
		case ac := <-e.acceptCh:
			if ac.hello.Version == v && ac.hello.From == pred {
				e.pred = ac.conn
				e.version = v
				return nil
			}
			ac.conn.Close() // stale epoch or unexpected peer
		case <-timeout:
			e.reset()
			return fmt.Errorf("dist: timed out waiting for ring predecessor %d (version %d)", pred, v)
		}
	}
}

// reset drops the current ring connections (they may hold half-sent chunks
// after an abort; the next ensure rebuilds under a fresh version).
func (e *ringEnd) reset() {
	if e.succ != nil {
		e.succ.Close()
		e.succ = nil
	}
	if e.pred != nil {
		e.pred.Close()
		e.pred = nil
	}
	e.version = -1
}

func (e *ringEnd) close() {
	e.closeOnce.Do(func() {
		close(e.closed)
		e.ln.Close()
		e.reset()
	})
}

// ringEngine runs one rank's two trips for one round attempt. It is fed the
// rank's own buckets through a bucketFeed and leaves the reduced gradient
// in staging; the caller installs it after local compute finishes (the
// engine runs concurrently with compute, so it must not touch the live
// gradient tensors).
type ringEngine struct {
	rank, world             int
	round, attempt, version int
	nb, chunks, n           int
	pred, succ              net.Conn
	contrib                 bool
	feed                    *bucketFeed
	sparse                  bool
	ioTimeout               time.Duration

	staging     []float32
	stagingHave bool
	sent        int64
	firstIO     time.Time
}

func (e *ringEngine) noteIO() {
	if e.firstIO.IsZero() {
		e.firstIO = time.Now()
	}
}

// read receives the expected chunk frame from the predecessor.
func (e *ringEngine) read(final bool, b, ci int) (ringChunkMeta, []byte, error) {
	e.pred.SetReadDeadline(time.Now().Add(e.ioTimeout))
	typ, payload, err := frame.Read(e.pred)
	if err != nil {
		return ringChunkMeta{}, nil, fmt.Errorf("dist: ring read from rank %d: %w", (e.rank-1+e.world)%e.world, err)
	}
	e.noteIO()
	if typ != msgRingData {
		return ringChunkMeta{}, nil, fmt.Errorf("dist: ring expected chunk, got message type %d", typ)
	}
	var meta ringChunkMeta
	fb, err := decodeFlat(payload, &meta)
	if err != nil {
		return ringChunkMeta{}, nil, err
	}
	want := ringChunkMeta{Round: e.round, Attempt: e.attempt, Version: e.version, Bucket: b, Chunk: ci, Final: final, Have: meta.Have}
	if meta != want {
		return ringChunkMeta{}, nil, fmt.Errorf("dist: ring chunk %+v, want %+v", meta, want)
	}
	return meta, fb, nil
}

// write sends one chunk frame to the successor; vals nil means a no-payload
// frame (Have=false).
func (e *ringEngine) write(final bool, b, ci int, vals []float32) error {
	meta := ringChunkMeta{
		Round: e.round, Attempt: e.attempt, Version: e.version,
		Bucket: b, Chunk: ci, Final: final, Have: vals != nil,
	}
	pb, err := encodeFlat(meta, vals, e.sparse)
	if err != nil {
		return err
	}
	e.succ.SetWriteDeadline(time.Now().Add(e.ioTimeout))
	if err := frame.Write(e.succ, msgRingData, pb); err != nil {
		return fmt.Errorf("dist: ring write to rank %d: %w", (e.rank+1)%e.world, err)
	}
	e.noteIO()
	e.sent += int64(len(pb))
	return nil
}

func (e *ringEngine) run() error {
	last := e.world - 1
	e.staging = make([]float32, e.n)
	recv := make([]float32, e.n)
	var keep [][]float32 // rank W−1 retains reduced buckets for the final trip
	var keepHave []bool
	if e.rank == last {
		keep = make([][]float32, e.nb)
		keepHave = make([]bool, e.nb)
	}

	// Reduce trip. Rank 0 only sends, rank W−1 only receives; everyone else
	// adds-and-forwards. The rank's own bucket arrives through the feed as
	// its segment's backward finishes, so chunks enter the ring while later
	// segments still recompute.
	for b := 0; b < e.nb; b++ {
		var own []float32
		if e.contrib {
			ob, ok := <-e.feed.ch
			if !ok {
				return fmt.Errorf("dist: gradient feed closed before bucket %d", b)
			}
			own = ob.vals
		}
		if e.rank == last {
			keep[b] = make([]float32, e.n)
		}
		for ci := 0; ci < e.chunks; ci++ {
			lo, hi := chunkRange(e.n, e.chunks, ci)
			var vals []float32
			if e.rank > 0 {
				meta, fb, err := e.read(false, b, ci)
				if err != nil {
					return err
				}
				if meta.Have {
					vals = recv[:hi-lo]
					if err := decodeFloats(fb, vals); err != nil {
						return err
					}
				}
			}
			if e.contrib {
				if vals != nil {
					// Incoming partial (ranks < r) + own contribution: the
					// same fadd core.ReduceGrads performs, in the same
					// ascending-rank association.
					o := own[lo:hi]
					for i := range vals {
						vals[i] += o[i]
					}
				} else {
					vals = own[lo:hi]
				}
			}
			if e.rank < last {
				if err := e.write(false, b, ci, vals); err != nil {
					return err
				}
			} else if vals != nil {
				copy(keep[b][lo:hi], vals)
				keepHave[b] = true
			}
		}
	}

	// Final trip: the completed sum starts at rank W−1 and travels the
	// remaining edges; rank W−2 is the last stop and does not forward.
	for b := 0; b < e.nb; b++ {
		bucketHave := false
		for ci := 0; ci < e.chunks; ci++ {
			lo, hi := chunkRange(e.n, e.chunks, ci)
			var vals []float32
			if e.rank == last {
				if keepHave[b] {
					vals = keep[b][lo:hi]
				}
			} else {
				meta, fb, err := e.read(true, b, ci)
				if err != nil {
					return err
				}
				if meta.Have {
					vals = recv[:hi-lo]
					if err := decodeFloats(fb, vals); err != nil {
						return err
					}
				}
			}
			if vals != nil {
				bucketHave = true
				if !e.stagingHave {
					copy(e.staging[lo:hi], vals)
				} else {
					s := e.staging[lo:hi]
					for i, v := range vals {
						s[i] += v
					}
				}
			}
			if e.rank != last-1 {
				if err := e.write(true, b, ci, vals); err != nil {
					return err
				}
			}
		}
		if bucketHave {
			e.stagingHave = true
		}
	}
	return nil
}

// chunkRange returns chunk i of k over [0, n): the same balanced contiguous
// split as flatGrads.bucketRange, computed identically on every rank.
func chunkRange(n, k, i int) (int, int) {
	base, rem := n/k, n%k
	lo := i*base + min(i, rem)
	hi := lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// ringCollective is the coordinator's ring driver: rank 0's engine runs in
// the shared ring while per-rank control-connection readers collect each
// worker's stats message (the signal that the rank holds the reduced
// gradient and is ready to commit).
type ringCollective struct {
	c   *Coordinator
	end *ringEnd
}

func newRingCollective(c *Coordinator) (*ringCollective, error) {
	end, err := newRingEnd(c.cfg.Options.RingListen, func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, c.cfg.RoundTimeout)
	}, c.cfg.RoundTimeout)
	if err != nil {
		return nil, err
	}
	c.ringAddrs[0] = end.addr()
	return &ringCollective{c: c, end: end}, nil
}

func (g *ringCollective) Name() string { return TopologyRing }

func (g *ringCollective) Shard(indices []int) [][]int {
	return core.Shard(indices, g.c.cfg.World)
}

func (g *ringCollective) Abort() { g.end.reset() }
func (g *ringCollective) Close() { g.end.close() }

func (g *ringCollective) Exchange(r *round) error {
	c := g.c
	W := c.cfg.World
	n := c.flat.size()
	if err := g.end.ensure(c.ringVersion, c.ringAddrs, 0, W); err != nil {
		return &rankFaultError{rank: -1, phase: "ring build", err: err}
	}

	contrib := len(r.shards[0]) > 0
	feed := newBucketFeed(c.flat, r.nb)
	eng := &ringEngine{
		rank: 0, world: W,
		round: r.num, attempt: r.attempt, version: c.ringVersion,
		nb: r.nb, chunks: ringChunks(n), n: n,
		pred: g.end.pred, succ: g.end.succ,
		contrib: contrib, feed: feed,
		sparse:    c.cfg.Options.sparseWire(),
		ioTimeout: c.cfg.RoundTimeout,
	}
	engCh := make(chan error, 1)
	go func() { engCh <- eng.run() }()

	stats := make([]statsMsg, W)
	arrive := make([]time.Time, W)
	errs := make([]error, W)
	var wg sync.WaitGroup
	for rank := 1; rank < W; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			stats[rank], arrive[rank], errs[rank] = g.readStats(r, rank)
		}(rank)
	}

	if r.nb > 1 {
		c.tr.SetSegmentHook(feed.hook)
	}
	st0, elapsed0, err := c.tr.ShardGrads(r.split, r.shards[0], r.iter, len(r.indices))
	if r.nb > 1 {
		c.tr.SetSegmentHook(nil)
	}
	r.computeDone = time.Now()
	if err != nil {
		feed.close()
		<-engCh
		wg.Wait()
		return err
	}
	r.out.StepStats.Add(st0)
	r.out.SlowestReplica = elapsed0
	feed.finish(contrib)

	engErr := <-engCh
	if !eng.firstIO.IsZero() {
		r.note(eng.firstIO)
	}
	if t := feed.firstFlush(); !t.IsZero() {
		r.note(t)
	}
	if engErr != nil {
		wg.Wait() // readers drain or time out; the round is aborting anyway
		return &rankFaultError{rank: -1, phase: "ring exchange", err: engErr}
	}
	wg.Wait()
	for rank := 1; rank < W; rank++ {
		if errs[rank] != nil {
			return errs[rank]
		}
	}

	// Rank 0's distribution-trip result becomes the committed gradient.
	c.flat.copyIn(0, n, eng.staging)
	r.wireBytes += eng.sent
	for rank := 1; rank < W; rank++ {
		s := stats[rank]
		r.wireBytes += s.WireBytes
		r.out.StepStats.Add(core.StepStats{Loss: s.Loss, Correct: s.Correct, N: s.N})
		if d := time.Duration(s.ComputeSeconds * float64(time.Second)); d > r.out.SlowestReplica {
			r.out.SlowestReplica = d
		}
		if c.cfg.Straggler > 0 && arrive[rank].After(r.computeDone.Add(c.cfg.Straggler)) {
			c.cfg.Metrics.observeStraggler()
			c.cfg.Tracer.Event(trace.TrackDist, "straggler",
				trace.Attr{Key: "rank", Val: int64(rank)},
				trace.Attr{Key: "round", Val: int64(r.num)})
		}
	}
	return nil
}

// readStats collects rank's post-exchange stats message from the control
// connection, draining stale frames from aborted attempts of this round.
func (g *ringCollective) readStats(r *round, rank int) (statsMsg, time.Time, error) {
	c := g.c
	conn := c.conns[rank]
	fault := func(err error) (statsMsg, time.Time, error) {
		return statsMsg{}, time.Time{}, &rankFaultError{rank: rank, phase: "ring stats", err: err}
	}
	for {
		conn.SetReadDeadline(time.Now().Add(c.cfg.RoundTimeout))
		typ, payload, err := frame.Read(conn)
		now := time.Now()
		if err != nil {
			return fault(err)
		}
		switch typ {
		case msgStats:
		case msgError:
			return fault(decodeWorkerError(payload))
		default:
			return fault(fmt.Errorf("expected stats, got message type %d", typ))
		}
		var s statsMsg
		if err := decodeJSON(payload, &s); err != nil {
			return fault(err)
		}
		if s.Round == r.num && s.Attempt < r.attempt {
			continue // stale stats from an aborted attempt
		}
		if s.Round != r.num || s.Attempt != r.attempt || s.Rank != rank {
			return fault(fmt.Errorf("stats for round %d attempt %d rank %d, want %d/%d/%d",
				s.Round, s.Attempt, s.Rank, r.num, r.attempt, rank))
		}
		if s.Count != len(r.shards[rank]) {
			return fault(fmt.Errorf("stats cover %d samples, want %d", s.Count, len(r.shards[rank])))
		}
		return s, now, nil
	}
}

// Commit is metadata-only for the ring: every rank already installed the
// reduced gradient during the distribution trip. Unreachable ranks are
// vacated, not failed — the survivors must step.
func (g *ringCollective) Commit(r *round) error {
	c := g.c
	cb, err := encodeJSON(commitMsg{Round: r.num})
	if err != nil {
		return err
	}
	for rank := 1; rank < c.cfg.World; rank++ {
		conn := c.conns[rank]
		if conn == nil {
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(c.cfg.RoundTimeout))
		if err := frame.Write(conn, msgCommit, cb); err != nil {
			c.vacate(rank, "commit")
			continue
		}
		r.wireBytes += int64(len(cb))
	}
	return nil
}

// workerRingRound runs one ring round on a worker: ensure the ring is built
// for the announced membership version, run the engine concurrently with
// the local shard compute, install the reduced gradient, and report stats
// on the control connection. Ring I/O failures poison the connections, so
// the worker reports the fault and restarts its session (resyncing from the
// coordinator's manifest on rejoin).
func workerRingRound(tr *core.Trainer, conn net.Conn, a assignMsg, rank, world int, ws *workerState, cfg WorkerConfig) error {
	reportErr := func(err error) {
		if eb, encErr := encodeJSON(errorMsg{Message: err.Error()}); encErr == nil {
			conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
			frame.Write(conn, msgError, eb)
		}
	}
	if ws.ringVersion != a.RingVersion || len(ws.ringAddrs) != world {
		err := fmt.Errorf("dist: round %d needs ring version %d, worker has %d", a.Round, a.RingVersion, ws.ringVersion)
		reportErr(err)
		return err
	}
	if err := ws.ring.ensure(a.RingVersion, ws.ringAddrs, rank, world); err != nil {
		reportErr(err)
		return err
	}

	n := ws.flat.size()
	nb := a.NBuckets
	if nb <= 0 {
		nb = 1
	}
	contrib := len(a.Indices) > 0
	feed := newBucketFeed(ws.flat, nb)
	eng := &ringEngine{
		rank: rank, world: world,
		round: a.Round, attempt: a.Attempt, version: a.RingVersion,
		nb: nb, chunks: ringChunks(n), n: n,
		pred: ws.ring.pred, succ: ws.ring.succ,
		contrib: contrib, feed: feed,
		sparse:    cfg.Options.sparseWire(),
		ioTimeout: cfg.IOTimeout,
	}
	engCh := make(chan error, 1)
	go func() { engCh <- eng.run() }()

	if contrib && nb > 1 {
		tr.SetSegmentHook(feed.hook)
	}
	st, elapsed, err := tr.ShardGrads(dataset.Split(a.Split), a.Indices, a.Iteration, a.GlobalN)
	if contrib && nb > 1 {
		tr.SetSegmentHook(nil)
	}
	if err != nil {
		feed.close()
		<-engCh
		ws.ring.reset()
		reportErr(err)
		return &permanentError{err}
	}
	feed.finish(contrib)
	if engErr := <-engCh; engErr != nil {
		ws.ring.reset()
		reportErr(engErr)
		return fmt.Errorf("dist: ring exchange: %w", engErr)
	}
	ws.flat.copyIn(0, n, eng.staging)

	sb, err := encodeJSON(statsMsg{
		Round: a.Round, Attempt: a.Attempt, Rank: rank, Count: len(a.Indices),
		Loss: st.Loss, Correct: st.Correct, N: st.N,
		ComputeSeconds: elapsed.Seconds(), WireBytes: eng.sent,
	})
	if err != nil {
		return &permanentError{err}
	}
	conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
	return frame.Write(conn, msgStats, sb)
}
