// Package dist runs synchronous data-parallel SNN training across OS
// processes: a coordinator (doubling as rank 0) shards each global batch
// over TCP-connected workers, gathers their gradients, reduces them in
// deterministic ascending rank order (core.ReduceGrads), and broadcasts the
// reduced gradient so every rank applies the identical optimizer step.
//
// The wire result is bit-identical to the in-process core.DataParallel
// simulation on the same shards, because both drive the exact same
// ShardGrads/ReduceGrads/ApplyReduced sequence — the network only moves
// bytes, it never re-rounds a float. Against plain serial training the match
// is exact-mean always, and bitwise when every shard holds at most one
// sample and the serial run accumulates per-sample (MicroBatch 1); see
// core.ShardGrads.
//
// Failure semantics: gradient-phase faults (a worker dying mid-upload, a
// dispatch failing) abort the round before anyone steps — survivors discard
// it, the dead rank's seat is refilled by a reconnecting worker resynced
// from a runstate manifest, and the round replays deterministically.
// Broadcast-phase faults commit the round (the coordinator has already
// reduced): only the unreachable rank is vacated and later resynced.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	frameMagic = "SKPF"
	// maxFramePayload caps any length header read off the wire before it
	// sizes an allocation — the same hostile-header rule serialize enforces.
	maxFramePayload = 1 << 28
)

// Message types. The coordinator speaks Welcome/State/Assign/Reduced/Abort/
// Done, workers speak Hello/Grads, both may speak Error.
const (
	msgHello byte = iota + 1
	msgWelcome
	msgState
	msgAssign
	msgGrads
	msgReduced
	msgAbort
	msgDone
	msgError
)

// ErrBadFrame reports a malformed envelope: wrong magic, an implausible
// length, or a checksum mismatch. It is permanent — the stream cannot be
// re-synchronized after it.
var ErrBadFrame = errors.New("dist: bad frame")

// WriteFrame exposes the CRC-framed envelope to other subsystems — the
// serving fleet's router↔replica data path (internal/router, internal/serve)
// reuses it so both wire protocols share one hardened codec. Callers own
// their type-byte namespace; the envelope does not interpret typ.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	return writeFrame(w, typ, payload)
}

// ReadFrame is the exported counterpart of WriteFrame. A returned ErrBadFrame
// is permanent: the stream cannot be re-synchronized after it.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	return readFrame(r)
}

// writeFrame sends one message as
//
//	magic "SKPF" | type u8 | payload len u32 | payload | crc32 (IEEE)
//
// with the checksum covering everything before it. The frame is assembled
// in one buffer and written with a single Write so byte-budget fault
// injection cuts it at deterministic offsets.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("%w: payload %d exceeds %d", ErrBadFrame, len(payload), maxFramePayload)
	}
	buf := make([]byte, 0, len(frameMagic)+5+len(payload)+4)
	buf = append(buf, frameMagic...)
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("dist: writing frame: %w", err)
	}
	return nil
}

// readFrame reads and verifies one message envelope.
func readFrame(r io.Reader) (byte, []byte, error) {
	head := make([]byte, len(frameMagic)+5)
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, nil, fmt.Errorf("dist: reading frame header: %w", err)
	}
	if string(head[:len(frameMagic)]) != frameMagic {
		return 0, nil, fmt.Errorf("%w: magic %q", ErrBadFrame, head[:len(frameMagic)])
	}
	typ := head[len(frameMagic)]
	n := binary.LittleEndian.Uint32(head[len(frameMagic)+1:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: payload length %d", ErrBadFrame, n)
	}
	rest := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return 0, nil, fmt.Errorf("dist: reading frame payload: %w", err)
	}
	payload, tail := rest[:n], rest[n:]
	sum := crc32.ChecksumIEEE(head)
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if sum != binary.LittleEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	return typ, payload, nil
}
