// Package dist runs synchronous data-parallel SNN training across OS
// processes. A coordinator (doubling as rank 0) shards each global batch
// over TCP-connected workers; the per-round gradient reduction is pluggable
// behind the Collective interface, with two topologies:
//
//   - star (TopologyStar, the default): workers upload gradients to the
//     coordinator, which reduces them in deterministic ascending rank order
//     (core.ReduceGrads' order) and broadcasts the result.
//   - ring (TopologyRing): ranks forward gradient chunks around a ring —
//     each worker dials its ring successor directly over the framed
//     transport — in a pipelined reduce trip (rank 0 → W−1, accumulating in
//     ascending rank order) followed by a distribution trip, so every link
//     carries ~2/W of the traffic the star's coordinator link carries.
//
// Both topologies accumulate in the same ascending rank order, so the wire
// result is bit-identical to the in-process core.DataParallel simulation on
// the same shards — the network only moves bytes, it never re-rounds a
// float. Against plain serial training the match is exact-mean always, and
// bitwise when every shard holds at most one sample and the serial run
// accumulates per-sample (MicroBatch 1); see core.ShardGrads.
//
// With Overlap enabled the exchange is bucketed: as each checkpoint
// segment's backward finishes, that segment's gradient delta is flushed into
// the in-flight exchange while the next segment is still recomputing. Bucket
// order is deterministic (backward segment order on every rank), so overlap
// runs are reproducible, but the regrouped summation rounds differently
// than the serial order — overlap is therefore off by default, keeping the
// default mode bit-identical. Compress (delta wire mode) encodes near-zero
// gradient payloads as bitmap+values frames with exact bit roundtrip, so it
// never affects results, only bytes.
//
// Failure semantics: gradient-phase faults (a worker dying mid-upload, a
// ring link dropping, a dispatch failing) abort the round before anyone
// steps — survivors discard it, the dead rank's seat is refilled by a
// reconnecting worker resynced from a runstate manifest, and the round
// replays deterministically (ring connections are rebuilt under a bumped
// ring version). Commit-phase faults (star broadcast, ring commit notify)
// commit the round: only the unreachable rank is vacated and later
// resynced.
package dist

// Message types on the coordinator↔worker control connection. The
// coordinator speaks Welcome/State/Ring/Assign/Reduced/Commit/Abort/Done,
// workers speak Hello/Grads/Stats, both may speak Error. Ring data
// connections speak RingHello/RingData only.
const (
	msgHello byte = iota + 1
	msgWelcome
	msgState
	msgAssign
	msgGrads
	msgReduced
	msgAbort
	msgDone
	msgError
	msgRing
	msgStats
	msgCommit
	msgRingHello
	msgRingData
)
