package dist

import (
	"fmt"
	"io"
	"net/http"
	"sync"

	"skipper/internal/stats"
)

// Metrics is the dist subsystem's metrics registry, rendered in Prometheus
// text exposition format (mounted on the -debug-addr mux as /metrics). All
// mutators are safe for concurrent use. A nil *Metrics is valid and drops
// every observation, mirroring the repo's nil-tracer convention.
type Metrics struct {
	mu sync.Mutex

	world        int
	connected    int
	rounds       int64
	aborts       int64
	stragglers   int64
	reduceBytes  int64            // gradient payload bytes moved (uploads + broadcasts)
	overlapFrac  float64          // last committed round's exchange overlap fraction
	roundLatency *stats.Histogram // committed-round wall seconds
}

// NewMetrics returns a registry for a world-size-w run.
func NewMetrics(w int) *Metrics {
	return &Metrics{
		world: w,
		// 0.1ms .. ~1700s
		roundLatency: stats.NewHistogram(stats.ExponentialBounds(0.0001, 2, 24)...),
	}
}

func (m *Metrics) setConnected(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.connected = n
}

func (m *Metrics) observeRound(seconds float64, reduceBytes int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rounds++
	m.reduceBytes += reduceBytes
	m.roundLatency.Observe(seconds)
}

func (m *Metrics) setOverlap(frac float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.overlapFrac = frac
}

func (m *Metrics) observeAbort() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.aborts++
}

func (m *Metrics) observeStraggler() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stragglers++
}

// ReduceBytes reports the cumulative gradient payload bytes exchanged.
func (m *Metrics) ReduceBytes() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reduceBytes
}

// Render writes the registry in Prometheus text exposition format.
func (m *Metrics) Render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	distGauge(w, "skipper_dist_world_size", "Total rank count, coordinator included.", float64(m.world))
	distGauge(w, "skipper_dist_workers_connected", "Worker ranks currently connected.", float64(m.connected))
	distCounter(w, "skipper_dist_rounds_total", "Training rounds committed.", m.rounds)
	distCounter(w, "skipper_dist_aborts_total", "Rounds aborted and replayed after a rank fault.", m.aborts)
	distCounter(w, "skipper_dist_stragglers_total", "Gather reads that exceeded the straggler threshold.", m.stragglers)
	distCounter(w, "skipper_dist_reduce_bytes_total", "Gradient payload bytes moved (worker uploads plus reduced broadcasts).", m.reduceBytes)
	distGauge(w, "skipper_dist_overlap_frac", "Fraction of the last round's exchange hidden under backward compute.", m.overlapFrac)
	distHist(w, "skipper_dist_round_latency_seconds", "Wall time per committed round.", m.roundLatency)
}

// Handler serves Render over HTTP.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.Render(w)
	})
}

func distCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func distGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func distHist(w io.Writer, name, help string, h *stats.Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := h.Cumulative()
	for i, b := range h.Bounds() {
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.N())
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.N())
}
