package dist

import (
	"errors"
	"fmt"
	"net"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/runstate"
	"skipper/internal/tensor"
	"skipper/internal/trace"
)

// Config parameterizes a Coordinator.
type Config struct {
	// World is the total rank count including the coordinator (rank 0), so
	// World-1 workers must join. Must be at least 2.
	World int
	// RoundTimeout bounds each per-connection I/O phase inside a round
	// (dispatch write, gather read, broadcast write). Default 30s.
	RoundTimeout time.Duration
	// JoinTimeout bounds how long a round waits for vacant ranks to (re)fill
	// before giving up. Default 60s.
	JoinTimeout time.Duration
	// Straggler, when > 0, flags any gather read that blocks longer than
	// this (the worker was still computing or its link is slow); flagged
	// reads bump skipper_dist_stragglers_total and emit a trace event but do
	// not fail the round.
	Straggler time.Duration
	// MaxReplays bounds how many times a round is replayed after rank
	// faults before the coordinator gives up. Default 3.
	MaxReplays int

	Tracer  *trace.Tracer
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 30 * time.Second
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 60 * time.Second
	}
	if c.MaxReplays <= 0 {
		c.MaxReplays = 3
	}
	return c
}

// Coordinator drives synchronous data-parallel training as rank 0 of a
// World-rank run. It is not safe for concurrent use except for Admit/Serve,
// which only feed the join queue.
type Coordinator struct {
	tr  *core.Trainer
	cfg Config

	joinCh chan net.Conn
	conns  []net.Conn // index = rank; [0] stays nil (the coordinator itself)

	round    int
	lastIter int
	epoch    int
}

// NewCoordinator wraps tr (which becomes rank 0) in a coordinator for
// cfg.World ranks.
//
// The divergence guard's rollback is a single-process mechanism, so a
// scheduled-LR run relies on every rank applying BeginEpoch identically;
// guard-driven mid-epoch LR rescaling is not replicated and must stay off
// (Guard disabled) in distributed runs.
func NewCoordinator(tr *core.Trainer, cfg Config) (*Coordinator, error) {
	if cfg.World < 2 {
		return nil, fmt.Errorf("dist: world size %d needs at least 2 ranks", cfg.World)
	}
	cfg = cfg.withDefaults()
	return &Coordinator{
		tr:       tr,
		cfg:      cfg,
		joinCh:   make(chan net.Conn, cfg.World*2),
		conns:    make([]net.Conn, cfg.World),
		lastIter: tr.Iteration0(),
	}, nil
}

// Admit queues a connection for the next rank-filling pause. Tests feed
// net.Pipe ends here directly; Serve feeds accepted TCP connections.
func (c *Coordinator) Admit(conn net.Conn) {
	c.joinCh <- conn
}

// Serve accepts connections from ln and admits them until ln closes.
func (c *Coordinator) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c.Admit(conn)
	}
}

func (c *Coordinator) connected() int {
	n := 0
	for r := 1; r < c.cfg.World; r++ {
		if c.conns[r] != nil {
			n++
		}
	}
	return n
}

func (c *Coordinator) vacancies() int {
	return c.cfg.World - 1 - c.connected()
}

// vacate drops rank r's connection.
func (c *Coordinator) vacate(r int, why string) {
	if c.conns[r] == nil {
		return
	}
	c.conns[r].Close()
	c.conns[r] = nil
	c.cfg.Metrics.setConnected(c.connected())
	c.cfg.Tracer.Event(trace.TrackDist, "rank_vacated:"+why,
		trace.Attr{Key: "rank", Val: int64(r)})
}

// handshake validates a joining worker and seats it at the lowest vacant
// rank, sending welcome + a runstate manifest so the worker resyncs to the
// coordinator's exact current weights, optimizer state, and buffers.
func (c *Coordinator) handshake(conn net.Conn) error {
	deadline := time.Now().Add(c.cfg.RoundTimeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != msgHello {
		return fmt.Errorf("dist: expected hello, got message type %d", typ)
	}
	var hello helloMsg
	if err := decodeJSON(payload, &hello); err != nil {
		return err
	}
	if err := c.validateHello(hello); err != nil {
		// Tell the worker not to retry: its configuration can never match.
		if eb, encErr := encodeJSON(errorMsg{Message: err.Error(), Permanent: true}); encErr == nil {
			writeFrame(conn, msgError, eb)
		}
		return err
	}
	rank := -1
	for r := 1; r < c.cfg.World; r++ {
		if c.conns[r] == nil {
			rank = r
			break
		}
	}
	if rank == -1 {
		if eb, encErr := encodeJSON(errorMsg{Message: "world is full", Permanent: true}); encErr == nil {
			writeFrame(conn, msgError, eb)
		}
		return fmt.Errorf("dist: world is full")
	}
	wb, err := encodeJSON(welcomeMsg{Rank: rank, World: c.cfg.World, Round: c.round})
	if err != nil {
		return err
	}
	if err := writeFrame(conn, msgWelcome, wb); err != nil {
		return err
	}
	// NextEpoch in the cursor is the epoch the next assign will name;
	// Restore rewinds the worker to just before it, and BeginEpoch on the
	// first assign advances it with the scheduled LR applied.
	m, err := runstate.Capture(c.tr, core.Cursor{NextEpoch: c.epoch, Iteration: c.lastIter}, core.EpochStats{})
	if err != nil {
		return fmt.Errorf("dist: capturing resync manifest: %w", err)
	}
	m.Meta.Dist = &runstate.DistMeta{World: c.cfg.World, Rank: rank, Round: c.round}
	mb, err := m.Encode()
	if err != nil {
		return fmt.Errorf("dist: encoding resync manifest: %w", err)
	}
	if err := writeFrame(conn, msgState, mb); err != nil {
		return err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return err
	}
	c.conns[rank] = conn
	c.cfg.Tracer.Event(trace.TrackDist, "rank_joined",
		trace.Attr{Key: "rank", Val: int64(rank)}, trace.Attr{Key: "round", Val: int64(c.round)})
	return nil
}

// validateHello rejects any worker whose configuration would break the
// lock-step invariant: same strategy, optimizer, seed, horizon, and LR/clip
// or the ranks compute diverging steps.
func (c *Coordinator) validateHello(h helloMsg) error {
	switch {
	case h.Proto != protoVersion:
		return fmt.Errorf("dist: protocol %d != %d", h.Proto, protoVersion)
	case h.Strategy != c.tr.Strat.Name():
		return fmt.Errorf("dist: strategy %q != %q", h.Strategy, c.tr.Strat.Name())
	case h.Optimizer != c.tr.Opt.Name():
		return fmt.Errorf("dist: optimizer %q != %q", h.Optimizer, c.tr.Opt.Name())
	case h.Seed != c.tr.Cfg.Seed:
		return fmt.Errorf("dist: seed %d != %d", h.Seed, c.tr.Cfg.Seed)
	case h.T != c.tr.Cfg.T:
		return fmt.Errorf("dist: horizon T %d != %d", h.T, c.tr.Cfg.T)
	case h.LR != float64(c.tr.Cfg.LR):
		return fmt.Errorf("dist: learning rate %g != %g", h.LR, c.tr.Cfg.LR)
	case h.GradClip != float64(c.tr.Cfg.GradClip):
		return fmt.Errorf("dist: grad clip %g != %g", h.GradClip, c.tr.Cfg.GradClip)
	}
	return nil
}

// fillRanks blocks until every rank is seated, admitting queued and newly
// arriving connections, or fails after JoinTimeout.
func (c *Coordinator) fillRanks() error {
	deadline := time.Now().Add(c.cfg.JoinTimeout)
	for c.vacancies() > 0 {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("dist: timed out waiting for %d worker(s) to join", c.vacancies())
		}
		select {
		case conn := <-c.joinCh:
			if err := c.handshake(conn); err != nil {
				conn.Close()
				c.cfg.Tracer.Event(trace.TrackDist, "join_rejected:"+err.Error())
				continue
			}
			c.cfg.Metrics.setConnected(c.connected())
		case <-time.After(remaining):
			return fmt.Errorf("dist: timed out waiting for %d worker(s) to join", c.vacancies())
		}
	}
	return nil
}

// rankFaultError marks a failure attributable to one worker rank, which the
// round-replay loop recovers from by vacating that rank and replaying.
type rankFaultError struct {
	rank  int
	phase string
	err   error
}

func (e *rankFaultError) Error() string {
	return fmt.Sprintf("dist: rank %d failed during %s: %v", e.rank, e.phase, e.err)
}

func (e *rankFaultError) Unwrap() error { return e.err }

// TrainRound runs one synchronous data-parallel step over the global batch,
// replaying (with reconnected workers resynced from a manifest) after rank
// faults up to MaxReplays times. Replays are deterministic: the iteration
// number is fixed before the first attempt, so every attempt computes
// bit-identical gradients.
func (c *Coordinator) TrainRound(split dataset.Split, indices []int) (core.DPStepStats, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxReplays; attempt++ {
		if err := c.fillRanks(); err != nil {
			return core.DPStepStats{}, err
		}
		st, err := c.tryRound(split, indices, attempt)
		if err == nil {
			c.round++
			c.lastIter++
			return st, nil
		}
		lastErr = err
		var rf *rankFaultError
		if !errors.As(err, &rf) {
			return core.DPStepStats{}, err
		}
		c.abortRound(rf)
		c.cfg.Metrics.observeAbort()
	}
	return core.DPStepStats{}, fmt.Errorf("dist: round %d failed after %d replays: %w", c.round, c.cfg.MaxReplays, lastErr)
}

// abortRound tells surviving ranks to discard the in-flight round and
// vacates the faulted rank.
func (c *Coordinator) abortRound(rf *rankFaultError) {
	c.vacate(rf.rank, rf.phase)
	ab, err := encodeJSON(abortMsg{Round: c.round, Reason: rf.Error()})
	if err != nil {
		return
	}
	for r := 1; r < c.cfg.World; r++ {
		conn := c.conns[r]
		if conn == nil {
			continue
		}
		conn.SetDeadline(time.Now().Add(c.cfg.RoundTimeout))
		if werr := writeFrame(conn, msgAbort, ab); werr != nil {
			c.vacate(r, "abort notify")
		}
	}
	c.cfg.Tracer.Event(trace.TrackDist, "round_aborted:"+rf.phase,
		trace.Attr{Key: "round", Val: int64(c.round)},
		trace.Attr{Key: "rank", Val: int64(rf.rank)})
}

// tryRound executes one attempt of the current round: dispatch shards,
// compute rank 0's shard locally, gather worker gradients in rank order,
// reduce, broadcast, and step.
func (c *Coordinator) tryRound(split dataset.Split, indices []int, attempt int) (core.DPStepStats, error) {
	var out core.DPStepStats
	roundStart := time.Now()
	iter := c.lastIter + 1
	shards := core.Shard(indices, c.cfg.World)
	var wireBytes int64

	// Dispatch worker shards first so they compute in parallel with rank 0.
	dispatchStart := time.Now()
	for r := 1; r < c.cfg.World; r++ {
		ab, err := encodeJSON(assignMsg{
			Round: c.round, Attempt: attempt, Epoch: c.epoch, Iteration: iter,
			GlobalN: len(indices), Split: int(split), Indices: shards[r],
		})
		if err != nil {
			return out, err
		}
		conn := c.conns[r]
		conn.SetDeadline(time.Now().Add(c.cfg.RoundTimeout))
		if err := writeFrame(conn, msgAssign, ab); err != nil {
			return out, &rankFaultError{rank: r, phase: "dispatch", err: err}
		}
	}
	c.cfg.Tracer.SpanAt(trace.TrackDist, "shard_dispatch", dispatchStart, time.Since(dispatchStart),
		trace.Attr{Key: "round", Val: int64(c.round)})

	st0, elapsed0, err := c.tr.ShardGrads(split, shards[0], iter, len(indices))
	if err != nil {
		return out, err
	}
	out.StepStats.Add(st0)
	out.SlowestReplica = elapsed0

	// Gather in ascending rank order; the read wait for a rank still
	// computing is what the straggler threshold measures.
	gatherStart := time.Now()
	rank0 := c.tr.GradTensors()
	sets := make([][]*tensor.Tensor, c.cfg.World)
	counts := make([]int, c.cfg.World)
	sets[0] = make([]*tensor.Tensor, len(rank0))
	for j, nt := range rank0 {
		sets[0][j] = nt.T
	}
	for r := 0; r < c.cfg.World; r++ {
		counts[r] = len(shards[r])
	}
	for r := 1; r < c.cfg.World; r++ {
		ts, meta, readDur, err := c.gatherRank(r, attempt, len(shards[r]), rank0)
		if err != nil {
			return out, err
		}
		if c.cfg.Straggler > 0 && readDur > c.cfg.Straggler {
			c.cfg.Metrics.observeStraggler()
			c.cfg.Tracer.Event(trace.TrackDist, "straggler",
				trace.Attr{Key: "rank", Val: int64(r)},
				trace.Attr{Key: "wait_ms", Val: readDur.Milliseconds()})
		}
		out.StepStats.Add(core.StepStats{Loss: meta.Loss, Correct: meta.Correct, N: meta.N})
		if d := time.Duration(meta.ComputeSeconds * float64(time.Second)); d > out.SlowestReplica {
			out.SlowestReplica = d
		}
		wireBytes += tensorsWireBytes(ts)
		sets[r] = make([]*tensor.Tensor, len(ts))
		for j, nt := range ts {
			sets[r][j] = nt.T
		}
	}
	c.cfg.Tracer.SpanAt(trace.TrackDist, "grad_gather", gatherStart, time.Since(gatherStart),
		trace.Attr{Key: "round", Val: int64(c.round)})

	reduceStart := time.Now()
	if _, err := core.ReduceGrads(sets, counts); err != nil {
		return out, err
	}
	c.cfg.Tracer.SpanAt(trace.TrackDist, "reduce", reduceStart, time.Since(reduceStart),
		trace.Attr{Key: "round", Val: int64(c.round)})

	// Broadcast commits the round: the reduced gradient exists, so a rank
	// unreachable here is vacated (to resync via manifest on rejoin) rather
	// than failing the round — the survivors must not be torn back.
	broadcastStart := time.Now()
	rb, err := encodeTensors(reducedMeta{Round: c.round}, rank0)
	if err != nil {
		return out, err
	}
	for r := 1; r < c.cfg.World; r++ {
		conn := c.conns[r]
		conn.SetDeadline(time.Now().Add(c.cfg.RoundTimeout))
		if err := writeFrame(conn, msgReduced, rb); err != nil {
			c.vacate(r, "broadcast")
			continue
		}
		wireBytes += int64(len(rb))
	}
	c.cfg.Tracer.SpanAt(trace.TrackDist, "broadcast", broadcastStart, time.Since(broadcastStart),
		trace.Attr{Key: "round", Val: int64(c.round)})

	norm := c.tr.ApplyReduced()
	if norm > out.GradNorm {
		out.GradNorm = norm
	}
	out.Wall = time.Since(roundStart)
	// Workers compute concurrently with rank 0 and with each other, so the
	// exchange cost is what the wall clock shows beyond the slowest compute.
	out.AllReduce = out.Wall - out.SlowestReplica
	if out.AllReduce < 0 {
		out.AllReduce = 0
	}
	c.cfg.Metrics.observeRound(out.Wall.Seconds(), wireBytes)
	return out, nil
}

// gatherRank reads rank r's gradient upload for the current round/attempt,
// draining any stale upload left buffered by an aborted earlier attempt
// (same round, lower attempt — the bytes are bitwise identical, but
// consuming them would desynchronize the stream).
func (c *Coordinator) gatherRank(r, attempt, want int, rank0 []tensor.Named) ([]tensor.Named, gradsMeta, time.Duration, error) {
	conn := c.conns[r]
	var waited time.Duration
	for {
		conn.SetDeadline(time.Now().Add(c.cfg.RoundTimeout))
		readStart := time.Now()
		typ, payload, err := readFrame(conn)
		waited += time.Since(readStart)
		if err != nil {
			return nil, gradsMeta{}, waited, &rankFaultError{rank: r, phase: "gather", err: err}
		}
		switch typ {
		case msgGrads:
		case msgError:
			var em errorMsg
			if derr := decodeJSON(payload, &em); derr == nil {
				return nil, gradsMeta{}, waited, &rankFaultError{rank: r, phase: "gather", err: errors.New(em.Message)}
			}
			return nil, gradsMeta{}, waited, &rankFaultError{rank: r, phase: "gather", err: fmt.Errorf("undecodable worker error")}
		default:
			return nil, gradsMeta{}, waited, &rankFaultError{rank: r, phase: "gather", err: fmt.Errorf("unexpected message type %d", typ)}
		}
		var meta gradsMeta
		ts, err := decodeTensors(payload, &meta)
		if err != nil {
			return nil, gradsMeta{}, waited, &rankFaultError{rank: r, phase: "gather", err: err}
		}
		if meta.Round == c.round && meta.Attempt < attempt {
			continue // stale upload from an aborted attempt
		}
		if meta.Round != c.round || meta.Attempt != attempt || meta.Rank != r {
			return nil, gradsMeta{}, waited, &rankFaultError{rank: r, phase: "gather",
				err: fmt.Errorf("grads for round %d attempt %d rank %d, expected %d/%d/%d",
					meta.Round, meta.Attempt, meta.Rank, c.round, attempt, r)}
		}
		if meta.Count != want {
			return nil, gradsMeta{}, waited, &rankFaultError{rank: r, phase: "gather",
				err: fmt.Errorf("shard count %d, expected %d", meta.Count, want)}
		}
		if want > 0 {
			if len(ts) != len(rank0) {
				return nil, gradsMeta{}, waited, &rankFaultError{rank: r, phase: "gather",
					err: fmt.Errorf("%d gradient tensors, expected %d", len(ts), len(rank0))}
			}
			for j, nt := range ts {
				if nt.Name != rank0[j].Name {
					return nil, gradsMeta{}, waited, &rankFaultError{rank: r, phase: "gather",
						err: fmt.Errorf("tensor %d named %q, expected %q", j, nt.Name, rank0[j].Name)}
				}
			}
		}
		return ts, meta, waited, nil
	}
}

// tensorsWireBytes sums the raw float payload of a tensor set — the
// byte-count the reduce-bytes metric attributes to one upload.
func tensorsWireBytes(ts []tensor.Named) int64 {
	var n int64
	for _, nt := range ts {
		n += nt.T.Bytes()
	}
	return n
}

// Fit trains for the given number of epochs, mirroring the serial trainer's
// epoch loop (same shuffle, same batching, same MaxBatchesPerEpoch cap) with
// TrainRound in place of TrainBatchIndices.
func (c *Coordinator) Fit(epochs int) ([]core.EpochStats, error) {
	var out []core.EpochStats
	for e := 0; e < epochs; e++ {
		c.epoch++
		if err := c.tr.BeginEpoch(c.epoch); err != nil {
			return out, err
		}
		idx := dataset.Indices(c.tr.Data, dataset.Train, c.tr.Cfg.Seed, c.epoch, true)
		batches := dataset.Batches(idx, c.tr.Cfg.Batch)
		if c.tr.Cfg.MaxBatchesPerEpoch > 0 && len(batches) > c.tr.Cfg.MaxBatchesPerEpoch {
			batches = batches[:c.tr.Cfg.MaxBatchesPerEpoch]
		}
		var ep core.EpochStats
		start := time.Now()
		for _, b := range batches {
			st, err := c.TrainRound(dataset.Train, b)
			if err != nil {
				return out, err
			}
			ep.StepStats.Add(st.StepStats)
			ep.Batches++
		}
		ep.Duration = time.Since(start)
		out = append(out, ep)
	}
	return out, nil
}

// Finish ends training cleanly: every connected worker gets a done message
// and its connection closed. The coordinator remains usable for inspection
// but not for further rounds with the old workers.
func (c *Coordinator) Finish(reason string) {
	db, err := encodeJSON(doneMsg{Reason: reason})
	if err != nil {
		return
	}
	for r := 1; r < c.cfg.World; r++ {
		conn := c.conns[r]
		if conn == nil {
			continue
		}
		conn.SetDeadline(time.Now().Add(c.cfg.RoundTimeout))
		writeFrame(conn, msgDone, db)
		c.conns[r].Close()
		c.conns[r] = nil
	}
	c.cfg.Metrics.setConnected(0)
}

// Round reports the number of committed rounds.
func (c *Coordinator) Round() int { return c.round }
