package dist

import (
	"errors"
	"fmt"
	"net"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/frame"
	"skipper/internal/runstate"
	"skipper/internal/trace"
)

// Config parameterizes a Coordinator.
type Config struct {
	// World is the total rank count including the coordinator (rank 0), so
	// World-1 workers must join. Must be at least 2.
	World int
	// Options selects the exchange topology, wire compression, and overlap
	// mode; every worker must present identical options at handshake.
	Options Options
	// RoundTimeout bounds each per-connection I/O phase inside a round
	// (dispatch write, gather read, broadcast write). Default 30s.
	RoundTimeout time.Duration
	// JoinTimeout bounds how long a round waits for vacant ranks to (re)fill
	// before giving up. Default 60s.
	JoinTimeout time.Duration
	// Straggler, when > 0, flags any rank whose upload completed later than
	// this after rank 0's own compute finished (the worker was still
	// computing or its link is slow); flagged ranks bump
	// skipper_dist_stragglers_total and emit a trace event but do not fail
	// the round.
	Straggler time.Duration
	// MaxReplays bounds how many times a round is replayed after rank
	// faults before the coordinator gives up. Default 3.
	MaxReplays int

	Tracer  *trace.Tracer
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 30 * time.Second
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 60 * time.Second
	}
	if c.MaxReplays <= 0 {
		c.MaxReplays = 3
	}
	c.Options = c.Options.withDefaults()
	return c
}

// Coordinator drives synchronous data-parallel training as rank 0 of a
// World-rank run. It is not safe for concurrent use except for Admit/Serve,
// which only feed the join queue.
type Coordinator struct {
	tr  *core.Trainer
	cfg Config

	joinCh chan net.Conn
	conns  []net.Conn // index = rank; [0] stays nil (the coordinator itself)

	flat *flatGrads
	sig  string
	coll Collective

	// Ring membership (TopologyRing): ringAddrs[r] is rank r's ring-data
	// listener, ringVersion names the membership epoch, and ringDirty
	// forces a re-announce (and version bump) before the next round —
	// set on any join, vacancy, or abort so poisoned ring connections are
	// always rebuilt.
	ringAddrs   []string
	ringVersion int
	ringDirty   bool

	round    int
	lastIter int
	epoch    int
}

// NewCoordinator wraps tr (which becomes rank 0) in a coordinator for
// cfg.World ranks.
//
// The divergence guard's rollback is a single-process mechanism, so a
// scheduled-LR run relies on every rank applying BeginEpoch identically;
// guard-driven mid-epoch LR rescaling is not replicated and must stay off
// (Guard disabled) in distributed runs.
func NewCoordinator(tr *core.Trainer, cfg Config) (*Coordinator, error) {
	if cfg.World < 2 {
		return nil, fmt.Errorf("dist: world size %d needs at least 2 ranks", cfg.World)
	}
	if err := cfg.Options.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	grads := tr.GradTensors()
	c := &Coordinator{
		tr:        tr,
		cfg:       cfg,
		joinCh:    make(chan net.Conn, cfg.World*2),
		conns:     make([]net.Conn, cfg.World),
		flat:      newFlatGrads(grads),
		sig:       paramSig(grads),
		ringAddrs: make([]string, cfg.World),
		lastIter:  tr.Iteration0(),
	}
	switch cfg.Options.Topology {
	case TopologyRing:
		rc, err := newRingCollective(c)
		if err != nil {
			return nil, err
		}
		c.coll = rc
	default:
		c.coll = &starCollective{c: c}
	}
	return c, nil
}

// Collective exposes the round engine the coordinator runs — its Name is
// what manifests and tooling record as the topology.
func (c *Coordinator) Collective() Collective { return c.coll }

// Admit queues a connection for the next rank-filling pause. Tests feed
// net.Pipe ends here directly; Serve feeds accepted TCP connections.
func (c *Coordinator) Admit(conn net.Conn) {
	c.joinCh <- conn
}

// Serve accepts connections from ln and admits them until ln closes.
func (c *Coordinator) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c.Admit(conn)
	}
}

func (c *Coordinator) connected() int {
	n := 0
	for r := 1; r < c.cfg.World; r++ {
		if c.conns[r] != nil {
			n++
		}
	}
	return n
}

func (c *Coordinator) vacancies() int {
	return c.cfg.World - 1 - c.connected()
}

// vacate drops rank r's connection. Rank -1 marks an unattributable fault
// (e.g. a ring link dropping between two workers) and vacates nobody — the
// replay's dispatch or gather will attribute the dead rank.
func (c *Coordinator) vacate(r int, why string) {
	if r < 1 || r >= c.cfg.World || c.conns[r] == nil {
		return
	}
	c.conns[r].Close()
	c.conns[r] = nil
	c.ringDirty = true
	c.cfg.Metrics.setConnected(c.connected())
	c.cfg.Tracer.Event(trace.TrackDist, "rank_vacated:"+why,
		trace.Attr{Key: "rank", Val: int64(r)})
}

// nbuckets is the round's exchange bucket count: 1 (the whole gradient)
// unless overlap streams one bucket per backward segment.
func (c *Coordinator) nbuckets() int {
	if !c.cfg.Options.Overlap {
		return 1
	}
	return core.SegmentCount(c.tr.Strat)
}

// handshake validates a joining worker and seats it at the lowest vacant
// rank, sending welcome + a runstate manifest so the worker resyncs to the
// coordinator's exact current weights, optimizer state, and buffers.
func (c *Coordinator) handshake(conn net.Conn) error {
	deadline := time.Now().Add(c.cfg.RoundTimeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return err
	}
	typ, payload, err := frame.Read(conn)
	if err != nil {
		return err
	}
	if typ != msgHello {
		return fmt.Errorf("dist: expected hello, got message type %d", typ)
	}
	var hello helloMsg
	if err := decodeJSON(payload, &hello); err != nil {
		return err
	}
	if err := c.validateHello(hello); err != nil {
		// Tell the worker not to retry: its configuration can never match.
		if eb, encErr := encodeJSON(errorMsg{Message: err.Error(), Permanent: true}); encErr == nil {
			frame.Write(conn, msgError, eb)
		}
		return err
	}
	rank := -1
	for r := 1; r < c.cfg.World; r++ {
		if c.conns[r] == nil {
			rank = r
			break
		}
	}
	if rank == -1 {
		if eb, encErr := encodeJSON(errorMsg{Message: "world is full", Permanent: true}); encErr == nil {
			frame.Write(conn, msgError, eb)
		}
		return fmt.Errorf("dist: world is full")
	}
	wb, err := encodeJSON(welcomeMsg{Rank: rank, World: c.cfg.World, Round: c.round})
	if err != nil {
		return err
	}
	if err := frame.Write(conn, msgWelcome, wb); err != nil {
		return err
	}
	// NextEpoch in the cursor is the epoch the next assign will name;
	// Restore rewinds the worker to just before it, and BeginEpoch on the
	// first assign advances it with the scheduled LR applied.
	m, err := runstate.Capture(c.tr, core.Cursor{NextEpoch: c.epoch, Iteration: c.lastIter}, core.EpochStats{})
	if err != nil {
		return fmt.Errorf("dist: capturing resync manifest: %w", err)
	}
	m.Meta.Dist = &runstate.DistMeta{
		World: c.cfg.World, Rank: rank, Round: c.round,
		Topology: c.cfg.Options.Topology,
	}
	mb, err := m.Encode()
	if err != nil {
		return fmt.Errorf("dist: encoding resync manifest: %w", err)
	}
	if err := frame.Write(conn, msgState, mb); err != nil {
		return err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return err
	}
	c.conns[rank] = conn
	c.ringAddrs[rank] = hello.RingAddr
	c.ringDirty = true
	c.cfg.Tracer.Event(trace.TrackDist, "rank_joined",
		trace.Attr{Key: "rank", Val: int64(rank)}, trace.Attr{Key: "round", Val: int64(c.round)})
	return nil
}

// validateHello rejects any worker whose configuration would break the
// lock-step invariant: same strategy, optimizer, seed, horizon, LR/clip,
// parameter layout, and exchange options, or the ranks compute diverging
// steps.
func (c *Coordinator) validateHello(h helloMsg) error {
	opts := c.cfg.Options
	switch {
	case h.Proto != protoVersion:
		return fmt.Errorf("dist: protocol %d != %d", h.Proto, protoVersion)
	case h.Strategy != c.tr.Strat.Name():
		return fmt.Errorf("dist: strategy %q != %q", h.Strategy, c.tr.Strat.Name())
	case h.Optimizer != c.tr.Opt.Name():
		return fmt.Errorf("dist: optimizer %q != %q", h.Optimizer, c.tr.Opt.Name())
	case h.Seed != c.tr.Cfg.Seed:
		return fmt.Errorf("dist: seed %d != %d", h.Seed, c.tr.Cfg.Seed)
	case h.T != c.tr.Cfg.T:
		return fmt.Errorf("dist: horizon T %d != %d", h.T, c.tr.Cfg.T)
	case h.LR != float64(c.tr.Cfg.LR):
		return fmt.Errorf("dist: learning rate %g != %g", h.LR, c.tr.Cfg.LR)
	case h.GradClip != float64(c.tr.Cfg.GradClip):
		return fmt.Errorf("dist: grad clip %g != %g", h.GradClip, c.tr.Cfg.GradClip)
	case h.ParamSig != c.sig:
		return fmt.Errorf("dist: parameter signature %s != %s", h.ParamSig, c.sig)
	case h.Topology != opts.Topology:
		return fmt.Errorf("dist: topology %q != %q", h.Topology, opts.Topology)
	case h.Compress != opts.Compress:
		return fmt.Errorf("dist: compression %q != %q", h.Compress, opts.Compress)
	case h.Overlap != opts.Overlap:
		return fmt.Errorf("dist: overlap %v != %v", h.Overlap, opts.Overlap)
	case opts.Topology == TopologyRing && h.RingAddr == "":
		return fmt.Errorf("dist: ring topology needs a worker ring listener address")
	}
	return nil
}

// fillRanks blocks until every rank is seated, admitting queued and newly
// arriving connections, or fails after JoinTimeout.
func (c *Coordinator) fillRanks() error {
	deadline := time.Now().Add(c.cfg.JoinTimeout)
	for c.vacancies() > 0 {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("dist: timed out waiting for %d worker(s) to join", c.vacancies())
		}
		select {
		case conn := <-c.joinCh:
			if err := c.handshake(conn); err != nil {
				conn.Close()
				c.cfg.Tracer.Event(trace.TrackDist, "join_rejected:"+err.Error())
				continue
			}
			c.cfg.Metrics.setConnected(c.connected())
		case <-time.After(remaining):
			return fmt.Errorf("dist: timed out waiting for %d worker(s) to join", c.vacancies())
		}
	}
	return nil
}

// rankFaultError marks a failure attributable to one worker rank (or -1
// when the faulting rank cannot be named, e.g. a ring link between two
// workers), which the round-replay loop recovers from by vacating that rank
// and replaying.
type rankFaultError struct {
	rank  int
	phase string
	err   error
}

func (e *rankFaultError) Error() string {
	return fmt.Sprintf("dist: rank %d failed during %s: %v", e.rank, e.phase, e.err)
}

func (e *rankFaultError) Unwrap() error { return e.err }

// TrainRound runs one synchronous data-parallel step over the global batch,
// replaying (with reconnected workers resynced from a manifest) after rank
// faults up to MaxReplays times. Replays are deterministic: the iteration
// number is fixed before the first attempt, so every attempt computes
// bit-identical gradients.
func (c *Coordinator) TrainRound(split dataset.Split, indices []int) (core.DPStepStats, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxReplays; attempt++ {
		if err := c.fillRanks(); err != nil {
			return core.DPStepStats{}, err
		}
		st, err := c.tryRound(split, indices, attempt)
		if err == nil {
			c.round++
			c.lastIter++
			return st, nil
		}
		lastErr = err
		var rf *rankFaultError
		if !errors.As(err, &rf) {
			return core.DPStepStats{}, err
		}
		c.abortRound(rf)
		c.cfg.Metrics.observeAbort()
	}
	return core.DPStepStats{}, fmt.Errorf("dist: round %d failed after %d replays: %w", c.round, c.cfg.MaxReplays, lastErr)
}

// abortRound tells surviving ranks to discard the in-flight round, vacates
// the faulted rank, and discards any in-flight collective state (ring
// connections are poisoned by half-sent chunks, so the collective tears
// them down and the next attempt rebuilds under a bumped version).
func (c *Coordinator) abortRound(rf *rankFaultError) {
	c.vacate(rf.rank, rf.phase)
	c.coll.Abort()
	c.ringDirty = true
	ab, err := encodeJSON(abortMsg{Round: c.round, Reason: rf.Error()})
	if err != nil {
		return
	}
	for r := 1; r < c.cfg.World; r++ {
		conn := c.conns[r]
		if conn == nil {
			continue
		}
		conn.SetDeadline(time.Now().Add(c.cfg.RoundTimeout))
		if werr := frame.Write(conn, msgAbort, ab); werr != nil {
			c.vacate(r, "abort notify")
		}
	}
	c.cfg.Tracer.Event(trace.TrackDist, "round_aborted:"+rf.phase,
		trace.Attr{Key: "round", Val: int64(c.round)},
		trace.Attr{Key: "rank", Val: int64(rf.rank)})
}

// announceRing re-broadcasts the ring membership under a bumped version
// whenever it changed (join, vacancy, abort). Star topology never dirties
// the flag, so this is a no-op there.
func (c *Coordinator) announceRing() error {
	if !c.ringDirty {
		return nil
	}
	c.ringVersion++
	rb, err := encodeJSON(ringMsg{Version: c.ringVersion, Addrs: append([]string(nil), c.ringAddrs...)})
	if err != nil {
		return err
	}
	for r := 1; r < c.cfg.World; r++ {
		conn := c.conns[r]
		conn.SetDeadline(time.Now().Add(c.cfg.RoundTimeout))
		if err := frame.Write(conn, msgRing, rb); err != nil {
			return &rankFaultError{rank: r, phase: "ring announce", err: err}
		}
	}
	c.ringDirty = false
	return nil
}

// tryRound executes one attempt of the current round: dispatch shards, run
// the collective's exchange (which computes rank 0's shard locally while
// worker contributions stream in), commit, and step.
func (c *Coordinator) tryRound(split dataset.Split, indices []int, attempt int) (core.DPStepStats, error) {
	r := &round{
		num:     c.round,
		attempt: attempt,
		split:   split,
		indices: indices,
		iter:    c.lastIter + 1,
		nb:      c.nbuckets(),
	}
	r.shards = c.coll.Shard(indices)
	roundStart := time.Now()

	if c.cfg.Options.Topology == TopologyRing {
		if err := c.announceRing(); err != nil {
			return r.out, err
		}
	}

	// Dispatch worker shards first so they compute in parallel with rank 0.
	dispatchStart := time.Now()
	for rank := 1; rank < c.cfg.World; rank++ {
		ab, err := encodeJSON(assignMsg{
			Round: c.round, Attempt: attempt, Epoch: c.epoch, Iteration: r.iter,
			GlobalN: len(indices), Split: int(split), Indices: r.shards[rank],
			NBuckets: r.nb, RingVersion: c.ringVersion,
		})
		if err != nil {
			return r.out, err
		}
		conn := c.conns[rank]
		conn.SetDeadline(time.Now().Add(c.cfg.RoundTimeout))
		if err := frame.Write(conn, msgAssign, ab); err != nil {
			return r.out, &rankFaultError{rank: rank, phase: "dispatch", err: err}
		}
	}
	c.cfg.Tracer.SpanAt(trace.TrackDist, "shard_dispatch", dispatchStart, time.Since(dispatchStart),
		trace.Attr{Key: "round", Val: int64(c.round)})

	exchangeStart := time.Now()
	if err := c.coll.Exchange(r); err != nil {
		return r.out, err
	}
	c.cfg.Tracer.SpanAt(trace.TrackDist, "exchange", exchangeStart, time.Since(exchangeStart),
		trace.Attr{Key: "round", Val: int64(c.round)},
		trace.Attr{Key: "buckets", Val: int64(r.nb)})

	// Commit: the reduced gradient exists on rank 0 (star) or on every rank
	// (ring), so a rank unreachable here is vacated (to resync via manifest
	// on rejoin) rather than failing the round — the survivors must not be
	// torn back.
	commitStart := time.Now()
	if err := c.coll.Commit(r); err != nil {
		return r.out, err
	}
	r.exchangeEnd = time.Now()
	c.cfg.Tracer.SpanAt(trace.TrackDist, "commit", commitStart, time.Since(commitStart),
		trace.Attr{Key: "round", Val: int64(c.round)})

	norm := c.tr.ApplyReduced()
	if norm > r.out.GradNorm {
		r.out.GradNorm = norm
	}
	r.out.Wall = time.Since(roundStart)
	// Workers compute concurrently with rank 0 and with each other, so the
	// exchange cost is what the wall clock shows beyond the slowest compute.
	r.out.AllReduce = r.out.Wall - r.out.SlowestReplica
	if r.out.AllReduce < 0 {
		r.out.AllReduce = 0
	}
	r.finishOverlapStats()
	c.cfg.Metrics.observeRound(r.out.Wall.Seconds(), r.wireBytes)
	c.cfg.Metrics.setOverlap(r.out.OverlapFrac)
	return r.out, nil
}

// Fit trains for the given number of epochs, mirroring the serial trainer's
// epoch loop (same shuffle, same batching, same MaxBatchesPerEpoch cap) with
// TrainRound in place of TrainBatchIndices.
func (c *Coordinator) Fit(epochs int) ([]core.EpochStats, error) {
	var out []core.EpochStats
	for e := 0; e < epochs; e++ {
		c.epoch++
		if err := c.tr.BeginEpoch(c.epoch); err != nil {
			return out, err
		}
		idx := dataset.Indices(c.tr.Data, dataset.Train, c.tr.Cfg.Seed, c.epoch, true)
		batches := dataset.Batches(idx, c.tr.Cfg.Batch)
		if c.tr.Cfg.MaxBatchesPerEpoch > 0 && len(batches) > c.tr.Cfg.MaxBatchesPerEpoch {
			batches = batches[:c.tr.Cfg.MaxBatchesPerEpoch]
		}
		var ep core.EpochStats
		start := time.Now()
		for _, b := range batches {
			st, err := c.TrainRound(dataset.Train, b)
			if err != nil {
				return out, err
			}
			ep.StepStats.Add(st.StepStats)
			ep.Batches++
		}
		ep.Duration = time.Since(start)
		out = append(out, ep)
	}
	return out, nil
}

// Finish ends training cleanly: every connected worker gets a done message
// and its connection closed, and the collective releases its listeners. The
// coordinator remains usable for inspection but not for further rounds with
// the old workers.
func (c *Coordinator) Finish(reason string) {
	db, err := encodeJSON(doneMsg{Reason: reason})
	if err != nil {
		return
	}
	for r := 1; r < c.cfg.World; r++ {
		conn := c.conns[r]
		if conn == nil {
			continue
		}
		conn.SetDeadline(time.Now().Add(c.cfg.RoundTimeout))
		frame.Write(conn, msgDone, db)
		c.conns[r].Close()
		c.conns[r] = nil
	}
	c.coll.Close()
	c.cfg.Metrics.setConnected(0)
}

// Round reports the number of committed rounds.
func (c *Coordinator) Round() int { return c.round }
