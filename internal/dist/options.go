package dist

import "fmt"

// Topology selects the round's gradient-combination wiring.
const (
	// TopologyStar: workers upload to the coordinator, which reduces in
	// ascending rank order and broadcasts the result. Simple, minimal
	// connection count, coordinator link is the bottleneck.
	TopologyStar = "star"
	// TopologyRing: ranks forward gradient chunks around a ring (each rank
	// dials its successor); the coordinator link carries ~2/W of the star's
	// traffic. Bit-identical to star — the reduce trip accumulates in the
	// same ascending rank order.
	TopologyRing = "ring"
)

// Compress selects the gradient wire encoding.
const (
	// CompressNone ships raw dense float payloads.
	CompressNone = "none"
	// CompressDelta encodes near-zero gradient payloads as bitmap+values
	// frames with exact bit round-trip — it changes bytes, never results.
	CompressDelta = "delta"
)

// Options are the exchange knobs shared by the coordinator and workers.
// Every field is part of the lock-step contract and validated at handshake:
// a worker whose options differ from the coordinator's is rejected as
// permanently misconfigured.
type Options struct {
	// Topology is TopologyStar (default) or TopologyRing.
	Topology string
	// Compress is CompressNone (default) or CompressDelta.
	Compress string
	// Overlap streams per-segment gradient buckets into the exchange as
	// each checkpoint segment's backward finishes, hiding wire time under
	// the next segment's recompute. Bucket order is deterministic, so runs
	// reproduce bit-for-bit against each other — but the regrouped float
	// summation rounds differently than the serial order, so Overlap is
	// off by default to keep the default mode bit-identical to serial.
	Overlap bool
	// RingListen is the address the rank's ring-data listener binds
	// (TopologyRing only). Empty means 127.0.0.1:0.
	RingListen string
}

func (o Options) withDefaults() Options {
	if o.Topology == "" {
		o.Topology = TopologyStar
	}
	if o.Compress == "" {
		o.Compress = CompressNone
	}
	if o.RingListen == "" {
		o.RingListen = "127.0.0.1:0"
	}
	return o
}

// Validate rejects unknown topology or compression names.
func (o Options) Validate() error {
	switch o.Topology {
	case "", TopologyStar, TopologyRing:
	default:
		return fmt.Errorf("dist: unknown topology %q (want %s or %s)", o.Topology, TopologyStar, TopologyRing)
	}
	switch o.Compress {
	case "", CompressNone, CompressDelta:
	default:
		return fmt.Errorf("dist: unknown compression %q (want %s or %s)", o.Compress, CompressNone, CompressDelta)
	}
	return nil
}

// sparseWire reports whether gradient payloads use the bitmap codec.
func (o Options) sparseWire() bool { return o.Compress == CompressDelta }
