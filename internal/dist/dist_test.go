package dist

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"skipper/internal/frame"
	"strings"
	"testing"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/faults"
	"skipper/internal/mem"
	"skipper/internal/models"
	"skipper/internal/runstate"
)

// buildTrainer constructs the shared test workload: every rank, replica, and
// serial reference in this file must be configured identically or the
// bitwise comparisons are meaningless.
func buildTrainer(T, micro int) (*core.Trainer, error) {
	data, err := dataset.Open("cifar10", 1)
	if err != nil {
		return nil, err
	}
	net, err := models.Build("customnet", models.Options{Width: 0.5, InShape: []int{3, 16, 16}})
	if err != nil {
		return nil, err
	}
	return core.NewTrainer(net, data, core.Checkpoint{C: 2}, core.Config{
		T: T, Batch: 3, Seed: 7, MicroBatch: micro, Device: mem.Unlimited(),
	})
}

func newTrainer(t *testing.T, T int) *core.Trainer {
	t.Helper()
	tr, err := buildTrainer(T, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// requireSameWeights fails unless the two trainers hold bit-identical
// weights.
func requireSameWeights(t *testing.T, label string, a, b *core.Trainer) {
	t.Helper()
	ap, bp := a.Net.Params(), b.Net.Params()
	if len(ap) != len(bp) {
		t.Fatalf("%s: %d vs %d parameter tensors", label, len(ap), len(bp))
	}
	for j := range ap {
		for k := range ap[j].W.Data {
			if ap[j].W.Data[k] != bp[j].W.Data[k] {
				t.Fatalf("%s: weights diverge at tensor %q element %d: %g vs %g",
					label, ap[j].Name, k, ap[j].W.Data[k], bp[j].W.Data[k])
			}
		}
	}
}

// pipeDial returns a Dial that opens a fresh in-process pipe to the
// coordinator on every call, so reconnects work exactly like TCP redials.
func pipeDial(c *Coordinator) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		cs, ws := net.Pipe()
		c.Admit(cs)
		return ws, nil
	}
}

// TestDistBitIdenticalToDataParallelAndSerial is the tentpole equivalence
// property: a 3-rank coordinator/worker run over in-process pipes must leave
// every rank with weights bit-identical to the in-process DataParallel
// simulation AND to serial training with MicroBatch 1, across full rounds
// and a ragged final round where rank 2's shard is empty.
func TestDistBitIdenticalToDataParallelAndSerial(t *testing.T) {
	const T, W = 10, 3
	batches := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7}}

	ct := newTrainer(t, T)
	defer ct.Close()
	metrics := NewMetrics(W)
	coord, err := NewCoordinator(ct, Config{
		World: W, RoundTimeout: 10 * time.Second, JoinTimeout: 10 * time.Second, Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	var workers []*core.Trainer
	errs := make(chan error, W-1)
	for i := 0; i < W-1; i++ {
		wtr := newTrainer(t, T)
		defer wtr.Close()
		workers = append(workers, wtr)
		go func() {
			errs <- RunWorker(wtr, WorkerConfig{Dial: pipeDial(coord), ReconnectWait: 10 * time.Millisecond})
		}()
	}

	for _, b := range batches {
		st, err := coord.TrainRound(dataset.Train, b)
		if err != nil {
			t.Fatal(err)
		}
		if st.N != len(b) {
			t.Fatalf("round consumed %d samples, batch had %d", st.N, len(b))
		}
		if st.Loss <= 0 {
			t.Fatalf("round reported loss %g", st.Loss)
		}
	}
	coord.Finish("test done")
	for i := 0; i < W-1; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if got := metrics.ReduceBytes(); got <= 0 {
		t.Fatalf("reduce bytes %d after 3 rounds", got)
	}

	// Every rank stepped identically.
	for i, wtr := range workers {
		requireSameWeights(t, fmt.Sprintf("coordinator vs worker %d", i+1), ct, wtr)
	}

	// The wire run matches the in-process DataParallel simulation bitwise.
	dp, err := core.NewDataParallel(W, func(int) (*core.Trainer, error) { return buildTrainer(T, 0) })
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	for _, b := range batches {
		if _, err := dp.TrainBatchIndices(dataset.Train, b); err != nil {
			t.Fatal(err)
		}
	}
	requireSameWeights(t, "dist vs DataParallel", ct, dp.Replicas[0])

	// And — with one-sample shards — matches serial MicroBatch-1 training.
	serial, err := buildTrainer(T, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	for _, b := range batches {
		if _, err := serial.TrainBatchIndices(dataset.Train, b); err != nil {
			t.Fatal(err)
		}
	}
	requireSameWeights(t, "dist vs serial micro-batch 1", ct, serial)
}

// TestDistWorkerDiesMidUploadReplaysAndResyncs kills the only worker's
// connection partway through its gradient upload. The coordinator must abort
// the round, reseat the reconnecting worker (resynced from a manifest), and
// replay to the same bit-identical result DataParallel produces — the
// aborted attempt leaves no trace in the weights.
func TestDistWorkerDiesMidUploadReplaysAndResyncs(t *testing.T) {
	const T, W = 10, 2
	batches := [][]int{{0, 1}, {2, 3}}

	ct := newTrainer(t, T)
	defer ct.Close()
	metrics := NewMetrics(W)
	coord, err := NewCoordinator(ct, Config{
		World: W, RoundTimeout: 10 * time.Second, JoinTimeout: 10 * time.Second, Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	wtr := newTrainer(t, T)
	defer wtr.Close()
	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		cs, ws := net.Pipe()
		coord.Admit(cs)
		if dials == 1 {
			// Enough budget for the hello, nowhere near enough for the
			// gradient upload: the first session dies mid-grads-frame.
			fc := faults.NewConn(ws)
			fc.FailWritesAfter(4096)
			fc.CloseOnFault(true)
			return fc, nil
		}
		return ws, nil
	}
	errs := make(chan error, 1)
	go func() {
		errs <- RunWorker(wtr, WorkerConfig{Dial: dial, ReconnectWait: 10 * time.Millisecond})
	}()

	for _, b := range batches {
		if _, err := coord.TrainRound(dataset.Train, b); err != nil {
			t.Fatal(err)
		}
	}
	coord.Finish("test done")
	if err := <-errs; err != nil {
		t.Fatalf("worker: %v", err)
	}
	if dials < 2 {
		t.Fatalf("worker reconnected %d times, expected at least one redial", dials-1)
	}
	var rendered bytes.Buffer
	metrics.Render(&rendered)
	if !strings.Contains(rendered.String(), "skipper_dist_aborts_total 1") {
		t.Fatalf("expected exactly one abort in metrics:\n%s", rendered.String())
	}

	requireSameWeights(t, "coordinator vs resynced worker", ct, wtr)
	dp, err := core.NewDataParallel(W, func(int) (*core.Trainer, error) { return buildTrainer(T, 0) })
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	for _, b := range batches {
		if _, err := dp.TrainBatchIndices(dataset.Train, b); err != nil {
			t.Fatal(err)
		}
	}
	requireSameWeights(t, "faulted dist vs DataParallel", ct, dp.Replicas[0])
}

// TestWorkerCoordinatorDiesMidBroadcast scripts a coordinator that truncates
// the reduced-gradient broadcast mid-frame and disappears. The worker must
// exhaust its reconnect budget and surface a CoordinatorLostError naming the
// uncommitted round, with a resume hint — never apply the half-received
// gradients.
func TestWorkerCoordinatorDiesMidBroadcast(t *testing.T) {
	const T = 10
	wtr := newTrainer(t, T)
	defer wtr.Close()
	str := newTrainer(t, T) // scripted coordinator's state source
	defer str.Close()

	cs, ws := net.Pipe()
	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		if dials == 1 {
			return ws, nil
		}
		return nil, errors.New("connection refused")
	}
	go func() {
		defer cs.Close()
		if _, _, err := frame.Read(cs); err != nil { // hello
			return
		}
		wb, _ := encodeJSON(welcomeMsg{Rank: 1, World: 2, Round: 0})
		if err := frame.Write(cs, msgWelcome, wb); err != nil {
			return
		}
		m, err := runstate.Capture(str, core.Cursor{}, core.EpochStats{})
		if err != nil {
			return
		}
		m.Meta.Dist = &runstate.DistMeta{World: 2, Rank: 1, Round: 0}
		mb, err := m.Encode()
		if err != nil {
			return
		}
		if err := frame.Write(cs, msgState, mb); err != nil {
			return
		}
		ab, _ := encodeJSON(assignMsg{Round: 0, Iteration: 1, GlobalN: 2, Split: int(dataset.Train), Indices: []int{1}})
		if err := frame.Write(cs, msgAssign, ab); err != nil {
			return
		}
		if _, _, err := frame.Read(cs); err != nil { // grads
			return
		}
		sf := newFlatGrads(str.GradTensors())
		vals := make([]float32, sf.size())
		sf.copyOut(0, sf.size(), vals)
		rb, err := encodeFlat(reducedMeta{Round: 0}, vals, false)
		if err != nil {
			return
		}
		var fb bytes.Buffer
		if err := frame.Write(&fb, msgReduced, rb); err != nil {
			return
		}
		cs.Write(fb.Bytes()[:fb.Len()/2]) // die mid-broadcast
	}()

	before := snapshotWeights(wtr)
	err := RunWorker(wtr, WorkerConfig{Dial: dial, MaxReconnects: 2, ReconnectWait: 5 * time.Millisecond})
	var lost *CoordinatorLostError
	if !errors.As(err, &lost) {
		t.Fatalf("expected CoordinatorLostError, got %v", err)
	}
	if lost.Round != 0 {
		t.Fatalf("lost at round %d, expected 0 (never committed)", lost.Round)
	}
	if !strings.Contains(lost.Error(), "resyncs from the coordinator's manifest") {
		t.Fatalf("error lacks resume hint: %v", lost)
	}
	// The half-broadcast round must not have stepped the weights past the
	// manifest state the scripted coordinator sent (str's initial weights).
	requireSameWeights(t, "worker vs scripted coordinator state", wtr, str)
	_ = before
}

func snapshotWeights(tr *core.Trainer) [][]float32 {
	var out [][]float32
	for _, p := range tr.Net.Params() {
		out = append(out, append([]float32(nil), p.W.Data...))
	}
	return out
}

// TestWorkerHandshakeMismatchIsPermanent gives the worker a different seed;
// the coordinator must reject it with a permanent error and the worker must
// not burn its reconnect budget retrying a config that can never match.
func TestWorkerHandshakeMismatchIsPermanent(t *testing.T) {
	const T = 10
	ct := newTrainer(t, T)
	defer ct.Close()
	coord, err := NewCoordinator(ct, Config{World: 2, RoundTimeout: 2 * time.Second, JoinTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	data, err := dataset.Open("cifar10", 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := models.Build("customnet", models.Options{Width: 0.5, InShape: []int{3, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	wtr, err := core.NewTrainer(net, data, core.Checkpoint{C: 2}, core.Config{
		T: T, Batch: 3, Seed: 8, Device: mem.Unlimited(), // seed differs
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wtr.Close()

	roundErr := make(chan error, 1)
	go func() {
		_, err := coord.TrainRound(dataset.Train, []int{0, 1})
		roundErr <- err
	}()
	werr := RunWorker(wtr, WorkerConfig{Dial: pipeDial(coord), ReconnectWait: 5 * time.Millisecond})
	if werr == nil {
		t.Fatal("mismatched worker joined")
	}
	var lost *CoordinatorLostError
	if errors.As(werr, &lost) {
		t.Fatalf("mismatch burned the reconnect budget instead of failing fast: %v", werr)
	}
	if !strings.Contains(werr.Error(), "seed") {
		t.Fatalf("error does not name the mismatch: %v", werr)
	}
	if err := <-roundErr; err == nil {
		t.Fatal("coordinator trained a round with no valid worker")
	}
}
