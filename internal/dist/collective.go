package dist

import (
	"fmt"
	"sync"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/frame"
	"skipper/internal/trace"
)

// Collective is one topology's gradient-combination engine. The coordinator
// drives it once per round attempt: Shard partitions the global batch,
// Exchange runs rank 0's local compute while combining every rank's
// gradients (on return the coordinator's gradient tensors hold the global
// sum), and Commit releases the round so every rank steps. Abort discards
// in-flight state after a rank fault; Close releases listeners.
type Collective interface {
	// Name is the topology name recorded in manifests and tooling.
	Name() string
	// Shard partitions the global batch indices across ranks.
	Shard(indices []int) [][]int
	// Exchange computes rank 0's shard and combines all ranks' gradients
	// into the coordinator's gradient tensors. A *rankFaultError return is
	// recoverable by vacate+replay; anything else is fatal.
	Exchange(r *round) error
	// Commit releases the round to the workers. Unreachable ranks are
	// vacated, not failed: the reduced gradient already exists, so the
	// survivors must step.
	Commit(r *round) error
	// Abort discards in-flight collective state after a round fault.
	Abort()
	// Close releases any listeners or persistent connections.
	Close()
}

// round carries one attempt's state through Shard/Exchange/Commit.
type round struct {
	num     int // committed-round index (c.round)
	attempt int
	split   dataset.Split
	indices []int
	shards  [][]int
	iter    int
	nb      int // exchange bucket count

	out       core.DPStepStats
	wireBytes int64

	// Overlap accounting: firstEvent is the earliest exchange activity
	// (first byte batch arriving or first own bucket flushed), computeDone
	// is when rank 0's local backward finished, exchangeEnd is when the
	// commit completed. The exchange work hidden under local compute is
	// busy − visible.
	firstEvent  time.Time
	computeDone time.Time
	exchangeEnd time.Time
}

// note records an exchange event time for overlap accounting.
func (r *round) note(t time.Time) {
	if r.firstEvent.IsZero() || t.Before(r.firstEvent) {
		r.firstEvent = t
	}
}

// finishOverlapStats derives ExchangeBusy and OverlapFrac once the round's
// timeline is complete: busy is the exchange's active window, visible is
// the part sticking out past rank 0's compute, and the overlap fraction is
// the hidden share 1 − visible/busy.
func (r *round) finishOverlapStats() {
	if r.firstEvent.IsZero() || !r.exchangeEnd.After(r.firstEvent) {
		return
	}
	busy := r.exchangeEnd.Sub(r.firstEvent)
	visible := r.exchangeEnd.Sub(r.computeDone)
	if visible < 0 {
		visible = 0
	}
	frac := 1 - float64(visible)/float64(busy)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	r.out.ExchangeBusy = busy
	r.out.OverlapFrac = frac
}

// ownBucket is one flushed bucket of the rank's own gradient contribution.
type ownBucket struct {
	b    int
	vals []float32 // full flat length; the collective slices its ranges
}

// bucketFeed snapshots the rank's own gradient buckets during local
// compute. Without overlap there is a single bucket, flushed after the
// backward completes. With overlap, the trainer's segment hook flushes the
// delta since the previous flush as each checkpoint segment's backward
// finishes — the bucket is ready while later segments still recompute.
// finish flushes whatever remains (the held final bucket, plus padding
// buckets when the strategy fired fewer hooks than dictated) and closes the
// channel.
type bucketFeed struct {
	flat   *flatGrads
	nb     int
	shadow []float32 // previous snapshot; delta source for overlap buckets
	next   int
	ch     chan ownBucket
	mu     sync.Mutex
	first  time.Time // when the first bucket was flushed
}

func newBucketFeed(flat *flatGrads, nb int) *bucketFeed {
	return &bucketFeed{flat: flat, nb: nb, ch: make(chan ownBucket, nb)}
}

// hook adapts the feed to core.Trainer.SetSegmentHook. The final bucket is
// held for finish (its frame carries the round stats, which only exist once
// the full batch returns).
func (f *bucketFeed) hook(done, total int) {
	if f.next < f.nb-1 {
		f.flush()
	}
}

// flush emits the next bucket: the raw gradients for a single-bucket feed,
// the delta since the previous flush otherwise.
func (f *bucketFeed) flush() {
	n := f.flat.size()
	cur := make([]float32, n)
	f.flat.copyOut(0, n, cur)
	if f.nb > 1 {
		if f.shadow == nil {
			f.shadow = make([]float32, n)
		}
		for i, v := range cur {
			cur[i] = v - f.shadow[i]
			f.shadow[i] = v
		}
	}
	f.mu.Lock()
	if f.first.IsZero() {
		f.first = time.Now()
	}
	f.mu.Unlock()
	f.ch <- ownBucket{b: f.next, vals: cur}
	f.next++
}

// firstFlush reports when the first bucket was emitted (zero if none).
func (f *bucketFeed) firstFlush() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.first
}

// finish flushes all remaining buckets (none at all if the rank sat the
// round out) and closes the feed.
func (f *bucketFeed) finish(contrib bool) {
	if contrib {
		for f.next < f.nb {
			f.flush()
		}
	}
	close(f.ch)
}

// close abandons the feed without flushing (local compute failed).
func (f *bucketFeed) close() { close(f.ch) }

// starCollective combines gradients through the coordinator: every worker
// uploads its (bucketed) contribution, rank 0 folds them in ascending rank
// order, and Commit broadcasts the reduced flat gradient. Uploads are read
// by per-rank goroutines concurrently with rank 0's own compute, so wire
// time hides under compute even in the default single-bucket mode — only
// the fold (cheap) waits for everything.
type starCollective struct {
	c *Coordinator
}

func (s *starCollective) Name() string { return TopologyStar }

func (s *starCollective) Shard(indices []int) [][]int {
	return core.Shard(indices, s.c.cfg.World)
}

func (s *starCollective) Abort() {}
func (s *starCollective) Close() {}

// starUpload is one rank's collected round contribution.
type starUpload struct {
	buckets [][]float32
	meta    gradsMeta // final frame's meta; carries the stats
	bytes   int64
	firstAt time.Time
	lastAt  time.Time
	err     error
}

func (s *starCollective) Exchange(r *round) error {
	c := s.c
	W := c.cfg.World

	ups := make([]*starUpload, W)
	var wg sync.WaitGroup
	for rank := 1; rank < W; rank++ {
		ups[rank] = &starUpload{}
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			s.readUploads(r, rank, ups[rank])
		}(rank)
	}

	// Rank 0's own compute. With overlap the segment hook streams delta
	// buckets into the feed; the single-bucket path snapshots once at the
	// end (bit-identical to folding the live tensors).
	feed := newBucketFeed(c.flat, r.nb)
	if r.nb > 1 {
		c.tr.SetSegmentHook(feed.hook)
	}
	st0, elapsed0, err := c.tr.ShardGrads(r.split, r.shards[0], r.iter, len(r.indices))
	if r.nb > 1 {
		c.tr.SetSegmentHook(nil)
	}
	r.computeDone = time.Now()
	if err != nil {
		feed.close()
		wg.Wait()
		return err
	}
	r.out.StepStats.Add(st0)
	r.out.SlowestReplica = elapsed0
	feed.finish(len(r.shards[0]) > 0)
	own := make([][]float32, 0, r.nb)
	for ob := range feed.ch {
		own = append(own, ob.vals)
	}
	if t := feed.firstFlush(); !t.IsZero() {
		r.note(t)
	}
	wg.Wait()

	for rank := 1; rank < W; rank++ {
		if ups[rank].err != nil {
			return ups[rank].err
		}
	}
	s.fold(r, own, ups)
	return nil
}

// readUploads collects rank's full round contribution: one meta-only frame
// if its shard is empty, r.nb bucket frames otherwise. Stale frames from an
// aborted prior attempt of the same round are drained — the worker computed
// bit-identical gradients for them, but the bookkeeping must not conflate
// attempts.
func (s *starCollective) readUploads(r *round, rank int, up *starUpload) {
	c := s.c
	conn := c.conns[rank]
	want := len(r.shards[rank])
	n := c.flat.size()
	fault := func(err error) {
		up.err = &rankFaultError{rank: rank, phase: "gather", err: err}
	}
	for {
		conn.SetReadDeadline(time.Now().Add(c.cfg.RoundTimeout))
		typ, payload, err := frame.Read(conn)
		now := time.Now()
		if err != nil {
			fault(err)
			return
		}
		switch typ {
		case msgGrads:
		case msgError:
			fault(decodeWorkerError(payload))
			return
		default:
			fault(fmt.Errorf("expected gradients, got message type %d", typ))
			return
		}
		var meta gradsMeta
		fb, err := decodeFlat(payload, &meta)
		if err != nil {
			fault(err)
			return
		}
		if meta.Round == r.num && meta.Attempt < r.attempt {
			continue // stale upload from an aborted attempt
		}
		if meta.Round != r.num || meta.Attempt != r.attempt || meta.Rank != rank {
			fault(fmt.Errorf("upload for round %d attempt %d rank %d, want %d/%d/%d",
				meta.Round, meta.Attempt, meta.Rank, r.num, r.attempt, rank))
			return
		}
		if meta.Count != want {
			fault(fmt.Errorf("upload covers %d samples, want %d", meta.Count, want))
			return
		}
		if up.firstAt.IsZero() {
			up.firstAt = now
		}
		up.lastAt = now
		up.bytes += int64(len(payload))
		if want == 0 {
			up.meta = meta // sat out: single meta-only frame, no buckets
			return
		}
		if meta.NBucket != r.nb || meta.Bucket != len(up.buckets) {
			fault(fmt.Errorf("bucket %d/%d out of sequence (have %d, want %d buckets)",
				meta.Bucket, meta.NBucket, len(up.buckets), r.nb))
			return
		}
		vals := make([]float32, n)
		if err := decodeFloats(fb, vals); err != nil {
			fault(err)
			return
		}
		up.buckets = append(up.buckets, vals)
		if meta.Bucket == r.nb-1 {
			up.meta = meta
			return
		}
	}
}

// fold combines all contributions into the coordinator's gradient tensors.
// Within each bucket, ranks accumulate in ascending order with empty shards
// skipped entirely — exactly core.ReduceGrads' walk, so the single-bucket
// path is bit-identical to the in-process reduction. Buckets then sum in
// flush order. It also folds the stats and straggler accounting.
func (s *starCollective) fold(r *round, own [][]float32, ups []*starUpload) {
	c := s.c
	n := c.flat.size()
	W := c.cfg.World

	bucket := func(rank, b int) []float32 {
		if rank == 0 {
			if len(r.shards[0]) == 0 {
				return nil
			}
			return own[b]
		}
		if len(r.shards[rank]) == 0 {
			return nil
		}
		return ups[rank].buckets[b]
	}

	if r.nb == 1 {
		// In place: rank 0's gradients are already the running sum.
		have := len(r.shards[0]) > 0
		for rank := 1; rank < W; rank++ {
			vals := bucket(rank, 0)
			if vals == nil {
				continue
			}
			if !have {
				c.flat.copyIn(0, n, vals)
				have = true
				continue
			}
			c.flat.addIn(0, n, vals)
		}
	} else {
		total := make([]float32, n)
		totalHave := false
		for b := 0; b < r.nb; b++ {
			var acc []float32
			for rank := 0; rank < W; rank++ {
				vals := bucket(rank, b)
				if vals == nil {
					continue
				}
				if acc == nil {
					acc = vals // first contributor seeds the bucket (slice is ours)
					continue
				}
				for i, v := range vals {
					acc[i] += v
				}
			}
			if acc == nil {
				continue
			}
			if !totalHave {
				copy(total, acc)
				totalHave = true
				continue
			}
			for i, v := range acc {
				total[i] += v
			}
		}
		c.flat.copyIn(0, n, total)
	}

	for rank := 1; rank < W; rank++ {
		up := ups[rank]
		r.wireBytes += up.bytes
		r.out.StepStats.Add(core.StepStats{Loss: up.meta.Loss, Correct: up.meta.Correct, N: up.meta.N})
		if d := time.Duration(up.meta.ComputeSeconds * float64(time.Second)); d > r.out.SlowestReplica {
			r.out.SlowestReplica = d
		}
		if !up.firstAt.IsZero() {
			r.note(up.firstAt)
		}
		if c.cfg.Straggler > 0 && up.lastAt.After(r.computeDone.Add(c.cfg.Straggler)) {
			c.cfg.Metrics.observeStraggler()
			c.cfg.Tracer.Event(trace.TrackDist, "straggler",
				trace.Attr{Key: "rank", Val: int64(rank)},
				trace.Attr{Key: "round", Val: int64(r.num)})
		}
	}
}

// Commit broadcasts the reduced flat gradient. A rank we cannot reach here
// is vacated (it will resync from a manifest on rejoin); the survivors and
// the coordinator step regardless — the round is already decided.
func (s *starCollective) Commit(r *round) error {
	c := s.c
	n := c.flat.size()
	vals := make([]float32, n)
	c.flat.copyOut(0, n, vals)
	pb, err := encodeFlat(reducedMeta{Round: r.num}, vals, c.cfg.Options.sparseWire())
	if err != nil {
		return err
	}
	for rank := 1; rank < c.cfg.World; rank++ {
		conn := c.conns[rank]
		if conn == nil {
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(c.cfg.RoundTimeout))
		if err := frame.Write(conn, msgReduced, pb); err != nil {
			c.vacate(rank, "broadcast")
			continue
		}
		r.wireBytes += int64(len(pb))
	}
	return nil
}
