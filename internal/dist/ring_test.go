package dist

import (
	"fmt"
	"net"
	"testing"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/faults"
)

// runDist trains the given batches over a real coordinator/worker fleet with
// the given exchange options (control plane over in-process pipes, ring data
// plane over localhost TCP) and returns the coordinator's trainer plus the
// per-round stats.
func runDist(t *testing.T, W, T int, opts Options, batches [][]int) (*core.Trainer, []core.DPStepStats) {
	t.Helper()
	ct := newTrainer(t, T)
	t.Cleanup(func() { ct.Close() })
	coord, err := NewCoordinator(ct, Config{
		World: W, Options: opts,
		RoundTimeout: 10 * time.Second, JoinTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, W-1)
	for i := 0; i < W-1; i++ {
		wtr := newTrainer(t, T)
		t.Cleanup(func() { wtr.Close() })
		go func() {
			errs <- RunWorker(wtr, WorkerConfig{
				Dial: pipeDial(coord), Options: opts,
				ReconnectWait: 10 * time.Millisecond,
			})
		}()
	}
	var stats []core.DPStepStats
	for _, b := range batches {
		st, err := coord.TrainRound(dataset.Train, b)
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
	}
	coord.Finish("test done")
	for i := 0; i < W-1; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	return ct, stats
}

// dataParallelRef trains the same batches through the in-process
// DataParallel simulation — the established bit-exact reference.
func dataParallelRef(t *testing.T, W, T int, batches [][]int) *core.Trainer {
	t.Helper()
	dp, err := core.NewDataParallel(W, func(int) (*core.Trainer, error) { return buildTrainer(T, 0) })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dp.Close() })
	for _, b := range batches {
		if _, err := dp.TrainBatchIndices(dataset.Train, b); err != nil {
			t.Fatal(err)
		}
	}
	return dp.Replicas[0]
}

// TestRingBitIdenticalToStarAndSerial is the ring topology's equivalence
// gate: at world 2 and 4, ring (with and without delta compression) must
// leave weights bit-identical to star and to the in-process DataParallel
// reference (itself proven bit-identical to serial training). The final
// ragged batch leaves high ranks with empty shards, exercising the ring's
// contribution-skip (Have=false) path.
func TestRingBitIdenticalToStarAndSerial(t *testing.T) {
	const T = 10
	batches := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}}
	for _, W := range []int{2, 4} {
		W := W
		t.Run(fmt.Sprintf("world%d", W), func(t *testing.T) {
			ref := dataParallelRef(t, W, T, batches)
			star, _ := runDist(t, W, T, Options{Topology: TopologyStar}, batches)
			requireSameWeights(t, "star vs DataParallel", star, ref)
			ring, rs := runDist(t, W, T, Options{Topology: TopologyRing}, batches)
			requireSameWeights(t, "ring vs DataParallel", ring, ref)
			delta, _ := runDist(t, W, T, Options{Topology: TopologyRing, Compress: CompressDelta}, batches)
			requireSameWeights(t, "ring+delta vs DataParallel", delta, ref)
			for i, st := range rs {
				if st.N != len(batches[i]) {
					t.Fatalf("ring round %d consumed %d samples, batch had %d", i, st.N, len(batches[i]))
				}
			}
		})
	}
}

// TestOverlapDeterministicAcrossTopologies: overlap regroups the float
// summation (per-segment deltas), so it is not bitwise vs serial — but it
// must be deterministic run-to-run, and star and ring must agree bitwise
// with each other (both fold buckets rank-ascending, buckets in flush
// order). The exchange-busy/overlap-fraction stats must be recorded sane.
func TestOverlapDeterministicAcrossTopologies(t *testing.T) {
	const T, W = 10, 2
	batches := [][]int{{0, 1, 2, 3}, {4, 5}}
	opts := Options{Topology: TopologyStar, Overlap: true}
	run1, st1 := runDist(t, W, T, opts, batches)
	run2, _ := runDist(t, W, T, opts, batches)
	requireSameWeights(t, "overlap star run1 vs run2", run1, run2)
	ringRun, _ := runDist(t, W, T, Options{Topology: TopologyRing, Overlap: true}, batches)
	requireSameWeights(t, "overlap ring vs star", ringRun, run1)
	for i, st := range st1 {
		if st.OverlapFrac < 0 || st.OverlapFrac > 1 {
			t.Fatalf("round %d overlap fraction %g outside [0,1]", i, st.OverlapFrac)
		}
		if st.ExchangeBusy < 0 {
			t.Fatalf("round %d negative exchange-busy %v", i, st.ExchangeBusy)
		}
	}
}

// TestRingWorkerDiesMidRingReplaysAndResyncs cuts a worker's ring-data
// connection partway through its chunk writes. Gradient-phase fault
// semantics apply: the round aborts, the ring is rebuilt under a bumped
// membership version with the reconnected (manifest-resynced) worker, and
// the replayed run must still end bit-identical to the DataParallel
// reference.
func TestRingWorkerDiesMidRingReplaysAndResyncs(t *testing.T) {
	const T, W = 10, 3
	batches := [][]int{{0, 1, 2}, {3, 4, 5}}
	ref := dataParallelRef(t, W, T, batches)

	faulted := false
	ringDial := func(worker int, base func(string) (net.Conn, error)) func(string) (net.Conn, error) {
		if worker != 0 {
			return base
		}
		return func(addr string) (net.Conn, error) {
			conn, err := base(addr)
			if err != nil {
				return nil, err
			}
			if faulted {
				return conn, nil
			}
			faulted = true
			fc := faults.NewConn(conn)
			fc.FailWritesAfter(1024) // dies mid-chunk on the reduce trip
			fc.CloseOnFault(true)
			return fc, nil
		}
	}

	ct := newTrainer(t, T)
	defer ct.Close()
	metrics := NewMetrics(W)
	coord, err := NewCoordinator(ct, Config{
		World: W, Options: Options{Topology: TopologyRing},
		RoundTimeout: 3 * time.Second, JoinTimeout: 10 * time.Second,
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, W-1)
	for i := 0; i < W-1; i++ {
		wtr := newTrainer(t, T)
		defer wtr.Close()
		i := i
		go func() {
			errs <- RunWorker(wtr, WorkerConfig{
				Dial: pipeDial(coord), Options: Options{Topology: TopologyRing},
				RingDial:      ringDial(i, WorkerConfig{IOTimeout: 3 * time.Second}.withDefaults().RingDial),
				IOTimeout:     2 * time.Second,
				ReconnectWait: 10 * time.Millisecond,
			})
		}()
	}
	for _, b := range batches {
		if _, err := coord.TrainRound(dataset.Train, b); err != nil {
			t.Fatal(err)
		}
	}
	coord.Finish("test done")
	for i := 0; i < W-1; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if !faulted {
		t.Fatal("fault was never injected")
	}
	requireSameWeights(t, "faulted ring vs DataParallel", ct, ref)
}
