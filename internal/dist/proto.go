package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"skipper/internal/serialize"
	"skipper/internal/tensor"
)

// protoVersion gates the handshake; bump on any wire-visible change.
const protoVersion = 1

// helloMsg opens a worker's session. Everything that must match for the
// lock-step invariant to hold is validated here, before a rank is assigned:
// a worker with a different seed, horizon, learning rate, or clip threshold
// would compute correct-looking but diverging steps.
type helloMsg struct {
	Proto     int     `json:"proto"`
	Strategy  string  `json:"strategy"`
	Optimizer string  `json:"optimizer"`
	Seed      uint64  `json:"seed"`
	T         int     `json:"t"`
	LR        float64 `json:"lr"`
	GradClip  float64 `json:"grad_clip"`
}

// welcomeMsg assigns the joining worker its seat.
type welcomeMsg struct {
	Rank  int `json:"rank"`
	World int `json:"world"`
	// Round is the next round the coordinator will run; the msgState
	// manifest that follows carries the matching trainer state.
	Round int `json:"round"`
}

// assignMsg dispatches one round's shard. Iteration is assigned by the
// coordinator so every rank derives identical RNG streams and a replayed
// round recomputes bit-identical gradients. Attempt distinguishes replays of
// the same round: a worker whose upload for attempt k was in flight when the
// round aborted leaves that upload buffered in the coordinator's stream, and
// the gather loop must be able to drain it without mistaking it for attempt
// k+1's (bitwise-identical) gradients.
type assignMsg struct {
	Round     int   `json:"round"`
	Attempt   int   `json:"attempt"`
	Epoch     int   `json:"epoch"`
	Iteration int   `json:"iteration"`
	GlobalN   int   `json:"global_n"`
	Split     int   `json:"split"`
	Indices   []int `json:"indices"`
}

// gradsMeta heads a worker's gradient upload.
type gradsMeta struct {
	Round   int     `json:"round"`
	Attempt int     `json:"attempt"`
	Rank    int     `json:"rank"`
	Count   int     `json:"count"` // shard size; 0 = sat the round out
	Loss    float64 `json:"loss"`
	Correct int     `json:"correct"`
	N       int     `json:"n"`
	// ComputeSeconds is the shard's TrainBatch wall time, reported so the
	// coordinator can attribute round latency to compute vs. exchange.
	ComputeSeconds float64 `json:"compute_seconds"`
}

// reducedMeta heads the coordinator's reduced-gradient broadcast.
type reducedMeta struct {
	Round int `json:"round"`
}

// abortMsg cancels an in-flight round before anyone has stepped.
type abortMsg struct {
	Round  int    `json:"round"`
	Reason string `json:"reason"`
}

// doneMsg ends training cleanly.
type doneMsg struct {
	Reason string `json:"reason"`
}

// errorMsg reports a failure to the peer. Permanent tells a worker not to
// bother reconnecting (e.g. a handshake validation mismatch).
type errorMsg struct {
	Message   string `json:"message"`
	Permanent bool   `json:"permanent"`
}

// encodeJSON renders a JSON-payload message.
func encodeJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding message: %w", err)
	}
	return b, nil
}

// decodeJSON parses a JSON-payload message.
func decodeJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("dist: decoding message: %w", err)
	}
	return nil
}

// encodeTensors renders a gradient message payload:
//
//	meta len u32 | meta JSON | SKPT tensor container
//
// reusing the hardened serialize codec for the tensor bytes.
func encodeTensors(meta any, ts []tensor.Named) ([]byte, error) {
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding tensor meta: %w", err)
	}
	var buf bytes.Buffer
	var head [4]byte
	binary.LittleEndian.PutUint32(head[:], uint32(len(mb)))
	buf.Write(head[:])
	buf.Write(mb)
	if err := serialize.SaveTensors(&buf, ts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeTensors parses a gradient message payload into meta and tensors.
// The meta length is capped against the payload before it sizes anything —
// this reads from the network.
func decodeTensors(payload []byte, meta any) ([]tensor.Named, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: tensor payload %d bytes", ErrBadFrame, len(payload))
	}
	n := binary.LittleEndian.Uint32(payload)
	if int64(n) > int64(len(payload)-4) {
		return nil, fmt.Errorf("%w: tensor meta length %d with %d bytes remaining", ErrBadFrame, n, len(payload)-4)
	}
	if err := json.Unmarshal(payload[4:4+n], meta); err != nil {
		return nil, fmt.Errorf("dist: decoding tensor meta: %w", err)
	}
	return serialize.LoadTensors(bytes.NewReader(payload[4+n:]))
}
