package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"skipper/internal/frame"
)

// protoVersion gates the handshake; bump on any wire-visible change.
// v2: flat-float gradient payloads (paramSig replaces per-round name
// tables), bucketed uploads, ring topology, stats/commit messages.
const protoVersion = 2

// helloMsg opens a worker's session. Everything that must match for the
// lock-step invariant to hold is validated here, before a rank is assigned:
// a worker with a different seed, horizon, learning rate, clip threshold,
// parameter layout, or exchange options would compute correct-looking but
// diverging steps.
type helloMsg struct {
	Proto     int     `json:"proto"`
	Strategy  string  `json:"strategy"`
	Optimizer string  `json:"optimizer"`
	Seed      uint64  `json:"seed"`
	T         int     `json:"t"`
	LR        float64 `json:"lr"`
	GradClip  float64 `json:"grad_clip"`
	// ParamSig fingerprints the parameter names/shapes/order (see paramSig),
	// replacing the per-round name tables v1 shipped with every upload.
	ParamSig string `json:"param_sig"`
	// Topology, Compress, and Overlap must match the coordinator's Options.
	Topology string `json:"topology"`
	Compress string `json:"compress"`
	Overlap  bool   `json:"overlap"`
	// RingAddr is the worker's ring-data listener address (ring topology
	// only; its successor's dial target).
	RingAddr string `json:"ring_addr,omitempty"`
}

// welcomeMsg assigns the joining worker its seat.
type welcomeMsg struct {
	Rank  int `json:"rank"`
	World int `json:"world"`
	// Round is the next round the coordinator will run; the msgState
	// manifest that follows carries the matching trainer state.
	Round int `json:"round"`
}

// ringMsg announces the ring membership: Addrs[r] is rank r's ring-data
// listener. Sent to every worker whenever membership changes; Version bumps
// on every change AND on every round abort, so chunks buffered in a
// poisoned connection can never leak into a rebuilt ring.
type ringMsg struct {
	Version int      `json:"version"`
	Addrs   []string `json:"addrs"`
}

// assignMsg dispatches one round's shard. Iteration is assigned by the
// coordinator so every rank derives identical RNG streams and a replayed
// round recomputes bit-identical gradients. Attempt distinguishes replays of
// the same round: a worker whose upload for attempt k was in flight when the
// round aborted leaves that upload buffered in the coordinator's stream, and
// the gather loop must be able to drain it without mistaking it for attempt
// k+1's (bitwise-identical) gradients.
type assignMsg struct {
	Round     int   `json:"round"`
	Attempt   int   `json:"attempt"`
	Epoch     int   `json:"epoch"`
	Iteration int   `json:"iteration"`
	GlobalN   int   `json:"global_n"`
	Split     int   `json:"split"`
	Indices   []int `json:"indices"`
	// NBuckets is the round's exchange bucket count (1 without overlap;
	// the strategy's segment count with it), dictated by the coordinator so
	// every rank flushes the identical bucket schedule.
	NBuckets int `json:"n_buckets,omitempty"`
	// RingVersion names the ring membership this round runs on (ring
	// topology only); a worker rebuilds its ring connections when its
	// current ones are older.
	RingVersion int `json:"ring_version,omitempty"`
}

// gradsMeta heads one gradient-bucket upload (star topology). The payload
// after the meta is the bucket's flat float range (see encodeFloats).
type gradsMeta struct {
	Round   int `json:"round"`
	Attempt int `json:"attempt"`
	Rank    int `json:"rank"`
	Count   int `json:"count"` // shard size; 0 = sat the round out
	Bucket  int `json:"bucket"`
	NBucket int `json:"n_buckets"`
	// Stats ride on the final bucket (Bucket == NBucket-1) so the default
	// single-bucket path needs exactly one frame per rank per round.
	Loss    float64 `json:"loss,omitempty"`
	Correct int     `json:"correct,omitempty"`
	N       int     `json:"n,omitempty"`
	// ComputeSeconds is the shard's TrainBatch wall time, reported so the
	// coordinator can attribute round latency to compute vs. exchange.
	ComputeSeconds float64 `json:"compute_seconds,omitempty"`
}

// statsMsg reports a ring-topology worker's round results on the control
// connection once its ring exchange completed — the coordinator's signal
// that the rank is ready to commit.
type statsMsg struct {
	Round          int     `json:"round"`
	Attempt        int     `json:"attempt"`
	Rank           int     `json:"rank"`
	Count          int     `json:"count"`
	Loss           float64 `json:"loss"`
	Correct        int     `json:"correct"`
	N              int     `json:"n"`
	ComputeSeconds float64 `json:"compute_seconds"`
	// WireBytes is what the rank's ring sends moved this round, so the
	// reduce-bytes metric stays exact under delta compression.
	WireBytes int64 `json:"wire_bytes"`
}

// reducedMeta heads the coordinator's reduced-gradient broadcast (star).
type reducedMeta struct {
	Round int `json:"round"`
}

// commitMsg is the ring topology's round go-ahead: every rank already holds
// the reduced gradient from the distribution trip, so commit is metadata
// only.
type commitMsg struct {
	Round int `json:"round"`
}

// ringHelloMsg opens a ring-data connection: the dialing rank names itself
// and the membership version it is joining under.
type ringHelloMsg struct {
	Version int `json:"version"`
	From    int `json:"from"`
}

// ringChunkMeta heads one ring-data chunk. Final distinguishes the
// distribution trip from the reduce trip; Have reports whether the payload
// carries any contribution yet (false until the first non-empty shard on
// the reduce path, so empty-shard ranks never perturb the sum).
type ringChunkMeta struct {
	Round   int  `json:"round"`
	Attempt int  `json:"attempt"`
	Version int  `json:"version"`
	Bucket  int  `json:"bucket"`
	Chunk   int  `json:"chunk"`
	Final   bool `json:"final,omitempty"`
	Have    bool `json:"have,omitempty"`
}

// abortMsg cancels an in-flight round before anyone has stepped.
type abortMsg struct {
	Round  int    `json:"round"`
	Reason string `json:"reason"`
}

// doneMsg ends training cleanly.
type doneMsg struct {
	Reason string `json:"reason"`
}

// errorMsg reports a failure to the peer. Permanent tells a worker not to
// bother reconnecting (e.g. a handshake validation mismatch).
type errorMsg struct {
	Message   string `json:"message"`
	Permanent bool   `json:"permanent"`
}

// encodeJSON renders a JSON-payload message.
func encodeJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding message: %w", err)
	}
	return b, nil
}

// decodeJSON parses a JSON-payload message.
func decodeJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("dist: decoding message: %w", err)
	}
	return nil
}

// encodeFlat renders a gradient message payload:
//
//	meta len u32 | meta JSON | float section (see encodeFloats)
//
// vals may be nil for meta-only frames.
func encodeFlat(meta any, vals []float32, sparse bool) ([]byte, error) {
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding payload meta: %w", err)
	}
	buf := make([]byte, 4, 4+len(mb))
	binary.LittleEndian.PutUint32(buf, uint32(len(mb)))
	buf = append(buf, mb...)
	if vals != nil {
		buf = append(buf, encodeFloats(vals, sparse)...)
	}
	return buf, nil
}

// decodeFlat parses a gradient message payload into meta and returns the
// float section (possibly empty), ready for decodeFloats. The meta length is
// capped against the payload before it sizes anything — this reads from the
// network.
func decodeFlat(payload []byte, meta any) ([]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: flat payload %d bytes", frame.ErrBad, len(payload))
	}
	n := binary.LittleEndian.Uint32(payload)
	if int64(n) > int64(len(payload)-4) {
		return nil, fmt.Errorf("%w: flat meta length %d with %d bytes remaining", frame.ErrBad, n, len(payload)-4)
	}
	if err := json.Unmarshal(payload[4:4+n], meta); err != nil {
		return nil, fmt.Errorf("dist: decoding payload meta: %w", err)
	}
	return payload[4+n:], nil
}
