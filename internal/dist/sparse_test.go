package dist

import (
	"math"
	"math/rand"
	"testing"

	"skipper/internal/tensor"
)

func namedSet(t *testing.T, sizes ...int) []tensor.Named {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var out []tensor.Named
	for i, n := range sizes {
		tt := tensor.New(n)
		for j := range tt.Data {
			tt.Data[j] = float32(rng.NormFloat64())
		}
		out = append(out, tensor.Named{Name: string(rune('a' + i)), T: tt})
	}
	return out
}

// Every bucket split must tile the flat range exactly, and
// copyOut→copyIn/addIn must be exact inverses over tensor boundaries.
func TestFlatGradsBucketsTileAndRoundTrip(t *testing.T) {
	grads := namedSet(t, 7, 1, 16, 3)
	f := newFlatGrads(grads)
	if f.size() != 27 {
		t.Fatalf("size = %d, want 27", f.size())
	}
	for nb := 1; nb <= 6; nb++ {
		prev := 0
		for b := 0; b < nb; b++ {
			lo, hi := f.bucketRange(b, nb)
			if lo != prev {
				t.Fatalf("nb=%d bucket %d starts at %d, want %d", nb, b, lo, prev)
			}
			if hi < lo {
				t.Fatalf("nb=%d bucket %d empty range [%d,%d)", nb, b, lo, hi)
			}
			prev = hi
		}
		if prev != f.size() {
			t.Fatalf("nb=%d buckets cover %d of %d", nb, prev, f.size())
		}
	}

	// Round trip through a snapshot: copyOut, zero, copyIn restores bits.
	want := make([]float32, f.size())
	f.copyOut(0, f.size(), want)
	for b := 0; b < 5; b++ {
		lo, hi := f.bucketRange(b, 5)
		buf := make([]float32, hi-lo)
		f.copyOut(lo, hi, buf)
		zero := make([]float32, hi-lo)
		f.copyIn(lo, hi, zero)
		f.copyIn(lo, hi, buf)
	}
	got := make([]float32, f.size())
	f.copyOut(0, f.size(), got)
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("flat[%d] changed: % x -> % x", i, want[i], got[i])
		}
	}

	// addIn performs data[i] += src[i].
	lo, hi := f.bucketRange(1, 3)
	ones := make([]float32, hi-lo)
	for i := range ones {
		ones[i] = 1
	}
	f.addIn(lo, hi, ones)
	after := make([]float32, f.size())
	f.copyOut(0, f.size(), after)
	for i := range after {
		exp := want[i]
		if i >= lo && i < hi {
			exp = want[i] + 1
		}
		if after[i] != exp {
			t.Fatalf("addIn flat[%d] = %v, want %v", i, after[i], exp)
		}
	}
}

func TestParamSigDetectsShapeAndOrder(t *testing.T) {
	a := namedSet(t, 4, 6)
	b := namedSet(t, 4, 6)
	if paramSig(a) != paramSig(b) {
		t.Fatal("identical layouts produced different signatures")
	}
	c := namedSet(t, 6, 4)
	if paramSig(a) == paramSig(c) {
		t.Fatal("different shapes produced the same signature")
	}
	swapped := []tensor.Named{a[1], a[0]}
	if paramSig(a) == paramSig(swapped) {
		t.Fatal("reordered params produced the same signature")
	}
}

// The codec must round-trip every bit pattern exactly — including −0.0,
// denormals, and NaN — for all-zero, sparse, and dense inputs, and the
// sparse layout must actually be chosen (and smaller) for near-zero data.
func TestFloatCodecExactRoundTrip(t *testing.T) {
	nan := math.Float32frombits(0x7fc00001)
	cases := []struct {
		name   string
		vals   []float32
		sparse bool
		mode   byte
	}{
		{"all_zero_sparse", make([]float32, 1000), true, wireSparse},
		{"all_zero_dense", make([]float32, 1000), false, wireDense},
		{"dense_random", nil, true, wireDense}, // filled below; stays dense
		{"mostly_zero", func() []float32 {
			v := make([]float32, 997)
			v[3] = 1.5
			v[500] = float32(math.Copysign(0, -1)) // −0.0 is a nonzero bit pattern
			v[996] = nan
			return v
		}(), true, wireSparse},
		{"empty", nil, true, wireDense},
		{"single", []float32{3.25}, true, wireDense},
	}
	rng := rand.New(rand.NewSource(7))
	dense := make([]float32, 512)
	for i := range dense {
		dense[i] = float32(rng.NormFloat64())
	}
	cases[2].vals = dense

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := encodeFloats(tc.vals, tc.sparse)
			if buf[0] != tc.mode {
				t.Fatalf("mode = %d, want %d", buf[0], tc.mode)
			}
			out := make([]float32, len(tc.vals))
			for i := range out {
				out[i] = 99 // decode must overwrite every slot
			}
			if err := decodeFloats(buf, out); err != nil {
				t.Fatal(err)
			}
			for i := range tc.vals {
				if math.Float32bits(out[i]) != math.Float32bits(tc.vals[i]) {
					t.Fatalf("bit %d: %08x != %08x", i, math.Float32bits(out[i]), math.Float32bits(tc.vals[i]))
				}
			}
			if tc.mode == wireSparse && len(buf) >= 5+4*len(tc.vals) {
				t.Fatalf("sparse layout not smaller: %d vs dense %d", len(buf), 5+4*len(tc.vals))
			}
		})
	}
}

// Truncated or corrupted payloads must fail loudly, never mis-decode.
func TestFloatCodecRejectsMalformed(t *testing.T) {
	vals := make([]float32, 64)
	vals[7] = 2.5
	for _, sparse := range []bool{true, false} {
		buf := encodeFloats(vals, sparse)
		for cut := 0; cut < len(buf); cut++ {
			if err := decodeFloats(buf[:cut], make([]float32, 64)); err == nil {
				t.Fatalf("sparse=%v: accepted truncation to %d of %d bytes", sparse, cut, len(buf))
			}
		}
		if err := decodeFloats(buf, make([]float32, 63)); err == nil {
			t.Fatalf("sparse=%v: accepted wrong destination length", sparse)
		}
	}
	if err := decodeFloats([]byte{9, 0, 0, 0, 0}, nil); err == nil {
		t.Fatal("accepted unknown mode byte")
	}
	// A bitmap lying about its population must be caught both ways.
	buf := encodeFloats(vals, true)
	buf[5] |= 0x02 // set an extra bitmap bit without adding a value
	if err := decodeFloats(buf, make([]float32, 64)); err == nil {
		t.Fatal("accepted bitmap population > nnz")
	}
}
