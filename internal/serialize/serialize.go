// Package serialize persists and restores network weights, so pre-trained
// (hybrid-protocol) initialisations and finished models can be moved between
// processes — the counterpart of the reference implementation's
// state_dict save/load.
//
// The format is a self-describing little-endian binary container:
//
//	magic "SKPW" | version u32 | param count u32 |
//	repeat: name len u32 | name bytes | rank u32 | dims u32... | f32 data |
//	crc32 (IEEE) of everything before it
//
// Loading is strict: every parameter in the file must match a parameter of
// the target network by name and shape, with no extras on either side.
package serialize

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"skipper/internal/layers"
	"skipper/internal/tensor"
)

const (
	magic   = "SKPW"
	version = 1

	// tensorMagic heads the generic named-tensor container written by
	// SaveTensors (optimizer state, batch-norm buffers, ...).
	tensorMagic = "SKPT"
)

// ErrTruncated reports a file that ends before its container structure
// completes — the signature of a crash mid-write or of reading a checkpoint
// while it is being replaced. Callers that hot-reload can treat it as
// transient and retry; a checksum mismatch, by contrast, is permanent
// corruption.
var ErrTruncated = errors.New("serialize: truncated file")

// ErrHeader reports a structurally implausible length field — a count, name
// length, rank, or dimension that could not possibly fit the remaining input.
// Nothing read from an untrusted stream (a checkpoint file, a network peer)
// may size an allocation before passing these caps: a hostile header must
// fail here, not in the allocator. A CRC match does not rule this out — an
// attacker controls the checksum too.
var ErrHeader = errors.New("serialize: implausible header")

// Save writes all trainable parameters of net to w, ending with a CRC-32 of
// the preceding bytes.
func Save(w io.Writer, net *layers.Network) error {
	var body bytes.Buffer
	bw := bufio.NewWriter(&body)

	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	params := net.Params()
	writeU32(bw, version)
	writeU32(bw, uint32(len(params)))
	for _, p := range params {
		writeU32(bw, uint32(len(p.Name)))
		if _, err := bw.WriteString(p.Name); err != nil {
			return fmt.Errorf("serialize: %w", err)
		}
		shape := p.W.Shape()
		writeU32(bw, uint32(len(shape)))
		for _, d := range shape {
			writeU32(bw, uint32(d))
		}
		for _, v := range p.W.Data {
			writeU32(bw, math.Float32bits(v))
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	sum := crc32.ChecksumIEEE(body.Bytes())
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	return nil
}

// Load restores parameters into net from r, verifying the trailing
// checksum. The network must already be built with the same topology.
func Load(r io.Reader, net *layers.Network) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	if len(raw) < len(magic)+12 {
		return fmt.Errorf("%w (%d bytes)", ErrTruncated, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("serialize: checksum mismatch (file corrupt)")
	}
	br := bytes.NewReader(body)

	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("serialize: reading magic: %w", err)
	}
	if string(head) != magic {
		return fmt.Errorf("serialize: bad magic %q (not a skipper weight file)", head)
	}
	ver, err := readU32(br)
	if err != nil {
		return err
	}
	if ver != version {
		return fmt.Errorf("serialize: unsupported version %d", ver)
	}
	count, err := readU32(br)
	if err != nil {
		return err
	}
	params := net.Params()
	if int(count) != len(params) {
		return fmt.Errorf("serialize: file has %d parameters, network has %d", count, len(params))
	}
	byName := map[string]layers.Param{}
	for _, p := range params {
		byName[p.Name] = p
	}
	for i := 0; i < int(count); i++ {
		nameLen, err := readU32(br)
		if err != nil {
			return err
		}
		if nameLen > 4096 || int(nameLen) > br.Len() {
			return fmt.Errorf("%w: name length %d with %d bytes remaining", ErrHeader, nameLen, br.Len())
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return fmt.Errorf("serialize: reading name: %w", err)
		}
		name := string(nameBuf)
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("serialize: file parameter %q not present in network (or duplicated)", name)
		}
		delete(byName, name)
		rank, err := readU32(br)
		if err != nil {
			return err
		}
		if int(rank) != p.W.Rank() {
			return fmt.Errorf("serialize: rank mismatch for %q: file %d, network %d", name, rank, p.W.Rank())
		}
		vol := 1
		for d := 0; d < int(rank); d++ {
			dim, err := readU32(br)
			if err != nil {
				return err
			}
			if p.W.Dim(d) != int(dim) {
				return fmt.Errorf("serialize: shape mismatch for %q at dim %d", name, d)
			}
			vol *= int(dim)
		}
		for j := 0; j < vol; j++ {
			bits, err := readU32(br)
			if err != nil {
				return err
			}
			p.W.Data[j] = math.Float32frombits(bits)
		}
	}
	if br.Len() != 0 {
		return fmt.Errorf("serialize: %d trailing bytes after last parameter", br.Len())
	}
	return nil
}

// SaveFile writes net's weights to path atomically: the bytes land in a
// temp file that is fsynced before an atomic rename, and the directory is
// fsynced after, so a crash at any instant leaves either the old complete
// file or the new complete file — never a torn or missing one.
func SaveFile(path string, net *layers.Network) error {
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf.Bytes())
}

// WriteFileAtomic durably replaces path with data using the
// write-temp → fsync → rename → fsync-dir sequence. It is the single
// crash-safety primitive every checkpoint writer in the repo goes through.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serialize: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serialize: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serialize: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serialize: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	// Directory fsync is advisory on some filesystems; a failure there
	// still leaves the rename visible, so only report close errors.
	_ = d.Sync()
	if err := d.Close(); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	return nil
}

// LoadInto builds a fresh network with build and restores its weights from
// path, leaving any existing network untouched. This is the validate-before-
// swap primitive hot reload is built on: a corrupt or mismatched checkpoint
// fails here, before anything observable changes, and the caller keeps
// serving the old network.
func LoadInto(path string, build func() (*layers.Network, error)) (*layers.Network, error) {
	net, err := build()
	if err != nil {
		return nil, fmt.Errorf("serialize: building network for %s: %w", path, err)
	}
	if err := LoadFile(path, net); err != nil {
		return nil, err
	}
	return net, nil
}

// LoadFile restores net's weights from path.
func LoadFile(path string, net *layers.Network) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	defer f.Close()
	return Load(f, net)
}

// SaveTensors writes named tensors to w in the same self-describing
// container format as Save, under the "SKPT" magic:
//
//	magic "SKPT" | version u32 | tensor count u32 |
//	repeat: name len u32 | name bytes | rank u32 | dims u32... | f32 data |
//	crc32 (IEEE) of everything before it
//
// It generalises the weight container to arbitrary persistent float32 state
// (optimizer moments, batch-norm running statistics) for the run-state
// manifest.
func SaveTensors(w io.Writer, ts []tensor.Named) error {
	var body bytes.Buffer
	bw := bufio.NewWriter(&body)
	if _, err := bw.WriteString(tensorMagic); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	writeU32(bw, version)
	writeU32(bw, uint32(len(ts)))
	for _, nt := range ts {
		writeU32(bw, uint32(len(nt.Name)))
		if _, err := bw.WriteString(nt.Name); err != nil {
			return fmt.Errorf("serialize: %w", err)
		}
		shape := nt.T.Shape()
		writeU32(bw, uint32(len(shape)))
		for _, d := range shape {
			writeU32(bw, uint32(d))
		}
		for _, v := range nt.T.Data {
			writeU32(bw, math.Float32bits(v))
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	sum := crc32.ChecksumIEEE(body.Bytes())
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	return nil
}

// LoadTensors reads a SaveTensors container from r, verifying the trailing
// checksum, and returns freshly allocated tensors. The caller matches them
// against live state by name (see tensor.CopyNamed).
func LoadTensors(r io.Reader) ([]tensor.Named, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	if len(raw) < len(tensorMagic)+12 {
		return nil, fmt.Errorf("%w (%d bytes)", ErrTruncated, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("serialize: checksum mismatch (state corrupt)")
	}
	br := bytes.NewReader(body)
	head := make([]byte, len(tensorMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("serialize: reading magic: %w", err)
	}
	if string(head) != tensorMagic {
		return nil, fmt.Errorf("serialize: bad magic %q (not a skipper state section)", head)
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("serialize: unsupported state version %d", ver)
	}
	count, err := readU32(br)
	if err != nil {
		return nil, err
	}
	// Every tensor costs at least 8 header bytes (name length + rank), so a
	// count beyond remaining/8 cannot be honest — reject it before it sizes
	// the output slice.
	if int64(count) > int64(br.Len())/8 {
		return nil, fmt.Errorf("%w: tensor count %d with %d bytes remaining", ErrHeader, count, br.Len())
	}
	out := make([]tensor.Named, 0, count)
	for i := 0; i < int(count); i++ {
		nameLen, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if nameLen > 4096 || int(nameLen) > br.Len() {
			return nil, fmt.Errorf("%w: name length %d with %d bytes remaining", ErrHeader, nameLen, br.Len())
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, fmt.Errorf("serialize: reading name: %w", err)
		}
		rank, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if rank > 8 {
			return nil, fmt.Errorf("%w: rank %d", ErrHeader, rank)
		}
		dims := make([]int, rank)
		// maxVol is the ceiling any honest volume can reach: one float32 per
		// remaining payload byte / 4. Capping each dimension and the running
		// product against it keeps the int64 arithmetic overflow-free (both
		// factors stay below 2^62 before every multiply).
		maxVol := int64(br.Len())/4 + 1
		vol := int64(1)
		for d := range dims {
			v, err := readU32(br)
			if err != nil {
				return nil, err
			}
			dims[d] = int(v)
			if int64(v) > maxVol {
				return nil, fmt.Errorf("%w: tensor %q dim %d = %d exceeds payload", ErrHeader, nameBuf, d, v)
			}
			if v != 0 && vol > maxVol/int64(v) {
				return nil, fmt.Errorf("%w: tensor %q volume exceeds payload", ErrHeader, nameBuf)
			}
			vol *= int64(v)
		}
		if vol > int64(br.Len())/4 {
			return nil, fmt.Errorf("%w: tensor %q volume %d exceeds payload", ErrHeader, nameBuf, vol)
		}
		tt := tensor.New(dims...)
		for j := 0; j < int(vol); j++ {
			bits, err := readU32(br)
			if err != nil {
				return nil, err
			}
			tt.Data[j] = math.Float32frombits(bits)
		}
		out = append(out, tensor.Named{Name: string(nameBuf), T: tt})
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("serialize: %d trailing bytes after last tensor", br.Len())
	}
	return out, nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Write(buf[:]) // bufio.Writer errors surface at Flush
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("serialize: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}
