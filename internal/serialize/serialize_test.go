package serialize

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	src, err := models.Build("vgg5", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb so we are not just round-tripping the deterministic init.
	r := tensor.NewRNG(99)
	for _, p := range src.Params() {
		r.FillNorm(p.W, 0, 1)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst, err := models.Build("vgg5", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W.Data {
			if sp[i].W.Data[j] != dp[i].W.Data[j] {
				t.Fatalf("weight mismatch at %s[%d]", sp[i].Name, j)
			}
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	net, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xFF
	if err := Load(bytes.NewReader(raw), net); err == nil {
		t.Fatal("corrupted payload must fail the checksum")
	}
}

func TestLoadRejectsWrongTopology(t *testing.T) {
	a, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := models.Build("vgg5", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), b); err == nil {
		t.Fatal("loading into a different topology must fail")
	}
	// Same topology, different width: shapes mismatch.
	c, err := models.Build("customnet", models.Options{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), c); err == nil {
		t.Fatal("loading into a different width must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	net, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader([]byte("definitely not a weight file, padded long enough")), net); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if err := Load(bytes.NewReader(nil), net); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "weights.skpw")
	net, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
	// Atomic write leaves no temp file behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	other, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tensor.NewRNG(5).FillNorm(other.Params()[0].W, 0, 9)
	if err := LoadFile(path, other); err != nil {
		t.Fatal(err)
	}
	if other.Params()[0].W.Data[0] != net.Params()[0].W.Data[0] {
		t.Fatal("LoadFile did not restore weights")
	}
	if err := LoadFile(filepath.Join(dir, "missing.skpw"), net); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestLoadIntoRoundTrip covers the constructor hot reload depends on,
// including the two failure modes a reload must survive: a corrupt file
// (CRC failure) and a checkpoint for a different topology (shape mismatch).
func TestLoadIntoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	build := func() (*layers.Network, error) {
		return models.Build("customnet", models.Options{Width: 0.5})
	}

	// Happy path: a perturbed net round-trips into a fresh network.
	src, err := build()
	if err != nil {
		t.Fatal(err)
	}
	tensor.NewRNG(41).FillNorm(src.Params()[0].W, 0, 1)
	path := filepath.Join(dir, "ok.skpw")
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInto(path, build)
	if err != nil {
		t.Fatal(err)
	}
	if got == src {
		t.Fatal("LoadInto must construct a fresh network")
	}
	sp, gp := src.Params(), got.Params()
	for i := range sp {
		for j := range sp[i].W.Data {
			if sp[i].W.Data[j] != gp[i].W.Data[j] {
				t.Fatalf("weight mismatch at %s[%d]", sp[i].Name, j)
			}
		}
	}

	// Corrupt CRC: flip one payload byte after the header.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	bad := filepath.Join(dir, "corrupt.skpw")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInto(bad, build); err == nil {
		t.Fatal("corrupt checkpoint must fail LoadInto")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum error, got: %v", err)
	}

	// Shape mismatch: a valid checkpoint for a wider build of the same
	// topology must be rejected by the narrow builder.
	wide, err := models.Build("customnet", models.Options{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	widePath := filepath.Join(dir, "wide.skpw")
	if err := SaveFile(widePath, wide); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInto(widePath, build); err == nil {
		t.Fatal("shape-mismatched checkpoint must fail LoadInto")
	} else if !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("want shape/rank mismatch error, got: %v", err)
	}

	// Missing file and broken builder both surface errors.
	if _, err := LoadInto(filepath.Join(dir, "missing.skpw"), build); err == nil {
		t.Fatal("missing file must fail LoadInto")
	}
	if _, err := LoadInto(path, func() (*layers.Network, error) {
		return nil, os.ErrInvalid
	}); err == nil {
		t.Fatal("builder failure must surface")
	}
}
