package serialize

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	src, err := models.Build("vgg5", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb so we are not just round-tripping the deterministic init.
	r := tensor.NewRNG(99)
	for _, p := range src.Params() {
		r.FillNorm(p.W, 0, 1)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst, err := models.Build("vgg5", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W.Data {
			if sp[i].W.Data[j] != dp[i].W.Data[j] {
				t.Fatalf("weight mismatch at %s[%d]", sp[i].Name, j)
			}
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	net, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xFF
	if err := Load(bytes.NewReader(raw), net); err == nil {
		t.Fatal("corrupted payload must fail the checksum")
	}
}

// TestLoadRejectsTruncation covers the crash-mid-write signature: a prefix
// of a valid file must be rejected at every truncation point, and the very
// short prefixes must identify themselves as ErrTruncated so hot-reload
// paths can classify them as transient.
func TestLoadRejectsTruncation(t *testing.T) {
	net, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Every prefix strictly shorter than the file must fail to load. Step
	// through all short prefixes and sample the long ones.
	for n := 0; n < len(raw)-1; n++ {
		if n > 64 && n%97 != 0 {
			continue
		}
		if err := Load(bytes.NewReader(raw[:n]), net); err == nil {
			t.Fatalf("truncation at byte %d/%d must fail", n, len(raw))
		}
	}
	if err := Load(bytes.NewReader(raw[:8]), net); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short prefix should be ErrTruncated, got: %v", err)
	}
	// The intact file still loads after all that.
	if err := Load(bytes.NewReader(raw), net); err != nil {
		t.Fatalf("intact file failed: %v", err)
	}
}

func TestLoadRejectsWrongTopology(t *testing.T) {
	a, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := models.Build("vgg5", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), b); err == nil {
		t.Fatal("loading into a different topology must fail")
	}
	// Same topology, different width: shapes mismatch.
	c, err := models.Build("customnet", models.Options{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), c); err == nil {
		t.Fatal("loading into a different width must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	net, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader([]byte("definitely not a weight file, padded long enough")), net); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if err := Load(bytes.NewReader(nil), net); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "weights.skpw")
	net, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
	// Atomic write leaves no temp file behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	other, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tensor.NewRNG(5).FillNorm(other.Params()[0].W, 0, 9)
	if err := LoadFile(path, other); err != nil {
		t.Fatal(err)
	}
	if other.Params()[0].W.Data[0] != net.Params()[0].W.Data[0] {
		t.Fatal("LoadFile did not restore weights")
	}
	if err := LoadFile(filepath.Join(dir, "missing.skpw"), net); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestSaveTensorsRoundTrip(t *testing.T) {
	a := tensor.FromSlice([]float32{1.5, -2.25, 3e-9}, 3)
	b := tensor.New(2, 2)
	tensor.NewRNG(7).FillNorm(b, 0, 1)
	in := []tensor.Named{{Name: "adam.m.w", T: a}, {Name: "bn.running_var", T: b}}

	var buf bytes.Buffer
	if err := SaveTensors(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadTensors(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d tensors, want 2", len(out))
	}
	for i := range in {
		if out[i].Name != in[i].Name {
			t.Fatalf("name %q, want %q", out[i].Name, in[i].Name)
		}
		for j := range in[i].T.Data {
			if out[i].T.Data[j] != in[i].T.Data[j] {
				t.Fatalf("%s[%d] = %v, want %v", in[i].Name, j, out[i].T.Data[j], in[i].T.Data[j])
			}
		}
	}

	// Corruption and truncation are both rejected.
	raw := buf.Bytes()
	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0x80
	if _, err := LoadTensors(bytes.NewReader(flip)); err == nil {
		t.Fatal("corrupt state section must fail the checksum")
	}
	if _, err := LoadTensors(bytes.NewReader(raw[:6])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short state section should be ErrTruncated, got: %v", err)
	}
	if _, err := LoadTensors(bytes.NewReader(raw[:len(raw)-8])); err == nil {
		t.Fatal("truncated state section must fail")
	}
	// Empty sets round-trip too (SGD without momentum).
	var empty bytes.Buffer
	if err := SaveTensors(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if out, err := LoadTensors(bytes.NewReader(empty.Bytes())); err != nil || len(out) != 0 {
		t.Fatalf("empty round-trip: %v, %d tensors", err, len(out))
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "second" {
		t.Fatalf("got %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

// TestLoadIntoRoundTrip covers the constructor hot reload depends on,
// including the two failure modes a reload must survive: a corrupt file
// (CRC failure) and a checkpoint for a different topology (shape mismatch).
func TestLoadIntoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	build := func() (*layers.Network, error) {
		return models.Build("customnet", models.Options{Width: 0.5})
	}

	// Happy path: a perturbed net round-trips into a fresh network.
	src, err := build()
	if err != nil {
		t.Fatal(err)
	}
	tensor.NewRNG(41).FillNorm(src.Params()[0].W, 0, 1)
	path := filepath.Join(dir, "ok.skpw")
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInto(path, build)
	if err != nil {
		t.Fatal(err)
	}
	if got == src {
		t.Fatal("LoadInto must construct a fresh network")
	}
	sp, gp := src.Params(), got.Params()
	for i := range sp {
		for j := range sp[i].W.Data {
			if sp[i].W.Data[j] != gp[i].W.Data[j] {
				t.Fatalf("weight mismatch at %s[%d]", sp[i].Name, j)
			}
		}
	}

	// Corrupt CRC: flip one payload byte after the header.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	bad := filepath.Join(dir, "corrupt.skpw")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInto(bad, build); err == nil {
		t.Fatal("corrupt checkpoint must fail LoadInto")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum error, got: %v", err)
	}

	// Shape mismatch: a valid checkpoint for a wider build of the same
	// topology must be rejected by the narrow builder.
	wide, err := models.Build("customnet", models.Options{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	widePath := filepath.Join(dir, "wide.skpw")
	if err := SaveFile(widePath, wide); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInto(widePath, build); err == nil {
		t.Fatal("shape-mismatched checkpoint must fail LoadInto")
	} else if !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("want shape/rank mismatch error, got: %v", err)
	}

	// Missing file and broken builder both surface errors.
	if _, err := LoadInto(filepath.Join(dir, "missing.skpw"), build); err == nil {
		t.Fatal("missing file must fail LoadInto")
	}
	if _, err := LoadInto(path, func() (*layers.Network, error) {
		return nil, os.ErrInvalid
	}); err == nil {
		t.Fatal("builder failure must surface")
	}
}
