package serialize

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"skipper/internal/models"
	"skipper/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	src, err := models.Build("vgg5", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb so we are not just round-tripping the deterministic init.
	r := tensor.NewRNG(99)
	for _, p := range src.Params() {
		r.FillNorm(p.W, 0, 1)
	}
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst, err := models.Build("vgg5", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W.Data {
			if sp[i].W.Data[j] != dp[i].W.Data[j] {
				t.Fatalf("weight mismatch at %s[%d]", sp[i].Name, j)
			}
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	net, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xFF
	if err := Load(bytes.NewReader(raw), net); err == nil {
		t.Fatal("corrupted payload must fail the checksum")
	}
}

func TestLoadRejectsWrongTopology(t *testing.T) {
	a, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := models.Build("vgg5", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), b); err == nil {
		t.Fatal("loading into a different topology must fail")
	}
	// Same topology, different width: shapes mismatch.
	c, err := models.Build("customnet", models.Options{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), c); err == nil {
		t.Fatal("loading into a different width must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	net, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader([]byte("definitely not a weight file, padded long enough")), net); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if err := Load(bytes.NewReader(nil), net); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "weights.skpw")
	net, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
	// Atomic write leaves no temp file behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	other, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tensor.NewRNG(5).FillNorm(other.Params()[0].W, 0, 9)
	if err := LoadFile(path, other); err != nil {
		t.Fatal(err)
	}
	if other.Params()[0].W.Data[0] != net.Params()[0].W.Data[0] {
		t.Fatal("LoadFile did not restore weights")
	}
	if err := LoadFile(filepath.Join(dir, "missing.skpw"), net); err == nil {
		t.Fatal("missing file must error")
	}
}
