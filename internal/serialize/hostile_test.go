package serialize

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"skipper/internal/models"
	"skipper/internal/tensor"
)

// u32 renders one little-endian length field.
func u32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

// sealed appends a valid CRC to a hand-built container body — a hostile
// header arrives with a correct checksum, so the CRC gate must not be the
// thing protecting the parser.
func sealed(parts ...[]byte) []byte {
	body := bytes.Join(parts, nil)
	return append(body, u32(crc32.ChecksumIEEE(body))...)
}

func TestLoadTensorsRejectsHostileHeaders(t *testing.T) {
	pad := make([]byte, 4096) // plausible-looking payload bytes
	cases := []struct {
		name string
		raw  []byte
	}{
		{"huge count", sealed([]byte(tensorMagic), u32(version), u32(0xFFFFFFFF), pad)},
		{"name past end", sealed([]byte(tensorMagic), u32(version), u32(1), u32(4000), pad[:16])},
		{"rank too deep", sealed([]byte(tensorMagic), u32(version), u32(1), u32(1), []byte("a"), u32(9), pad)},
		{"dim past end", sealed([]byte(tensorMagic), u32(version), u32(1), u32(1), []byte("a"), u32(1), u32(0x40000000), pad[:64])},
		{"volume overflow", sealed([]byte(tensorMagic), u32(version), u32(1), u32(1), []byte("a"), u32(8),
			u32(500), u32(500), u32(500), u32(500), u32(500), u32(500), u32(500), u32(500), pad)},
		{"volume past end", sealed([]byte(tensorMagic), u32(version), u32(1), u32(1), []byte("a"), u32(2), u32(40), u32(40), pad[:64])},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadTensors(bytes.NewReader(tc.raw))
			if !errors.Is(err, ErrHeader) {
				t.Fatalf("want ErrHeader, got %v", err)
			}
		})
	}
}

func TestLoadRejectsHostileNameLength(t *testing.T) {
	net, err := models.Build("customnet", models.Options{Width: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Correct magic, version, and parameter count, then a name length far
	// beyond the remaining bytes.
	raw := sealed([]byte(magic), u32(version), u32(uint32(len(net.Params()))), u32(4000), make([]byte, 16))
	if err := Load(bytes.NewReader(raw), net); !errors.Is(err, ErrHeader) {
		t.Fatalf("want ErrHeader, got %v", err)
	}
}

// TestLoadTensorsCorruptHeaderSweep is the fuzz-style gate: flip every byte
// of a valid container's header region (checksum re-sealed each time so the
// parser, not the CRC, is what's being exercised) and require LoadTensors to
// return — an error or a benign success — without panicking or attempting an
// absurd allocation.
func TestLoadTensorsCorruptHeaderSweep(t *testing.T) {
	ts := []tensor.Named{
		{Name: "a", T: tensor.New(2, 3)},
		{Name: "bb", T: tensor.New(4)},
	}
	var buf bytes.Buffer
	if err := SaveTensors(&buf, ts); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	body := valid[:len(valid)-4]
	for pos := 0; pos < len(body); pos++ {
		for _, bit := range []byte{0x01, 0xFF} {
			mut := append([]byte(nil), body...)
			mut[pos] ^= bit
			raw := append(mut, u32(crc32.ChecksumIEEE(mut))...)
			out, err := LoadTensors(bytes.NewReader(raw))
			if err != nil {
				continue
			}
			// A mutation the parser accepts must still be structurally sane.
			for _, nt := range out {
				if nt.T.Len() > len(raw) {
					t.Fatalf("pos %d bit %#x: accepted tensor larger than input", pos, bit)
				}
			}
		}
	}
}
