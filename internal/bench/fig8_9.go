package bench

import (
	"fmt"
	"io"

	"skipper/internal/core"
	"skipper/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "LeNet on DVS-gesture trained from scratch: accuracy vs epochs (baseline / C / C&p)",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			w, err := WorkloadFor("lenet", cfg.Scale)
			if err != nil {
				return err
			}
			header(out, "fig8", "from-scratch accuracy curves", w)
			B := w.Batches[len(w.Batches)-1]
			epochs := bud.epochs * 2
			strats := []core.Strategy{
				core.BPTT{},
				core.Checkpoint{C: w.C},
				core.Skipper{C: w.C, P: w.P},
			}
			for _, strat := range strats {
				net, err := w.buildNet()
				if err != nil {
					return err
				}
				data, err := dataset.Open(w.Data, cfg.seed())
				if err != nil {
					return err
				}
				tr, err := core.NewTrainer(net, data, strat, core.Config{
					T: w.T, Batch: B, Seed: cfg.seed(), MaxBatchesPerEpoch: bud.batchesPerEpoch,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "-- %s --\n%8s %12s %12s\n", strat.Name(), "epoch", "train acc", "val acc")
				for e := 1; e <= epochs; e++ {
					ep, err := tr.TrainEpoch()
					if err != nil {
						tr.Close()
						return err
					}
					_, val, err := tr.Evaluate(bud.evalBatches)
					if err != nil {
						tr.Close()
						return err
					}
					fmt.Fprintf(out, "%8d %11.2f%% %11.2f%%\n", e, 100*ep.Accuracy(), 100*val)
				}
				tr.Close()
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig9",
		Title: "LeNet on DVS-gesture: accuracy vs timesteps, baseline vs skipper",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			w, err := WorkloadFor("lenet", cfg.Scale)
			if err != nil {
				return err
			}
			header(out, "fig9", "accuracy vs T", w)
			net, err := w.buildNet()
			if err != nil {
				return err
			}
			ln := net.StatefulCount()
			B := w.Batches[len(w.Batches)-1]
			fmt.Fprintf(out, "%8s %14s %14s\n", "T", "baseline", "skipper")
			for _, T := range tSweep(2*ln, cfg.Scale) {
				base, err := trainAndEval(w, core.BPTT{}, T, B, bud, cfg.seed())
				if err != nil {
					return err
				}
				// Re-derive an admissible (C, p) for this T.
				C := w.C
				for C > 1 && T/C <= ln {
					C--
				}
				p := w.P
				if maxP := core.MaxSkipPercent(T, C, ln); p > maxP {
					p = float64(int(0.85 * maxP))
				}
				skp, err := trainAndEval(w, core.Skipper{C: C, P: p}, T, B, bud, cfg.seed())
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%8d %13.2f%% %13.2f%% (C=%d,p=%.0f)\n", T, 100*base, 100*skp, C, p)
			}
			return nil
		},
	})
}
