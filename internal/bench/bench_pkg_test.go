package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"skipper/internal/core"
)

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"tiny": Tiny, "small": Small, "": Small, "full": Full} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale must error")
	}
	if Tiny.String() != "tiny" || Small.String() != "small" || Full.String() != "full" {
		t.Fatal("Scale.String wrong")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure in the paper's evaluation must have a runner.
	want := []string{
		"fig3ab", "fig3cd", "fig3ef", "fig4a", "fig4b", "fig7",
		"table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "table2", "fig16",
		"ablate-sam", "ablate-p", "ablate-surrogate", "ablate-placement", "ablate-compress",
		"bench_serve", "bench_kernels", "bench_trace", "bench_dist", "bench_router",
		"bench_spikepack", "bench_stream",
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Fatalf("missing experiment %q: %v", id, err)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d experiments, manifest lists %d: %v", len(IDs()), len(want), IDs())
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestWorkloadConstraints(t *testing.T) {
	for model := range paperWorkloads {
		for _, sc := range []Scale{Tiny, Small, Full} {
			w, err := WorkloadFor(model, sc)
			if err != nil {
				t.Fatalf("%s/%v: %v", model, sc, err)
			}
			net, err := w.buildNet()
			if err != nil {
				t.Fatal(err)
			}
			ln := net.StatefulCount()
			if err := core.ValidateCheckpoints(w.T, w.C, ln); err != nil {
				t.Fatalf("%s/%v: %v", model, sc, err)
			}
			if err := core.ValidateSkip(w.T, w.C, ln, w.P); err != nil {
				t.Fatalf("%s/%v: %v", model, sc, err)
			}
			if w.TrW <= ln || w.TrW > w.T {
				t.Fatalf("%s/%v: trW %d invalid for L_n %d, T %d", model, sc, w.TrW, ln, w.T)
			}
			if len(w.Batches) == 0 {
				t.Fatalf("%s/%v: empty batch sweep", model, sc)
			}
		}
	}
}

func TestWorkloadForUnknownModel(t *testing.T) {
	if _, err := WorkloadFor("nope", Tiny); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestMeasureProducesSaneNumbers(t *testing.T) {
	w, err := WorkloadFor("vgg5", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	m, err := w.measure(core.Checkpoint{C: w.C}, 2, measureOpts{batches: 1, seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.TimePerBatch <= 0 || m.PeakReserved <= 0 || m.PeakTensors <= 0 {
		t.Fatalf("measurement degenerate: %+v", m)
	}
	if m.PeakTensors > m.PeakReserved {
		t.Fatal("tensors cannot exceed reserved")
	}
	if m.Stats.N == 0 {
		t.Fatal("no samples measured")
	}
}

// Every registered experiment must run to completion at Tiny scale and
// produce non-empty output. This is the harness's end-to-end smoke test.
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-scale experiment sweep skipped in -short mode")
	}
	// Keep the JSON artifacts out of the source tree.
	benchServeOutput = filepath.Join(t.TempDir(), "BENCH_serve.json")
	benchKernelsOutput = filepath.Join(t.TempDir(), "BENCH_kernels.json")
	benchTraceOutput = filepath.Join(t.TempDir(), "BENCH_trace.json")
	benchDistOutput = filepath.Join(t.TempDir(), "BENCH_dist.json")
	benchRouterOutput = filepath.Join(t.TempDir(), "BENCH_router.json")
	benchSpikePackOutput = filepath.Join(t.TempDir(), "BENCH_spikepack.json")
	benchStreamOutput = filepath.Join(t.TempDir(), "BENCH_stream.json")
	cfg := RunConfig{Scale: Tiny, Seed: 1}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", id, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", id)
			}
			if !strings.Contains(buf.String(), id) {
				t.Fatalf("%s output missing its banner:\n%s", id, buf.String())
			}
		})
	}
}
