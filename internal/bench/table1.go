package bench

import (
	"fmt"
	"io"

	"skipper/internal/core"
)

// strategiesFor builds the Table I strategy column for a workload.
func strategiesFor(w Workload) []core.Strategy {
	return []core.Strategy{
		core.BPTT{},
		core.Checkpoint{C: w.C},
		core.Skipper{C: w.C, P: w.P},
		core.TBPTT{Window: w.TrW},
	}
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Test accuracy of 5 networks under BPTT / Checkpointed / Skipper / TBPTT",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			modelsList := []string{"vgg5", "vgg11", "resnet20", "lenet", "customnet"}
			fmt.Fprintf(out, "== table1: SNN test accuracy per training technique ==\n")
			fmt.Fprintf(out, "%-10s %-12s %6s %6s | %10s %16s %18s %14s\n",
				"network", "dataset", "T", "B", "BPTT", "Checkpointed", "Skipper", "TBPTT")
			for _, model := range modelsList {
				w, err := WorkloadFor(model, cfg.Scale)
				if err != nil {
					return err
				}
				B := w.Batches[len(w.Batches)-1]
				row := fmt.Sprintf("%-10s %-12s %6d %6d |", model, w.Data, w.T, B)
				for _, strat := range strategiesFor(w) {
					acc, err := trainAndEval(w, strat, w.T, B, bud, cfg.seed())
					if err != nil {
						return fmt.Errorf("table1 %s/%s: %w", model, strat.Name(), err)
					}
					label := strat.Name()
					switch strat.(type) {
					case core.BPTT:
						row += fmt.Sprintf(" %9.4f", acc)
					case core.Checkpoint:
						row += fmt.Sprintf(" %9.4f (C=%d)", acc, w.C)
					case core.Skipper:
						row += fmt.Sprintf(" %9.4f (p=%.0f)", acc, w.P)
					case core.TBPTT:
						row += fmt.Sprintf(" %9.4f (trW=%d)", acc, w.TrW)
					default:
						row += fmt.Sprintf(" %s %9.4f", label, acc)
					}
				}
				fmt.Fprintln(out, row)
			}
			return nil
		},
	})
}
