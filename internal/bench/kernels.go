package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	goruntime "runtime"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/mem"
	"skipper/internal/models"
	"skipper/internal/parallel"
	"skipper/internal/snn"
	"skipper/internal/tensor"
)

// kernelResult is one row of the bench_kernels report: a hot kernel timed
// serial vs pooled on identical inputs, with a bit-identity check because
// the parallel runtime promises exactly the serial answer at every width.
type kernelResult struct {
	Name           string  `json:"name"`
	Shape          string  `json:"shape"`
	GFLOP          float64 `json:"gflop_per_rep"`
	SerialMS       float64 `json:"serial_ms"`
	ParallelMS     float64 `json:"parallel_ms"`
	SerialGFLOPS   float64 `json:"serial_gflop_s"`
	ParallelGFLOPS float64 `json:"parallel_gflop_s"`
	Speedup        float64 `json:"speedup"`
	BitIdentical   bool    `json:"bit_identical"`
}

// epochResult is the end-to-end row: one capped training epoch of the
// paper's vgg5 workload at threads=1 vs threads=N.
type epochResult struct {
	Model     string  `json:"model"`
	T         int     `json:"t"`
	Batch     int     `json:"batch"`
	Batches   int     `json:"batches"`
	SerialS   float64 `json:"serial_s"`
	ParallelS float64 `json:"parallel_s"`
	Speedup   float64 `json:"speedup"`
}

// kernelBenchReport is what bench_kernels writes to BENCH_kernels.json.
type kernelBenchReport struct {
	Threads int            `json:"threads"`
	Cores   int            `json:"cores"`
	Scale   string         `json:"scale"`
	Kernels []kernelResult `json:"kernels"`
	Epoch   epochResult    `json:"epoch"`
}

// benchKernelsOutput is where bench_kernels writes its JSON report; the
// package tests point it into a temp directory.
var benchKernelsOutput = "BENCH_kernels.json"

// fillDet fills d with a deterministic xorshift sequence in [-1, 1) so
// serial and parallel runs see byte-identical inputs without a time or
// math/rand dependency.
func fillDet(d []float32, seed uint64) {
	s := seed*0x9E3779B97F4A7C15 + 1
	for i := range d {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		d[i] = float32(s%2048)/1024 - 1
	}
}

// timeReps runs fn once to warm caches, then times reps executions.
func timeReps(reps int, fn func()) time.Duration {
	fn()
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start)
}

// bitEqual reports exact float32 bit equality of two tensors.
func bitEqual(a, b *tensor.Tensor) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// measureKernel times serial vs pooled variants of one kernel and checks
// bit-identity of their outputs.
func measureKernel(name, shape string, flop float64, reps int, serial, pooled func(), outS, outP *tensor.Tensor) kernelResult {
	sDur := timeReps(reps, serial)
	pDur := timeReps(reps, pooled)
	sMS := sDur.Seconds() * 1e3 / float64(reps)
	pMS := pDur.Seconds() * 1e3 / float64(reps)
	return kernelResult{
		Name:           name,
		Shape:          shape,
		GFLOP:          flop / 1e9,
		SerialMS:       sMS,
		ParallelMS:     pMS,
		SerialGFLOPS:   flop / 1e9 / (sMS / 1e3),
		ParallelGFLOPS: flop / 1e9 / (pMS / 1e3),
		Speedup:        sMS / pMS,
		BitIdentical:   bitEqual(outS, outP),
	}
}

// kernelSizes returns the scale-dependent problem sizes and rep counts.
func kernelSizes(sc Scale) (mm, reps, lifN int) {
	switch sc {
	case Tiny:
		return 96, 8, 1 << 16
	case Small:
		return 192, 12, 1 << 19
	default:
		return 384, 16, 1 << 21
	}
}

// measureMatMul benches dst = a·b at m=k=n=mm.
func measureMatMul(pool *parallel.Pool, mm, reps int) kernelResult {
	a := tensor.New(mm, mm)
	b := tensor.New(mm, mm)
	outS := tensor.New(mm, mm)
	outP := tensor.New(mm, mm)
	fillDet(a.Data, 11)
	fillDet(b.Data, 23)
	flop := 2 * float64(mm) * float64(mm) * float64(mm)
	return measureKernel("matmul", fmt.Sprintf("%dx%dx%d", mm, mm, mm), flop, reps,
		func() { tensor.MatMul(nil, outS, a, b) },
		func() { tensor.MatMul(pool, outP, a, b) },
		outS, outP)
}

// measureConv benches the forward convolution on a batch sized to spread
// across lanes (images are the partition axis).
func measureConv(pool *parallel.Pool, sc Scale, reps int) kernelResult {
	n, c, h, w := 8, 8, 16, 16
	if sc == Full {
		n, c, h, w = 16, 16, 32, 32
	}
	spec := tensor.ConvSpec{InChannels: c, OutChannels: 2 * c, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1}
	oh, ow := spec.OutSize(h, w)
	x := tensor.New(n, c, h, w)
	weight := tensor.New(spec.OutChannels, c, 3, 3)
	bias := tensor.New(spec.OutChannels)
	outS := tensor.New(n, spec.OutChannels, oh, ow)
	outP := tensor.New(n, spec.OutChannels, oh, ow)
	fillDet(x.Data, 31)
	fillDet(weight.Data, 47)
	fillDet(bias.Data, 59)
	scrS, scrP := tensor.NewScratch(), tensor.NewScratch()
	flop := 2 * float64(n) * float64(spec.OutChannels) * float64(oh*ow) * float64(c*9)
	return measureKernel("conv2d", fmt.Sprintf("N%d C%d->%d %dx%d k3", n, c, spec.OutChannels, h, w), flop, reps,
		func() { tensor.Conv2D(nil, outS, x, weight, bias, spec, scrS) },
		func() { tensor.Conv2D(pool, outP, x, weight, bias, spec, scrP) },
		outS, outP)
}

// measureLIF benches the elementwise LIF state update over lifN neurons.
func measureLIF(pool *parallel.Pool, lifN, reps int) kernelResult {
	cur := tensor.New(lifN)
	uPrev := tensor.New(lifN)
	oPrev := tensor.New(lifN)
	uS, oS := tensor.New(lifN), tensor.New(lifN)
	uP, oP := tensor.New(lifN), tensor.New(lifN)
	fillDet(cur.Data, 71)
	fillDet(uPrev.Data, 83)
	snn.Fire(nil, oPrev, uPrev, 0.5)
	p := snn.DefaultParams()
	// λ·U + I − θ·o, plus the compare-and-fire: ~5 flops per neuron.
	flop := 5 * float64(lifN)
	return measureKernel("lif_step", fmt.Sprintf("n=%d", lifN), flop, reps,
		func() { snn.StepLIF(nil, uS, oS, uPrev, oPrev, cur, p) },
		func() { snn.StepLIF(pool, uP, oP, uPrev, oPrev, cur, p) },
		uS, uP)
}

// measureEpoch trains the paper's vgg5 workload for a few capped batches at
// the given pool width and returns the wall-clock seconds. Both widths see
// the same seed, so the runs are the bit-identical twins the runtime
// promises — only the clock differs.
func measureEpoch(cfg RunConfig, rt *core.Runtime, T, batch, batches int) (float64, error) {
	net, err := models.Build("vgg5", models.Options{Width: 0.25, Classes: 10, InShape: []int{3, 16, 16}})
	if err != nil {
		return 0, err
	}
	data, err := dataset.Open("cifar10", cfg.seed())
	if err != nil {
		return 0, err
	}
	ln := net.StatefulCount()
	c := 4
	for c > 1 && T/c <= ln {
		c--
	}
	p := float64(int(0.85 * core.MaxSkipPercent(T, c, ln)))
	metric, err := core.SAMByName("spikesum")
	if err != nil {
		return 0, err
	}
	tr, err := core.NewTrainer(net, data, core.Skipper{C: c, P: p, Metric: metric}, core.Config{
		Runtime: rt,
		T:       T, Batch: batch, Seed: cfg.seed(),
		Device:             mem.NewDevice(mem.Config{}),
		MaxBatchesPerEpoch: batches,
	})
	if err != nil {
		return 0, err
	}
	defer tr.Close()
	start := time.Now()
	if _, err := tr.TrainEpoch(); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

func init() {
	register(Experiment{
		ID:    "bench_kernels",
		Title: "Parallel runtime: hot-kernel GFLOP/s and epoch wall-clock, serial vs pooled",
		Run: func(cfg RunConfig, out io.Writer) error {
			cores := goruntime.NumCPU()
			pool := parallel.NewPool(cfg.Threads)
			defer pool.Close()
			threads := pool.Lanes()

			mm, reps, lifN := kernelSizes(cfg.Scale)
			fmt.Fprintf(out, "== bench_kernels: parallel runtime speedups ==\n")
			fmt.Fprintf(out, "   threads=%d cores=%d scale=%s\n", threads, cores, cfg.Scale)

			kernels := []kernelResult{
				measureMatMul(pool, mm, reps),
				measureConv(pool, cfg.Scale, reps),
				measureLIF(pool, lifN, reps),
			}

			T, batch, nBatches := 48, 4, 3
			if cfg.Scale == Tiny {
				T, batch, nBatches = 16, 2, 1
			}
			serialS, err := measureEpoch(cfg, core.NewRuntime(core.WithThreads(1)), T, batch, nBatches)
			if err != nil {
				return err
			}
			rtN := core.NewRuntime(core.WithThreads(cfg.Threads))
			parS, err := measureEpoch(cfg, rtN, T, batch, nBatches)
			rtN.Close()
			if err != nil {
				return err
			}
			epoch := epochResult{
				Model: "vgg5", T: T, Batch: batch, Batches: nBatches,
				SerialS: serialS, ParallelS: parS, Speedup: serialS / parS,
			}

			fmt.Fprintf(out, "%10s %24s %10s %12s %12s %9s %6s\n",
				"kernel", "shape", "serial", "parallel", "GFLOP/s", "speedup", "bits")
			for _, k := range kernels {
				bits := "OK"
				if !k.BitIdentical {
					bits = "DIFF"
				}
				fmt.Fprintf(out, "%10s %24s %8.2fms %10.2fms %5.2f→%5.2f %8.2fx %6s\n",
					k.Name, k.Shape, k.SerialMS, k.ParallelMS,
					k.SerialGFLOPS, k.ParallelGFLOPS, k.Speedup, bits)
			}
			fmt.Fprintf(out, "%10s %24s %8.2fs  %10.2fs  %11s %8.2fx\n",
				"epoch", fmt.Sprintf("vgg5 T=%d B=%d x%d", T, batch, nBatches),
				epoch.SerialS, epoch.ParallelS, "", epoch.Speedup)

			for _, k := range kernels {
				if !k.BitIdentical {
					return fmt.Errorf("bench_kernels: %s parallel output is not bit-identical to serial", k.Name)
				}
			}

			rep := kernelBenchReport{
				Threads: threads,
				Cores:   cores,
				Scale:   cfg.Scale.String(),
				Kernels: kernels,
				Epoch:   epoch,
			}
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(benchKernelsOutput, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "   report written to %s\n", benchKernelsOutput)

			if cfg.RequireSpeedup && cores >= 2 && threads >= 2 {
				if kernels[0].Speedup <= 1.0 {
					return fmt.Errorf("bench_kernels: matmul at %d threads is not faster than serial (%.2fx) on a %d-core machine",
						threads, kernels[0].Speedup, cores)
				}
			}
			return nil
		},
	})
}
