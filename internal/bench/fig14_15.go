package bench

import (
	"fmt"
	"io"
	"time"

	"skipper/internal/core"
	"skipper/internal/mem"
)

func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Peak memory vs timesteps under a fixed budget: baseline OOMs first, skipper scales furthest",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			for _, model := range []string{"vgg11", "resnet20"} {
				w, err := WorkloadFor(model, cfg.Scale)
				if err != nil {
					return err
				}
				net, err := w.buildNet()
				if err != nil {
					return err
				}
				ln := net.StatefulCount()
				B := w.Batches[0]

				// Calibrate the budget: 2.5x the baseline's footprint at the
				// base horizon, so the baseline dies within the sweep while
				// checkpointing and skipper keep scaling (paper Fig 14).
				baseT := w.T
				m0, err := w.measure(core.BPTT{}, B, measureOpts{batches: 1, seed: cfg.seed(), spikePack: cfg.SpikePack})
				if err != nil {
					return err
				}
				budgetBytes := m0.PeakReserved * 5 / 2
				header(out, "fig14", fmt.Sprintf("memory vs T at budget %s — %s", gib(budgetBytes), model), w)
				fmt.Fprintf(out, "%8s %16s %16s %16s\n", "T", "baseline", fmt.Sprintf("ckpt C=%d", w.C), "skipper")

				mult := []int{1, 2, 3, 4, 6, 9}
				if cfg.Scale == Tiny {
					mult = []int{1, 2, 4}
				}
				for _, k := range mult {
					T := baseT * k
					wt := w
					wt.T = T
					row := fmt.Sprintf("%8d", T)
					for _, mk := range []func() core.Strategy{
						func() core.Strategy { return core.BPTT{} },
						func() core.Strategy { return core.Checkpoint{C: w.C} },
						func() core.Strategy {
							p := w.P
							if maxP := core.MaxSkipPercent(T, w.C, ln); p > maxP {
								p = float64(int(0.85 * maxP))
							}
							return core.Skipper{C: w.C, P: p}
						},
					} {
						strat := mk()
						m, err := wt.measure(strat, B, measureOpts{
							batches: 1, seed: cfg.seed(), spikePack: cfg.SpikePack,
							devCfg: mem.Config{Budget: budgetBytes},
						})
						if err != nil {
							if isOOM(err) {
								row += fmt.Sprintf(" %16s", "OOM")
								continue
							}
							return err
						}
						row += fmt.Sprintf(" %16s", gib(m.PeakReserved))
					}
					fmt.Fprintln(out, row)
				}
				_ = bud
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig15",
		Title: "Edge device (budget + swap): memory and epoch latency vs batch size",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			w, err := WorkloadFor("vgg5", cfg.Scale)
			if err != nil {
				return err
			}
			// Size the "edge" budget so the baseline only fits the smallest
			// batch (as the Jetson Nano only fit B=8 in the paper): measure
			// the baseline at the smallest batch and allow 1.3x that.
			bs := append([]int{1}, w.Batches...)
			m0, err := w.measure(core.BPTT{}, bs[0], measureOpts{batches: 1, seed: cfg.seed(), spikePack: cfg.SpikePack})
			if err != nil {
				return err
			}
			edge := mem.Config{
				Budget:          m0.PeakReserved * 13 / 10,
				SwapBytes:       m0.PeakReserved,
				SwapPenalty:     3,
				ContextOverhead: m0.PeakReserved / 4, // the context share is large on edge parts
			}
			header(out, "fig15", fmt.Sprintf("edge budget %s + swap %s — vgg5", gib(edge.Budget), gib(edge.SwapBytes)), w)
			fmt.Fprintf(out, "%6s %-18s %14s %16s\n", "B", "strategy", "memory", "latency/epoch")
			for _, B := range bs {
				for _, strat := range []core.Strategy{
					core.BPTT{},
					core.Checkpoint{C: w.C},
					core.Skipper{C: w.C, P: w.P},
				} {
					m, err := w.measure(strat, B, measureOpts{
						batches: bud.measureBatches, seed: cfg.seed(), devCfg: edge, spikePack: cfg.SpikePack,
					})
					if err != nil {
						if isOOM(err) {
							fmt.Fprintf(out, "%6d %-18s %14s %16s\n", B, strat.Name(), "OOM", "—")
							continue
						}
						return err
					}
					// Swap residency slows the epoch down by the device's
					// bandwidth-penalty factor.
					dev := mem.NewDevice(edge)
					_ = dev
					slow := 1.0
					if m.PeakReserved > edge.Budget {
						frac := float64(m.PeakReserved-edge.Budget) / float64(edge.Budget)
						slow = 1 + edge.SwapPenalty*frac
					}
					perEpoch := time.Duration(float64(m.TimePerBatch) * slow * float64((512+B-1)/B))
					fmt.Fprintf(out, "%6d %-18s %14s %16s\n", B, strat.Name(),
						gib(m.PeakReserved), perEpoch.Round(time.Millisecond))
				}
			}
			return nil
		},
	})
}
