package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/stream"
)

// streamBenchReport is what bench_stream writes to BENCH_stream.json: the
// streaming session path's latency and skipped-window fraction at two event
// densities, the bitwise skip-vs-full equivalence check, and the
// client-visible pause of an export/import session migration.
type streamBenchReport struct {
	Scale       string `json:"scale"`
	Model       string `json:"model"`
	WindowSteps int    `json:"window_steps"`

	// Quiet and Busy are open sessions fed event windows at low and high
	// density through the framed fleet channel.
	Quiet streamDensityRow `json:"quiet"`
	Busy  streamDensityRow `json:"busy"`

	// LosslessWindows is how many windows were compared bitwise between a
	// skip-enabled and a skip-disabled session on identical streams.
	LosslessWindows int `json:"lossless_windows_compared"`

	// Migration is one session exported from its replica mid-stream and
	// imported at another, with the predictions required bitwise identical
	// to an uninterrupted run.
	Migration streamMigrationRow `json:"migration"`
}

type streamDensityRow struct {
	QuietFrac       float64          `json:"quiet_frac"`
	SkippedFraction float64          `json:"skipped_fraction"`
	Report          stream.GenReport `json:"report"`
}

type streamMigrationRow struct {
	WindowsBefore int `json:"windows_before"`
	WindowsAfter  int `json:"windows_after"`
	// PauseMS is the wall time of export + import + resume — the gap a
	// client rides out during a drain handoff.
	PauseMS       float64 `json:"pause_ms"`
	ByteIdentical bool    `json:"byte_identical"`
}

// benchStreamOutput is where bench_stream writes its JSON report; the package
// tests point it into a temp directory.
var benchStreamOutput = "BENCH_stream.json"

func init() {
	register(Experiment{
		ID:    "bench_stream",
		Title: "Streaming sessions: online time-skipping density sweep, lossless gate, migration pause",
		Run: func(cfg RunConfig, out io.Writer) error {
			sessions := map[Scale]int{Tiny: 2, Small: 4, Full: 8}[cfg.Scale]
			windows := map[Scale]int{Tiny: 8, Small: 24, Full: 64}[cfg.Scale]
			const model, steps = "customnet", 6
			const inputLen = 2 * 8 * 8
			build := func() (*layers.Network, error) {
				return models.Build(model, models.Options{
					Width: 0.25, Classes: 4, InShape: []int{2, 8, 8},
				})
			}
			fmt.Fprintf(out, "== bench_stream: stateful streaming sessions with online time-skipping ==\n")
			fmt.Fprintf(out, "   workload: %s  sessions=%d windows=%d steps/window=%d\n",
				model, sessions, windows, steps)

			rep := streamBenchReport{Scale: cfg.Scale.String(), Model: model, WindowSteps: steps}

			// 1. Density sweep: a mostly-quiet workload (sensor idling) and a
			// saturated one, both through a real replica's framed listener.
			// The acceptance bar is a non-zero skipped fraction on the quiet
			// run with zero state loss on either.
			fmt.Fprintf(out, "%10s %10s %10s %10s %8s\n", "density", "p50", "p99", "skipped", "resets")
			for _, d := range []struct {
				name      string
				quietFrac float64
				row       *streamDensityRow
			}{
				{"quiet", 0.8, &rep.Quiet},
				{"busy", 0.0, &rep.Busy},
			} {
				r, err := startFleetReplica(build, steps, 64, 1, 4, 0, "", cfg.seed())
				if err != nil {
					return err
				}
				gr, genErr := stream.RunStreamGen(stream.GenOptions{
					Addr:            r.fleetLN.Addr().String(),
					Sessions:        sessions,
					Windows:         windows,
					WindowSteps:     steps,
					QuietFrac:       d.quietFrac,
					EventsPerWindow: 12,
					InputLen:        inputLen,
					Seed:            cfg.seed(),
					SessionPrefix:   "bench-" + d.name,
				})
				r.stop()
				if genErr != nil {
					return fmt.Errorf("bench_stream: %s run: %w", d.name, genErr)
				}
				fmt.Fprintf(out, "%10s %9.2fms %9.2fms %9.1f%% %8d\n",
					d.name, gr.P50MS, gr.P99MS, 100*gr.SkippedFraction(), gr.Resets)
				if gr.Resets > 0 || gr.Failures > 0 {
					return fmt.Errorf("bench_stream: %s run lost state: %d resets, %d failures", d.name, gr.Resets, gr.Failures)
				}
				*d.row = streamDensityRow{QuietFrac: d.quietFrac, SkippedFraction: gr.SkippedFraction(), Report: gr}
			}
			if rep.Quiet.SkippedFraction <= 0 {
				return fmt.Errorf("bench_stream: quiet workload skipped no windows (report %+v)", rep.Quiet.Report)
			}
			if rep.Quiet.SkippedFraction < rep.Busy.SkippedFraction {
				return fmt.Errorf("bench_stream: quiet workload skipped less than busy (%.3f < %.3f)",
					rep.Quiet.SkippedFraction, rep.Busy.SkippedFraction)
			}

			// 2. Lossless gate: the same deterministic stream fed to two
			// sessions on one replica — leak-only fast-forward on, then off.
			// Every logit must match bitwise; anything else means the quiet
			// path diverged from the real kernels.
			r, err := startFleetReplica(build, steps, 64, 1, 4, 0, "", cfg.seed())
			if err != nil {
				return err
			}
			defer r.stop()
			gen := stream.GenOptions{
				Seed: cfg.seed(), WindowSteps: steps,
				EventsPerWindow: 12, QuietFrac: 0.8,
			}
			skipOn, skipOff := 0, -1
			for _, s := range []struct {
				id        string
				threshold *int
			}{{"lossless-on", &skipOn}, {"lossless-off", &skipOff}} {
				if _, oerr := r.server.Streams().Open(stream.OpenRequest{Session: s.id, SkipThreshold: s.threshold}); oerr != nil {
					return fmt.Errorf("bench_stream: open %s: %v", s.id, oerr)
				}
			}
			skippedOn := 0
			for w := 0; w < windows; w++ {
				events := stream.GenWindow(gen, 0, w, inputLen)
				on, oerr := r.server.Streams().Window(stream.WindowRequest{Session: "lossless-on", Seq: w, Steps: steps, Events: events})
				if oerr != nil {
					return fmt.Errorf("bench_stream: lossless-on window %d: %v", w, oerr)
				}
				off, ferr := r.server.Streams().Window(stream.WindowRequest{Session: "lossless-off", Seq: w, Steps: steps, Events: events})
				if ferr != nil {
					return fmt.Errorf("bench_stream: lossless-off window %d: %v", w, ferr)
				}
				if on.Skipped {
					skippedOn++
				}
				for i := range off.Logits {
					if math.Float32bits(on.Logits[i]) != math.Float32bits(off.Logits[i]) {
						return fmt.Errorf("bench_stream: window %d logit %d differs with skipping on: %v vs %v",
							w, i, on.Logits[i], off.Logits[i])
					}
				}
			}
			if skippedOn == 0 {
				return fmt.Errorf("bench_stream: lossless gate exercised no skipped windows over %d windows", windows)
			}
			rep.LosslessWindows = windows
			fmt.Fprintf(out, "   lossless: %d windows bitwise identical (%d took the leak-only path)\n", windows, skippedOn)

			// 3. Migration pause: run a session to the midpoint, export it
			// over the fleet channel, import at a second replica, and resume.
			// The pause is the client-visible gap; the predictions across the
			// move must match an uninterrupted reference session bitwise.
			r2, err := startFleetReplica(build, steps, 64, 1, 4, 0, "", cfg.seed())
			if err != nil {
				return err
			}
			defer r2.stop()
			mid := windows / 2
			if _, oerr := r.server.Streams().Open(stream.OpenRequest{Session: "mig"}); oerr != nil {
				return fmt.Errorf("bench_stream: open mig: %v", oerr)
			}
			if _, oerr := r.server.Streams().Open(stream.OpenRequest{Session: "ref"}); oerr != nil {
				return fmt.Errorf("bench_stream: open ref: %v", oerr)
			}
			feed := func(mgr *stream.Manager, id string, from, to int) ([][]float32, error) {
				var logits [][]float32
				for w := from; w < to; w++ {
					wr, werr := mgr.Window(stream.WindowRequest{
						Session: id, Seq: w, Steps: steps,
						Events: stream.GenWindow(gen, 1, w, inputLen),
					})
					if werr != nil {
						return nil, fmt.Errorf("%s window %d: %w", id, w, werr)
					}
					logits = append(logits, wr.Logits)
				}
				return logits, nil
			}
			want, err := feed(r.server.Streams(), "ref", 0, windows)
			if err != nil {
				return fmt.Errorf("bench_stream: %w", err)
			}
			got, err := feed(r.server.Streams(), "mig", 0, mid)
			if err != nil {
				return fmt.Errorf("bench_stream: %w", err)
			}

			ca, err := stream.Dial(r.fleetLN.Addr().String(), 5*time.Second)
			if err != nil {
				return err
			}
			defer ca.Close()
			cb, err := stream.Dial(r2.fleetLN.Addr().String(), 5*time.Second)
			if err != nil {
				return err
			}
			defer cb.Close()
			pauseStart := time.Now()
			raw, err := ca.Export("mig")
			if err != nil {
				return fmt.Errorf("bench_stream: export: %w", err)
			}
			if _, err := cb.Import(raw); err != nil {
				return fmt.Errorf("bench_stream: import: %w", err)
			}
			open, err := cb.Open(stream.OpenRequest{Session: "mig", RequireResume: true})
			if err != nil {
				return fmt.Errorf("bench_stream: resume after import: %w", err)
			}
			pause := time.Since(pauseStart)
			if !open.Resumed || open.Window != mid {
				return fmt.Errorf("bench_stream: resume landed at window %d (resumed=%v), want %d", open.Window, open.Resumed, mid)
			}
			rest, err := feed(r2.server.Streams(), "mig", mid, windows)
			if err != nil {
				return fmt.Errorf("bench_stream: %w", err)
			}
			got = append(got, rest...)
			identical := len(got) == len(want)
			for w := 0; identical && w < len(want); w++ {
				for i := range want[w] {
					if math.Float32bits(got[w][i]) != math.Float32bits(want[w][i]) {
						identical = false
						break
					}
				}
			}
			if !identical {
				return fmt.Errorf("bench_stream: predictions diverged across the migration")
			}
			rep.Migration = streamMigrationRow{
				WindowsBefore: mid,
				WindowsAfter:  windows - mid,
				PauseMS:       float64(pause.Microseconds()) / 1000,
				ByteIdentical: true,
			}
			fmt.Fprintf(out, "   migration: %d+%d windows, pause %.2fms, bitwise identical\n",
				mid, windows-mid, rep.Migration.PauseMS)

			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(benchStreamOutput, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "   report written to %s\n", benchStreamOutput)
			return nil
		},
	})
}
