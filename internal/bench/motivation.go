package bench

import (
	"fmt"
	"io"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/mem"
	"skipper/internal/models"
)

// trainBudget scales the accuracy-producing runs.
type trainBudget struct {
	epochs, batchesPerEpoch, evalBatches, measureBatches int
}

func budgetFor(sc Scale) trainBudget {
	switch sc {
	case Tiny:
		return trainBudget{epochs: 1, batchesPerEpoch: 4, evalBatches: 3, measureBatches: 2}
	case Small:
		return trainBudget{epochs: 3, batchesPerEpoch: 16, evalBatches: 8, measureBatches: 3}
	default:
		return trainBudget{epochs: 8, batchesPerEpoch: 48, evalBatches: 16, measureBatches: 5}
	}
}

// tSweep builds the timestep sweep for the motivation figures.
func tSweep(base int, sc Scale) []int {
	switch sc {
	case Tiny:
		return []int{base, base * 2}
	case Small:
		return []int{base, base * 2, base * 3}
	default:
		return []int{base, base * 2, base * 3, base * 4, base * 5}
	}
}

// trainAndEval trains a fresh workload network with the strategy for the
// scale's budget and returns test accuracy.
func trainAndEval(w Workload, strat core.Strategy, T, B int, bud trainBudget, seed uint64) (float64, error) {
	w.T = T
	net, err := w.buildNet()
	if err != nil {
		return 0, err
	}
	data, err := dataset.Open(w.Data, seed)
	if err != nil {
		return 0, err
	}
	if err := core.Pretrain(net, data, core.PretrainConfig{
		T: minInt(T, net.StatefulCount()+2), Batch: B, Seed: seed,
		Epochs: 1, BatchesPerEpoch: bud.batchesPerEpoch,
	}); err != nil {
		return 0, err
	}
	tr, err := core.NewTrainer(net, data, strat, core.Config{
		T: T, Batch: B, Seed: seed, MaxBatchesPerEpoch: bud.batchesPerEpoch,
	})
	if err != nil {
		return 0, err
	}
	defer tr.Close()
	for e := 0; e < bud.epochs; e++ {
		if _, err := tr.TrainEpoch(); err != nil {
			return 0, err
		}
	}
	_, acc, err := tr.Evaluate(bud.evalBatches)
	return acc, err
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func init() {
	register(Experiment{
		ID:    "fig3ab",
		Title: "SNN test accuracy and training memory vs timesteps (VGG5, ResNet20 on CIFAR10)",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			for _, model := range []string{"vgg5", "resnet20"} {
				w, err := WorkloadFor(model, cfg.Scale)
				if err != nil {
					return err
				}
				header(out, "fig3ab", "accuracy & memory vs T — "+model, w)
				fmt.Fprintf(out, "%8s %10s %14s\n", "T", "accuracy", "peak memory")
				base := w.T / 2
				if base < 8 {
					base = 8
				}
				B := w.Batches[len(w.Batches)-1]
				for _, T := range tSweep(base, cfg.Scale) {
					acc, err := trainAndEval(w, core.BPTT{}, T, B, bud, cfg.seed())
					if err != nil {
						return err
					}
					wt := w
					wt.T = T
					m, err := wt.measure(core.BPTT{}, B, measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack})
					if err != nil {
						return err
					}
					fmt.Fprintf(out, "%8d %9.2f%% %14s\n", T, 100*acc, gib(m.PeakReserved))
				}
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig3cd",
		Title: "GPU tensor-memory breakdown vs timesteps (VGG5, ResNet20)",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			for _, model := range []string{"vgg5", "resnet20"} {
				w, err := WorkloadFor(model, cfg.Scale)
				if err != nil {
					return err
				}
				header(out, "fig3cd", "tensor breakdown vs T — "+model, w)
				fmt.Fprintf(out, "%8s %13s %9s %9s %12s %9s\n",
					"T", "activations", "input", "weights", "wt grads+opt", "others")
				base := w.T / 2
				if base < 8 {
					base = 8
				}
				B := w.Batches[0]
				for _, T := range tSweep(base, cfg.Scale) {
					wt := w
					wt.T = T
					m, err := wt.measure(core.BPTT{}, B, measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack})
					if err != nil {
						return err
					}
					var total int64
					for _, v := range m.PeakByCat {
						total += v
					}
					pct := func(c mem.Category) float64 {
						if total == 0 {
							return 0
						}
						return 100 * float64(m.PeakByCat[c]) / float64(total)
					}
					fmt.Fprintf(out, "%8d %12.1f%% %8.1f%% %8.1f%% %11.1f%% %8.1f%%\n",
						T, pct(mem.Activations), pct(mem.Input), pct(mem.Weights),
						pct(mem.WeightGrads)+pct(mem.Optimizer), pct(mem.Workspace)+pct(mem.Other))
				}
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig3ef",
		Title: "Training time per epoch and memory vs batch size (VGG5, ResNet20)",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			for _, model := range []string{"vgg5", "resnet20"} {
				w, err := WorkloadFor(model, cfg.Scale)
				if err != nil {
					return err
				}
				header(out, "fig3ef", "epoch time & memory vs B — "+model, w)
				fmt.Fprintf(out, "%8s %16s %14s\n", "B", "time/epoch", "peak memory")
				data, err := dataset.Open(w.Data, cfg.seed())
				if err != nil {
					return err
				}
				n := data.Len(dataset.Train)
				for _, B := range w.Batches {
					m, err := w.measure(core.BPTT{}, B, measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack})
					if err != nil {
						return err
					}
					epoch := m.TimePerBatch * time.Duration((n+B-1)/B)
					fmt.Fprintf(out, "%8d %16s %14s\n", B, epoch.Round(time.Millisecond), gib(m.PeakReserved))
				}
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig4a",
		Title: "ResNet34 (ImageNet surrogate) memory breakdown vs timesteps at B=1",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			net, err := models.Build("resnet34", models.Options{Width: 0.5, Classes: 50})
			if err != nil {
				return err
			}
			ln := net.StatefulCount()
			w := Workload{Model: "resnet34", Data: "imagenet", Width: 0.5, Classes: 50}
			header(out, "fig4a", "ResNet34 tensor breakdown vs T, B=1")
			fmt.Fprintf(out, "%8s %13s %9s %9s %12s %12s\n",
				"T", "activations", "input", "weights", "wt grads+opt", "total")
			for _, T := range tSweep(ln+4, cfg.Scale) {
				w.T = T
				m, err := w.measure(core.BPTT{}, 1, measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack})
				if err != nil {
					return err
				}
				var total int64
				for _, v := range m.PeakByCat {
					total += v
				}
				pct := func(c mem.Category) float64 {
					if total == 0 {
						return 0
					}
					return 100 * float64(m.PeakByCat[c]) / float64(total)
				}
				fmt.Fprintf(out, "%8d %12.1f%% %8.1f%% %8.1f%% %11.1f%% %12s\n",
					T, pct(mem.Activations), pct(mem.Input), pct(mem.Weights),
					pct(mem.WeightGrads)+pct(mem.Optimizer), gib(total))
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig4b",
		Title: "Data-parallel (4 replicas) train time and per-replica memory vs batch size",
		Run: func(cfg RunConfig, out io.Writer) error {
			replicas, width, samplesPer := 4, 0.5, 16
			if cfg.Scale == Tiny {
				replicas, width, samplesPer = 2, 0.25, 2
			}
			net0, err := models.Build("resnet34", models.Options{Width: width, Classes: 50})
			if err != nil {
				return err
			}
			T := net0.StatefulCount() + 6
			if cfg.Scale == Full {
				T = 2 * net0.StatefulCount()
			}
			data, err := dataset.Open("imagenet", cfg.seed())
			if err != nil {
				return err
			}
			samples := samplesPer * replicas
			header(out, "fig4b", fmt.Sprintf("ResNet34 data-parallel, R=%d, T=%d, %d samples", replicas, T, samples))
			fmt.Fprintf(out, "%8s %16s %18s\n", "B/gpu", "train time", "memory per gpu")
			bs := []int{1, 2}
			if cfg.Scale != Tiny {
				bs = append(bs, 4)
			}
			for _, perGPU := range bs {
				factory := func(i int) (*core.Trainer, error) {
					net, err := models.Build("resnet34", models.Options{Width: width, Classes: 50})
					if err != nil {
						return nil, err
					}
					return core.NewTrainer(net, data, core.BPTT{}, core.Config{
						T: T, Batch: perGPU, Seed: cfg.seed(), Device: mem.Unlimited(),
					})
				}
				dp, err := core.NewDataParallel(replicas, factory)
				if err != nil {
					return err
				}
				idx := dataset.Indices(data, dataset.Train, cfg.seed(), 0, true)[:samples]
				global := perGPU * replicas
				var wall time.Duration
				for _, b := range dataset.Batches(idx, global) {
					st, err := dp.TrainBatchIndices(dataset.Train, b)
					if err != nil {
						dp.Close()
						return err
					}
					wall += st.Wall
				}
				var peak int64
				for _, tr := range dp.Replicas {
					if p := tr.Dev.PeakReserved(); p > peak {
						peak = p
					}
				}
				dp.Close()
				fmt.Fprintf(out, "%8d %16s %18s\n", perGPU, wall.Round(time.Millisecond), gib(peak))
			}
			return nil
		},
	})
}
