package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/mem"
)

// figContext is the fixed "CUDA context" footprint used for the batch-sweep
// figures, sized so its share of a small run matches the paper's 50–80%
// observation at our tensor scale.
const figContext = 8 << 20

// sweepKey caches the expensive 4-workload × batch × strategy sweep shared
// by figs 10, 11, 12, and 13.
type sweepKey struct {
	scale Scale
	seed  uint64
}

// sweepCell is one (workload, strategy, batch) measurement.
type sweepCell struct {
	Workload Workload
	M        Measurement
}

var (
	sweepMu    sync.Mutex
	sweepCache = map[sweepKey][]sweepCell{}
)

// sweepModels are the four workloads of the paper's batch-sweep figures.
var sweepModels = []string{"vgg5", "vgg11", "resnet20", "lenet"}

// batchSweep runs (or returns the cached) strategy × batch sweep.
func batchSweep(cfg RunConfig) ([]sweepCell, error) {
	key := sweepKey{cfg.Scale, cfg.seed()}
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if cells, ok := sweepCache[key]; ok {
		return cells, nil
	}
	bud := budgetFor(cfg.Scale)
	var cells []sweepCell
	for _, model := range sweepModels {
		w, err := WorkloadFor(model, cfg.Scale)
		if err != nil {
			return nil, err
		}
		for _, B := range w.Batches {
			for _, strat := range strategiesFor(w) {
				m, err := w.measure(strat, B, measureOpts{
					batches:   bud.measureBatches,
					seed:      cfg.seed(),
					spikePack: cfg.SpikePack,
					devCfg:    mem.Config{ContextOverhead: figContext},
				})
				if err != nil {
					return nil, fmt.Errorf("sweep %s/%s/B=%d: %w", model, strat.Name(), B, err)
				}
				cells = append(cells, sweepCell{Workload: w, M: m})
			}
		}
	}
	sweepCache[key] = cells
	return cells, nil
}

// cellsFor filters the sweep by model, strategy name, and batch.
func cellsFor(cells []sweepCell, model string) []sweepCell {
	var out []sweepCell
	for _, c := range cells {
		if c.Workload.Model == model {
			out = append(out, c)
		}
	}
	return out
}

func findCell(cells []sweepCell, strat string, B int) *sweepCell {
	for i := range cells {
		if cells[i].M.Strategy == strat && cells[i].M.B == B {
			return &cells[i]
		}
	}
	return nil
}

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Computational overhead of checkpointing / skipper / TBPTT vs batch size",
		Run: func(cfg RunConfig, out io.Writer) error {
			cells, err := batchSweep(cfg)
			if err != nil {
				return err
			}
			for _, model := range sweepModels {
				mc := cellsFor(cells, model)
				w := mc[0].Workload
				header(out, "fig10", "time overhead vs B — "+model, w)
				fmt.Fprintf(out, "%6s %16s %16s %16s\n", "B",
					fmt.Sprintf("ckpt C=%d", w.C),
					fmt.Sprintf("skipper p=%.0f", w.P),
					fmt.Sprintf("tbptt trW=%d", w.TrW))
				for _, B := range w.Batches {
					base := findCell(mc, (core.BPTT{}).Name(), B)
					if base == nil {
						continue
					}
					row := fmt.Sprintf("%6d", B)
					for _, s := range strategiesFor(w)[1:] {
						c := findCell(mc, s.Name(), B)
						if c == nil {
							row += fmt.Sprintf(" %16s", "—")
							continue
						}
						over := 100 * (float64(c.M.TimePerBatch)/float64(base.M.TimePerBatch) - 1)
						row += fmt.Sprintf(" %+15.0f%%", over)
					}
					fmt.Fprintln(out, row)
				}
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig11",
		Title: "End-to-end training latency per epoch vs batch size (memory annotated)",
		Run: func(cfg RunConfig, out io.Writer) error {
			cells, err := batchSweep(cfg)
			if err != nil {
				return err
			}
			for _, model := range sweepModels {
				mc := cellsFor(cells, model)
				w := mc[0].Workload
				header(out, "fig11", "epoch latency vs B — "+model, w)
				data, err := dataset.Open(w.Data, cfg.seed())
				if err != nil {
					return err
				}
				n := data.Len(dataset.Train)
				fmt.Fprintf(out, "%6s %-14s %14s %14s\n", "B", "strategy", "time/epoch", "memory")
				for _, B := range w.Batches {
					for _, s := range strategiesFor(w) {
						c := findCell(mc, s.Name(), B)
						if c == nil {
							continue
						}
						epoch := c.M.TimePerBatch * time.Duration((n+B-1)/B)
						fmt.Fprintf(out, "%6d %-14s %14s %14s\n", B, s.Name(),
							epoch.Round(time.Millisecond), gib(c.M.PeakReserved))
					}
				}
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig12",
		Title: "Overall GPU memory of BPTT / checkpointing / skipper / TBPTT vs batch size",
		Run: func(cfg RunConfig, out io.Writer) error {
			cells, err := batchSweep(cfg)
			if err != nil {
				return err
			}
			for _, model := range sweepModels {
				mc := cellsFor(cells, model)
				w := mc[0].Workload
				header(out, "fig12", "memory vs B — "+model, w)
				fmt.Fprintf(out, "%6s %14s %14s %14s %14s %10s %12s\n", "B",
					"baseline", "ckpt", "skipper", "tbptt", "saving", "tensor-only")
				for _, B := range w.Batches {
					base := findCell(mc, (core.BPTT{}).Name(), B)
					ck := findCell(mc, (core.Checkpoint{C: w.C}).Name(), B)
					sk := findCell(mc, (core.Skipper{C: w.C, P: w.P}).Name(), B)
					tb := findCell(mc, (core.TBPTT{Window: w.TrW}).Name(), B)
					if base == nil || ck == nil || sk == nil || tb == nil {
						continue
					}
					// Overall saving (context included, as nvidia-smi would
					// report) and the tensor-census saving the paper's
					// parenthesised numbers correspond to.
					saving := float64(base.M.PeakReserved) / float64(sk.M.PeakReserved)
					tensorSaving := float64(base.M.PeakTensors) / float64(sk.M.PeakTensors)
					fmt.Fprintf(out, "%6d %14s %14s %14s %14s %9.1fx %11.1fx\n", B,
						gib(base.M.PeakReserved), gib(ck.M.PeakReserved),
						gib(sk.M.PeakReserved), gib(tb.M.PeakReserved), saving, tensorSaving)
				}
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig13",
		Title: "Memory breakdown: tensors vs allocator cache vs context, per strategy and batch",
		Run: func(cfg RunConfig, out io.Writer) error {
			cells, err := batchSweep(cfg)
			if err != nil {
				return err
			}
			for _, model := range sweepModels {
				mc := cellsFor(cells, model)
				w := mc[0].Workload
				header(out, "fig13", "tensor/cache/context shares — "+model, w)
				fmt.Fprintf(out, "%6s %-14s %10s %10s %10s\n", "B", "strategy", "tensors", "cached", "context")
				for _, B := range w.Batches {
					for _, s := range strategiesFor(w)[:3] { // base, ckpt, skipper as in the paper
						c := findCell(mc, s.Name(), B)
						if c == nil {
							continue
						}
						total := float64(c.M.PeakReserved)
						tensors := float64(c.M.PeakTensors)
						context := float64(figContext)
						cached := total - tensors - context
						if cached < 0 {
							cached = 0
						}
						fmt.Fprintf(out, "%6d %-14s %9.1f%% %9.1f%% %9.1f%%\n", B, s.Name(),
							100*tensors/total, 100*cached/total, 100*context/total)
					}
				}
			}
			return nil
		},
	})
}
