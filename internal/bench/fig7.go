package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"skipper/internal/core"
)

// cSweep builds the checkpoint-count sweep for a workload: every admissible
// C up to the Sec. V-A bound, always including √T (the Eq. 3 optimum).
func cSweep(w Workload, ln int) []int {
	maxC := w.T / (ln + 1)
	if maxC < 1 {
		maxC = 1
	}
	sqrtT := int(math.Round(math.Sqrt(float64(w.T))))
	cands := []int{2, 4, sqrtT, 8, 10, 12, 16, 20}
	seen := map[int]bool{}
	var out []int
	for _, c := range cands {
		if c < 1 || c > maxC || seen[c] {
			continue
		}
		if core.ValidateCheckpoints(w.T, c, ln) != nil {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	// keep ascending
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Peak memory and compute time vs number of checkpoints C (4 workloads)",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			for _, model := range []string{"vgg5", "vgg11", "resnet20", "lenet"} {
				w, err := WorkloadFor(model, cfg.Scale)
				if err != nil {
					return err
				}
				net, err := w.buildNet()
				if err != nil {
					return err
				}
				ln := net.StatefulCount()
				header(out, "fig7", "memory & time vs C — "+model, w)
				B := w.Batches[0]
				fmt.Fprintf(out, "%10s %14s %14s %12s\n", "C", "peak memory", "time/batch", "overhead")
				base, err := w.measure(core.BPTT{}, B, measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack})
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%10s %14s %14s %12s\n", "base", gib(base.PeakReserved),
					base.TimePerBatch.Round(time.Millisecond), "—")
				for _, C := range cSweep(w, ln) {
					m, err := w.measure(core.Checkpoint{C: C}, B, measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack})
					if err != nil {
						return err
					}
					over := 100 * (float64(m.TimePerBatch)/float64(base.TimePerBatch) - 1)
					mark := ""
					if C == int(math.Round(math.Sqrt(float64(w.T)))) {
						mark = " <- C=sqrt(T)"
					}
					fmt.Fprintf(out, "%10d %14s %14s %+11.0f%%%s\n", C, gib(m.PeakReserved),
						m.TimePerBatch.Round(time.Millisecond), over, mark)
				}
			}
			return nil
		},
	})
}
