package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/mem"
	"skipper/internal/models"
	"skipper/internal/parallel"
	"skipper/internal/tensor"
)

// spikePackKernelRow compares one spike-side kernel dense vs bit-packed at a
// given spike density: wall clock, effective GFLOP/s (nominal dense flops
// over measured time, so the speedup is the time ratio), operand bytes, and
// the bit-identity the packed path promises.
type spikePackKernelRow struct {
	Name         string  `json:"name"`
	Shape        string  `json:"shape"`
	Density      float64 `json:"density"`
	DenseMS      float64 `json:"dense_ms"`
	PackedMS     float64 `json:"packed_ms"`
	DenseGFLOPS  float64 `json:"dense_gflop_s"`
	PackedGFLOPS float64 `json:"packed_gflop_s"`
	Speedup      float64 `json:"speedup"`
	DenseBytes   int64   `json:"dense_bytes"`
	PackedBytes  int64   `json:"packed_bytes"`
	BytesRatio   float64 `json:"bytes_ratio"`
	// WordSkipFrac is the fraction of 64-spike words the packed kernel
	// skipped as all-zero (the event-driven fast path).
	WordSkipFrac float64 `json:"word_skip_frac"`
	BitIdentical bool    `json:"bit_identical"`
}

// spikePackEpochRow is the end-to-end comparison: identical training runs
// with SpikePack off vs on must produce bit-identical weights and
// predictions; only the clock may differ.
type spikePackEpochRow struct {
	Model            string  `json:"model"`
	T                int     `json:"t"`
	Batch            int     `json:"batch"`
	Batches          int     `json:"batches"`
	DenseS           float64 `json:"dense_s"`
	PackedS          float64 `json:"packed_s"`
	Speedup          float64 `json:"speedup"`
	WeightsIdentical bool    `json:"weights_bit_identical"`
	PredsIdentical   bool    `json:"preds_bit_identical"`
}

// spikePackReport is what bench_spikepack writes to BENCH_spikepack.json.
type spikePackReport struct {
	Threads int                  `json:"threads"`
	Scale   string               `json:"scale"`
	Kernels []spikePackKernelRow `json:"kernels"`
	// PoolWidthsIdentical is the determinism contract at the packed-kernel
	// level: outputs at pool widths 1/2/4 are bit-equal.
	PoolWidthsIdentical bool              `json:"pool_widths_bit_identical"`
	Epoch               spikePackEpochRow `json:"epoch"`
}

// benchSpikePackOutput is where bench_spikepack writes its JSON report; the
// package tests point it into a temp directory.
var benchSpikePackOutput = "BENCH_spikepack.json"

// fillSpikes fills d with a deterministic 0/1 pattern at roughly the given
// density of ones.
func fillSpikes(d []float32, density float64, seed uint64) {
	buf := make([]float32, len(d))
	fillDet(buf, seed)
	for i, v := range buf {
		if float64(v+1)/2 < density {
			d[i] = 1
		} else {
			d[i] = 0
		}
	}
}

// measureSpikeKernel times the dense and packed variants, collecting the
// packed kernels' word-occupancy counters across the timed reps.
func measureSpikeKernel(name, shape string, density, flop float64, reps int,
	dense, packed func(), outD, outP *tensor.Tensor, denseBytes, packedBytes int64) spikePackKernelRow {
	dDur := timeReps(reps, dense)
	tensor.ResetPackedKernelStats()
	pDur := timeReps(reps, packed)
	scanned, skipped := tensor.PackedKernelStats()
	dMS := dDur.Seconds() * 1e3 / float64(reps)
	pMS := pDur.Seconds() * 1e3 / float64(reps)
	var skipFrac float64
	if scanned > 0 {
		skipFrac = float64(skipped) / float64(scanned)
	}
	return spikePackKernelRow{
		Name:         name,
		Shape:        shape,
		Density:      density,
		DenseMS:      dMS,
		PackedMS:     pMS,
		DenseGFLOPS:  flop / 1e9 / (dMS / 1e3),
		PackedGFLOPS: flop / 1e9 / (pMS / 1e3),
		Speedup:      dMS / pMS,
		DenseBytes:   denseBytes,
		PackedBytes:  packedBytes,
		BytesRatio:   float64(denseBytes) / float64(packedBytes),
		WordSkipFrac: skipFrac,
		BitIdentical: bitEqual(outD, outP),
	}
}

// measureSpikeMatMul benches the linear-layer forward current u = s·Wᵀ with
// the spike operand dense vs packed.
func measureSpikeMatMul(pool *parallel.Pool, mm, reps int, density float64) spikePackKernelRow {
	b := 64
	s := tensor.New(b, mm)
	w := tensor.New(mm, mm)
	outD := tensor.New(b, mm)
	outP := tensor.New(b, mm)
	fillSpikes(s.Data, density, 101)
	fillDet(w.Data, 113)
	sp, ok := tensor.PackSpikes(s)
	if !ok {
		panic("bench: spike fill not binary")
	}
	flop := 2 * float64(b) * float64(mm) * float64(mm)
	return measureSpikeKernel("matmul_transb", fmt.Sprintf("%dx%dx%d", b, mm, mm), density, flop, reps,
		func() { tensor.MatMulTransB(pool, outD, s, w) },
		func() { tensor.MatMulTransBPacked(pool, outP, sp, w) },
		outD, outP, s.Bytes(), sp.Bytes())
}

// measureSpikeConv benches the conv forward with the input spike plane dense
// vs packed (packed im2col).
func measureSpikeConv(pool *parallel.Pool, sc Scale, reps int, density float64) spikePackKernelRow {
	n, c, h, w := 8, 8, 16, 16
	if sc == Full {
		n, c, h, w = 16, 16, 32, 32
	}
	spec := tensor.ConvSpec{InChannels: c, OutChannels: 2 * c, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1}
	oh, ow := spec.OutSize(h, w)
	x := tensor.New(n, c, h, w)
	weight := tensor.New(spec.OutChannels, c, 3, 3)
	bias := tensor.New(spec.OutChannels)
	outD := tensor.New(n, spec.OutChannels, oh, ow)
	outP := tensor.New(n, spec.OutChannels, oh, ow)
	fillSpikes(x.Data, density, 127)
	fillDet(weight.Data, 131)
	fillDet(bias.Data, 139)
	xp, ok := tensor.PackSpikes(x)
	if !ok {
		panic("bench: spike fill not binary")
	}
	scrD, scrP := tensor.NewScratch(), tensor.NewScratch()
	flop := 2 * float64(n) * float64(spec.OutChannels) * float64(oh*ow) * float64(c*9)
	return measureSpikeKernel("conv2d", fmt.Sprintf("N%d C%d->%d %dx%d k3", n, c, spec.OutChannels, h, w), density, flop, reps,
		func() { tensor.Conv2D(pool, outD, x, weight, bias, spec, scrD) },
		func() { tensor.Conv2DPacked(pool, outP, xp, weight, bias, spec, scrP) },
		outD, outP, x.Bytes(), xp.Bytes())
}

// packedPoolWidthsIdentical checks the packed matmul's determinism contract:
// bit-equal output at every pool width.
func packedPoolWidthsIdentical(mm int) bool {
	b := 64
	s := tensor.New(b, mm)
	w := tensor.New(mm, mm)
	fillSpikes(s.Data, 0.1, 149)
	fillDet(w.Data, 151)
	sp, ok := tensor.PackSpikes(s)
	if !ok {
		return false
	}
	ref := tensor.New(b, mm)
	tensor.MatMulTransBPacked(nil, ref, sp, w)
	for _, lanes := range []int{2, 4} {
		pool := parallel.NewPool(lanes)
		out := tensor.New(b, mm)
		tensor.MatMulTransBPacked(pool, out, sp, w)
		pool.Close()
		if !bitEqual(ref, out) {
			return false
		}
	}
	return true
}

// measureSpikePackTraining trains the same seeded workload with SpikePack
// off and on and verifies the end-to-end bit-identity gate.
func measureSpikePackTraining(cfg RunConfig, out io.Writer) (spikePackEpochRow, error) {
	T, batch, nBatches := 32, 4, 2
	if cfg.Scale == Tiny {
		T, batch, nBatches = 12, 2, 1
	}
	train := func(pack bool) (float64, []*tensor.Tensor, core.InferResult, error) {
		net, err := models.Build("customnet", models.Options{Width: 0.5, Classes: 10, InShape: []int{3, 16, 16}})
		if err != nil {
			return 0, nil, core.InferResult{}, err
		}
		data, err := dataset.Open("cifar10", cfg.seed())
		if err != nil {
			return 0, nil, core.InferResult{}, err
		}
		tr, err := core.NewTrainer(net, data, core.Checkpoint{C: 2}, core.Config{
			T: T, Batch: batch, Seed: cfg.seed(),
			Device:             mem.NewDevice(mem.Config{}),
			MaxBatchesPerEpoch: nBatches,
			CompressSpikes:     true,
			SpikePack:          pack,
		})
		if err != nil {
			return 0, nil, core.InferResult{}, err
		}
		defer tr.Close()
		start := time.Now()
		if _, err := tr.TrainEpoch(); err != nil {
			return 0, nil, core.InferResult{}, err
		}
		secs := time.Since(start).Seconds()
		var ws []*tensor.Tensor
		for _, p := range net.Params() {
			ws = append(ws, p.W.Clone())
		}
		input, _ := data.SpikeBatch(dataset.Test, []int{0, 1, 2, 3}, T)
		res := core.Infer(net, input, core.InferOptions{})
		return secs, ws, res, nil
	}
	denseS, denseW, denseInf, err := train(false)
	if err != nil {
		return spikePackEpochRow{}, err
	}
	packS, packW, packInf, err := train(true)
	if err != nil {
		return spikePackEpochRow{}, err
	}
	weightsOK := true
	for i := range denseW {
		if !bitEqual(denseW[i], packW[i]) {
			weightsOK = false
			break
		}
	}
	predsOK := bitEqual(denseInf.Logits, packInf.Logits)
	for i, p := range denseInf.Preds {
		if packInf.Preds[i] != p {
			predsOK = false
		}
	}
	row := spikePackEpochRow{
		Model: "customnet", T: T, Batch: batch, Batches: nBatches,
		DenseS: denseS, PackedS: packS, Speedup: denseS / packS,
		WeightsIdentical: weightsOK, PredsIdentical: predsOK,
	}
	fmt.Fprintf(out, "%14s %22s %8.2fs  %9.2fs  %7.2fx  weights=%v preds=%v\n",
		"train+infer", fmt.Sprintf("customnet T=%d B=%d x%d", T, batch, nBatches),
		denseS, packS, row.Speedup, weightsOK, predsOK)
	return row, nil
}

func init() {
	register(Experiment{
		ID:    "bench_spikepack",
		Title: "Bit-packed spike compute: AND+popcount kernels vs dense float, bytes and bit-identity",
		Run: func(cfg RunConfig, out io.Writer) error {
			pool := parallel.NewPool(cfg.Threads)
			defer pool.Close()
			threads := pool.Lanes()
			mm, reps, _ := kernelSizes(cfg.Scale)

			fmt.Fprintf(out, "== bench_spikepack: bit-packed spike kernels vs dense float ==\n")
			fmt.Fprintf(out, "   threads=%d scale=%s\n", threads, cfg.Scale)

			densities := []float64{0.5, 0.1, 0.02}
			var kernels []spikePackKernelRow
			for _, d := range densities {
				kernels = append(kernels, measureSpikeMatMul(pool, mm, reps, d))
				kernels = append(kernels, measureSpikeConv(pool, cfg.Scale, reps, d))
			}

			fmt.Fprintf(out, "%14s %22s %8s %9s %9s %8s %7s %6s\n",
				"kernel", "shape", "density", "dense", "packed", "bytes", "skip", "bits")
			for _, k := range kernels {
				bits := "OK"
				if !k.BitIdentical {
					bits = "DIFF"
				}
				fmt.Fprintf(out, "%14s %22s %8.2f %7.2fms %7.2fms %7.1fx %6.1f%% %6s\n",
					k.Name, k.Shape, k.Density, k.DenseMS, k.PackedMS,
					k.BytesRatio, 100*k.WordSkipFrac, bits)
			}

			poolsOK := packedPoolWidthsIdentical(mm)
			fmt.Fprintf(out, "   packed output bit-identical across pool widths 1/2/4: %v\n", poolsOK)

			epoch, err := measureSpikePackTraining(cfg, out)
			if err != nil {
				return err
			}

			rep := spikePackReport{
				Threads:             threads,
				Scale:               cfg.Scale.String(),
				Kernels:             kernels,
				PoolWidthsIdentical: poolsOK,
				Epoch:               epoch,
			}
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(benchSpikePackOutput, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "   report written to %s\n", benchSpikePackOutput)

			// Hard gates: the packed path must be exact everywhere and the
			// spike operand at least 8x smaller (the codec promises 32x on
			// the bits alone; 8x leaves headroom for shape metadata).
			for _, k := range kernels {
				if !k.BitIdentical {
					return fmt.Errorf("bench_spikepack: %s at density %.2f is not bit-identical to dense", k.Name, k.Density)
				}
				if k.BytesRatio < 8 {
					return fmt.Errorf("bench_spikepack: %s byte reduction %.1fx below the 8x gate", k.Name, k.BytesRatio)
				}
			}
			if !poolsOK {
				return fmt.Errorf("bench_spikepack: packed kernel output varies with pool width")
			}
			if !epoch.WeightsIdentical || !epoch.PredsIdentical {
				return fmt.Errorf("bench_spikepack: end-to-end spike-pack training diverged from dense (weights=%v preds=%v)",
					epoch.WeightsIdentical, epoch.PredsIdentical)
			}
			return nil
		},
	})
}
