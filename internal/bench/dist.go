package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/dist"
	"skipper/internal/mem"
	"skipper/internal/models"
)

// distBenchReport is what bench_dist writes to BENCH_dist.json: per-world
// step-time scaling of the coordinator/worker runtime (real frames over
// in-process pipes for control, localhost TCP for ring data) next to the
// ring-all-reduce model's prediction for the same gradient volume. Each
// world size beyond 1 is measured under both topologies — star as the
// baseline and ring with delta compression + backward overlap as the
// optimized variant — so the exchange-cost and overlap columns show what
// the collective machinery buys independent of core count.
type distBenchReport struct {
	Scale      string `json:"scale"`
	Model      string `json:"model"`
	T          int    `json:"t"`
	Batch      int    `json:"batch"`
	Rounds     int    `json:"rounds"`
	ParamBytes int64  `json:"param_bytes"`
	// Cores is the host's logical CPU count: wall-clock speedup beyond it
	// is impossible since every rank shares this machine.
	Cores  int               `json:"cores"`
	Worlds []distWorldResult `json:"worlds"`
}

// distWorldResult is one (world, topology) configuration's measured round
// timing.
type distWorldResult struct {
	World   int `json:"world"`
	Workers int `json:"workers"`
	// Topology is "serial" for world 1, else the exchange topology; the
	// ring variant runs with delta compression and backward overlap on.
	Topology string `json:"topology"`
	// MeanStepMS is the measured wall time per committed round.
	MeanStepMS float64 `json:"mean_step_ms"`
	// MeanComputeMS is the slowest rank's shard compute per round.
	MeanComputeMS float64 `json:"mean_compute_ms"`
	// MeanExchangeMS is the measured gather+reduce+broadcast cost per round
	// (wall minus slowest compute).
	MeanExchangeMS float64 `json:"mean_exchange_ms"`
	// ModelAllReduceMS is core.AllReduceModel's prediction for the same
	// gradient bytes and world size at the default modelled bandwidth.
	ModelAllReduceMS float64 `json:"model_all_reduce_ms"`
	// ReduceMB is the gradient payload actually moved over the wire.
	ReduceMB float64 `json:"reduce_mb"`
	// OverlapFrac is the mean fraction of exchange work hidden under
	// backward compute (0 when the exchange never overlapped).
	OverlapFrac float64 `json:"overlap_frac"`
	// Speedup is world 1's mean step time over this configuration's.
	Speedup float64 `json:"speedup"`
}

// benchDistOutput is where bench_dist writes its JSON report; the package
// tests point it into a temp directory.
var benchDistOutput = "BENCH_dist.json"

func init() {
	register(Experiment{
		ID:    "bench_dist",
		Title: "Distributed data-parallel step-time scaling vs the all-reduce model",
		Run:   runBenchDist,
	})
}

func runBenchDist(cfg RunConfig, out io.Writer) error {
	var (
		T      = map[Scale]int{Tiny: 10, Small: 16, Full: 32}[cfg.Scale]
		batch  = map[Scale]int{Tiny: 4, Small: 8, Full: 16}[cfg.Scale]
		rounds = map[Scale]int{Tiny: 2, Small: 4, Full: 8}[cfg.Scale]
		worlds = []int{1, 2, 4}
	)
	const model = "customnet"
	build := func() (*core.Trainer, error) {
		data, err := dataset.Open("cifar10", cfg.seed())
		if err != nil {
			return nil, err
		}
		net, err := models.Build(model, models.Options{
			Width: 0.25, Classes: data.Classes(), InShape: data.InShape(),
		})
		if err != nil {
			return nil, err
		}
		return core.NewTrainer(net, data, core.Checkpoint{C: 2}, core.Config{
			T: T, Batch: batch, Seed: cfg.seed(), Device: mem.Unlimited(),
		})
	}
	batches := make([][]int, rounds)
	for r := range batches {
		b := make([]int, batch)
		for i := range b {
			b[i] = r*batch + i
		}
		batches[r] = b
	}

	fmt.Fprintf(out, "== bench_dist: distributed step-time scaling ==\n")
	fmt.Fprintf(out, "   workload: %s  T=%d batch=%d rounds=%d cores=%d\n", model, T, batch, rounds, runtime.NumCPU())
	rep := distBenchReport{
		Scale: cfg.Scale.String(), Model: model, T: T, Batch: batch,
		Rounds: rounds, Cores: runtime.NumCPU(),
	}
	variants := []dist.Options{
		{Topology: dist.TopologyStar},
		{Topology: dist.TopologyRing, Compress: dist.CompressDelta, Overlap: true},
	}
	for _, w := range worlds {
		opts := variants[:1]
		if w > 1 {
			opts = variants
		}
		for _, o := range opts {
			res, paramBytes, err := benchDistWorld(w, rounds, batches, o, build)
			if err != nil {
				return err
			}
			rep.ParamBytes = paramBytes
			if len(rep.Worlds) > 0 && rep.Worlds[0].World == 1 && res.MeanStepMS > 0 {
				res.Speedup = rep.Worlds[0].MeanStepMS / res.MeanStepMS
			} else {
				res.Speedup = 1
			}
			rep.Worlds = append(rep.Worlds, res)
			fmt.Fprintf(out, "   world %d %-5s (%d workers): step %7.2f ms  compute %7.2f ms  exchange %6.2f ms  (model %5.3f ms)  moved %.2f MB  overlap %4.0f%%  speedup %.2fx\n",
				res.World, res.Topology, res.Workers, res.MeanStepMS, res.MeanComputeMS, res.MeanExchangeMS,
				res.ModelAllReduceMS, res.ReduceMB, 100*res.OverlapFrac, res.Speedup)
		}
	}
	fmt.Fprintf(out, "   note: ranks share this host's %d core(s), so wall-clock speedup is bounded by\n", runtime.NumCPU())
	fmt.Fprintf(out, "   the pool width; the reproduction targets are the exchange-cost, moved-MB, and\n")
	fmt.Fprintf(out, "   overlap columns, which measure the collective independent of core count.\n")

	f, err := os.Create(benchDistOutput)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "   report written to %s\n", benchDistOutput)
	return nil
}

// benchDistWorld measures mean round timing at one world size under the
// given exchange options. World 1 is the serial baseline; larger worlds run
// the real coordinator/worker wire protocol over in-process pipes (control)
// and localhost TCP (ring data).
func benchDistWorld(world, rounds int, batches [][]int, opts dist.Options, build func() (*core.Trainer, error)) (distWorldResult, int64, error) {
	res := distWorldResult{World: world, Workers: world - 1, Topology: opts.Topology}
	if world == 1 {
		res.Topology = "serial"
	}
	tr, err := build()
	if err != nil {
		return res, 0, err
	}
	defer tr.Close()
	paramBytes := tr.Net.ParamBytes()
	res.ModelAllReduceMS = float64(core.AllReduceModel(paramBytes, world, 0)) / float64(time.Millisecond)

	if world == 1 {
		var wall time.Duration
		for _, b := range batches {
			start := time.Now()
			if _, err := tr.TrainBatchIndices(dataset.Train, b); err != nil {
				return res, paramBytes, err
			}
			wall += time.Since(start)
		}
		res.MeanStepMS = float64(wall) / float64(rounds) / float64(time.Millisecond)
		res.MeanComputeMS = res.MeanStepMS
		return res, paramBytes, nil
	}

	metrics := dist.NewMetrics(world)
	coord, err := dist.NewCoordinator(tr, dist.Config{
		World: world, Options: opts,
		RoundTimeout: 2 * time.Minute, JoinTimeout: 2 * time.Minute, Metrics: metrics,
	})
	if err != nil {
		return res, paramBytes, err
	}
	errs := make(chan error, world-1)
	var workers []*core.Trainer
	defer func() {
		for _, wtr := range workers {
			wtr.Close()
		}
	}()
	for i := 1; i < world; i++ {
		wtr, err := build()
		if err != nil {
			return res, paramBytes, err
		}
		workers = append(workers, wtr)
		go func(wtr *core.Trainer) {
			errs <- dist.RunWorker(wtr, dist.WorkerConfig{
				Options: opts,
				Dial: func() (net.Conn, error) {
					cs, ws := net.Pipe()
					coord.Admit(cs)
					return ws, nil
				}})
		}(wtr)
	}
	var wall, compute, exchange time.Duration
	var overlap float64
	for _, b := range batches {
		st, err := coord.TrainRound(dataset.Train, b)
		if err != nil {
			coord.Finish("bench failed")
			return res, paramBytes, err
		}
		wall += st.Wall
		compute += st.SlowestReplica
		exchange += st.AllReduce
		overlap += st.OverlapFrac
	}
	coord.Finish("bench complete")
	for i := 1; i < world; i++ {
		if err := <-errs; err != nil {
			return res, paramBytes, fmt.Errorf("bench_dist worker: %w", err)
		}
	}
	res.MeanStepMS = float64(wall) / float64(rounds) / float64(time.Millisecond)
	res.MeanComputeMS = float64(compute) / float64(rounds) / float64(time.Millisecond)
	res.MeanExchangeMS = float64(exchange) / float64(rounds) / float64(time.Millisecond)
	res.ReduceMB = float64(metrics.ReduceBytes()) / (1 << 20)
	res.OverlapFrac = overlap / float64(rounds)
	return res, paramBytes, nil
}
