package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/router"
	"skipper/internal/serialize"
	"skipper/internal/serve"
)

// routerBenchReport is what bench_router writes to BENCH_router.json: the
// fleet's steady-state latency as replicas scale, the tail during a replica
// kill, the request accounting across a canary promote, and the shed-tier
// split at overload.
type routerBenchReport struct {
	Scale     string `json:"scale"`
	Model     string `json:"model"`
	T         int    `json:"t"`
	Heartbeat string `json:"heartbeat"`

	// Steady-state open-loop soaks against 1/2/4-replica fleets.
	Steady []routerSteadyRow `json:"steady_state"`
	// During-kill soak: a 3-replica fleet with one replica killed mid-soak.
	DuringKill serve.LoadGenReport `json:"during_replica_kill"`
	// Canary soak: traffic across a full canary start→promote cycle.
	Canary routerCanaryRow `json:"canary_promote"`
	// Overload: two classes offered past fleet capacity; the full-horizon
	// class is shed while the early-exit class keeps being served.
	Overload routerOverloadRow `json:"overload_shed"`
	// HA: a replicated router tier losing one router (kill -9) and one
	// replica (announced drain handoff) mid-soak.
	HA routerHARow `json:"ha"`
}

type routerSteadyRow struct {
	Replicas int                 `json:"replicas"`
	Report   serve.LoadGenReport `json:"report"`
}

type routerCanaryRow struct {
	Report     serve.LoadGenReport `json:"report"`
	Promotions int64               `json:"promotions"`
	Rollbacks  int64               `json:"rollbacks"`
}

type routerHARow struct {
	Routers  int                 `json:"routers"`
	Replicas int                 `json:"replicas"`
	Report   serve.LoadGenReport `json:"report"`
	// DrainAcked is how many routers acknowledged the replica's drain
	// announcement (the killed router cannot).
	DrainAcked int `json:"drain_acked"`
	// ConvergedWithin is how long after the soak the surviving routers'
	// fleet views became identical.
	ConvergedWithin string `json:"converged_within"`
}

type routerOverloadRow struct {
	Interactive serve.LoadGenReport `json:"interactive"`
	Bulk        serve.LoadGenReport `json:"bulk"`
	// Shed counters from the router, by class.
	InteractiveShed int64 `json:"interactive_shed"`
	BulkShed        int64 `json:"bulk_shed"`
}

// benchRouterOutput is where bench_router writes its JSON report; the package
// tests point it into a temp directory.
var benchRouterOutput = "BENCH_router.json"

// routerFleet is an in-process serving fleet: N replicas, each with an HTTP
// and a framed-TCP listener, fronted by one Router.
type routerFleet struct {
	replicas []*fleetReplica
	router   *router.Router
	hs       *http.Server
	url      string
}

type fleetReplica struct {
	server  *serve.Server
	hs      *http.Server
	httpLN  net.Listener
	fleetLN net.Listener
	url     string
}

// kill closes the replica's listeners without draining — a process crash, as
// far as the router can tell.
func (r *fleetReplica) kill() {
	r.fleetLN.Close()
	r.hs.Close()
}

func (r *fleetReplica) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r.fleetLN.Close()
	r.server.Drain(ctx)
	r.hs.Shutdown(ctx)
}

func (f *routerFleet) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	f.hs.Shutdown(ctx)
	f.router.Close()
	for _, r := range f.replicas {
		r.stop()
	}
}

func startFleetReplica(build func() (*layers.Network, error), T int, queueDepth int, workers, maxBatch int, window time.Duration, weights string, seed uint64) (*fleetReplica, error) {
	s, err := serve.NewServer(serve.Config{
		Build:       build,
		T:           T,
		EarlyExit:   true,
		MaxBatch:    maxBatch,
		Workers:     workers,
		QueueDepth:  queueDepth,
		BatchWindow: window,
		EncodeSeed:  seed,
	}, weights)
	if err != nil {
		return nil, err
	}
	httpLN, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fleetLN, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		httpLN.Close()
		return nil, err
	}
	r := &fleetReplica{
		server:  s,
		hs:      &http.Server{Handler: s.Handler()},
		httpLN:  httpLN,
		fleetLN: fleetLN,
		url:     "http://" + httpLN.Addr().String(),
	}
	go r.hs.Serve(httpLN)
	go s.ServeFleet(fleetLN)
	return r, nil
}

func startFleet(n int, build func() (*layers.Network, error), T, queueDepth, workers, maxBatch int, window time.Duration, weights string, seed uint64, classes []router.ClassConfig) (*routerFleet, error) {
	f := &routerFleet{}
	specs := make([]router.BackendSpec, 0, n)
	for i := 0; i < n; i++ {
		r, err := startFleetReplica(build, T, queueDepth, workers, maxBatch, window, weights, seed)
		if err != nil {
			f.stopReplicas()
			return nil, err
		}
		f.replicas = append(f.replicas, r)
		specs = append(specs, router.BackendSpec{URL: r.url, FleetAddr: r.fleetLN.Addr().String()})
	}
	rt, err := router.New(router.Config{
		Backends:          specs,
		HeartbeatInterval: 25 * time.Millisecond,
		DeadAfter:         2,
		Classes:           classes,
		CanaryMinRequests: 20,
	})
	if err != nil {
		f.stopReplicas()
		return nil, err
	}
	f.router = rt
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		f.stopReplicas()
		return nil, err
	}
	f.hs = &http.Server{Handler: rt.Handler()}
	go f.hs.Serve(ln)
	f.url = "http://" + ln.Addr().String()
	return f, nil
}

func (f *routerFleet) stopReplicas() {
	for _, r := range f.replicas {
		r.stop()
	}
}

// haFleet is a replicated router tier: nRouters peered routers fronting one
// shared replica set. The routers gossip membership, canary state, and
// admission config over their peer listeners, so any one of them can die
// without the tier losing the fleet view — clients fail over to the next
// router URL.
type haFleet struct {
	mu        sync.Mutex
	replicas  []*fleetReplica
	routers   []*router.Router
	servers   []*http.Server
	urls      []string
	peerAddrs []string
}

func startHAFleet(nRouters, nReplicas int, build func() (*layers.Network, error), T, queueDepth, workers, maxBatch int, window time.Duration, weights string, seed uint64) (*haFleet, error) {
	f := &haFleet{}
	specs := make([]router.BackendSpec, 0, nReplicas)
	for i := 0; i < nReplicas; i++ {
		r, err := startFleetReplica(build, T, queueDepth, workers, maxBatch, window, weights, seed)
		if err != nil {
			f.stop()
			return nil, err
		}
		f.replicas = append(f.replicas, r)
		specs = append(specs, router.BackendSpec{URL: r.url, FleetAddr: r.fleetLN.Addr().String()})
	}
	peerLNs := make([]net.Listener, 0, nRouters)
	closeFrom := func(i int) {
		for _, ln := range peerLNs[i:] {
			ln.Close()
		}
	}
	for i := 0; i < nRouters; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeFrom(0)
			f.stop()
			return nil, err
		}
		peerLNs = append(peerLNs, ln)
		f.peerAddrs = append(f.peerAddrs, ln.Addr().String())
	}
	for i := 0; i < nRouters; i++ {
		peers := make([]string, 0, nRouters-1)
		for j, addr := range f.peerAddrs {
			if j != i {
				peers = append(peers, addr)
			}
		}
		rt, err := router.New(router.Config{
			Backends:          specs,
			HeartbeatInterval: 25 * time.Millisecond,
			DeadAfter:         2,
			SyncInterval:      10 * time.Millisecond,
			PeerListener:      peerLNs[i],
			PeerID:            f.peerAddrs[i],
			Peers:             peers,
			CanaryMinRequests: 20,
		})
		if err != nil {
			closeFrom(i) // routers < i own theirs; stop() closes them
			f.stop()
			return nil, err
		}
		f.routers = append(f.routers, rt)
		httpLN, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeFrom(i + 1)
			f.stop()
			return nil, err
		}
		hs := &http.Server{Handler: rt.Handler()}
		go hs.Serve(httpLN)
		f.servers = append(f.servers, hs)
		f.urls = append(f.urls, "http://"+httpLN.Addr().String())
	}
	return f, nil
}

// killRouter drops router i without ceremony: in-flight client requests see a
// severed connection and fail over to the next router URL.
func (f *haFleet) killRouter(i int) {
	f.mu.Lock()
	var hs *http.Server
	var rt *router.Router
	if i < len(f.servers) {
		hs, f.servers[i] = f.servers[i], nil
	}
	if i < len(f.routers) {
		rt, f.routers[i] = f.routers[i], nil
	}
	f.mu.Unlock()
	if hs != nil {
		hs.Close()
	}
	if rt != nil {
		rt.Close()
	}
}

// drainReplica performs the backend-initiated handoff: announce the drain to
// every router peer channel (survivors vacate the ring arcs synchronously with
// the ack), then drain the replica. Returns how many routers acked.
func (f *haFleet) drainReplica(i int) int {
	f.mu.Lock()
	var r *fleetReplica
	if i < len(f.replicas) {
		r, f.replicas[i] = f.replicas[i], nil
	}
	f.mu.Unlock()
	if r == nil {
		return 0
	}
	acked := serve.AnnounceDrain(f.peerAddrs, r.url, 2*time.Second)
	r.stop()
	return acked
}

func (f *haFleet) stop() {
	f.mu.Lock()
	servers, routers, replicas := f.servers, f.routers, f.replicas
	f.servers, f.routers, f.replicas = nil, nil, nil
	f.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, hs := range servers {
		if hs != nil {
			hs.Shutdown(ctx)
		}
	}
	for _, rt := range routers {
		if rt != nil {
			rt.Close()
		}
	}
	for _, r := range replicas {
		if r != nil {
			r.stop()
		}
	}
}

// fetchFleetView decodes one router's /v1/fleet.
func fetchFleetView(routerURL string) (router.FleetInfo, error) {
	var info router.FleetInfo
	resp, err := http.Get(routerURL + "/v1/fleet")
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return info, err
	}
	return info, nil
}

// fleetSignature reduces a fleet view to its replicated slice — backend
// states, ring membership, canary counters and history length — leaving out
// peer-local detail (router id, RTTs, per-peer sync ages) that legitimately
// differs between routers.
func fleetSignature(info router.FleetInfo) string {
	rows := make([]string, 0, len(info.Backends))
	for _, b := range info.Backends {
		rows = append(rows, b.URL+"="+b.State)
	}
	sort.Strings(rows)
	ring := append([]string(nil), info.Ring...)
	sort.Strings(ring)
	return fmt.Sprintf("backends:%v ring:%v promotions:%d rollbacks:%d history:%d",
		rows, ring, info.Canary.Promotions, info.Canary.Rollbacks, len(info.Canary.History))
}

// waitFleetConverged polls until every router in urls reports an identical
// fleet signature, returning how long that took.
func waitFleetConverged(urls []string, timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	deadline := start.Add(timeout)
	var lastErr error
	for {
		sigs := make([]string, 0, len(urls))
		for _, u := range urls {
			info, err := fetchFleetView(u)
			if err != nil {
				lastErr = err
				break
			}
			sigs = append(sigs, fleetSignature(info))
		}
		if len(sigs) == len(urls) {
			same := true
			for _, s := range sigs[1:] {
				if s != sigs[0] {
					same = false
					lastErr = fmt.Errorf("fleet views diverge: %q vs %q", sigs[0], s)
				}
			}
			if same {
				return time.Since(start), nil
			}
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("fleet views did not converge within %s: %v", timeout, lastErr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func init() {
	register(Experiment{
		ID:    "bench_router",
		Title: "Serving-fleet router: scaling, replica-kill tail, canary promote, shed tiers",
		Run: func(cfg RunConfig, out io.Writer) error {
			soak := map[Scale]time.Duration{Tiny: 400 * time.Millisecond, Small: 3 * time.Second, Full: 15 * time.Second}[cfg.Scale]
			qps := map[Scale]float64{Tiny: 120, Small: 200, Full: 400}[cfg.Scale]
			const model, T, maxBatch, workers = "customnet", 24, 8, 2
			build := func() (*layers.Network, error) {
				return models.Build(model, models.Options{
					Width: 0.25, Classes: 4, InShape: []int{2, 8, 8},
				})
			}
			fmt.Fprintf(out, "== bench_router: fleet routing under scaling, failure, canary, and overload ==\n")
			fmt.Fprintf(out, "   workload: %s  T=%d max-batch=%d workers=%d soak=%s qps=%.0f\n",
				model, T, maxBatch, workers, soak, qps)

			rep := routerBenchReport{Scale: cfg.Scale.String(), Model: model, T: T, Heartbeat: "25ms"}

			// The canary scenario needs checkpoint-backed replicas (a
			// fresh-init model has nothing to roll back to), so both model
			// generations are written up front.
			tmp, err := os.MkdirTemp("", "bench_router")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			basePath := filepath.Join(tmp, "base.skpw")
			v2Path := filepath.Join(tmp, "v2.skpw")
			for _, p := range []string{basePath, v2Path} {
				net0, err := build()
				if err != nil {
					return err
				}
				if err := serialize.SaveFile(p, net0); err != nil {
					return err
				}
			}

			// 1. Steady state: open-loop soak vs fleet size.
			fmt.Fprintf(out, "%10s %10s %10s %10s %8s\n", "replicas", "p50", "p99", "qps", "failed")
			for _, n := range []int{1, 2, 4} {
				fl, err := startFleet(n, build, T, 256, workers, maxBatch, 0, basePath, cfg.seed(), nil)
				if err != nil {
					return err
				}
				r, lgErr := serve.RunLoadGen(fl.url, serve.LoadGenOptions{
					OpenLoop:  true,
					TargetQPS: qps,
					Duration:  soak,
					Seed:      cfg.seed(),
					Sessions:  64,
				})
				fl.stop()
				if lgErr != nil {
					return lgErr
				}
				failed := r.Requests - r.DroppedByHarness - r.OK
				fmt.Fprintf(out, "%10d %9.2fms %9.2fms %10.0f %8d\n", n, r.LatencyP50MS, r.LatencyP99MS, r.QPS, failed)
				if failed > 0 {
					return fmt.Errorf("bench_router: %d failed requests at steady state with %d replicas: %v", failed, n, r.StatusCodes)
				}
				rep.Steady = append(rep.Steady, routerSteadyRow{Replicas: n, Report: r})
			}

			// 2. Replica kill mid-soak: the ring remaps only the vacated arcs
			// and failover absorbs the in-flight hits — zero client-visible
			// failures is the acceptance bar.
			fl, err := startFleet(3, build, T, 256, workers, maxBatch, 0, basePath, cfg.seed(), nil)
			if err != nil {
				return err
			}
			killTimer := time.AfterFunc(soak/3, func() { fl.replicas[1].kill() })
			killRep, lgErr := serve.RunLoadGen(fl.url, serve.LoadGenOptions{
				OpenLoop:  true,
				TargetQPS: qps,
				Duration:  soak,
				Seed:      cfg.seed() + 1,
				Sessions:  64,
			})
			killTimer.Stop()
			fl.stop()
			if lgErr != nil {
				return lgErr
			}
			killFailed := killRep.Requests - killRep.DroppedByHarness - killRep.OK
			fmt.Fprintf(out, "%10s %9.2fms %9.2fms %10.0f %8d\n", "kill(3→2)", killRep.LatencyP50MS, killRep.LatencyP99MS, killRep.QPS, killFailed)
			if killFailed > 0 {
				return fmt.Errorf("bench_router: %d failed requests during the replica kill: %v", killFailed, killRep.StatusCodes)
			}
			rep.DuringKill = killRep

			// 3. Canary promote under load: start a canary at 25%, keep the
			// soak running across auto-promotion, and require zero failures
			// through the whole swap.
			fl, err = startFleet(3, build, T, 256, workers, maxBatch, 0, basePath, cfg.seed(), nil)
			if err != nil {
				return err
			}
			canaryTimer := time.AfterFunc(soak/4, func() {
				client := &http.Client{Timeout: 10 * time.Second}
				body, _ := json.Marshal(map[string]any{"path": v2Path, "fraction": 0.25})
				resp, err := client.Post(fl.url+"/v1/canary", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			})
			canaryRep, lgErr := serve.RunLoadGen(fl.url, serve.LoadGenOptions{
				OpenLoop:  true,
				TargetQPS: qps,
				Duration:  3 * soak, // long enough for the cohort to reach CanaryMinRequests
				Seed:      cfg.seed() + 2,
				Sessions:  64,
			})
			canaryTimer.Stop()
			canarySt := fetchCanaryStatus(fl.url)
			fl.stop()
			if lgErr != nil {
				return lgErr
			}
			canaryFailed := canaryRep.Requests - canaryRep.DroppedByHarness - canaryRep.OK
			fmt.Fprintf(out, "%10s %9.2fms %9.2fms %10.0f %8d  promotions=%d rollbacks=%d\n",
				"canary", canaryRep.LatencyP50MS, canaryRep.LatencyP99MS, canaryRep.QPS, canaryFailed,
				canarySt.Promotions, canarySt.Rollbacks)
			if canaryFailed > 0 {
				return fmt.Errorf("bench_router: %d failed requests across the canary swap: %v", canaryFailed, canaryRep.StatusCodes)
			}
			if canarySt.Promotions != 1 || canarySt.Rollbacks != 0 {
				return fmt.Errorf("bench_router: canary promotions=%d rollbacks=%d, want 1/0 (%+v)",
					canarySt.Promotions, canarySt.Rollbacks, canarySt)
			}
			rep.Canary = routerCanaryRow{Report: canaryRep, Promotions: canarySt.Promotions, Rollbacks: canarySt.Rollbacks}

			// 4. Overload shed tiers: one deliberately tiny replica (a wide
			// batch window inflates its service time so the fleet saturates
			// at modest QPS), two classes offered together past its capacity.
			// The full-horizon bulk tier sheds first; the early-exit
			// interactive tier keeps completing — the degradation order the
			// admission tiers exist for.
			fl, err = startFleet(1, build, T, 4, 1, 8, 25*time.Millisecond, basePath, cfg.seed(), []router.ClassConfig{
				{Name: "interactive", Tier: 0, BudgetMS: 250},
				{Name: "bulk", Tier: 2, FullHorizon: true, ShedAtLoad: 0.25},
			})
			if err != nil {
				return err
			}
			var wg sync.WaitGroup
			var iRep, bRep serve.LoadGenReport
			var iErr, bErr error
			wg.Add(2)
			go func() {
				defer wg.Done()
				iRep, iErr = serve.RunLoadGen(fl.url, serve.LoadGenOptions{
					OpenLoop: true, TargetQPS: qps, Duration: soak,
					Seed: cfg.seed() + 3, Sessions: 32, Class: "interactive",
				})
			}()
			go func() {
				defer wg.Done()
				bRep, bErr = serve.RunLoadGen(fl.url, serve.LoadGenOptions{
					OpenLoop: true, TargetQPS: qps, Duration: soak,
					Seed: cfg.seed() + 4, Sessions: 32, Class: "bulk",
				})
			}()
			wg.Wait()
			iShed := fl.router.Metrics().ShedCount("interactive", "load_shed")
			bShed := fl.router.Metrics().ShedCount("bulk", "load_shed")
			fl.stop()
			if iErr != nil {
				return iErr
			}
			if bErr != nil {
				return bErr
			}
			fmt.Fprintf(out, "   overload: interactive ok=%d shed=%d | bulk ok=%d shed=%d\n",
				iRep.OK, iShed, bRep.OK, bShed)
			if bShed == 0 {
				return fmt.Errorf("bench_router: bulk class was never shed at overload (codes %v)", bRep.StatusCodes)
			}
			if iRep.OK == 0 {
				return fmt.Errorf("bench_router: interactive class starved at overload (codes %v)", iRep.StatusCodes)
			}
			if iShed >= bShed {
				return fmt.Errorf("bench_router: interactive shed %d >= bulk shed %d; tiers did not order the degradation", iShed, bShed)
			}
			rep.Overload = routerOverloadRow{
				Interactive: iRep, Bulk: bRep,
				InteractiveShed: iShed, BulkShed: bShed,
			}

			// 5. Replicated router tier: 3 peered routers over 3 replicas.
			// One router is killed mid-soak (clients fail over to the next
			// router URL) and one replica performs a backend-initiated drain
			// handoff (announce over the fleet channel, then drain). The bar:
			// zero failed requests and identical fleet views on the surviving
			// routers within 2s.
			ha, err := startHAFleet(3, 3, build, T, 256, workers, maxBatch, 0, basePath, cfg.seed())
			if err != nil {
				return err
			}
			var drainAcked atomic.Int64
			routerKill := time.AfterFunc(soak/3, func() { ha.killRouter(0) })
			drainTimer := time.AfterFunc(soak/2, func() { drainAcked.Store(int64(ha.drainReplica(2))) })
			haRep, lgErr := serve.RunLoadGen(strings.Join(ha.urls, ","), serve.LoadGenOptions{
				OpenLoop:  true,
				TargetQPS: qps,
				Duration:  soak,
				Seed:      cfg.seed() + 5,
				Sessions:  64,
			})
			routerKill.Stop()
			drainTimer.Stop()
			if lgErr != nil {
				ha.stop()
				return lgErr
			}
			survivors := ha.urls[1:]
			conv, convErr := waitFleetConverged(survivors, 2*time.Second)
			var view router.FleetInfo
			if convErr == nil {
				view, convErr = fetchFleetView(survivors[0])
			}
			drainedURL := ""
			for _, b := range view.Backends {
				if b.State != "alive" {
					drainedURL = b.URL
				}
			}
			ha.stop()
			if convErr != nil {
				return fmt.Errorf("bench_router: %v", convErr)
			}
			haFailed := haRep.Requests - haRep.DroppedByHarness - haRep.OK
			fmt.Fprintf(out, "%10s %9.2fms %9.2fms %10.0f %8d  failovers=%d drain_acked=%d converged=%s\n",
				"ha(3rt)", haRep.LatencyP50MS, haRep.LatencyP99MS, haRep.QPS, haFailed,
				haRep.ClientFailovers, drainAcked.Load(), conv.Round(time.Millisecond))
			if haFailed > 0 {
				return fmt.Errorf("bench_router: %d failed requests through the router kill + drain handoff: %v", haFailed, haRep.StatusCodes)
			}
			if got := drainAcked.Load(); got < 2 {
				return fmt.Errorf("bench_router: drain announcement acked by %d routers, want the 2 survivors", got)
			}
			if drainedURL == "" {
				return fmt.Errorf("bench_router: no backend left the alive state after the drain handoff (view %+v)", view)
			}
			for _, id := range view.Ring {
				if id == drainedURL {
					return fmt.Errorf("bench_router: drained backend %s still holds ring arcs", drainedURL)
				}
			}
			rep.HA = routerHARow{
				Routers: 3, Replicas: 3, Report: haRep,
				DrainAcked:      int(drainAcked.Load()),
				ConvergedWithin: conv.Round(time.Millisecond).String(),
			}

			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(benchRouterOutput, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "   report written to %s\n", benchRouterOutput)
			return nil
		},
	})
}

func fetchCanaryStatus(routerURL string) router.CanaryStatus {
	var info struct {
		Canary router.CanaryStatus `json:"canary"`
	}
	resp, err := http.Get(routerURL + "/v1/fleet")
	if err != nil {
		return info.Canary
	}
	defer resp.Body.Close()
	json.NewDecoder(resp.Body).Decode(&info)
	return info.Canary
}
