package bench

import (
	"fmt"
	"io"
	"time"

	"skipper/internal/core"
	"skipper/internal/models"
	"skipper/internal/snn"
)

func init() {
	register(Experiment{
		ID:    "ablate-sam",
		Title: "Ablation: Spike Activity Monitor metric (spike-sum vs weighted vs membrane-l2)",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			w, err := WorkloadFor("vgg5", cfg.Scale)
			if err != nil {
				return err
			}
			B := w.Batches[len(w.Batches)-1]
			header(out, "ablate-sam", "SAM metric choice (paper Sec. VI-A future work)", w)
			fmt.Fprintf(out, "%-14s %12s %14s %16s\n", "metric", "accuracy", "time/batch", "skipped steps")
			for _, metric := range []core.SAMMetric{core.SpikeSum{}, core.WeightedSpikeSum{}, core.MembraneL2{}} {
				strat := core.Skipper{C: w.C, P: w.P, Metric: metric}
				acc, err := trainAndEval(w, strat, w.T, B, bud, cfg.seed())
				if err != nil {
					return err
				}
				m, err := w.measure(strat, B, measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack})
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%-14s %11.2f%% %14s %16d\n", metric.Name(), 100*acc,
					m.TimePerBatch.Round(time.Millisecond), m.Stats.SkippedSteps)
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "ablate-p",
		Title: "Ablation: skip percentile p sweep (accuracy / time / memory trade-off)",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			w, err := WorkloadFor("vgg5", cfg.Scale)
			if err != nil {
				return err
			}
			net, err := w.buildNet()
			if err != nil {
				return err
			}
			maxP := core.MaxSkipPercent(w.T, w.C, net.StatefulCount())
			B := w.Batches[len(w.Batches)-1]
			header(out, "ablate-p", fmt.Sprintf("p sweep (Eq.7 bound %.0f%%)", maxP), w)
			fmt.Fprintf(out, "%8s %12s %14s %14s\n", "p", "accuracy", "time/batch", "memory")
			for _, frac := range []float64{0, 0.25, 0.5, 0.85} {
				p := float64(int(frac * maxP))
				strat := core.Skipper{C: w.C, P: p}
				acc, err := trainAndEval(w, strat, w.T, B, bud, cfg.seed())
				if err != nil {
					return err
				}
				m, err := w.measure(strat, B, measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack})
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%8.0f %11.2f%% %14s %14s\n", p, 100*acc,
					m.TimePerBatch.Round(time.Millisecond), gib(m.PeakReserved))
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "ablate-surrogate",
		Title: "Ablation: surrogate gradient choice under skipper",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			w, err := WorkloadFor("vgg5", cfg.Scale)
			if err != nil {
				return err
			}
			B := w.Batches[len(w.Batches)-1]
			header(out, "ablate-surrogate", "surrogate gradient choice", w)
			fmt.Fprintf(out, "%-14s %12s\n", "surrogate", "accuracy")
			for _, name := range []string{"triangle", "fastsigmoid", "atan", "rectangular"} {
				surr, err := snn.ByName(name)
				if err != nil {
					return err
				}
				// Rebuild the workload's network with the chosen surrogate.
				wv := w
				acc, err := trainAndEvalWithSurrogate(wv, surr, core.Skipper{C: w.C, P: w.P}, B, bud, cfg.seed())
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%-14s %11.2f%%\n", name, 100*acc)
			}
			return nil
		},
	})
}

// trainAndEvalWithSurrogate is trainAndEval with a surrogate override.
func trainAndEvalWithSurrogate(w Workload, surr snn.Surrogate, strat core.Strategy, B int, bud trainBudget, seed uint64) (float64, error) {
	in := inShapeFor(w.Data)
	net, err := models.Build(w.Model, models.Options{
		Width: w.Width, Classes: w.Classes, InShape: in, Surrogate: surr,
	})
	if err != nil {
		return 0, err
	}
	data, err := openData(w.Data, seed)
	if err != nil {
		return 0, err
	}
	tr, err := core.NewTrainer(net, data, strat, core.Config{
		T: w.T, Batch: B, Seed: seed, MaxBatchesPerEpoch: bud.batchesPerEpoch,
	})
	if err != nil {
		return 0, err
	}
	defer tr.Close()
	for e := 0; e < bud.epochs; e++ {
		if _, err := tr.TrainEpoch(); err != nil {
			return 0, err
		}
	}
	_, acc, err := tr.Evaluate(bud.evalBatches)
	return acc, err
}

func init() {
	register(Experiment{
		ID:    "ablate-placement",
		Title: "Extension: uniform vs activity-aware checkpoint placement (AdaptiveSkipper)",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			w, err := WorkloadFor("lenet", cfg.Scale) // event data: real activity variation
			if err != nil {
				return err
			}
			B := w.Batches[len(w.Batches)-1]
			header(out, "ablate-placement", "checkpoint placement policy", w)
			fmt.Fprintf(out, "%-12s %12s %14s %14s %16s\n",
				"placement", "accuracy", "time/batch", "peak memory", "skipped steps")
			for _, row := range []struct {
				label string
				strat core.Strategy
			}{
				{"uniform", core.Skipper{C: w.C, P: w.P}},
				{"adaptive", &core.AdaptiveSkipper{C: w.C, P: w.P}},
			} {
				acc, err := trainAndEval(w, row.strat, w.T, B, bud, cfg.seed())
				if err != nil {
					return err
				}
				m, err := w.measure(row.strat, B, measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack})
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%-12s %11.2f%% %14s %14s %16d\n", row.label, 100*acc,
					m.TimePerBatch.Round(time.Millisecond), gib(m.PeakReserved), m.Stats.SkippedSteps)
			}
			return nil
		},
	})
}

func init() {
	register(Experiment{
		ID:    "ablate-compress",
		Title: "Extension: bit-packed spike storage for checkpoint records (memory vs compute)",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			for _, model := range []string{"vgg5", "resnet20"} {
				w, err := WorkloadFor(model, cfg.Scale)
				if err != nil {
					return err
				}
				B := w.Batches[len(w.Batches)-1]
				header(out, "ablate-compress", "spike compression — "+model, w)
				fmt.Fprintf(out, "%-12s %16s %14s\n", "records", "activations", "time/batch")
				for _, compress := range []bool{false, true} {
					m, err := w.measureCompressed(core.Checkpoint{C: w.C}, B,
						measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack}, compress)
					if err != nil {
						return err
					}
					label := "float32"
					if compress {
						label = "bit-packed"
					}
					fmt.Fprintf(out, "%-12s %16s %14s\n", label,
						gib(m.PeakByCat[memActivationsCat]), m.TimePerBatch.Round(time.Millisecond))
				}
			}
			return nil
		},
	})
}
