package bench

import (
	"testing"

	"skipper/internal/core"
)

// TestPaperShapeClaims pins the paper's headline qualitative results across
// all four sweep workloads at tiny scale:
//
//   - memory: skipper < checkpointing < baseline (Figs 7, 12),
//   - recompute work: skipper replays strictly fewer timesteps than
//     checkpointing (the source of the Fig 10 speedup),
//   - TBPTT memory sits below baseline (Fig 12).
//
// These are deterministic step-count and byte comparisons, not wall-clock
// ones, so the test is stable on a loaded machine.
func TestPaperShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("shape-claims sweep skipped in -short mode")
	}
	for _, model := range sweepModels {
		model := model
		t.Run(model, func(t *testing.T) {
			w, err := WorkloadFor(model, Tiny)
			if err != nil {
				t.Fatal(err)
			}
			B := w.Batches[0]
			opts := measureOpts{batches: 1, seed: 1}
			base, err := w.measure(core.BPTT{}, B, opts)
			if err != nil {
				t.Fatal(err)
			}
			ck, err := w.measure(core.Checkpoint{C: w.C}, B, opts)
			if err != nil {
				t.Fatal(err)
			}
			sk, err := w.measure(core.Skipper{C: w.C, P: w.P}, B, opts)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := w.measure(core.TBPTT{Window: w.TrW}, B, opts)
			if err != nil {
				t.Fatal(err)
			}

			if !(sk.PeakTensors < ck.PeakTensors && ck.PeakTensors < base.PeakTensors) {
				t.Fatalf("memory ordering violated: skipper %d, ckpt %d, baseline %d",
					sk.PeakTensors, ck.PeakTensors, base.PeakTensors)
			}
			if tb.PeakTensors >= base.PeakTensors {
				t.Fatalf("tbptt memory %d >= baseline %d", tb.PeakTensors, base.PeakTensors)
			}
			if sk.Stats.RecomputedSteps >= ck.Stats.RecomputedSteps {
				t.Fatalf("skipper recomputed %d >= checkpointing %d",
					sk.Stats.RecomputedSteps, ck.Stats.RecomputedSteps)
			}
			if sk.Stats.SkippedSteps == 0 {
				t.Fatal("skipper skipped nothing")
			}
			// Checkpointing performs the extra forward pass: its total
			// step work exceeds the baseline's.
			ckWork := ck.Stats.ForwardSteps + ck.Stats.RecomputedSteps
			if ckWork <= base.Stats.ForwardSteps {
				t.Fatalf("checkpointing's recompute overhead missing: %d vs %d",
					ckWork, base.Stats.ForwardSteps)
			}
		})
	}
}

// TestMemorySavingsGrowWithT pins the Fig 14 scaling shape: the gap between
// the baseline and the checkpointed/skipper footprints widens as T grows.
func TestMemorySavingsGrowWithT(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep skipped in -short mode")
	}
	w, err := WorkloadFor("vgg5", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	B := w.Batches[0]
	saving := func(T int) float64 {
		wt := w
		wt.T = T
		base, err := wt.measure(core.BPTT{}, B, measureOpts{batches: 1, seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ck, err := wt.measure(core.Checkpoint{C: w.C}, B, measureOpts{batches: 1, seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return float64(base.PeakTensors) / float64(ck.PeakTensors)
	}
	small, large := saving(w.T), saving(3*w.T)
	if large <= small {
		t.Fatalf("memory saving should grow with T: %vx at T=%d vs %vx at T=%d",
			small, w.T, large, 3*w.T)
	}
}
