package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"skipper/internal/core"
	"skipper/internal/trace"
)

// traceBenchReport is what bench_trace writes to BENCH_trace.json: the
// tracer's cost both at the call-site scale (ns per recorded span, ns per
// nil-tracer no-op) and at the workload scale (capped vgg5 epoch with and
// without a tracer attached).
type traceBenchReport struct {
	Threads       int     `json:"threads"`
	Scale         string  `json:"scale"`
	NilNsPerOp    float64 `json:"nil_ns_per_op"`
	SpanNsPerOp   float64 `json:"span_ns_per_op"`
	BaselineS     float64 `json:"baseline_epoch_s"`
	TracedS       float64 `json:"traced_epoch_s"`
	OverheadPct   float64 `json:"overhead_pct"`
	EventsPerRun  int     `json:"events_per_run"`
	DroppedEvents int64   `json:"dropped_events"`
}

// benchTraceOutput is where bench_trace writes its JSON report; the package
// tests point it into a temp directory.
var benchTraceOutput = "BENCH_trace.json"

// spanNs times n SpanAt calls against t (which may be nil — the disabled
// path) and returns nanoseconds per call.
func spanNs(t *trace.Tracer, n int) float64 {
	at := time.Now()
	d := timeReps(n, func() {
		t.SpanAt(trace.TrackTrain, "bench", at, time.Microsecond,
			trace.Attr{Key: "seg", Val: 1})
	})
	return float64(d.Nanoseconds()) / float64(n)
}

// minEpoch runs the capped epoch `reps` times and keeps the fastest run —
// the usual guard against scheduler noise when the gate is a few percent.
func minEpoch(cfg RunConfig, reps int, mk func() *core.Runtime, T, batch, batches int) (float64, error) {
	best := 0.0
	for i := 0; i < reps; i++ {
		rt := mk()
		s, err := measureEpoch(cfg, rt, T, batch, batches)
		rt.Close()
		if err != nil {
			return 0, err
		}
		if i == 0 || s < best {
			best = s
		}
	}
	return best, nil
}

func init() {
	register(Experiment{
		ID:    "bench_trace",
		Title: "Tracing overhead: nil-tracer no-op cost and traced-vs-plain epoch wall-clock",
		Run: func(cfg RunConfig, out io.Writer) error {
			fmt.Fprintf(out, "== bench_trace: span recorder overhead ==\n")

			// Call-site scale. The nil path must stay in the same league as
			// a bare function call; the enabled path is one slot write.
			const ops = 1 << 20
			nilNs := spanNs(nil, ops)
			micro := trace.New(2 * ops)
			liveNs := spanNs(micro, ops)
			fmt.Fprintf(out, "   span call: nil %.1fns/op, enabled %.1fns/op\n", nilNs, liveNs)

			// Workload scale: the paper's vgg5 epoch, capped, with and
			// without a tracer on the runtime. Fastest of `reps` runs each.
			T, batch, nBatches, reps := 48, 4, 3, 3
			if cfg.Scale == Tiny {
				T, batch, nBatches, reps = 16, 2, 1, 2
			}
			plainS, err := minEpoch(cfg, reps, func() *core.Runtime {
				return core.NewRuntime(core.WithThreads(cfg.Threads))
			}, T, batch, nBatches)
			if err != nil {
				return err
			}
			var tracer *trace.Tracer
			tracedS, err := minEpoch(cfg, reps, func() *core.Runtime {
				tracer = trace.New(1 << 20)
				return core.NewRuntime(core.WithThreads(cfg.Threads), core.WithTracer(tracer))
			}, T, batch, nBatches)
			if err != nil {
				return err
			}
			events := tracer.Len()

			overhead := 100 * (tracedS - plainS) / plainS
			fmt.Fprintf(out, "   epoch vgg5 T=%d B=%d x%d: plain %.3fs, traced %.3fs (%+.2f%%, %d events)\n",
				T, batch, nBatches, plainS, tracedS, overhead, events)

			rep := traceBenchReport{
				Threads:       cfg.Threads,
				Scale:         cfg.Scale.String(),
				NilNsPerOp:    nilNs,
				SpanNsPerOp:   liveNs,
				BaselineS:     plainS,
				TracedS:       tracedS,
				OverheadPct:   overhead,
				EventsPerRun:  events,
				DroppedEvents: tracer.Dropped(),
			}
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(benchTraceOutput, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "   report written to %s\n", benchTraceOutput)

			// The acceptance gates. The wall-clock one is timing-sensitive,
			// so — like bench_kernels' speedup gate — it is only enforced
			// when the caller opts in with -require-speedup.
			if nilNs > 50 {
				return fmt.Errorf("bench_trace: nil tracer costs %.1fns per call — the disabled path is supposed to be free", nilNs)
			}
			if cfg.RequireSpeedup && overhead > 2 {
				return fmt.Errorf("bench_trace: tracing slows the epoch by %.2f%% (gate: 2%%)", overhead)
			}
			return nil
		},
	})
}
