package bench

import (
	"fmt"
	"io"
	"time"

	"skipper/internal/core"
)

// lbpSitesFor places the local classifiers the way the paper's best
// configuration does for AlexNet (after the 4th and 8th layers of the
// stack); indices are into the layer list of our AlexNet build.
func lbpSitesFor() []int { return []int{3, 7} }

// alexWorkload derives the AlexNet comparison workload at a given horizon
// multiplier (Table II uses T=20, Fig 16 uses T=50 in the paper).
func alexWorkload(sc Scale, longHorizon bool) (Workload, int, error) {
	w, err := WorkloadFor("alexnet", sc)
	if err != nil {
		return w, 0, err
	}
	net, err := w.buildNet()
	if err != nil {
		return w, 0, err
	}
	ln := net.StatefulCount()
	if longHorizon {
		// Table II uses T=20 and Fig 16 T=50 in the paper (2.5x); the tiny
		// scale stretches less to stay fast.
		if sc == Tiny {
			w.T = w.T * 3 / 2
		} else {
			w.T = w.T * 5 / 2
		}
	}
	for w.C > 1 && w.T/w.C <= ln {
		w.C--
	}
	if maxP := core.MaxSkipPercent(w.T, w.C, ln); w.P > maxP {
		w.P = float64(int(0.85 * maxP))
	}
	w.TrW = w.T / 2
	if w.TrW <= ln {
		w.TrW = ln + 1
	}
	return w, ln, nil
}

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Checkpointing & skipper vs TBPTT-LBP [28] on AlexNet: accuracy and memory (short horizon)",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			w, ln, err := alexWorkload(cfg.Scale, false)
			if err != nil {
				return err
			}
			B := w.Batches[len(w.Batches)-1]
			header(out, "table2", "AlexNet comparison at short T", w)
			fmt.Fprintf(out, "%-28s %12s %14s\n", "config", "accuracy", "memory")
			type row struct {
				label string
				strat core.Strategy
			}
			trWshort := w.TrW / 2
			if trWshort <= ln {
				trWshort = ln + 1
			}
			rows := []row{
				{fmt.Sprintf("TBPTT-LBP trW=%d", trWshort), &core.TBPTTLBP{Window: trWshort, LocalAt: lbpSitesFor()}},
				{fmt.Sprintf("TBPTT-LBP trW=%d", w.TrW), &core.TBPTTLBP{Window: w.TrW, LocalAt: lbpSitesFor()}},
				{fmt.Sprintf("This work C=%d", w.C), core.Checkpoint{C: w.C}},
				{fmt.Sprintf("This work C=%d & p=%.0f", w.C, w.P), core.Skipper{C: w.C, P: w.P}},
			}
			for _, r := range rows {
				acc, err := trainAndEval(w, r.strat, w.T, B, bud, cfg.seed())
				if err != nil {
					return fmt.Errorf("table2 %s: %w", r.label, err)
				}
				m, err := w.measure(r.strat, B, measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack})
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%-28s %11.2f%% %14s\n", r.label, 100*acc, gib(m.PeakReserved))
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig16",
		Title: "TBPTT-LBP truncation sweep vs checkpointing/skipper at a longer horizon: memory/time/accuracy",
		Run: func(cfg RunConfig, out io.Writer) error {
			bud := budgetFor(cfg.Scale)
			w, ln, err := alexWorkload(cfg.Scale, true)
			if err != nil {
				return err
			}
			B := w.Batches[len(w.Batches)-1]
			header(out, "fig16", "AlexNet at longer T", w)
			fmt.Fprintf(out, "%-28s %12s %14s %14s\n", "config", "accuracy", "memory", "time/batch")
			report := func(label string, strat core.Strategy) error {
				acc, err := trainAndEval(w, strat, w.T, B, bud, cfg.seed())
				if err != nil {
					return fmt.Errorf("fig16 %s: %w", label, err)
				}
				m, err := w.measure(strat, B, measureOpts{batches: bud.measureBatches, seed: cfg.seed(), spikePack: cfg.SpikePack})
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%-28s %11.2f%% %14s %14s\n", label, 100*acc,
					gib(m.PeakReserved), m.TimePerBatch.Round(time.Millisecond))
				return nil
			}
			// (a) TBPTT-LBP truncation-window sweep.
			for _, trW := range []int{ln + 1, w.T / 4, w.T / 2} {
				if trW <= ln || trW > w.T {
					continue
				}
				if err := report(fmt.Sprintf("TBPTT-LBP trW=%d", trW),
					&core.TBPTTLBP{Window: trW, LocalAt: lbpSitesFor()}); err != nil {
					return err
				}
			}
			// (b) This work: baseline, checkpointing, skipper at two p values.
			if err := report("Baseline BPTT", core.BPTT{}); err != nil {
				return err
			}
			if err := report(fmt.Sprintf("C=%d", w.C), core.Checkpoint{C: w.C}); err != nil {
				return err
			}
			halfP := float64(int(w.P / 2))
			if err := report(fmt.Sprintf("C=%d & p=%.0f", w.C, halfP), core.Skipper{C: w.C, P: halfP}); err != nil {
				return err
			}
			if err := report(fmt.Sprintf("C=%d & p=%.0f", w.C, w.P), core.Skipper{C: w.C, P: w.P}); err != nil {
				return err
			}
			return nil
		},
	})
}
