// Package bench regenerates every table and figure of the paper's
// evaluation section. Each experiment is registered under the paper's
// figure/table id and prints the same rows or series the paper plots, at a
// configurable scale (the Go substrate runs the full grid at reduced
// network width and horizon; the shapes — who wins, by what factor, where
// the crossovers fall — are the reproduction target). EXPERIMENTS.md records
// paper-vs-measured for each id.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"skipper/internal/core"
	"skipper/internal/dataset"
	"skipper/internal/layers"
	"skipper/internal/mem"
	"skipper/internal/models"
)

// Scale selects how big the reproduction runs are.
type Scale int

const (
	// Tiny finishes each experiment in roughly a second — used by the
	// bench_test.go targets and CI.
	Tiny Scale = iota
	// Small is the CLI default: minutes for the full suite.
	Small
	// Full uses the paper's T and C values (width still scaled); budget
	// hours for the full suite on one core.
	Full
)

// ParseScale converts a flag string.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "", "small":
		return Small, nil
	case "full":
		return Full, nil
	default:
		return Tiny, fmt.Errorf("bench: unknown scale %q (tiny|small|full)", s)
	}
}

// String renders the scale name.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	default:
		return "full"
	}
}

// RunConfig parameterises an experiment run.
type RunConfig struct {
	Scale Scale
	Seed  uint64
	// Threads is the compute-pool width for experiments that exercise the
	// parallel runtime (0 = all cores).
	Threads int
	// RequireSpeedup makes bench_kernels fail when the multi-thread matmul
	// is not faster than serial. It is only enforced on machines with at
	// least two cores — on one core there is nothing to win.
	RequireSpeedup bool
	// SpikePack runs the workload measurements with bit-packed spike
	// compute (core.Config.SpikePack). Results are bit-identical, so the
	// figures' shapes must not move; only the clock may.
	SpikePack bool
}

func (c RunConfig) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the paper's identifier, e.g. "fig7" or "table1".
	ID string
	// Title summarises what the paper shows there.
	Title string
	// Run executes the experiment, writing its rows to w.
	Run func(cfg RunConfig, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns a registered experiment.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists the registered experiments in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Workload is one of the paper's network+dataset pairs with
// scale-appropriate hyper-parameters satisfying the Sec. V-A and Eq. 7
// constraints.
type Workload struct {
	Model   string
	Data    string
	Width   float64
	Classes int
	T       int
	C       int
	P       float64 // skip percentile
	TrW     int     // TBPTT truncation window
	Batches []int   // batch-size sweep
}

// paperWorkloads mirrors Table I's configuration rows. T at Full scale is
// the paper's; smaller scales shrink T and re-derive C, p, trW from the
// constraints.
var paperWorkloads = map[string]struct {
	data         string
	fullT, fullC int
	fullP        float64
	fullTrW      int
	classes      int
}{
	"vgg5":      {data: "cifar10", fullT: 100, fullC: 4, fullP: 70, fullTrW: 25, classes: 10},
	"vgg11":     {data: "cifar100", fullT: 125, fullC: 5, fullP: 50, fullTrW: 25, classes: 20},
	"resnet20":  {data: "cifar10", fullT: 250, fullC: 5, fullP: 52, fullTrW: 50, classes: 10},
	"lenet":     {data: "dvsgesture", fullT: 400, fullC: 10, fullP: 70, fullTrW: 40, classes: 11},
	"customnet": {data: "nmnist", fullT: 300, fullC: 4, fullP: 70, fullTrW: 40, classes: 10},
	"alexnet":   {data: "cifar10", fullT: 50, fullC: 4, fullP: 40, fullTrW: 10, classes: 10},
}

// statefulCount builds the model once to read its L_n.
func statefulCount(model string, width float64, classes int, data string) (int, error) {
	net, err := models.Build(model, models.Options{Width: width, Classes: classes, InShape: inShapeFor(data)})
	if err != nil {
		return 0, err
	}
	return net.StatefulCount(), nil
}

// WorkloadFor derives the scale-adjusted workload for one of the paper's
// network+dataset pairs, guaranteeing T/C > L_n and p within the Eq. 7
// bound.
func WorkloadFor(model string, sc Scale) (Workload, error) {
	spec, ok := paperWorkloads[model]
	if !ok {
		return Workload{}, fmt.Errorf("bench: no paper workload for model %q", model)
	}
	w := Workload{Model: model, Data: spec.data, Classes: spec.classes, Width: 0.5}
	ln, err := statefulCount(model, w.Width, w.Classes, w.Data)
	if err != nil {
		return Workload{}, err
	}
	switch sc {
	case Tiny:
		w.T = 3 * ln
		w.Batches = []int{2, 4}
	case Small:
		w.T = 6 * ln
		w.Batches = []int{2, 4, 8}
	default:
		w.T = spec.fullT
		w.Batches = []int{4, 8, 16, 32}
	}
	if w.T <= ln {
		w.T = ln + 2
	}
	// Largest admissible C no bigger than the paper's choice.
	w.C = spec.fullC
	for w.C > 1 && w.T/w.C <= ln {
		w.C--
	}
	// Skip percentile: the paper's value when admissible, else 85% of the
	// Eq. 7 bound.
	maxP := core.MaxSkipPercent(w.T, w.C, ln)
	w.P = spec.fullP
	if w.P > maxP {
		w.P = float64(int(0.85 * maxP))
	}
	// Truncation window: the paper's at full scale, else about T/4 but
	// strictly above L_n.
	w.TrW = spec.fullTrW
	if sc != Full {
		w.TrW = w.T / 4
	}
	if w.TrW <= ln {
		w.TrW = ln + 1
	}
	if w.TrW > w.T {
		w.TrW = w.T
	}
	return w, nil
}

// buildNet constructs the workload's network with the input shape its
// dataset produces.
func (w Workload) buildNet() (*layers.Network, error) {
	return models.Build(w.Model, models.Options{Width: w.Width, Classes: w.Classes, InShape: inShapeFor(w.Data)})
}

// inShapeFor maps a dataset name to its spike-tensor shape.
func inShapeFor(data string) []int {
	switch data {
	case "dvsgesture", "nmnist":
		return []int{2, 16, 16}
	case "imagenet":
		return []int{3, 32, 32}
	default:
		return []int{3, 16, 16}
	}
}

// Measurement is one (strategy, batch) cell of a sweep.
type Measurement struct {
	Strategy     string
	T, B         int
	TimePerBatch time.Duration
	PeakReserved int64
	PeakTensors  int64
	PeakByCat    map[mem.Category]int64
	Stats        core.StepStats
	OOM          bool
}

// measureOpts tunes a measurement run.
type measureOpts struct {
	batches int // measured batches after one warm-up
	devCfg  mem.Config
	seed    uint64
	// spikePack routes the run through the bit-packed spike kernels
	// (bit-identical to dense, so every paper figure may be regenerated
	// packed via skipper-bench -spike-pack).
	spikePack bool
}

// memActivationsCat aliases the activations category for runner tables.
const memActivationsCat = mem.Activations

// measure runs a strategy for a few batches on a fresh trainer and device,
// reporting time per batch and peak memory "after warm start" (peaks are
// reset after the first batch, as the paper does).
func (w Workload) measure(strat core.Strategy, B int, o measureOpts) (Measurement, error) {
	return w.measureCompressed(strat, B, o, false)
}

// measureCompressed is measure with the spike-compression extension toggled.
func (w Workload) measureCompressed(strat core.Strategy, B int, o measureOpts, compress bool) (Measurement, error) {
	m := Measurement{Strategy: strat.Name(), T: w.T, B: B}
	net, err := w.buildNet()
	if err != nil {
		return m, err
	}
	data, err := dataset.Open(w.Data, o.seed)
	if err != nil {
		return m, err
	}
	dev := mem.NewDevice(o.devCfg)
	cfg := core.Config{T: w.T, Batch: B, Seed: o.seed, Device: dev, CompressSpikes: compress, SpikePack: o.spikePack}
	tr, err := core.NewTrainer(net, data, strat, cfg)
	if err != nil {
		return m, err
	}
	defer tr.Close()

	idx := dataset.Indices(data, dataset.Train, o.seed, 0, true)
	batches := dataset.Batches(idx, B)
	n := o.batches
	if n < 1 {
		n = 1
	}
	if len(batches) < n+1 {
		n = len(batches) - 1
	}
	// Warm-up batch, then reset peaks ("second iteration onwards").
	if _, err := tr.TrainBatchIndices(dataset.Train, batches[0]); err != nil {
		m.OOM = isOOM(err)
		return m, err
	}
	dev.ResetPeaks()
	start := time.Now()
	for i := 1; i <= n; i++ {
		st, err := tr.TrainBatchIndices(dataset.Train, batches[i])
		if err != nil {
			m.OOM = isOOM(err)
			return m, err
		}
		m.Stats.Add(st)
	}
	m.TimePerBatch = time.Since(start) / time.Duration(n)
	m.PeakReserved = dev.PeakReserved()
	m.PeakTensors = dev.PeakAllocated()
	m.PeakByCat = map[mem.Category]int64{}
	for _, c := range mem.Categories() {
		m.PeakByCat[c] = dev.PeakBy(c)
	}
	return m, nil
}

func isOOM(err error) bool {
	_, ok := err.(*mem.OOMError)
	if ok {
		return true
	}
	for err != nil {
		if err == mem.ErrOutOfMemory {
			return true
		}
		u, okU := err.(interface{ Unwrap() error })
		if !okU {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// header prints an experiment banner.
func header(w io.Writer, id, title string, wk ...Workload) {
	fmt.Fprintf(w, "== %s: %s ==\n", id, title)
	for _, x := range wk {
		fmt.Fprintf(w, "   workload: %s + %s  T=%d C=%d p=%.0f trW=%d width=%.2g\n",
			x.Model, x.Data, x.T, x.C, x.P, x.TrW, x.Width)
	}
}

// gib renders bytes as mem.FormatBytes.
func gib(n int64) string { return mem.FormatBytes(n) }

// openData opens a dataset by name (shared helper for ablation runners).
func openData(name string, seed uint64) (dataset.Source, error) {
	return dataset.Open(name, seed)
}
