package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"skipper/internal/layers"
	"skipper/internal/models"
	"skipper/internal/serve"
)

// serveBenchReport is what bench_serve writes to BENCH_serve.json: the
// serving configuration next to the loadgen's latency and early-exit
// numbers, with and without the exit rule so the saving is attributable.
type serveBenchReport struct {
	Scale     string              `json:"scale"`
	Model     string              `json:"model"`
	T         int                 `json:"t"`
	MaxBatch  int                 `json:"max_batch"`
	Workers   int                 `json:"workers"`
	EarlyExit serve.LoadGenReport `json:"early_exit"`
	FullRun   serve.LoadGenReport `json:"full_horizon"`
}

// benchServeOutput is where bench_serve writes its JSON report; the package
// tests point it into a temp directory.
var benchServeOutput = "BENCH_serve.json"

func init() {
	register(Experiment{
		ID:    "bench_serve",
		Title: "Serving latency and early-exit timestep savings (in-process loadgen)",
		Run: func(cfg RunConfig, out io.Writer) error {
			requests := map[Scale]int{Tiny: 40, Small: 200, Full: 1000}[cfg.Scale]
			const model, T, maxBatch, workers = "customnet", 32, 8, 2
			build := func() (*layers.Network, error) {
				return models.Build(model, models.Options{
					Width: 0.25, Classes: 4, InShape: []int{2, 8, 8},
				})
			}
			fmt.Fprintf(out, "== bench_serve: serving latency & early-exit savings ==\n")
			fmt.Fprintf(out, "   workload: %s  T=%d max-batch=%d workers=%d requests=%d\n",
				model, T, maxBatch, workers, requests)

			run := func(earlyExit bool) (serve.LoadGenReport, error) {
				s, err := serve.NewServer(serve.Config{
					Build:      build,
					T:          T,
					EarlyExit:  earlyExit,
					MaxBatch:   maxBatch,
					Workers:    workers,
					QueueDepth: 4 * requests,
					EncodeSeed: cfg.seed(),
				}, "")
				if err != nil {
					return serve.LoadGenReport{}, err
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					return serve.LoadGenReport{}, err
				}
				hs := &http.Server{Handler: s.Handler()}
				go hs.Serve(ln)
				rep, lgErr := serve.RunLoadGen("http://"+ln.Addr().String(), serve.LoadGenOptions{
					Requests:    requests,
					Concurrency: 16,
					Seed:        cfg.seed(),
				})
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				s.Drain(ctx)
				hs.Shutdown(ctx)
				return rep, lgErr
			}

			withExit, err := run(true)
			if err != nil {
				return err
			}
			fullRun, err := run(false)
			if err != nil {
				return err
			}

			fmt.Fprintf(out, "%14s %10s %10s %12s %12s %10s\n",
				"mode", "p50", "p99", "qps", "mean batch", "saved")
			row := func(name string, r serve.LoadGenReport) {
				fmt.Fprintf(out, "%14s %9.2fms %9.2fms %12.0f %12.2f %9.0f%%\n",
					name, r.LatencyP50MS, r.LatencyP99MS, r.QPS, r.MeanBatchSize, 100*r.SavedFraction)
			}
			row("early-exit", withExit)
			row("full-horizon", fullRun)
			if fullRun.OK < requests || withExit.OK < requests {
				return fmt.Errorf("bench_serve: not all requests succeeded: %v / %v",
					withExit.StatusCodes, fullRun.StatusCodes)
			}

			rep := serveBenchReport{
				Scale:     cfg.Scale.String(),
				Model:     model,
				T:         T,
				MaxBatch:  maxBatch,
				Workers:   workers,
				EarlyExit: withExit,
				FullRun:   fullRun,
			}
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(benchServeOutput, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "   report written to %s\n", benchServeOutput)
			return nil
		},
	})
}
